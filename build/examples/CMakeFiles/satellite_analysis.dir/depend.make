# Empty dependencies file for satellite_analysis.
# This may be replaced when dependencies are built.
