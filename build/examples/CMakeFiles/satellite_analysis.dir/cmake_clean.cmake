file(REMOVE_RECURSE
  "CMakeFiles/satellite_analysis.dir/satellite_analysis.cpp.o"
  "CMakeFiles/satellite_analysis.dir/satellite_analysis.cpp.o.d"
  "satellite_analysis"
  "satellite_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/satellite_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
