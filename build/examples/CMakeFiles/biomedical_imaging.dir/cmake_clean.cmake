file(REMOVE_RECURSE
  "CMakeFiles/biomedical_imaging.dir/biomedical_imaging.cpp.o"
  "CMakeFiles/biomedical_imaging.dir/biomedical_imaging.cpp.o.d"
  "biomedical_imaging"
  "biomedical_imaging.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/biomedical_imaging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
