# Empty compiler generated dependencies file for biomedical_imaging.
# This may be replaced when dependencies are built.
