# Empty compiler generated dependencies file for trace_gantt.
# This may be replaced when dependencies are built.
