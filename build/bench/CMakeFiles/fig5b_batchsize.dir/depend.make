# Empty dependencies file for fig5b_batchsize.
# This may be replaced when dependencies are built.
