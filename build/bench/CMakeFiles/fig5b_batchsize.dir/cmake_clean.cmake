file(REMOVE_RECURSE
  "CMakeFiles/fig5b_batchsize.dir/fig5b_batchsize.cc.o"
  "CMakeFiles/fig5b_batchsize.dir/fig5b_batchsize.cc.o.d"
  "fig5b_batchsize"
  "fig5b_batchsize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5b_batchsize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
