file(REMOVE_RECURSE
  "CMakeFiles/fig5a_replication.dir/fig5a_replication.cc.o"
  "CMakeFiles/fig5a_replication.dir/fig5a_replication.cc.o.d"
  "fig5a_replication"
  "fig5a_replication.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5a_replication.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
