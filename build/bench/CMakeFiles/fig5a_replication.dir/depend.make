# Empty dependencies file for fig5a_replication.
# This may be replaced when dependencies are built.
