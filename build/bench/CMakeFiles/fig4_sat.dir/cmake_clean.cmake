file(REMOVE_RECURSE
  "CMakeFiles/fig4_sat.dir/fig4_sat.cc.o"
  "CMakeFiles/fig4_sat.dir/fig4_sat.cc.o.d"
  "fig4_sat"
  "fig4_sat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_sat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
