# Empty compiler generated dependencies file for fig4_sat.
# This may be replaced when dependencies are built.
