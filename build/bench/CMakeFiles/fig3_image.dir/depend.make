# Empty dependencies file for fig3_image.
# This may be replaced when dependencies are built.
