file(REMOVE_RECURSE
  "CMakeFiles/fig3_image.dir/fig3_image.cc.o"
  "CMakeFiles/fig3_image.dir/fig3_image.cc.o.d"
  "fig3_image"
  "fig3_image.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_image.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
