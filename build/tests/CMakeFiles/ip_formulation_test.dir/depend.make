# Empty dependencies file for ip_formulation_test.
# This may be replaced when dependencies are built.
