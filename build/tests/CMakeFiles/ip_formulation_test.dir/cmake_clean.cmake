file(REMOVE_RECURSE
  "CMakeFiles/ip_formulation_test.dir/ip_formulation_test.cc.o"
  "CMakeFiles/ip_formulation_test.dir/ip_formulation_test.cc.o.d"
  "ip_formulation_test"
  "ip_formulation_test.pdb"
  "ip_formulation_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ip_formulation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
