# Empty dependencies file for hypergraph_multilevel_test.
# This may be replaced when dependencies are built.
