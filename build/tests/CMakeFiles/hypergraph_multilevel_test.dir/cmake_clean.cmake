file(REMOVE_RECURSE
  "CMakeFiles/hypergraph_multilevel_test.dir/hypergraph_multilevel_test.cc.o"
  "CMakeFiles/hypergraph_multilevel_test.dir/hypergraph_multilevel_test.cc.o.d"
  "hypergraph_multilevel_test"
  "hypergraph_multilevel_test.pdb"
  "hypergraph_multilevel_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hypergraph_multilevel_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
