file(REMOVE_RECURSE
  "CMakeFiles/hetero_disk_test.dir/hetero_disk_test.cc.o"
  "CMakeFiles/hetero_disk_test.dir/hetero_disk_test.cc.o.d"
  "hetero_disk_test"
  "hetero_disk_test.pdb"
  "hetero_disk_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hetero_disk_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
