file(REMOVE_RECURSE
  "CMakeFiles/ip_test.dir/ip_test.cc.o"
  "CMakeFiles/ip_test.dir/ip_test.cc.o.d"
  "ip_test"
  "ip_test.pdb"
  "ip_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ip_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
