file(REMOVE_RECURSE
  "CMakeFiles/bsio_util.dir/hilbert.cc.o"
  "CMakeFiles/bsio_util.dir/hilbert.cc.o.d"
  "CMakeFiles/bsio_util.dir/logging.cc.o"
  "CMakeFiles/bsio_util.dir/logging.cc.o.d"
  "CMakeFiles/bsio_util.dir/stats.cc.o"
  "CMakeFiles/bsio_util.dir/stats.cc.o.d"
  "CMakeFiles/bsio_util.dir/table.cc.o"
  "CMakeFiles/bsio_util.dir/table.cc.o.d"
  "libbsio_util.a"
  "libbsio_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bsio_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
