file(REMOVE_RECURSE
  "libbsio_util.a"
)
