# Empty dependencies file for bsio_util.
# This may be replaced when dependencies are built.
