file(REMOVE_RECURSE
  "libbsio_lp.a"
)
