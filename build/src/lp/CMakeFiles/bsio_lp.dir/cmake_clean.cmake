file(REMOVE_RECURSE
  "CMakeFiles/bsio_lp.dir/model.cc.o"
  "CMakeFiles/bsio_lp.dir/model.cc.o.d"
  "CMakeFiles/bsio_lp.dir/simplex.cc.o"
  "CMakeFiles/bsio_lp.dir/simplex.cc.o.d"
  "libbsio_lp.a"
  "libbsio_lp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bsio_lp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
