# Empty dependencies file for bsio_lp.
# This may be replaced when dependencies are built.
