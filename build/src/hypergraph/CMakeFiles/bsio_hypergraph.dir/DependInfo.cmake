
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hypergraph/binw.cc" "src/hypergraph/CMakeFiles/bsio_hypergraph.dir/binw.cc.o" "gcc" "src/hypergraph/CMakeFiles/bsio_hypergraph.dir/binw.cc.o.d"
  "/root/repo/src/hypergraph/bisect.cc" "src/hypergraph/CMakeFiles/bsio_hypergraph.dir/bisect.cc.o" "gcc" "src/hypergraph/CMakeFiles/bsio_hypergraph.dir/bisect.cc.o.d"
  "/root/repo/src/hypergraph/coarsen.cc" "src/hypergraph/CMakeFiles/bsio_hypergraph.dir/coarsen.cc.o" "gcc" "src/hypergraph/CMakeFiles/bsio_hypergraph.dir/coarsen.cc.o.d"
  "/root/repo/src/hypergraph/fm.cc" "src/hypergraph/CMakeFiles/bsio_hypergraph.dir/fm.cc.o" "gcc" "src/hypergraph/CMakeFiles/bsio_hypergraph.dir/fm.cc.o.d"
  "/root/repo/src/hypergraph/hypergraph.cc" "src/hypergraph/CMakeFiles/bsio_hypergraph.dir/hypergraph.cc.o" "gcc" "src/hypergraph/CMakeFiles/bsio_hypergraph.dir/hypergraph.cc.o.d"
  "/root/repo/src/hypergraph/initial.cc" "src/hypergraph/CMakeFiles/bsio_hypergraph.dir/initial.cc.o" "gcc" "src/hypergraph/CMakeFiles/bsio_hypergraph.dir/initial.cc.o.d"
  "/root/repo/src/hypergraph/metrics.cc" "src/hypergraph/CMakeFiles/bsio_hypergraph.dir/metrics.cc.o" "gcc" "src/hypergraph/CMakeFiles/bsio_hypergraph.dir/metrics.cc.o.d"
  "/root/repo/src/hypergraph/recursive.cc" "src/hypergraph/CMakeFiles/bsio_hypergraph.dir/recursive.cc.o" "gcc" "src/hypergraph/CMakeFiles/bsio_hypergraph.dir/recursive.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/bsio_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
