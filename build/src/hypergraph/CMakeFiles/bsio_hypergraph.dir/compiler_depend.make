# Empty compiler generated dependencies file for bsio_hypergraph.
# This may be replaced when dependencies are built.
