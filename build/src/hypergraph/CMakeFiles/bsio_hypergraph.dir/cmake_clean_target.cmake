file(REMOVE_RECURSE
  "libbsio_hypergraph.a"
)
