file(REMOVE_RECURSE
  "CMakeFiles/bsio_hypergraph.dir/binw.cc.o"
  "CMakeFiles/bsio_hypergraph.dir/binw.cc.o.d"
  "CMakeFiles/bsio_hypergraph.dir/bisect.cc.o"
  "CMakeFiles/bsio_hypergraph.dir/bisect.cc.o.d"
  "CMakeFiles/bsio_hypergraph.dir/coarsen.cc.o"
  "CMakeFiles/bsio_hypergraph.dir/coarsen.cc.o.d"
  "CMakeFiles/bsio_hypergraph.dir/fm.cc.o"
  "CMakeFiles/bsio_hypergraph.dir/fm.cc.o.d"
  "CMakeFiles/bsio_hypergraph.dir/hypergraph.cc.o"
  "CMakeFiles/bsio_hypergraph.dir/hypergraph.cc.o.d"
  "CMakeFiles/bsio_hypergraph.dir/initial.cc.o"
  "CMakeFiles/bsio_hypergraph.dir/initial.cc.o.d"
  "CMakeFiles/bsio_hypergraph.dir/metrics.cc.o"
  "CMakeFiles/bsio_hypergraph.dir/metrics.cc.o.d"
  "CMakeFiles/bsio_hypergraph.dir/recursive.cc.o"
  "CMakeFiles/bsio_hypergraph.dir/recursive.cc.o.d"
  "libbsio_hypergraph.a"
  "libbsio_hypergraph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bsio_hypergraph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
