file(REMOVE_RECURSE
  "CMakeFiles/bsio_sim.dir/cluster.cc.o"
  "CMakeFiles/bsio_sim.dir/cluster.cc.o.d"
  "CMakeFiles/bsio_sim.dir/engine.cc.o"
  "CMakeFiles/bsio_sim.dir/engine.cc.o.d"
  "CMakeFiles/bsio_sim.dir/state.cc.o"
  "CMakeFiles/bsio_sim.dir/state.cc.o.d"
  "CMakeFiles/bsio_sim.dir/timeline.cc.o"
  "CMakeFiles/bsio_sim.dir/timeline.cc.o.d"
  "libbsio_sim.a"
  "libbsio_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bsio_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
