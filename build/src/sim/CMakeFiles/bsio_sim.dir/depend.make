# Empty dependencies file for bsio_sim.
# This may be replaced when dependencies are built.
