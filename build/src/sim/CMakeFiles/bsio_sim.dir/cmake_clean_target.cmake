file(REMOVE_RECURSE
  "libbsio_sim.a"
)
