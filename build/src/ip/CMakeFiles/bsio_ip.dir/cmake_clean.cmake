file(REMOVE_RECURSE
  "CMakeFiles/bsio_ip.dir/branch_and_bound.cc.o"
  "CMakeFiles/bsio_ip.dir/branch_and_bound.cc.o.d"
  "libbsio_ip.a"
  "libbsio_ip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bsio_ip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
