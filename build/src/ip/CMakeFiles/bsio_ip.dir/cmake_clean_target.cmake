file(REMOVE_RECURSE
  "libbsio_ip.a"
)
