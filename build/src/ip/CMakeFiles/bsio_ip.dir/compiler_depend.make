# Empty compiler generated dependencies file for bsio_ip.
# This may be replaced when dependencies are built.
