# Empty compiler generated dependencies file for bsio_workload.
# This may be replaced when dependencies are built.
