
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/calibrate.cc" "src/workload/CMakeFiles/bsio_workload.dir/calibrate.cc.o" "gcc" "src/workload/CMakeFiles/bsio_workload.dir/calibrate.cc.o.d"
  "/root/repo/src/workload/image.cc" "src/workload/CMakeFiles/bsio_workload.dir/image.cc.o" "gcc" "src/workload/CMakeFiles/bsio_workload.dir/image.cc.o.d"
  "/root/repo/src/workload/io.cc" "src/workload/CMakeFiles/bsio_workload.dir/io.cc.o" "gcc" "src/workload/CMakeFiles/bsio_workload.dir/io.cc.o.d"
  "/root/repo/src/workload/sat.cc" "src/workload/CMakeFiles/bsio_workload.dir/sat.cc.o" "gcc" "src/workload/CMakeFiles/bsio_workload.dir/sat.cc.o.d"
  "/root/repo/src/workload/stats.cc" "src/workload/CMakeFiles/bsio_workload.dir/stats.cc.o" "gcc" "src/workload/CMakeFiles/bsio_workload.dir/stats.cc.o.d"
  "/root/repo/src/workload/synthetic.cc" "src/workload/CMakeFiles/bsio_workload.dir/synthetic.cc.o" "gcc" "src/workload/CMakeFiles/bsio_workload.dir/synthetic.cc.o.d"
  "/root/repo/src/workload/types.cc" "src/workload/CMakeFiles/bsio_workload.dir/types.cc.o" "gcc" "src/workload/CMakeFiles/bsio_workload.dir/types.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/bsio_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
