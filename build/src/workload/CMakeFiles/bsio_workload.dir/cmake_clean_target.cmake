file(REMOVE_RECURSE
  "libbsio_workload.a"
)
