file(REMOVE_RECURSE
  "CMakeFiles/bsio_workload.dir/calibrate.cc.o"
  "CMakeFiles/bsio_workload.dir/calibrate.cc.o.d"
  "CMakeFiles/bsio_workload.dir/image.cc.o"
  "CMakeFiles/bsio_workload.dir/image.cc.o.d"
  "CMakeFiles/bsio_workload.dir/io.cc.o"
  "CMakeFiles/bsio_workload.dir/io.cc.o.d"
  "CMakeFiles/bsio_workload.dir/sat.cc.o"
  "CMakeFiles/bsio_workload.dir/sat.cc.o.d"
  "CMakeFiles/bsio_workload.dir/stats.cc.o"
  "CMakeFiles/bsio_workload.dir/stats.cc.o.d"
  "CMakeFiles/bsio_workload.dir/synthetic.cc.o"
  "CMakeFiles/bsio_workload.dir/synthetic.cc.o.d"
  "CMakeFiles/bsio_workload.dir/types.cc.o"
  "CMakeFiles/bsio_workload.dir/types.cc.o.d"
  "libbsio_workload.a"
  "libbsio_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bsio_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
