file(REMOVE_RECURSE
  "libbsio_sched.a"
)
