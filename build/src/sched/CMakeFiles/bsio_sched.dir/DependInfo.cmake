
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sched/alternatives.cc" "src/sched/CMakeFiles/bsio_sched.dir/alternatives.cc.o" "gcc" "src/sched/CMakeFiles/bsio_sched.dir/alternatives.cc.o.d"
  "/root/repo/src/sched/bipartition.cc" "src/sched/CMakeFiles/bsio_sched.dir/bipartition.cc.o" "gcc" "src/sched/CMakeFiles/bsio_sched.dir/bipartition.cc.o.d"
  "/root/repo/src/sched/cost_model.cc" "src/sched/CMakeFiles/bsio_sched.dir/cost_model.cc.o" "gcc" "src/sched/CMakeFiles/bsio_sched.dir/cost_model.cc.o.d"
  "/root/repo/src/sched/driver.cc" "src/sched/CMakeFiles/bsio_sched.dir/driver.cc.o" "gcc" "src/sched/CMakeFiles/bsio_sched.dir/driver.cc.o.d"
  "/root/repo/src/sched/ip_formulation.cc" "src/sched/CMakeFiles/bsio_sched.dir/ip_formulation.cc.o" "gcc" "src/sched/CMakeFiles/bsio_sched.dir/ip_formulation.cc.o.d"
  "/root/repo/src/sched/ip_scheduler.cc" "src/sched/CMakeFiles/bsio_sched.dir/ip_scheduler.cc.o" "gcc" "src/sched/CMakeFiles/bsio_sched.dir/ip_scheduler.cc.o.d"
  "/root/repo/src/sched/job_data_present.cc" "src/sched/CMakeFiles/bsio_sched.dir/job_data_present.cc.o" "gcc" "src/sched/CMakeFiles/bsio_sched.dir/job_data_present.cc.o.d"
  "/root/repo/src/sched/minmin.cc" "src/sched/CMakeFiles/bsio_sched.dir/minmin.cc.o" "gcc" "src/sched/CMakeFiles/bsio_sched.dir/minmin.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/bsio_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/hypergraph/CMakeFiles/bsio_hypergraph.dir/DependInfo.cmake"
  "/root/repo/build/src/ip/CMakeFiles/bsio_ip.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/bsio_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/bsio_util.dir/DependInfo.cmake"
  "/root/repo/build/src/lp/CMakeFiles/bsio_lp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
