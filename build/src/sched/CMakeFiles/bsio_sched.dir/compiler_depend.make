# Empty compiler generated dependencies file for bsio_sched.
# This may be replaced when dependencies are built.
