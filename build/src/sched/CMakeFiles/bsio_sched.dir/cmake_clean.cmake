file(REMOVE_RECURSE
  "CMakeFiles/bsio_sched.dir/alternatives.cc.o"
  "CMakeFiles/bsio_sched.dir/alternatives.cc.o.d"
  "CMakeFiles/bsio_sched.dir/bipartition.cc.o"
  "CMakeFiles/bsio_sched.dir/bipartition.cc.o.d"
  "CMakeFiles/bsio_sched.dir/cost_model.cc.o"
  "CMakeFiles/bsio_sched.dir/cost_model.cc.o.d"
  "CMakeFiles/bsio_sched.dir/driver.cc.o"
  "CMakeFiles/bsio_sched.dir/driver.cc.o.d"
  "CMakeFiles/bsio_sched.dir/ip_formulation.cc.o"
  "CMakeFiles/bsio_sched.dir/ip_formulation.cc.o.d"
  "CMakeFiles/bsio_sched.dir/ip_scheduler.cc.o"
  "CMakeFiles/bsio_sched.dir/ip_scheduler.cc.o.d"
  "CMakeFiles/bsio_sched.dir/job_data_present.cc.o"
  "CMakeFiles/bsio_sched.dir/job_data_present.cc.o.d"
  "CMakeFiles/bsio_sched.dir/minmin.cc.o"
  "CMakeFiles/bsio_sched.dir/minmin.cc.o.d"
  "libbsio_sched.a"
  "libbsio_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bsio_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
