
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/batch_scheduler.cc" "src/core/CMakeFiles/bsio_core.dir/batch_scheduler.cc.o" "gcc" "src/core/CMakeFiles/bsio_core.dir/batch_scheduler.cc.o.d"
  "/root/repo/src/core/experiment.cc" "src/core/CMakeFiles/bsio_core.dir/experiment.cc.o" "gcc" "src/core/CMakeFiles/bsio_core.dir/experiment.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sched/CMakeFiles/bsio_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/bsio_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/bsio_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/bsio_util.dir/DependInfo.cmake"
  "/root/repo/build/src/hypergraph/CMakeFiles/bsio_hypergraph.dir/DependInfo.cmake"
  "/root/repo/build/src/ip/CMakeFiles/bsio_ip.dir/DependInfo.cmake"
  "/root/repo/build/src/lp/CMakeFiles/bsio_lp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
