file(REMOVE_RECURSE
  "libbsio_core.a"
)
