# Empty dependencies file for bsio_core.
# This may be replaced when dependencies are built.
