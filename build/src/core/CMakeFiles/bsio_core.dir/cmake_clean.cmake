file(REMOVE_RECURSE
  "CMakeFiles/bsio_core.dir/batch_scheduler.cc.o"
  "CMakeFiles/bsio_core.dir/batch_scheduler.cc.o.d"
  "CMakeFiles/bsio_core.dir/experiment.cc.o"
  "CMakeFiles/bsio_core.dir/experiment.cc.o.d"
  "libbsio_core.a"
  "libbsio_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bsio_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
