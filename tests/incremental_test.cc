// Incremental (rolling-horizon) planning tests.
//
// Part 1 is the quiescence contract: a StreamServiceLoop fed ONE batch at
// t = 0 with a drain-all horizon must reproduce the batch driver — and the
// PR 4 topology goldens — BIT for BIT (hexfloat makespans, every engine
// counter), for MinMin (delta insertion) and BiPartition (part repair,
// including the limited-disk two-round presets), at 1, 2 and 8 planning
// threads. Part 2 unit-tests the planner mechanics: delta-extend leaving
// the earlier wave untouched, the BiPartition footprint gate, the
// commit_horizon freeze rule and its ensure_progress escape, and the
// dirty-set derivation. Part 3 exercises the streaming loop proper:
// overlapping batches, SLO accounting, and the typed error surface.

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sched/bipartition.h"
#include "sched/driver.h"
#include "sched/incremental.h"
#include "sched/minmin.h"
#include "service/catalog.h"
#include "service/stream.h"
#include "sim/cluster.h"
#include "sim/engine.h"
#include "util/ws_runtime.h"
#include "workload/synthetic.h"

namespace bsio {
namespace {

// ------------------------------------------------------ quiescence goldens

// Same workload and presets as tests/topology_test.cc kGolden.
wl::Workload golden_workload() {
  wl::SyntheticConfig cfg;
  cfg.num_tasks = 24;
  cfg.files_per_task = 3;
  cfg.overlap = 0.5;
  cfg.file_size_bytes = 50.0 * sim::kMB;
  cfg.num_storage_nodes = 4;
  cfg.seed = 11;
  return wl::make_synthetic(cfg);
}

sim::ClusterConfig golden_preset(const std::string& name,
                                 double unique_bytes) {
  sim::ClusterConfig c = (name == "xio" || name == "xio_disk")
                             ? sim::xio_cluster(4, 4)
                             : sim::osumed_cluster(4, 4);
  if (name == "xio_disk" || name == "osumed_disk")
    c.disk_capacity = 0.35 * unique_bytes;
  return c;
}

struct QuiescentRow {
  const char* preset;
  bool bipartition;     // false = MinMin
  double batch_time;    // hexfloat: the PR 4 golden, bit-exact
  std::size_t windows;  // = the batch driver's sub_batches
};

// batch_time values are the kGolden rows of tests/topology_test.cc; a
// mismatch here means the incremental path stopped reproducing the batch
// arithmetic, not that these need regenerating.
const QuiescentRow kQuiescent[] = {
    // clang-format off
    {"xio",         false, 0x1.915f15f15f16p+2,   1},
    {"osumed",      false, 0x1.2519999999999p+7,  1},
    {"xio_disk",    false, 0x1.915f15f15f16p+2,   1},
    {"osumed_disk", false, 0x1.2519999999999p+7,  1},
    {"xio",         true,  0x1.915f15f15f16p+2,   1},
    {"osumed",      true,  0x1.268p+7,            1},
    {"xio_disk",    true,  0x1.a09c09c09c09dp+2,  2},
    {"osumed_disk", true,  0x1.23b3333333333p+7,  2},
    // clang-format on
};

std::unique_ptr<sched::Scheduler> quiescent_scheduler(bool bipartition) {
  if (bipartition)
    return std::make_unique<sched::BiPartitionScheduler>();
  return std::make_unique<sched::MinMinScheduler>();
}

TEST(StreamQuiescence, BitIdenticalToBatchDriverAtAnyThreadCount) {
  const wl::Workload w = golden_workload();
  const std::size_t thread_counts[] = {1, 2, 8};
  for (std::size_t threads : thread_counts) {
    WsRuntime::set_global_threads(threads);
    for (const QuiescentRow& row : kQuiescent) {
      SCOPED_TRACE(std::string(row.preset) +
                   (row.bipartition ? "/BiPartition/" : "/MinMin/") +
                   std::to_string(threads) + "t");
      const sim::ClusterConfig c =
          golden_preset(row.preset, w.unique_request_bytes());

      auto batch_sched = quiescent_scheduler(row.bipartition);
      const sched::BatchRunResult r =
          sched::run_batch(*batch_sched, w, c, sched::BatchRunOptions{});
      ASSERT_TRUE(r.ok()) << r.error;
      EXPECT_EQ(r.batch_time, row.batch_time);
      EXPECT_EQ(r.sub_batches, row.windows);

      auto stream_sched = quiescent_scheduler(row.bipartition);
      service::StreamOptions sopts;  // drain-all horizon, no admission bound
      service::StreamServiceLoop loop(*stream_sched, c, w.files(), sopts);
      std::vector<service::BatchArrival> arrivals(1);
      arrivals[0] = {0.0, 0, {}, w};
      auto res = loop.run(std::move(arrivals));
      ASSERT_TRUE(res.ok()) << res.error().message;
      const service::StreamResult& s = res.value();

      // Bitwise, not approximate: the quiescence contract.
      EXPECT_EQ(s.stats.completion_time, r.batch_time);
      EXPECT_EQ(s.stats.windows_committed, r.sub_batches);
      EXPECT_EQ(s.stats.exec.remote_transfers, r.stats.remote_transfers);
      EXPECT_EQ(s.stats.exec.replications, r.stats.replications);
      EXPECT_EQ(s.stats.exec.evictions, r.stats.evictions);
      EXPECT_EQ(s.stats.exec.restages, r.stats.restages);
      EXPECT_EQ(s.stats.exec.cache_hits, r.stats.cache_hits);
      EXPECT_EQ(s.stats.exec.remote_bytes, r.stats.remote_bytes);
      EXPECT_EQ(s.stats.exec.replica_bytes, r.stats.replica_bytes);
      ASSERT_EQ(s.batches.size(), 1u);
      EXPECT_TRUE(s.batches[0].completed);
      EXPECT_EQ(s.batches[0].response_time, r.batch_time);
      EXPECT_EQ(s.stats.slo_attainment, 1.0);
      EXPECT_EQ(s.stats.tasks_executed, w.num_tasks());
    }
  }
  WsRuntime::set_global_threads(0);
}

// ------------------------------------------------------- planner mechanics

TEST(DeltaMinMin, ExtendLeavesEarlierWaveUntouched) {
  WsRuntime::set_global_threads(1);
  const wl::Workload w = golden_workload();
  const sim::ClusterConfig c = golden_preset("xio", w.unique_request_bytes());
  sched::MinMinScheduler mm;
  sim::EngineOptions eo;
  eo.eviction = mm.eviction_policy();
  sim::ExecutionEngine eng(c, w, eo);
  sched::SchedulerContext ctx{w, c, eng};
  auto planner = sched::make_incremental_planner(mm);

  std::vector<wl::TaskId> first, second;
  for (wl::TaskId t = 0; t < 12; ++t) first.push_back(t);
  for (wl::TaskId t = 12; t < 24; ++t) second.push_back(t);
  planner->extend(first, ctx);
  const std::vector<sched::LiveTask> snap = planner->live();
  ASSERT_EQ(snap.size(), 12u);

  planner->extend(second, ctx);
  ASSERT_EQ(planner->live().size(), 24u);
  // Delta insertion: the first wave's commitments (order AND placement)
  // survive verbatim; the newcomers only append.
  for (std::size_t i = 0; i < snap.size(); ++i) {
    EXPECT_EQ(planner->live()[i].task, snap[i].task);
    EXPECT_EQ(planner->live()[i].node, snap[i].node);
  }
  WsRuntime::set_global_threads(0);
}

// Files 0..5 over 2 storage nodes; tasks 2 and 3 differ in whether they
// share a file with the {0, 1} part (task 2 disjoint, task 3 reads file 0).
wl::Workload gate_workload() {
  std::vector<wl::FileInfo> files;
  for (wl::FileId f = 0; f < 6; ++f)
    files.push_back({f, 10.0 * sim::kMB, static_cast<wl::NodeId>(f % 2)});
  std::vector<wl::TaskInfo> tasks;
  tasks.push_back({0, 1.0, {0, 1}, {}});
  tasks.push_back({1, 1.0, {0, 2}, {}});
  tasks.push_back({2, 1.0, {3, 4}, {}});
  tasks.push_back({3, 1.0, {0, 5}, {}});
  return wl::Workload(tasks, files);
}

sim::ClusterConfig small_cluster(std::size_t compute, std::size_t storage) {
  sim::ClusterConfig c;
  c.num_compute_nodes = compute;
  c.num_storage_nodes = storage;
  c.storage_disk_bw = 50.0 * sim::kMB;
  c.storage_net_bw = 500.0 * sim::kMB;
  c.compute_net_bw = 400.0 * sim::kMB;
  c.local_disk_bw = 200.0 * sim::kMB;
  return c;
}

TEST(PartRepair, FootprintGateKeepsDisjointPartStanding) {
  WsRuntime::set_global_threads(1);
  const wl::Workload w = gate_workload();
  const sim::ClusterConfig c = small_cluster(2, 2);
  sched::MinMinScheduler mm;
  sim::EngineOptions eo;
  eo.eviction = mm.eviction_policy();
  sim::ExecutionEngine eng(c, w, eo);
  sched::SchedulerContext ctx{w, c, eng};
  sched::PartRepairPlanner planner(mm, /*footprint_gate=*/true);

  planner.extend({0, 1}, ctx);
  ASSERT_EQ(planner.live().size(), 2u);
  const std::vector<sched::LiveTask> snap = planner.live();

  // Task 2 shares no file with the live part: the selection stands, the
  // newcomer only queues in the backlog.
  planner.extend({2}, ctx);
  ASSERT_EQ(planner.live().size(), 2u);
  for (std::size_t i = 0; i < snap.size(); ++i) {
    EXPECT_EQ(planner.live()[i].task, snap[i].task);
    EXPECT_EQ(planner.live()[i].node, snap[i].node);
  }
  ASSERT_EQ(planner.backlog().size(), 1u);
  EXPECT_EQ(planner.backlog()[0], 2u);

  // Task 3 reads file 0, dirtying the part: it dissolves and level-1
  // selection re-runs over everything outstanding.
  planner.extend({3}, ctx);
  EXPECT_EQ(planner.live().size(), 4u);
  EXPECT_TRUE(planner.backlog().empty());
  WsRuntime::set_global_threads(0);
}

TEST(PartRepair, RepairDissolvesOnlyWhenDirtyHitsLive) {
  WsRuntime::set_global_threads(1);
  const wl::Workload w = gate_workload();
  const sim::ClusterConfig c = small_cluster(2, 2);
  sched::MinMinScheduler mm;
  sim::EngineOptions eo;
  eo.eviction = mm.eviction_policy();
  sim::ExecutionEngine eng(c, w, eo);
  sched::SchedulerContext ctx{w, c, eng};
  sched::PartRepairPlanner planner(mm, /*footprint_gate=*/true);

  planner.extend({0, 1}, ctx);
  const std::vector<sched::LiveTask> snap = planner.live();
  // Dirty set disjoint from the live part: nothing moves.
  planner.repair({2}, ctx);
  ASSERT_EQ(planner.live().size(), snap.size());
  for (std::size_t i = 0; i < snap.size(); ++i)
    EXPECT_EQ(planner.live()[i].task, snap[i].task);
  // Dirty set hitting the part: full replan (still both tasks, repriced).
  planner.repair({0}, ctx);
  EXPECT_EQ(planner.live().size(), 2u);
  WsRuntime::set_global_threads(0);
}

TEST(DeltaMinMin, DirtyFromFilesIntersectsLiveFootprints) {
  WsRuntime::set_global_threads(1);
  const wl::Workload w = gate_workload();
  const sim::ClusterConfig c = small_cluster(2, 2);
  sched::MinMinScheduler mm;
  sim::EngineOptions eo;
  eo.eviction = mm.eviction_policy();
  sim::ExecutionEngine eng(c, w, eo);
  sched::SchedulerContext ctx{w, c, eng};
  auto planner = sched::make_incremental_planner(mm);
  planner->extend({0, 1, 2, 3}, ctx);

  // File 0 is read by tasks 0, 1 and 3; file 3 only by task 2.
  std::vector<wl::TaskId> d0 = planner->dirty_from_files(w, {0});
  std::vector<wl::TaskId> d3 = planner->dirty_from_files(w, {3});
  EXPECT_EQ(d0, (std::vector<wl::TaskId>{0, 1, 3}));
  EXPECT_EQ(d3, (std::vector<wl::TaskId>{2}));
  EXPECT_TRUE(planner->dirty_from_files(w, {}).empty());
  WsRuntime::set_global_threads(0);
}

TEST(CommitHorizon, FreezeRuleAndEnsureProgress) {
  WsRuntime::set_global_threads(1);
  // One compute node: the three tasks serialize, so their estimated starts
  // strictly increase.
  std::vector<wl::FileInfo> files = {{0, 50.0 * sim::kMB, 0}};
  std::vector<wl::TaskInfo> tasks = {
      {0, 10.0, {0}, {}}, {1, 10.0, {0}, {}}, {2, 10.0, {0}, {}}};
  const wl::Workload w(tasks, files);
  const sim::ClusterConfig c = small_cluster(1, 1);
  sched::MinMinScheduler mm;
  sim::EngineOptions eo;
  eo.eviction = mm.eviction_policy();
  sim::ExecutionEngine eng(c, w, eo);
  sched::SchedulerContext ctx{w, c, eng};
  auto planner = sched::make_incremental_planner(mm);
  planner->extend({0, 1, 2}, ctx);
  ASSERT_EQ(planner->live().size(), 3u);
  EXPECT_EQ(planner->live()[0].est_start, 0.0);
  EXPECT_GT(planner->live()[1].est_start, 1.0);
  EXPECT_GT(planner->live()[2].est_start, planner->live()[1].est_start);

  // A 1-second window contains only the first task's start.
  sched::HorizonOptions h;
  h.window_seconds = 1.0;
  sim::SubBatchPlan p1 = planner->commit_horizon(h);
  ASSERT_EQ(p1.tasks.size(), 1u);
  EXPECT_EQ(p1.tasks[0], 0u);
  EXPECT_EQ(planner->live().size(), 2u);

  // The survivors start past the window; ensure_progress still releases
  // the earliest one.
  sim::SubBatchPlan p2 = planner->commit_horizon(h);
  ASSERT_EQ(p2.tasks.size(), 1u);
  EXPECT_EQ(p2.tasks[0], 1u);

  // Without the escape the same commit releases nothing.
  h.ensure_progress = false;
  sim::SubBatchPlan p3 = planner->commit_horizon(h);
  EXPECT_TRUE(p3.empty());
  EXPECT_EQ(planner->live().size(), 1u);

  // Drain-all freezes whatever remains.
  h.window_seconds = 0.0;
  sim::SubBatchPlan p4 = planner->commit_horizon(h);
  ASSERT_EQ(p4.tasks.size(), 1u);
  EXPECT_EQ(p4.tasks[0], 2u);
  EXPECT_TRUE(planner->drained());
  WsRuntime::set_global_threads(0);
}

// --------------------------------------------------------- streaming loop

std::vector<wl::FileInfo> stream_catalog(std::uint64_t seed = 7) {
  service::SharedCatalogConfig cfg;
  cfg.num_files = 32;
  cfg.mean_file_size_bytes = 25.0 * sim::kMB;
  cfg.file_size_jitter = 0.2;
  cfg.num_storage_nodes = 2;
  cfg.seed = seed;
  return service::make_shared_catalog(cfg);
}

TEST(StreamService, OverlappingBatchesCompleteWithSloAccounting) {
  WsRuntime::set_global_threads(1);
  const std::vector<wl::FileInfo> catalog = stream_catalog();
  const sim::ClusterConfig c = small_cluster(4, 2);

  service::ServiceBatchConfig bcfg;
  bcfg.tasks_per_batch = 6;
  bcfg.files_per_task = 3;
  bcfg.zipf_s = 1.0;
  service::ArrivalConfig acfg;
  acfg.rate = 0.5;  // arrivals land while earlier batches still run
  acfg.num_batches = 4;
  acfg.seed = 3;
  acfg.slo_classes = {{50.0, 4.0}, {200.0, 1.0}};
  service::BatchArrivalProcess process(catalog, bcfg, acfg);
  auto arrivals = process.generate();
  ASSERT_TRUE(arrivals.ok()) << arrivals.error().message;

  service::StreamOptions opts;
  opts.admission.policy = service::AdmissionPolicy::kDeadlineAware;
  opts.admission.aging_weight = 0.1;
  opts.horizon.window_seconds = 20.0;
  sched::MinMinScheduler mm;
  service::StreamServiceLoop loop(mm, c, catalog, opts);
  auto res = loop.run(std::move(arrivals).value());
  ASSERT_TRUE(res.ok()) << res.error().message;
  const service::StreamResult& s = res.value();

  EXPECT_EQ(s.stats.batches_arrived, 4u);
  EXPECT_EQ(s.stats.batches_completed, 4u);
  EXPECT_EQ(s.stats.rejected_batches, 0u);
  EXPECT_EQ(s.stats.shed_batches, 0u);
  EXPECT_EQ(s.stats.tasks_executed, 4u * 6u);
  EXPECT_GE(s.stats.p99_response, s.stats.p50_response);
  EXPECT_GE(s.stats.slo_attainment, 0.0);
  EXPECT_LE(s.stats.slo_attainment, 1.0);
  std::size_t met = 0;
  for (const service::StreamBatchMetrics& m : s.batches) {
    EXPECT_TRUE(m.completed);
    EXPECT_GE(m.admit_time, m.arrival_time);
    EXPECT_GE(m.completion_time, m.admit_time);
    EXPECT_EQ(m.slo_met, m.response_time <= m.deadline_seconds);
    if (m.slo_met) ++met;
  }
  EXPECT_EQ(s.stats.slo_met, met);
  // Determinism: a second identical run reproduces the first bit for bit.
  sched::MinMinScheduler mm2;
  service::StreamServiceLoop loop2(mm2, c, catalog, opts);
  auto again = process.generate();
  ASSERT_TRUE(again.ok());
  auto res2 = loop2.run(std::move(again).value());
  ASSERT_TRUE(res2.ok());
  EXPECT_EQ(res2.value().stats.completion_time, s.stats.completion_time);
  EXPECT_EQ(res2.value().stats.p99_response, s.stats.p99_response);
  WsRuntime::set_global_threads(0);
}

TEST(StreamService, CatalogueMismatchIsTyped) {
  const std::vector<wl::FileInfo> catalog = stream_catalog(7);
  const std::vector<wl::FileInfo> other = stream_catalog(8);
  service::ServiceBatchConfig bcfg;
  bcfg.tasks_per_batch = 4;
  std::vector<service::BatchArrival> arrivals(1);
  arrivals[0].time = 0.0;
  arrivals[0].index = 0;
  arrivals[0].batch = service::make_service_batch(other, bcfg, 1);
  sched::MinMinScheduler mm;
  service::StreamServiceLoop loop(mm, small_cluster(2, 2), catalog, {});
  auto res = loop.run(std::move(arrivals));
  ASSERT_FALSE(res.ok());
  EXPECT_NE(res.error().message.find("catalogue"), std::string::npos);
}

TEST(StreamService, InfeasibleTaskIsTyped) {
  const std::vector<wl::FileInfo> catalog = stream_catalog();
  service::ServiceBatchConfig bcfg;
  bcfg.tasks_per_batch = 4;
  std::vector<service::BatchArrival> arrivals(1);
  arrivals[0].batch = service::make_service_batch(catalog, bcfg, 1);
  sim::ClusterConfig c = small_cluster(2, 2);
  c.disk_capacity = 1.0;  // nothing fits
  sched::MinMinScheduler mm;
  service::StreamServiceLoop loop(mm, c, catalog, {});
  auto res = loop.run(std::move(arrivals));
  ASSERT_FALSE(res.ok());
  EXPECT_NE(res.error().message.find("Section 4.2"), std::string::npos);
}

}  // namespace
}  // namespace bsio
