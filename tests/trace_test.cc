// Tests of the execution trace facility and the extra baseline schedulers
// (Sufferage / MaxMin).

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "core/batch_scheduler.h"
#include "sched/alternatives.h"
#include "sim/engine.h"
#include "workload/synthetic.h"

namespace bsio {
namespace {

wl::Workload trace_workload(std::uint64_t seed = 5) {
  wl::SyntheticConfig cfg;
  cfg.num_tasks = 16;
  cfg.files_per_task = 3;
  cfg.overlap = 0.5;
  cfg.file_size_bytes = 64.0 * sim::kMB;
  cfg.num_storage_nodes = 2;
  cfg.seed = seed;
  return wl::make_synthetic(cfg);
}

sim::SubBatchPlan spread_plan(const wl::Workload& w, std::size_t nodes) {
  sim::SubBatchPlan p;
  for (const auto& t : w.tasks()) {
    p.tasks.push_back(t.id);
    p.assignment[t.id] = static_cast<wl::NodeId>(t.id % nodes);
  }
  return p;
}

TEST(Trace, DisabledByDefault) {
  wl::Workload w = trace_workload();
  sim::ExecutionEngine eng(sim::xio_cluster(2, 2), w);
  ASSERT_TRUE(eng.execute(spread_plan(w, 2)).ok());
  EXPECT_TRUE(eng.trace().empty());
}

TEST(Trace, EventsMatchStats) {
  wl::Workload w = trace_workload();
  sim::EngineOptions opts;
  opts.trace = true;
  sim::ExecutionEngine eng(sim::xio_cluster(2, 2), w, opts);
  auto stats = eng.execute(spread_plan(w, 2)).value();

  std::size_t remote = 0, replica = 0, exec = 0;
  for (const auto& e : eng.trace()) {
    switch (e.kind) {
      case sim::TraceEvent::Kind::kRemoteTransfer:
        ++remote;
        break;
      case sim::TraceEvent::Kind::kReplication:
        ++replica;
        break;
      case sim::TraceEvent::Kind::kExec:
        ++exec;
        break;
      case sim::TraceEvent::Kind::kFailedTransfer:
      case sim::TraceEvent::Kind::kSpeculativeLaunch:
      case sim::TraceEvent::Kind::kSpeculativeCancel:
      case sim::TraceEvent::Kind::kReplicaCreate:
      case sim::TraceEvent::Kind::kReplicaInvalidate:
        break;
    }
  }
  EXPECT_EQ(remote, stats.remote_transfers);
  EXPECT_EQ(replica, stats.replications);
  EXPECT_EQ(exec, stats.tasks_executed);
}

TEST(Trace, EventsAreWellFormedAndWithinMakespan) {
  wl::Workload w = trace_workload(11);
  sim::EngineOptions opts;
  opts.trace = true;
  sim::ExecutionEngine eng(sim::xio_cluster(3, 2), w, opts);
  ASSERT_TRUE(eng.execute(spread_plan(w, 3)).ok());
  for (const auto& e : eng.trace()) {
    EXPECT_LT(e.start, e.end);
    EXPECT_LE(e.end, eng.makespan() + 1e-9);
    EXPECT_LT(e.dst, 3u);
    if (e.kind == sim::TraceEvent::Kind::kExec) {
      EXPECT_NE(e.task, wl::kInvalidTask);
      EXPECT_EQ(e.file, wl::kInvalidFile);
    } else {
      EXPECT_NE(e.file, wl::kInvalidFile);
      EXPECT_NE(e.src, wl::kInvalidNode);
    }
  }
}

TEST(Trace, PerDestinationEventsDoNotOverlap) {
  // The compute node is a single serialized resource: its incoming
  // transfers and exec blocks must be disjoint in time.
  wl::Workload w = trace_workload(13);
  sim::EngineOptions opts;
  opts.trace = true;
  sim::ExecutionEngine eng(sim::xio_cluster(2, 2), w, opts);
  ASSERT_TRUE(eng.execute(spread_plan(w, 2)).ok());

  std::map<wl::NodeId, std::vector<std::pair<double, double>>> per_node;
  for (const auto& e : eng.trace()) per_node[e.dst].push_back({e.start, e.end});
  for (auto& [node, spans] : per_node) {
    std::sort(spans.begin(), spans.end());
    for (std::size_t i = 1; i < spans.size(); ++i)
      EXPECT_LE(spans[i - 1].second, spans[i].first + 1e-9)
          << "overlap on node " << node;
  }
}

TEST(Trace, CsvRendering) {
  wl::Workload w = trace_workload(17);
  sim::EngineOptions opts;
  opts.trace = true;
  sim::ExecutionEngine eng(sim::xio_cluster(2, 2), w, opts);
  ASSERT_TRUE(eng.execute(spread_plan(w, 2)).ok());
  std::string csv = sim::trace_to_csv(eng.trace());
  EXPECT_NE(csv.find("kind,task,file,src,dst,start,end"), std::string::npos);
  EXPECT_NE(csv.find("remote"), std::string::npos);
  EXPECT_NE(csv.find("exec"), std::string::npos);
  // One header + one line per event.
  EXPECT_EQ(static_cast<std::size_t>(
                std::count(csv.begin(), csv.end(), '\n')),
            eng.trace().size() + 1);
}

TEST(ExtraBaselines, SufferageAndMaxMinCompleteBatches) {
  wl::Workload w = trace_workload(19);
  sim::ClusterConfig c = sim::xio_cluster(3, 2);
  for (core::Algorithm a :
       {core::Algorithm::kSufferage, core::Algorithm::kMaxMin}) {
    SCOPED_TRACE(core::algorithm_name(a));
    auto r = core::run_batch_scheduler(a, w, c);
    EXPECT_EQ(r.stats.tasks_executed, w.num_tasks());
    EXPECT_GT(r.batch_time, 0.0);
  }
}

TEST(ExtraBaselines, ExtendedEnumerationIsConsistent) {
  auto ext = core::extended_algorithms();
  EXPECT_EQ(ext.size(), 6u);
  for (core::Algorithm a : ext) {
    auto s = core::make_scheduler(a);
    EXPECT_EQ(s->name(), core::algorithm_name(a));
  }
}

TEST(ExtraBaselines, MaxMinFavoursBigTasksFirst) {
  // Two distinct task sizes; MaxMin must schedule a large task before any
  // small one on the same node timeline.
  std::vector<wl::FileInfo> files(4);
  for (auto& f : files) {
    f.size_bytes = 10.0 * sim::kMB;
    f.home_storage_node = 0;
  }
  std::vector<wl::TaskInfo> tasks(4);
  for (int k = 0; k < 4; ++k) tasks[k].files = {static_cast<wl::FileId>(k)};
  tasks[0].compute_seconds = tasks[1].compute_seconds = 100.0;  // big
  tasks[2].compute_seconds = tasks[3].compute_seconds = 1.0;    // small
  wl::Workload w(std::move(tasks), std::move(files));

  sim::ClusterConfig c = sim::xio_cluster(2, 1);
  sched::MaxMinScheduler mm;
  sim::ExecutionEngine eng(c, w);
  sched::SchedulerContext ctx{w, c, eng};
  auto plan = mm.plan_sub_batch({0, 1, 2, 3}, ctx);
  // First two committed tasks are the big ones.
  EXPECT_GE(w.task(plan.tasks[0]).compute_seconds, 100.0);
  EXPECT_GE(w.task(plan.tasks[1]).compute_seconds, 100.0);
}

}  // namespace
}  // namespace bsio
