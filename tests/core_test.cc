#include <gtest/gtest.h>

#include "core/batch_scheduler.h"
#include "core/experiment.h"
#include "workload/synthetic.h"

namespace bsio::core {
namespace {

wl::Workload tiny_batch(std::uint64_t seed = 3) {
  wl::SyntheticConfig cfg;
  cfg.num_tasks = 12;
  cfg.files_per_task = 3;
  cfg.overlap = 0.5;
  cfg.file_size_bytes = 32.0 * sim::kMB;
  cfg.num_storage_nodes = 2;
  cfg.seed = seed;
  return wl::make_synthetic(cfg);
}

TEST(Facade, NamesAndEnumeration) {
  EXPECT_STREQ(algorithm_name(Algorithm::kIp), "IP");
  EXPECT_STREQ(algorithm_name(Algorithm::kBiPartition), "BiPartition");
  EXPECT_STREQ(algorithm_name(Algorithm::kMinMin), "MinMin");
  EXPECT_STREQ(algorithm_name(Algorithm::kJobDataPresent), "JobDataPresent");
  EXPECT_EQ(all_algorithms().size(), 4u);
}

TEST(Facade, MakeSchedulerMatchesName) {
  for (Algorithm a : all_algorithms()) {
    auto s = make_scheduler(a);
    ASSERT_NE(s, nullptr);
    EXPECT_EQ(s->name(), algorithm_name(a));
  }
}

TEST(Facade, RunBatchSchedulerEndToEnd) {
  wl::Workload w = tiny_batch();
  sim::ClusterConfig c = sim::xio_cluster(2, 2);
  for (Algorithm a : all_algorithms()) {
    SCOPED_TRACE(algorithm_name(a));
    RunOptions opts;
    opts.ip.allocation_mip.time_limit_seconds = 3.0;
    auto r = run_batch_scheduler(a, w, c, opts);
    EXPECT_EQ(r.scheduler, algorithm_name(a));
    EXPECT_GT(r.batch_time, 0.0);
    EXPECT_EQ(r.stats.tasks_executed, w.num_tasks());
  }
}

TEST(Experiment, RunsCasesAndRendersTables) {
  wl::Workload w = tiny_batch(9);
  ExperimentOptions opts;
  opts.algorithms = {Algorithm::kBiPartition, Algorithm::kMinMin};
  opts.echo_progress = false;
  std::vector<ExperimentCase> cases{
      {"case A", w, sim::xio_cluster(2, 2)},
      {"case B", w, sim::osumed_cluster(2, 2)},
  };
  auto results = run_experiment(cases, opts);
  ASSERT_EQ(results.size(), 2u);
  for (const auto& r : results) EXPECT_EQ(r.runs.size(), 2u);

  Table bt = batch_time_table(results, opts.algorithms);
  EXPECT_EQ(bt.num_rows(), 2u);
  EXPECT_NE(bt.to_text().find("case A"), std::string::npos);
  EXPECT_NE(bt.to_csv().find("case B"), std::string::npos);

  Table ot = overhead_table(results, opts.algorithms);
  EXPECT_EQ(ot.num_rows(), 2u);

  Table tt = transfer_table(results, opts.algorithms);
  EXPECT_EQ(tt.num_rows(), 4u);  // 2 cases x 2 algorithms
}

TEST(Experiment, OsumedSlowerThanXio) {
  // Same workload, storage an order of magnitude slower: batch time must
  // reflect it.
  wl::Workload w = tiny_batch(17);
  ExperimentOptions opts;
  opts.algorithms = {Algorithm::kBiPartition};
  opts.echo_progress = false;
  auto results = run_experiment({{"xio", w, sim::xio_cluster(2, 2)},
                                 {"osumed", w, sim::osumed_cluster(2, 2)}},
                                opts);
  EXPECT_GT(results[1].runs[0].batch_time, results[0].runs[0].batch_time);
}

}  // namespace
}  // namespace bsio::core
