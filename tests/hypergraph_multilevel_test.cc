// Deeper property tests of the multilevel machinery: coarsening
// conservation laws, FM monotonicity, net splitting, and balance sweeps.

#include <gtest/gtest.h>

#include <numeric>

#include "hypergraph/bisect.h"
#include "hypergraph/coarsen.h"
#include "hypergraph/fm.h"
#include "hypergraph/metrics.h"
#include "hypergraph/recursive.h"
#include "util/rng.h"

namespace bsio::hg {
namespace {

Hypergraph random_hg(std::size_t nv, std::size_t nn, std::uint64_t seed,
                     double folded_prob = 0.0) {
  Rng rng(seed);
  HypergraphBuilder b;
  for (std::size_t i = 0; i < nv; ++i)
    b.add_vertex(0.5 + rng.uniform_double(),
                 rng.bernoulli(folded_prob) ? rng.uniform_double() * 3.0 : 0.0);
  for (std::size_t n = 0; n < nn; ++n) {
    std::vector<VertexId> pins;
    std::size_t sz = 2 + rng.uniform(5);
    for (std::size_t p = 0; p < sz; ++p)
      pins.push_back(static_cast<VertexId>(rng.uniform(nv)));
    b.add_net(0.5 + rng.uniform_double() * 2.0, std::move(pins));
  }
  return b.build();
}

class CoarsenSweep : public ::testing::TestWithParam<int> {};

TEST_P(CoarsenSweep, ConservationLaws) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  Hypergraph h = random_hg(120, 200, seed, 0.3);
  Rng rng(seed + 1);
  CoarseLevel level = coarsen_once(h, rng, h.total_vertex_weight() / 4.0);
  const Hypergraph& c = level.coarse;

  // Vertex weight is conserved exactly.
  EXPECT_NEAR(c.total_vertex_weight(), h.total_vertex_weight(), 1e-9);
  // Net weight moves between live nets and folded weights but the total
  // incident weight is conserved.
  EXPECT_NEAR(c.total_net_weight() + c.total_folded_weight(),
              h.total_net_weight() + h.total_folded_weight(), 1e-9);
  // The mapping is total and within range.
  ASSERT_EQ(level.fine_to_coarse.size(), h.num_vertices());
  for (VertexId cv : level.fine_to_coarse) EXPECT_LT(cv, c.num_vertices());
  // Coarsening shrinks (or at worst keeps) the vertex count.
  EXPECT_LE(c.num_vertices(), h.num_vertices());
  c.validate();
}

INSTANTIATE_TEST_SUITE_P(Seeds, CoarsenSweep, ::testing::Range(1, 9));

TEST(Coarsen, ProjectedPartitionHasSameCut) {
  // A bisection of the coarse hypergraph, projected to the fine one, must
  // have exactly the coarse cut weight (folded nets can never be cut).
  Hypergraph h = random_hg(80, 150, 3);
  Rng rng(7);
  CoarseLevel level = coarsen_once(h, rng, h.total_vertex_weight() / 4.0);
  const Hypergraph& c = level.coarse;
  // Arbitrary deterministic bisection of the coarse graph.
  std::vector<int> cside(c.num_vertices());
  for (VertexId v = 0; v < c.num_vertices(); ++v) cside[v] = v % 2;
  std::vector<int> fside(h.num_vertices());
  for (VertexId v = 0; v < h.num_vertices(); ++v)
    fside[v] = cside[level.fine_to_coarse[v]];
  EXPECT_NEAR(cut_net_weight(h, fside, 2), cut_net_weight(c, cside, 2), 1e-9);
}

class FmSweep : public ::testing::TestWithParam<int> {};

TEST_P(FmSweep, NeverWorsensTheCut) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  Hypergraph h = random_hg(60, 120, seed);
  Rng rng(seed * 31 + 1);
  std::vector<int> side(h.num_vertices());
  for (auto& s : side) s = static_cast<int>(rng.uniform(2));
  const double before = cut_net_weight(h, side, 2);
  BisectionConstraint c =
      make_constraint(h.total_vertex_weight(), 0.5, 0.15);
  const double after = fm_refine(h, side, c, rng, 4);
  EXPECT_LE(after, before + 1e-9);
  EXPECT_NEAR(after, cut_net_weight(h, side, 2), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FmSweep, ::testing::Range(1, 11));

TEST(ExtractSide, ConservesWeightAndFoldsCutNets) {
  Hypergraph h = random_hg(50, 90, 5, 0.2);
  std::vector<int> side(h.num_vertices());
  for (VertexId v = 0; v < h.num_vertices(); ++v) side[v] = v % 2;

  std::vector<VertexId> orig0, orig1;
  Hypergraph h0 = extract_side(h, side, 0, orig0);
  Hypergraph h1 = extract_side(h, side, 1, orig1);

  EXPECT_EQ(h0.num_vertices() + h1.num_vertices(), h.num_vertices());
  EXPECT_NEAR(h0.total_vertex_weight() + h1.total_vertex_weight(),
              h.total_vertex_weight(), 1e-9);
  // Net splitting: each side's incident weight equals its incident weight
  // in the parent (a cut net contributes fully to both).
  auto inw = incident_net_weights(h, side, 2);
  EXPECT_NEAR(h0.total_net_weight() + h0.total_folded_weight(), inw[0], 1e-9);
  EXPECT_NEAR(h1.total_net_weight() + h1.total_folded_weight(), inw[1], 1e-9);
  // Original-vertex maps invert side[].
  for (VertexId v : orig0) EXPECT_EQ(side[v], 0);
  for (VertexId v : orig1) EXPECT_EQ(side[v], 1);
}

TEST(MultilevelBisect, RespectsUnevenTargetRatios) {
  Hypergraph h = random_hg(200, 400, 9);
  PartitionerOptions opts;
  opts.seed = 5;
  Rng rng(opts.seed);
  for (double ratio : {0.25, 0.5, 0.75}) {
    auto side = multilevel_bisect(h, ratio, opts, rng);
    double w0 = 0.0;
    for (VertexId v = 0; v < h.num_vertices(); ++v)
      if (side[v] == 0) w0 += h.vertex_weight(v);
    EXPECT_NEAR(w0 / h.total_vertex_weight(), ratio, 0.15)
        << "ratio " << ratio;
  }
}

TEST(RecursiveKway, SumOfBisectionCutsEqualsConnectivityCost) {
  // Sanity of net splitting: the K-way connectivity-1 cost computed on the
  // flat partition matches the recursive accounting within rounding.
  Hypergraph h = random_hg(100, 180, 13);
  PartitionerOptions opts;
  opts.seed = 3;
  auto parts = partition_kway(h, 4, opts);
  const double cost = connectivity_minus_one(h, parts, 4);
  // Rebuild the cost from scratch by brute lambda counting.
  double brute = 0.0;
  for (NetId n = 0; n < h.num_nets(); ++n) {
    std::vector<bool> seen(4, false);
    int lambda = 0;
    for (VertexId v : h.pins(n))
      if (!seen[parts[v]]) {
        seen[parts[v]] = true;
        ++lambda;
      }
    brute += h.net_weight(n) * (lambda - 1);
  }
  EXPECT_NEAR(cost, brute, 1e-9);
}

TEST(Binw, PartitionIsContiguousAndComplete) {
  Hypergraph h = random_hg(70, 120, 17);
  const double total = h.total_net_weight() + h.total_folded_weight();
  BinwResult r = partition_binw(h, total * 0.4, {});
  ASSERT_GT(r.num_parts, 1);
  // Part ids are exactly 0..num_parts-1, all used.
  std::vector<bool> used(r.num_parts, false);
  for (int p : r.parts) {
    ASSERT_GE(p, 0);
    ASSERT_LT(p, r.num_parts);
    used[p] = true;
  }
  for (int p = 0; p < r.num_parts; ++p) EXPECT_TRUE(used[p]);
}

}  // namespace
}  // namespace bsio::hg
