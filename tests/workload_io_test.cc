#include <gtest/gtest.h>

#include <sstream>

#include "workload/image.h"
#include "workload/io.h"
#include "workload/synthetic.h"

namespace bsio::wl {
namespace {

TEST(WorkloadIo, RoundTripPreservesEverything) {
  SyntheticConfig cfg;
  cfg.num_tasks = 25;
  cfg.files_per_task = 4;
  cfg.overlap = 0.6;
  cfg.file_size_jitter = 0.3;
  cfg.seed = 21;
  Workload a = make_synthetic(cfg);

  std::stringstream ss;
  save_workload(a, ss);
  Workload b = load_workload(ss);

  ASSERT_EQ(a.num_tasks(), b.num_tasks());
  ASSERT_EQ(a.num_files(), b.num_files());
  for (FileId f = 0; f < a.num_files(); ++f) {
    EXPECT_DOUBLE_EQ(a.file(f).size_bytes, b.file(f).size_bytes);
    EXPECT_EQ(a.file(f).home_storage_node, b.file(f).home_storage_node);
  }
  for (TaskId t = 0; t < a.num_tasks(); ++t) {
    EXPECT_DOUBLE_EQ(a.task(t).compute_seconds, b.task(t).compute_seconds);
    EXPECT_EQ(a.task(t).files, b.task(t).files);
  }
}

TEST(WorkloadIo, RoundTripRealEmulatorWorkload) {
  ImageConfig cfg;
  cfg.num_tasks = 40;
  Workload a = make_image(cfg, 0.3);
  std::stringstream ss;
  save_workload(a, ss);
  Workload b = load_workload(ss);
  EXPECT_EQ(a.num_tasks(), b.num_tasks());
  EXPECT_DOUBLE_EQ(a.unique_request_bytes(), b.unique_request_bytes());
  EXPECT_DOUBLE_EQ(a.total_request_bytes(), b.total_request_bytes());
}

TEST(WorkloadIo, CommentsAndBlankLinesIgnored) {
  std::stringstream ss;
  ss << "# a comment\n\nbsio-workload 1\n# another\nfiles 1\n"
     << "1024 0\n\ntasks 1\n2.5 1 0\n";
  Workload w = load_workload(ss);
  EXPECT_EQ(w.num_files(), 1u);
  EXPECT_EQ(w.num_tasks(), 1u);
  EXPECT_DOUBLE_EQ(w.task(0).compute_seconds, 2.5);
  EXPECT_EQ(w.task(0).files, (std::vector<FileId>{0}));
}

TEST(WorkloadIoDeath, RejectsWrongMagic) {
  std::stringstream ss;
  ss << "not-a-workload 1\n";
  EXPECT_DEATH(load_workload(ss), "bsio-workload");
}

TEST(WorkloadIoDeath, RejectsTruncatedTaskTable) {
  std::stringstream ss;
  ss << "bsio-workload 1\nfiles 1\n1024 0\ntasks 2\n1.0 1 0\n";
  EXPECT_DEATH(load_workload(ss), "truncated");
}

}  // namespace
}  // namespace bsio::wl
