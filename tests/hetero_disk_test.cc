// Heterogeneous per-node disk capacities (Eqs. 16/21 allow DiskSpace_i per
// node): config plumbing, engine enforcement, BiPartition repair and the
// IP selection model must all honour them.

#include <gtest/gtest.h>

#include <set>

#include "core/batch_scheduler.h"
#include "sched/driver.h"
#include "workload/synthetic.h"

namespace bsio {
namespace {

wl::Workload hetero_workload(std::uint64_t seed = 31) {
  wl::SyntheticConfig cfg;
  cfg.num_tasks = 24;
  cfg.files_per_task = 3;
  cfg.overlap = 0.4;
  cfg.file_size_bytes = 50.0 * sim::kMB;
  cfg.num_storage_nodes = 2;
  cfg.seed = seed;
  return wl::make_synthetic(cfg);
}

TEST(HeteroDisk, ConfigHelpers) {
  sim::ClusterConfig c = sim::xio_cluster(3, 2);
  EXPECT_TRUE(c.unlimited_disk());
  c.disk_capacity = 10.0 * sim::kGB;
  EXPECT_FALSE(c.unlimited_disk());
  EXPECT_DOUBLE_EQ(c.aggregate_disk_capacity(), 30.0 * sim::kGB);
  c.disk_capacity_per_node = {1.0 * sim::kGB, 2.0 * sim::kGB, sim::kUnlimited};
  EXPECT_DOUBLE_EQ(c.node_disk_capacity(0), 1.0 * sim::kGB);
  EXPECT_DOUBLE_EQ(c.node_disk_capacity(1), 2.0 * sim::kGB);
  EXPECT_TRUE(std::isinf(c.aggregate_disk_capacity()));
  EXPECT_FALSE(c.unlimited_disk());
  EXPECT_TRUE(c.validate().ok());
}

TEST(HeteroDisk, ValidateRejectsWrongArity) {
  sim::ClusterConfig c = sim::xio_cluster(3, 2);
  c.disk_capacity_per_node = {sim::kGB};  // 1 entry for 3 nodes
  const auto v = c.validate();
  ASSERT_FALSE(v.ok());
  EXPECT_NE(v.error().message.find("per-node disk"), std::string::npos);
}

TEST(HeteroDisk, EngineEnforcesPerNodeCapacity) {
  // Node 0: room for one 50 MB file; node 1: plenty. Two tasks on node 0
  // with distinct files must trigger an eviction; the same on node 1 must
  // not.
  std::vector<wl::FileInfo> files(4);
  for (auto& f : files) {
    f.size_bytes = 50.0 * sim::kMB;
    f.home_storage_node = 0;
  }
  std::vector<wl::TaskInfo> tasks(4);
  for (int k = 0; k < 4; ++k) tasks[k].files = {static_cast<wl::FileId>(k)};
  wl::Workload w(std::move(tasks), std::move(files));

  sim::ClusterConfig c = sim::xio_cluster(2, 1);
  c.disk_capacity_per_node = {55.0 * sim::kMB, 500.0 * sim::kMB};

  sim::ExecutionEngine eng(c, w);
  sim::SubBatchPlan p;
  p.tasks = {0, 1, 2, 3};
  p.assignment[0] = 0;
  p.assignment[1] = 0;
  p.assignment[2] = 1;
  p.assignment[3] = 1;
  auto stats = eng.execute(p).value();
  EXPECT_EQ(stats.evictions, 1u);  // only node 0 evicts
  EXPECT_DOUBLE_EQ(eng.state().capacity(0), 55.0 * sim::kMB);
  EXPECT_LE(eng.state().used_bytes(0), 55.0 * sim::kMB);
}

TEST(HeteroDisk, AllSchedulersCompleteWithUnevenDisks) {
  wl::Workload w = hetero_workload();
  sim::ClusterConfig c = sim::xio_cluster(3, 2);
  const double unique = w.unique_request_bytes();
  c.disk_capacity = unique;  // fallback scalar, overridden below
  c.disk_capacity_per_node = {unique * 0.2, unique * 0.4, unique * 0.6};

  core::RunOptions opts;
  opts.ip.selection_mip.time_limit_seconds = 2.0;
  opts.ip.allocation_mip.time_limit_seconds = 3.0;
  for (core::Algorithm a : core::all_algorithms()) {
    SCOPED_TRACE(core::algorithm_name(a));
    auto r = core::run_batch_scheduler(a, w, c, opts);
    EXPECT_EQ(r.stats.tasks_executed, w.num_tasks());
  }
}

TEST(HeteroDisk, BiPartitionRepairHonoursSmallNode) {
  wl::Workload w = hetero_workload(37);
  sim::ClusterConfig c = sim::xio_cluster(2, 2);
  const double unique = w.unique_request_bytes();
  c.disk_capacity = unique;
  c.disk_capacity_per_node = {unique * 0.15, unique};

  sched::BiPartitionScheduler bp;
  sim::ExecutionEngine eng(c, w);
  sched::SchedulerContext ctx{w, c, eng};
  std::vector<wl::TaskId> pending;
  for (const auto& t : w.tasks()) pending.push_back(t.id);
  sim::SubBatchPlan plan = bp.plan_sub_batch(pending, ctx);
  ASSERT_FALSE(plan.empty());
  // Staged bytes on the small node stay within its capacity.
  std::set<wl::FileId> staged;
  for (wl::TaskId t : plan.tasks)
    if (plan.assignment.at(t) == 0)
      for (wl::FileId f : w.task(t).files) staged.insert(f);
  double bytes = 0.0;
  for (wl::FileId f : staged) bytes += w.file_size(f);
  EXPECT_LE(bytes, c.node_disk_capacity(0) + 1.0);
}

}  // namespace
}  // namespace bsio
