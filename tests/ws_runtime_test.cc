// Tests for the work-stealing runtime: coverage under adversarial steal
// schedules, randomized nested task graphs, deterministic reduction,
// BSIO_THREADS parsing, and the deterministic parallel-wave branch and
// bound riding on the shared runtime.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <vector>

#include "ip/branch_and_bound.h"
#include "lp/model.h"
#include "util/rng.h"
#include "util/ws_runtime.h"

namespace bsio {
namespace {

// ----------------------------------------------------------- task graphs

// A job that fans out into a nested TaskGroup of its own until its depth
// is spent; every execution bumps the shared counter once.
struct StressCtx {
  WsRuntime* rt = nullptr;
  std::atomic<long>* count = nullptr;
  int depth = 0;
  int fanout = 0;
};

void stress_job(void* p, std::size_t /*index*/) {
  auto* c = static_cast<StressCtx*>(p);
  c->count->fetch_add(1, std::memory_order_relaxed);
  if (c->depth == 0) return;
  StressCtx child{c->rt, c->count, c->depth - 1, c->fanout};
  WsRuntime::TaskGroup g(*c->rt);
  for (int i = 0; i < c->fanout; ++i)
    g.spawn(&stress_job, &child, static_cast<std::size_t>(i));
  // ~TaskGroup waits, so `child` outlives every spawned job.
}

// Total executions of a (roots x depth x fanout) stress graph: every job
// runs once, each non-leaf spawns `fanout` children.
long expected_jobs(int roots, int depth, int fanout) {
  long per_root = 0, level = 1;
  for (int d = 0; d <= depth; ++d) {
    per_root += level;
    level *= fanout;
  }
  return roots * per_root;
}

TEST(WsRuntimeStress, RandomizedNestedTaskGraphs) {
  Rng rng(20240808);
  for (std::size_t threads : {1u, 2u, 4u, 8u}) {
    for (bool force_steal : {false, true}) {
      WsRuntime::Options o;
      o.force_steal = force_steal;
      WsRuntime rt(threads, o);
      for (int round = 0; round < 8; ++round) {
        const int roots = 1 + static_cast<int>(rng.uniform(8));
        const int depth = static_cast<int>(rng.uniform(4));
        const int fanout = 2 + static_cast<int>(rng.uniform(3));
        std::atomic<long> count{0};
        StressCtx root{&rt, &count, depth, fanout};
        {
          WsRuntime::TaskGroup g(rt);
          for (int i = 0; i < roots; ++i)
            g.spawn(&stress_job, &root, static_cast<std::size_t>(i));
        }
        EXPECT_EQ(count.load(), expected_jobs(roots, depth, fanout))
            << "threads=" << threads << " steal=" << force_steal
            << " round=" << round;
      }
    }
  }
}

TEST(WsRuntimeStress, ParallelForInsideSpawnedJobs) {
  // A parallel_for issued from inside a worker must nest (push to the
  // worker's own deque and help), not deadlock or double-run indices.
  WsRuntime rt(4);
  const std::size_t n = 64, m = 128;
  std::vector<std::atomic<int>> hits(n * m);
  for (auto& h : hits) h = 0;
  rt.parallel_for_each(n, [&](std::size_t i) {
    rt.parallel_for_each(m, [&](std::size_t j) {
      hits[i * m + j].fetch_add(1, std::memory_order_relaxed);
    });
  });
  for (std::size_t k = 0; k < n * m; ++k) EXPECT_EQ(hits[k].load(), 1) << k;
}

TEST(WsRuntime, ForceStealCoversEveryIndexOnce) {
  WsRuntime::Options o;
  o.force_steal = true;
  WsRuntime rt(4, o);
  std::vector<std::atomic<int>> hits(1000);
  for (auto& h : hits) h = 0;
  rt.parallel_for_each(hits.size(), [&](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < hits.size(); ++i)
    EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(WsRuntime, ReduceBitIdenticalAcrossThreadCountsAndSchedules) {
  // With a pinned chunk count the reduction's partials and fold order are a
  // pure function of n — the float result must not move by a single bit
  // across thread counts or steal schedules.
  const std::size_t n = 10000, chunks = 16;
  auto run = [&](std::size_t threads, bool force_steal) {
    WsRuntime::Options o;
    o.force_steal = force_steal;
    WsRuntime rt(threads, o);
    return rt.parallel_reduce(
        n, 0.0,
        [](std::size_t i) { return 1.0 / (1.0 + static_cast<double>(i)); },
        [](double a, double b) { return a + b; }, chunks);
  };
  const double base = run(1, false);
  for (std::size_t threads : {2u, 4u, 8u})
    for (bool force_steal : {false, true})
      EXPECT_EQ(run(threads, force_steal), base)
          << "threads=" << threads << " steal=" << force_steal;
}

// ------------------------------------------------------------ BSIO_THREADS

class EnvThreadsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const char* old = std::getenv("BSIO_THREADS");
    if (old != nullptr) saved_ = old;
    had_ = old != nullptr;
  }
  void TearDown() override {
    if (had_)
      setenv("BSIO_THREADS", saved_.c_str(), 1);
    else
      unsetenv("BSIO_THREADS");
  }

 private:
  std::string saved_;
  bool had_ = false;
};

TEST_F(EnvThreadsTest, UnsetIsZeroAndValid) {
  unsetenv("BSIO_THREADS");
  const auto r = WsRuntime::env_threads();
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 0u);
  EXPECT_TRUE(WsRuntime::validate_env().ok());
}

TEST_F(EnvThreadsTest, ValidValueParses) {
  setenv("BSIO_THREADS", "4", 1);
  const auto r = WsRuntime::env_threads();
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 4u);
  EXPECT_TRUE(WsRuntime::validate_env().ok());
}

TEST_F(EnvThreadsTest, MalformedZeroNegativeAndHugeAreTypedErrors) {
  for (const char* bad : {"abc", "4x", "", "0", "-3", "99999999999999"}) {
    setenv("BSIO_THREADS", bad, 1);
    EXPECT_FALSE(WsRuntime::env_threads().ok()) << "value: " << bad;
    const Status s = WsRuntime::validate_env();
    ASSERT_FALSE(s.ok()) << "value: " << bad;
    EXPECT_NE(s.error().message.find("BSIO_THREADS"), std::string::npos)
        << "value: " << bad;
  }
}

// --------------------------------------------------- parallel-wave B&B

// A 2-machine makespan-assignment MIP with enough symmetry to open a real
// branch tree (optimum 14: sizes sum to 28, perfectly splittable).
lp::Model makespan_model(std::vector<int>& bins) {
  lp::Model m;
  const double sizes[8] = {7, 6, 5, 4, 3, 1, 1, 1};
  int z = m.add_var(1.0, 0.0, 28.0);
  int t[8][2];
  for (int i = 0; i < 8; ++i)
    for (int j = 0; j < 2; ++j) bins.push_back(t[i][j] = m.add_binary(0.0));
  for (int i = 0; i < 8; ++i)
    m.add_row(lp::Sense::kEq, 1.0, {{t[i][0], 1.0}, {t[i][1], 1.0}});
  for (int j = 0; j < 2; ++j) {
    std::vector<lp::RowEntry> row{{z, -1.0}};
    for (int i = 0; i < 8; ++i) row.push_back({t[i][j], sizes[i]});
    m.add_row(lp::Sense::kLe, 0.0, std::move(row));
  }
  return m;
}

ip::MipResult solve_wave(const lp::Model& m, const std::vector<int>& bins,
                         std::size_t wave) {
  ip::MipSolver solver(m, bins);
  ip::MipOptions o;
  o.node_order = ip::NodeOrder::kBestBound;
  o.parallel_wave = wave;
  o.time_limit_seconds = 1e6;  // only deterministic limits may bind
  return solver.solve(o);
}

TEST(MipParallelWave, FindsTheSequentialOptimum) {
  std::vector<int> bins;
  const lp::Model m = makespan_model(bins);
  const ip::MipResult seq = solve_wave(m, bins, 0);
  const ip::MipResult par = solve_wave(m, bins, 4);
  ASSERT_EQ(seq.status, ip::MipStatus::kOptimal);
  ASSERT_EQ(par.status, ip::MipStatus::kOptimal);
  EXPECT_DOUBLE_EQ(seq.objective, 14.0);
  EXPECT_DOUBLE_EQ(par.objective, 14.0);
}

TEST(MipParallelWave, BitIdenticalAcrossThreadCountsAndSchedules) {
  // The wave width — not the thread count or steal schedule — defines the
  // search: every field of the result, including the explored node count
  // and the incumbent bits, must be invariant.
  std::vector<int> bins;
  const lp::Model m = makespan_model(bins);

  WsRuntime::set_global_threads(1);
  const ip::MipResult base = solve_wave(m, bins, 4);
  ASSERT_EQ(base.status, ip::MipStatus::kOptimal);

  for (std::size_t threads : {2u, 8u}) {
    for (bool force_steal : {false, true}) {
      WsRuntime::Options o;
      o.force_steal = force_steal;
      WsRuntime::set_global_threads(threads, o);
      const ip::MipResult r = solve_wave(m, bins, 4);
      EXPECT_EQ(r.status, base.status);
      EXPECT_EQ(r.objective, base.objective);
      EXPECT_EQ(r.best_bound, base.best_bound);
      EXPECT_EQ(r.nodes, base.nodes);
      EXPECT_EQ(r.lp_iterations, base.lp_iterations);
      ASSERT_EQ(r.x.size(), base.x.size());
      for (std::size_t i = 0; i < r.x.size(); ++i)
        EXPECT_EQ(r.x[i], base.x[i]) << "x[" << i << "]";
    }
  }
  WsRuntime::set_global_threads(0);  // restore default
}

TEST(MipParallelWave, WideWavesStayCorrectOnRandomKnapsacks) {
  // Randomized cross-check: wave widths 1/2/8 must all land on the
  // sequential best-bound optimum.
  Rng rng(77);
  for (int inst = 0; inst < 6; ++inst) {
    lp::Model m;
    std::vector<int> bins;
    const int n = 10;
    double cap = 0.0;
    std::vector<double> wgt(n);
    for (int i = 0; i < n; ++i) {
      wgt[i] = 1.0 + static_cast<double>(rng.uniform(9));
      cap += wgt[i];
      const double value = 1.0 + static_cast<double>(rng.uniform(20));
      bins.push_back(m.add_binary(-value));
    }
    std::vector<lp::RowEntry> row;
    for (int i = 0; i < n; ++i) row.push_back({bins[i], wgt[i]});
    m.add_row(lp::Sense::kLe, 0.45 * cap, std::move(row));

    const ip::MipResult seq = solve_wave(m, bins, 0);
    ASSERT_EQ(seq.status, ip::MipStatus::kOptimal) << "inst " << inst;
    for (std::size_t wave : {1u, 2u, 8u}) {
      const ip::MipResult par = solve_wave(m, bins, wave);
      ASSERT_EQ(par.status, ip::MipStatus::kOptimal)
          << "inst " << inst << " wave " << wave;
      EXPECT_DOUBLE_EQ(par.objective, seq.objective)
          << "inst " << inst << " wave " << wave;
    }
  }
}

}  // namespace
}  // namespace bsio
