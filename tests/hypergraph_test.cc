#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "hypergraph/hypergraph.h"
#include "hypergraph/metrics.h"
#include "hypergraph/partitioner.h"
#include "util/rng.h"

namespace bsio::hg {
namespace {

// The example of paper Figure 2: 5 tasks, files a..e with sharing
//   a:{1,2}, b:{1,2,3}, c:{3,4}, d:{4,5}, e:{2,5}   (1-based tasks)
Hypergraph figure2() {
  HypergraphBuilder b;
  for (int i = 0; i < 5; ++i) b.add_vertex(1.0);
  b.add_net(1.0, {0, 1});        // a
  b.add_net(1.0, {0, 1, 2});     // b
  b.add_net(1.0, {2, 3});        // c
  b.add_net(1.0, {3, 4});        // d
  b.add_net(1.0, {1, 4});        // e
  return b.build();
}

TEST(Builder, DedupesPinsAndFoldsTinyNets) {
  HypergraphBuilder b;
  VertexId v0 = b.add_vertex(2.0);
  VertexId v1 = b.add_vertex(3.0);
  b.add_net(5.0, {v0, v0});   // collapses to size 1 -> folded into v0
  b.add_net(7.0, {v1});       // size 1 -> folded into v1
  b.add_net(1.0, {});         // dropped
  b.add_net(4.0, {v0, v1});   // survives
  Hypergraph h = b.build();
  EXPECT_EQ(h.num_vertices(), 2u);
  EXPECT_EQ(h.num_nets(), 1u);
  EXPECT_DOUBLE_EQ(h.folded_net_weight(0), 5.0);
  EXPECT_DOUBLE_EQ(h.folded_net_weight(1), 7.0);
  EXPECT_DOUBLE_EQ(h.total_net_weight(), 4.0);
  EXPECT_DOUBLE_EQ(h.total_vertex_weight(), 5.0);
}

TEST(Builder, CsrCrossConsistency) {
  Hypergraph h = figure2();
  EXPECT_EQ(h.num_vertices(), 5u);
  EXPECT_EQ(h.num_nets(), 5u);
  // vertex 1 (task 2) is in nets a, b, e.
  std::set<NetId> nets1(h.nets_begin(1), h.nets_end(1));
  EXPECT_EQ(nets1.size(), 3u);
  // Every pin relation appears in both CSR directions.
  for (NetId n = 0; n < h.num_nets(); ++n)
    for (VertexId v : h.pins(n)) {
      auto span = h.nets(v);
      EXPECT_NE(std::find(span.begin(), span.end(), n), span.end());
    }
}

TEST(Metrics, ConnectivityMinusOneMatchesHand) {
  Hypergraph h = figure2();
  // Parts {1,2,3} | {4,5} (0-based {0,1,2} | {3,4}).
  std::vector<int> parts{0, 0, 0, 1, 1};
  // Cut nets: c (lambda 2), e (lambda 2) -> cost 2; a, b, d internal.
  EXPECT_DOUBLE_EQ(connectivity_minus_one(h, parts, 2), 2.0);
  EXPECT_DOUBLE_EQ(cut_net_weight(h, parts, 2), 2.0);
  EXPECT_EQ(num_cut_nets(h, parts, 2), 2u);
  auto w = part_weights(h, parts, 2);
  EXPECT_DOUBLE_EQ(w[0], 3.0);
  EXPECT_DOUBLE_EQ(w[1], 2.0);
}

TEST(Metrics, ConnectivityCountsEachExtraPart) {
  HypergraphBuilder b;
  for (int i = 0; i < 3; ++i) b.add_vertex(1.0);
  b.add_net(2.5, {0, 1, 2});
  Hypergraph h = b.build();
  std::vector<int> parts{0, 1, 2};
  EXPECT_DOUBLE_EQ(connectivity_minus_one(h, parts, 3), 5.0);  // 2.5 * (3-1)
}

TEST(Metrics, IncidentNetWeightsIncludeSharedAndFolded) {
  HypergraphBuilder b;
  VertexId v0 = b.add_vertex(1.0, /*folded=*/3.0);
  VertexId v1 = b.add_vertex(1.0);
  b.add_net(10.0, {v0, v1});
  Hypergraph h = b.build();
  std::vector<int> parts{0, 1};
  auto inw = incident_net_weights(h, parts, 2);
  EXPECT_DOUBLE_EQ(inw[0], 13.0);  // net counts fully in both parts + folded
  EXPECT_DOUBLE_EQ(inw[1], 10.0);
}

TEST(Partitioner, KwayProducesValidBalancedParts) {
  Rng rng(3);
  HypergraphBuilder b;
  const int nv = 120;
  for (int i = 0; i < nv; ++i) b.add_vertex(1.0 + rng.uniform_double());
  for (int n = 0; n < 200; ++n) {
    std::vector<VertexId> pins;
    std::size_t sz = 2 + rng.uniform(5);
    for (std::size_t p = 0; p < sz; ++p)
      pins.push_back(static_cast<VertexId>(rng.uniform(nv)));
    b.add_net(1.0 + rng.uniform_double(), std::move(pins));
  }
  Hypergraph h = b.build();
  for (int k : {2, 3, 4, 8}) {
    PartitionerOptions opts;
    opts.seed = 17;
    auto parts = partition_kway(h, k, opts);
    ASSERT_EQ(parts.size(), h.num_vertices());
    std::set<int> used(parts.begin(), parts.end());
    for (int p : parts) {
      EXPECT_GE(p, 0);
      EXPECT_LT(p, k);
    }
    EXPECT_EQ(used.size(), static_cast<std::size_t>(k)) << "k=" << k;
    EXPECT_LT(imbalance(h, parts, k), 0.35) << "k=" << k;
  }
}

TEST(Partitioner, KwayOneIsTrivial) {
  Hypergraph h = figure2();
  auto parts = partition_kway(h, 1, {});
  for (int p : parts) EXPECT_EQ(p, 0);
}

TEST(Partitioner, FindsObviousClusterStructure) {
  // Two cliques of heavily-shared nets joined by one light net: a 2-way
  // partition must cut only the light net.
  HypergraphBuilder b;
  for (int i = 0; i < 20; ++i) b.add_vertex(1.0);
  Rng rng(5);
  for (int n = 0; n < 30; ++n) {
    std::vector<VertexId> pins;
    int base = n % 2 == 0 ? 0 : 10;
    for (int p = 0; p < 4; ++p)
      pins.push_back(static_cast<VertexId>(base + rng.uniform(10)));
    b.add_net(10.0, std::move(pins));
  }
  b.add_net(0.5, {3, 14});
  Hypergraph h = b.build();
  PartitionerOptions opts;
  opts.seed = 23;
  auto parts = partition_kway(h, 2, opts);
  // All of 0..9 on one side, 10..19 on the other.
  for (int i = 1; i < 10; ++i) EXPECT_EQ(parts[i], parts[0]);
  for (int i = 11; i < 20; ++i) EXPECT_EQ(parts[i], parts[10]);
  EXPECT_NE(parts[0], parts[10]);
  EXPECT_DOUBLE_EQ(cut_net_weight(h, parts, 2), 0.5);
}

TEST(Partitioner, DeterministicForSeed) {
  Hypergraph h = figure2();
  PartitionerOptions opts;
  opts.seed = 7;
  auto a = partition_kway(h, 2, opts);
  auto b = partition_kway(h, 2, opts);
  EXPECT_EQ(a, b);
}

TEST(Binw, EveryPartRespectsBound) {
  Rng rng(11);
  HypergraphBuilder b;
  const int nv = 80;
  for (int i = 0; i < nv; ++i) b.add_vertex(1.0);
  for (int n = 0; n < 150; ++n) {
    std::vector<VertexId> pins;
    std::size_t sz = 2 + rng.uniform(4);
    for (std::size_t p = 0; p < sz; ++p)
      pins.push_back(static_cast<VertexId>(rng.uniform(nv)));
    b.add_net(1.0 + 4.0 * rng.uniform_double(), std::move(pins));
  }
  Hypergraph h = b.build();
  const double total = h.total_net_weight() + h.total_folded_weight();
  for (double frac : {0.3, 0.5, 0.8}) {
    const double bound = total * frac;
    PartitionerOptions opts;
    opts.seed = 29;
    BinwResult r = partition_binw(h, bound, opts);
    ASSERT_GT(r.num_parts, 0);
    auto inw = incident_net_weights(h, r.parts, r.num_parts);
    for (int p = 0; p < r.num_parts; ++p)
      EXPECT_LE(inw[p], bound + 1e-9) << "part " << p << " frac " << frac;
  }
}

TEST(Binw, SinglePartWhenEverythingFits) {
  Hypergraph h = figure2();
  const double total = h.total_net_weight() + h.total_folded_weight();
  BinwResult r = partition_binw(h, total * 1.01, {});
  EXPECT_EQ(r.num_parts, 1);
}

TEST(Binw, TighterBoundMeansMoreParts) {
  Rng rng(13);
  HypergraphBuilder b;
  for (int i = 0; i < 60; ++i) b.add_vertex(1.0);
  for (int n = 0; n < 100; ++n) {
    std::vector<VertexId> pins;
    for (int p = 0; p < 3; ++p)
      pins.push_back(static_cast<VertexId>(rng.uniform(60)));
    b.add_net(1.0, std::move(pins));
  }
  Hypergraph h = b.build();
  const double total = h.total_net_weight() + h.total_folded_weight();
  BinwResult loose = partition_binw(h, total * 0.9, {});
  BinwResult tight = partition_binw(h, total * 0.3, {});
  EXPECT_GE(tight.num_parts, loose.num_parts);
  EXPECT_GE(tight.num_parts, 2);
}

class KwaySweep : public ::testing::TestWithParam<std::tuple<int, int>> {};

// Property sweep: for random hypergraphs across sizes and k, the K-way
// partition is complete, within bounds, and never worse than the worst-case
// (every net fully cut) connectivity cost.
TEST_P(KwaySweep, InvariantsHold) {
  auto [nv, k] = GetParam();
  Rng rng(static_cast<std::uint64_t>(nv) * 131 + static_cast<std::uint64_t>(k));
  HypergraphBuilder b;
  for (int i = 0; i < nv; ++i) b.add_vertex(0.5 + rng.uniform_double());
  for (int n = 0; n < 2 * nv; ++n) {
    std::vector<VertexId> pins;
    std::size_t sz = 2 + rng.uniform(6);
    for (std::size_t p = 0; p < sz; ++p)
      pins.push_back(static_cast<VertexId>(rng.uniform(nv)));
    b.add_net(rng.uniform_double() * 3.0, std::move(pins));
  }
  Hypergraph h = b.build();
  PartitionerOptions opts;
  opts.seed = 31;
  auto parts = partition_kway(h, k, opts);
  ASSERT_EQ(parts.size(), h.num_vertices());
  for (int p : parts) {
    EXPECT_GE(p, 0);
    EXPECT_LT(p, k);
  }
  double cost = connectivity_minus_one(h, parts, k);
  double worst = h.total_net_weight() * (k - 1);
  EXPECT_GE(cost, 0.0);
  EXPECT_LE(cost, worst + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Sizes, KwaySweep,
                         ::testing::Combine(::testing::Values(16, 50, 150,
                                                              400),
                                            ::testing::Values(2, 3, 5, 8)));

}  // namespace
}  // namespace bsio::hg
