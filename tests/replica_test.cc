// Replica lifecycle manager tests (src/replica, DESIGN.md §15).
//
// Part 1 covers the manager itself: tier-table validation and the typed
// errors it surfaces through run_batch and StreamServiceLoop, the residency
// state machine (kSatisfied / kDegraded / kDirty / kLost) driven through
// writes, crashes and repair rounds, and version-epoch correctness of the
// write-back model. Part 2 is the replication-off bit-identity pin: with
// ReplicaConfig left at its default every golden row of the PR 4 topology
// table must reproduce BIT for BIT at 1, 2 and 8 planning threads — the
// epoch/home-validity machinery must be invisible to output-free workloads.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "core/batch_scheduler.h"
#include "replica/replica.h"
#include "sched/driver.h"
#include "sched/minmin.h"
#include "service/catalog.h"
#include "service/stream.h"
#include "sim/engine.h"
#include "sim/faults.h"
#include "util/ws_runtime.h"
#include "workload/synthetic.h"
#include "workload/types.h"

namespace bsio {
namespace {

sim::ClusterConfig replica_cluster(std::size_t compute = 2,
                                   std::size_t storage = 2) {
  sim::ClusterConfig c;
  c.num_compute_nodes = compute;
  c.num_storage_nodes = storage;
  c.storage_disk_bw = 100.0 * sim::kMB;  // remote: 1 s per 100 MB file
  c.storage_net_bw = 1000.0 * sim::kMB;
  c.compute_net_bw = 400.0 * sim::kMB;   // replica: 0.25 s per file
  c.local_disk_bw = 1000.0 * sim::kMB;
  return c;
}

// One 100 MB file homed on storage node 0, one task that reads it and
// (when `writes`) writes it back.
wl::Workload one_file_workload(bool writes, double compute_seconds = 1.0) {
  std::vector<wl::FileInfo> files(1);
  files[0].size_bytes = 100.0 * sim::kMB;
  files[0].home_storage_node = 0;
  std::vector<wl::TaskInfo> tasks(1);
  tasks[0].files = {0};
  if (writes) tasks[0].outputs = {0};
  tasks[0].compute_seconds = compute_seconds;
  return wl::Workload(std::move(tasks), std::move(files));
}

wl::Workload shared_workload(std::uint64_t seed = 23) {
  wl::SyntheticConfig cfg;
  cfg.num_tasks = 20;
  cfg.files_per_task = 3;
  cfg.overlap = 0.5;
  cfg.file_size_bytes = 64.0 * sim::kMB;
  cfg.num_storage_nodes = 2;
  cfg.seed = seed;
  return wl::make_synthetic(cfg);
}

replica::ReplicaConfig rf_config(std::uint32_t rf) {
  replica::ReplicaConfig cfg;
  cfg.enabled = true;
  cfg.tiers = {{0.0, rf}};
  return cfg;
}

sim::SubBatchPlan plan_on(std::vector<wl::TaskId> tasks, wl::NodeId node) {
  sim::SubBatchPlan p;
  p.tasks = std::move(tasks);
  for (wl::TaskId t : p.tasks) p.assignment[t] = node;
  return p;
}

// ------------------------------------------------------- config validation

TEST(ReplicaConfig, DisabledValidatesTrivially) {
  replica::ReplicaConfig cfg;  // enabled = false, empty tiers
  EXPECT_TRUE(cfg.validate(2).ok());
}

TEST(ReplicaConfig, ValidateCatchesBadValues) {
  replica::ReplicaConfig cfg;
  cfg.enabled = true;
  EXPECT_FALSE(cfg.validate(2).ok());  // empty tier table

  cfg.tiers = {{0.0, 0}};  // zero target
  EXPECT_FALSE(cfg.validate(2).ok());

  cfg.tiers = {{0.0, 4}};  // 2 compute nodes + home = 3 locations max
  EXPECT_FALSE(cfg.validate(2).ok());
  EXPECT_TRUE(cfg.validate(3).ok());

  cfg.tiers = {{-1.0, 1}};  // negative popularity boundary
  EXPECT_FALSE(cfg.validate(2).ok());

  cfg.tiers = {{0.0, 1}, {5.0, 2}, {5.0, 3}};  // overlapping boundaries
  const Status overlap = cfg.validate(4);
  ASSERT_FALSE(overlap.ok());
  EXPECT_NE(overlap.error().message.find("overlap"), std::string::npos);

  cfg.tiers = {{0.0, 1}, {5.0, 2}};
  cfg.repair_bandwidth_cap = -1.0;
  EXPECT_FALSE(cfg.validate(4).ok());
  cfg.repair_bandwidth_cap = 0.0;
  EXPECT_TRUE(cfg.validate(4).ok());
}

TEST(ReplicaConfig, TierLookupPicksLastCoveringTier) {
  replica::ReplicaConfig cfg;
  cfg.enabled = true;
  cfg.tiers = {{0.0, 1}, {5.0, 2}, {10.0, 3}};
  ASSERT_TRUE(cfg.validate(4).ok());
  EXPECT_EQ(cfg.target_rf(0.0), 1u);
  EXPECT_EQ(cfg.target_rf(4.9), 1u);
  EXPECT_EQ(cfg.target_rf(5.0), 2u);
  EXPECT_EQ(cfg.target_rf(9.0), 2u);
  EXPECT_EQ(cfg.target_rf(100.0), 3u);
}

TEST(ReplicaConfig, InvalidConfigIsTypedThroughRunBatch) {
  const wl::Workload w = shared_workload();
  const sim::ClusterConfig c = replica_cluster();
  sched::MinMinScheduler mm;

  sched::BatchRunOptions opts;
  opts.replication = rf_config(5);  // > 2 compute nodes + home
  auto r = sched::run_batch(mm, w, c, opts);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error.find("compute nodes"), std::string::npos);
  EXPECT_EQ(r.tasks_stranded, w.num_tasks());

  opts.replication = rf_config(2);
  opts.replication.repair_bandwidth_cap = -1.0;
  r = sched::run_batch(mm, w, c, opts);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error.find("repair_bandwidth_cap"), std::string::npos);
}

TEST(ReplicaConfig, InvalidConfigIsTypedThroughStreamLoop) {
  service::SharedCatalogConfig ccfg;
  ccfg.num_files = 16;
  ccfg.num_storage_nodes = 2;
  const std::vector<wl::FileInfo> catalog = service::make_shared_catalog(ccfg);
  service::ServiceBatchConfig bcfg;
  bcfg.tasks_per_batch = 4;
  std::vector<service::BatchArrival> arrivals(1);
  arrivals[0].batch = service::make_service_batch(catalog, bcfg, 1);

  service::StreamOptions opts;
  opts.replication.enabled = true;
  opts.replication.tiers = {{0.0, 1}, {0.0, 2}};  // overlapping boundaries
  sched::MinMinScheduler mm;
  service::StreamServiceLoop loop(mm, replica_cluster(), catalog, opts);
  auto res = loop.run(std::move(arrivals));
  ASSERT_FALSE(res.ok());
  EXPECT_NE(res.error().message.find("overlap"), std::string::npos);
}

// -------------------------------------------------- residency state machine

TEST(ReplicaManager, ResidencyWalksDegradedDirtySatisfied) {
  const wl::Workload w = one_file_workload(/*writes=*/true);
  const sim::ClusterConfig c = replica_cluster(2, 2);
  sim::ExecutionEngine eng(c, w);
  replica::ReplicaConfig cfg = rf_config(3);  // home + both compute nodes
  ASSERT_TRUE(cfg.validate(c.num_compute_nodes).ok());
  replica::ReplicaManager mgr(w, cfg);

  // Fresh engine: only the home copy exists.
  EXPECT_EQ(mgr.actual_rf(eng, 0), 1u);
  EXPECT_EQ(mgr.desired_rf(eng, 0), 3u);
  EXPECT_EQ(mgr.residency(eng, 0), replica::Residency::kDegraded);
  ASSERT_EQ(mgr.files_below_target(eng), std::vector<wl::FileId>{0});

  // Repair round: fan-out onto both compute nodes.
  replica::RepairReport rep = mgr.run_repairs(eng, 0.0);
  EXPECT_EQ(rep.flushes_scheduled, 0u);
  EXPECT_EQ(rep.replicas_scheduled, 2u);
  EXPECT_EQ(rep.deferred, 0u);
  EXPECT_GT(rep.last_completion, 0.0);
  EXPECT_EQ(mgr.actual_rf(eng, 0), 3u);
  EXPECT_EQ(mgr.residency(eng, 0), replica::Residency::kSatisfied);
  EXPECT_TRUE(mgr.files_below_target(eng).empty());
  EXPECT_EQ(eng.totals().replicas_created, 2u);

  // The write bumps the epoch, drops node 1's copy, and dirties the home.
  ASSERT_TRUE(eng.execute(plan_on({0}, 0)).ok());
  EXPECT_EQ(eng.file_epoch(0), 1u);
  EXPECT_FALSE(eng.home_valid(0));
  EXPECT_EQ(mgr.actual_rf(eng, 0), 1u);  // the writer's copy only
  EXPECT_EQ(mgr.residency(eng, 0), replica::Residency::kDirty);
  EXPECT_EQ(eng.totals().replicas_invalidated, 1u);

  // Next round: write-back first, then re-fan-out.
  rep = mgr.run_repairs(eng, eng.makespan());
  EXPECT_EQ(rep.flushes_scheduled, 1u);
  EXPECT_EQ(rep.replicas_scheduled, 1u);
  EXPECT_TRUE(eng.home_valid(0));
  EXPECT_EQ(mgr.actual_rf(eng, 0), 3u);
  EXPECT_EQ(mgr.residency(eng, 0), replica::Residency::kSatisfied);
  EXPECT_EQ(eng.totals().home_flushes, 1u);
  EXPECT_EQ(eng.totals().replicas_created, 3u);
}

TEST(ReplicaManager, WriterCrashBeforeFlushIsLostAndUnrepairable) {
  // Task 0 writes file 0 on node 0 and completes; task 1 keeps node 0 busy
  // across the crash at t = 4, so the node dies holding the only current
  // copy of file 0's new version.
  std::vector<wl::FileInfo> files(2);
  for (auto& f : files) {
    f.size_bytes = 100.0 * sim::kMB;
    f.home_storage_node = 0;
  }
  std::vector<wl::TaskInfo> tasks(3);
  tasks[0].files = {0};
  tasks[0].outputs = {0};
  tasks[0].compute_seconds = 1.0;
  tasks[1].files = {1};
  tasks[1].compute_seconds = 10.0;
  tasks[2].files = {0};
  tasks[2].compute_seconds = 0.5;
  const wl::Workload w(std::move(tasks), std::move(files));

  const sim::ClusterConfig c = replica_cluster(2, 2);
  sim::EngineOptions eopts;
  eopts.faults.compute_crashes = {{0, 4.0}};
  sim::ExecutionEngine eng(c, w, eopts);
  replica::ReplicaConfig cfg = rf_config(2);
  ASSERT_TRUE(cfg.validate(c.num_compute_nodes).ok());
  replica::ReplicaManager mgr(w, cfg);

  ASSERT_TRUE(eng.execute(plan_on({0, 1}, 0)).ok());
  EXPECT_EQ(eng.take_orphaned(), std::vector<wl::TaskId>{1});
  EXPECT_EQ(eng.file_epoch(0), 1u);
  EXPECT_FALSE(eng.home_valid(0));
  EXPECT_EQ(mgr.actual_rf(eng, 0), 0u);
  EXPECT_EQ(mgr.residency(eng, 0), replica::Residency::kLost);

  // Repair cannot resurrect a lost epoch: file 0 stays lost (its fan-out
  // is deferred for lack of any current source) while file 1 — whose home
  // is still valid — is re-replicated normally.
  const replica::RepairReport rep = mgr.run_repairs(eng, eng.makespan());
  EXPECT_EQ(rep.flushes_scheduled, 0u);
  EXPECT_EQ(rep.replicas_scheduled, 1u);
  EXPECT_GT(rep.deferred, 0u);
  EXPECT_EQ(eng.state().num_copies(0), 0u);
  EXPECT_EQ(mgr.residency(eng, 0), replica::Residency::kLost);
  EXPECT_EQ(mgr.files_below_target(eng), std::vector<wl::FileId>{0});

  // A later read rolls back to the stale home copy and counts the loss.
  ASSERT_TRUE(eng.execute(plan_on({2}, 1)).ok());
  EXPECT_EQ(eng.totals().lost_versions, 1u);
}

TEST(ReplicaManager, PopularityOverrideSelectsHotterTier) {
  const wl::Workload w = one_file_workload(/*writes=*/false);
  const sim::ClusterConfig c = replica_cluster(2, 2);
  sim::ExecutionEngine eng(c, w);
  replica::ReplicaConfig cfg;
  cfg.enabled = true;
  cfg.tiers = {{0.0, 1}, {10.0, 3}};
  ASSERT_TRUE(cfg.validate(c.num_compute_nodes).ok());
  replica::ReplicaManager mgr(w, cfg);

  // One pending request: cold tier, the home copy alone satisfies it.
  EXPECT_EQ(mgr.desired_rf(eng, 0), 1u);
  EXPECT_EQ(mgr.residency(eng, 0), replica::Residency::kSatisfied);

  // The service's cross-batch count promotes it to the hot tier.
  mgr.note_popularity(0, 25.0);
  EXPECT_EQ(mgr.popularity(eng, 0), 25.0);
  EXPECT_EQ(mgr.desired_rf(eng, 0), 3u);
  EXPECT_EQ(mgr.residency(eng, 0), replica::Residency::kDegraded);
}

// ------------------------------------------- write-back epochs and tracing

TEST(ReplicaEpochs, WriteInvalidatesOtherCopiesAndTracesIt) {
  const wl::Workload w = one_file_workload(/*writes=*/true);
  const sim::ClusterConfig c = replica_cluster(2, 2);
  sim::EngineOptions eopts;
  eopts.trace = true;
  sim::ExecutionEngine eng(c, w, eopts);

  // Replicate onto both nodes, then write on node 0.
  ASSERT_TRUE(eng.stage_replica(0, 0, 0.0, 0.0).ok());
  ASSERT_TRUE(eng.stage_replica(0, 1, 0.0, 0.0).ok());
  ASSERT_TRUE(eng.execute(plan_on({0}, 0)).ok());

  EXPECT_EQ(eng.file_epoch(0), 1u);
  EXPECT_FALSE(eng.home_valid(0));
  EXPECT_TRUE(eng.state().has(0, 0));    // the writer keeps the new version
  EXPECT_FALSE(eng.state().has(1, 0));   // the stale copy is gone
  EXPECT_EQ(eng.totals().replicas_invalidated, 1u);

  std::size_t creates = 0, invalidates = 0;
  for (const auto& e : eng.trace()) {
    if (e.kind == sim::TraceEvent::Kind::kReplicaCreate) ++creates;
    if (e.kind == sim::TraceEvent::Kind::kReplicaInvalidate) {
      ++invalidates;
      EXPECT_EQ(e.src, 0u);  // writer
      EXPECT_EQ(e.dst, 1u);  // invalidated holder
      EXPECT_EQ(e.file, 0u);
    }
  }
  EXPECT_EQ(creates, 2u);
  EXPECT_EQ(invalidates, 1u);

  // Write-back re-validates the home exactly once.
  ASSERT_TRUE(eng.flush_to_home(0, eng.makespan(), 0.0).ok());
  EXPECT_TRUE(eng.home_valid(0));
  EXPECT_EQ(eng.totals().home_flushes, 1u);
  EXPECT_FALSE(eng.flush_to_home(0, eng.makespan(), 0.0).ok());

  const std::string csv = sim::trace_to_csv(eng.trace());
  EXPECT_NE(csv.find("replica_create"), std::string::npos);
  EXPECT_NE(csv.find("replica_invalidate"), std::string::npos);
}

TEST(ReplicaEpochs, StageReplicaRejectsBadRequests) {
  const wl::Workload w = one_file_workload(/*writes=*/false);
  sim::ExecutionEngine eng(replica_cluster(2, 2), w);
  EXPECT_FALSE(eng.stage_replica(7, 0, 0.0, 0.0).ok());   // unknown file
  EXPECT_FALSE(eng.stage_replica(0, 9, 0.0, 0.0).ok());   // unknown node
  EXPECT_FALSE(eng.stage_replica(0, 0, -1.0, 0.0).ok());  // negative start
  ASSERT_TRUE(eng.stage_replica(0, 0, 0.0, 0.0).ok());
  EXPECT_FALSE(eng.stage_replica(0, 0, 0.0, 0.0).ok());   // already held
}

TEST(ReplicaEpochs, BandwidthCapLengthensRepairTransfers) {
  const wl::Workload w = one_file_workload(/*writes=*/false);
  sim::ExecutionEngine eng(replica_cluster(2, 2), w);

  // Uncapped: the 100 MB file moves at the 100 MB/s remote path rate.
  auto fast = eng.stage_replica(0, 0, 0.0, 0.0);
  ASSERT_TRUE(fast.ok());
  EXPECT_DOUBLE_EQ(fast.value(), 1.0);

  // Capped at 50 MB/s the same copy takes 2 s; a cap above the path
  // bandwidth is inert.
  auto slow = eng.stage_replica(0, 1, 10.0, 50.0 * sim::kMB);
  ASSERT_TRUE(slow.ok());
  EXPECT_DOUBLE_EQ(slow.value(), 12.0);

  EXPECT_EQ(eng.totals().replicas_created, 2u);
  EXPECT_DOUBLE_EQ(eng.totals().repair_bytes, 200.0 * sim::kMB);
  EXPECT_DOUBLE_EQ(eng.totals().repair_seconds, 3.0);
}

// ---------------------------------------------------- end-to-end pipelines

TEST(ReplicaEndToEnd, RepairRestoresTargetRfAfterFailStopCrash) {
  const wl::Workload w = shared_workload(31);
  const sim::ClusterConfig c = replica_cluster(3, 2);
  sched::BatchRunOptions opts;
  opts.faults.compute_crashes = {{1, 3.0}};
  opts.replication = rf_config(2);
  sched::MinMinScheduler mm;
  const auto r = sched::run_batch(mm, w, c, opts);
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_EQ(r.stats.tasks_executed, w.num_tasks());
  EXPECT_EQ(r.stats.node_crashes, 1u);
  // The crash dropped node 1's copies; repair re-established every file's
  // tier target before the run reported.
  EXPECT_EQ(r.replica_deficit, 0u);
  EXPECT_GT(r.stats.replicas_created, 0u);
  EXPECT_GT(r.stats.repair_bytes, 0.0);
  EXPECT_GT(r.stats.repair_seconds, 0.0);
}

TEST(ReplicaEndToEnd, StreamLoopRepairsBetweenArrivalsWithWrites) {
  service::SharedCatalogConfig ccfg;
  ccfg.num_files = 24;
  ccfg.num_storage_nodes = 2;
  ccfg.file_size_jitter = 0.0;
  ccfg.mean_file_size_bytes = 32.0 * sim::kMB;
  const std::vector<wl::FileInfo> catalog = service::make_shared_catalog(ccfg);
  service::ServiceBatchConfig bcfg;
  bcfg.tasks_per_batch = 6;
  bcfg.files_per_task = 3;
  bcfg.write_fraction = 0.5;  // read-modify-write tasks dirty their files

  std::vector<service::BatchArrival> arrivals(2);
  arrivals[0] = {0.0, 0, {}, service::make_service_batch(catalog, bcfg, 7)};
  arrivals[1] = {200.0, 1, {},
                 service::make_service_batch(catalog, bcfg, 8)};
  bool wrote = false;
  for (const auto& a : arrivals)
    for (const auto& t : a.batch.tasks()) wrote |= !t.outputs.empty();
  ASSERT_TRUE(wrote);  // the write draw must have fired at fraction 0.5

  service::StreamOptions opts;
  opts.replication = rf_config(2);
  sched::MinMinScheduler mm;
  service::StreamServiceLoop loop(mm, replica_cluster(2, 2), catalog, opts);
  auto res = loop.run(std::move(arrivals));
  ASSERT_TRUE(res.ok()) << res.error().message;
  const service::StreamResult& s = res.value();
  EXPECT_EQ(s.stats.batches_completed, 2u);
  EXPECT_GT(s.stats.repair_rounds, 0u);
  EXPECT_EQ(s.stats.replica_deficit, 0u);
  EXPECT_GT(s.stats.exec.replicas_created, 0u);
  // Writes happened, so write-back flushes must have too.
  EXPECT_GT(s.stats.exec.home_flushes, 0u);
}

TEST(ReplicaEndToEnd, RepairBudgetSpreadsWorkOverRounds) {
  const wl::Workload w = one_file_workload(/*writes=*/false);
  const sim::ClusterConfig c = replica_cluster(3, 2);
  sim::ExecutionEngine eng(c, w);
  replica::ReplicaConfig cfg = rf_config(4);  // home + all three nodes
  cfg.max_repairs_per_round = 1;
  ASSERT_TRUE(cfg.validate(c.num_compute_nodes).ok());
  replica::ReplicaManager mgr(w, cfg);

  replica::RepairReport rep = mgr.run_repairs(eng, 0.0);
  EXPECT_EQ(rep.replicas_scheduled, 1u);
  EXPECT_GT(rep.deferred, 0u);
  rep = mgr.run_repairs(eng, rep.last_completion);
  EXPECT_EQ(rep.replicas_scheduled, 1u);
  rep = mgr.run_repairs(eng, rep.last_completion);
  EXPECT_EQ(rep.replicas_scheduled, 1u);
  EXPECT_TRUE(mgr.files_below_target(eng).empty());
}

// -------------------------------------- cross-batch holder attribution

TEST(CrossBatchCatalog, HolderAttributionSurvivesEvictionEpochs) {
  std::vector<wl::FileInfo> catalog(2);
  for (std::size_t i = 0; i < 2; ++i) {
    catalog[i].id = static_cast<wl::FileId>(i);
    catalog[i].size_bytes = 100.0 * sim::kMB;
    catalog[i].home_storage_node = 0;
  }
  // Both tasks read file 0 only: popularity 2 vs 0, so the Eq. 22 eviction
  // key singles out file 1 unambiguously (no copy-count tie).
  std::vector<wl::TaskInfo> tasks(2);
  tasks[0].files = {0};
  tasks[1].files = {0};
  for (auto& t : tasks) t.compute_seconds = 1.0;
  const wl::Workload batch(std::move(tasks), catalog);

  service::CrossBatchOptions copts;
  copts.carry_fraction = 0.5;  // every fold trims each node to half
  service::CrossBatchCatalog cbc(catalog.size(), replica_cluster(2, 2),
                                 copts);
  EXPECT_TRUE(cbc.replica_nodes(0).empty());
  EXPECT_TRUE(cbc.dropped_last_fold().empty());

  // Node 0 carries both files, node 1 carries the popular one.
  sim::InitialCacheState final_cache;
  final_cache.entries = {{0, 0, 1.0, 9.0}, {0, 1, 2.0, 3.0},
                         {1, 0, 1.0, 8.0}};
  cbc.fold_batch(batch, final_cache, /*batch_start=*/100.0);

  // Node 0 drops the never-requested file, node 1 must give up its only
  // copy to meet the fraction.
  EXPECT_EQ(cbc.replica_nodes(0), std::vector<wl::NodeId>{0});
  EXPECT_TRUE(cbc.replica_nodes(1).empty());
  EXPECT_EQ(cbc.carried_copies(0), 1u);
  EXPECT_EQ(cbc.carried_copies(1), 0u);
  ASSERT_EQ(cbc.dropped_last_fold().size(), 2u);
  EXPECT_EQ(cbc.dropped_last_fold()[0].node, 0u);
  EXPECT_EQ(cbc.dropped_last_fold()[0].file, 1u);
  EXPECT_EQ(cbc.dropped_last_fold()[1].node, 1u);
  EXPECT_EQ(cbc.dropped_last_fold()[1].file, 0u);
  // Attribution keeps the global-clock stamps of the released copies.
  EXPECT_DOUBLE_EQ(cbc.dropped_last_fold()[0].last_use, 103.0);
  EXPECT_DOUBLE_EQ(cbc.dropped_last_fold()[1].last_use, 108.0);

  // The next fold starts a fresh attribution epoch: the previous drops do
  // not leak into it, and the index tracks the new carry exactly.
  sim::InitialCacheState second;
  second.entries = {{1, 1, 0.5, 0.5}};
  cbc.fold_batch(batch, second, /*batch_start=*/200.0);
  EXPECT_TRUE(cbc.replica_nodes(0).empty());
  EXPECT_TRUE(cbc.replica_nodes(1).empty());  // trimmed by the fraction
  ASSERT_EQ(cbc.dropped_last_fold().size(), 1u);
  EXPECT_EQ(cbc.dropped_last_fold()[0].node, 1u);
  EXPECT_EQ(cbc.dropped_last_fold()[0].file, 1u);
}

// ------------------------------------------- replication-off bit identity

wl::Workload golden_workload() {
  wl::SyntheticConfig cfg;
  cfg.num_tasks = 24;
  cfg.files_per_task = 3;
  cfg.overlap = 0.5;
  cfg.file_size_bytes = 50.0 * sim::kMB;
  cfg.num_storage_nodes = 4;
  cfg.seed = 11;
  return wl::make_synthetic(cfg);
}

struct GoldenRow {
  const char* preset;
  const char* scheduler;
  double batch_time;  // hexfloat: compared for exact bit equality
  std::size_t sub_batches;
  std::size_t remote_transfers;
  std::size_t replications;
  std::size_t evictions;
  std::size_t cache_hits;
  double remote_bytes;
  double replica_bytes;
};

// The PR 4 topology goldens (tests/topology_test.cc, captured from commit
// edb0c75), re-pinned here with the replica subsystem COMPILED IN but
// disabled: all-zero epochs and all-valid homes must keep every staging
// decision, tie-break and counter bit-identical, at every thread count.
const GoldenRow kGolden[] = {
    // clang-format off
    {"xio", "IP", 0x1.dd41d41d41d43p+2, 1, 40, 8, 0, 24, 0x1.f4p+30, 0x1.9p+28},
    {"xio", "BiPartition", 0x1.915f15f15f16p+2, 1, 48, 0, 0, 24, 0x1.2cp+31, 0x0p+0},
    {"xio", "MinMin", 0x1.915f15f15f16p+2, 1, 50, 0, 0, 22, 0x1.388p+31, 0x0p+0},
    {"xio", "JobDataPresent", 0x1.da35a35a35a37p+2, 1, 50, 0, 0, 22, 0x1.388p+31, 0x0p+0},
    {"osumed", "IP", 0x1.4fe6666666666p+7, 1, 41, 11, 0, 20, 0x1.004p+31, 0x1.13p+29},
    {"osumed", "BiPartition", 0x1.268p+7, 1, 36, 16, 0, 20, 0x1.c2p+30, 0x1.9p+29},
    {"osumed", "MinMin", 0x1.2519999999999p+7, 1, 36, 13, 0, 23, 0x1.c2p+30, 0x1.45p+29},
    {"osumed", "JobDataPresent", 0x1.2519999999999p+7, 1, 36, 13, 0, 23, 0x1.c2p+30, 0x1.45p+29},
    {"xio_disk", "IP", 0x1.d222222222223p+2, 2, 44, 8, 4, 20, 0x1.13p+31, 0x1.9p+28},
    {"xio_disk", "BiPartition", 0x1.a09c09c09c09dp+2, 2, 49, 0, 2, 23, 0x1.324p+31, 0x0p+0},
    {"xio_disk", "MinMin", 0x1.915f15f15f16p+2, 1, 50, 0, 2, 22, 0x1.388p+31, 0x0p+0},
    {"xio_disk", "JobDataPresent", 0x1.da35a35a35a37p+2, 1, 50, 0, 7, 22, 0x1.388p+31, 0x0p+0},
    {"osumed_disk", "IP", 0x1.53b3333333333p+7, 2, 42, 14, 8, 16, 0x1.068p+31, 0x1.5ep+29},
    {"osumed_disk", "BiPartition", 0x1.23b3333333333p+7, 2, 36, 20, 8, 16, 0x1.c2p+30, 0x1.f4p+29},
    {"osumed_disk", "MinMin", 0x1.2519999999999p+7, 1, 36, 13, 4, 23, 0x1.c2p+30, 0x1.45p+29},
    {"osumed_disk", "JobDataPresent", 0x1.2519999999999p+7, 1, 36, 13, 6, 23, 0x1.c2p+30, 0x1.45p+29},
    // clang-format on
};

sim::ClusterConfig golden_preset(const std::string& name, double unique_bytes) {
  sim::ClusterConfig c = (name == "xio" || name == "xio_disk")
                             ? sim::xio_cluster(4, 4)
                             : sim::osumed_cluster(4, 4);
  if (name == "xio_disk" || name == "osumed_disk")
    c.disk_capacity = 0.35 * unique_bytes;
  return c;
}

core::Algorithm algorithm_named(const std::string& name) {
  for (core::Algorithm a : core::all_algorithms())
    if (name == core::algorithm_name(a)) return a;
  ADD_FAILURE() << "unknown scheduler " << name;
  return core::Algorithm::kMinMin;
}

TEST(ReplicaBitIdentity, ReplicationOffReproducesTopologyGoldens) {
  const wl::Workload w = golden_workload();
  core::RunOptions opts;
  // Deterministic IP truncation: cut by node count, never wall clock.
  opts.ip.selection_mip.time_limit_seconds = 1e9;
  opts.ip.allocation_mip.time_limit_seconds = 1e9;
  opts.ip.selection_mip.max_nodes = 2000;
  opts.ip.allocation_mip.max_nodes = 2000;
  opts.ip.selection_mip.stall_node_limit = 64;
  opts.ip.allocation_mip.stall_node_limit = 64;

  for (std::size_t threads : {1u, 2u, 8u}) {
    WsRuntime::set_global_threads(threads);
    for (const GoldenRow& row : kGolden) {
      SCOPED_TRACE(std::string(row.preset) + "/" + row.scheduler + " @" +
                   std::to_string(threads) + "t");
      const sim::ClusterConfig c =
          golden_preset(row.preset, w.unique_request_bytes());
      const auto r =
          core::run_batch_scheduler(algorithm_named(row.scheduler), w, c, opts);
      ASSERT_TRUE(r.ok()) << r.error;
      EXPECT_EQ(r.batch_time, row.batch_time);
      EXPECT_EQ(r.sub_batches, row.sub_batches);
      EXPECT_EQ(r.stats.remote_transfers, row.remote_transfers);
      EXPECT_EQ(r.stats.replications, row.replications);
      EXPECT_EQ(r.stats.evictions, row.evictions);
      EXPECT_EQ(r.stats.cache_hits, row.cache_hits);
      EXPECT_EQ(r.stats.remote_bytes, row.remote_bytes);
      EXPECT_EQ(r.stats.replica_bytes, row.replica_bytes);
      // The replica counters must stay untouched on the off path.
      EXPECT_EQ(r.stats.replicas_created, 0u);
      EXPECT_EQ(r.stats.replicas_invalidated, 0u);
      EXPECT_EQ(r.stats.home_flushes, 0u);
      EXPECT_EQ(r.stats.lost_versions, 0u);
      EXPECT_EQ(r.stats.repair_bytes, 0.0);
    }
  }
  WsRuntime::set_global_threads(0);
}

}  // namespace
}  // namespace bsio
