// Property tests of the dual simplex beyond the hand-checked examples in
// lp_test.cc: optimality against random feasible points, invariance under
// redundant rows and objective scaling, and warm-restart consistency.

#include <gtest/gtest.h>

#include <cmath>

#include "lp/model.h"
#include "lp/simplex.h"
#include "util/rng.h"

namespace bsio::lp {
namespace {

// Random box-constrained LP with <= rows whose RHS guarantees x = lo is
// feasible (coefs >= 0, rhs >= a^T lo).
Model random_feasible_lp(int n, int rows, std::uint64_t seed) {
  bsio::Rng rng(seed);
  Model m;
  for (int v = 0; v < n; ++v)
    m.add_var(rng.uniform_double(-3.0, 3.0), 0.0,
              rng.uniform_double(0.5, 2.0));
  for (int r = 0; r < rows; ++r) {
    std::vector<RowEntry> row;
    for (int v = 0; v < n; ++v)
      if (rng.bernoulli(0.5)) row.push_back({v, rng.uniform_double(0.1, 2.0)});
    if (row.empty()) row.push_back({0, 1.0});
    double cap = 0.0;
    for (auto& e : row) cap += e.coef * m.upper(e.var);
    m.add_row(Sense::kLe, rng.uniform_double(0.2, 0.9) * cap, std::move(row));
  }
  return m;
}

// Draw a random feasible point by scaling back from a random box point.
std::vector<double> random_feasible_point(const Model& m, bsio::Rng& rng) {
  std::vector<double> x(m.num_vars());
  for (int v = 0; v < m.num_vars(); ++v)
    x[v] = m.lower(v) +
           rng.uniform_double() * (m.upper(v) - m.lower(v));
  // Shrink toward the all-lower point (feasible by construction) until the
  // rows hold.
  for (int tries = 0; tries < 60 && !m.is_feasible(x); ++tries)
    for (auto& xi : x) xi *= 0.8;
  return x;
}

class LpOptimality : public ::testing::TestWithParam<int> {};

TEST_P(LpOptimality, BeatsRandomFeasiblePoints) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  Model m = random_feasible_lp(20, 12, seed);
  DualSimplex s(m);
  auto r = s.solve();
  ASSERT_EQ(r.status, SolveStatus::kOptimal) << "seed " << seed;
  auto xstar = s.values();
  ASSERT_TRUE(m.is_feasible(xstar, 1e-6));
  EXPECT_NEAR(r.objective, m.objective_value(xstar), 1e-6);

  bsio::Rng rng(seed * 7 + 1);
  for (int i = 0; i < 25; ++i) {
    auto x = random_feasible_point(m, rng);
    if (!m.is_feasible(x)) continue;
    EXPECT_LE(r.objective, m.objective_value(x) + 1e-7)
        << "seed " << seed << " point " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LpOptimality, ::testing::Range(1, 16));

TEST(LpProperties, RedundantRowDoesNotChangeOptimum) {
  Model m = random_feasible_lp(15, 8, 42);
  DualSimplex s1(m);
  auto r1 = s1.solve();
  ASSERT_EQ(r1.status, SolveStatus::kOptimal);

  // Add a row implied by the bounds: sum x_v <= sum upper.
  std::vector<RowEntry> row;
  double cap = 0.0;
  for (int v = 0; v < m.num_vars(); ++v) {
    row.push_back({v, 1.0});
    cap += m.upper(v);
  }
  m.add_row(Sense::kLe, cap + 1.0, std::move(row));
  DualSimplex s2(m);
  auto r2 = s2.solve();
  ASSERT_EQ(r2.status, SolveStatus::kOptimal);
  EXPECT_NEAR(r1.objective, r2.objective, 1e-7);
}

TEST(LpProperties, ObjectiveScalingScalesOptimum) {
  Model m = random_feasible_lp(12, 6, 77);
  Model scaled;
  for (int v = 0; v < m.num_vars(); ++v)
    scaled.add_var(3.0 * m.cost(v), m.lower(v), m.upper(v));
  for (int r = 0; r < m.num_rows(); ++r)
    scaled.add_row(m.sense(r), m.rhs(r), m.row(r));
  DualSimplex s1(m), s2(scaled);
  auto r1 = s1.solve();
  auto r2 = s2.solve();
  ASSERT_EQ(r1.status, SolveStatus::kOptimal);
  ASSERT_EQ(r2.status, SolveStatus::kOptimal);
  EXPECT_NEAR(r2.objective, 3.0 * r1.objective, 1e-6);
}

TEST(LpProperties, TightenRelaxRoundTrip) {
  Model m = random_feasible_lp(10, 6, 99);
  DualSimplex s(m);
  auto base = s.solve();
  ASSERT_EQ(base.status, SolveStatus::kOptimal);
  bsio::Rng rng(5);
  for (int i = 0; i < 20; ++i) {
    int v = static_cast<int>(rng.uniform(m.num_vars()));
    double mid = 0.5 * (m.lower(v) + m.upper(v));
    s.set_bounds(v, m.lower(v), mid);
    auto tightened = s.solve();
    // Tightening can only worsen (raise) a minimisation optimum.
    if (tightened.status == SolveStatus::kOptimal) {
      EXPECT_GE(tightened.objective, base.objective - 1e-7);
    }
    s.set_bounds(v, m.lower(v), m.upper(v));
    auto restored = s.solve();
    ASSERT_EQ(restored.status, SolveStatus::kOptimal);
    EXPECT_NEAR(restored.objective, base.objective, 1e-6) << "iter " << i;
  }
}

TEST(LpProperties, TimeLimitReturnsIterLimitNotGarbage) {
  Model m = random_feasible_lp(60, 40, 3);
  SimplexOptions opts;
  opts.time_limit_seconds = 1e-9;  // expire immediately
  DualSimplex s(m, opts);
  auto r = s.solve();
  // Either it finished in the first few pivots or it reports the limit.
  EXPECT_TRUE(r.status == SolveStatus::kOptimal ||
              r.status == SolveStatus::kIterLimit);
}

// ---- Sparse-vs-dense differential: the legacy dense basis inverse is the
// oracle for the sparse LU kernel. Both backends must agree on status and
// (when optimal) objective on general bounded-variable models. ----

// Random bounded-variable LP with negative lower bounds, mixed row senses
// and a fraction of zero costs (degeneracy). Feasibility is guaranteed by
// anchoring every row at an interior point x0.
Model random_bounded_lp(int n, int rows, std::uint64_t seed) {
  bsio::Rng rng(seed);
  Model m;
  std::vector<double> x0;
  for (int v = 0; v < n; ++v) {
    const double lo = rng.uniform_double(-2.0, 0.0);
    const double up = lo + rng.uniform_double(0.5, 3.0);
    const double c =
        rng.bernoulli(0.3) ? 0.0 : rng.uniform_double(-3.0, 3.0);
    m.add_var(c, lo, up);
    x0.push_back(lo + rng.uniform_double(0.1, 0.9) * (up - lo));
  }
  for (int r = 0; r < rows; ++r) {
    std::vector<RowEntry> row;
    double ax = 0.0;
    for (int v = 0; v < n; ++v)
      if (rng.bernoulli(0.5)) {
        const double a = rng.uniform_double(-2.0, 2.0);
        row.push_back({v, a});
        ax += a * x0[v];
      }
    if (row.empty()) {
      row.push_back({0, 1.0});
      ax = x0[0];
    }
    const double roll = rng.uniform_double();
    if (roll < 0.4)
      m.add_row(Sense::kLe, ax + rng.uniform_double(0.0, 1.5),
                std::move(row));
    else if (roll < 0.8)
      m.add_row(Sense::kGe, ax - rng.uniform_double(0.0, 1.5),
                std::move(row));
    else
      m.add_row(Sense::kEq, ax, std::move(row));
  }
  return m;
}

class SparseVsDense : public ::testing::TestWithParam<int> {};

TEST_P(SparseVsDense, RandomBoundedLpsAgree) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  Model m = random_bounded_lp(14, 10, seed);
  SimplexOptions dense_opts;
  dense_opts.use_dense_basis = true;
  DualSimplex dense(m, dense_opts);
  DualSimplex sparse(m);
  auto rd = dense.solve();
  auto rs = sparse.solve();
  ASSERT_EQ(rd.status, rs.status) << "seed " << seed;
  if (rd.status == SolveStatus::kOptimal) {
    EXPECT_NEAR(rd.objective, rs.objective, 1e-6) << "seed " << seed;
    auto x = sparse.values();
    EXPECT_TRUE(m.is_feasible(x, 1e-6)) << "seed " << seed;
    EXPECT_NEAR(m.objective_value(x), rs.objective, 1e-6) << "seed " << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SparseVsDense, ::testing::Range(1, 25));

TEST(SparseVsDenseEdge, InfeasibleModelAgreedInfeasible) {
  Model m = random_bounded_lp(8, 5, 17);
  // Contradictory pair on var 0: x0 >= upper + 1 is unreachable.
  m.add_row(Sense::kGe, m.upper(0) + 1.0, {{0, 1.0}});
  SimplexOptions dense_opts;
  dense_opts.use_dense_basis = true;
  DualSimplex dense(m, dense_opts);
  DualSimplex sparse(m);
  EXPECT_EQ(dense.solve().status, SolveStatus::kInfeasible);
  EXPECT_EQ(sparse.solve().status, SolveStatus::kInfeasible);
}

TEST(SparseVsDenseEdge, DegenerateMakespanModelAgrees) {
  // The paper's model shape: min z with every other cost zero and identical
  // unit loads — almost every reduced cost ties at zero, the worst case for
  // the dual ratio test. 8 tasks x 3 machines.
  Model m;
  const int tasks = 8, machines = 3;
  int z = m.add_var(1.0, 0.0, 100.0);
  std::vector<std::vector<int>> t(tasks, std::vector<int>(machines));
  for (int k = 0; k < tasks; ++k)
    for (int i = 0; i < machines; ++i) t[k][i] = m.add_binary(0.0);
  for (int k = 0; k < tasks; ++k) {
    std::vector<RowEntry> row;
    for (int i = 0; i < machines; ++i) row.push_back({t[k][i], 1.0});
    m.add_row(Sense::kEq, 1.0, std::move(row));
  }
  for (int i = 0; i < machines; ++i) {
    std::vector<RowEntry> row{{z, -1.0}};
    for (int k = 0; k < tasks; ++k) row.push_back({t[k][i], 1.0});
    m.add_row(Sense::kLe, 0.0, std::move(row));
  }
  SimplexOptions dense_opts;
  dense_opts.use_dense_basis = true;
  DualSimplex dense(m, dense_opts);
  DualSimplex sparse(m);
  auto rd = dense.solve();
  auto rs = sparse.solve();
  ASSERT_EQ(rd.status, SolveStatus::kOptimal);
  ASSERT_EQ(rs.status, SolveStatus::kOptimal);
  // LP relaxation spreads the unit loads perfectly: z* = 8/3.
  EXPECT_NEAR(rd.objective, 8.0 / 3.0, 1e-7);
  EXPECT_NEAR(rs.objective, rd.objective, 1e-6);
}

TEST(SparseVsDenseEdge, BoundChangeWarmRestartAgrees) {
  // Warm-restart differential: after bound changes that park nonbasic
  // variables on a dual-infeasible side (forcing restore/bound-flip logic),
  // the warm-started sparse solve must match a cold dense solve of the
  // modified model.
  Model m = random_bounded_lp(12, 8, 123);
  DualSimplex sparse(m);
  auto base = sparse.solve();
  ASSERT_EQ(base.status, SolveStatus::kOptimal);
  auto x = sparse.values();

  // Shrink each of the first few boxes to the half away from the current
  // optimal value, evicting the variable from its preferred bound.
  std::vector<std::pair<double, double>> new_bounds;
  for (int v = 0; v < m.num_vars(); ++v) {
    double lo = m.lower(v), up = m.upper(v);
    if (v < 5) {
      const double mid = 0.5 * (lo + up);
      if (x[v] <= mid)
        lo = mid;  // current value now below the feasible box
      else
        up = mid;
    }
    new_bounds.push_back({lo, up});
    sparse.set_bounds(v, lo, up);
  }
  auto warm = sparse.solve();

  Model m2;
  for (int v = 0; v < m.num_vars(); ++v)
    m2.add_var(m.cost(v), new_bounds[v].first, new_bounds[v].second);
  for (int r = 0; r < m.num_rows(); ++r) m2.add_row(m.sense(r), m.rhs(r), m.row(r));
  SimplexOptions dense_opts;
  dense_opts.use_dense_basis = true;
  DualSimplex dense(m2, dense_opts);
  auto cold = dense.solve();

  ASSERT_EQ(warm.status, cold.status);
  if (warm.status == SolveStatus::kOptimal) {
    EXPECT_NEAR(warm.objective, cold.objective, 1e-6);
  }
}

TEST(SparseVsDenseEdge, SolverStatsPopulated) {
  Model m = random_bounded_lp(40, 30, 7);
  SimplexOptions opts;
  opts.refactor_every = 8;  // force periodic refactorisations mid-solve
  DualSimplex sparse(m, opts);
  auto r = sparse.solve();
  ASSERT_EQ(r.status, SolveStatus::kOptimal);
  EXPECT_GE(r.stats.factorizations, 1);
  EXPECT_GT(r.stats.factor_fill_nnz, 0);
  EXPECT_GT(r.stats.pivots, 0);
  EXPECT_GE(r.stats.pricing_passes, r.stats.pivots);
}

TEST(LpProperties, EqualityRowsSatisfiedExactly) {
  bsio::Rng rng(8);
  Model m;
  for (int v = 0; v < 8; ++v) m.add_var(rng.uniform_double(-2, 2), 0.0, 4.0);
  m.add_row(Sense::kEq, 6.0, {{0, 1.0}, {1, 1.0}, {2, 1.0}});
  m.add_row(Sense::kEq, 5.0, {{3, 1.0}, {4, 2.0}});
  DualSimplex s(m);
  auto r = s.solve();
  ASSERT_EQ(r.status, SolveStatus::kOptimal);
  auto x = s.values();
  EXPECT_NEAR(x[0] + x[1] + x[2], 6.0, 1e-7);
  EXPECT_NEAR(x[3] + 2.0 * x[4], 5.0, 1e-7);
}

}  // namespace
}  // namespace bsio::lp
