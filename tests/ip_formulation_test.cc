// Constraint-level tests of the Section 4 IP models: each constraint
// family is exercised by constructing points that must be rejected or
// accepted by the assembled lp::Model.

#include <gtest/gtest.h>

#include "ip/branch_and_bound.h"
#include "sched/ip_formulation.h"
#include "sim/cluster.h"
#include "sim/state.h"
#include "sim/topology.h"
#include "workload/types.h"

namespace bsio::sched {
namespace {

// 2 tasks sharing file 0; task 1 additionally reads file 1.
wl::Workload two_task_workload() {
  std::vector<wl::FileInfo> files(2);
  files[0].size_bytes = 100.0 * sim::kMB;
  files[1].size_bytes = 40.0 * sim::kMB;
  for (auto& f : files) f.home_storage_node = 0;
  std::vector<wl::TaskInfo> tasks(2);
  tasks[0].files = {0};
  tasks[1].files = {0, 1};
  tasks[0].compute_seconds = 1.0;
  tasks[1].compute_seconds = 2.0;
  return wl::Workload(std::move(tasks), std::move(files));
}

sim::ClusterConfig two_node_cluster() {
  sim::ClusterConfig c;
  c.num_compute_nodes = 2;
  c.num_storage_nodes = 1;
  c.storage_disk_bw = 100.0 * sim::kMB;
  c.storage_net_bw = 1000.0 * sim::kMB;
  c.compute_net_bw = 200.0 * sim::kMB;
  c.local_disk_bw = 500.0 * sim::kMB;
  return c;
}

TEST(AllocationModel, MappingWithoutStagingIsInfeasible) {
  wl::Workload w = two_task_workload();
  sim::ClusterConfig c = two_node_cluster();
  sim::ClusterState st(2, sim::kUnlimited);
  AllocationModel m(w, {0, 1}, coalesce_files(w, {0, 1}, st),
                    sim::Topology(c), {});

  // A valid star point for map {0 -> node0, 1 -> node0}.
  auto x = m.incumbent_from_mapping({0, 0});
  ASSERT_TRUE(m.model().is_feasible(x, 1e-6));

  // Clearing every non-T variable leaves tasks mapped with no files staged:
  // constraint (7) must reject it.
  auto broken = x;
  for (int v = 0; v < m.model().num_vars(); ++v) {
    // Keep the T variables (cost 0, binary) and z; zero the rest.
    // T variables are the first 4 binaries after z in construction order.
    if (v == 0 || (v >= 1 && v <= 4)) continue;
    broken[v] = 0.0;
  }
  EXPECT_FALSE(m.model().is_feasible(broken, 1e-6));
}

TEST(AllocationModel, OptimalSolutionStagesEveryNeededGroup) {
  wl::Workload w = two_task_workload();
  sim::ClusterConfig c = two_node_cluster();
  sim::ClusterState st(2, sim::kUnlimited);
  AllocationModel m(w, {0, 1}, coalesce_files(w, {0, 1}, st),
                    sim::Topology(c), {});
  ip::MipSolver solver(m.model(), m.integer_vars());
  auto r = solver.solve();
  ASSERT_EQ(r.status, ip::MipStatus::kOptimal);
  sim::SubBatchPlan plan = m.extract_plan(r.x);
  ASSERT_EQ(plan.tasks.size(), 2u);
  // Every (needed file, assigned node) has a staging directive.
  for (wl::TaskId t : plan.tasks) {
    wl::NodeId n = plan.assignment.at(t);
    for (wl::FileId f : w.task(t).files)
      EXPECT_TRUE(plan.staging.count({f, n}))
          << "missing staging for file " << f << " on node " << n;
  }
}

TEST(AllocationModel, ExistingCopyRemovesTransferNeed) {
  wl::Workload w = two_task_workload();
  sim::ClusterConfig c = two_node_cluster();
  sim::ClusterState st(2, sim::kUnlimited);
  st.add(0, 0, w.file_size(0), 0.0);  // file 0 already on node 0

  auto groups = coalesce_files(w, {0, 1}, st);
  AllocationModel m(w, {0, 1}, groups, sim::Topology(c), {});
  ip::MipSolver solver(m.model(), m.integer_vars());
  auto r = solver.solve();
  ASSERT_EQ(r.status, ip::MipStatus::kOptimal);
  sim::SubBatchPlan plan = m.extract_plan(r.x);
  // No transfer ever targets the node that already holds the copy, and
  // every needed (file, node) pair elsewhere has a directive. (The model
  // may still fetch file 0 remotely onto the *other* node when that
  // offloads the holder — min-max economics.)
  EXPECT_FALSE(plan.staging.count({0u, 0u}));
  for (wl::TaskId t : plan.tasks) {
    wl::NodeId n = plan.assignment.at(t);
    for (wl::FileId f : w.task(t).files) {
      if (f == 0 && n == 0) continue;  // already present
      EXPECT_TRUE(plan.staging.count({f, n}))
          << "file " << f << " node " << n;
    }
  }
  // With the existing copy, the optimum is strictly cheaper than the best
  // cold star mapping.
  sim::ClusterState cold(2, sim::kUnlimited);
  AllocationModel m_cold(w, {0, 1}, coalesce_files(w, {0, 1}, cold),
                         sim::Topology(c), {});
  ip::MipSolver cold_solver(m_cold.model(), m_cold.integer_vars());
  auto r_cold = cold_solver.solve();
  ASSERT_EQ(r_cold.status, ip::MipStatus::kOptimal);
  EXPECT_LT(m.makespan_surrogate(r.x),
            m_cold.makespan_surrogate(r_cold.x) + 1e-9);
}

TEST(AllocationModel, NoReplicationModelHasNoReplicaDirectives) {
  wl::Workload w = two_task_workload();
  sim::ClusterConfig c = two_node_cluster();
  c.allow_replication = false;
  sim::ClusterState st(2, sim::kUnlimited);
  AllocationModel m(w, {0, 1}, coalesce_files(w, {0, 1}, st),
                    sim::Topology(c), {});
  ip::MipSolver solver(m.model(), m.integer_vars());
  auto r = solver.solve();
  ASSERT_EQ(r.status, ip::MipStatus::kOptimal);
  sim::SubBatchPlan plan = m.extract_plan(r.x);
  for (const auto& [key, src] : plan.staging)
    EXPECT_EQ(src.kind, sim::SourceKind::kRemote);
}

TEST(AllocationModel, UplinkRowRaisesTheSurrogate) {
  // With a slow shared uplink, the makespan surrogate must be at least the
  // serialized remote volume.
  wl::Workload w = two_task_workload();
  sim::ClusterConfig c = two_node_cluster();
  c.shared_uplink_bw = 10.0 * sim::kMB;
  sim::ClusterState st(2, sim::kUnlimited);
  AllocationModel m(w, {0, 1}, coalesce_files(w, {0, 1}, st),
                    sim::Topology(c), {});
  ip::MipSolver solver(m.model(), m.integer_vars());
  auto r = solver.solve();
  ASSERT_EQ(r.status, ip::MipStatus::kOptimal);
  // Both files must cross the uplink at least once: 140 MB at 10 MB/s.
  EXPECT_GE(m.makespan_surrogate(r.x), 14.0 - 1e-6);
}

TEST(SelectionModel, BalanceRowsSkippedForTinyBatches) {
  // One pending task with 2 nodes: with balance rows this would be
  // infeasible; the model must still allow selecting the task.
  std::vector<wl::FileInfo> files(1);
  files[0].size_bytes = 10.0 * sim::kMB;
  files[0].home_storage_node = 0;
  std::vector<wl::TaskInfo> tasks(1);
  tasks[0].files = {0};
  tasks[0].compute_seconds = 1.0;
  wl::Workload w(std::move(tasks), std::move(files));
  sim::ClusterConfig c = two_node_cluster();
  c.disk_capacity = 100.0 * sim::kMB;
  sim::ClusterState st(2, c.disk_capacity);
  SelectionModel m(w, {0}, coalesce_files(w, {0}, st), sim::Topology(c),
                   {});
  ip::MipSolver solver(m.model(), m.integer_vars());
  auto r = solver.solve();
  ASSERT_EQ(r.status, ip::MipStatus::kOptimal);
  EXPECT_EQ(m.extract_sub_batch(r.x).size(), 1u);
}

TEST(SelectionModel, GreedyIncumbentFeasibleWhenEverythingFits) {
  wl::Workload w = two_task_workload();
  sim::ClusterConfig c = two_node_cluster();
  c.disk_capacity = 1.0 * sim::kGB;
  sim::ClusterState st(2, c.disk_capacity);
  SelectionModel m(w, {0, 1}, coalesce_files(w, {0, 1}, st),
                   sim::Topology(c), {});
  auto seed = m.greedy_incumbent();
  ASSERT_FALSE(seed.empty());
  EXPECT_TRUE(m.model().is_feasible(seed, 1e-6));
  EXPECT_EQ(m.extract_sub_batch(seed).size(), 2u);
}

}  // namespace
}  // namespace bsio::sched
