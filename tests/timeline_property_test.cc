// Randomized property test pinning the bucketed Timeline (src/sim/timeline)
// bit-identically against a brute-force flat-vector reference — the exact
// pre-bucketing implementation. Every mutation path (reserve, release,
// truncate-to-mid, truncate-to-nothing) and every query (earliest_free,
// horizon, busy_time, intervals, earliest_common_free) must agree to the
// last bit, including the speculation rollback cases: cancelling a losing
// attempt truncates an in-flight reservation at the first-finish-wins
// instant and releases not-yet-started ones outright.

#include <algorithm>
#include <vector>

#include "gtest/gtest.h"
#include "sim/timeline.h"
#include "util/rng.h"

namespace bsio::sim {
namespace {

constexpr double kEps = 1e-9;

// The historical flat std::vector<Interval> timeline, verbatim.
class RefTimeline {
 public:
  double earliest_free(double after, double duration) const {
    double t = after;
    auto it = std::upper_bound(
        ivs_.begin(), ivs_.end(), t,
        [](double v, const Interval& iv) { return v < iv.end; });
    for (; it != ivs_.end(); ++it) {
      if (t + duration <= it->start + kEps) return t;
      t = std::max(t, it->end);
    }
    return t;
  }

  void reserve(double start, double duration) {
    if (duration <= 0.0) return;
    Interval iv{start, start + duration};
    auto it = std::upper_bound(
        ivs_.begin(), ivs_.end(), iv.start,
        [](double v, const Interval& o) { return v < o.start; });
    if (it != ivs_.begin()) {
      EXPECT_LE(std::prev(it)->end, iv.start + kEps);
    }
    if (it != ivs_.end()) {
      EXPECT_LE(iv.end, it->start + kEps);
    }
    ivs_.insert(it, iv);
  }

  void release(double start, double end) {
    auto it = std::lower_bound(
        ivs_.begin(), ivs_.end(), start,
        [](const Interval& iv, double v) { return iv.start < v; });
    ASSERT_TRUE(it != ivs_.end() && it->start == start && it->end == end);
    ivs_.erase(it);
  }

  void truncate(double start, double new_end) {
    auto it = std::lower_bound(
        ivs_.begin(), ivs_.end(), start,
        [](const Interval& iv, double v) { return iv.start < v; });
    ASSERT_TRUE(it != ivs_.end() && it->start == start);
    if (new_end <= it->start) {
      ivs_.erase(it);
    } else {
      ASSERT_LE(new_end, it->end);
      it->end = new_end;
    }
  }

  double horizon() const { return ivs_.empty() ? 0.0 : ivs_.back().end; }
  std::size_t size() const { return ivs_.size(); }
  double busy_time() const {
    double total = 0.0;
    for (const Interval& iv : ivs_) total += iv.end - iv.start;
    return total;
  }
  const std::vector<Interval>& intervals() const { return ivs_; }

 private:
  std::vector<Interval> ivs_;
};

// The historical sequential-advance earliest_common_free, verbatim: the
// fixed point it converges to must equal the restart-from-max iteration's.
double ref_earliest_common_free(const std::vector<const RefTimeline*>& tls,
                                double after, double duration) {
  double t = after;
  for (;;) {
    bool moved = false;
    for (const RefTimeline* tl : tls) {
      const double free = tl->earliest_free(t, duration);
      if (free > t) {
        t = free;
        moved = true;
      }
    }
    if (!moved) return t;
  }
}

void expect_identical(const Timeline& tl, const RefTimeline& ref) {
  tl.validate();
  ASSERT_EQ(tl.num_reservations(), ref.size());
  EXPECT_EQ(tl.horizon(), ref.horizon());
  EXPECT_EQ(tl.busy_time(), ref.busy_time());
  const std::vector<Interval> got = tl.intervals();
  ASSERT_EQ(got.size(), ref.intervals().size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].start, ref.intervals()[i].start);
    EXPECT_EQ(got[i].end, ref.intervals()[i].end);
  }
}

TEST(TimelineProperty, RandomOpsMatchFlatReference) {
  for (std::uint64_t seed : {1u, 7u, 42u, 1234u}) {
    Rng rng(seed);
    Timeline tl;
    RefTimeline ref;
    // Track live reservations for targeted release/truncate.
    std::vector<Interval> live;

    for (int op = 0; op < 1200; ++op) {
      const double roll = rng.uniform_double();
      if (roll < 0.62 || live.empty()) {
        // Reserve at the earliest gap >= a random origin — how the engine
        // places every transfer and exec block.
        const double after = rng.uniform_double(0.0, 50.0);
        const double dur = rng.uniform_double(0.01, 3.0);
        const double t_new = tl.earliest_free(after, dur);
        const double t_ref = ref.earliest_free(after, dur);
        ASSERT_EQ(t_new, t_ref);
        tl.reserve(t_new, dur);
        ref.reserve(t_ref, dur);
        live.push_back({t_new, t_new + dur});
      } else if (roll < 0.80) {
        // Release a random reservation (speculation rollback of a
        // not-yet-started transfer).
        const std::size_t i = rng.uniform(live.size());
        tl.release(live[i].start, live[i].end);
        ref.release(live[i].start, live[i].end);
        live.erase(live.begin() + static_cast<std::ptrdiff_t>(i));
      } else {
        // Truncate at a random cut (first-finish-wins): sometimes inside
        // the interval, sometimes at/before its start (removal).
        const std::size_t i = rng.uniform(live.size());
        Interval& iv = live[i];
        if (rng.bernoulli(0.3)) {
          tl.truncate(iv.start, iv.start);  // cut before any elapsed time
          ref.truncate(iv.start, iv.start);
          live.erase(live.begin() + static_cast<std::ptrdiff_t>(i));
        } else {
          const double cut =
              rng.uniform_double(iv.start, iv.end) * 0.5 + iv.start * 0.5;
          tl.truncate(iv.start, cut);
          ref.truncate(iv.start, cut);
          if (cut <= iv.start)
            live.erase(live.begin() + static_cast<std::ptrdiff_t>(i));
          else
            iv.end = cut;
        }
      }

      if (op % 40 == 0) expect_identical(tl, ref);
      // Random queries every step: the hot read path.
      const double after = rng.uniform_double(0.0, 60.0);
      const double dur = rng.uniform_double(0.0, 4.0);
      ASSERT_EQ(tl.earliest_free(after, dur), ref.earliest_free(after, dur));
    }
    expect_identical(tl, ref);
    ASSERT_GT(tl.num_reservations(), 200u);  // chunks actually split
  }
}

TEST(TimelineProperty, DenseAppendCrossesManyChunks) {
  // The storage-port pattern at scale: thousands of back-to-back
  // reservations appended at the horizon.
  Timeline tl;
  RefTimeline ref;
  Rng rng(99);
  for (int i = 0; i < 3000; ++i) {
    const double dur = rng.uniform_double(0.5, 1.5);
    const double t = tl.earliest_free(tl.horizon(), dur);
    ASSERT_EQ(t, ref.earliest_free(ref.horizon(), dur));
    tl.reserve(t, dur);
    ref.reserve(t, dur);
  }
  expect_identical(tl, ref);
  // Gap search from the middle still lands bit-identically.
  for (double after = 0.0; after < 3000.0; after += 97.3)
    ASSERT_EQ(tl.earliest_free(after, 0.25), ref.earliest_free(after, 0.25));
}

TEST(TimelineProperty, EarliestCommonFreeMatchesSequentialIteration) {
  Rng rng(5);
  constexpr int kTimelines = 4;
  std::vector<Timeline> tls(kTimelines);
  std::vector<RefTimeline> refs(kTimelines);
  for (int i = 0; i < 400; ++i) {
    const int k = static_cast<int>(rng.uniform(kTimelines));
    const double after = rng.uniform_double(0.0, 40.0);
    const double dur = rng.uniform_double(0.05, 2.0);
    const double t = tls[k].earliest_free(after, dur);
    tls[k].reserve(t, dur);
    refs[k].reserve(t, dur);
  }
  std::vector<const Timeline*> tp;
  std::vector<const RefTimeline*> rp;
  for (int k = 0; k < kTimelines; ++k) {
    tp.push_back(&tls[k]);
    rp.push_back(&refs[k]);
  }
  for (int q = 0; q < 300; ++q) {
    const double after = rng.uniform_double(0.0, 60.0);
    const double dur = rng.uniform_double(0.01, 3.0);
    ASSERT_EQ(earliest_common_free(tp, after, dur),
              ref_earliest_common_free(rp, after, dur));
  }
  // Null entries are ignored.
  tp.push_back(nullptr);
  ASSERT_EQ(earliest_common_free(tp, 1.0, 0.5),
            ref_earliest_common_free(rp, 1.0, 0.5));
}

}  // namespace
}  // namespace bsio::sim
