#include <gtest/gtest.h>

#include <cmath>

#include <set>

#include "workload/calibrate.h"
#include "workload/image.h"
#include "workload/sat.h"
#include "workload/stats.h"
#include "workload/synthetic.h"
#include "workload/types.h"

namespace bsio::wl {
namespace {

TEST(Workload, NormalisesAndIndexes) {
  std::vector<FileInfo> files(3);
  for (auto& f : files) f.size_bytes = 10.0;
  std::vector<TaskInfo> tasks(2);
  tasks[0].files = {2, 0, 2};  // duplicate + unsorted
  tasks[1].files = {1};
  Workload w(std::move(tasks), std::move(files));
  EXPECT_EQ(w.task(0).files, (std::vector<FileId>{0, 2}));
  EXPECT_EQ(w.tasks_of_file(0), (std::vector<TaskId>{0}));
  EXPECT_EQ(w.tasks_of_file(1), (std::vector<TaskId>{1}));
  EXPECT_EQ(w.tasks_of_file(2), (std::vector<TaskId>{0}));
  EXPECT_DOUBLE_EQ(w.unique_request_bytes(), 30.0);
  EXPECT_DOUBLE_EQ(w.total_request_bytes(), 30.0);
}

TEST(Workload, SubsetKeepsFileIdsStable) {
  std::vector<FileInfo> files(4);
  for (auto& f : files) f.size_bytes = 1.0;
  std::vector<TaskInfo> tasks(3);
  tasks[0].files = {0, 1};
  tasks[1].files = {2};
  tasks[2].files = {3};
  Workload w(std::move(tasks), std::move(files));
  Workload sub = w.subset({1, 2});
  EXPECT_EQ(sub.num_tasks(), 2u);
  EXPECT_EQ(sub.num_files(), 4u);
  EXPECT_EQ(sub.task(0).files, (std::vector<FileId>{2}));
  EXPECT_TRUE(sub.tasks_of_file(0).empty());
  EXPECT_DOUBLE_EQ(sub.unique_request_bytes(), 2.0);
}

TEST(Synthetic, HitsTargetOverlapClosely) {
  for (double target : {0.1, 0.4, 0.85}) {
    SyntheticConfig cfg;
    cfg.num_tasks = 100;
    cfg.files_per_task = 8;
    cfg.overlap = target;
    Workload w = make_synthetic(cfg);
    // Pool size fixes the maximum achievable distinct count; sampling with
    // high overlap hits nearly every pool file, so measured overlap is close.
    EXPECT_NEAR(overlap_fraction(w), target, 0.08) << "target " << target;
  }
}

TEST(Synthetic, DeterministicInSeed) {
  SyntheticConfig cfg;
  cfg.seed = 99;
  Workload a = make_synthetic(cfg);
  Workload b = make_synthetic(cfg);
  ASSERT_EQ(a.num_tasks(), b.num_tasks());
  for (std::size_t t = 0; t < a.num_tasks(); ++t)
    EXPECT_EQ(a.task(t).files, b.task(t).files);
}

TEST(Synthetic, ComputeTimeTracksInputVolume) {
  SyntheticConfig cfg;
  cfg.num_tasks = 10;
  Workload w = make_synthetic(cfg);
  for (const auto& t : w.tasks()) {
    double bytes = 0.0;
    for (FileId f : t.files) bytes += w.file_size(f);
    EXPECT_NEAR(t.compute_seconds, bytes * cfg.compute_seconds_per_byte,
                1e-9);
  }
}

TEST(Synthetic, ComputeJitterSpreadsAroundTheProportionalValue) {
  SyntheticConfig cfg;
  cfg.num_tasks = 50;
  cfg.compute_jitter = 0.4;
  cfg.seed = 7;
  Workload w = make_synthetic(cfg);
  bool any_off = false;
  for (const auto& t : w.tasks()) {
    double bytes = 0.0;
    for (FileId f : t.files) bytes += w.file_size(f);
    const double base = bytes * cfg.compute_seconds_per_byte;
    EXPECT_GE(t.compute_seconds, base * (1.0 - cfg.compute_jitter) - 1e-12);
    EXPECT_LE(t.compute_seconds, base * (1.0 + cfg.compute_jitter) + 1e-12);
    if (std::abs(t.compute_seconds - base) > 1e-9 * base) any_off = true;
  }
  EXPECT_TRUE(any_off);  // the knob actually does something
}

TEST(Sat, StructureMatchesPaperSetup) {
  SatConfig cfg;  // 20 days x 8x8 grid of 50 MB chunks
  Workload w = make_sat(cfg, 0.3);
  EXPECT_EQ(w.num_files(), 20u * 64u);
  for (const auto& f : w.files()) {
    EXPECT_DOUBLE_EQ(f.size_bytes, 50.0 * 1024 * 1024);
    EXPECT_LT(f.home_storage_node, 4u);
  }
  EXPECT_EQ(w.num_tasks(), 100u);
  WorkloadStats s = measure(w);
  // 2x2 window x ~2 days: files per task near the configured average.
  EXPECT_GT(s.avg_files_per_task, 4.0);
  EXPECT_LT(s.avg_files_per_task, 12.0);
}

TEST(Sat, DeclusteringSpreadsFilesOverStorageNodes) {
  SatConfig cfg;
  Workload w = make_sat(cfg, 0.0);
  std::set<NodeId> nodes;
  for (const auto& f : w.files()) nodes.insert(f.home_storage_node);
  EXPECT_EQ(nodes.size(), 4u);
  // A single task's files should hit multiple storage nodes (declustering).
  std::set<NodeId> task_nodes;
  for (FileId f : w.task(0).files)
    task_nodes.insert(w.file(f).home_storage_node);
  EXPECT_GT(task_nodes.size(), 1u);
}

TEST(Sat, SpreadReducesOverlapMonotonically) {
  SatConfig cfg;
  double prev = 2.0;
  for (double spread : {0.0, 0.5, 1.0}) {
    double ov = overlap_fraction(make_sat(cfg, spread));
    EXPECT_LE(ov, prev + 0.05) << "spread " << spread;
    prev = ov;
  }
}

TEST(Sat, CalibrationHitsPaperTargets) {
  SatConfig cfg;
  for (double target : {0.85, 0.40, 0.10}) {
    if (target < 0.5) cfg.files_per_task = 14.0;  // paper's med/low setting
    auto r = make_sat_calibrated(cfg, target);
    EXPECT_NEAR(r.achieved_overlap, target, 0.06) << "target " << target;
  }
}

TEST(Image, DatasetShapeMatchesPaper) {
  ImageConfig cfg;  // 2000 patients x 4 studies x (2 CT + 32 MRI)
  Workload w = make_image(cfg, 0.5);
  EXPECT_EQ(w.num_files(), 2000u * 4u * 34u);
  double total = 0.0;
  for (const auto& f : w.files()) total += f.size_bytes;
  // ~2 TB dataset.
  EXPECT_NEAR(total / (1024.0 * 1024 * 1024 * 1024), 2.0, 0.3);
  WorkloadStats s = measure(w);
  EXPECT_DOUBLE_EQ(s.avg_files_per_task, 8.0);  // 2 CT + 6 MRI
}

TEST(Image, ZeroOverlapAtFullSpread) {
  ImageConfig cfg;
  cfg.num_tasks = 50;
  Workload w = make_image(cfg, 1.0);
  EXPECT_DOUBLE_EQ(overlap_fraction(w), 0.0);
}

TEST(Image, CalibrationHitsPaperTargets) {
  ImageConfig cfg;
  for (double target : {0.85, 0.40, 0.0}) {
    auto r = make_image_calibrated(cfg, target);
    EXPECT_NEAR(r.achieved_overlap, target, 0.06) << "target " << target;
  }
}

TEST(Image, RoundRobinPlacement) {
  ImageConfig cfg;
  Workload w = make_image(cfg, 0.5);
  for (std::size_t id = 0; id < 100; ++id)
    EXPECT_EQ(w.file(static_cast<FileId>(id)).home_storage_node, id % 4);
}

TEST(Stats, OverlapDefinition) {
  // 2 tasks sharing both files: 4 requests, 2 distinct -> overlap 0.5.
  std::vector<FileInfo> files(2);
  for (auto& f : files) f.size_bytes = 1.0;
  std::vector<TaskInfo> tasks(2);
  tasks[0].files = {0, 1};
  tasks[1].files = {0, 1};
  Workload w(std::move(tasks), std::move(files));
  EXPECT_DOUBLE_EQ(overlap_fraction(w), 0.5);
}

}  // namespace
}  // namespace bsio::wl
