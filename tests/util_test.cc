#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <set>
#include <vector>

#include "util/hilbert.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/table.h"

namespace bsio {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a() == b()) ++same;
  EXPECT_LT(same, 5);
}

TEST(Rng, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    auto v = rng.uniform(10);
    EXPECT_LT(v, 10u);
  }
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  Rng rng(9);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.uniform_int(-3, 3));
  EXPECT_EQ(seen.size(), 7u);
  EXPECT_EQ(*seen.begin(), -3);
  EXPECT_EQ(*seen.rbegin(), 3);
}

TEST(Rng, UniformDoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.uniform_double();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, UniformDoubleMeanNearHalf) {
  Rng rng(13);
  double sum = 0.0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) sum += rng.uniform_double();
  EXPECT_NEAR(sum / kN, 0.5, 0.02);
}

TEST(Rng, SampleWithoutReplacementIsDistinct) {
  Rng rng(5);
  for (std::size_t k : {0u, 1u, 5u, 20u}) {
    auto s = rng.sample_without_replacement(20, k);
    EXPECT_EQ(s.size(), k);
    std::set<std::size_t> uniq(s.begin(), s.end());
    EXPECT_EQ(uniq.size(), k);
    for (auto v : s) EXPECT_LT(v, 20u);
  }
}

TEST(Rng, SampleFullRangeIsPermutation) {
  Rng rng(17);
  auto s = rng.sample_without_replacement(10, 10);
  std::sort(s.begin(), s.end());
  for (std::size_t i = 0; i < 10; ++i) EXPECT_EQ(s[i], i);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(19);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7};
  auto orig = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(23);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Hilbert, RoundTripBijection) {
  for (std::uint32_t side : {1u, 2u, 4u, 8u, 16u}) {
    std::set<std::pair<std::uint32_t, std::uint32_t>> seen;
    for (std::uint64_t d = 0; d < static_cast<std::uint64_t>(side) * side;
         ++d) {
      auto [x, y] = hilbert_d2xy(side, d);
      EXPECT_LT(x, side);
      EXPECT_LT(y, side);
      EXPECT_TRUE(seen.insert({x, y}).second) << "duplicate cell at d=" << d;
      EXPECT_EQ(hilbert_xy2d(side, x, y), d);
    }
  }
}

TEST(Hilbert, ConsecutiveIndicesAreAdjacentCells) {
  const std::uint32_t side = 16;
  auto [px, py] = hilbert_d2xy(side, 0);
  for (std::uint64_t d = 1; d < static_cast<std::uint64_t>(side) * side; ++d) {
    auto [x, y] = hilbert_d2xy(side, d);
    int dist = std::abs(static_cast<int>(x) - static_cast<int>(px)) +
               std::abs(static_cast<int>(y) - static_cast<int>(py));
    EXPECT_EQ(dist, 1) << "curve must move one cell at a time (d=" << d << ")";
    px = x;
    py = y;
  }
}

TEST(Stats, BasicAggregates) {
  std::vector<double> v{1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(mean(v), 3.0);
  EXPECT_DOUBLE_EQ(median(v), 3.0);
  EXPECT_DOUBLE_EQ(min_of(v), 1.0);
  EXPECT_DOUBLE_EQ(max_of(v), 5.0);
  EXPECT_DOUBLE_EQ(sum_of(v), 15.0);
  EXPECT_NEAR(stddev(v), std::sqrt(2.0), 1e-12);
}

TEST(Stats, PercentileInterpolates) {
  std::vector<double> v{10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(percentile(v, 0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100), 40.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50), 25.0);
}

TEST(Stats, RunningMatchesBatch) {
  std::vector<double> v{3.5, -1.0, 7.25, 0.0, 2.5};
  RunningStats rs;
  for (double x : v) rs.add(x);
  EXPECT_EQ(rs.count(), v.size());
  EXPECT_NEAR(rs.mean(), mean(v), 1e-12);
  EXPECT_NEAR(rs.stddev(), stddev(v), 1e-12);
  EXPECT_DOUBLE_EQ(rs.min(), -1.0);
  EXPECT_DOUBLE_EQ(rs.max(), 7.25);
}

TEST(Table, TextAndCsvRendering) {
  Table t({"alg", "time"});
  t.add_row({"IP", "1.50"});
  t.add_row({"BiPartition", "1.62"});
  EXPECT_EQ(t.num_rows(), 2u);
  std::string text = t.to_text();
  EXPECT_NE(text.find("BiPartition"), std::string::npos);
  EXPECT_NE(text.find("alg"), std::string::npos);
  std::string csv = t.to_csv();
  EXPECT_NE(csv.find("IP,1.50"), std::string::npos);
}

TEST(Table, CsvQuotesSpecialChars) {
  Table t({"a"});
  t.add_row({"x,y"});
  EXPECT_NE(t.to_csv().find("\"x,y\""), std::string::npos);
}

TEST(Formatting, Adaptive) {
  EXPECT_EQ(format_fixed(1.23456, 2), "1.23");
  EXPECT_EQ(format_seconds(0.0123), "12.3ms");
  EXPECT_EQ(format_seconds(2.5), "2.50s");
  EXPECT_EQ(format_bytes(1536.0), "1.50 KB");
}

}  // namespace
}  // namespace bsio
