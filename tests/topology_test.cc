// Topology layer tests.
//
// Part 1 is the homogeneous bit-identity contract: the golden table below
// was captured from the pre-topology code (every transfer priced by the
// scalar ClusterConfig::remote_bw()/replica_bw()) on the XIO and OSUMED
// presets, with and without limited disk, for all four schedulers. The
// refactored tree must reproduce every makespan BIT for BIT (hexfloat
// compare), every transfer/eviction counter, and the first-round plan hash.
//
// Part 2 covers the heterogeneous extensions the layer opens up: per-storage
// disk bandwidths, per-compute NIC caps and CPU speed factors, two-level
// rack links, and the skewed-cluster generator.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/batch_scheduler.h"
#include "sched/driver.h"
#include "sim/topology.h"
#include "util/ws_runtime.h"
#include "workload/synthetic.h"

namespace bsio {
namespace {

// ------------------------------------------------------- golden differential

wl::Workload golden_workload() {
  wl::SyntheticConfig cfg;
  cfg.num_tasks = 24;
  cfg.files_per_task = 3;
  cfg.overlap = 0.5;
  cfg.file_size_bytes = 50.0 * sim::kMB;
  cfg.num_storage_nodes = 4;
  cfg.seed = 11;
  return wl::make_synthetic(cfg);
}

std::uint64_t plan_hash(const sim::SubBatchPlan& p) {
  std::uint64_t h = 1469598103934665603ull;
  auto mix = [&](std::uint64_t v) {
    h ^= v;
    h *= 1099511628211ull;
  };
  for (wl::TaskId t : p.tasks) {
    mix(t);
    mix(p.assignment.at(t));
  }
  for (const auto& [k, v] : p.staging) {
    mix(k.first);
    mix(k.second);
    mix(static_cast<std::uint64_t>(v.kind));
    mix(v.src_node);
  }
  for (const auto& [f, n] : p.prefetches) {
    mix(f);
    mix(n);
  }
  return h;
}

struct GoldenRow {
  const char* preset;
  const char* scheduler;
  double batch_time;  // hexfloat: compared for exact bit equality
  std::size_t sub_batches;
  std::size_t remote_transfers;
  std::size_t replications;
  std::size_t evictions;
  std::size_t restages;
  std::size_t cache_hits;
  double remote_bytes;
  double replica_bytes;
  std::uint64_t first_plan_hash;
};

// Captured from the pre-topology seed (commit edb0c75) with a single
// planning thread and node-count-truncated IP solves. Do NOT regenerate
// these from the current tree when a change breaks them — a mismatch means
// the homogeneous fast paths stopped reproducing the historical arithmetic.
const GoldenRow kGolden[] = {
    // clang-format off
    {"xio", "IP", 0x1.dd41d41d41d43p+2, 1, 40, 8, 0, 0, 24, 0x1.f4p+30, 0x1.9p+28, 0x20909099dcca5092ull},
    {"xio", "BiPartition", 0x1.915f15f15f16p+2, 1, 48, 0, 0, 0, 24, 0x1.2cp+31, 0x0p+0, 0x981396d46be57b5full},
    {"xio", "MinMin", 0x1.915f15f15f16p+2, 1, 50, 0, 0, 0, 22, 0x1.388p+31, 0x0p+0, 0xe5d3924395b9d3faull},
    {"xio", "JobDataPresent", 0x1.da35a35a35a37p+2, 1, 50, 0, 0, 0, 22, 0x1.388p+31, 0x0p+0, 0x6a767e967d3d2d4dull},
    {"osumed", "IP", 0x1.4fe6666666666p+7, 1, 41, 11, 0, 0, 20, 0x1.004p+31, 0x1.13p+29, 0x222c20d867519347ull},
    {"osumed", "BiPartition", 0x1.268p+7, 1, 36, 16, 0, 0, 20, 0x1.c2p+30, 0x1.9p+29, 0xb941add9e7ad5dbfull},
    {"osumed", "MinMin", 0x1.2519999999999p+7, 1, 36, 13, 0, 0, 23, 0x1.c2p+30, 0x1.45p+29, 0xb3e1281ad78175efull},
    {"osumed", "JobDataPresent", 0x1.2519999999999p+7, 1, 36, 13, 0, 0, 23, 0x1.c2p+30, 0x1.45p+29, 0x2dde3b8b064f5e7dull},
    {"xio_disk", "IP", 0x1.d222222222223p+2, 2, 44, 8, 4, 0, 20, 0x1.13p+31, 0x1.9p+28, 0xa84a68c06f97f137ull},
    {"xio_disk", "BiPartition", 0x1.a09c09c09c09dp+2, 2, 49, 0, 2, 0, 23, 0x1.324p+31, 0x0p+0, 0x55e13708d3cd98d5ull},
    {"xio_disk", "MinMin", 0x1.915f15f15f16p+2, 1, 50, 0, 2, 0, 22, 0x1.388p+31, 0x0p+0, 0xe5d3924395b9d3faull},
    {"xio_disk", "JobDataPresent", 0x1.da35a35a35a37p+2, 1, 50, 0, 7, 0, 22, 0x1.388p+31, 0x0p+0, 0x6a767e967d3d2d4dull},
    {"osumed_disk", "IP", 0x1.53b3333333333p+7, 2, 42, 14, 8, 0, 16, 0x1.068p+31, 0x1.5ep+29, 0xe69037d6bf694bdaull},
    {"osumed_disk", "BiPartition", 0x1.23b3333333333p+7, 2, 36, 20, 8, 0, 16, 0x1.c2p+30, 0x1.f4p+29, 0xf79ff8e050af6de8ull},
    {"osumed_disk", "MinMin", 0x1.2519999999999p+7, 1, 36, 13, 4, 0, 23, 0x1.c2p+30, 0x1.45p+29, 0xb3e1281ad78175efull},
    {"osumed_disk", "JobDataPresent", 0x1.2519999999999p+7, 1, 36, 13, 6, 0, 23, 0x1.c2p+30, 0x1.45p+29, 0x2dde3b8b064f5e7dull},
    // clang-format on
};

sim::ClusterConfig golden_preset(const std::string& name, double unique_bytes) {
  sim::ClusterConfig c = (name == "xio" || name == "xio_disk")
                             ? sim::xio_cluster(4, 4)
                             : sim::osumed_cluster(4, 4);
  if (name == "xio_disk" || name == "osumed_disk")
    c.disk_capacity = 0.35 * unique_bytes;
  return c;
}

core::Algorithm algorithm_named(const std::string& name) {
  for (core::Algorithm a : core::all_algorithms())
    if (name == core::algorithm_name(a)) return a;
  ADD_FAILURE() << "unknown scheduler " << name;
  return core::Algorithm::kMinMin;
}

TEST(TopologyBitIdentity, HomogeneousGoldensReproduceSeedBits) {
  // The goldens were captured single-threaded; the thread-pool determinism
  // contract makes the count irrelevant, but pinning it keeps this test
  // meaningful even if that contract ever regresses separately.
  WsRuntime::set_global_threads(1);
  const wl::Workload w = golden_workload();
  core::RunOptions opts;
  // Deterministic IP truncation: cut by node count, never wall clock.
  opts.ip.selection_mip.time_limit_seconds = 1e9;
  opts.ip.allocation_mip.time_limit_seconds = 1e9;
  opts.ip.selection_mip.max_nodes = 2000;
  opts.ip.allocation_mip.max_nodes = 2000;
  opts.ip.selection_mip.stall_node_limit = 64;
  opts.ip.allocation_mip.stall_node_limit = 64;

  for (const GoldenRow& row : kGolden) {
    SCOPED_TRACE(std::string(row.preset) + "/" + row.scheduler);
    const sim::ClusterConfig c =
        golden_preset(row.preset, w.unique_request_bytes());
    const core::Algorithm a = algorithm_named(row.scheduler);

    const auto r = core::run_batch_scheduler(a, w, c, opts);
    ASSERT_TRUE(r.ok()) << r.error;
    // Bitwise, not approximate: the whole point of the uniform fast paths.
    EXPECT_EQ(r.batch_time, row.batch_time);
    EXPECT_EQ(r.sub_batches, row.sub_batches);
    EXPECT_EQ(r.stats.remote_transfers, row.remote_transfers);
    EXPECT_EQ(r.stats.replications, row.replications);
    EXPECT_EQ(r.stats.evictions, row.evictions);
    EXPECT_EQ(r.stats.restages, row.restages);
    EXPECT_EQ(r.stats.cache_hits, row.cache_hits);
    EXPECT_EQ(r.stats.remote_bytes, row.remote_bytes);
    EXPECT_EQ(r.stats.replica_bytes, row.replica_bytes);

    // First-round plan, structurally hashed.
    auto sched = core::make_scheduler(a, opts);
    sim::EngineOptions eng_opts;
    eng_opts.eviction = sched->eviction_policy();
    sim::ExecutionEngine eng(c, w, eng_opts);
    sched::SchedulerContext ctx{w, c, eng};
    std::vector<wl::TaskId> pending;
    for (const auto& t : w.tasks()) pending.push_back(t.id);
    const sim::SubBatchPlan plan = sched->plan_sub_batch(pending, ctx);
    EXPECT_EQ(plan_hash(plan), row.first_plan_hash);
  }
  WsRuntime::set_global_threads(0);
}

// --------------------------------------------------------- resolve mechanics

sim::ClusterConfig base_cluster(std::size_t compute = 4,
                                std::size_t storage = 2) {
  sim::ClusterConfig c;
  c.num_compute_nodes = compute;
  c.num_storage_nodes = storage;
  c.storage_disk_bw = 50.0 * sim::kMB;
  c.storage_net_bw = 500.0 * sim::kMB;
  c.compute_net_bw = 400.0 * sim::kMB;
  c.local_disk_bw = 200.0 * sim::kMB;
  return c;
}

TEST(Topology, UniformConfigMatchesHistoricalScalars) {
  const sim::ClusterConfig c = base_cluster();
  const sim::Topology topo(c);
  EXPECT_TRUE(topo.uniform());
  EXPECT_TRUE(topo.uniform_remote());
  EXPECT_TRUE(topo.uniform_replica());
  EXPECT_TRUE(topo.uniform_speed());
  // min(storage_disk, storage_net), no uplink.
  EXPECT_EQ(topo.uniform_remote_bw(), 50.0 * sim::kMB);
  EXPECT_EQ(topo.min_remote_bw(), 50.0 * sim::kMB);
  EXPECT_EQ(topo.uniform_replica_bw(), 400.0 * sim::kMB);
  EXPECT_EQ(topo.min_replica_bw(), 400.0 * sim::kMB);
  EXPECT_EQ(topo.num_links(), 0u);

  const sim::TransferPath rp = topo.remote_path(1, 2);
  EXPECT_EQ(rp.bandwidth, 50.0 * sim::kMB);
  EXPECT_EQ(rp.num_links, 0u);
  const sim::TransferPath pp = topo.replica_path(0, 3);
  EXPECT_EQ(pp.bandwidth, 400.0 * sim::kMB);
  EXPECT_EQ(pp.num_links, 0u);

  // resolve() dispatches on the endpoint kind.
  EXPECT_EQ(topo.resolve(sim::Endpoint::storage(1), sim::Endpoint::compute(2))
                .bandwidth,
            rp.bandwidth);
  EXPECT_EQ(topo.resolve(sim::Endpoint::compute(0), sim::Endpoint::compute(3))
                .bandwidth,
            pp.bandwidth);
}

TEST(Topology, SharedUplinkBecomesALinkResource) {
  sim::ClusterConfig c = base_cluster();
  c.shared_uplink_bw = 30.0 * sim::kMB;
  const sim::Topology topo(c);
  ASSERT_EQ(topo.num_links(), 1u);
  EXPECT_EQ(topo.link_bw(0), 30.0 * sim::kMB);
  // Remote paths cross it and are capped by it; replica paths do not.
  const sim::TransferPath rp = topo.remote_path(0, 1);
  EXPECT_EQ(rp.bandwidth, 30.0 * sim::kMB);
  ASSERT_EQ(rp.num_links, 1u);
  EXPECT_EQ(rp.links[0], 0u);
  const sim::TransferPath pp = topo.replica_path(0, 1);
  EXPECT_EQ(pp.bandwidth, 400.0 * sim::kMB);
  EXPECT_EQ(pp.num_links, 0u);
}

TEST(Topology, PerStorageDiskBandwidthCapsOnlyThatRow) {
  sim::ClusterConfig c = base_cluster(4, 2);
  c.storage_disk_bw_per_node = {50.0 * sim::kMB, 10.0 * sim::kMB};
  ASSERT_TRUE(c.validate().ok());
  const sim::Topology topo(c);
  EXPECT_FALSE(topo.uniform_remote());
  EXPECT_TRUE(topo.uniform_replica());  // compute side untouched
  for (wl::NodeId i = 0; i < 4; ++i) {
    EXPECT_EQ(topo.remote_bw(0, i), 50.0 * sim::kMB);
    EXPECT_EQ(topo.remote_bw(1, i), 10.0 * sim::kMB);
  }
  EXPECT_EQ(topo.min_remote_bw(), 10.0 * sim::kMB);
}

TEST(Topology, NicCapsBothRemoteAndReplicaIntoANode) {
  sim::ClusterConfig c = base_cluster(3, 1);
  c.compute_nic_bw = {400.0 * sim::kMB, 20.0 * sim::kMB, 400.0 * sim::kMB};
  ASSERT_TRUE(c.validate().ok());
  const sim::Topology topo(c);
  EXPECT_FALSE(topo.uniform());
  EXPECT_EQ(topo.remote_bw(0, 0), 50.0 * sim::kMB);
  EXPECT_EQ(topo.remote_bw(0, 1), 20.0 * sim::kMB);  // NIC is the bottleneck
  // Replication is capped by either endpoint's NIC.
  EXPECT_EQ(topo.replica_bw(0, 2), 400.0 * sim::kMB);
  EXPECT_EQ(topo.replica_bw(0, 1), 20.0 * sim::kMB);
  EXPECT_EQ(topo.replica_bw(1, 2), 20.0 * sim::kMB);
}

TEST(Topology, CpuSpeedScalesExecOnly) {
  sim::ClusterConfig c = base_cluster(2, 1);
  c.compute_speed = {1.0, 2.0};
  ASSERT_TRUE(c.validate().ok());
  const sim::Topology topo(c);
  EXPECT_TRUE(topo.uniform_remote());  // network untouched
  EXPECT_FALSE(topo.uniform_speed());
  EXPECT_EQ(topo.cpu_speed(0), 1.0);
  EXPECT_EQ(topo.cpu_speed(1), 2.0);
  const double bytes = 100.0 * sim::kMB;
  EXPECT_EQ(topo.exec_seconds(bytes, 10.0, 0),
            bytes / c.local_disk_bw + 10.0);
  EXPECT_EQ(topo.exec_seconds(bytes, 10.0, 1),
            bytes / c.local_disk_bw + 5.0);
}

TEST(Topology, RackLinksShapeRemoteAndCrossRackReplicaPaths) {
  sim::ClusterConfig c = base_cluster(4, 2);
  c.compute_rack = {0, 0, 1, 1};
  c.rack_uplink_bw = {100.0 * sim::kMB, 25.0 * sim::kMB};
  ASSERT_TRUE(c.validate().ok());
  const sim::Topology topo(c);
  ASSERT_EQ(topo.num_links(), 2u);  // one per rack, no global uplink

  // Remote into rack 1 is capped by rack 1's uplink and crosses its link.
  const sim::TransferPath r0 = topo.remote_path(0, 0);
  EXPECT_EQ(r0.bandwidth, 50.0 * sim::kMB);  // storage disk still slowest
  ASSERT_EQ(r0.num_links, 1u);
  const sim::TransferPath r1 = topo.remote_path(0, 3);
  EXPECT_EQ(r1.bandwidth, 25.0 * sim::kMB);
  ASSERT_EQ(r1.num_links, 1u);
  EXPECT_NE(r0.links[0], r1.links[0]);

  // Same-rack replication stays off the uplinks; cross-rack crosses both
  // and is capped by the slower one.
  const sim::TransferPath same = topo.replica_path(0, 1);
  EXPECT_EQ(same.bandwidth, 400.0 * sim::kMB);
  EXPECT_EQ(same.num_links, 0u);
  const sim::TransferPath cross = topo.replica_path(1, 2);
  EXPECT_EQ(cross.bandwidth, 25.0 * sim::kMB);
  EXPECT_EQ(cross.num_links, 2u);
}

TEST(Topology, ValidateRejectsMalformedHeterogeneity) {
  sim::ClusterConfig c = base_cluster(4, 2);
  c.compute_nic_bw = {1.0, 1.0};  // wrong length
  EXPECT_FALSE(c.validate().ok());

  c = base_cluster(4, 2);
  c.compute_speed = {1.0, 0.0, 1.0, 1.0};  // non-positive entry
  EXPECT_FALSE(c.validate().ok());

  c = base_cluster(4, 2);
  c.compute_rack = {0, 0, 1, 1};  // racks without uplink bandwidths
  EXPECT_FALSE(c.validate().ok());

  c = base_cluster(4, 2);
  c.compute_rack = {0, 0, 2, 1};  // rack id out of range
  c.rack_uplink_bw = {100.0, 100.0};
  EXPECT_FALSE(c.validate().ok());

  c = base_cluster(4, 2);
  c.rack_uplink_bw = {100.0, 100.0};  // uplinks without rack assignment
  EXPECT_FALSE(c.validate().ok());
}

// ------------------------------------------------------ hetero presets / gen

TEST(Topology, HeteroPresetsValidateAndAreNonUniform) {
  const sim::ClusterConfig mixed = sim::xio_mixed_cluster(4, 4);
  EXPECT_TRUE(mixed.validate().ok());
  EXPECT_FALSE(mixed.homogeneous());
  EXPECT_FALSE(sim::Topology(mixed).uniform());

  const sim::ClusterConfig racked = sim::racked_cluster(8, 4, 2);
  EXPECT_TRUE(racked.validate().ok());
  EXPECT_FALSE(racked.homogeneous());
  const sim::Topology topo(racked);
  EXPECT_EQ(topo.num_links(), 2u);
}

TEST(Topology, SkewedClusterGeneratorIsDeterministicAndBounded) {
  const sim::ClusterConfig base = base_cluster(6, 3);
  EXPECT_TRUE(sim::make_skewed_cluster(base, 0.0).homogeneous());

  const double skew = 0.5;
  const sim::ClusterConfig a = sim::make_skewed_cluster(base, skew, 7);
  const sim::ClusterConfig b = sim::make_skewed_cluster(base, skew, 7);
  const sim::ClusterConfig d = sim::make_skewed_cluster(base, skew, 8);
  EXPECT_TRUE(a.validate().ok());
  EXPECT_FALSE(a.homogeneous());
  EXPECT_EQ(a.storage_disk_bw_per_node, b.storage_disk_bw_per_node);
  EXPECT_EQ(a.compute_speed, b.compute_speed);
  EXPECT_NE(a.compute_speed, d.compute_speed);

  const double lo = 1.0 / (1.0 + skew), hi = 1.0 + skew;
  for (double v : a.storage_disk_bw_per_node) {
    EXPECT_GE(v, base.storage_disk_bw * lo * 0.999);
    EXPECT_LE(v, base.storage_disk_bw * hi * 1.001);
  }
  for (double v : a.compute_nic_bw) {
    EXPECT_GE(v, base.storage_net_bw * lo * 0.999);
    EXPECT_LE(v, base.storage_net_bw * hi * 1.001);
  }
  for (double v : a.compute_speed) {
    EXPECT_GE(v, lo * 0.999);
    EXPECT_LE(v, hi * 1.001);
  }
}

// ----------------------------------------------- hetero end-to-end behaviour

wl::Workload hetero_workload(std::uint64_t seed) {
  wl::SyntheticConfig cfg;
  cfg.num_tasks = 20;
  cfg.files_per_task = 3;
  cfg.overlap = 0.5;
  cfg.file_size_bytes = 40.0 * sim::kMB;
  cfg.num_storage_nodes = 4;
  cfg.seed = seed;
  return wl::make_synthetic(cfg);
}

TEST(TopologyEndToEnd, AllSchedulersDrainHeteroClusters) {
  const wl::Workload w = hetero_workload(13);
  core::RunOptions opts;
  opts.ip.allocation_mip.time_limit_seconds = 5.0;
  for (const sim::ClusterConfig& c :
       {sim::xio_mixed_cluster(4, 4), sim::racked_cluster(8, 4, 2),
        sim::make_skewed_cluster(sim::xio_cluster(4, 4), 0.75, 3)}) {
    ASSERT_TRUE(c.validate().ok());
    for (core::Algorithm a : core::all_algorithms()) {
      const auto r = core::run_batch_scheduler(a, w, c, opts);
      ASSERT_TRUE(r.ok()) << core::algorithm_name(a) << ": " << r.error;
      EXPECT_EQ(r.stats.tasks_executed, w.num_tasks());
    }
  }
}

TEST(TopologyEndToEnd, FasterCpusNeverSlowTheBatch) {
  const wl::Workload w = hetero_workload(17);
  sim::ClusterConfig slow = sim::xio_cluster(4, 4);
  sim::ClusterConfig fast = slow;
  fast.compute_speed = {2.0, 2.0, 2.0, 2.0};
  for (core::Algorithm a :
       {core::Algorithm::kMinMin, core::Algorithm::kBiPartition}) {
    const auto rs = core::run_batch_scheduler(a, w, slow, {});
    const auto rf = core::run_batch_scheduler(a, w, fast, {});
    ASSERT_TRUE(rs.ok() && rf.ok());
    EXPECT_LE(rf.batch_time, rs.batch_time + 1e-9)
        << core::algorithm_name(a);
  }
}

}  // namespace
}  // namespace bsio
