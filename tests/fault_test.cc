// Fault injection & failure recovery tests: deterministic seeded faults,
// transfer retries with backoff, compute-node crashes with driver-level
// re-scheduling, storage outages, and the typed-error surface
// (ClusterConfig::validate, FaultConfig::validate, ExecutionEngine::execute).

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <string>

#include "core/batch_scheduler.h"
#include "sched/driver.h"
#include "sched/job_data_present.h"
#include "sched/minmin.h"
#include "sim/engine.h"
#include "sim/faults.h"
#include "workload/synthetic.h"

namespace bsio {
namespace {

sim::ClusterConfig fault_cluster(std::size_t compute = 2,
                                 std::size_t storage = 2) {
  sim::ClusterConfig c;
  c.num_compute_nodes = compute;
  c.num_storage_nodes = storage;
  c.storage_disk_bw = 100.0 * sim::kMB;   // remote: 1 s per 100 MB file
  c.storage_net_bw = 1000.0 * sim::kMB;
  c.compute_net_bw = 400.0 * sim::kMB;    // replica: 0.25 s per file
  c.local_disk_bw = 1000.0 * sim::kMB;    // read: 0.1 s per file
  return c;
}

// One task per file, every file 100 MB on storage node 0.
wl::Workload disjoint_workload(std::size_t tasks, double compute_seconds) {
  std::vector<wl::FileInfo> files(tasks);
  for (auto& f : files) {
    f.size_bytes = 100.0 * sim::kMB;
    f.home_storage_node = 0;
  }
  std::vector<wl::TaskInfo> ts(tasks);
  for (std::size_t k = 0; k < tasks; ++k) {
    ts[k].files = {static_cast<wl::FileId>(k)};
    ts[k].compute_seconds = compute_seconds;
  }
  return wl::Workload(std::move(ts), std::move(files));
}

wl::Workload shared_workload(std::uint64_t seed = 23) {
  wl::SyntheticConfig cfg;
  cfg.num_tasks = 20;
  cfg.files_per_task = 3;
  cfg.overlap = 0.5;
  cfg.file_size_bytes = 64.0 * sim::kMB;
  cfg.num_storage_nodes = 2;
  cfg.seed = seed;
  return wl::make_synthetic(cfg);
}

// --- FaultConfig validation. ---

TEST(FaultConfig, ValidateCatchesBadValues) {
  const sim::ClusterConfig c = fault_cluster();
  sim::FaultConfig f;
  EXPECT_TRUE(f.validate(c).ok());

  f.transfer_failure_prob = 1.5;
  EXPECT_FALSE(f.validate(c).ok());
  f.transfer_failure_prob = 0.1;
  f.max_transfer_attempts = 0;
  EXPECT_FALSE(f.validate(c).ok());
  f.max_transfer_attempts = 3;

  f.compute_crashes.push_back({99, 1.0});  // node out of range
  EXPECT_FALSE(f.validate(c).ok());
  f.compute_crashes.clear();

  f.storage_outages.push_back({0, 5.0, 2.0});  // end before start
  EXPECT_FALSE(f.validate(c).ok());
  f.storage_outages = {{7, 0.0, 1.0}};  // storage node out of range
  EXPECT_FALSE(f.validate(c).ok());
}

TEST(FaultConfig, ClusterValidateReturnsTypedErrors) {
  sim::ClusterConfig c = fault_cluster();
  c.num_compute_nodes = 0;
  const auto v = c.validate();
  ASSERT_FALSE(v.ok());
  EXPECT_NE(v.error().message.find("compute"), std::string::npos);
}

// --- Determinism: same seed -> same draws; zero faults -> no draws. ---

TEST(FaultModel, SameSeedSameDraws) {
  sim::FaultConfig cfg;
  cfg.seed = 42;
  cfg.transfer_failure_prob = 0.3;
  sim::FaultModel a(cfg, 2, 2), b(cfg, 2, 2);
  for (std::uint64_t t = 0; t < 200; ++t)
    for (std::size_t k = 0; k < 3; ++k)
      EXPECT_EQ(a.transfer_attempt_fails(t, k), b.transfer_attempt_fails(t, k));
}

TEST(FaultModel, LastAttemptNeverFails) {
  sim::FaultConfig cfg;
  cfg.transfer_failure_prob = 1.0;
  cfg.max_transfer_attempts = 3;
  sim::FaultModel m(cfg, 2, 2);
  for (std::uint64_t t = 0; t < 50; ++t) {
    EXPECT_TRUE(m.transfer_attempt_fails(t, 0));
    EXPECT_TRUE(m.transfer_attempt_fails(t, 1));
    EXPECT_FALSE(m.transfer_attempt_fails(t, 2));  // forced success
  }
}

TEST(FaultModel, ZeroFaultConfigReproducesSeedMakespans) {
  // A default FaultConfig must leave every scheduler's simulation
  // bit-identical to the engine without fault plumbing.
  const wl::Workload w = shared_workload();
  const sim::ClusterConfig c = fault_cluster(3, 2);
  for (core::Algorithm a : core::all_algorithms()) {
    SCOPED_TRACE(core::algorithm_name(a));
    core::RunOptions opts;
    // Make the IP solves node-limited rather than wall-clock-limited so the
    // comparison is deterministic under arbitrary machine load.
    opts.ip.selection_mip.max_nodes = 2000;
    opts.ip.selection_mip.time_limit_seconds = 300.0;
    opts.ip.allocation_mip.max_nodes = 5000;
    opts.ip.allocation_mip.time_limit_seconds = 300.0;
    auto baseline = core::run_batch_scheduler(a, w, c, opts);
    opts.faults = sim::FaultConfig{};  // explicit zero-fault config
    auto replay = core::run_batch_scheduler(a, w, c, opts);
    ASSERT_TRUE(baseline.ok());
    ASSERT_TRUE(replay.ok());
    EXPECT_EQ(baseline.batch_time, replay.batch_time);  // bit-identical
    EXPECT_EQ(baseline.stats.remote_transfers, replay.stats.remote_transfers);
    EXPECT_EQ(baseline.stats.replications, replay.stats.replications);
    EXPECT_EQ(replay.stats.transfer_retries, 0u);
    EXPECT_EQ(replay.stats.node_crashes, 0u);
  }
}

// --- Backoff clamp & give-up. ---

TEST(FaultModel, BackoffIsClampedToMaxBackoffSeconds) {
  sim::FaultConfig cfg;
  cfg.retry_backoff_seconds = 0.5;
  cfg.retry_backoff_factor = 2.0;
  cfg.max_backoff_seconds = 3.0;
  sim::FaultModel m(cfg, 2, 2);
  EXPECT_DOUBLE_EQ(m.backoff_after(0), 0.5);
  EXPECT_DOUBLE_EQ(m.backoff_after(1), 1.0);
  EXPECT_DOUBLE_EQ(m.backoff_after(2), 2.0);
  EXPECT_DOUBLE_EQ(m.backoff_after(3), 3.0);  // 4.0 clamped
  // Huge attempt counts must not pow-overflow into absurd waits.
  EXPECT_DOUBLE_EQ(m.backoff_after(100), 3.0);
  EXPECT_DOUBLE_EQ(m.backoff_after(10000), 3.0);
  EXPECT_TRUE(std::isfinite(m.backoff_after(10000)));
}

TEST(FaultConfig, MaxBackoffSecondsValidation) {
  const sim::ClusterConfig c = fault_cluster();
  sim::FaultConfig f;
  f.max_backoff_seconds = 0.0;
  EXPECT_FALSE(f.validate(c).ok());
  f.max_backoff_seconds = -1.0;
  EXPECT_FALSE(f.validate(c).ok());
  f.max_backoff_seconds = 60.0;
  EXPECT_TRUE(f.validate(c).ok());
}

TEST(FaultInjection, GiveUpAfterMaxAttemptsIsTypedEngineError) {
  // prob = 1 with give-up: every attempt fails, including the last, and the
  // engine surfaces a typed error instead of forcing the final success.
  wl::Workload w = disjoint_workload(1, 2.0);
  sim::EngineOptions opts;
  opts.faults.transfer_failure_prob = 1.0;
  opts.faults.max_transfer_attempts = 2;
  opts.faults.give_up_after_max_attempts = true;
  sim::ExecutionEngine eng(fault_cluster(), w, opts);
  sim::SubBatchPlan p;
  p.tasks = {0};
  p.assignment[0] = 0;
  const auto r = eng.execute(p);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error().message.find("giving up"), std::string::npos);
  EXPECT_EQ(eng.totals().transfer_retries, 2u);
  EXPECT_EQ(eng.totals().tasks_executed, 0u);
}

TEST(FaultInjection, GiveUpSurfacesThroughDriver) {
  wl::Workload w = disjoint_workload(2, 1.0);
  sim::FaultConfig faults;
  faults.transfer_failure_prob = 1.0;
  faults.max_transfer_attempts = 3;
  faults.give_up_after_max_attempts = true;
  sched::MinMinScheduler sched;
  const auto r = sched::run_batch(sched, w, fault_cluster(), faults);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error.find("giving up"), std::string::npos);
  EXPECT_GT(r.tasks_stranded, 0u);
}

TEST(FaultInjection, GiveUpDisabledKeepsForcedFinalSuccess) {
  // Same probability-1 scenario without give-up: the final attempt still
  // succeeds and the batch drains (the PR 1 semantics are the default).
  wl::Workload w = disjoint_workload(1, 1.0);
  sim::EngineOptions opts;
  opts.faults.transfer_failure_prob = 1.0;
  opts.faults.max_transfer_attempts = 2;
  sim::ExecutionEngine eng(fault_cluster(), w, opts);
  sim::SubBatchPlan p;
  p.tasks = {0};
  p.assignment[0] = 0;
  ASSERT_TRUE(eng.execute(p).ok());
  EXPECT_EQ(eng.totals().tasks_executed, 1u);
}

// --- Transient transfer failures & retry backoff. ---

TEST(FaultInjection, TransferRetriesAppearInTraceWithBackoffSpacing) {
  // prob = 1 with 3 attempts: attempts 0 and 1 fail, attempt 2 succeeds.
  // Each retry starts backoff_after(k) seconds after the failed attempt's
  // deadline.
  wl::Workload w = disjoint_workload(1, 2.0);
  sim::EngineOptions opts;
  opts.trace = true;
  opts.faults.transfer_failure_prob = 1.0;
  opts.faults.max_transfer_attempts = 3;
  opts.faults.retry_backoff_seconds = 0.5;
  opts.faults.retry_backoff_factor = 2.0;
  sim::ExecutionEngine eng(fault_cluster(), w, opts);

  sim::SubBatchPlan p;
  p.tasks = {0};
  p.assignment[0] = 0;
  auto stats = eng.execute(p).value();
  EXPECT_EQ(stats.transfer_retries, 2u);
  EXPECT_EQ(stats.remote_transfers, 1u);
  EXPECT_GT(stats.recovery_seconds, 0.0);

  std::vector<sim::TraceEvent> failed, ok;
  for (const auto& e : eng.trace()) {
    if (e.kind == sim::TraceEvent::Kind::kFailedTransfer) failed.push_back(e);
    if (e.kind == sim::TraceEvent::Kind::kRemoteTransfer) ok.push_back(e);
  }
  ASSERT_EQ(failed.size(), 2u);
  ASSERT_EQ(ok.size(), 1u);
  // Attempt 0: [0, 1); retry waits 0.5 -> attempt 1: [1.5, 2.5); retry
  // waits 1.0 -> attempt 2: [3.5, 4.5).
  EXPECT_NEAR(failed[0].start, 0.0, 1e-9);
  EXPECT_NEAR(failed[1].start - failed[0].end, 0.5, 1e-9);
  EXPECT_NEAR(ok[0].start - failed[1].end, 1.0, 1e-9);
  // Exec after the successful transfer: 4.5 + 0.1 read + 2.0 compute.
  EXPECT_NEAR(eng.makespan(), 4.5 + 0.1 + 2.0, 1e-9);
}

TEST(FaultInjection, RetriesDegradeButCompleteUnderModerateRates) {
  wl::Workload w = shared_workload(29);
  const sim::ClusterConfig c = fault_cluster(3, 2);
  sched::MinMinScheduler sched;
  auto clean = sched::run_batch(sched, w, c);
  sim::FaultConfig faults;
  faults.transfer_failure_prob = 0.2;
  auto faulty = sched::run_batch(sched, w, c, faults);
  ASSERT_TRUE(clean.ok());
  ASSERT_TRUE(faulty.ok());
  EXPECT_EQ(faulty.stats.tasks_executed, w.num_tasks());
  EXPECT_GT(faulty.stats.transfer_retries, 0u);
  EXPECT_GE(faulty.batch_time, clean.batch_time);  // failures cost time
}

// --- Compute-node crashes. ---

TEST(FaultInjection, CrashDropsReplicasAndOrphansTasks) {
  // Two tasks on node 0; the first one's exec block crosses the crash at
  // t = 2.0 (it would finish at 3.1), so both are orphaned, the cache is
  // lost, and re-running them on node 1 completes the batch.
  wl::Workload w = disjoint_workload(2, 2.0);
  sim::EngineOptions opts;
  opts.faults.compute_crashes = {{0, 2.0}};
  sim::ExecutionEngine eng(fault_cluster(), w, opts);

  sim::SubBatchPlan p;
  p.tasks = {0, 1};
  p.assignment[0] = 0;
  p.assignment[1] = 0;
  auto stats = eng.execute(p).value();
  EXPECT_EQ(stats.tasks_executed, 0u);
  EXPECT_EQ(stats.node_crashes, 1u);
  EXPECT_EQ(stats.task_reexecutions, 1u);  // one task was killed mid-run
  EXPECT_GT(stats.lost_replica_bytes, 0.0);
  EXPECT_FALSE(eng.node_alive(0));
  EXPECT_TRUE(eng.node_alive(1));
  EXPECT_EQ(eng.alive_count(), 1u);
  EXPECT_TRUE(eng.state().files_on(0).empty());  // replicas gone

  auto orphaned = eng.take_orphaned();
  ASSERT_EQ(orphaned.size(), 2u);
  EXPECT_TRUE(eng.take_orphaned().empty());  // drained

  sim::SubBatchPlan recovery;
  recovery.tasks = orphaned;
  for (wl::TaskId t : orphaned) recovery.assignment[t] = 1;
  auto stats2 = eng.execute(recovery).value();
  EXPECT_EQ(stats2.tasks_executed, 2u);
  EXPECT_EQ(eng.totals().tasks_executed, 2u);
}

TEST(FaultInjection, ExecutePlacingWorkOnCrashedNodeIsRecoverableError) {
  wl::Workload w = disjoint_workload(2, 2.0);
  sim::EngineOptions opts;
  opts.faults.compute_crashes = {{0, 0.5}};
  sim::ExecutionEngine eng(fault_cluster(), w, opts);

  sim::SubBatchPlan p;
  p.tasks = {0};
  p.assignment[0] = 0;
  ASSERT_TRUE(eng.execute(p).ok());  // crash fires, task orphaned
  ASSERT_FALSE(eng.node_alive(0));
  eng.take_orphaned();

  sim::SubBatchPlan bad;
  bad.tasks = {1};
  bad.assignment[1] = 0;  // dead node
  const auto r = eng.execute(bad);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error().message.find("crashed"), std::string::npos);
}

TEST(FaultInjection, MalformedPlansAreRecoverableErrors) {
  wl::Workload w = disjoint_workload(2, 1.0);
  sim::ExecutionEngine eng(fault_cluster(), w);

  sim::SubBatchPlan missing;
  missing.tasks = {0};  // no assignment
  EXPECT_FALSE(eng.execute(missing).ok());

  sim::SubBatchPlan unknown;
  unknown.tasks = {9};
  unknown.assignment[9] = 0;
  EXPECT_FALSE(eng.execute(unknown).ok());

  sim::SubBatchPlan good;
  good.tasks = {0};
  good.assignment[0] = 0;
  ASSERT_TRUE(eng.execute(good).ok());
  EXPECT_FALSE(eng.execute(good).ok());  // already executed

  // Failed validation must not have mutated anything: task 1 still runs.
  sim::SubBatchPlan rest;
  rest.tasks = {1};
  rest.assignment[1] = 1;
  EXPECT_TRUE(eng.execute(rest).ok());
  EXPECT_EQ(eng.totals().tasks_executed, 2u);
}

TEST(FaultInjection, DriverReschedulesAcrossCrashForAllSchedulers) {
  const wl::Workload w = shared_workload(31);
  const sim::ClusterConfig c = fault_cluster(3, 2);
  sim::FaultConfig faults;
  faults.compute_crashes = {{1, 3.0}};
  for (core::Algorithm a : core::all_algorithms()) {
    SCOPED_TRACE(core::algorithm_name(a));
    core::RunOptions opts;
    opts.faults = faults;
    opts.ip.selection_mip.time_limit_seconds = 1.0;
    opts.ip.allocation_mip.time_limit_seconds = 2.0;
    auto r = core::run_batch_scheduler(a, w, c, opts);
    ASSERT_TRUE(r.ok()) << r.error;
    EXPECT_EQ(r.stats.tasks_executed, w.num_tasks());
    EXPECT_EQ(r.stats.node_crashes, 1u);
    EXPECT_GT(r.batch_time, 0.0);
  }
}

TEST(FaultInjection, TwoOverlappingCrashesLoseNoTasks) {
  // Six tasks spread over three nodes; nodes 0 and 1 crash with their work
  // mid-flight. Every task must either execute or surface exactly once as
  // an orphan — none lost, none run twice.
  wl::Workload w = disjoint_workload(6, 2.0);
  const sim::ClusterConfig c = fault_cluster(3, 2);
  sim::EngineOptions opts;
  opts.faults.compute_crashes = {{0, 2.0}, {1, 2.5}};
  sim::ExecutionEngine eng(c, w, opts);

  sim::SubBatchPlan p;
  p.tasks = {0, 1, 2, 3, 4, 5};
  for (wl::TaskId t = 0; t < 6; ++t)
    p.assignment[t] = static_cast<wl::NodeId>(t % 3);
  const auto stats = eng.execute(p).value();

  EXPECT_EQ(stats.node_crashes, 2u);
  EXPECT_FALSE(eng.node_alive(0));
  EXPECT_FALSE(eng.node_alive(1));
  EXPECT_TRUE(eng.node_alive(2));

  const auto orphaned = eng.take_orphaned();
  EXPECT_EQ(stats.tasks_executed + orphaned.size(), 6u);
  // No orphan duplicates, and no orphan was executed.
  std::set<wl::TaskId> seen(orphaned.begin(), orphaned.end());
  EXPECT_EQ(seen.size(), orphaned.size());

  // The recovery plan on the survivor drains everything exactly once.
  sim::SubBatchPlan recovery;
  recovery.tasks = orphaned;
  for (wl::TaskId t : orphaned) recovery.assignment[t] = 2;
  ASSERT_TRUE(eng.execute(recovery).ok());
  EXPECT_EQ(eng.totals().tasks_executed, 6u);
  EXPECT_GE(eng.totals().task_reexecutions, 1u);
  EXPECT_TRUE(eng.take_orphaned().empty());
}

TEST(FaultInjection, DriverSurvivesTwoOverlappingCrashes) {
  const wl::Workload w = shared_workload(43);
  const sim::ClusterConfig c = fault_cluster(4, 2);
  sim::FaultConfig faults;
  faults.compute_crashes = {{0, 2.0}, {1, 2.5}};
  sched::MinMinScheduler sched;
  const auto r = sched::run_batch(sched, w, c, faults);
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_EQ(r.stats.tasks_executed, w.num_tasks());
  EXPECT_EQ(r.stats.node_crashes, 2u);
}

TEST(FaultInjection, CrashDuringInFlightTransferOrphansCleanly) {
  // Node 0 dies at t = 0.5 while its input transfer occupies [0, 1): the
  // transfer was in flight at the failure (its reservation stands, the
  // bytes are charged), the task is orphaned without any partial exec, and
  // the re-run executes it exactly once.
  wl::Workload w = disjoint_workload(1, 2.0);
  sim::EngineOptions opts;
  opts.faults.compute_crashes = {{0, 0.5}};
  sim::ExecutionEngine eng(fault_cluster(), w, opts);

  sim::SubBatchPlan p;
  p.tasks = {0};
  p.assignment[0] = 0;
  const auto stats = eng.execute(p).value();
  EXPECT_EQ(stats.tasks_executed, 0u);
  EXPECT_EQ(stats.remote_transfers, 1u);  // in flight when the node died
  EXPECT_EQ(stats.task_reexecutions, 1u);
  EXPECT_TRUE(eng.state().files_on(0).empty());  // the copy died with it

  const auto orphaned = eng.take_orphaned();
  ASSERT_EQ(orphaned.size(), 1u);
  sim::SubBatchPlan recovery;
  recovery.tasks = orphaned;
  recovery.assignment[orphaned[0]] = 1;
  const auto stats2 = eng.execute(recovery).value();
  EXPECT_EQ(stats2.tasks_executed, 1u);
  EXPECT_EQ(stats2.remote_transfers, 1u);  // re-staged onto the survivor
  EXPECT_EQ(eng.totals().tasks_executed, 1u);
  EXPECT_TRUE(eng.take_orphaned().empty());
}

TEST(FaultInjection, AllNodesCrashedReportsErrorNotAbort) {
  const wl::Workload w = shared_workload(37);
  const sim::ClusterConfig c = fault_cluster(2, 2);
  sim::FaultConfig faults;
  faults.compute_crashes = {{0, 0.25}, {1, 0.25}};
  sched::MinMinScheduler sched;
  auto r = sched::run_batch(sched, w, c, faults);
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.error.find("crashed"), std::string::npos);
  EXPECT_GT(r.tasks_stranded, 0u);
}

TEST(FaultInjection, InvalidFaultConfigSurfacesThroughDriver) {
  const wl::Workload w = disjoint_workload(2, 1.0);
  const sim::ClusterConfig c = fault_cluster();
  sim::FaultConfig faults;
  faults.transfer_failure_prob = -0.5;
  sched::MinMinScheduler sched;
  auto r = sched::run_batch(sched, w, c, faults);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.tasks_stranded, w.num_tasks());
}

// --- Storage outages. ---

TEST(FaultInjection, StorageOutageDelaysRemoteTransfers) {
  // The only storage node is down for [0, 10): the single task's transfer
  // waits the window out.
  wl::Workload w = disjoint_workload(1, 2.0);
  sim::EngineOptions opts;
  opts.faults.storage_outages = {{0, 0.0, 10.0}};
  sim::ExecutionEngine eng(fault_cluster(), w, opts);
  sim::SubBatchPlan p;
  p.tasks = {0};
  p.assignment[0] = 0;
  ASSERT_TRUE(eng.execute(p).ok());
  // transfer [10, 11), read 0.1, compute 2.0.
  EXPECT_NEAR(eng.makespan(), 11.0 + 0.1 + 2.0, 1e-9);
}

TEST(FaultInjection, StorageOutageDegradesToReplicaSourcing) {
  // Task 0 stages file 0 onto node 0 before the outage starts; task 1 needs
  // the same file on node 1 during the outage, so it must replicate from
  // node 0 instead of waiting ~100 s for storage.
  std::vector<wl::FileInfo> files(1);
  files[0].size_bytes = 100.0 * sim::kMB;
  files[0].home_storage_node = 0;
  std::vector<wl::TaskInfo> tasks(2);
  tasks[0].files = {0};
  tasks[0].compute_seconds = 1.0;
  tasks[1].files = {0};
  tasks[1].compute_seconds = 1.0;
  wl::Workload w(std::move(tasks), std::move(files));

  sim::ClusterConfig c = fault_cluster(2, 1);
  sim::EngineOptions opts;
  opts.faults.storage_outages = {{0, 1.5, 100.0}};
  sim::ExecutionEngine eng(c, w, opts);
  sim::SubBatchPlan p;
  p.tasks = {0, 1};
  p.assignment[0] = 0;
  p.assignment[1] = 1;
  auto stats = eng.execute(p).value();
  EXPECT_EQ(stats.remote_transfers, 1u);  // before the outage
  EXPECT_EQ(stats.replications, 1u);      // degraded sourcing during it
  EXPECT_LT(eng.makespan(), 50.0);
}

// --- Alive-mask plumbing. ---

TEST(FaultInjection, SchedulersAvoidDeadNodes) {
  const wl::Workload w = shared_workload(41);
  const sim::ClusterConfig c = fault_cluster(3, 2);
  sim::EngineOptions opts;
  opts.faults.compute_crashes = {{2, 0.01}};
  sim::ExecutionEngine eng(c, w, opts);

  // Kill node 2 by running one task there.
  sim::SubBatchPlan p;
  p.tasks = {0};
  p.assignment[0] = 2;
  ASSERT_TRUE(eng.execute(p).ok());
  ASSERT_FALSE(eng.node_alive(2));
  eng.take_orphaned();

  sched::SchedulerContext ctx{w, c, eng};
  EXPECT_EQ(ctx.alive_nodes(), (std::vector<wl::NodeId>{0, 1}));
  sched::MinMinScheduler mm;
  std::vector<wl::TaskId> pending;
  for (wl::TaskId t = 0; t < w.num_tasks(); ++t) pending.push_back(t);
  auto plan = mm.plan_sub_batch(pending, ctx);
  for (const auto& [task, node] : plan.assignment) EXPECT_NE(node, 2u);
}

TEST(FaultInjection, LruEvictionSurvivesCrashes) {
  // JobDataPresent pairs with LRU eviction; run it on a tight disk while a
  // node crashes mid-batch. The crash drops the dead node's replicas, so
  // the survivors must re-stage (and keep evicting) their way to a full
  // drain — the counters have to show both effects.
  const wl::Workload w = shared_workload(51);
  sim::ClusterConfig c = fault_cluster(3, 2);
  c.disk_capacity = 0.3 * w.unique_request_bytes();

  sched::JobDataPresentScheduler jdp;
  ASSERT_EQ(jdp.eviction_policy(), sim::EvictionPolicy::kLru);

  const auto clean = sched::run_batch(jdp, w, c);
  ASSERT_TRUE(clean.ok()) << clean.error;
  EXPECT_EQ(clean.stats.tasks_executed, w.num_tasks());
  EXPECT_GT(clean.stats.evictions, 0u);

  sim::FaultConfig faults;
  faults.compute_crashes = {{2, 0.3}};
  sched::JobDataPresentScheduler jdp2;
  const auto faulty = sched::run_batch(jdp2, w, c, faults);
  ASSERT_TRUE(faulty.ok()) << faulty.error;
  // Orphaned tasks are re-planned on the two survivors, which re-stage the
  // inputs the dead node held; LRU keeps cycling the tight disks.
  EXPECT_EQ(faulty.stats.tasks_executed, w.num_tasks());
  EXPECT_GT(faulty.stats.evictions, 0u);
  EXPECT_GE(faulty.stats.remote_transfers + faulty.stats.replications,
            clean.stats.remote_transfers)
      << "crash recovery cannot shrink total staging work";
}

}  // namespace
}  // namespace bsio
