// Speculative task replication tests (DESIGN.md §10): degraded-node
// progress model, straggler trigger, first-finish-wins cancellation with
// Timeline/disk rollback, wasted-work accounting, budget enforcement, and
// the determinism contract (speculation off == bit-identical to the
// retry-only engine; fixed seed == bit-identical replay).

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>

#include "core/batch_scheduler.h"
#include "sched/driver.h"
#include "sched/minmin.h"
#include "service/service.h"
#include "sim/engine.h"
#include "sim/faults.h"
#include "util/stats.h"
#include "workload/synthetic.h"

namespace bsio {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

sim::ClusterConfig spec_cluster(std::size_t compute = 2,
                                std::size_t storage = 2) {
  sim::ClusterConfig c;
  c.num_compute_nodes = compute;
  c.num_storage_nodes = storage;
  c.storage_disk_bw = 100.0 * sim::kMB;  // remote: 1 s per 100 MB file
  c.storage_net_bw = 1000.0 * sim::kMB;
  c.compute_net_bw = 400.0 * sim::kMB;   // replica: 0.25 s per file
  c.local_disk_bw = 1000.0 * sim::kMB;   // read: 0.1 s per file
  return c;
}

// One task per file, every file 100 MB on storage node 0.
wl::Workload disjoint_workload(std::size_t tasks, double compute_seconds) {
  std::vector<wl::FileInfo> files(tasks);
  for (auto& f : files) {
    f.size_bytes = 100.0 * sim::kMB;
    f.home_storage_node = 0;
  }
  std::vector<wl::TaskInfo> ts(tasks);
  for (std::size_t k = 0; k < tasks; ++k) {
    ts[k].files = {static_cast<wl::FileId>(k)};
    ts[k].compute_seconds = compute_seconds;
  }
  return wl::Workload(std::move(ts), std::move(files));
}

wl::Workload shared_workload(std::uint64_t seed = 23) {
  wl::SyntheticConfig cfg;
  cfg.num_tasks = 20;
  cfg.files_per_task = 3;
  cfg.overlap = 0.5;
  cfg.file_size_bytes = 64.0 * sim::kMB;
  cfg.num_storage_nodes = 2;
  cfg.seed = seed;
  return wl::make_synthetic(cfg);
}

// Seed one 100 MB file replica, available from t = 0.
sim::InitialCacheState seed_one(wl::NodeId node, wl::FileId file) {
  sim::InitialCacheState s;
  s.entries.push_back({node, file, 0.0, 0.0});
  return s;
}

// --- Configuration validation. ---

TEST(Speculation, ConfigValidation) {
  sim::SpeculationConfig s;
  EXPECT_TRUE(s.validate().ok());
  s.straggler_ratio = 0.5;
  EXPECT_FALSE(s.validate().ok());
  s.straggler_ratio = kInf;
  EXPECT_FALSE(s.validate().ok());
  s.straggler_ratio = 2.0;
  s.min_ect_gain_seconds = -1.0;
  EXPECT_FALSE(s.validate().ok());
}

TEST(Speculation, SlowdownValidation) {
  const sim::ClusterConfig c = spec_cluster();
  sim::FaultConfig f;
  f.compute_slowdowns = {{0, 0.0, 10.0, 2.0}};
  EXPECT_TRUE(f.validate(c).ok());
  f.compute_slowdowns = {{9, 0.0, 10.0, 2.0}};  // node out of range
  EXPECT_FALSE(f.validate(c).ok());
  f.compute_slowdowns = {{0, 5.0, 2.0, 2.0}};  // end before start
  EXPECT_FALSE(f.validate(c).ok());
  f.compute_slowdowns = {{0, 0.0, 10.0, 0.5}};  // factor < 1
  EXPECT_FALSE(f.validate(c).ok());
  // Overlapping windows of one node are rejected, disjoint ones pass.
  f.compute_slowdowns = {{0, 0.0, 5.0, 2.0}, {0, 4.0, 8.0, 3.0}};
  EXPECT_FALSE(f.validate(c).ok());
  f.compute_slowdowns = {{0, 0.0, 5.0, 2.0}, {0, 5.0, 8.0, 3.0}};
  EXPECT_TRUE(f.validate(c).ok());
}

TEST(Speculation, InvalidConfigSurfacesThroughDriver) {
  const wl::Workload w = disjoint_workload(1, 1.0);
  sched::MinMinScheduler sched;
  sched::BatchRunOptions options;
  options.speculation.enabled = true;
  options.speculation.straggler_ratio = 0.0;
  const auto r = run_batch(sched, w, spec_cluster(), options);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.tasks_stranded, w.num_tasks());
}

// --- Degraded-node progress model. ---

TEST(Speculation, StretchedExecDurationPiecewise) {
  sim::FaultConfig cfg;
  cfg.compute_slowdowns = {{0, 1.0, 3.0, 2.0}};
  sim::FaultModel m(cfg, 2, 2);
  ASSERT_TRUE(m.has_slowdowns());

  // Entirely before the window: full speed.
  EXPECT_DOUBLE_EQ(m.stretched_exec_duration(0, 0.0, 0.5), 0.5);
  // 1 s of work before the window, the rest inside at half speed.
  EXPECT_DOUBLE_EQ(m.stretched_exec_duration(0, 0.0, 2.0), 3.0);
  // Starting inside the window: 0.5 s of work burns the window's remaining
  // second, the other 0.5 s runs at full speed after it.
  EXPECT_DOUBLE_EQ(m.stretched_exec_duration(0, 2.0, 1.0), 1.5);
  // Past the window: untouched.
  EXPECT_DOUBLE_EQ(m.stretched_exec_duration(0, 3.0, 2.0), 2.0);
  // Other nodes: untouched.
  EXPECT_DOUBLE_EQ(m.stretched_exec_duration(1, 0.0, 2.0), 2.0);

  sim::FaultConfig forever;
  forever.compute_slowdowns = {{0, 0.0, kInf, 3.0}};
  sim::FaultModel mf(forever, 1, 1);
  EXPECT_DOUBLE_EQ(mf.stretched_exec_duration(0, 5.0, 2.0), 6.0);
}

TEST(Speculation, SlowdownStretchesEngineExecution) {
  // Remote transfer [0, 1), then a 2.1 s read+compute block stretched x10.
  wl::Workload w = disjoint_workload(1, 2.0);
  sim::EngineOptions opts;
  opts.faults.compute_slowdowns = {{0, 0.0, kInf, 10.0}};
  sim::ExecutionEngine eng(spec_cluster(), w, opts);
  sim::SubBatchPlan p;
  p.tasks = {0};
  p.assignment[0] = 0;
  ASSERT_TRUE(eng.execute(p).ok());
  EXPECT_NEAR(eng.makespan(), 1.0 + 10.0 * (0.1 + 2.0), 1e-9);
}

// --- First-finish-wins duplicate execution. ---

TEST(Speculation, DuplicateWinsAndLoserIsCancelled) {
  // Node 0 is degraded x10 but the planners are blind: the task lands
  // there. Node 1 already caches the input, so the straggler trigger
  // duplicates the task and the healthy copy wins; the loser's in-progress
  // execution is cut at the winning instant.
  wl::Workload w = disjoint_workload(1, 2.0);
  sim::EngineOptions opts;
  opts.faults.compute_slowdowns = {{0, 0.0, kInf, 10.0}};
  opts.speculation.enabled = true;
  opts.speculation.straggler_ratio = 1.5;
  sim::ExecutionEngine eng(spec_cluster(), w, opts);
  const auto seed = seed_one(1, 0);
  ASSERT_TRUE(eng.seed_cache(seed).ok());

  sim::SubBatchPlan p;
  p.tasks = {0};
  p.assignment[0] = 0;
  const auto stats = eng.execute(p).value();

  // The primary staged via a 0.25 s replica copy from node 1, whose port
  // pushes the backup's exec to [0.25, 2.35); the primary's stretched exec
  // would have ended at 21.25.
  EXPECT_EQ(stats.tasks_executed, 1u);
  EXPECT_EQ(stats.speculative_launches, 1u);
  EXPECT_EQ(stats.speculative_wins, 1u);
  EXPECT_EQ(stats.speculative_cancels, 1u);
  EXPECT_NEAR(eng.makespan(), 2.35, 1e-9);
  // The loser's compute timeline kept only the elapsed occupancy...
  EXPECT_NEAR(eng.compute_timeline(0).horizon(), 2.35, 1e-9);
  // ...and that burnt time is the wasted work (0.25 staging + truncated
  // exec).
  EXPECT_NEAR(stats.wasted_seconds, 2.35, 1e-9);
  // The copy that completed before the cut stays: node 0 legitimately
  // holds a replica now, and the replication stays counted.
  EXPECT_TRUE(eng.state().has(0, 0));
  EXPECT_EQ(stats.replications, 1u);
  EXPECT_EQ(eng.take_orphaned().size(), 0u);
}

TEST(Speculation, InFlightTransferIsTruncatedAndRolledBack) {
  // Replication off: the primary must stage remotely ([0, 1)), while the
  // cached backup finishes at 0.3 — the staging is still in flight at the
  // cut, so the transfer is truncated on every timeline, the never-usable
  // copy is dropped, and its counters are backed out.
  wl::Workload w = disjoint_workload(1, 0.2);
  sim::ClusterConfig c = spec_cluster();
  c.allow_replication = false;
  sim::EngineOptions opts;
  opts.trace = true;
  opts.speculation.enabled = true;
  opts.speculation.straggler_ratio = 1.5;
  sim::ExecutionEngine eng(c, w, opts);
  const auto seed = seed_one(1, 0);
  ASSERT_TRUE(eng.seed_cache(seed).ok());

  sim::SubBatchPlan p;
  p.tasks = {0};
  p.assignment[0] = 0;
  const auto stats = eng.execute(p).value();

  EXPECT_EQ(stats.tasks_executed, 1u);
  EXPECT_EQ(stats.speculative_wins, 1u);
  EXPECT_NEAR(eng.makespan(), 0.3, 1e-9);
  // The remote transfer never delivered: counters rolled back, pro-rated
  // in-flight bytes charged as waste, the partial copy dropped.
  EXPECT_EQ(stats.remote_transfers, 0u);
  EXPECT_DOUBLE_EQ(stats.remote_bytes, 0.0);
  EXPECT_NEAR(stats.wasted_bytes, 0.3 * 100.0 * sim::kMB, 1.0);
  EXPECT_FALSE(eng.state().has(0, 0));
  // Both endpoint timelines were truncated at the cancellation instant.
  EXPECT_NEAR(eng.storage_timeline(0).horizon(), 0.3, 1e-9);
  EXPECT_NEAR(eng.compute_timeline(0).horizon(), 0.3, 1e-9);
  EXPECT_EQ(eng.storage_timeline(0).num_reservations(), 1u);
  eng.storage_timeline(0).validate();
  eng.compute_timeline(0).validate();

  // Trace carries the launch and the cancellation; the loser's never-run
  // exec block was erased.
  std::size_t launches = 0, cancels = 0, execs = 0;
  for (const auto& e : eng.trace()) {
    launches += e.kind == sim::TraceEvent::Kind::kSpeculativeLaunch;
    cancels += e.kind == sim::TraceEvent::Kind::kSpeculativeCancel;
    execs += e.kind == sim::TraceEvent::Kind::kExec;
  }
  EXPECT_EQ(launches, 1u);
  EXPECT_EQ(cancels, 1u);
  EXPECT_EQ(execs, 1u);  // only the winner's block
  const std::string csv = trace_to_csv(eng.trace());
  EXPECT_NE(csv.find("spec_launch"), std::string::npos);
  EXPECT_NE(csv.find("spec_cancel"), std::string::npos);
}

TEST(Speculation, PrimaryCrashBackupCompletes) {
  // The primary node fail-stops mid-execution; the duplicate on the cached
  // backup still finishes, so the task is NOT orphaned and nothing is
  // cancelled (the crash losses are real).
  wl::Workload w = disjoint_workload(1, 2.0);
  sim::EngineOptions opts;
  opts.faults.compute_crashes = {{0, 1.5}};
  opts.speculation.enabled = true;
  opts.speculation.straggler_ratio = 1.2;
  sim::ClusterConfig c = spec_cluster();
  c.allow_replication = false;  // primary stages remotely: est 3.1 vs 2.1
  sim::ExecutionEngine eng(c, w, opts);
  const auto seed = seed_one(1, 0);
  ASSERT_TRUE(eng.seed_cache(seed).ok());

  sim::SubBatchPlan p;
  p.tasks = {0};
  p.assignment[0] = 0;
  const auto stats = eng.execute(p).value();

  EXPECT_EQ(stats.tasks_executed, 1u);
  EXPECT_EQ(stats.speculative_launches, 1u);
  EXPECT_EQ(stats.speculative_wins, 1u);
  EXPECT_EQ(stats.speculative_cancels, 0u);  // a crashed loser is charged
  EXPECT_EQ(stats.node_crashes, 1u);
  EXPECT_EQ(stats.task_reexecutions, 0u);
  EXPECT_TRUE(eng.take_orphaned().empty());
  EXPECT_FALSE(eng.node_alive(0));
  EXPECT_NEAR(eng.makespan(), 2.1, 1e-9);
}

TEST(Speculation, BothAttemptsCrashOrphansTaskOnce) {
  wl::Workload w = disjoint_workload(1, 2.0);
  sim::EngineOptions opts;
  opts.faults.compute_crashes = {{0, 0.5}, {1, 0.5}};
  opts.speculation.enabled = true;
  opts.speculation.straggler_ratio = 1.2;
  sim::ClusterConfig c = spec_cluster();
  c.allow_replication = false;
  sim::ExecutionEngine eng(c, w, opts);
  const auto seed = seed_one(1, 0);
  ASSERT_TRUE(eng.seed_cache(seed).ok());

  sim::SubBatchPlan p;
  p.tasks = {0};
  p.assignment[0] = 0;
  const auto stats = eng.execute(p).value();

  EXPECT_EQ(stats.tasks_executed, 0u);
  EXPECT_EQ(stats.speculative_launches, 1u);
  EXPECT_EQ(stats.speculative_wins, 0u);
  EXPECT_EQ(stats.node_crashes, 2u);
  EXPECT_EQ(stats.task_reexecutions, 1u);  // one task, killed once
  const auto orphaned = eng.take_orphaned();
  ASSERT_EQ(orphaned.size(), 1u);
  EXPECT_EQ(orphaned[0], 0u);
  EXPECT_EQ(eng.alive_count(), 0u);
}

TEST(Speculation, BudgetBoundsDuplicateLaunches) {
  // Two straggling tasks but a budget of one duplicate: only the first
  // trigger fires.
  wl::Workload w = disjoint_workload(2, 2.0);
  sim::EngineOptions opts;
  opts.faults.compute_slowdowns = {{0, 0.0, kInf, 10.0}};
  opts.speculation.enabled = true;
  opts.speculation.straggler_ratio = 1.5;
  opts.speculation.min_cached_inputs = 0;
  opts.speculation.max_speculative_tasks = 1;
  sim::ExecutionEngine eng(spec_cluster(), w, opts);

  sim::SubBatchPlan p;
  p.tasks = {0, 1};
  p.assignment[0] = 0;
  p.assignment[1] = 0;
  const auto stats = eng.execute(p).value();
  EXPECT_EQ(stats.tasks_executed, 2u);
  EXPECT_EQ(stats.speculative_launches, 1u);
}

// --- Determinism contract. ---

TEST(Speculation, DisabledIsBitIdenticalToRetryOnlyDriver) {
  const wl::Workload w = shared_workload(61);
  const sim::ClusterConfig c = spec_cluster(3, 2);
  sched::MinMinScheduler a, b;
  const auto base = run_batch(a, w, c);
  sched::BatchRunOptions options;
  options.speculation = sim::SpeculationConfig{};  // explicit off
  const auto replay = run_batch(b, w, c, options);
  ASSERT_TRUE(base.ok());
  ASSERT_TRUE(replay.ok());
  EXPECT_EQ(base.batch_time, replay.batch_time);  // bit-identical
  EXPECT_EQ(base.stats.remote_transfers, replay.stats.remote_transfers);
  EXPECT_EQ(base.stats.replications, replay.stats.replications);
  EXPECT_EQ(replay.stats.speculative_launches, 0u);
  EXPECT_EQ(replay.stats.wasted_seconds, 0.0);
}

TEST(Speculation, FixedSeedReplayIsBitIdentical) {
  const wl::Workload w = shared_workload(67);
  const sim::ClusterConfig c = spec_cluster(3, 2);
  sched::BatchRunOptions options;
  options.faults.transfer_failure_prob = 0.2;
  options.faults.seed = 99;
  options.faults.compute_slowdowns = {{0, 0.0, kInf, 6.0}};
  options.speculation.enabled = true;
  options.speculation.straggler_ratio = 1.3;
  options.speculation.min_cached_inputs = 0;

  sched::MinMinScheduler a, b;
  const auto r1 = run_batch(a, w, c, options);
  const auto r2 = run_batch(b, w, c, options);
  ASSERT_TRUE(r1.ok()) << r1.error;
  ASSERT_TRUE(r2.ok()) << r2.error;
  EXPECT_EQ(r1.batch_time, r2.batch_time);  // bit-identical
  EXPECT_EQ(r1.stats.speculative_launches, r2.stats.speculative_launches);
  EXPECT_EQ(r1.stats.speculative_wins, r2.stats.speculative_wins);
  EXPECT_EQ(r1.stats.wasted_seconds, r2.stats.wasted_seconds);
  ASSERT_EQ(r1.task_completion_times.size(), r2.task_completion_times.size());
  for (std::size_t i = 0; i < r1.task_completion_times.size(); ++i)
    EXPECT_EQ(r1.task_completion_times[i], r2.task_completion_times[i]);
}

// --- Tail latency: replication beats retry on a degraded node. ---

TEST(Speculation, ImprovesTailLatencyUnderDegradedNode) {
  const wl::Workload w = disjoint_workload(8, 2.0);
  const sim::ClusterConfig c = spec_cluster(4, 2);
  sched::BatchRunOptions options;
  options.faults.compute_slowdowns = {{0, 0.0, kInf, 8.0}};

  sched::MinMinScheduler retry_sched;
  const auto retry = run_batch(retry_sched, w, c, options);
  ASSERT_TRUE(retry.ok()) << retry.error;

  options.speculation.enabled = true;
  options.speculation.straggler_ratio = 1.5;
  options.speculation.min_cached_inputs = 0;
  sched::MinMinScheduler spec_sched;
  const auto spec = run_batch(spec_sched, w, c, options);
  ASSERT_TRUE(spec.ok()) << spec.error;

  ASSERT_EQ(retry.task_completion_times.size(), w.num_tasks());
  ASSERT_EQ(spec.task_completion_times.size(), w.num_tasks());
  const double p99_retry = percentile(retry.task_completion_times, 99.0);
  const double p99_spec = percentile(spec.task_completion_times, 99.0);
  EXPECT_GT(spec.stats.speculative_launches, 0u);
  EXPECT_GT(spec.stats.wasted_seconds, 0.0);
  EXPECT_LT(p99_spec, p99_retry) << "duplicating stragglers must cut p99";
  EXPECT_EQ(spec.stats.tasks_executed, w.num_tasks());
}

// --- Online service budget. ---

TEST(Speculation, ServiceBudgetFractionBoundsSpeculation) {
  const wl::Workload w = disjoint_workload(4, 1.0);
  const sim::ClusterConfig c = spec_cluster(2, 2);
  service::ServiceOptions options;
  options.faults.compute_slowdowns = {{0, 0.0, kInf, 10.0}};
  options.speculation.enabled = true;
  options.speculation.straggler_ratio = 1.5;
  options.speculation.min_cached_inputs = 0;

  auto arrivals = [&] {
    std::vector<service::BatchArrival> a(2);
    a[0] = {0.0, 0, {}, w};
    a[1] = {0.0, 1, {}, w};
    return a;
  };

  options.speculation_budget_fraction = 1.0;
  sched::MinMinScheduler s1;
  service::ServiceLoop generous(s1, c, w.num_files(), options);
  const auto with_budget = generous.run(arrivals());
  ASSERT_TRUE(with_budget.ok()) << with_budget.error().message;
  EXPECT_GT(with_budget.value().stats.speculative_launches, 0u);

  options.speculation_budget_fraction = 0.0;
  sched::MinMinScheduler s2;
  service::ServiceLoop starved(s2, c, w.num_files(), options);
  const auto no_budget = starved.run(arrivals());
  ASSERT_TRUE(no_budget.ok()) << no_budget.error().message;
  EXPECT_EQ(no_budget.value().stats.speculative_launches, 0u);
  // Starving the duplicate budget cannot lose work.
  EXPECT_EQ(no_budget.value().stats.batches_served, 2u);
}

}  // namespace
}  // namespace bsio
