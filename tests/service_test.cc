// Online service layer tests.
//
// Part 1 is the warm-start golden differential: for every scheduler, a
// fresh engine seeded with the cache snapshot a previous batch left behind
// must plan the next batch BIT-identically to the engine that actually ran
// that previous batch (planners read residency only through ClusterState,
// so a faithful snapshot is indistinguishable from history). Part 2 covers
// the seeding plumbing end to end (run_batch's warm path vs a hand-driven
// loop), the snapshot/rebase machinery, arrivals, admission, the service
// loop's warm-vs-cold contract, and the scheduler stats-reuse guard.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <fstream>
#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "sched/bipartition.h"
#include "sched/driver.h"
#include "sched/ip_scheduler.h"
#include "sched/job_data_present.h"
#include "sched/minmin.h"
#include "service/admission.h"
#include "service/arrival.h"
#include "service/catalog.h"
#include "service/service.h"
#include "sim/cluster.h"
#include "sim/engine.h"
#include "util/ws_runtime.h"

namespace bsio {
namespace {

std::uint64_t plan_hash(const sim::SubBatchPlan& p) {
  std::uint64_t h = 1469598103934665603ull;
  auto mix = [&](std::uint64_t v) {
    h ^= v;
    h *= 1099511628211ull;
  };
  for (wl::TaskId t : p.tasks) {
    mix(t);
    mix(p.assignment.at(t));
  }
  for (const auto& [k, v] : p.staging) {
    mix(k.first);
    mix(k.second);
    mix(static_cast<std::uint64_t>(v.kind));
    mix(v.src_node);
  }
  for (const auto& [f, n] : p.prefetches) {
    mix(f);
    mix(n);
  }
  return h;
}

// One shared catalogue for every batch in a test (the service invariant:
// stable file ids across batches).
std::vector<wl::FileInfo> test_catalog() {
  service::SharedCatalogConfig cfg;
  cfg.num_files = 48;
  cfg.mean_file_size_bytes = 25.0 * sim::kMB;
  cfg.file_size_jitter = 0.2;
  cfg.num_storage_nodes = 2;
  cfg.seed = 5;
  return service::make_shared_catalog(cfg);
}

service::ServiceBatchConfig test_batch_cfg(std::size_t tasks = 10) {
  service::ServiceBatchConfig cfg;
  cfg.tasks_per_batch = tasks;
  cfg.files_per_task = 3;
  cfg.zipf_s = 1.0;
  return cfg;
}

sim::ClusterConfig test_cluster(double disk_capacity = sim::kUnlimited) {
  sim::ClusterConfig c;
  c.num_compute_nodes = 4;
  c.num_storage_nodes = 2;
  c.storage_disk_bw = 50.0 * sim::kMB;
  c.storage_net_bw = 500.0 * sim::kMB;
  c.compute_net_bw = 400.0 * sim::kMB;
  c.local_disk_bw = 200.0 * sim::kMB;
  c.disk_capacity = disk_capacity;
  return c;
}

struct SchedulerFactory {
  const char* name;
  std::unique_ptr<sched::Scheduler> (*make)();
};

const SchedulerFactory kSchedulers[] = {
    {"MinMin", [] { return std::unique_ptr<sched::Scheduler>(
                        std::make_unique<sched::MinMinScheduler>()); }},
    {"JobDataPresent",
     [] { return std::unique_ptr<sched::Scheduler>(
              std::make_unique<sched::JobDataPresentScheduler>()); }},
    {"BiPartition",
     [] { return std::unique_ptr<sched::Scheduler>(
              std::make_unique<sched::BiPartitionScheduler>()); }},
    {"IP", [] { return std::unique_ptr<sched::Scheduler>(
                    std::make_unique<sched::IpScheduler>()); }},
};

// Drives `pending` to completion on `eng` with `s` (the run_batch core
// without its bookkeeping), so tests can interleave captures.
void drain(sched::Scheduler& s, sim::ExecutionEngine& eng,
           const wl::Workload& w, const sim::ClusterConfig& c,
           std::vector<wl::TaskId> pending) {
  sched::SchedulerContext ctx(w, c, eng);
  while (!pending.empty()) {
    ctx.refresh_alive();
    sim::SubBatchPlan plan = s.plan_sub_batch(pending, ctx);
    auto r = eng.execute(plan);
    ASSERT_TRUE(r.ok()) << r.error().message;
    std::unordered_set<wl::TaskId> done(plan.tasks.begin(), plan.tasks.end());
    std::erase_if(pending, [&](wl::TaskId t) { return done.count(t) > 0; });
  }
}

// ------------------------------------------- warm-start golden differential

// Builds the two views of one history: W_merged holds batch B's tasks at
// ids [0, nB) and batch A's tasks appended after (the Workload constructor
// renumbers positionally), W_b holds batch B alone at the same ids. Running
// A to completion on a W_merged engine and snapshotting its caches gives a
// seed; a fresh W_b engine restored from that seed must plan B identically.
struct DifferentialFixture {
  std::vector<wl::FileInfo> catalog = test_catalog();
  wl::Workload merged;
  wl::Workload batch_only;
  std::vector<wl::TaskId> pending_a;  // A's ids within `merged`
  std::vector<wl::TaskId> pending_b;  // B's ids in both workloads

  DifferentialFixture() {
    const wl::Workload a =
        service::make_service_batch(catalog, test_batch_cfg(8), 21);
    const wl::Workload b =
        service::make_service_batch(catalog, test_batch_cfg(10), 22);
    std::vector<wl::TaskInfo> tasks(b.tasks());
    tasks.insert(tasks.end(), a.tasks().begin(), a.tasks().end());
    merged = wl::Workload(std::move(tasks), catalog);
    batch_only = wl::Workload(b.tasks(), catalog);
    for (std::size_t t = 0; t < b.num_tasks(); ++t)
      pending_b.push_back(static_cast<wl::TaskId>(t));
    for (std::size_t t = b.num_tasks(); t < merged.num_tasks(); ++t)
      pending_a.push_back(static_cast<wl::TaskId>(t));
  }
};

void expect_first_plan_identity(const sim::ClusterConfig& c) {
  WsRuntime::set_global_threads(1);
  DifferentialFixture fx;
  for (const auto& spec : kSchedulers) {
    SCOPED_TRACE(spec.name);
    // History: run batch A on the merged engine, snapshot its caches.
    auto sched_a = spec.make();
    sim::ExecutionEngine merged_eng(
        c, fx.merged, {sched_a->eviction_policy(), false, {}, {}});
    drain(*sched_a, merged_eng, fx.merged, c, fx.pending_a);
    const sim::InitialCacheState seed =
        sim::InitialCacheState::capture(merged_eng.state());
    ASSERT_FALSE(seed.empty());

    // Continuation: plan B on the engine that lived through A.
    auto sched_m = spec.make();
    sched::SchedulerContext ctx_m(fx.merged, c, merged_eng, &seed);
    const std::uint64_t continued =
        plan_hash(sched_m->plan_sub_batch(fx.pending_b, ctx_m));

    // Warm start: plan B on a fresh engine restored from the snapshot.
    auto sched_w = spec.make();
    sim::ExecutionEngine warm_eng(c, fx.batch_only,
                                  {sched_w->eviction_policy(), false, {}, {}});
    ASSERT_TRUE(warm_eng.seed_cache(seed).ok());
    sched::SchedulerContext ctx_w(fx.batch_only, c, warm_eng, &seed);
    const std::uint64_t warm =
        plan_hash(sched_w->plan_sub_batch(fx.pending_b, ctx_w));

    EXPECT_EQ(continued, warm);
  }
}

TEST(WarmStartDifferential, FirstPlanBitIdenticalUnlimitedDisk) {
  expect_first_plan_identity(test_cluster());
}

TEST(WarmStartDifferential, FirstPlanBitIdenticalLimitedDisk) {
  expect_first_plan_identity(test_cluster(600.0 * sim::kMB));
}

// run_batch's warm path must be exactly "seed, then the ordinary loop": a
// hand-driven seeded loop reproduces its makespan and counters bit for bit.
TEST(WarmStartDifferential, RunBatchSeedMatchesManualLoop) {
  WsRuntime::set_global_threads(1);
  const sim::ClusterConfig c = test_cluster(600.0 * sim::kMB);
  const std::vector<wl::FileInfo> catalog = test_catalog();
  const wl::Workload a =
      service::make_service_batch(catalog, test_batch_cfg(8), 31);
  const wl::Workload b =
      service::make_service_batch(catalog, test_batch_cfg(10), 32);

  for (const auto& spec : kSchedulers) {
    SCOPED_TRACE(spec.name);
    auto sched_a = spec.make();
    sched::BatchRunOptions cap;
    cap.capture_final_cache = true;
    const sched::BatchRunResult ra = sched::run_batch(*sched_a, a, c, cap);
    ASSERT_TRUE(ra.ok()) << ra.error;
    ASSERT_FALSE(ra.final_cache.empty());

    sched::BatchRunOptions warm;
    warm.initial_cache = &ra.final_cache;
    auto sched_b = spec.make();
    const sched::BatchRunResult rb = sched::run_batch(*sched_b, b, c, warm);
    ASSERT_TRUE(rb.ok()) << rb.error;

    auto sched_manual = spec.make();
    sim::ExecutionEngine eng(
        c, b, {sched_manual->eviction_policy(), false, {}, {}});
    ASSERT_TRUE(eng.seed_cache(ra.final_cache).ok());
    std::vector<wl::TaskId> pending;
    for (const auto& t : b.tasks()) pending.push_back(t.id);
    drain(*sched_manual, eng, b, c, pending);

    EXPECT_EQ(rb.batch_time, eng.makespan());
    EXPECT_EQ(rb.stats.remote_transfers, eng.totals().remote_transfers);
    EXPECT_EQ(rb.stats.cache_hits, eng.totals().cache_hits);
    EXPECT_EQ(rb.stats.warm_hit_bytes, eng.totals().warm_hit_bytes);
    EXPECT_GT(rb.stats.warm_hit_bytes, 0.0);  // shared hot files pay off
  }
}

// ---------------------------------------------------- snapshot machinery

TEST(InitialCacheState, CaptureSeedRoundTrips) {
  const std::vector<wl::FileInfo> catalog = test_catalog();
  const wl::Workload w =
      service::make_service_batch(catalog, test_batch_cfg(8), 41);
  const sim::ClusterConfig c = test_cluster();
  sched::MinMinScheduler mm;
  sched::BatchRunOptions cap;
  cap.capture_final_cache = true;
  const auto r = sched::run_batch(mm, w, c, cap);
  ASSERT_TRUE(r.ok());
  const sim::InitialCacheState& seed = r.final_cache;
  ASSERT_FALSE(seed.empty());
  for (std::size_t i = 1; i < seed.entries.size(); ++i) {
    const auto& p = seed.entries[i - 1];
    const auto& q = seed.entries[i];
    EXPECT_TRUE(p.node < q.node || (p.node == q.node && p.file < q.file));
  }

  sim::ExecutionEngine eng(c, w);
  ASSERT_TRUE(eng.seed_cache(seed).ok());
  const sim::InitialCacheState again =
      sim::InitialCacheState::capture(eng.state());
  ASSERT_EQ(again.entries.size(), seed.entries.size());
  for (std::size_t i = 0; i < seed.entries.size(); ++i) {
    EXPECT_EQ(again.entries[i].node, seed.entries[i].node);
    EXPECT_EQ(again.entries[i].file, seed.entries[i].file);
    EXPECT_EQ(again.entries[i].avail_time, seed.entries[i].avail_time);
    EXPECT_EQ(again.entries[i].last_use, seed.entries[i].last_use);
  }
}

TEST(InitialCacheState, RebasedShiftsStampsPreservingOrder) {
  sim::InitialCacheState s;
  s.entries = {{0, 1, 12.0, 20.0}, {0, 2, 5.0, 7.0}, {1, 1, 3.0, 15.0}};
  const sim::InitialCacheState r = s.rebased();
  ASSERT_EQ(r.entries.size(), 3u);
  for (const auto& e : r.entries) {
    EXPECT_EQ(e.avail_time, 0.0);
    EXPECT_LE(e.last_use, 0.0);
  }
  // 20 was youngest -> stays largest after the shift.
  EXPECT_GT(r.entries[0].last_use, r.entries[1].last_use);
  EXPECT_GT(r.entries[2].last_use, r.entries[1].last_use);
  EXPECT_EQ(r.entries[0].last_use, 0.0);
}

TEST(SeedCache, RejectsMalformedSeeds) {
  const std::vector<wl::FileInfo> catalog = test_catalog();
  const wl::Workload w =
      service::make_service_batch(catalog, test_batch_cfg(4), 43);
  const sim::ClusterConfig c = test_cluster(100.0 * sim::kMB);

  auto expect_rejected = [&](const sim::InitialCacheState& seed) {
    sim::ExecutionEngine eng(c, w);
    const Status s = eng.seed_cache(seed);
    EXPECT_FALSE(s.ok());
    // Failed validation must seed nothing.
    for (const auto& e : seed.entries) {
      if (e.node < c.num_compute_nodes && e.file < w.num_files()) {
        EXPECT_FALSE(eng.state().has(e.node, e.file));
      }
    }
  };

  sim::InitialCacheState bad_file;
  bad_file.entries = {{0, static_cast<wl::FileId>(w.num_files()), 0.0, 0.0}};
  expect_rejected(bad_file);

  sim::InitialCacheState bad_node;
  bad_node.entries = {{static_cast<wl::NodeId>(c.num_compute_nodes), 0, 0.0,
                       0.0}};
  expect_rejected(bad_node);

  sim::InitialCacheState negative;
  negative.entries = {{0, 0, -1.0, 0.0}};
  expect_rejected(negative);

  sim::InitialCacheState dup;
  dup.entries = {{0, 0, 0.0, 0.0}, {0, 0, 0.0, 0.0}};
  expect_rejected(dup);

  sim::InitialCacheState overflow;  // every file on one 100 MB node
  for (wl::FileId f = 0; f < w.num_files(); ++f)
    overflow.entries.push_back({0, f, 0.0, 0.0});
  expect_rejected(overflow);

  // Seeding after execution has started is a typed error too.
  sched::MinMinScheduler mm;
  sim::ExecutionEngine eng(test_cluster(), w);
  std::vector<wl::TaskId> pending;
  for (const auto& t : w.tasks()) pending.push_back(t.id);
  drain(mm, eng, w, test_cluster(), pending);
  sim::InitialCacheState ok_seed;
  ok_seed.entries = {{0, 0, 0.0, 0.0}};
  EXPECT_FALSE(eng.seed_cache(ok_seed).ok());
}

// --------------------------------------------------------------- arrivals

TEST(Arrivals, PoissonDeterministicAndContentStable) {
  const std::vector<wl::FileInfo> catalog = test_catalog();
  service::ArrivalConfig cfg;
  cfg.rate = 0.01;
  cfg.num_batches = 5;
  cfg.seed = 9;
  service::BatchArrivalProcess p(catalog, test_batch_cfg(6), cfg);
  auto a = p.generate();
  auto b = p.generate();
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a.value().size(), 5u);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(a.value()[i].time, b.value()[i].time);
    EXPECT_EQ(a.value()[i].index, i);
    if (i > 0) {
      EXPECT_GT(a.value()[i].time, a.value()[i - 1].time);
    }
  }

  // The rate moves WHEN batches arrive, never WHAT they contain.
  service::ArrivalConfig fast = cfg;
  fast.rate = 1.0;
  service::BatchArrivalProcess q(catalog, test_batch_cfg(6), fast);
  auto f = q.generate();
  ASSERT_TRUE(f.ok());
  for (std::size_t i = 0; i < 5; ++i) {
    ASSERT_EQ(f.value()[i].batch.num_tasks(), a.value()[i].batch.num_tasks());
    for (std::size_t t = 0; t < a.value()[i].batch.num_tasks(); ++t)
      EXPECT_EQ(f.value()[i].batch.task(t).files,
                a.value()[i].batch.task(t).files);
    EXPECT_LT(f.value()[i].time, a.value()[i].time);
  }
}

TEST(Arrivals, TraceFileParsesOverridesAndComments) {
  const std::string path = testing::TempDir() + "service_trace.txt";
  {
    std::ofstream out(path);
    out << "# batch arrival trace\n"
        << "0.5\n"
        << "\n"
        << "2.0 4   # four tasks\n"
        << "2.0\n";
  }
  const std::vector<wl::FileInfo> catalog = test_catalog();
  service::ArrivalConfig cfg;
  cfg.trace_path = path;
  cfg.seed = 9;
  service::BatchArrivalProcess p(catalog, test_batch_cfg(6), cfg);
  auto a = p.generate();
  ASSERT_TRUE(a.ok()) << a.error().message;
  ASSERT_EQ(a.value().size(), 3u);
  EXPECT_EQ(a.value()[0].time, 0.5);
  EXPECT_EQ(a.value()[1].time, 2.0);
  EXPECT_EQ(a.value()[0].batch.num_tasks(), 6u);  // configured size
  EXPECT_EQ(a.value()[1].batch.num_tasks(), 4u);  // per-line override
  EXPECT_EQ(a.value()[2].batch.num_tasks(), 6u);
}

TEST(Arrivals, TraceErrorsAreTyped) {
  const std::vector<wl::FileInfo> catalog = test_catalog();
  auto generate = [&](const std::string& content) {
    const std::string path = testing::TempDir() + "bad_trace.txt";
    std::ofstream(path) << content;
    service::ArrivalConfig cfg;
    cfg.trace_path = path;
    service::BatchArrivalProcess p(catalog, test_batch_cfg(4), cfg);
    return p.generate();
  };
  EXPECT_FALSE(generate("5.0\n1.0\n").ok());   // non-monotone
  EXPECT_FALSE(generate("banana\n").ok());     // not a number
  EXPECT_FALSE(generate("1.0 -3\n").ok());     // non-positive size
  EXPECT_FALSE(generate("1.0 4 -2\n").ok());   // non-positive deadline
  EXPECT_FALSE(generate("# only comments\n").ok());

  // A zero-task arrival is its own typed error: an empty batch is not a
  // parse accident worth conflating with a negative size.
  const auto zero = generate("1.0 0\n");
  ASSERT_FALSE(zero.ok());
  EXPECT_NE(zero.error().message.find("num_tasks == 0"), std::string::npos);

  service::ArrivalConfig missing;
  missing.trace_path = testing::TempDir() + "does_not_exist_xyz.txt";
  service::BatchArrivalProcess p(catalog, test_batch_cfg(4), missing);
  EXPECT_FALSE(p.generate().ok());

  service::ArrivalConfig bad_rate;  // Poisson path: rate must be positive
  bad_rate.rate = 0.0;
  service::BatchArrivalProcess q(catalog, test_batch_cfg(4), bad_rate);
  EXPECT_FALSE(q.generate().ok());

  // Generator path: a configured batch size of zero is the same typed
  // error, caught before any batch is built.
  service::ArrivalConfig poisson;
  poisson.rate = 1.0;
  poisson.num_batches = 2;
  service::BatchArrivalProcess z(catalog, test_batch_cfg(0), poisson);
  const auto zr = z.generate();
  ASSERT_FALSE(zr.ok());
  EXPECT_NE(zr.error().message.find("num_tasks == 0"), std::string::npos);
}

TEST(Arrivals, SloClassesDrawDeterministicallyAndTraceOverrides) {
  const std::vector<wl::FileInfo> catalog = test_catalog();
  service::ArrivalConfig cfg;
  cfg.rate = 0.1;
  cfg.num_batches = 8;
  cfg.seed = 4;
  cfg.slo_classes = {{30.0, 4.0}, {120.0, 1.0}};
  service::BatchArrivalProcess p(catalog, test_batch_cfg(4), cfg);
  auto a = p.generate();
  auto b = p.generate();
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  bool saw_premium = false, saw_standard = false;
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_EQ(a.value()[i].slo.deadline_seconds,
              b.value()[i].slo.deadline_seconds);
    EXPECT_EQ(a.value()[i].slo.weight, b.value()[i].slo.weight);
    saw_premium |= a.value()[i].slo.deadline_seconds == 30.0;
    saw_standard |= a.value()[i].slo.deadline_seconds == 120.0;
  }
  EXPECT_TRUE(saw_premium);
  EXPECT_TRUE(saw_standard);

  // The arrival source moves WHEN batches arrive, never their class.
  service::ArrivalConfig fast = cfg;
  fast.rate = 10.0;
  service::BatchArrivalProcess q(catalog, test_batch_cfg(4), fast);
  auto f = q.generate();
  ASSERT_TRUE(f.ok());
  for (std::size_t i = 0; i < 8; ++i)
    EXPECT_EQ(f.value()[i].slo.deadline_seconds,
              a.value()[i].slo.deadline_seconds);

  // A trace's third column overrides the drawn class per batch.
  const std::string path = testing::TempDir() + "slo_trace.txt";
  std::ofstream(path) << "0.5 4 12.5\n2.0 4\n";
  service::ArrivalConfig tcfg = cfg;
  tcfg.trace_path = path;
  service::BatchArrivalProcess t(catalog, test_batch_cfg(4), tcfg);
  auto tr = t.generate();
  ASSERT_TRUE(tr.ok()) << tr.error().message;
  EXPECT_EQ(tr.value()[0].slo.deadline_seconds, 12.5);
  EXPECT_EQ(tr.value()[1].slo.deadline_seconds,
            a.value()[1].slo.deadline_seconds);
}

// -------------------------------------------------------------- admission

service::BatchArrival arrival_of(const std::vector<wl::FileInfo>& catalog,
                                 std::size_t tasks, std::size_t index,
                                 double time) {
  service::BatchArrival a;
  a.time = time;
  a.index = index;
  a.batch = service::make_service_batch(catalog, test_batch_cfg(tasks),
                                        100 + index);
  return a;
}

TEST(Admission, FifoPopsInArrivalOrder) {
  const std::vector<wl::FileInfo> catalog = test_catalog();
  service::AdmissionQueue q(test_cluster(), {});
  ASSERT_TRUE(q.offer(arrival_of(catalog, 12, 0, 0.0)).ok());
  ASSERT_TRUE(q.offer(arrival_of(catalog, 2, 1, 1.0)).ok());
  ASSERT_TRUE(q.offer(arrival_of(catalog, 6, 2, 2.0)).ok());
  EXPECT_EQ(q.pop().arrival.index, 0u);
  EXPECT_EQ(q.pop().arrival.index, 1u);
  EXPECT_EQ(q.pop().arrival.index, 2u);
  EXPECT_TRUE(q.empty());
}

TEST(Admission, ShortestBatchFirstOrdersByEstimate) {
  const std::vector<wl::FileInfo> catalog = test_catalog();
  service::AdmissionOptions opt;
  opt.policy = service::AdmissionPolicy::kShortestBatchFirst;
  service::AdmissionQueue q(test_cluster(), opt);
  ASSERT_TRUE(q.offer(arrival_of(catalog, 12, 0, 0.0)).ok());
  ASSERT_TRUE(q.offer(arrival_of(catalog, 2, 1, 1.0)).ok());
  ASSERT_TRUE(q.offer(arrival_of(catalog, 6, 2, 2.0)).ok());
  EXPECT_EQ(q.pop().arrival.index, 1u);  // 2 tasks
  EXPECT_EQ(q.pop().arrival.index, 2u);  // 6 tasks
  EXPECT_EQ(q.pop().arrival.index, 0u);  // 12 tasks
}

TEST(Admission, EstimateIsMonotoneInBatchSize) {
  const std::vector<wl::FileInfo> catalog = test_catalog();
  const sim::ClusterConfig c = test_cluster();
  const double small = service::estimate_batch_seconds(
      service::make_service_batch(catalog, test_batch_cfg(2), 7), c);
  const double big = service::estimate_batch_seconds(
      service::make_service_batch(catalog, test_batch_cfg(16), 7), c);
  EXPECT_GT(small, 0.0);
  EXPECT_GT(big, small);
}

TEST(Admission, BoundedQueueRejectsWithTypedError) {
  const std::vector<wl::FileInfo> catalog = test_catalog();
  service::AdmissionOptions opt;
  opt.max_queue_depth = 2;
  service::AdmissionQueue q(test_cluster(), opt);
  ASSERT_TRUE(q.offer(arrival_of(catalog, 4, 0, 0.0)).ok());
  ASSERT_TRUE(q.offer(arrival_of(catalog, 4, 1, 0.0)).ok());
  const Status s = q.offer(arrival_of(catalog, 4, 2, 0.0));
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.error().message.find("full"), std::string::npos);
  EXPECT_EQ(q.size(), 2u);
}

service::BatchArrival arrival_with_slo(
    const std::vector<wl::FileInfo>& catalog, std::size_t index, double time,
    double deadline, double weight) {
  service::BatchArrival a = arrival_of(catalog, 4, index, time);
  a.slo.deadline_seconds = deadline;
  a.slo.weight = weight;
  return a;
}

TEST(Admission, DeadlineAwarePopsEarliestEffectiveDeadline) {
  const std::vector<wl::FileInfo> catalog = test_catalog();
  service::AdmissionOptions opt;
  opt.policy = service::AdmissionPolicy::kDeadlineAware;
  service::AdmissionQueue q(test_cluster(), opt);
  ASSERT_TRUE(q.offer(arrival_with_slo(catalog, 0, 0.0, 100.0, 1.0)).ok());
  ASSERT_TRUE(q.offer(arrival_with_slo(catalog, 1, 1.0, 20.0, 1.0)).ok());
  // Best-effort (infinite deadline) clamps to best_effort_deadline: never
  // ahead of a real deadline, never starved out of the ordering.
  service::BatchArrival be = arrival_of(catalog, 4, 2, 0.5);
  ASSERT_TRUE(q.offer(std::move(be)).ok());
  EXPECT_EQ(q.pop(2.0).arrival.index, 1u);  // due 21
  EXPECT_EQ(q.pop(2.0).arrival.index, 0u);  // due 100
  EXPECT_EQ(q.pop(2.0).arrival.index, 2u);  // best-effort clamp
}

TEST(Admission, AgingPullsOldBatchesAcrossSloClasses) {
  const std::vector<wl::FileInfo> catalog = test_catalog();
  service::AdmissionOptions opt;
  opt.policy = service::AdmissionPolicy::kDeadlineAware;
  opt.aging_weight = 10.0;  // 10 key-seconds of credit per waiting second
  service::AdmissionQueue q(test_cluster(), opt);
  // Pure EDF would pop index 1 (due 30) before index 0 (due 100); with
  // aging, by now = 12 the older batch has earned 120 key-seconds of
  // credit against the newcomer's 20 and overtakes it.
  ASSERT_TRUE(q.offer(arrival_with_slo(catalog, 0, 0.0, 100.0, 1.0)).ok());
  ASSERT_TRUE(q.offer(arrival_with_slo(catalog, 1, 10.0, 20.0, 1.0)).ok());
  EXPECT_EQ(q.pop(12.0).arrival.index, 0u);
  EXPECT_EQ(q.pop(12.0).arrival.index, 1u);
}

TEST(Admission, ShedLowestValueEvictsAndSurfacesVictims) {
  const std::vector<wl::FileInfo> catalog = test_catalog();
  service::AdmissionOptions opt;
  opt.max_queue_depth = 2;
  opt.overload = service::OverloadPolicy::kShedLowestValue;
  service::AdmissionQueue q(test_cluster(), opt);
  ASSERT_TRUE(q.offer(arrival_with_slo(catalog, 0, 0.0, 50.0, 5.0)).ok());
  ASSERT_TRUE(q.offer(arrival_with_slo(catalog, 1, 0.0, 50.0, 1.0)).ok());
  // Weight 3 beats the queued weight-1 batch: that one is shed, the offer
  // admitted, the bound kept.
  ASSERT_TRUE(q.offer(arrival_with_slo(catalog, 2, 1.0, 50.0, 3.0)).ok());
  EXPECT_EQ(q.size(), 2u);
  std::vector<service::QueuedBatch> shed = q.take_shed();
  ASSERT_EQ(shed.size(), 1u);
  EXPECT_EQ(shed[0].arrival.index, 1u);
  EXPECT_TRUE(q.take_shed().empty());
  // An offer weaker than everything queued is itself the victim: typed
  // rejection, queue untouched.
  const Status s = q.offer(arrival_with_slo(catalog, 3, 2.0, 50.0, 0.5));
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.error().message.find("shed"), std::string::npos);
  EXPECT_EQ(q.size(), 2u);
}

TEST(Admission, DegradeAdmitsPastBoundAsBestEffort) {
  const std::vector<wl::FileInfo> catalog = test_catalog();
  service::AdmissionOptions opt;
  opt.max_queue_depth = 1;
  opt.overload = service::OverloadPolicy::kDegrade;
  service::AdmissionQueue q(test_cluster(), opt);
  ASSERT_TRUE(q.offer(arrival_with_slo(catalog, 0, 0.0, 10.0, 2.0)).ok());
  ASSERT_TRUE(q.offer(arrival_with_slo(catalog, 1, 0.0, 10.0, 2.0)).ok());
  EXPECT_EQ(q.size(), 2u);
  EXPECT_EQ(q.degraded_count(), 1u);
  q.pop();
  const service::QueuedBatch d = q.pop();
  EXPECT_EQ(d.arrival.index, 1u);
  EXPECT_TRUE(d.degraded);
  EXPECT_EQ(d.effective_slo.weight, 0.0);
  EXPECT_FALSE(std::isfinite(d.effective_slo.deadline_seconds));
  // The original class survives on the arrival for SLO reporting.
  EXPECT_EQ(d.arrival.slo.deadline_seconds, 10.0);
}

TEST(Admission, SjfPricesOnceAtOfferTimeOnly) {
  const std::vector<wl::FileInfo> catalog = test_catalog();
  service::AdmissionOptions opt;
  opt.policy = service::AdmissionPolicy::kShortestBatchFirst;
  service::AdmissionQueue q(test_cluster(), opt);
  ASSERT_TRUE(q.offer(arrival_of(catalog, 8, 0, 0.0)).ok());
  ASSERT_TRUE(q.offer(arrival_of(catalog, 2, 1, 0.0)).ok());
  ASSERT_TRUE(q.offer(arrival_of(catalog, 5, 2, 0.0)).ok());
  EXPECT_EQ(q.pricing_calls(), 3u);
  // Dequeues read the memoized estimates; no re-pricing per poll.
  while (!q.empty()) q.pop();
  EXPECT_EQ(q.pricing_calls(), 3u);

  // The other policies never price at all.
  service::AdmissionQueue fifo(test_cluster(), {});
  ASSERT_TRUE(fifo.offer(arrival_of(catalog, 8, 0, 0.0)).ok());
  fifo.pop();
  EXPECT_EQ(fifo.pricing_calls(), 0u);
  service::AdmissionOptions edf;
  edf.policy = service::AdmissionPolicy::kDeadlineAware;
  service::AdmissionQueue dq(test_cluster(), edf);
  ASSERT_TRUE(dq.offer(arrival_of(catalog, 8, 0, 0.0)).ok());
  dq.pop(1.0);
  EXPECT_EQ(dq.pricing_calls(), 0u);
}

// ---------------------------------------------------- cross-batch catalog

TEST(CrossBatchCatalog, AccumulatesPopularityAndRebasesSeeds) {
  const std::vector<wl::FileInfo> catalog = test_catalog();
  const sim::ClusterConfig c = test_cluster(600.0 * sim::kMB);
  service::CrossBatchCatalog cbc(catalog.size(), c);
  EXPECT_TRUE(cbc.seed_for_next().empty());

  const wl::Workload w =
      service::make_service_batch(catalog, test_batch_cfg(8), 51);
  sched::MinMinScheduler mm;
  sched::BatchRunOptions cap;
  cap.capture_final_cache = true;
  const auto r = sched::run_batch(mm, w, c, cap);
  ASSERT_TRUE(r.ok());

  cbc.fold_batch(w, r.final_cache, /*batch_start=*/100.0);
  EXPECT_EQ(cbc.batches_folded(), 1u);
  double requests = 0.0;
  for (wl::FileId f = 0; f < catalog.size(); ++f) requests += cbc.popularity(f);
  EXPECT_EQ(requests, 8.0 * 3.0);  // tasks * files_per_task

  const sim::InitialCacheState seed = cbc.seed_for_next();
  ASSERT_EQ(seed.entries.size(), r.final_cache.entries.size());
  for (const auto& e : seed.entries) {
    EXPECT_EQ(e.avail_time, 0.0);
    EXPECT_LE(e.last_use, 0.0);
  }
  // Replica map agrees with the snapshot.
  const wl::FileId f0 = seed.entries.front().file;
  EXPECT_FALSE(cbc.replica_nodes(f0).empty());
  EXPECT_GT(cbc.carried_bytes(), 0.0);

  // Folding a second batch doubles nothing away: popularity accumulates.
  cbc.fold_batch(w, r.final_cache, /*batch_start=*/200.0);
  double requests2 = 0.0;
  for (wl::FileId f = 0; f < catalog.size(); ++f)
    requests2 += cbc.popularity(f);
  EXPECT_EQ(requests2, 2.0 * requests);
}

TEST(CrossBatchCatalog, CarryFractionEvictsBetweenBatches) {
  const std::vector<wl::FileInfo> catalog = test_catalog();
  const sim::ClusterConfig c = test_cluster(600.0 * sim::kMB);
  const wl::Workload w =
      service::make_service_batch(catalog, test_batch_cfg(8), 51);
  sched::MinMinScheduler mm;
  sched::BatchRunOptions cap;
  cap.capture_final_cache = true;
  const auto r = sched::run_batch(mm, w, c, cap);
  ASSERT_TRUE(r.ok());

  service::CrossBatchCatalog full(catalog.size(), c, {});
  full.fold_batch(w, r.final_cache, 0.0);

  service::CrossBatchOptions half_opt;
  half_opt.carry_fraction = 0.5;
  service::CrossBatchCatalog half(catalog.size(), c, half_opt);
  half.fold_batch(w, r.final_cache, 0.0);

  EXPECT_EQ(full.evicted_bytes(), 0.0);
  EXPECT_GT(half.evicted_bytes(), 0.0);
  EXPECT_LT(half.carried_bytes(), full.carried_bytes());
  EXPECT_LE(half.carried_bytes(), 0.5 * full.carried_bytes() + 1.0);
}

// ------------------------------------------------------------ service loop

TEST(ServiceLoop, WarmBeatsColdAndIsDeterministic) {
  WsRuntime::set_global_threads(1);
  const std::vector<wl::FileInfo> catalog = test_catalog();
  const sim::ClusterConfig c = test_cluster(600.0 * sim::kMB);
  service::ArrivalConfig acfg;
  acfg.rate = 0.02;
  acfg.num_batches = 3;
  acfg.seed = 13;
  service::BatchArrivalProcess arrivals(catalog, test_batch_cfg(8), acfg);

  auto run_once = [&](bool warm) {
    auto gen = arrivals.generate();
    EXPECT_TRUE(gen.ok());
    sched::MinMinScheduler mm;
    service::ServiceOptions opt;
    opt.warm_start = warm;
    service::ServiceLoop loop(mm, c, catalog.size(), opt);
    auto r = loop.run(std::move(gen).value());
    EXPECT_TRUE(r.ok());
    return std::move(r).value();
  };

  const service::ServiceResult cold = run_once(false);
  const service::ServiceResult warm = run_once(true);
  const service::ServiceResult warm2 = run_once(true);

  ASSERT_EQ(cold.stats.batches_served, 3u);
  ASSERT_EQ(warm.stats.batches_served, 3u);
  EXPECT_EQ(cold.stats.cross_batch_hit_bytes, 0.0);
  EXPECT_GT(warm.stats.cross_batch_hit_bytes, 0.0);
  EXPECT_LT(warm.stats.mean_response_time, cold.stats.mean_response_time);
  // The first batch has no history: its metrics match the cold run.
  EXPECT_EQ(warm.batches[0].makespan, cold.batches[0].makespan);
  EXPECT_EQ(warm.batches[0].cross_batch_hit_bytes, 0.0);
  EXPECT_GT(warm.batches[1].cross_batch_hit_bytes, 0.0);
  // Bit-determinism across runs.
  EXPECT_EQ(warm.stats.mean_response_time, warm2.stats.mean_response_time);
  EXPECT_EQ(warm.stats.cross_batch_hit_bytes,
            warm2.stats.cross_batch_hit_bytes);
  // Response = wait + makespan, aggregated consistently.
  for (const auto& b : warm.batches) {
    EXPECT_EQ(b.response_time, b.queue_wait + b.makespan);
    EXPECT_GE(b.start_time, b.arrival_time);
  }
}

TEST(ServiceLoop, BackpressureCountsRejections) {
  WsRuntime::set_global_threads(1);
  const std::vector<wl::FileInfo> catalog = test_catalog();
  const sim::ClusterConfig c = test_cluster();
  // Every batch arrives before the first finishes; depth 1 must shed load.
  std::vector<service::BatchArrival> arrivals;
  for (std::size_t i = 0; i < 4; ++i)
    arrivals.push_back(arrival_of(catalog, 6, i, 0.0));
  sched::MinMinScheduler mm;
  service::ServiceOptions opt;
  opt.admission.max_queue_depth = 1;
  service::ServiceLoop loop(mm, c, catalog.size(), opt);
  auto r = loop.run(std::move(arrivals));
  ASSERT_TRUE(r.ok());
  EXPECT_GT(r.value().stats.rejected_batches, 0u);
  EXPECT_EQ(r.value().stats.batches_served +
                r.value().stats.rejected_batches,
            4u);
}

TEST(ServiceLoop, RejectsUnsortedArrivals) {
  const std::vector<wl::FileInfo> catalog = test_catalog();
  std::vector<service::BatchArrival> arrivals;
  arrivals.push_back(arrival_of(catalog, 4, 0, 5.0));
  arrivals.push_back(arrival_of(catalog, 4, 1, 1.0));
  sched::MinMinScheduler mm;
  service::ServiceLoop loop(mm, test_cluster(), catalog.size(), {});
  EXPECT_FALSE(loop.run(std::move(arrivals)).ok());
}

// ------------------------------------------------------- stats-reuse guard

TEST(StatsReuseGuard, IpSchedulerRefusesSecondRunWithoutReset) {
  WsRuntime::set_global_threads(1);
  const std::vector<wl::FileInfo> catalog = test_catalog();
  const wl::Workload w =
      service::make_service_batch(catalog, test_batch_cfg(4), 61);
  const sim::ClusterConfig c = test_cluster();
  sched::IpScheduler ip;
  const auto first = sched::run_batch(ip, w, c);
  ASSERT_TRUE(first.ok()) << first.error;
  ASSERT_GT(first.stats.lp_pivots + first.stats.mip_nodes, 0);

  const auto second = sched::run_batch(ip, w, c);
  ASSERT_FALSE(second.ok());
  EXPECT_NE(second.error.find("reset_run_stats"), std::string::npos);
  EXPECT_EQ(second.tasks_stranded, w.num_tasks());

  ip.reset_run_stats();
  const auto third = sched::run_batch(ip, w, c);
  ASSERT_TRUE(third.ok()) << third.error;
  // Per-run isolation: the third run reports its own kernel work, not the
  // first run's plus its own.
  EXPECT_EQ(third.stats.lp_pivots, first.stats.lp_pivots);
  EXPECT_EQ(third.stats.mip_nodes, first.stats.mip_nodes);
}

TEST(StatsReuseGuard, ExecutionStatsResetClearsEverything) {
  sim::ExecutionStats s;
  s.tasks_executed = 3;
  s.remote_bytes = 1.0;
  s.warm_hit_bytes = 2.0;
  s.lp_pivots = 7;
  s.reset();
  EXPECT_EQ(s.tasks_executed, 0u);
  EXPECT_EQ(s.remote_bytes, 0.0);
  EXPECT_EQ(s.warm_hit_bytes, 0.0);
  EXPECT_EQ(s.lp_pivots, 0);
}

}  // namespace
}  // namespace bsio
