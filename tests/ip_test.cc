#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "ip/branch_and_bound.h"
#include "lp/model.h"
#include "util/rng.h"

namespace bsio::ip {
namespace {

// Brute-force 0-1 enumeration for cross-checking small MIPs.
double brute_force(const lp::Model& m, const std::vector<int>& bins,
                   std::vector<double>* best_x = nullptr) {
  const std::size_t nb = bins.size();
  double best = std::numeric_limits<double>::infinity();
  std::vector<double> x(m.num_vars(), 0.0);
  // Continuous vars must be absent for this checker.
  for (std::uint64_t mask = 0; mask < (1ULL << nb); ++mask) {
    for (std::size_t i = 0; i < nb; ++i)
      x[bins[i]] = (mask >> i) & 1 ? 1.0 : 0.0;
    if (!m.is_feasible(x)) continue;
    double obj = m.objective_value(x);
    if (obj < best) {
      best = obj;
      if (best_x) *best_x = x;
    }
  }
  return best;
}

TEST(Mip, KnapsackOptimal) {
  // max 10a + 13b + 7c s.t. 3a + 4b + 2c <= 6  => min negated.
  lp::Model m;
  int a = m.add_binary(-10.0);
  int b = m.add_binary(-13.0);
  int c = m.add_binary(-7.0);
  m.add_row(lp::Sense::kLe, 6.0, {{a, 3.0}, {b, 4.0}, {c, 2.0}});
  MipSolver solver(m, {a, b, c});
  auto r = solver.solve();
  ASSERT_EQ(r.status, MipStatus::kOptimal);
  EXPECT_DOUBLE_EQ(r.objective, -20.0);  // b + c
  EXPECT_DOUBLE_EQ(r.x[a], 0.0);
  EXPECT_DOUBLE_EQ(r.x[b], 1.0);
  EXPECT_DOUBLE_EQ(r.x[c], 1.0);
}

TEST(Mip, InfeasibleDetected) {
  lp::Model m;
  int a = m.add_binary(1.0);
  int b = m.add_binary(1.0);
  m.add_row(lp::Sense::kGe, 3.0, {{a, 1.0}, {b, 1.0}});
  MipSolver solver(m, {a, b});
  EXPECT_EQ(solver.solve().status, MipStatus::kInfeasible);
}

TEST(Mip, AssignmentWithMakespanObjective) {
  // 4 tasks, 2 machines, sizes {5, 4, 3, 2}; min makespan = 7.
  lp::Model m;
  const double sizes[4] = {5, 4, 3, 2};
  int z = m.add_var(1.0, 0.0, 14.0);
  int t[4][2];
  std::vector<int> bins;
  for (int i = 0; i < 4; ++i)
    for (int j = 0; j < 2; ++j) bins.push_back(t[i][j] = m.add_binary(0.0));
  for (int i = 0; i < 4; ++i)
    m.add_row(lp::Sense::kEq, 1.0, {{t[i][0], 1.0}, {t[i][1], 1.0}});
  for (int j = 0; j < 2; ++j) {
    std::vector<lp::RowEntry> row{{z, -1.0}};
    for (int i = 0; i < 4; ++i) row.push_back({t[i][j], sizes[i]});
    m.add_row(lp::Sense::kLe, 0.0, std::move(row));
  }
  MipSolver solver(m, bins);
  auto r = solver.solve();
  ASSERT_EQ(r.status, MipStatus::kOptimal);
  EXPECT_NEAR(r.objective, 7.0, 1e-6);
}

TEST(Mip, WarmIncumbentAccepted) {
  lp::Model m;
  int a = m.add_binary(-1.0);
  int b = m.add_binary(-1.0);
  m.add_row(lp::Sense::kLe, 1.0, {{a, 1.0}, {b, 1.0}});
  MipSolver solver(m, {a, b});
  EXPECT_TRUE(solver.set_incumbent({1.0, 0.0}));
  EXPECT_FALSE(solver.set_incumbent({1.0, 1.0}));  // infeasible seed ignored
  auto r = solver.solve();
  ASSERT_EQ(r.status, MipStatus::kOptimal);
  EXPECT_DOUBLE_EQ(r.objective, -1.0);
}

TEST(Mip, NodeLimitReturnsIncumbentAndBound) {
  // A bigger makespan instance; with a 1-node budget we still get the
  // seeded incumbent back with a valid lower bound.
  lp::Model m;
  const int n = 10;
  int z = m.add_var(1.0, 0.0, 100.0);
  std::vector<int> bins;
  std::vector<std::vector<int>> t(n, std::vector<int>(2));
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < 2; ++j) bins.push_back(t[i][j] = m.add_binary(0.0));
  for (int i = 0; i < n; ++i)
    m.add_row(lp::Sense::kEq, 1.0, {{t[i][0], 1.0}, {t[i][1], 1.0}});
  for (int j = 0; j < 2; ++j) {
    std::vector<lp::RowEntry> row{{z, -1.0}};
    for (int i = 0; i < n; ++i) row.push_back({t[i][j], 1.0 + i % 3});
    m.add_row(lp::Sense::kLe, 0.0, std::move(row));
  }
  // All tasks on machine 0.
  std::vector<double> seed(m.num_vars(), 0.0);
  double load = 0.0;
  for (int i = 0; i < n; ++i) {
    seed[t[i][0]] = 1.0;
    load += 1.0 + i % 3;
  }
  seed[z] = load;
  MipSolver solver(m, bins);
  ASSERT_TRUE(solver.set_incumbent(seed));
  MipOptions opts;
  opts.max_nodes = 1;
  opts.heuristic_every = 0;
  auto r = solver.solve(opts);
  EXPECT_EQ(r.status, MipStatus::kFeasible);
  EXPECT_LE(r.best_bound, r.objective + 1e-9);
  EXPECT_DOUBLE_EQ(r.objective, load);
}

// A makespan-assignment model with non-uniform sizes: enough branching to
// exercise the selection rules without brute-force blowing up.
lp::Model branching_model(int tasks, int machines, std::vector<int>* bins) {
  lp::Model m;
  int z = m.add_var(1.0, 0.0, 1e6);
  std::vector<std::vector<int>> t(tasks, std::vector<int>(machines));
  for (int k = 0; k < tasks; ++k)
    for (int j = 0; j < machines; ++j)
      bins->push_back(t[k][j] = m.add_binary(0.0));
  for (int k = 0; k < tasks; ++k) {
    std::vector<lp::RowEntry> row;
    for (int j = 0; j < machines; ++j) row.push_back({t[k][j], 1.0});
    m.add_row(lp::Sense::kEq, 1.0, std::move(row));
  }
  for (int j = 0; j < machines; ++j) {
    std::vector<lp::RowEntry> row{{z, -1.0}};
    for (int k = 0; k < tasks; ++k)
      row.push_back({t[k][j], 1.0 + (k * 7 + j * 3) % 5});
    m.add_row(lp::Sense::kLe, 0.0, std::move(row));
  }
  return m;
}

TEST(Mip, BranchingRulesReachTheSameProvenOptimum) {
  std::vector<int> bins;
  lp::Model m = branching_model(9, 3, &bins);

  MipOptions pc;
  pc.branching = Branching::kPseudoCost;
  MipOptions mf;
  mf.branching = Branching::kMostFractional;

  MipSolver s1(m, bins), s2(m, bins);
  auto r1 = s1.solve(pc);
  auto r2 = s2.solve(mf);
  ASSERT_EQ(r1.status, MipStatus::kOptimal);
  ASSERT_EQ(r2.status, MipStatus::kOptimal);
  // Different trees, same proven optimum.
  EXPECT_NEAR(r1.objective, r2.objective, 1e-6);
  EXPECT_GT(r1.stats.pivots + r1.stats.bound_flips, 0);
}

TEST(Mip, BestBoundNodeOrderMatchesDepthFirst) {
  std::vector<int> bins;
  lp::Model m = branching_model(8, 3, &bins);

  MipOptions dfs;
  dfs.node_order = NodeOrder::kDepthFirst;
  MipOptions bb;
  bb.node_order = NodeOrder::kBestBound;

  MipSolver s1(m, bins), s2(m, bins);
  auto r1 = s1.solve(dfs);
  auto r2 = s2.solve(bb);
  ASSERT_EQ(r1.status, MipStatus::kOptimal);
  ASSERT_EQ(r2.status, MipStatus::kOptimal);
  EXPECT_NEAR(r1.objective, r2.objective, 1e-6);
  // Best-bound terminates with the bound meeting the incumbent.
  EXPECT_LE(r2.best_bound, r2.objective + 1e-9);
}

TEST(Mip, StallNodeLimitStopsPolishingWithIncumbent) {
  std::vector<int> bins;
  lp::Model m = branching_model(12, 4, &bins);

  // Unlimited run for the reference optimum and node count.
  MipSolver ref(m, bins);
  auto full = ref.solve();
  ASSERT_EQ(full.status, MipStatus::kOptimal);

  MipOptions opts;
  opts.stall_node_limit = 5;
  MipSolver s(m, bins);
  auto r = s.solve(opts);
  // The stall cutoff can only fire once an incumbent exists, so the result
  // is never worse than feasible; a cut-short proof downgrades to kFeasible.
  ASSERT_TRUE(r.status == MipStatus::kOptimal ||
              r.status == MipStatus::kFeasible);
  EXPECT_TRUE(std::isfinite(r.objective));
  EXPECT_GE(r.objective, full.objective - 1e-9);
  EXPECT_LE(r.nodes, full.nodes);
}

class RandomMipSweep : public ::testing::TestWithParam<int> {};

// Property test: B&B matches brute-force enumeration on random 0-1 models
// with mixed senses and coefficients.
TEST_P(RandomMipSweep, MatchesBruteForce) {
  const int seed = GetParam();
  bsio::Rng rng(static_cast<std::uint64_t>(seed));
  lp::Model m;
  const int nb = 3 + static_cast<int>(rng.uniform(10));  // 3..12 binaries
  std::vector<int> bins;
  for (int i = 0; i < nb; ++i)
    bins.push_back(m.add_binary(rng.uniform_double(-5.0, 5.0)));
  const int nrows = 2 + static_cast<int>(rng.uniform(6));
  for (int r = 0; r < nrows; ++r) {
    std::vector<lp::RowEntry> row;
    for (int i = 0; i < nb; ++i)
      if (rng.bernoulli(0.6))
        row.push_back({bins[i], rng.uniform_double(0.5, 3.0)});
    if (row.empty()) row.push_back({bins[0], 1.0});
    double total = 0.0;
    for (auto& e : row) total += e.coef;
    if (rng.bernoulli(0.7))
      m.add_row(lp::Sense::kLe, rng.uniform_double(0.3, 0.9) * total,
                std::move(row));
    else
      m.add_row(lp::Sense::kGe, rng.uniform_double(0.1, 0.4) * total,
                std::move(row));
  }
  std::vector<double> bx;
  double expect = brute_force(m, bins, &bx);

  MipSolver solver(m, bins);
  auto r = solver.solve();
  if (std::isinf(expect)) {
    EXPECT_EQ(r.status, MipStatus::kInfeasible) << "seed " << seed;
  } else {
    ASSERT_EQ(r.status, MipStatus::kOptimal) << "seed " << seed;
    EXPECT_NEAR(r.objective, expect, 1e-6) << "seed " << seed;
    EXPECT_TRUE(m.is_feasible(r.x, 1e-6));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomMipSweep, ::testing::Range(0, 25));

}  // namespace
}  // namespace bsio::ip
