#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "ip/branch_and_bound.h"
#include "lp/model.h"
#include "util/rng.h"

namespace bsio::ip {
namespace {

// Brute-force 0-1 enumeration for cross-checking small MIPs.
double brute_force(const lp::Model& m, const std::vector<int>& bins,
                   std::vector<double>* best_x = nullptr) {
  const std::size_t nb = bins.size();
  double best = std::numeric_limits<double>::infinity();
  std::vector<double> x(m.num_vars(), 0.0);
  // Continuous vars must be absent for this checker.
  for (std::uint64_t mask = 0; mask < (1ULL << nb); ++mask) {
    for (std::size_t i = 0; i < nb; ++i)
      x[bins[i]] = (mask >> i) & 1 ? 1.0 : 0.0;
    if (!m.is_feasible(x)) continue;
    double obj = m.objective_value(x);
    if (obj < best) {
      best = obj;
      if (best_x) *best_x = x;
    }
  }
  return best;
}

TEST(Mip, KnapsackOptimal) {
  // max 10a + 13b + 7c s.t. 3a + 4b + 2c <= 6  => min negated.
  lp::Model m;
  int a = m.add_binary(-10.0);
  int b = m.add_binary(-13.0);
  int c = m.add_binary(-7.0);
  m.add_row(lp::Sense::kLe, 6.0, {{a, 3.0}, {b, 4.0}, {c, 2.0}});
  MipSolver solver(m, {a, b, c});
  auto r = solver.solve();
  ASSERT_EQ(r.status, MipStatus::kOptimal);
  EXPECT_DOUBLE_EQ(r.objective, -20.0);  // b + c
  EXPECT_DOUBLE_EQ(r.x[a], 0.0);
  EXPECT_DOUBLE_EQ(r.x[b], 1.0);
  EXPECT_DOUBLE_EQ(r.x[c], 1.0);
}

TEST(Mip, InfeasibleDetected) {
  lp::Model m;
  int a = m.add_binary(1.0);
  int b = m.add_binary(1.0);
  m.add_row(lp::Sense::kGe, 3.0, {{a, 1.0}, {b, 1.0}});
  MipSolver solver(m, {a, b});
  EXPECT_EQ(solver.solve().status, MipStatus::kInfeasible);
}

TEST(Mip, AssignmentWithMakespanObjective) {
  // 4 tasks, 2 machines, sizes {5, 4, 3, 2}; min makespan = 7.
  lp::Model m;
  const double sizes[4] = {5, 4, 3, 2};
  int z = m.add_var(1.0, 0.0, 14.0);
  int t[4][2];
  std::vector<int> bins;
  for (int i = 0; i < 4; ++i)
    for (int j = 0; j < 2; ++j) bins.push_back(t[i][j] = m.add_binary(0.0));
  for (int i = 0; i < 4; ++i)
    m.add_row(lp::Sense::kEq, 1.0, {{t[i][0], 1.0}, {t[i][1], 1.0}});
  for (int j = 0; j < 2; ++j) {
    std::vector<lp::RowEntry> row{{z, -1.0}};
    for (int i = 0; i < 4; ++i) row.push_back({t[i][j], sizes[i]});
    m.add_row(lp::Sense::kLe, 0.0, std::move(row));
  }
  MipSolver solver(m, bins);
  auto r = solver.solve();
  ASSERT_EQ(r.status, MipStatus::kOptimal);
  EXPECT_NEAR(r.objective, 7.0, 1e-6);
}

TEST(Mip, WarmIncumbentAccepted) {
  lp::Model m;
  int a = m.add_binary(-1.0);
  int b = m.add_binary(-1.0);
  m.add_row(lp::Sense::kLe, 1.0, {{a, 1.0}, {b, 1.0}});
  MipSolver solver(m, {a, b});
  EXPECT_TRUE(solver.set_incumbent({1.0, 0.0}));
  EXPECT_FALSE(solver.set_incumbent({1.0, 1.0}));  // infeasible seed ignored
  auto r = solver.solve();
  ASSERT_EQ(r.status, MipStatus::kOptimal);
  EXPECT_DOUBLE_EQ(r.objective, -1.0);
}

TEST(Mip, NodeLimitReturnsIncumbentAndBound) {
  // A bigger makespan instance; with a 1-node budget we still get the
  // seeded incumbent back with a valid lower bound.
  lp::Model m;
  const int n = 10;
  int z = m.add_var(1.0, 0.0, 100.0);
  std::vector<int> bins;
  std::vector<std::vector<int>> t(n, std::vector<int>(2));
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < 2; ++j) bins.push_back(t[i][j] = m.add_binary(0.0));
  for (int i = 0; i < n; ++i)
    m.add_row(lp::Sense::kEq, 1.0, {{t[i][0], 1.0}, {t[i][1], 1.0}});
  for (int j = 0; j < 2; ++j) {
    std::vector<lp::RowEntry> row{{z, -1.0}};
    for (int i = 0; i < n; ++i) row.push_back({t[i][j], 1.0 + i % 3});
    m.add_row(lp::Sense::kLe, 0.0, std::move(row));
  }
  // All tasks on machine 0.
  std::vector<double> seed(m.num_vars(), 0.0);
  double load = 0.0;
  for (int i = 0; i < n; ++i) {
    seed[t[i][0]] = 1.0;
    load += 1.0 + i % 3;
  }
  seed[z] = load;
  MipSolver solver(m, bins);
  ASSERT_TRUE(solver.set_incumbent(seed));
  MipOptions opts;
  opts.max_nodes = 1;
  opts.heuristic_every = 0;
  auto r = solver.solve(opts);
  EXPECT_EQ(r.status, MipStatus::kFeasible);
  EXPECT_LE(r.best_bound, r.objective + 1e-9);
  EXPECT_DOUBLE_EQ(r.objective, load);
}

class RandomMipSweep : public ::testing::TestWithParam<int> {};

// Property test: B&B matches brute-force enumeration on random 0-1 models
// with mixed senses and coefficients.
TEST_P(RandomMipSweep, MatchesBruteForce) {
  const int seed = GetParam();
  bsio::Rng rng(static_cast<std::uint64_t>(seed));
  lp::Model m;
  const int nb = 3 + static_cast<int>(rng.uniform(10));  // 3..12 binaries
  std::vector<int> bins;
  for (int i = 0; i < nb; ++i)
    bins.push_back(m.add_binary(rng.uniform_double(-5.0, 5.0)));
  const int nrows = 2 + static_cast<int>(rng.uniform(6));
  for (int r = 0; r < nrows; ++r) {
    std::vector<lp::RowEntry> row;
    for (int i = 0; i < nb; ++i)
      if (rng.bernoulli(0.6))
        row.push_back({bins[i], rng.uniform_double(0.5, 3.0)});
    if (row.empty()) row.push_back({bins[0], 1.0});
    double total = 0.0;
    for (auto& e : row) total += e.coef;
    if (rng.bernoulli(0.7))
      m.add_row(lp::Sense::kLe, rng.uniform_double(0.3, 0.9) * total,
                std::move(row));
    else
      m.add_row(lp::Sense::kGe, rng.uniform_double(0.1, 0.4) * total,
                std::move(row));
  }
  std::vector<double> bx;
  double expect = brute_force(m, bins, &bx);

  MipSolver solver(m, bins);
  auto r = solver.solve();
  if (std::isinf(expect)) {
    EXPECT_EQ(r.status, MipStatus::kInfeasible) << "seed " << seed;
  } else {
    ASSERT_EQ(r.status, MipStatus::kOptimal) << "seed " << seed;
    EXPECT_NEAR(r.objective, expect, 1e-6) << "seed " << seed;
    EXPECT_TRUE(m.is_feasible(r.x, 1e-6));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomMipSweep, ::testing::Range(0, 25));

}  // namespace
}  // namespace bsio::ip
