#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "sched/bipartition.h"
#include "sched/cost_model.h"
#include "sched/driver.h"
#include "sched/ip_formulation.h"
#include "sched/ip_scheduler.h"
#include "sched/job_data_present.h"
#include "sched/minmin.h"
#include "sim/cluster.h"
#include "sim/topology.h"
#include "workload/stats.h"
#include "workload/synthetic.h"

namespace bsio::sched {
namespace {

wl::Workload small_workload(std::size_t tasks = 24, double overlap = 0.7,
                            std::uint64_t seed = 5) {
  wl::SyntheticConfig cfg;
  cfg.num_tasks = tasks;
  cfg.files_per_task = 4;
  cfg.overlap = overlap;
  cfg.file_size_bytes = 64.0 * sim::kMB;
  cfg.num_storage_nodes = 2;
  cfg.seed = seed;
  return wl::make_synthetic(cfg);
}

sim::ClusterConfig small_cluster(std::size_t compute = 3) {
  sim::ClusterConfig c;
  c.num_compute_nodes = compute;
  c.num_storage_nodes = 2;
  c.storage_disk_bw = 50.0 * sim::kMB;
  c.storage_net_bw = 500.0 * sim::kMB;
  c.compute_net_bw = 400.0 * sim::kMB;
  c.local_disk_bw = 200.0 * sim::kMB;
  return c;
}

void check_result_sane(const BatchRunResult& r, const wl::Workload& w) {
  EXPECT_GT(r.batch_time, 0.0);
  EXPECT_EQ(r.stats.tasks_executed, w.num_tasks());
  EXPECT_GE(r.sub_batches, 1u);
  // Every requested file needs >= 1 remote transfer (paper constraint 8).
  std::size_t requested = 0;
  for (const auto& f : w.files())
    if (!w.tasks_of_file(f.id).empty()) ++requested;
  EXPECT_GE(r.stats.remote_transfers, requested);
}

TEST(CostModel, ProbabilisticWeightsMatchEq25) {
  // 2 tasks sharing one 100 MB file, T=2, K=2.
  std::vector<wl::FileInfo> files(1);
  files[0].size_bytes = 100.0 * sim::kMB;
  files[0].home_storage_node = 0;
  std::vector<wl::TaskInfo> tasks(2);
  tasks[0].files = {0};
  tasks[1].files = {0};
  tasks[0].compute_seconds = tasks[1].compute_seconds = 1.0;
  wl::Workload w(std::move(tasks), std::move(files));
  sim::ClusterConfig c = small_cluster(2);

  sim::Topology topo(c);
  auto exec = probabilistic_exec_times(w, {0, 1}, topo);
  const double bw_s = topo.uniform_remote_bw(), bw_c = topo.uniform_replica_bw();
  const double slow = std::min(bw_s, bw_c);
  const double s_j = 2.0, T = 2.0, K = 2.0;
  const double p_fne = 1.0 / s_j, p_fe = (s_j / T) / K;
  const double tr = p_fne / bw_s + (1 - p_fne) * (1 - p_fe) / slow;
  const double expect =
      1.0 + 100.0 * sim::kMB * (tr + 1.0 / c.local_disk_bw);
  EXPECT_NEAR(exec[0], expect, 1e-9);
  EXPECT_NEAR(exec[0], exec[1], 1e-12);
}

TEST(CostModel, EstimateCountsCacheAndSources) {
  std::vector<wl::FileInfo> files(2);
  for (auto& f : files) {
    f.size_bytes = 50.0 * sim::kMB;
    f.home_storage_node = 0;
  }
  std::vector<wl::TaskInfo> tasks(1);
  tasks[0].files = {0, 1};
  tasks[0].compute_seconds = 1.0;
  wl::Workload w(std::move(tasks), std::move(files));
  sim::ClusterConfig c = small_cluster(2);

  sim::Topology topo(c);
  sim::ClusterState st(2, sim::kUnlimited);
  st.add(0, 0, 50.0 * sim::kMB, 0.0);  // file 0 cached on node 0
  PlannerState ps(w, topo, st);

  auto est0 = estimate_completion(w, topo, ps, 0, 0);
  auto est1 = estimate_completion(w, topo, ps, 0, 1);
  EXPECT_EQ(est0.stages.size(), 1u);  // only file 1 missing on node 0
  EXPECT_EQ(est1.stages.size(), 2u);
  EXPECT_LT(est0.completion, est1.completion);
  // Node 1's file 0 should come as a replica from node 0 (400 MB/s beats
  // the 50 MB/s remote path).
  bool found_replica = false;
  for (const auto& s : est1.stages)
    if (s.file == 0 && !s.remote && s.src == 0) found_replica = true;
  EXPECT_TRUE(found_replica);
}

TEST(Schedulers, AllFourRunTheBatchToCompletion) {
  wl::Workload w = small_workload();
  sim::ClusterConfig c = small_cluster();

  MinMinScheduler minmin;
  JobDataPresentScheduler jdp;
  BiPartitionScheduler bp;
  IpSchedulerOptions ipo = IpScheduler::default_options();
  ipo.allocation_mip.time_limit_seconds = 5.0;
  IpScheduler ip(ipo);

  for (Scheduler* s :
       std::initializer_list<Scheduler*>{&minmin, &jdp, &bp, &ip}) {
    BatchRunResult r = run_batch(*s, w, c);
    SCOPED_TRACE(s->name());
    check_result_sane(r, w);
  }
}

TEST(Schedulers, ProposedBeatBaselinesOnHighOverlap) {
  wl::Workload w = small_workload(30, 0.85, 11);
  sim::ClusterConfig c = small_cluster(4);

  MinMinScheduler minmin;
  BiPartitionScheduler bp;
  IpSchedulerOptions ipo = IpScheduler::default_options();
  ipo.allocation_mip.time_limit_seconds = 5.0;
  IpScheduler ip(ipo);

  double t_minmin = run_batch(minmin, w, c).batch_time;
  double t_bp = run_batch(bp, w, c).batch_time;
  double t_ip = run_batch(ip, w, c).batch_time;
  // The proposed schemes should not lose badly to MinMin on high overlap
  // (paper Figs 3-4). This is one small random instance, so the margin is
  // loose; the paper-scale comparisons live in the bench harness.
  EXPECT_LT(t_bp, t_minmin * 1.10);
  // IP realizes a statically staged plan through the dynamic runtime, so on
  // a single tiny instance it can land modestly above MinMin (the paper's
  // contention-vs-modeling effect); it must not be grossly worse.
  EXPECT_LT(t_ip, t_minmin * 1.40);
}

TEST(Schedulers, LimitedDiskStillCompletes) {
  wl::Workload w = small_workload(20, 0.5, 7);
  sim::ClusterConfig c = small_cluster(2);
  // Tight disk: every node holds only a few files at a time.
  c.disk_capacity = 6.0 * 64.0 * sim::kMB;

  MinMinScheduler minmin;
  JobDataPresentScheduler jdp;
  BiPartitionScheduler bp;
  IpSchedulerOptions ipo = IpScheduler::default_options();
  ipo.selection_mip.time_limit_seconds = 3.0;
  ipo.allocation_mip.time_limit_seconds = 3.0;
  IpScheduler ip(ipo);

  for (Scheduler* s :
       std::initializer_list<Scheduler*>{&minmin, &jdp, &bp, &ip}) {
    BatchRunResult r = run_batch(*s, w, c);
    SCOPED_TRACE(s->name());
    check_result_sane(r, w);
  }
}

TEST(Schedulers, BiPartitionUsesMultipleSubBatchesUnderTightDisk) {
  wl::Workload w = small_workload(24, 0.3, 13);
  sim::ClusterConfig c = small_cluster(2);
  double unique = w.unique_request_bytes();
  c.disk_capacity = unique / 3.0;  // aggregate 2/3 of the demand

  BiPartitionScheduler bp;
  BatchRunResult r = run_batch(bp, w, c);
  check_result_sane(r, w);
  EXPECT_GE(r.sub_batches, 2u);
}

TEST(Schedulers, NoReplicationConfigDisablesReplicas) {
  wl::Workload w = small_workload(20, 0.85, 3);
  sim::ClusterConfig c = small_cluster(4);
  c.allow_replication = false;
  for (Scheduler* s : std::initializer_list<Scheduler*>{
           new MinMinScheduler, new BiPartitionScheduler}) {
    BatchRunResult r = run_batch(*s, w, c);
    SCOPED_TRACE(s->name());
    EXPECT_EQ(r.stats.replications, 0u);
    EXPECT_EQ(r.stats.replica_bytes, 0.0);
    delete s;
  }
}

TEST(Schedulers, DeterministicAcrossRuns) {
  wl::Workload w = small_workload(18, 0.6, 21);
  sim::ClusterConfig c = small_cluster(3);
  BiPartitionScheduler a, b;
  EXPECT_DOUBLE_EQ(run_batch(a, w, c).batch_time,
                   run_batch(b, w, c).batch_time);
}

// ---------------- IP formulation unit tests ----------------

TEST(IpFormulation, CoalesceMergesIdenticalRequesterSets) {
  // Files 0,1 both used by tasks {0,1}; file 2 only by task 1.
  std::vector<wl::FileInfo> files(3);
  for (auto& f : files) {
    f.size_bytes = 10.0;
    f.home_storage_node = 0;
  }
  std::vector<wl::TaskInfo> tasks(2);
  tasks[0].files = {0, 1};
  tasks[1].files = {0, 1, 2};
  wl::Workload w(std::move(tasks), std::move(files));
  sim::ClusterState st(2, sim::kUnlimited);
  auto groups = coalesce_files(w, {0, 1}, st);
  ASSERT_EQ(groups.size(), 2u);
  // One group with 2 files (bytes 20), one with 1 file (bytes 10).
  std::multiset<double> sizes{groups[0].bytes, groups[1].bytes};
  EXPECT_EQ(sizes, (std::multiset<double>{10.0, 20.0}));
}

TEST(IpFormulation, CoalesceSplitsOnExistingPlacement) {
  std::vector<wl::FileInfo> files(2);
  for (auto& f : files) {
    f.size_bytes = 10.0;
    f.home_storage_node = 0;
  }
  std::vector<wl::TaskInfo> tasks(1);
  tasks[0].files = {0, 1};
  wl::Workload w(std::move(tasks), std::move(files));
  sim::ClusterState st(2, sim::kUnlimited);
  st.add(1, 0, 10.0, 0.0);  // file 0 already on node 1
  auto groups = coalesce_files(w, {0}, st);
  EXPECT_EQ(groups.size(), 2u);
}

TEST(IpFormulation, IncumbentFromMappingIsFeasible) {
  wl::Workload w = small_workload(10, 0.6, 17);
  sim::ClusterConfig c = small_cluster(3);
  sim::ClusterState st(3, sim::kUnlimited);
  std::vector<wl::TaskId> tasks;
  for (const auto& t : w.tasks()) tasks.push_back(t.id);
  AllocationModel m(w, tasks, coalesce_files(w, tasks, st), sim::Topology(c),
                    {});
  // Any mapping should give a model-feasible star-staging point.
  std::vector<wl::NodeId> map(tasks.size());
  for (std::size_t i = 0; i < map.size(); ++i)
    map[i] = static_cast<wl::NodeId>(i % 3);
  auto x = m.incumbent_from_mapping(map);
  EXPECT_TRUE(m.model().is_feasible(x, 1e-6));
}

TEST(IpFormulation, AllocationOptimumMatchesExhaustiveTinyCase) {
  // 3 tasks, 2 nodes, one shared file; enumerate all 8 mappings with star
  // staging and compare the IP optimum's surrogate objective.
  std::vector<wl::FileInfo> files(2);
  files[0].size_bytes = 100.0 * sim::kMB;
  files[1].size_bytes = 50.0 * sim::kMB;
  for (auto& f : files) f.home_storage_node = 0;
  std::vector<wl::TaskInfo> tasks(3);
  tasks[0].files = {0};
  tasks[1].files = {0, 1};
  tasks[2].files = {1};
  tasks[0].compute_seconds = 2.0;
  tasks[1].compute_seconds = 1.0;
  tasks[2].compute_seconds = 3.0;
  wl::Workload w(std::move(tasks), std::move(files));
  sim::ClusterConfig c = small_cluster(2);
  sim::ClusterState st(2, sim::kUnlimited);

  std::vector<wl::TaskId> ids{0, 1, 2};
  AllocationModel m(w, ids, coalesce_files(w, ids, st), sim::Topology(c), {});
  ip::MipSolver solver(m.model(), m.integer_vars());
  auto r = solver.solve();
  ASSERT_TRUE(r.status == ip::MipStatus::kOptimal);

  double best_enum = std::numeric_limits<double>::infinity();
  for (int mask = 0; mask < 8; ++mask) {
    std::vector<wl::NodeId> map{static_cast<wl::NodeId>(mask & 1),
                                static_cast<wl::NodeId>((mask >> 1) & 1),
                                static_cast<wl::NodeId>((mask >> 2) & 1)};
    auto x = m.incumbent_from_mapping(map);
    if (m.model().is_feasible(x, 1e-6))
      best_enum = std::min(best_enum, m.makespan_surrogate(x));
  }
  // The IP explores at least the star-staging space, so its optimum cannot
  // be worse; it may be better (e.g. splitting remote transfers).
  EXPECT_LE(m.makespan_surrogate(r.x), best_enum + 1e-6);
}

TEST(IpFormulation, SelectionRespectsDiskAndMaximises) {
  // 4 tasks, each needing its own 60 MB file; per-node disk 130 MB, 2
  // nodes: at most 2 files fit per node -> all 4 tasks selectable.
  std::vector<wl::FileInfo> files(4);
  for (auto& f : files) {
    f.size_bytes = 60.0 * sim::kMB;
    f.home_storage_node = 0;
  }
  std::vector<wl::TaskInfo> tasks(4);
  for (int k = 0; k < 4; ++k) {
    tasks[k].files = {static_cast<wl::FileId>(k)};
    tasks[k].compute_seconds = 1.0;
  }
  wl::Workload w(std::move(tasks), std::move(files));
  sim::ClusterConfig c = small_cluster(2);
  c.disk_capacity = 130.0 * sim::kMB;
  sim::ClusterState st(2, c.disk_capacity);

  std::vector<wl::TaskId> ids{0, 1, 2, 3};
  IpFormulationOptions fo;
  fo.balance_thresh = 1.0;
  SelectionModel m(w, ids, coalesce_files(w, ids, st), sim::Topology(c), fo);
  ip::MipSolver solver(m.model(), m.integer_vars());
  auto seed = m.greedy_incumbent();
  if (!seed.empty()) solver.set_incumbent(seed);
  auto r = solver.solve();
  ASSERT_TRUE(r.status == ip::MipStatus::kOptimal);
  EXPECT_EQ(m.extract_sub_batch(r.x).size(), 4u);

  // Shrink disk to one file per node -> only 2 tasks fit.
  c.disk_capacity = 70.0 * sim::kMB;
  SelectionModel m2(w, ids, coalesce_files(w, ids, st), sim::Topology(c), fo);
  ip::MipSolver solver2(m2.model(), m2.integer_vars());
  auto r2 = solver2.solve();
  ASSERT_TRUE(r2.status == ip::MipStatus::kOptimal);
  EXPECT_EQ(m2.extract_sub_batch(r2.x).size(), 2u);
}

TEST(IpFormulation, ExactAndAggregatedConstraintsAgreeOnOptimum) {
  wl::Workload w = small_workload(8, 0.5, 23);
  sim::ClusterConfig c = small_cluster(2);
  sim::ClusterState st(2, sim::kUnlimited);
  std::vector<wl::TaskId> ids;
  for (const auto& t : w.tasks()) ids.push_back(t.id);

  IpFormulationOptions agg, exact;
  agg.aggregate_constraints = true;
  exact.aggregate_constraints = false;
  const sim::Topology topo(c);
  AllocationModel ma(w, ids, coalesce_files(w, ids, st), topo, agg);
  AllocationModel me(w, ids, coalesce_files(w, ids, st), topo, exact);
  ip::MipSolver sa(ma.model(), ma.integer_vars());
  ip::MipSolver se(me.model(), me.integer_vars());
  auto ra = sa.solve();
  auto re = se.solve();
  ASSERT_TRUE(ra.status == ip::MipStatus::kOptimal);
  ASSERT_TRUE(re.status == ip::MipStatus::kOptimal);
  EXPECT_NEAR(ma.makespan_surrogate(ra.x), me.makespan_surrogate(re.x),
              1e-4);
}

TEST(BiPartition, MappingCoversAllNodesAndBalances) {
  wl::Workload w = small_workload(40, 0.6, 29);
  sim::ClusterConfig c = small_cluster(4);
  std::vector<wl::TaskId> ids;
  for (const auto& t : w.tasks()) ids.push_back(t.id);
  auto map = bipartition_map_tasks(w, ids, sim::Topology(c), {});
  ASSERT_EQ(map.size(), ids.size());
  std::set<wl::NodeId> used(map.begin(), map.end());
  EXPECT_EQ(used.size(), 4u);
}

TEST(BiPartition, RepairKeepsPerNodeDiskFeasible) {
  wl::Workload w = small_workload(30, 0.2, 31);
  sim::ClusterConfig c = small_cluster(2);
  c.disk_capacity = w.unique_request_bytes() / 2.5;

  BiPartitionScheduler bp;
  sim::ExecutionEngine engine(c, w);
  SchedulerContext ctx{w, c, engine};
  std::vector<wl::TaskId> pending;
  for (const auto& t : w.tasks()) pending.push_back(t.id);
  sim::SubBatchPlan plan = bp.plan_sub_batch(pending, ctx);
  ASSERT_FALSE(plan.empty());
  // Staged bytes per node within capacity.
  for (wl::NodeId n = 0; n < c.num_compute_nodes; ++n) {
    std::set<wl::FileId> staged;
    for (wl::TaskId t : plan.tasks)
      if (plan.assignment.at(t) == n)
        for (wl::FileId f : w.task(t).files) staged.insert(f);
    double bytes = 0.0;
    for (wl::FileId f : staged) bytes += w.file_size(f);
    EXPECT_LE(bytes, c.disk_capacity + 1.0) << "node " << n;
  }
}

TEST(Jdp, PrefetchesPopularFiles) {
  wl::Workload w = small_workload(30, 0.9, 37);
  sim::ClusterConfig c = small_cluster(3);
  JobDataPresentScheduler jdp;
  sim::ExecutionEngine engine(c, w);
  SchedulerContext ctx{w, c, engine};
  std::vector<wl::TaskId> pending;
  for (const auto& t : w.tasks()) pending.push_back(t.id);
  sim::SubBatchPlan plan = jdp.plan_sub_batch(pending, ctx);
  EXPECT_FALSE(plan.prefetches.empty());
  EXPECT_EQ(jdp.eviction_policy(), sim::EvictionPolicy::kLru);
}

TEST(Driver, RejectsTaskLargerThanSmallestDisk) {
  // Up-front feasibility: one task's file set exceeds the smallest node's
  // disk, so run_batch must fail with the typed Section 4.2 error before
  // any engine work happens — not CHECK-abort in the eviction loop.
  wl::Workload w = small_workload(6, /*overlap=*/0.0, /*seed=*/3);
  sim::ClusterConfig c = small_cluster(2);
  double biggest_task = 0.0;
  for (const auto& t : w.tasks()) {
    double bytes = 0.0;
    for (wl::FileId f : t.files) bytes += w.file_size(f);
    biggest_task = std::max(biggest_task, bytes);
  }
  c.disk_capacity = biggest_task;
  c.disk_capacity_per_node = {biggest_task, 0.5 * biggest_task};

  MinMinScheduler mm;
  const BatchRunResult r = run_batch(mm, w, c);
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.error.find("must fit on one node"), std::string::npos)
      << r.error;
  EXPECT_EQ(r.tasks_stranded, w.num_tasks());
  EXPECT_EQ(r.stats.tasks_executed, 0u);

  // Growing the small disk back above the threshold clears the error.
  c.disk_capacity_per_node[1] = biggest_task;
  MinMinScheduler mm2;
  const BatchRunResult ok = run_batch(mm2, w, c);
  EXPECT_TRUE(ok.ok()) << ok.error;
}

}  // namespace
}  // namespace bsio::sched
