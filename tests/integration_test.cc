// Cross-module integration and property tests: every scheduler, on
// workload sweeps, must produce schedules whose simulated execution
// satisfies the physical invariants of the model — completeness, transfer
// conservation, and analytic lower bounds on the makespan.

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "core/batch_scheduler.h"
#include "sim/topology.h"
#include "workload/image.h"
#include "workload/stats.h"
#include "workload/synthetic.h"

namespace bsio::core {
namespace {

struct SweepParam {
  Algorithm algorithm;
  double overlap;
  bool limited_disk;
  bool osumed;
};

std::string param_name(const ::testing::TestParamInfo<SweepParam>& info) {
  const auto& p = info.param;
  std::string s = algorithm_name(p.algorithm);
  s += "_ov" + std::to_string(static_cast<int>(p.overlap * 100));
  s += p.limited_disk ? "_disk" : "_nodisk";
  s += p.osumed ? "_osumed" : "_xio";
  return s;
}

class SchedulerSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(SchedulerSweep, PhysicalInvariantsHold) {
  const SweepParam& p = GetParam();

  wl::SyntheticConfig cfg;
  cfg.num_tasks = 30;
  cfg.files_per_task = 4;
  cfg.overlap = p.overlap;
  cfg.file_size_bytes = 48.0 * sim::kMB;
  cfg.num_storage_nodes = 2;
  cfg.seed = 42;
  wl::Workload w = wl::make_synthetic(cfg);

  sim::ClusterConfig c =
      p.osumed ? sim::osumed_cluster(3, 2) : sim::xio_cluster(3, 2);
  if (p.limited_disk) c.disk_capacity = w.unique_request_bytes() / 2.0;

  RunOptions opts;
  opts.ip.selection_mip.time_limit_seconds = 2.0;
  opts.ip.allocation_mip.time_limit_seconds = 3.0;
  auto r = run_batch_scheduler(p.algorithm, w, c, opts);

  // Completeness.
  EXPECT_EQ(r.stats.tasks_executed, w.num_tasks());

  // Transfer conservation: each requested file crosses the storage
  // boundary at least once; replicas only exist if allowed.
  std::size_t requested = 0;
  double requested_bytes = 0.0;
  for (const auto& f : w.files())
    if (!w.tasks_of_file(f.id).empty()) {
      ++requested;
      requested_bytes += f.size_bytes;
    }
  EXPECT_GE(r.stats.remote_transfers, requested);
  EXPECT_GE(r.stats.remote_bytes, requested_bytes - 1.0);

  // Analytic lower bounds on the simulated makespan.
  double total_exec = 0.0;
  for (const auto& t : w.tasks())
    total_exec += t.compute_seconds +
                  [&] {
                    double b = 0.0;
                    for (wl::FileId f : t.files) b += w.file_size(f);
                    return b;
                  }() / c.local_disk_bw;
  EXPECT_GE(r.batch_time,
            total_exec / static_cast<double>(c.num_compute_nodes) - 1e-6)
      << "makespan below the compute lower bound";

  if (c.shared_uplink_bw > 0.0) {
    EXPECT_GE(r.batch_time, requested_bytes / c.shared_uplink_bw - 1e-6)
        << "makespan below the shared-uplink bound";
  }
  // Per-storage-port bound: every file leaves its home port at least once.
  const sim::Topology topo(c);
  for (wl::NodeId s = 0; s < c.num_storage_nodes; ++s) {
    double bytes = 0.0;
    for (const auto& f : w.files())
      if (!w.tasks_of_file(f.id).empty() && f.home_storage_node == s)
        bytes += f.size_bytes;
    EXPECT_GE(r.batch_time, bytes / topo.uniform_remote_bw() - 1e-6)
        << "makespan below storage port " << s << " bound";
  }

  // Eviction only happens under limited disk.
  if (!p.limited_disk) {
    EXPECT_EQ(r.stats.evictions, 0u);
    EXPECT_EQ(r.stats.restages, 0u);
  }
}

std::vector<SweepParam> sweep_params() {
  std::vector<SweepParam> out;
  for (Algorithm a : all_algorithms())
    for (double ov : {0.2, 0.7})
      for (bool disk : {false, true})
        for (bool osumed : {false, true})
          out.push_back({a, ov, disk, osumed});
  return out;
}

INSTANTIATE_TEST_SUITE_P(AllSchedulers, SchedulerSweep,
                         ::testing::ValuesIn(sweep_params()), param_name);

TEST(Integration, SchedulersAreDeterministic) {
  wl::SyntheticConfig cfg;
  cfg.num_tasks = 20;
  cfg.files_per_task = 3;
  cfg.overlap = 0.6;
  cfg.file_size_bytes = 32.0 * sim::kMB;
  cfg.num_storage_nodes = 2;
  cfg.seed = 7;
  wl::Workload w = wl::make_synthetic(cfg);
  sim::ClusterConfig c = sim::xio_cluster(2, 2);
  for (Algorithm a : all_algorithms()) {
    RunOptions opts;
    opts.ip.allocation_mip.time_limit_seconds = 1e9;  // node limit governs
    opts.ip.allocation_mip.max_nodes = 500;           // deterministic stop
    opts.ip.selection_mip.max_nodes = 500;
    SCOPED_TRACE(algorithm_name(a));
    auto r1 = run_batch_scheduler(a, w, c, opts);
    auto r2 = run_batch_scheduler(a, w, c, opts);
    EXPECT_DOUBLE_EQ(r1.batch_time, r2.batch_time);
    EXPECT_EQ(r1.stats.remote_transfers, r2.stats.remote_transfers);
    EXPECT_EQ(r1.stats.replications, r2.stats.replications);
  }
}

TEST(Integration, TighterDiskNeverReducesTransfers) {
  wl::SyntheticConfig cfg;
  cfg.num_tasks = 24;
  cfg.files_per_task = 4;
  cfg.overlap = 0.6;
  cfg.file_size_bytes = 64.0 * sim::kMB;
  cfg.num_storage_nodes = 2;
  cfg.seed = 13;
  wl::Workload w = wl::make_synthetic(cfg);

  auto transfers_with_disk = [&](double fraction) {
    sim::ClusterConfig c = sim::xio_cluster(2, 2);
    if (fraction < 1e9)
      c.disk_capacity = w.unique_request_bytes() * fraction;
    auto r = run_batch_scheduler(Algorithm::kBiPartition, w, c);
    return r.stats.remote_transfers + r.stats.replications;
  };
  std::size_t unlimited = transfers_with_disk(1e18);
  std::size_t tight = transfers_with_disk(0.4);
  EXPECT_GE(tight, unlimited);
}

TEST(Integration, HigherOverlapMeansFewerRemoteBytes) {
  auto remote_bytes = [&](double ov) {
    wl::SyntheticConfig cfg;
    cfg.num_tasks = 40;
    cfg.files_per_task = 4;
    cfg.overlap = ov;
    cfg.file_size_bytes = 32.0 * sim::kMB;
    cfg.num_storage_nodes = 2;
    cfg.seed = 19;
    wl::Workload w = wl::make_synthetic(cfg);
    auto r = run_batch_scheduler(Algorithm::kBiPartition, w,
                                 sim::xio_cluster(4, 2));
    return r.stats.remote_bytes;
  };
  EXPECT_LT(remote_bytes(0.8), remote_bytes(0.2));
}

}  // namespace
}  // namespace bsio::core
