#include <gtest/gtest.h>

#include <cmath>

#include "lp/model.h"
#include "lp/simplex.h"

namespace bsio::lp {
namespace {

TEST(Model, RowActivityAndFeasibility) {
  Model m;
  int x = m.add_var(1.0, 0.0, 10.0);
  int y = m.add_var(2.0, 0.0, 10.0);
  m.add_row(Sense::kLe, 5.0, {{x, 1.0}, {y, 1.0}});
  m.add_row(Sense::kGe, 1.0, {{x, 1.0}});
  EXPECT_DOUBLE_EQ(m.row_activity(0, {2.0, 3.0}), 5.0);
  EXPECT_TRUE(m.is_feasible({2.0, 3.0}));
  EXPECT_FALSE(m.is_feasible({0.0, 3.0}));  // violates row 1
  EXPECT_FALSE(m.is_feasible({4.0, 3.0}));  // violates row 0
  EXPECT_FALSE(m.is_feasible({2.0, 11.0}));  // violates bound
  EXPECT_DOUBLE_EQ(m.objective_value({2.0, 3.0}), 8.0);
}

TEST(Simplex, TrivialBoundsOnlyProblem) {
  // min x - y, 0 <= x <= 2, 0 <= y <= 3: optimum x=0, y=3.
  Model m;
  m.add_var(1.0, 0.0, 2.0);
  m.add_var(-1.0, 0.0, 3.0);
  DualSimplex s(m);
  auto r = s.solve();
  ASSERT_EQ(r.status, SolveStatus::kOptimal);
  EXPECT_DOUBLE_EQ(r.objective, -3.0);
  EXPECT_DOUBLE_EQ(s.value(0), 0.0);
  EXPECT_DOUBLE_EQ(s.value(1), 3.0);
}

TEST(Simplex, ClassicTwoVariableLp) {
  // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18, x,y >= 0
  // (Dantzig's example): optimum (2, 6), objective 36.
  Model m;
  int x = m.add_var(-3.0, 0.0, 100.0);
  int y = m.add_var(-5.0, 0.0, 100.0);
  m.add_row(Sense::kLe, 4.0, {{x, 1.0}});
  m.add_row(Sense::kLe, 12.0, {{y, 2.0}});
  m.add_row(Sense::kLe, 18.0, {{x, 3.0}, {y, 2.0}});
  DualSimplex s(m);
  auto r = s.solve();
  ASSERT_EQ(r.status, SolveStatus::kOptimal);
  EXPECT_NEAR(r.objective, -36.0, 1e-8);
  EXPECT_NEAR(s.value(x), 2.0, 1e-8);
  EXPECT_NEAR(s.value(y), 6.0, 1e-8);
}

TEST(Simplex, EqualityConstraints) {
  // min x + 2y + 3z s.t. x + y + z = 6, y + z >= 3, 0 <= all <= 4.
  // Optimum: x=3 is capped at 4... x + y + z = 6, prefer x big: x=4,
  // then y+z=2 but y+z>=3 -> x=3, y=3, z=0: obj 3 + 6 = 9.
  Model m;
  int x = m.add_var(1.0, 0.0, 4.0);
  int y = m.add_var(2.0, 0.0, 4.0);
  int z = m.add_var(3.0, 0.0, 4.0);
  m.add_row(Sense::kEq, 6.0, {{x, 1.0}, {y, 1.0}, {z, 1.0}});
  m.add_row(Sense::kGe, 3.0, {{y, 1.0}, {z, 1.0}});
  DualSimplex s(m);
  auto r = s.solve();
  ASSERT_EQ(r.status, SolveStatus::kOptimal);
  EXPECT_NEAR(r.objective, 9.0, 1e-8);
  EXPECT_NEAR(s.value(x), 3.0, 1e-8);
  EXPECT_NEAR(s.value(y), 3.0, 1e-8);
  EXPECT_NEAR(s.value(z), 0.0, 1e-8);
}

TEST(Simplex, DetectsInfeasibility) {
  Model m;
  int x = m.add_var(1.0, 0.0, 1.0);
  m.add_row(Sense::kGe, 2.0, {{x, 1.0}});  // x >= 2 impossible with x <= 1
  DualSimplex s(m);
  EXPECT_EQ(s.solve().status, SolveStatus::kInfeasible);
}

TEST(Simplex, InfeasibleSystemOfRows) {
  Model m;
  int x = m.add_var(0.0, 0.0, 10.0);
  int y = m.add_var(0.0, 0.0, 10.0);
  m.add_row(Sense::kLe, 3.0, {{x, 1.0}, {y, 1.0}});
  m.add_row(Sense::kGe, 5.0, {{x, 1.0}, {y, 1.0}});
  DualSimplex s(m);
  EXPECT_EQ(s.solve().status, SolveStatus::kInfeasible);
}

TEST(Simplex, WarmRestartAfterBoundChange) {
  // min -x - y s.t. x + y <= 10, x,y in [0, 8].
  Model m;
  int x = m.add_var(-1.0, 0.0, 8.0);
  int y = m.add_var(-1.0, 0.0, 8.0);
  m.add_row(Sense::kLe, 10.0, {{x, 1.0}, {y, 1.0}});
  DualSimplex s(m);
  auto r1 = s.solve();
  ASSERT_EQ(r1.status, SolveStatus::kOptimal);
  EXPECT_NEAR(r1.objective, -10.0, 1e-8);

  // Branch-style fixing: x = 0 -> optimum y = 8, objective -8.
  s.set_bounds(x, 0.0, 0.0);
  auto r2 = s.solve();
  ASSERT_EQ(r2.status, SolveStatus::kOptimal);
  EXPECT_NEAR(r2.objective, -8.0, 1e-8);
  EXPECT_NEAR(s.value(x), 0.0, 1e-10);

  // Relax back -> original optimum returns.
  s.set_bounds(x, 0.0, 8.0);
  auto r3 = s.solve();
  ASSERT_EQ(r3.status, SolveStatus::kOptimal);
  EXPECT_NEAR(r3.objective, -10.0, 1e-8);
}

TEST(Simplex, DegenerateRhsStillSolves) {
  // Multiple redundant constraints through the same vertex.
  Model m;
  int x = m.add_var(-1.0, 0.0, 5.0);
  int y = m.add_var(-1.0, 0.0, 5.0);
  m.add_row(Sense::kLe, 4.0, {{x, 1.0}, {y, 1.0}});
  m.add_row(Sense::kLe, 4.0, {{x, 1.0}, {y, 1.0}});
  m.add_row(Sense::kLe, 8.0, {{x, 2.0}, {y, 2.0}});
  DualSimplex s(m);
  auto r = s.solve();
  ASSERT_EQ(r.status, SolveStatus::kOptimal);
  EXPECT_NEAR(r.objective, -4.0, 1e-8);
}

TEST(Simplex, MinMaxLinearisationShape) {
  // The IP model's core shape: min z s.t. z >= load_i, with loads driven by
  // assignment-like variables. 3 items of size {3, 2, 1} onto 2 machines:
  // LP relaxation splits fractionally -> z = 3 (total/2).
  Model m;
  int z = m.add_var(1.0, 0.0, 100.0);
  double sizes[3] = {3.0, 2.0, 1.0};
  int t[3][2];
  for (int i = 0; i < 3; ++i)
    for (int j = 0; j < 2; ++j) t[i][j] = m.add_var(0.0, 0.0, 1.0);
  for (int i = 0; i < 3; ++i)
    m.add_row(Sense::kEq, 1.0, {{t[i][0], 1.0}, {t[i][1], 1.0}});
  for (int j = 0; j < 2; ++j) {
    std::vector<RowEntry> row{{z, -1.0}};
    for (int i = 0; i < 3; ++i) row.push_back({t[i][j], sizes[i]});
    m.add_row(Sense::kLe, 0.0, std::move(row));
  }
  DualSimplex s(m);
  auto r = s.solve();
  ASSERT_EQ(r.status, SolveStatus::kOptimal);
  EXPECT_NEAR(r.objective, 3.0, 1e-8);
}

TEST(Simplex, LargerRandomLpAgainstActivityCheck) {
  // Random feasible LP: verify the reported optimum is primal feasible and
  // not worse than a known feasible point.
  Model m;
  const int n = 30;
  std::vector<int> vars;
  for (int i = 0; i < n; ++i)
    vars.push_back(m.add_var((i % 5) - 2.0, 0.0, 1.0));
  for (int r = 0; r < 20; ++r) {
    std::vector<RowEntry> row;
    for (int i = r % 3; i < n; i += 3)
      row.push_back({vars[i], 1.0 + (i % 4)});
    m.add_row(Sense::kLe, 6.0, std::move(row));
  }
  DualSimplex s(m);
  auto r = s.solve();
  ASSERT_EQ(r.status, SolveStatus::kOptimal);
  auto x = s.values();
  EXPECT_TRUE(m.is_feasible(x, 1e-6));
  EXPECT_LE(r.objective, m.objective_value(std::vector<double>(n, 0.0)) + 1e-9);
}

}  // namespace
}  // namespace bsio::lp
