#include <gtest/gtest.h>

#include <cmath>

#include "sim/cluster.h"
#include "sim/topology.h"
#include "sim/engine.h"
#include "sim/plan.h"
#include "sim/state.h"
#include "sim/timeline.h"
#include "workload/synthetic.h"

namespace bsio::sim {
namespace {

TEST(Timeline, ReserveAndQueryGaps) {
  Timeline tl;
  EXPECT_DOUBLE_EQ(tl.earliest_free(0.0, 5.0), 0.0);
  tl.reserve(0.0, 10.0);
  EXPECT_DOUBLE_EQ(tl.horizon(), 10.0);
  EXPECT_DOUBLE_EQ(tl.earliest_free(0.0, 5.0), 10.0);
  tl.reserve(20.0, 5.0);
  // Gap [10, 20) fits 10 but not 11.
  EXPECT_DOUBLE_EQ(tl.earliest_free(0.0, 10.0), 10.0);
  EXPECT_DOUBLE_EQ(tl.earliest_free(0.0, 11.0), 25.0);
  EXPECT_DOUBLE_EQ(tl.earliest_free(12.0, 5.0), 12.0);
  tl.reserve(10.0, 10.0);  // fill the gap exactly
  tl.validate();
  EXPECT_DOUBLE_EQ(tl.busy_time(), 25.0);
}

TEST(Timeline, ZeroDurationIsNoop) {
  Timeline tl;
  tl.reserve(5.0, 0.0);
  EXPECT_EQ(tl.num_reservations(), 0u);
}

TEST(Timeline, EarliestCommonFree) {
  Timeline a, b;
  a.reserve(0.0, 10.0);
  b.reserve(12.0, 10.0);
  // Need 2 units free on both: a free from 10, b busy [12,22) -> common at
  // 10 only if 10+2 <= 12: exactly fits.
  std::vector<const Timeline*> tls{&a, &b};
  EXPECT_DOUBLE_EQ(earliest_common_free(tls, 0.0, 2.0), 10.0);
  EXPECT_DOUBLE_EQ(earliest_common_free(tls, 0.0, 3.0), 22.0);
  // Null entries are ignored.
  std::vector<const Timeline*> with_null{&a, nullptr, &b};
  EXPECT_DOUBLE_EQ(earliest_common_free(with_null, 0.0, 2.0), 10.0);
}

TEST(ClusterState, AddRemoveHolders) {
  ClusterState st(3, 100.0);
  EXPECT_FALSE(st.has(0, 7));
  st.add(0, 7, 40.0, 5.0);
  st.add(2, 7, 40.0, 9.0);
  EXPECT_TRUE(st.has(0, 7));
  EXPECT_DOUBLE_EQ(st.available_at(2, 7), 9.0);
  EXPECT_EQ(st.num_copies(7), 2u);
  EXPECT_EQ(st.holders(7), (std::vector<wl::NodeId>{0, 2}));
  EXPECT_DOUBLE_EQ(st.used_bytes(0), 40.0);
  st.remove(0, 7, 40.0);
  EXPECT_FALSE(st.has(0, 7));
  EXPECT_DOUBLE_EQ(st.used_bytes(0), 0.0);
}

TEST(ClusterState, PopularityEvictionOrder) {
  // Eq. 22: popularity = freq * size / copies; lowest evicted first.
  ClusterState st(2, 1000.0);
  st.add(0, 1, 100.0, 0.0);  // freq 1 -> pop 100
  st.add(0, 2, 100.0, 0.0);  // freq 5 -> pop 500
  st.add(0, 3, 10.0, 0.0);   // freq 9 -> pop 90
  st.add(1, 2, 100.0, 0.0);  // second copy of 2 -> pop 250
  auto freq = [](wl::FileId f) { return f == 1 ? 1.0 : (f == 2 ? 5.0 : 9.0); };
  auto size = [](wl::FileId f) { return f == 3 ? 10.0 : 100.0; };
  auto victims = st.select_victims(0, 105.0, {}, EvictionPolicy::kPopularity,
                                   freq, size);
  // Order: 3 (90), 1 (100) -> 110 freed >= 105.
  ASSERT_EQ(victims.size(), 2u);
  EXPECT_EQ(victims[0], 3u);
  EXPECT_EQ(victims[1], 1u);
}

TEST(ClusterState, LruEvictionOrderAndPinning) {
  ClusterState st(1, 1000.0);
  st.add(0, 1, 100.0, 0.0);
  st.add(0, 2, 100.0, 0.0);
  st.add(0, 3, 100.0, 0.0);
  st.touch(0, 1, 50.0);
  st.touch(0, 2, 20.0);
  auto one = [](wl::FileId) { return 1.0; };
  auto size = [](wl::FileId) { return 100.0; };
  auto victims =
      st.select_victims(0, 100.0, {3}, EvictionPolicy::kLru, one, size);
  ASSERT_EQ(victims.size(), 1u);
  EXPECT_EQ(victims[0], 2u);  // 3 pinned, 2 older than 1
}

TEST(ClusterState, VictimSelectionFailsWhenPinnedBlocksAll) {
  ClusterState st(1, 100.0);
  st.add(0, 1, 100.0, 0.0);
  auto one = [](wl::FileId) { return 1.0; };
  auto size = [](wl::FileId) { return 100.0; };
  EXPECT_TRUE(
      st.select_victims(0, 50.0, {1}, EvictionPolicy::kLru, one, size)
          .empty());
}

// --- Engine tests on tiny hand-checkable workloads. ---

wl::Workload tiny_workload(std::size_t tasks, std::size_t files_per_task,
                           double overlap, std::uint64_t seed = 1) {
  wl::SyntheticConfig cfg;
  cfg.num_tasks = tasks;
  cfg.files_per_task = files_per_task;
  cfg.overlap = overlap;
  cfg.file_size_bytes = 100.0 * kMB;
  cfg.num_storage_nodes = 2;
  cfg.seed = seed;
  return wl::make_synthetic(cfg);
}

ClusterConfig tiny_cluster() {
  ClusterConfig c;
  c.num_compute_nodes = 2;
  c.num_storage_nodes = 2;
  c.storage_disk_bw = 100.0 * kMB;   // remote: 1 s per 100 MB file
  c.storage_net_bw = 1000.0 * kMB;
  c.compute_net_bw = 400.0 * kMB;    // replica: 0.25 s per file
  c.local_disk_bw = 1000.0 * kMB;
  return c;
}

SubBatchPlan all_on(const wl::Workload& w, wl::NodeId node) {
  SubBatchPlan p;
  for (const auto& t : w.tasks()) {
    p.tasks.push_back(t.id);
    p.assignment[t.id] = node;
  }
  return p;
}

TEST(Engine, SingleTaskTiming) {
  // One task, one 100 MB file: remote 1 s + local read 0.1 s + compute.
  std::vector<wl::FileInfo> files(1);
  files[0].size_bytes = 100.0 * kMB;
  files[0].home_storage_node = 0;
  std::vector<wl::TaskInfo> tasks(1);
  tasks[0].files = {0};
  tasks[0].compute_seconds = 2.0;
  wl::Workload w(std::move(tasks), std::move(files));

  ExecutionEngine eng(tiny_cluster(), w);
  auto stats = eng.execute(all_on(w, 0)).value();
  EXPECT_EQ(stats.tasks_executed, 1u);
  EXPECT_EQ(stats.remote_transfers, 1u);
  EXPECT_EQ(stats.replications, 0u);
  EXPECT_NEAR(eng.makespan(), 1.0 + 0.1 + 2.0, 1e-9);
}

TEST(Engine, SharedFileIsTransferredOnceToSameNode) {
  // Two tasks on the same node sharing one file: one remote transfer.
  std::vector<wl::FileInfo> files(1);
  files[0].size_bytes = 100.0 * kMB;
  files[0].home_storage_node = 0;
  std::vector<wl::TaskInfo> tasks(2);
  tasks[0].files = {0};
  tasks[1].files = {0};
  wl::Workload w(std::move(tasks), std::move(files));

  ExecutionEngine eng(tiny_cluster(), w);
  auto stats = eng.execute(all_on(w, 0)).value();
  EXPECT_EQ(stats.remote_transfers, 1u);
  EXPECT_EQ(stats.cache_hits, 1u);
}

TEST(Engine, ReplicationBeatsSecondRemoteTransfer) {
  // Two tasks on different nodes sharing one file. The second node should
  // replicate (0.25 s) from the first rather than re-fetch remotely (1 s),
  // because the engine's dynamic rule picks the faster source.
  std::vector<wl::FileInfo> files(1);
  files[0].size_bytes = 100.0 * kMB;
  files[0].home_storage_node = 0;
  std::vector<wl::TaskInfo> tasks(2);
  tasks[0].files = {0};
  tasks[1].files = {0};
  wl::Workload w(std::move(tasks), std::move(files));

  SubBatchPlan p;
  p.tasks = {0, 1};
  p.assignment[0] = 0;
  p.assignment[1] = 1;

  ExecutionEngine eng(tiny_cluster(), w);
  auto stats = eng.execute(p).value();
  EXPECT_EQ(stats.remote_transfers, 1u);
  EXPECT_EQ(stats.replications, 1u);
  EXPECT_GT(stats.replica_bytes, 0.0);
}

TEST(Engine, NoReplicationFlagForcesRemote) {
  std::vector<wl::FileInfo> files(1);
  files[0].size_bytes = 100.0 * kMB;
  files[0].home_storage_node = 0;
  std::vector<wl::TaskInfo> tasks(2);
  tasks[0].files = {0};
  tasks[1].files = {0};
  wl::Workload w(std::move(tasks), std::move(files));

  SubBatchPlan p;
  p.tasks = {0, 1};
  p.assignment[0] = 0;
  p.assignment[1] = 1;

  ClusterConfig c = tiny_cluster();
  c.allow_replication = false;
  ExecutionEngine eng(c, w);
  auto stats = eng.execute(p).value();
  EXPECT_EQ(stats.remote_transfers, 2u);
  EXPECT_EQ(stats.replications, 0u);
}

TEST(Engine, FixedStagingDirectiveIsHonoured) {
  // Force the second node to use a remote transfer even though a replica
  // would be faster (IP plans fix sources statically).
  std::vector<wl::FileInfo> files(1);
  files[0].size_bytes = 100.0 * kMB;
  files[0].home_storage_node = 0;
  std::vector<wl::TaskInfo> tasks(2);
  tasks[0].files = {0};
  tasks[1].files = {0};
  wl::Workload w(std::move(tasks), std::move(files));

  SubBatchPlan p;
  p.tasks = {0, 1};
  p.assignment[0] = 0;
  p.assignment[1] = 1;
  p.staging[{0u, 0u}] = {SourceKind::kRemote, wl::kInvalidNode};
  p.staging[{0u, 1u}] = {SourceKind::kRemote, wl::kInvalidNode};

  ExecutionEngine eng(tiny_cluster(), w);
  auto stats = eng.execute(p).value();
  EXPECT_EQ(stats.remote_transfers, 2u);
  EXPECT_EQ(stats.replications, 0u);
}

TEST(Engine, StorageContentionSerialisesTransfers) {
  // Two tasks on different nodes, distinct files on the SAME storage node:
  // the single-port model serialises the two 1 s transfers.
  std::vector<wl::FileInfo> files(2);
  for (auto& f : files) {
    f.size_bytes = 100.0 * kMB;
    f.home_storage_node = 0;
  }
  std::vector<wl::TaskInfo> tasks(2);
  tasks[0].files = {0};
  tasks[1].files = {1};
  wl::Workload w(std::move(tasks), std::move(files));

  SubBatchPlan p;
  p.tasks = {0, 1};
  p.assignment[0] = 0;
  p.assignment[1] = 1;

  ExecutionEngine eng(tiny_cluster(), w);
  ASSERT_TRUE(eng.execute(p).ok());
  // Second transfer starts at 1.0; completes 2.0; + 0.1 read.
  EXPECT_NEAR(eng.makespan(), 2.1, 1e-9);
  eng.storage_timeline(0).validate();
}

TEST(Engine, EvictionTriggersWhenDiskIsTight) {
  // Disk holds exactly one 100 MB file; two tasks on the same node with
  // different files force an eviction.
  std::vector<wl::FileInfo> files(2);
  for (auto& f : files) {
    f.size_bytes = 100.0 * kMB;
    f.home_storage_node = 0;
  }
  std::vector<wl::TaskInfo> tasks(2);
  tasks[0].files = {0};
  tasks[1].files = {1};
  wl::Workload w(std::move(tasks), std::move(files));

  ClusterConfig c = tiny_cluster();
  c.disk_capacity = 100.0 * kMB;
  ExecutionEngine eng(c, w);
  auto stats = eng.execute(all_on(w, 0)).value();
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.remote_transfers, 2u);
}

TEST(Engine, RestageCountsEvictedFileFetchedAgain) {
  // File 0 is needed by tasks 1 and 3; file 1 (task 2) evicts it in
  // between, so file 0 is staged twice.
  std::vector<wl::FileInfo> files(2);
  for (auto& f : files) {
    f.size_bytes = 100.0 * kMB;
    f.home_storage_node = 0;
  }
  std::vector<wl::TaskInfo> tasks(3);
  tasks[0].files = {0};
  tasks[1].files = {1};
  tasks[2].files = {0};
  // In one sub-batch the ECT rule would smartly run the two file-0 tasks
  // back to back; split into two sub-batches to force the interleaving.
  wl::Workload w(std::move(tasks), std::move(files));

  ClusterConfig c = tiny_cluster();
  c.disk_capacity = 100.0 * kMB;
  EngineOptions lru_opts;
  lru_opts.eviction = EvictionPolicy::kLru;
  ExecutionEngine eng(c, w, lru_opts);
  SubBatchPlan p1;
  p1.tasks = {0, 1};
  p1.assignment[0] = 0;
  p1.assignment[1] = 0;
  SubBatchPlan p2;
  p2.tasks = {2};
  p2.assignment[2] = 0;
  auto s1 = eng.execute(p1).value();
  auto s2 = eng.execute(p2).value();
  EXPECT_EQ(s1.remote_transfers, 2u);
  EXPECT_EQ(s1.evictions, 1u);  // file 0 evicted to admit file 1
  EXPECT_EQ(s2.evictions, 1u);  // file 1 evicted to re-admit file 0
  EXPECT_EQ(s2.remote_transfers + s2.replications, 1u);
  EXPECT_EQ(s2.restages, 1u);  // file 0 staged again after eviction
}

TEST(Engine, MakespanMonotonicAcrossSubBatches) {
  wl::Workload w = tiny_workload(12, 3, 0.5);
  ExecutionEngine eng(tiny_cluster(), w);
  SubBatchPlan p1, p2;
  for (wl::TaskId t = 0; t < 6; ++t) {
    p1.tasks.push_back(t);
    p1.assignment[t] = t % 2;
  }
  for (wl::TaskId t = 6; t < 12; ++t) {
    p2.tasks.push_back(t);
    p2.assignment[t] = t % 2;
  }
  ASSERT_TRUE(eng.execute(p1).ok());
  double m1 = eng.makespan();
  ASSERT_TRUE(eng.execute(p2).ok());
  EXPECT_GE(eng.makespan(), m1);
  EXPECT_EQ(eng.totals().tasks_executed, 12u);
}

TEST(Engine, EveryRequestedFileRemotelyTransferredAtLeastOnce) {
  wl::Workload w = tiny_workload(20, 4, 0.6, 7);
  ExecutionEngine eng(tiny_cluster(), w);
  SubBatchPlan p = all_on(w, 0);
  for (auto& [t, n] : p.assignment) n = t % 2;
  auto stats = eng.execute(p).value();
  std::size_t requested = 0;
  for (const auto& f : w.files())
    if (!w.tasks_of_file(f.id).empty()) ++requested;
  EXPECT_GE(stats.remote_transfers, requested);
}

TEST(Engine, PendingRequestsDrainToZero) {
  wl::Workload w = tiny_workload(10, 3, 0.4, 3);
  ExecutionEngine eng(tiny_cluster(), w);
  SubBatchPlan p = all_on(w, 0);
  ASSERT_TRUE(eng.execute(p).ok());
  for (const auto& f : w.files())
    EXPECT_DOUBLE_EQ(eng.pending_requests(f.id), 0.0);
}

TEST(Engine, TimelinesNeverOverlap) {
  wl::Workload w = tiny_workload(30, 4, 0.7, 11);
  ClusterConfig c = tiny_cluster();
  c.disk_capacity = 500.0 * kMB;
  ExecutionEngine eng(c, w);
  SubBatchPlan p = all_on(w, 0);
  for (auto& [t, n] : p.assignment) n = t % 2;
  ASSERT_TRUE(eng.execute(p).ok());
  for (std::size_t s = 0; s < c.num_storage_nodes; ++s)
    eng.storage_timeline(s).validate();
  for (std::size_t n = 0; n < c.num_compute_nodes; ++n)
    eng.compute_timeline(n).validate();
}

TEST(Cluster, Presets) {
  ClusterConfig xio = xio_cluster(4, 4);
  EXPECT_DOUBLE_EQ(Topology(xio).uniform_remote_bw(), 210.0 * kMB);
  ClusterConfig osumed = osumed_cluster(8, 4);
  Topology osumed_topo(osumed);
  EXPECT_DOUBLE_EQ(osumed_topo.uniform_remote_bw(), 12.5 * kMB);
  EXPECT_EQ(osumed.num_compute_nodes, 8u);
  EXPECT_GT(osumed_topo.uniform_replica_bw(), osumed_topo.uniform_remote_bw());
  EXPECT_TRUE(xio.validate().ok());
  EXPECT_TRUE(osumed.validate().ok());
}

}  // namespace
}  // namespace bsio::sim
