// Tests for the parallel scheduling core: the WsRuntime determinism
// contract, the O(1) replica-presence index, the exec-time scratch, the
// O(1)-removal exact MinMin loop (against a reimplementation of the
// historical erase-based path), lazy-vs-exact MinMin equivalence, and
// parallel-vs-sequential plan bit-identity across all four schedulers.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <limits>
#include <memory>
#include <vector>

#include "sched/bipartition.h"
#include "sched/cost_model.h"
#include "sched/driver.h"
#include "sched/ip_scheduler.h"
#include "sched/job_data_present.h"
#include "sched/minmin.h"
#include "sim/cluster.h"
#include "sim/engine.h"
#include "sim/topology.h"
#include "util/rng.h"
#include "util/ws_runtime.h"
#include "workload/synthetic.h"

namespace bsio::sched {
namespace {

wl::Workload test_workload(std::size_t tasks, std::uint64_t seed,
                           double overlap = 0.7) {
  wl::SyntheticConfig cfg;
  cfg.num_tasks = tasks;
  cfg.files_per_task = 4;
  cfg.overlap = overlap;
  cfg.file_size_bytes = 64.0 * sim::kMB;
  cfg.file_size_jitter = 0.3;
  cfg.num_storage_nodes = 2;
  cfg.seed = seed;
  return wl::make_synthetic(cfg);
}

sim::ClusterConfig test_cluster(std::size_t compute = 4) {
  sim::ClusterConfig c;
  c.num_compute_nodes = compute;
  c.num_storage_nodes = 2;
  c.storage_disk_bw = 50.0 * sim::kMB;
  c.storage_net_bw = 500.0 * sim::kMB;
  c.compute_net_bw = 400.0 * sim::kMB;
  c.local_disk_bw = 200.0 * sim::kMB;
  return c;
}

std::vector<wl::TaskId> all_tasks(const wl::Workload& w) {
  std::vector<wl::TaskId> out;
  for (const auto& t : w.tasks()) out.push_back(t.id);
  return out;
}

bool plans_equal(const sim::SubBatchPlan& a, const sim::SubBatchPlan& b) {
  if (a.tasks != b.tasks) return false;
  if (a.assignment.size() != b.assignment.size()) return false;
  for (const auto& [t, n] : a.assignment) {
    auto it = b.assignment.find(t);
    if (it == b.assignment.end() || it->second != n) return false;
  }
  return a.prefetches == b.prefetches;
}

// ---------------------------------------------------------------- WsRuntime

TEST(WsRuntime, CoversEveryIndexExactlyOnce) {
  WsRuntime pool(4);
  EXPECT_EQ(pool.num_threads(), 4u);
  for (std::size_t n : {0u, 1u, 3u, 7u, 64u, 1000u}) {
    std::vector<std::atomic<int>> hits(n);
    for (auto& h : hits) h = 0;
    pool.parallel_for_each(n, [&](std::size_t i) { ++hits[i]; });
    for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
  }
}

TEST(WsRuntime, SingleWsRuntimeRunsInline) {
  WsRuntime pool(1);
  EXPECT_EQ(pool.num_threads(), 1u);
  std::vector<int> out(100, 0);
  pool.parallel_for_each(out.size(), [&](std::size_t i) {
    out[i] = static_cast<int>(i) * 3;
  });
  for (std::size_t i = 0; i < out.size(); ++i)
    EXPECT_EQ(out[i], static_cast<int>(i) * 3);
}

TEST(WsRuntime, NestedParallelForDegradesToInline) {
  WsRuntime pool(4);
  const std::size_t n = 32, m = 16;
  std::vector<int> out(n * m, 0);
  pool.parallel_for_each(n, [&](std::size_t i) {
    pool.parallel_for_each(m, [&](std::size_t j) {
      out[i * m + j] = static_cast<int>(i * m + j);
    });
  });
  for (std::size_t k = 0; k < n * m; ++k)
    EXPECT_EQ(out[k], static_cast<int>(k));
}

TEST(WsRuntime, ReusableAcrossManyLoops) {
  WsRuntime pool(3);
  std::vector<std::size_t> acc(64, 0);
  for (int round = 0; round < 200; ++round)
    pool.parallel_for_each(acc.size(), [&](std::size_t i) { ++acc[i]; });
  for (std::size_t v : acc) EXPECT_EQ(v, 200u);
}

// ------------------------------------------------------------ PlannerState

TEST(PlannerState, PresenceIndexMatchesHolderLists) {
  const wl::Workload w = test_workload(40, 11);
  const sim::ClusterConfig c = test_cluster(5);
  sim::ExecutionEngine engine(c, w);
  PlannerState ps(w, engine.topology(), engine.state());

  Rng rng(3);
  for (int i = 0; i < 200; ++i)
    ps.add_planned(static_cast<wl::FileId>(rng.uniform(w.num_files())),
                   static_cast<wl::NodeId>(rng.uniform(c.num_compute_nodes)),
                   rng.uniform_double(0.0, 100.0));

  for (wl::FileId f = 0; f < w.num_files(); ++f) {
    for (wl::NodeId n = 0; n < c.num_compute_nodes; ++n) {
      bool in_list = false;
      for (const auto& [node, avail] : ps.planned[f])
        if (node == n) in_list = true;
      EXPECT_EQ(ps.on_node(f, n), in_list) << "f=" << f << " n=" << n;
    }
    // No duplicate holders despite repeated add_planned calls.
    for (std::size_t a = 0; a < ps.planned[f].size(); ++a)
      for (std::size_t b = a + 1; b < ps.planned[f].size(); ++b)
        EXPECT_NE(ps.planned[f][a].first, ps.planned[f][b].first);
  }

  // node_files is the exact transpose of planned.
  std::size_t planned_entries = 0, node_entries = 0;
  for (wl::FileId f = 0; f < w.num_files(); ++f)
    planned_entries += ps.planned[f].size();
  for (wl::NodeId n = 0; n < c.num_compute_nodes; ++n) {
    node_entries += ps.node_files[n].size();
    for (wl::FileId f : ps.node_files[n]) EXPECT_TRUE(ps.on_node(f, n));
  }
  EXPECT_EQ(planned_entries, node_entries);
}

TEST(PlannerState, EpochResetReusesBuffersAcrossWorkloads) {
  const sim::ClusterConfig c = test_cluster(3);
  PlannerState ps;
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    const wl::Workload w = test_workload(20 + 5 * seed, seed);
    sim::ExecutionEngine engine(c, w);
    ps.reset(w, engine.topology(), engine.state());
    // Fresh state: nothing planned on compute nodes beyond current holders
    // (empty engine cache => nothing at all).
    for (wl::FileId f = 0; f < w.num_files(); ++f) {
      EXPECT_TRUE(ps.planned[f].empty());
      for (wl::NodeId n = 0; n < c.num_compute_nodes; ++n)
        EXPECT_FALSE(ps.on_node(f, n));
    }
    ps.add_planned(0, 1, 5.0);
    EXPECT_TRUE(ps.on_node(0, 1));
  }
}

// -------------------------------------------------------------- Cost model

TEST(CostModel, ScratchedExecTimesMatchFresh) {
  const wl::Workload w = test_workload(30, 17);
  const sim::ClusterConfig c = test_cluster();
  const auto tasks = all_tasks(w);

  const sim::Topology topo(c);
  const auto fresh = probabilistic_exec_times(w, tasks, topo);
  ExecTimeScratch scratch;
  // Repeated calls through one scratch must all match (the scratch must be
  // left clean between calls).
  for (int i = 0; i < 3; ++i) {
    const auto scratched = probabilistic_exec_times(w, tasks, topo, &scratch);
    ASSERT_EQ(scratched.size(), fresh.size());
    for (std::size_t j = 0; j < fresh.size(); ++j)
      EXPECT_EQ(scratched[j], fresh[j]) << j;
  }
  // And a different sub-batch through the same scratch.
  std::vector<wl::TaskId> half(tasks.begin(), tasks.begin() + 15);
  const auto a = probabilistic_exec_times(w, half, topo);
  const auto b = probabilistic_exec_times(w, half, topo, &scratch);
  EXPECT_EQ(a, b);
}

TEST(CostModel, CompletionTimeMatchesFullEstimateBitwise) {
  const wl::Workload w = test_workload(25, 23);
  const sim::ClusterConfig c = test_cluster(4);
  sim::ExecutionEngine engine(c, w);
  const sim::Topology& topo = engine.topology();
  PlannerState ps(w, topo, engine.state());

  // Interleave applies and comparisons so replica holders accumulate.
  Rng rng(9);
  for (int step = 0; step < 50; ++step) {
    const auto task = static_cast<wl::TaskId>(rng.uniform(w.num_tasks()));
    const auto node = static_cast<wl::NodeId>(rng.uniform(c.num_compute_nodes));
    const CompletionEstimate full = estimate_completion(w, topo, ps, task, node);
    const double fast = estimate_completion_time(w, topo, ps, task, node);
    EXPECT_EQ(full.completion, fast) << "step " << step;
    if (step % 5 == 0) apply_assignment(w, topo, ps, task, node, full);
  }
}

// ------------------------------------------------------------------ MinMin

// The historical exact MinMin loop, verbatim: full (task x node) rescan per
// round with the O(T) vector erase. The production path must match it plan
// for plan.
sim::SubBatchPlan legacy_exact_minmin(const wl::Workload& w,
                                      const sim::ClusterConfig& c,
                                      const sim::ExecutionEngine& engine,
                                      const std::vector<wl::TaskId>& pending) {
  const sim::Topology& topo = engine.topology();
  PlannerState ps(w, topo, engine.state());
  std::vector<wl::NodeId> nodes;
  for (wl::NodeId n = 0; n < c.num_compute_nodes; ++n) nodes.push_back(n);

  sim::SubBatchPlan plan;
  std::vector<wl::TaskId> todo = pending;
  while (!todo.empty()) {
    double best_ct = std::numeric_limits<double>::infinity();
    std::size_t best_i = 0;
    wl::NodeId best_node = nodes.front();
    CompletionEstimate best_est;
    for (std::size_t i = 0; i < todo.size(); ++i) {
      for (wl::NodeId n : nodes) {
        CompletionEstimate est = estimate_completion(w, topo, ps, todo[i], n);
        const bool first = std::isinf(best_ct);
        const double tol = first ? 0.0 : 1e-9 * (1.0 + best_ct);
        const bool better =
            first || est.completion < best_ct - tol ||
            (est.completion < best_ct + tol &&
             ps.node_ready[n] < ps.node_ready[best_node] - 1e-12);
        if (better) {
          best_ct = est.completion;
          best_i = i;
          best_node = n;
          best_est = std::move(est);
        }
      }
    }
    const wl::TaskId task = todo[best_i];
    apply_assignment(w, topo, ps, task, best_node, best_est);
    plan.tasks.push_back(task);
    plan.assignment[task] = best_node;
    todo.erase(todo.begin() + best_i);
  }
  return plan;
}

TEST(MinMin, ExactPathMatchesLegacyEraseReference) {
  WsRuntime::set_global_threads(2);
  for (std::uint64_t seed : {1u, 5u, 9u, 42u}) {
    const wl::Workload w = test_workload(36, seed);
    const sim::ClusterConfig c = test_cluster(4);
    sim::ExecutionEngine engine(c, w);
    SchedulerContext ctx{w, c, engine};

    MinMinScheduler exact(/*exact_threshold=*/1u << 20);
    const sim::SubBatchPlan got = exact.plan_sub_batch(all_tasks(w), ctx);
    const sim::SubBatchPlan want =
        legacy_exact_minmin(w, c, engine, all_tasks(w));
    EXPECT_TRUE(plans_equal(got, want)) << "seed " << seed;
  }
}

TEST(MinMin, LazyHeapMatchesExactOnDisjointWorkloads) {
  WsRuntime::set_global_threads(2);
  // With no file sharing, committing one task never lowers another task's
  // MCT (port readies only grow), so the lazy heap's stale-check converges
  // on exactly the assignment the full rescan picks: plans must be equal.
  for (std::uint64_t seed : {2u, 7u, 13u, 21u}) {
    const wl::Workload w = test_workload(48, seed, /*overlap=*/0.0);
    const sim::ClusterConfig c = test_cluster(4);
    sim::ExecutionEngine engine(c, w);
    SchedulerContext ctx{w, c, engine};

    MinMinScheduler exact(/*exact_threshold=*/1u << 20);
    MinMinScheduler lazy(/*exact_threshold=*/0);
    const sim::SubBatchPlan pe = exact.plan_sub_batch(all_tasks(w), ctx);
    const sim::SubBatchPlan pl = lazy.plan_sub_batch(all_tasks(w), ctx);
    EXPECT_TRUE(plans_equal(pe, pl)) << "seed " << seed;
  }
}

TEST(MinMin, LazyHeapNearExactOnSharedWorkloads) {
  WsRuntime::set_global_threads(2);
  // With batch-shared files a committed replica can *lower* other tasks'
  // MCTs, which the lazy heap's grow-only staleness check cannot see; the
  // commit order (and occasionally an assignment) may then differ from the
  // exact rescan. The deviation must stay negligible: same task coverage
  // and a simulated makespan within 2% on every seeded workload.
  for (std::uint64_t seed : {2u, 7u, 13u, 21u}) {
    const wl::Workload w = test_workload(48, seed, /*overlap=*/0.6);
    const sim::ClusterConfig c = test_cluster(4);

    MinMinScheduler exact(/*exact_threshold=*/1u << 20);
    MinMinScheduler lazy(/*exact_threshold=*/0);
    const BatchRunResult re = run_batch(exact, w, c);
    const BatchRunResult rl = run_batch(lazy, w, c);
    ASSERT_TRUE(re.ok()) << re.error;
    ASSERT_TRUE(rl.ok()) << rl.error;
    EXPECT_EQ(re.stats.tasks_executed, w.num_tasks());
    EXPECT_EQ(rl.stats.tasks_executed, w.num_tasks());
    EXPECT_NEAR(rl.batch_time, re.batch_time, 0.02 * re.batch_time)
        << "seed " << seed;
  }
}

TEST(MinMin, BoundedStalenessNearUnbounded) {
  WsRuntime::set_global_threads(2);
  // A finite stale-retry budget truncates the refresh cascade between
  // commits (the quadratic term of the scale regime: every commit perturbs
  // the shared ports, invalidating every competing task's cached key). The
  // committed candidate is then the best of the refreshed beam instead of
  // the global fresh minimum; task coverage must be unaffected and the
  // simulated makespan must stay in the unbounded plan's neighbourhood.
  // The tolerance is looser than LazyHeapNearExactOnSharedWorkloads': at
  // 48 tasks a single reordered commit moves the makespan a few percent,
  // noise that washes out at the 10k+ scale the budget exists for (0.2%
  // there, measured in EXPERIMENTS.md).
  for (std::uint64_t seed : {2u, 7u, 13u, 21u}) {
    const wl::Workload w = test_workload(48, seed, /*overlap=*/0.6);
    const sim::ClusterConfig c = test_cluster(4);

    MinMinScheduler unbounded(/*exact_threshold=*/0);
    MinMinScheduler bounded(/*exact_threshold=*/0, /*stale_retry_budget=*/4);
    const BatchRunResult ru = run_batch(unbounded, w, c);
    const BatchRunResult rb = run_batch(bounded, w, c);
    ASSERT_TRUE(ru.ok()) << ru.error;
    ASSERT_TRUE(rb.ok()) << rb.error;
    EXPECT_EQ(rb.stats.tasks_executed, w.num_tasks());
    EXPECT_NEAR(rb.batch_time, ru.batch_time, 0.10 * ru.batch_time)
        << "seed " << seed;
  }
}

// ------------------------------------------- parallel-vs-sequential plans

// Runs one scheduler's full batch at several thread counts and expects the
// simulated outcome to be bit-identical (same plans => same makespan bits
// and identical transfer counts).
template <typename MakeScheduler>
void check_bit_identity(MakeScheduler make, const wl::Workload& w,
                        const sim::ClusterConfig& c) {
  double base_makespan = 0.0;
  std::size_t base_transfers = 0;
  sim::SubBatchPlan base_plan;
  bool have_base = false;
  for (std::size_t t : {1u, 2u, 4u, 8u}) {
    WsRuntime::set_global_threads(t);

    // Whole-batch outcome.
    auto s1 = make();
    const BatchRunResult r = run_batch(*s1, w, c);
    ASSERT_TRUE(r.ok()) << r.error;

    // First-round plan, compared structurally.
    auto s2 = make();
    sim::ExecutionEngine engine(c, w,
                                {s2->eviction_policy(), false, {}, {}});
    SchedulerContext ctx{w, c, engine};
    sim::SubBatchPlan plan = s2->plan_sub_batch(all_tasks(w), ctx);

    if (!have_base) {
      base_makespan = r.batch_time;
      base_transfers = r.stats.remote_transfers;
      base_plan = std::move(plan);
      have_base = true;
    } else {
      EXPECT_EQ(r.batch_time, base_makespan) << "threads=" << t;
      EXPECT_EQ(r.stats.remote_transfers, base_transfers) << "threads=" << t;
      EXPECT_TRUE(plans_equal(plan, base_plan)) << "threads=" << t;
    }
  }
  WsRuntime::set_global_threads(0);  // restore default
}

TEST(ParallelBitIdentity, MinMinExact) {
  check_bit_identity(
      [] { return std::make_unique<MinMinScheduler>(1u << 20); },
      test_workload(40, 3), test_cluster(4));
}

TEST(ParallelBitIdentity, MinMinLazy) {
  check_bit_identity([] { return std::make_unique<MinMinScheduler>(0); },
                     test_workload(40, 3), test_cluster(4));
}

TEST(ParallelBitIdentity, MinMinLazyBoundedStaleness) {
  check_bit_identity(
      [] { return std::make_unique<MinMinScheduler>(0, /*budget=*/4); },
      test_workload(40, 3), test_cluster(4));
}

TEST(ParallelBitIdentity, JobDataPresent) {
  check_bit_identity([] { return std::make_unique<JobDataPresentScheduler>(); },
                     test_workload(40, 3), test_cluster(4));
}

TEST(ParallelBitIdentity, BiPartition) {
  check_bit_identity([] { return std::make_unique<BiPartitionScheduler>(); },
                     test_workload(40, 3), test_cluster(4));
}

TEST(ParallelBitIdentity, BiPartitionPlanAllSubBatches) {
  // Limited disk forces BINW to split the batch; the plan-all mode then
  // level-2-maps every sub-batch concurrently and serves the stash across
  // rounds — the whole multi-round outcome must be thread-count invariant.
  const wl::Workload w = test_workload(40, 3);
  sim::ClusterConfig c = test_cluster(4);
  double unique_bytes = 0.0;
  for (wl::FileId f = 0; f < w.num_files(); ++f)
    unique_bytes += w.file_size(f);
  c.disk_capacity = 0.12 * unique_bytes;
  check_bit_identity(
      [] {
        BiPartitionOptions o;
        o.plan_all_sub_batches = true;
        return std::make_unique<BiPartitionScheduler>(o);
      },
      w, c);
}

TEST(BiPartition, PlanAllSubBatchesDrainsTheBatch) {
  // The stashed sub-batches must cover the whole batch: every task executes
  // exactly once, with or without the precomputed-stash mode.
  for (std::uint64_t seed : {3u, 11u}) {
    const wl::Workload w = test_workload(40, seed);
    sim::ClusterConfig c = test_cluster(4);
    double unique_bytes = 0.0;
    for (wl::FileId f = 0; f < w.num_files(); ++f)
      unique_bytes += w.file_size(f);
    c.disk_capacity = 0.12 * unique_bytes;

    BiPartitionOptions all;
    all.plan_all_sub_batches = true;
    BiPartitionScheduler with_stash(all);
    BiPartitionScheduler without;
    const BatchRunResult ra = run_batch(with_stash, w, c);
    const BatchRunResult rb = run_batch(without, w, c);
    ASSERT_TRUE(ra.ok()) << ra.error;
    ASSERT_TRUE(rb.ok()) << rb.error;
    EXPECT_EQ(ra.stats.tasks_executed, w.num_tasks());
    EXPECT_EQ(rb.stats.tasks_executed, w.num_tasks());
  }
}

TEST(ParallelBitIdentity, Ip) {
  // Truncate the branch-and-bound by node count, not wall clock: the node
  // cutoff fires at the same tree point on any machine, so the solve — and
  // hence the plan — is deterministic even when the MIP can't be finished.
  check_bit_identity(
      [] {
        IpSchedulerOptions o = IpScheduler::default_options();
        o.selection_mip.time_limit_seconds = 1e6;
        o.selection_mip.max_nodes = 300;
        o.allocation_mip.time_limit_seconds = 1e6;
        o.allocation_mip.max_nodes = 300;
        return std::make_unique<IpScheduler>(o);
      },
      test_workload(10, 3), test_cluster(3));
}

}  // namespace
}  // namespace bsio::sched
