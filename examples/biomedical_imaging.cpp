// Biomedical image analysis scenario (the paper's IMAGE application).
//
// A researcher sweeps an image-quantification method over follow-up MRI/CT
// studies of a patient cohort. The dataset lives on a slow departmental
// storage cluster behind a shared 100 Mbps uplink (the paper's OSUMED
// system), so how the batch is scheduled — and how aggressively popular
// studies are replicated inside the compute cluster — dominates turnaround
// time. Demonstrates the limited-disk path: per-node disk caches smaller
// than the working set force sub-batching and eviction.
//
//   $ ./biomedical_imaging [num_tasks]    (default 120)

#include <cstdio>
#include <cstdlib>

#include "core/batch_scheduler.h"
#include "util/table.h"
#include "workload/image.h"
#include "workload/stats.h"

int main(int argc, char** argv) {
  using namespace bsio;

  std::size_t num_tasks = 120;
  if (argc > 1) num_tasks = static_cast<std::size_t>(std::atoi(argv[1]));

  wl::ImageConfig cfg;
  cfg.num_tasks = num_tasks;
  cfg.num_storage_nodes = 4;
  std::printf("calibrating IMAGE workload (%zu analysis tasks, target 85%% "
              "study overlap)...\n",
              num_tasks);
  wl::CalibrationResult cal = wl::make_image_calibrated(cfg, 0.85);
  wl::WorkloadStats s = wl::measure(cal.workload);
  std::printf("  %zu image files requested (%s), overlap %.0f%%\n",
              s.num_requested_files, format_bytes(s.unique_bytes).c_str(),
              s.overlap * 100.0);

  sim::ClusterConfig cluster = sim::osumed_cluster(4, 4);
  // Make the disk caches tight: each node holds ~40% of the working set.
  cluster.disk_capacity = s.unique_bytes * 0.4;
  std::printf("  per-node disk cache: %s\n",
              format_bytes(cluster.disk_capacity).c_str());

  for (core::Algorithm alg :
       {core::Algorithm::kBiPartition, core::Algorithm::kJobDataPresent}) {
    sched::BatchRunResult r =
        core::run_batch_scheduler(alg, cal.workload, cluster);
    std::printf("\n%-14s batch %-9s sub-batches %zu evictions %zu "
                "restages %zu\n",
                r.scheduler.c_str(), format_seconds(r.batch_time).c_str(),
                r.sub_batches, r.stats.evictions, r.stats.restages);
  }
  std::printf("\nBINW sub-batch selection keeps each wave of tasks inside "
              "the aggregate\ncache, so files are evicted between waves "
              "rather than thrashing within one.\n");
  return 0;
}
