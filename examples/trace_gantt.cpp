// Export the execution trace of a scheduled batch as CSV — one row per
// remote transfer, replication and task-execution block with its Gantt
// placement — ready for plotting (e.g. a pandas/matplotlib broken_barh).
//
//   $ ./trace_gantt [out.csv]       (default trace.csv)

#include <cstdio>
#include <fstream>

#include "sched/driver.h"
#include "sched/bipartition.h"
#include "util/table.h"
#include "workload/image.h"
#include "workload/stats.h"

int main(int argc, char** argv) {
  using namespace bsio;
  const char* out_path = argc > 1 ? argv[1] : "trace.csv";

  wl::ImageConfig cfg;
  cfg.num_tasks = 40;
  cfg.num_storage_nodes = 4;
  wl::Workload w = wl::make_image_calibrated(cfg, 0.85).workload;
  sim::ClusterConfig cluster = sim::xio_cluster(4, 4);

  // Drive the scheduler + engine by hand so we can enable tracing.
  sched::BiPartitionScheduler scheduler;
  sim::EngineOptions engine_opts;
  engine_opts.trace = true;
  sim::ExecutionEngine engine(cluster, w, engine_opts);
  sched::SchedulerContext ctx{w, cluster, engine};

  std::vector<wl::TaskId> pending;
  for (const auto& t : w.tasks()) pending.push_back(t.id);
  while (!pending.empty()) {
    sim::SubBatchPlan plan = scheduler.plan_sub_batch(pending, ctx);
    auto executed = engine.execute(plan);
    if (!executed.ok()) {
      std::fprintf(stderr, "execute failed: %s\n",
                   executed.error().message.c_str());
      return 1;
    }
    for (wl::TaskId t : plan.tasks)
      pending.erase(std::find(pending.begin(), pending.end(), t));
  }

  std::ofstream os(out_path);
  os << sim::trace_to_csv(engine.trace());
  std::printf("batch time %s; wrote %zu trace events to %s\n",
              format_seconds(engine.makespan()).c_str(),
              engine.trace().size(), out_path);
  std::printf("columns: kind,task,file,src,dst,start,end  (-1 = n/a)\n");

  // A quick textual summary: per-node utilisation.
  auto busy = engine.compute_busy_times();
  for (std::size_t n = 0; n < busy.size(); ++n)
    std::printf("  compute node %zu: busy %.1fs (%.0f%% of makespan)\n", n,
                busy[n], 100.0 * busy[n] / engine.makespan());
  return 0;
}
