// Side-by-side comparison of all four scheduling schemes on one workload —
// a miniature of the paper's Figure 3 experiment, handy for exploring how
// the algorithms respond to overlap, cluster choice and replication.
//
//   $ ./scheduler_comparison [overlap%] [xio|osumed] [tasks]
//   $ ./scheduler_comparison 85 xio 100

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "core/experiment.h"
#include "workload/image.h"
#include "workload/stats.h"

int main(int argc, char** argv) {
  using namespace bsio;

  double overlap = 0.85;
  bool osumed = false;
  std::size_t tasks = 100;
  if (argc > 1) overlap = std::atof(argv[1]) / 100.0;
  if (argc > 2) osumed = std::strcmp(argv[2], "osumed") == 0;
  if (argc > 3) tasks = static_cast<std::size_t>(std::atoi(argv[3]));

  wl::ImageConfig cfg;
  cfg.num_tasks = tasks;
  cfg.num_storage_nodes = 4;
  wl::CalibrationResult cal = wl::make_image_calibrated(cfg, overlap);

  core::ExperimentCase cs{
      "IMAGE " + std::to_string(static_cast<int>(overlap * 100)) + "% on " +
          (osumed ? "OSUMED" : "XIO"),
      cal.workload,
      osumed ? sim::osumed_cluster(4, 4) : sim::xio_cluster(4, 4)};

  core::ExperimentOptions opts;
  opts.run_options.ip.allocation_mip.time_limit_seconds = 10.0;
  auto results = core::run_experiment({cs}, opts);

  core::batch_time_table(results, opts.algorithms)
      .print("batch execution time");
  core::overhead_table(results, opts.algorithms)
      .print("scheduling overhead");
  core::transfer_table(results, opts.algorithms).print("data movement");
  return 0;
}
