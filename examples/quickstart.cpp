// Quickstart: schedule a small batch of data-intensive tasks on a coupled
// compute + storage cluster and print what happened.
//
//   $ ./quickstart
//
// The example builds a synthetic 40-task batch with 70% file overlap, runs
// the BiPartition scheduler (the paper's scalable scheme) on a 4+4 node
// XIO-like cluster, and reports the simulated batch execution time together
// with the transfer statistics.

#include <cstdio>

#include "core/batch_scheduler.h"
#include "util/table.h"
#include "workload/stats.h"
#include "workload/synthetic.h"

int main() {
  using namespace bsio;

  // 1. Describe the batch: 40 independent tasks, 6 input files each, 70%
  //    of file requests hitting already-requested files.
  wl::SyntheticConfig workload_cfg;
  workload_cfg.num_tasks = 40;
  workload_cfg.files_per_task = 6;
  workload_cfg.overlap = 0.70;
  workload_cfg.file_size_bytes = 64.0 * sim::kMB;
  workload_cfg.num_storage_nodes = 4;
  workload_cfg.seed = 2024;
  wl::Workload workload = wl::make_synthetic(workload_cfg);

  wl::WorkloadStats stats = wl::measure(workload);
  std::printf("batch: %zu tasks, %zu distinct files, %.0f%% overlap, %s\n",
              stats.num_tasks, stats.num_requested_files,
              stats.overlap * 100.0,
              format_bytes(stats.unique_bytes).c_str());

  // 2. Describe the cluster: 4 compute nodes next to 4 storage nodes
  //    (210 MB/s disks behind Infiniband — the paper's XIO system).
  sim::ClusterConfig cluster = sim::xio_cluster(/*compute_nodes=*/4,
                                                /*storage_nodes=*/4);

  // 3. Run the full pipeline: scheduling, file staging and simulated
  //    execution.
  sched::BatchRunResult result = core::run_batch_scheduler(
      core::Algorithm::kBiPartition, workload, cluster);

  std::printf("\nscheduler      : %s\n", result.scheduler.c_str());
  std::printf("batch time     : %s (simulated)\n",
              format_seconds(result.batch_time).c_str());
  std::printf("scheduling time: %s (wall clock)\n",
              format_seconds(result.scheduling_seconds).c_str());
  std::printf("remote transfer: %zu transfers, %s\n",
              result.stats.remote_transfers,
              format_bytes(result.stats.remote_bytes).c_str());
  std::printf("replication    : %zu copies, %s\n", result.stats.replications,
              format_bytes(result.stats.replica_bytes).c_str());
  std::printf("cache hits     : %zu\n", result.stats.cache_hits);
  return 0;
}
