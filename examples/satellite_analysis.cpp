// Satellite data processing scenario (the paper's SAT application).
//
// Scientists submit spatio-temporal window queries against 20 days of
// remotely-sensed data (50 MB chunk files, Hilbert-declustered over the
// storage nodes). Queries cluster around hot-spot regions, so tasks share
// files heavily. This example builds the calibrated high-overlap workload,
// then shows how the BiPartition scheduler exploits the sharing compared
// with scheduling each query where it completes earliest (MinMin).
//
//   $ ./satellite_analysis [overlap%]     (default 85)

#include <cstdio>
#include <cstdlib>

#include "core/batch_scheduler.h"
#include "util/table.h"
#include "workload/sat.h"
#include "workload/stats.h"

int main(int argc, char** argv) {
  using namespace bsio;

  double overlap = 0.85;
  if (argc > 1) overlap = std::atof(argv[1]) / 100.0;

  wl::SatConfig cfg;
  cfg.num_tasks = 100;
  cfg.num_storage_nodes = 4;
  if (overlap < 0.5) cfg.files_per_task = 14;  // the paper's med/low setting

  std::printf("calibrating SAT workload to %.0f%% file overlap...\n",
              overlap * 100.0);
  wl::CalibrationResult cal = wl::make_sat_calibrated(cfg, overlap);
  wl::WorkloadStats s = wl::measure(cal.workload);
  std::printf("  achieved %.0f%% overlap, %zu distinct chunk files (%s), "
              "%.1f files/task\n",
              s.overlap * 100.0, s.num_requested_files,
              format_bytes(s.unique_bytes).c_str(), s.avg_files_per_task);

  sim::ClusterConfig cluster = sim::xio_cluster(4, 4);

  for (core::Algorithm alg :
       {core::Algorithm::kBiPartition, core::Algorithm::kMinMin}) {
    sched::BatchRunResult r =
        core::run_batch_scheduler(alg, cal.workload, cluster);
    std::printf("\n%-12s batch time %-9s  remote %zux (%s)  replicas %zux\n",
                r.scheduler.c_str(), format_seconds(r.batch_time).c_str(),
                r.stats.remote_transfers,
                format_bytes(r.stats.remote_bytes).c_str(),
                r.stats.replications);
  }
  std::printf("\nBiPartition clusters queries that share chunks onto the "
              "same node, so\neach hot chunk crosses the storage network "
              "once instead of once per node.\n");
  return 0;
}
