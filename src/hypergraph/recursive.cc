#include "hypergraph/recursive.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "hypergraph/bisect.h"
#include "hypergraph/metrics.h"
#include "util/ws_runtime.h"

namespace bsio::hg {

Hypergraph extract_side(const Hypergraph& h, const std::vector<int>& side,
                        int which, std::vector<VertexId>& orig_of) {
  constexpr VertexId kNone = static_cast<VertexId>(-1);
  const std::size_t nv = h.num_vertices();
  std::vector<VertexId> remap(nv, kNone);
  orig_of.clear();
  for (VertexId v = 0; v < nv; ++v) {
    if (side[v] == which) {
      remap[v] = static_cast<VertexId>(orig_of.size());
      orig_of.push_back(v);
    }
  }

  HypergraphBuilder b;
  for (VertexId v : orig_of)
    b.add_vertex(h.vertex_weight(v), h.folded_net_weight(v));

  std::vector<VertexId> pins;
  for (NetId n = 0; n < h.num_nets(); ++n) {
    pins.clear();
    for (VertexId v : h.pins(n))
      if (remap[v] != kNone) pins.push_back(remap[v]);
    // add_net folds size-1 remnants into the pin's folded weight and drops
    // empty ones — exactly the net-splitting bookkeeping we need.
    b.add_net(h.net_weight(n), pins);
  }
  return b.build();
}

namespace {

// One pending bisection: partition `h` into `k` parts labelled
// [part_offset, part_offset + k). The rng stream is derived from `seed`
// alone, never shared across jobs, so sibling branches are independent and
// the whole recursion is a pure function of the root seed — parallel and
// sequential runs produce bit-identical partitions.
struct Job {
  Hypergraph h;
  int k = 0;
  int part_offset = 0;
  std::uint64_t seed = 0;
  std::vector<VertexId> orig_of;  // job-local vertex -> root vertex
};

// Splits one job into its two children (writing leaf labels to `out` when
// k == 1 is reached is handled by the caller loop).
void split(Job& job, const PartitionerOptions& opts, Job& child0,
           Job& child1) {
  const int k = job.k;
  const int k0 = k / 2;
  const int k1 = k - k0;
  const double ratio0 = static_cast<double>(k0) / static_cast<double>(k);

  // Derive the bisection stream and both child seeds up front; the children
  // never observe how much randomness this level consumed.
  SplitMix64 sm(job.seed);
  const std::uint64_t bisect_seed = sm.next();
  const std::uint64_t seed0 = sm.next();
  const std::uint64_t seed1 = sm.next();

  // Tighten epsilon with depth so accumulated imbalance stays within the
  // caller's bound (standard recursive-bisection practice).
  PartitionerOptions sub = opts;
  sub.epsilon = opts.epsilon / std::max(1.0, std::log2(static_cast<double>(k)));

  Rng rng(bisect_seed);
  std::vector<int> side = multilevel_bisect(job.h, ratio0, sub, rng);

  std::vector<VertexId> orig0, orig1;
  child0.h = extract_side(job.h, side, 0, orig0);
  child1.h = extract_side(job.h, side, 1, orig1);
  for (auto& v : orig0) v = job.orig_of[v];
  for (auto& v : orig1) v = job.orig_of[v];
  child0.orig_of = std::move(orig0);
  child1.orig_of = std::move(orig1);
  child0.k = k0;
  child1.k = k1;
  child0.part_offset = job.part_offset;
  child1.part_offset = job.part_offset + k0;
  child0.seed = seed0;
  child1.seed = seed1;
}

}  // namespace

std::vector<int> partition_kway(const Hypergraph& h, int k,
                                const PartitionerOptions& opts) {
  BSIO_CHECK(k >= 1);
  std::vector<int> out(h.num_vertices(), 0);
  if (k == 1 || h.num_vertices() == 0) return out;

  Job root;
  root.h = h;
  root.k = k;
  root.part_offset = 0;
  root.seed = opts.seed;
  root.orig_of.resize(h.num_vertices());
  for (VertexId v = 0; v < h.num_vertices(); ++v) root.orig_of[v] = v;

  // Level-synchronous recursion: every job of a level bisects in parallel
  // (jobs own disjoint vertex sets, so `out` writes never collide), children
  // are collected in job order, and leaves (k == 1) are finalized inline.
  std::vector<Job> level;
  level.push_back(std::move(root));
  WsRuntime& pool = WsRuntime::global();
  while (!level.empty()) {
    std::vector<Job> splittable;
    for (Job& job : level) {
      if (job.h.num_vertices() == 0) continue;
      if (job.k == 1) {
        for (VertexId v : job.orig_of) out[v] = job.part_offset;
        continue;
      }
      splittable.push_back(std::move(job));
    }
    if (splittable.empty()) break;

    std::vector<Job> children(splittable.size() * 2);
    pool.parallel_for_each(splittable.size(), [&](std::size_t i) {
      split(splittable[i], opts, children[2 * i], children[2 * i + 1]);
    });
    level = std::move(children);
  }
  return out;
}

}  // namespace bsio::hg
