#include "hypergraph/recursive.h"

#include <algorithm>
#include <cmath>

#include "hypergraph/bisect.h"
#include "hypergraph/metrics.h"

namespace bsio::hg {

Hypergraph extract_side(const Hypergraph& h, const std::vector<int>& side,
                        int which, std::vector<VertexId>& orig_of) {
  constexpr VertexId kNone = static_cast<VertexId>(-1);
  const std::size_t nv = h.num_vertices();
  std::vector<VertexId> remap(nv, kNone);
  orig_of.clear();
  for (VertexId v = 0; v < nv; ++v) {
    if (side[v] == which) {
      remap[v] = static_cast<VertexId>(orig_of.size());
      orig_of.push_back(v);
    }
  }

  HypergraphBuilder b;
  for (VertexId v : orig_of)
    b.add_vertex(h.vertex_weight(v), h.folded_net_weight(v));

  std::vector<VertexId> pins;
  for (NetId n = 0; n < h.num_nets(); ++n) {
    pins.clear();
    for (VertexId v : h.pins(n))
      if (remap[v] != kNone) pins.push_back(remap[v]);
    // add_net folds size-1 remnants into the pin's folded weight and drops
    // empty ones — exactly the net-splitting bookkeeping we need.
    b.add_net(h.net_weight(n), pins);
  }
  return b.build();
}

namespace {

void recurse(const Hypergraph& h, int k, int part_offset,
             const PartitionerOptions& opts, Rng& rng,
             const std::vector<VertexId>& orig_of, std::vector<int>& out) {
  if (h.num_vertices() == 0) return;
  if (k == 1) {
    for (VertexId v : orig_of) out[v] = part_offset;
    return;
  }
  const int k0 = k / 2;
  const int k1 = k - k0;
  const double ratio0 = static_cast<double>(k0) / static_cast<double>(k);

  // Tighten epsilon with depth so accumulated imbalance stays within the
  // caller's bound (standard recursive-bisection practice).
  PartitionerOptions sub = opts;
  sub.epsilon = opts.epsilon / std::max(1.0, std::log2(static_cast<double>(k)));

  std::vector<int> side = multilevel_bisect(h, ratio0, sub, rng);

  std::vector<VertexId> orig0, orig1;
  Hypergraph h0 = extract_side(h, side, 0, orig0);
  Hypergraph h1 = extract_side(h, side, 1, orig1);
  for (auto& v : orig0) v = orig_of[v];
  for (auto& v : orig1) v = orig_of[v];
  recurse(h0, k0, part_offset, opts, rng, orig0, out);
  recurse(h1, k1, part_offset + k0, opts, rng, orig1, out);
}

}  // namespace

std::vector<int> partition_kway(const Hypergraph& h, int k,
                                const PartitionerOptions& opts) {
  BSIO_CHECK(k >= 1);
  std::vector<int> out(h.num_vertices(), 0);
  if (k == 1 || h.num_vertices() == 0) return out;
  Rng rng(opts.seed);
  std::vector<VertexId> identity(h.num_vertices());
  for (VertexId v = 0; v < h.num_vertices(); ++v) identity[v] = v;
  recurse(h, k, 0, opts, rng, identity, out);
  return out;
}

}  // namespace bsio::hg
