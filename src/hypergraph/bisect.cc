#include "hypergraph/bisect.h"

#include <algorithm>

#include "hypergraph/coarsen.h"
#include "hypergraph/initial.h"

namespace bsio::hg {

std::vector<int> multilevel_bisect(const Hypergraph& h, double ratio0,
                                   const PartitionerOptions& opts, Rng& rng) {
  BSIO_CHECK(ratio0 > 0.0 && ratio0 < 1.0);
  const std::size_t nv = h.num_vertices();
  if (nv == 0) return {};
  if (nv == 1) return {0};

  // Coarsening pyramid. levels[0] maps h's vertices to levels[0].coarse.
  std::vector<CoarseLevel> levels;
  const Hypergraph* cur = &h;
  const double max_cluster =
      h.total_vertex_weight() *
      std::min(ratio0, 1.0 - ratio0) * opts.max_cluster_weight_ratio;
  while (cur->num_vertices() > opts.coarsen_until) {
    CoarseLevel level = coarsen_once(*cur, rng, max_cluster);
    if (level.coarse.num_vertices() >=
        static_cast<std::size_t>(opts.min_shrink_factor *
                                 static_cast<double>(cur->num_vertices())))
      break;  // stalled
    levels.push_back(std::move(level));
    cur = &levels.back().coarse;
  }

  BisectionConstraint c =
      make_constraint(h.total_vertex_weight(), ratio0, opts.epsilon);

  std::vector<int> side =
      initial_bisection(*cur, c, rng, opts.initial_tries);
  fm_refine(*cur, side, c, rng, opts.refine_passes);

  // Project back up, refining at each level.
  for (std::size_t li = levels.size(); li > 0; --li) {
    const CoarseLevel& level = levels[li - 1];
    const Hypergraph& fine =
        li >= 2 ? levels[li - 2].coarse : h;
    std::vector<int> fine_side(fine.num_vertices());
    for (VertexId v = 0; v < fine.num_vertices(); ++v)
      fine_side[v] = side[level.fine_to_coarse[v]];
    side = std::move(fine_side);
    fm_refine(fine, side, c, rng, opts.refine_passes);
  }
  return side;
}

}  // namespace bsio::hg
