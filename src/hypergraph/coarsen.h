// Coarsening phase: heavy-connectivity agglomerative clustering (the PaToH
// default). Vertices are visited in random order and absorbed into the
// neighbouring cluster with the strongest net connectivity, subject to a
// cluster weight cap. Contraction merges identical nets (summing weights)
// and folds nets that shrink to one pin into the pin's folded weight.
#pragma once

#include "hypergraph/hypergraph.h"
#include "util/rng.h"

namespace bsio::hg {

struct CoarseLevel {
  Hypergraph coarse;
  // fine vertex -> coarse vertex
  std::vector<VertexId> fine_to_coarse;
};

CoarseLevel coarsen_once(const Hypergraph& h, Rng& rng,
                         double max_cluster_weight);

}  // namespace bsio::hg
