// BINW (Bounded Incident Net Weight) partitioning, paper Section 5.1.
//
// The number of parts is not predetermined: the hypergraph is recursively
// bisected (minimising cut weight) until every part's incident net weight —
// live net weights plus folded size-1 remnants — fits under the bound D.
// Minimising the cut at each level both keeps file sharing within sub-batches
// and keeps the number of parts low, as the paper argues.
//
// Balance during these bisections is taken on *incident-weight proxies*
// rather than task compute weights: each vertex is weighted by its folded
// weight plus its share (w(n)/|n|) of every incident net, so the two halves
// shrink towards the bound at a similar rate and the recursion terminates
// in O(log(total/D)) depth.

#include <algorithm>
#include <cmath>

#include "hypergraph/bisect.h"
#include "hypergraph/metrics.h"
#include "hypergraph/partitioner.h"
#include "hypergraph/recursive.h"

namespace bsio::hg {

namespace {

double incident_weight_of_all(const Hypergraph& h) {
  return h.total_net_weight() + h.total_folded_weight();
}

// Rebuild h with vertex weights replaced by incident-weight proxies.
Hypergraph with_io_proxy_weights(const Hypergraph& h) {
  std::vector<double> proxy(h.num_vertices(), 0.0);
  for (VertexId v = 0; v < h.num_vertices(); ++v)
    proxy[v] = h.folded_net_weight(v);
  for (NetId n = 0; n < h.num_nets(); ++n) {
    const double share =
        h.net_weight(n) / static_cast<double>(h.net_size(n));
    for (VertexId v : h.pins(n)) proxy[v] += share;
  }
  HypergraphBuilder b;
  for (VertexId v = 0; v < h.num_vertices(); ++v)
    b.add_vertex(proxy[v], h.folded_net_weight(v));
  std::vector<VertexId> pins;
  for (NetId n = 0; n < h.num_nets(); ++n) {
    pins.assign(h.pins_begin(n), h.pins_end(n));
    b.add_net(h.net_weight(n), pins);
  }
  return b.build();
}

void binw_recurse(const Hypergraph& h, double bound,
                  const PartitionerOptions& opts, Rng& rng,
                  const std::vector<VertexId>& orig_of,
                  std::vector<int>& parts, int& next_part) {
  if (h.num_vertices() == 0) return;
  if (incident_weight_of_all(h) <= bound) {
    const int p = next_part++;
    for (VertexId v : orig_of) parts[v] = p;
    return;
  }
  BSIO_CHECK_MSG(h.num_vertices() > 1,
                 "BINW: a single vertex exceeds the incident-weight bound "
                 "(a task's files do not fit the aggregate disk space)");

  Hypergraph proxy = with_io_proxy_weights(h);
  std::vector<int> side = multilevel_bisect(proxy, 0.5, opts, rng);

  // Degenerate bisections (everything on one side) can only happen with
  // pathological weights; force a split so recursion terminates.
  {
    bool has0 = false, has1 = false;
    for (int s : side) (s == 0 ? has0 : has1) = true;
    if (!has0 || !has1) {
      for (std::size_t v = 0; v < side.size(); ++v)
        side[v] = v % 2 == 0 ? 0 : 1;
    }
  }

  std::vector<VertexId> orig0, orig1;
  Hypergraph h0 = extract_side(h, side, 0, orig0);
  Hypergraph h1 = extract_side(h, side, 1, orig1);
  for (auto& v : orig0) v = orig_of[v];
  for (auto& v : orig1) v = orig_of[v];
  binw_recurse(h0, bound, opts, rng, orig0, parts, next_part);
  binw_recurse(h1, bound, opts, rng, orig1, parts, next_part);
}

}  // namespace

BinwResult partition_binw(const Hypergraph& h, double bound,
                          const PartitionerOptions& opts) {
  BSIO_CHECK(bound > 0.0);
  BinwResult result;
  result.parts.assign(h.num_vertices(), 0);
  if (h.num_vertices() == 0) return result;

  Rng rng(opts.seed);
  std::vector<VertexId> identity(h.num_vertices());
  for (VertexId v = 0; v < h.num_vertices(); ++v) identity[v] = v;
  int next_part = 0;
  binw_recurse(h, bound, opts, rng, identity, result.parts, next_part);
  result.num_parts = next_part;
  return result;
}

}  // namespace bsio::hg
