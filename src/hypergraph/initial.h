// Initial bisection on the coarsest hypergraph: greedy hypergraph growing
// (GHG) from random seeds, plus a random-assignment fallback; the best of
// several tries (by cut weight, feasible-balance first) is returned.
#pragma once

#include "hypergraph/fm.h"
#include "hypergraph/hypergraph.h"
#include "util/rng.h"

namespace bsio::hg {

std::vector<int> initial_bisection(const Hypergraph& h,
                                   const BisectionConstraint& c, Rng& rng,
                                   int tries);

}  // namespace bsio::hg
