// Hypergraph representation for the multilevel partitioner.
//
// A hypergraph H = (V, N): each net (hyper-edge) is a subset of vertices.
// In this library's primary use, vertices are tasks, nets are files, vertex
// weights are expected task execution times and net weights are file sizes
// (paper Section 5). Storage is CSR in both directions: pins of each net,
// and nets of each vertex.
//
// Each vertex additionally carries a "folded net weight": the accumulated
// weight of nets that became size-1 during coarsening or net splitting.
// Such nets can never be cut again, but their weight still counts towards a
// part's incident-net-weight — the quantity the BINW partitioner bounds
// (paper Section 5.1 describes exactly this PaToH modification).
#pragma once

#include <cstdint>
#include <vector>

#include "util/check.h"

namespace bsio::hg {

using VertexId = std::uint32_t;
using NetId = std::uint32_t;

class Hypergraph {
 public:
  Hypergraph() = default;

  std::size_t num_vertices() const { return vertex_weight_.size(); }
  std::size_t num_nets() const { return net_weight_.size(); }
  std::size_t num_pins() const { return pins_.size(); }

  double vertex_weight(VertexId v) const { return vertex_weight_[v]; }
  double net_weight(NetId n) const { return net_weight_[n]; }
  double folded_net_weight(VertexId v) const { return folded_net_weight_[v]; }

  double total_vertex_weight() const;
  double total_net_weight() const;  // excludes folded weights
  double total_folded_weight() const;

  // Pins of net n (the vertices the net connects).
  const VertexId* pins_begin(NetId n) const { return pins_.data() + xpins_[n]; }
  const VertexId* pins_end(NetId n) const {
    return pins_.data() + xpins_[n + 1];
  }
  std::size_t net_size(NetId n) const { return xpins_[n + 1] - xpins_[n]; }

  // Nets incident to vertex v.
  const NetId* nets_begin(VertexId v) const { return nets_.data() + xnets_[v]; }
  const NetId* nets_end(VertexId v) const {
    return nets_.data() + xnets_[v + 1];
  }
  std::size_t vertex_degree(VertexId v) const {
    return xnets_[v + 1] - xnets_[v];
  }

  // Range helpers for range-for loops.
  struct Span {
    const VertexId* b;
    const VertexId* e;
    const VertexId* begin() const { return b; }
    const VertexId* end() const { return e; }
    std::size_t size() const { return static_cast<std::size_t>(e - b); }
  };
  struct NetSpan {
    const NetId* b;
    const NetId* e;
    const NetId* begin() const { return b; }
    const NetId* end() const { return e; }
    std::size_t size() const { return static_cast<std::size_t>(e - b); }
  };
  Span pins(NetId n) const { return {pins_begin(n), pins_end(n)}; }
  NetSpan nets(VertexId v) const { return {nets_begin(v), nets_end(v)}; }

  // Structural sanity checks (cross-CSR consistency); aborts on violation.
  void validate() const;

 private:
  friend class HypergraphBuilder;

  std::vector<double> vertex_weight_;
  std::vector<double> folded_net_weight_;
  std::vector<double> net_weight_;
  // CSR net -> pins.
  std::vector<std::size_t> xpins_{0};
  std::vector<VertexId> pins_;
  // CSR vertex -> nets.
  std::vector<std::size_t> xnets_{0};
  std::vector<NetId> nets_;
};

class HypergraphBuilder {
 public:
  // Returns the new vertex's id.
  VertexId add_vertex(double weight, double folded_weight = 0.0);
  // Pins may contain duplicates; they are deduped. Size-0 nets are dropped;
  // size-1 nets are folded into the pin's folded weight (PaToH-style), so
  // the built hypergraph only has nets of size >= 2.
  void add_net(double weight, std::vector<VertexId> pins);

  Hypergraph build();

 private:
  std::vector<double> vertex_weight_;
  std::vector<double> folded_weight_;
  std::vector<double> net_weight_;
  std::vector<std::vector<VertexId>> net_pins_;
};

}  // namespace bsio::hg
