// Fiduccia–Mattheyses 2-way refinement with net pin counting, hill climbing
// and best-prefix rollback. For two parts the connectivity-1 metric equals
// the cut-net weight, which is what the pass optimises.
#pragma once

#include <vector>

#include "hypergraph/hypergraph.h"
#include "util/rng.h"

namespace bsio::hg {

// Target/cap weights of the two sides of a bisection. Uneven targets are
// used when recursive bisection splits K into unequal halves.
struct BisectionConstraint {
  double target0 = 0.0;
  double target1 = 0.0;
  double max0 = 0.0;
  double max1 = 0.0;
};

BisectionConstraint make_constraint(double total_weight, double ratio0,
                                    double epsilon);

// Refines side[] (entries 0/1) in place; returns the resulting cut weight.
double fm_refine(const Hypergraph& h, std::vector<int>& side,
                 const BisectionConstraint& c, Rng& rng, int passes);

}  // namespace bsio::hg
