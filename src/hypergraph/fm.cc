#include "hypergraph/fm.h"

#include <algorithm>
#include <limits>
#include <queue>

#include "hypergraph/metrics.h"
#include "util/ws_runtime.h"

namespace bsio::hg {

BisectionConstraint make_constraint(double total_weight, double ratio0,
                                    double epsilon) {
  BisectionConstraint c;
  c.target0 = total_weight * ratio0;
  c.target1 = total_weight - c.target0;
  c.max0 = c.target0 * (1.0 + epsilon);
  c.max1 = c.target1 * (1.0 + epsilon);
  return c;
}

namespace {

struct HeapEntry {
  double gain;
  double tie;  // random tiebreak, fixed per vertex per pass
  VertexId v;
  bool operator<(const HeapEntry& o) const {
    if (gain != o.gain) return gain < o.gain;
    return tie < o.tie;
  }
};

class FmPass {
 public:
  FmPass(const Hypergraph& h, std::vector<int>& side,
         const BisectionConstraint& c, Rng& rng)
      : h_(h), side_(side), c_(c), rng_(rng) {}

  // Returns total gain realised (>= 0; 0 if the pass found no improvement).
  double run() {
    init();
    const std::size_t nv = h_.num_vertices();
    double cum_gain = 0.0;
    double best_gain = 0.0;
    std::size_t best_len = 0;
    std::vector<VertexId> moved;
    moved.reserve(nv);

    while (moved.size() < nv) {
      VertexId v = pop_best_movable();
      if (v == kNone) break;
      cum_gain += gain_[v];
      apply_move(v);
      locked_[v] = true;
      moved.push_back(v);
      if (cum_gain > best_gain + 1e-12 ||
          (cum_gain > best_gain - 1e-12 && better_balance())) {
        best_gain = cum_gain;
        best_len = moved.size();
      }
    }

    // Roll back to the best prefix.
    for (std::size_t i = moved.size(); i > best_len; --i)
      apply_move(moved[i - 1], /*update_gains=*/false);
    return best_gain;
  }

 private:
  static constexpr VertexId kNone = static_cast<VertexId>(-1);

  void init() {
    const std::size_t nv = h_.num_vertices();
    const std::size_t nn = h_.num_nets();
    pc_.assign(nn * 2, 0);
    for (NetId n = 0; n < nn; ++n)
      for (VertexId v : h_.pins(n)) ++pc_[n * 2 + side_[v]];
    weight_[0] = weight_[1] = 0.0;
    for (VertexId v = 0; v < nv; ++v) weight_[side_[v]] += h_.vertex_weight(v);
    locked_.assign(nv, false);
    gain_.assign(nv, 0.0);
    tie_.assign(nv, 0.0);
    heap_ = {};
    // Initial gains are pure functions of the (frozen) pin counts, so the
    // per-vertex computation fans out on the work-stealing runtime; the rng draws and
    // heap pushes stay sequential in vertex order, keeping every pass
    // bit-identical at any thread count. When this pass already runs inside
    // a parallel recursive-bisection branch the runtime reuses the worker's own deque.
    WsRuntime::global().parallel_for_each(
        nv, [this](std::size_t v) {
          gain_[v] = compute_gain(static_cast<VertexId>(v));
        });
    for (VertexId v = 0; v < nv; ++v) {
      tie_[v] = rng_.uniform_double();
      heap_.push({gain_[v], tie_[v], v});
    }
  }

  double compute_gain(VertexId v) const {
    const int s = side_[v];
    double g = 0.0;
    for (NetId n : h_.nets(v)) {
      if (pc_[n * 2 + s] == 1) g += h_.net_weight(n);
      if (pc_[n * 2 + (1 - s)] == 0) g -= h_.net_weight(n);
    }
    return g;
  }

  bool move_allowed(VertexId v) const {
    const int s = side_[v];
    const double wv = h_.vertex_weight(v);
    const double dst_max = s == 0 ? c_.max1 : c_.max0;
    const double dst_w = weight_[1 - s];
    if (dst_w + wv <= dst_max) return true;
    // Allow balance-restoring moves out of an over-full side.
    const double src_max = s == 0 ? c_.max0 : c_.max1;
    return weight_[s] > src_max && dst_w + wv < weight_[s];
  }

  VertexId pop_best_movable() {
    // Lazy-deletion heap: entries may be stale (gain changed) or locked.
    std::vector<HeapEntry> skipped;
    VertexId found = kNone;
    while (!heap_.empty()) {
      HeapEntry e = heap_.top();
      heap_.pop();
      if (locked_[e.v]) continue;
      if (e.gain != gain_[e.v]) continue;  // stale
      if (!move_allowed(e.v)) {
        skipped.push_back(e);
        continue;
      }
      found = e.v;
      break;
    }
    for (const auto& e : skipped) heap_.push(e);
    return found;
  }

  void apply_move(VertexId v, bool update_gains = true) {
    const int s = side_[v];
    side_[v] = 1 - s;
    weight_[s] -= h_.vertex_weight(v);
    weight_[1 - s] += h_.vertex_weight(v);
    for (NetId n : h_.nets(v)) {
      --pc_[n * 2 + s];
      ++pc_[n * 2 + (1 - s)];
      if (update_gains) {
        for (VertexId u : h_.pins(n)) {
          if (u == v || locked_[u]) continue;
          double g = compute_gain(u);
          if (g != gain_[u]) {
            gain_[u] = g;
            heap_.push({g, tie_[u], u});
          }
        }
      }
    }
    if (update_gains) {
      gain_[v] = compute_gain(v);
      // v is locked afterwards in run(); no heap push needed.
    }
  }

  bool better_balance() const {
    // Used only to break exact gain ties: prefer prefixes closer to target.
    return std::abs(weight_[0] - c_.target0) <
           std::abs(prev_best_dev_) - 1e-12
               ? (prev_best_dev_ = std::abs(weight_[0] - c_.target0), true)
               : false;
  }

  const Hypergraph& h_;
  std::vector<int>& side_;
  const BisectionConstraint& c_;
  Rng& rng_;

  std::vector<int> pc_;  // pin counts: pc_[2n + side]
  double weight_[2] = {0.0, 0.0};
  std::vector<bool> locked_;
  std::vector<double> gain_;
  std::vector<double> tie_;
  std::priority_queue<HeapEntry> heap_;
  mutable double prev_best_dev_ = std::numeric_limits<double>::infinity();
};

}  // namespace

double fm_refine(const Hypergraph& h, std::vector<int>& side,
                 const BisectionConstraint& c, Rng& rng, int passes) {
  for (int p = 0; p < passes; ++p) {
    FmPass pass(h, side, c, rng);
    double gain = pass.run();
    if (gain <= 1e-12) break;
  }
  return cut_net_weight(h, side, 2);
}

}  // namespace bsio::hg
