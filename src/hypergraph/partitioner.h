// Public options + entry points of the multilevel hypergraph partitioner.
//
// partition_kway: K-way partitioning via multilevel recursive bisection with
// net splitting, minimising the connectivity-1 metric under a vertex-weight
// balance constraint — the second-level (task mapping) partitioner of the
// BiPartition scheduler.
//
// partition_binw: Bounded-Incident-Net-Weight partitioning — the first-level
// (sub-batch selection) partitioner. The number of parts is not fixed;
// instead every part's incident net weight (file bytes it must stage,
// including folded size-1 net weights) is bounded by `bound`, and the
// partitioner recursively bisects, minimising cut, until the bound holds.
#pragma once

#include <cstdint>
#include <vector>

#include "hypergraph/hypergraph.h"

namespace bsio::hg {

struct PartitionerOptions {
  // Allowed imbalance ratio epsilon: part weight <= avg * (1 + epsilon).
  double epsilon = 0.10;
  std::uint64_t seed = 1;
  // Stop coarsening when at most this many vertices remain.
  std::size_t coarsen_until = 96;
  // Coarsening stalls if a level shrinks by less than this factor.
  double min_shrink_factor = 0.95;
  // Independent greedy-growing tries for the initial bisection.
  int initial_tries = 8;
  // FM refinement passes per level.
  int refine_passes = 6;
  // Cap on a single cluster's weight during coarsening, as a multiple of the
  // perfectly balanced part weight (prevents giant clusters that make
  // balanced initial partitions impossible).
  double max_cluster_weight_ratio = 0.25;
};

// Returns parts[v] in [0, k). k >= 1; k need not be a power of two.
std::vector<int> partition_kway(const Hypergraph& h, int k,
                                const PartitionerOptions& opts);

struct BinwResult {
  std::vector<int> parts;  // parts[v] in [0, num_parts)
  int num_parts = 0;
};

// Every part's incident net weight is <= bound. Requires that every single
// vertex's own incident weight fits the bound (the paper's "disk can hold
// any single task's files" assumption); aborts otherwise.
BinwResult partition_binw(const Hypergraph& h, double bound,
                          const PartitionerOptions& opts);

}  // namespace bsio::hg
