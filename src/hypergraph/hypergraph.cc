#include "hypergraph/hypergraph.h"

#include <algorithm>

namespace bsio::hg {

double Hypergraph::total_vertex_weight() const {
  double s = 0.0;
  for (double w : vertex_weight_) s += w;
  return s;
}

double Hypergraph::total_net_weight() const {
  double s = 0.0;
  for (double w : net_weight_) s += w;
  return s;
}

double Hypergraph::total_folded_weight() const {
  double s = 0.0;
  for (double w : folded_net_weight_) s += w;
  return s;
}

void Hypergraph::validate() const {
  BSIO_CHECK(xpins_.size() == num_nets() + 1);
  BSIO_CHECK(xnets_.size() == num_vertices() + 1);
  BSIO_CHECK(xpins_.back() == pins_.size());
  BSIO_CHECK(xnets_.back() == nets_.size());
  BSIO_CHECK(pins_.size() == nets_.size());
  for (NetId n = 0; n < num_nets(); ++n) {
    BSIO_CHECK_MSG(net_size(n) >= 2, "built hypergraph must have no tiny nets");
    for (VertexId v : pins(n)) BSIO_CHECK(v < num_vertices());
  }
  for (VertexId v = 0; v < num_vertices(); ++v)
    for (NetId n : nets(v)) BSIO_CHECK(n < num_nets());
}

VertexId HypergraphBuilder::add_vertex(double weight, double folded_weight) {
  vertex_weight_.push_back(weight);
  folded_weight_.push_back(folded_weight);
  return static_cast<VertexId>(vertex_weight_.size() - 1);
}

void HypergraphBuilder::add_net(double weight, std::vector<VertexId> pins) {
  std::sort(pins.begin(), pins.end());
  pins.erase(std::unique(pins.begin(), pins.end()), pins.end());
  for (VertexId v : pins)
    BSIO_CHECK_MSG(v < vertex_weight_.size(), "net pin references no vertex");
  if (pins.empty()) return;
  if (pins.size() == 1) {
    folded_weight_[pins[0]] += weight;
    return;
  }
  net_weight_.push_back(weight);
  net_pins_.push_back(std::move(pins));
}

Hypergraph HypergraphBuilder::build() {
  Hypergraph h;
  h.vertex_weight_ = std::move(vertex_weight_);
  h.folded_net_weight_ = std::move(folded_weight_);
  h.net_weight_ = std::move(net_weight_);

  h.xpins_.assign(1, 0);
  h.xpins_.reserve(net_pins_.size() + 1);
  std::size_t total = 0;
  for (const auto& p : net_pins_) total += p.size();
  h.pins_.reserve(total);
  for (const auto& p : net_pins_) {
    h.pins_.insert(h.pins_.end(), p.begin(), p.end());
    h.xpins_.push_back(h.pins_.size());
  }

  // Build the vertex -> nets CSR by counting sort.
  const std::size_t nv = h.vertex_weight_.size();
  std::vector<std::size_t> deg(nv, 0);
  for (const auto& p : net_pins_)
    for (VertexId v : p) ++deg[v];
  h.xnets_.assign(nv + 1, 0);
  for (std::size_t v = 0; v < nv; ++v) h.xnets_[v + 1] = h.xnets_[v] + deg[v];
  h.nets_.resize(h.pins_.size());
  std::vector<std::size_t> cursor(h.xnets_.begin(), h.xnets_.end() - 1);
  for (NetId n = 0; n < net_pins_.size(); ++n)
    for (VertexId v : net_pins_[n]) h.nets_[cursor[v]++] = n;

  net_pins_.clear();
  h.validate();
  return h;
}

}  // namespace bsio::hg
