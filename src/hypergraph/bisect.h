// Multilevel bisection driver: coarsen to a small hypergraph, bisect it with
// greedy growing, then project back through the levels running FM at each.
#pragma once

#include "hypergraph/fm.h"
#include "hypergraph/hypergraph.h"
#include "hypergraph/partitioner.h"
#include "util/rng.h"

namespace bsio::hg {

// Returns side[v] in {0, 1}; ratio0 = desired fraction of total vertex
// weight on side 0.
std::vector<int> multilevel_bisect(const Hypergraph& h, double ratio0,
                                   const PartitionerOptions& opts, Rng& rng);

}  // namespace bsio::hg
