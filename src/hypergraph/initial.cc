#include "hypergraph/initial.h"

#include <algorithm>
#include <limits>
#include <numeric>

#include "hypergraph/metrics.h"

namespace bsio::hg {

namespace {

// Grow part 0 from a seed by repeatedly absorbing the unassigned vertex with
// the highest attraction (sum of weights of nets already touching part 0)
// until part 0 reaches its target weight.
std::vector<int> grow_from_seed(const Hypergraph& h,
                                const BisectionConstraint& c, VertexId seed,
                                Rng& rng) {
  const std::size_t nv = h.num_vertices();
  std::vector<int> side(nv, 1);
  std::vector<double> attraction(nv, 0.0);
  std::vector<bool> in0(nv, false);

  double w0 = 0.0;
  VertexId next = seed;
  while (next != static_cast<VertexId>(-1)) {
    side[next] = 0;
    in0[next] = true;
    w0 += h.vertex_weight(next);
    if (w0 >= c.target0) break;
    for (NetId n : h.nets(next))
      for (VertexId u : h.pins(n))
        if (!in0[u]) attraction[u] += h.net_weight(n);

    // Pick the most attracted unassigned vertex; random among untouched if
    // the frontier is empty (disconnected hypergraph).
    next = static_cast<VertexId>(-1);
    double best = -1.0;
    for (VertexId u = 0; u < nv; ++u) {
      if (in0[u]) continue;
      if (attraction[u] > best) {
        best = attraction[u];
        next = u;
      }
    }
    if (next != static_cast<VertexId>(-1) && best == 0.0) {
      // No frontier: jump to a random unassigned vertex.
      std::vector<VertexId> free;
      for (VertexId u = 0; u < nv; ++u)
        if (!in0[u]) free.push_back(u);
      next = free[rng.uniform(free.size())];
    }
  }
  return side;
}

std::vector<int> random_bisection(const Hypergraph& h,
                                  const BisectionConstraint& c, Rng& rng) {
  const std::size_t nv = h.num_vertices();
  std::vector<VertexId> order(nv);
  std::iota(order.begin(), order.end(), 0);
  rng.shuffle(order);
  std::vector<int> side(nv, 1);
  double w0 = 0.0;
  for (VertexId v : order) {
    if (w0 >= c.target0) break;
    side[v] = 0;
    w0 += h.vertex_weight(v);
  }
  return side;
}

struct Candidate {
  std::vector<int> side;
  double cut = std::numeric_limits<double>::infinity();
  bool feasible = false;
};

bool better(const Candidate& a, const Candidate& b) {
  if (a.feasible != b.feasible) return a.feasible;
  return a.cut < b.cut;
}

}  // namespace

std::vector<int> initial_bisection(const Hypergraph& h,
                                   const BisectionConstraint& c, Rng& rng,
                                   int tries) {
  const std::size_t nv = h.num_vertices();
  BSIO_CHECK(nv >= 1);

  auto evaluate = [&](std::vector<int> side) {
    Candidate cand;
    double w0 = 0.0, w1 = 0.0;
    for (VertexId v = 0; v < nv; ++v)
      (side[v] == 0 ? w0 : w1) += h.vertex_weight(v);
    cand.feasible = w0 <= c.max0 && w1 <= c.max1;
    cand.cut = cut_net_weight(h, side, 2);
    cand.side = std::move(side);
    return cand;
  };

  Candidate best;
  for (int t = 0; t < tries; ++t) {
    VertexId seed = static_cast<VertexId>(rng.uniform(nv));
    Candidate cand = evaluate(grow_from_seed(h, c, seed, rng));
    if (better(cand, best)) best = std::move(cand);
  }
  Candidate rnd = evaluate(random_bisection(h, c, rng));
  if (better(rnd, best)) best = std::move(rnd);
  return std::move(best.side);
}

}  // namespace bsio::hg
