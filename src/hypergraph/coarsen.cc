#include "hypergraph/coarsen.h"

#include <algorithm>
#include <numeric>
#include <unordered_map>

namespace bsio::hg {

namespace {

// FNV-ish hash over a sorted pin list, used to merge identical nets.
std::uint64_t hash_pins(const std::vector<VertexId>& pins) {
  std::uint64_t hval = 1469598103934665603ULL;
  for (VertexId v : pins) {
    hval ^= v + 0x9e3779b97f4a7c15ULL + (hval << 6) + (hval >> 2);
    hval *= 1099511628211ULL;
  }
  return hval;
}

}  // namespace

CoarseLevel coarsen_once(const Hypergraph& h, Rng& rng,
                         double max_cluster_weight) {
  const std::size_t nv = h.num_vertices();
  constexpr VertexId kNone = static_cast<VertexId>(-1);

  std::vector<VertexId> cluster(nv, kNone);
  std::vector<double> cluster_weight;
  cluster_weight.reserve(nv);

  std::vector<VertexId> order(nv);
  std::iota(order.begin(), order.end(), 0);
  rng.shuffle(order);

  // score[c] accumulates connectivity of the current vertex to cluster c;
  // touched lists the clusters scored this round.
  std::vector<double> score(nv, 0.0);
  std::vector<VertexId> touched;

  for (VertexId v : order) {
    if (cluster[v] != kNone) continue;
    touched.clear();
    for (NetId n : h.nets(v)) {
      const std::size_t sz = h.net_size(n);
      // Heavy-connectivity scoring: each shared pin contributes
      // w(n)/(|n|-1), so a fully shared net contributes its full weight.
      const double contrib = h.net_weight(n) / static_cast<double>(sz - 1);
      for (VertexId u : h.pins(n)) {
        if (u == v || cluster[u] == kNone) continue;
        VertexId c = cluster[u];
        if (score[c] == 0.0) touched.push_back(c);
        score[c] += contrib;
      }
    }
    VertexId best = kNone;
    double best_score = 0.0;
    for (VertexId c : touched) {
      if (score[c] > best_score &&
          cluster_weight[c] + h.vertex_weight(v) <= max_cluster_weight) {
        best = c;
        best_score = score[c];
      }
      score[c] = 0.0;
    }
    if (best == kNone) {
      cluster[v] = static_cast<VertexId>(cluster_weight.size());
      cluster_weight.push_back(h.vertex_weight(v));
    } else {
      cluster[v] = best;
      cluster_weight[best] += h.vertex_weight(v);
    }
  }

  const std::size_t nc = cluster_weight.size();

  std::vector<double> folded(nc, 0.0);
  for (VertexId v = 0; v < nv; ++v) folded[cluster[v]] += h.folded_net_weight(v);

  // Contract nets; merge nets with identical coarse pin sets.
  std::unordered_map<std::uint64_t, std::vector<std::pair<std::vector<VertexId>, double>>>
      merged;
  std::vector<VertexId> cpins;
  for (NetId n = 0; n < h.num_nets(); ++n) {
    cpins.clear();
    for (VertexId v : h.pins(n)) cpins.push_back(cluster[v]);
    std::sort(cpins.begin(), cpins.end());
    cpins.erase(std::unique(cpins.begin(), cpins.end()), cpins.end());
    if (cpins.size() == 1) {
      // Net fully absorbed into one cluster: fold its weight (it can never
      // be cut below this level, but still occupies sub-batch disk space).
      folded[cpins[0]] += h.net_weight(n);
      continue;
    }
    auto& bucket = merged[hash_pins(cpins)];
    bool found = false;
    for (auto& [pins, weight] : bucket) {
      if (pins == cpins) {
        weight += h.net_weight(n);
        found = true;
        break;
      }
    }
    if (!found) bucket.emplace_back(cpins, h.net_weight(n));
  }

  HypergraphBuilder b2;
  for (VertexId c = 0; c < nc; ++c) b2.add_vertex(cluster_weight[c], folded[c]);
  for (auto& [hash, bucket] : merged)
    for (auto& [pins, weight] : bucket) b2.add_net(weight, std::move(pins));

  CoarseLevel level;
  level.coarse = b2.build();
  level.fine_to_coarse = std::move(cluster);
  return level;
}

}  // namespace bsio::hg
