// Partition quality metrics: connectivity-1 cost (Eq. 23), cut-net cost,
// balance, and per-part incident net weight (the BINW bound, Eq. 24).
#pragma once

#include <vector>

#include "hypergraph/hypergraph.h"

namespace bsio::hg {

inline constexpr int kUnassigned = -1;

// parts[v] in [0, k) (kUnassigned not allowed here).
// Sum over cut nets of w(n) * (lambda(n) - 1).
double connectivity_minus_one(const Hypergraph& h,
                              const std::vector<int>& parts, int k);

// Sum over cut nets of w(n).
double cut_net_weight(const Hypergraph& h, const std::vector<int>& parts,
                      int k);

// Per-part vertex weight sums.
std::vector<double> part_weights(const Hypergraph& h,
                                 const std::vector<int>& parts, int k);

// max_p W_p / (W_total / k) - 1; 0 means perfectly balanced.
double imbalance(const Hypergraph& h, const std::vector<int>& parts, int k);

// Per-part incident net weight: for part p, the sum over nets with at least
// one pin in p of w(n), plus the folded weights of p's vertices. A net
// incident to multiple parts contributes its full weight to each (it must be
// materialised in each sub-batch).
std::vector<double> incident_net_weights(const Hypergraph& h,
                                         const std::vector<int>& parts, int k);

// Number of nets with lambda > 1.
std::size_t num_cut_nets(const Hypergraph& h, const std::vector<int>& parts,
                         int k);

}  // namespace bsio::hg
