// Recursive-bisection K-way partitioning with net splitting (PaToH style):
// after each bisection, cut nets are split into per-side copies so that
// deeper cuts of the same net are charged again — this makes the sum of
// bisection cut weights equal the K-way connectivity-1 cost.
#pragma once

#include "hypergraph/hypergraph.h"
#include "hypergraph/partitioner.h"
#include "util/rng.h"

namespace bsio::hg {

// Extracts the sub-hypergraph induced by the vertices with side[v] == which,
// splitting nets and folding nets that shrink below 2 pins. Returns the sub
// hypergraph and fills orig_of with the original vertex id of each sub
// vertex.
Hypergraph extract_side(const Hypergraph& h, const std::vector<int>& side,
                        int which, std::vector<VertexId>& orig_of);

}  // namespace bsio::hg
