#include "hypergraph/metrics.h"

#include <algorithm>

namespace bsio::hg {

namespace {

// Applies fn(net, lambda) for every net; lambda = #parts the net touches.
template <typename Fn>
void for_each_lambda(const Hypergraph& h, const std::vector<int>& parts, int k,
                     Fn&& fn) {
  std::vector<int> seen(static_cast<std::size_t>(k), -1);
  for (NetId n = 0; n < h.num_nets(); ++n) {
    int lambda = 0;
    for (VertexId v : h.pins(n)) {
      int p = parts[v];
      BSIO_DCHECK(p >= 0 && p < k);
      if (seen[static_cast<std::size_t>(p)] != static_cast<int>(n)) {
        seen[static_cast<std::size_t>(p)] = static_cast<int>(n);
        ++lambda;
      }
    }
    fn(n, lambda);
  }
}

}  // namespace

double connectivity_minus_one(const Hypergraph& h,
                              const std::vector<int>& parts, int k) {
  double cost = 0.0;
  for_each_lambda(h, parts, k, [&](NetId n, int lambda) {
    cost += h.net_weight(n) * static_cast<double>(lambda - 1);
  });
  return cost;
}

double cut_net_weight(const Hypergraph& h, const std::vector<int>& parts,
                      int k) {
  double cost = 0.0;
  for_each_lambda(h, parts, k, [&](NetId n, int lambda) {
    if (lambda > 1) cost += h.net_weight(n);
  });
  return cost;
}

std::vector<double> part_weights(const Hypergraph& h,
                                 const std::vector<int>& parts, int k) {
  std::vector<double> w(static_cast<std::size_t>(k), 0.0);
  for (VertexId v = 0; v < h.num_vertices(); ++v)
    w[static_cast<std::size_t>(parts[v])] += h.vertex_weight(v);
  return w;
}

double imbalance(const Hypergraph& h, const std::vector<int>& parts, int k) {
  auto w = part_weights(h, parts, k);
  double total = 0.0;
  for (double x : w) total += x;
  if (total <= 0.0) return 0.0;
  double avg = total / k;
  double mx = *std::max_element(w.begin(), w.end());
  return mx / avg - 1.0;
}

std::vector<double> incident_net_weights(const Hypergraph& h,
                                         const std::vector<int>& parts,
                                         int k) {
  std::vector<double> w(static_cast<std::size_t>(k), 0.0);
  std::vector<int> seen(static_cast<std::size_t>(k), -1);
  for (NetId n = 0; n < h.num_nets(); ++n) {
    for (VertexId v : h.pins(n)) {
      auto p = static_cast<std::size_t>(parts[v]);
      if (seen[p] != static_cast<int>(n)) {
        seen[p] = static_cast<int>(n);
        w[p] += h.net_weight(n);
      }
    }
  }
  for (VertexId v = 0; v < h.num_vertices(); ++v)
    w[static_cast<std::size_t>(parts[v])] += h.folded_net_weight(v);
  return w;
}

std::size_t num_cut_nets(const Hypergraph& h, const std::vector<int>& parts,
                         int k) {
  std::size_t cut = 0;
  for_each_lambda(h, parts, k, [&](NetId, int lambda) {
    if (lambda > 1) ++cut;
  });
  return cut;
}

}  // namespace bsio::hg
