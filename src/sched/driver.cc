#include "sched/driver.h"

#include <algorithm>
#include <memory>
#include <unordered_set>

#include "util/check.h"
#include "util/logging.h"
#include "util/ws_runtime.h"
#include "util/timer.h"

namespace bsio::sched {

BatchRunResult run_batch(Scheduler& scheduler, const wl::Workload& workload,
                         const sim::ClusterConfig& cluster,
                         const sim::FaultConfig& faults) {
  BatchRunOptions options;
  options.faults = faults;
  return run_batch(scheduler, workload, cluster, options);
}

BatchRunResult run_batch(Scheduler& scheduler, const wl::Workload& workload,
                         const sim::ClusterConfig& cluster,
                         const BatchRunOptions& options) {
  BatchRunResult result;
  result.scheduler = scheduler.name();

  // A malformed BSIO_THREADS is user input, not an internal bug: surface
  // the parse error here instead of aborting inside the runtime the first
  // time a planner sweep touches it.
  if (const Status v = WsRuntime::validate_env(); !v.ok()) {
    result.error = v.error().message;
    result.tasks_stranded = workload.num_tasks();
    return result;
  }
  result.planning_threads = WsRuntime::global().num_threads();

  if (const Status v = cluster.validate(); !v.ok()) {
    result.error = v.error().message;
    result.tasks_stranded = workload.num_tasks();
    return result;
  }
  if (const Status v = options.faults.validate(cluster); !v.ok()) {
    result.error = v.error().message;
    result.tasks_stranded = workload.num_tasks();
    return result;
  }
  if (const Status v = options.speculation.validate(); !v.ok()) {
    result.error = v.error().message;
    result.tasks_stranded = workload.num_tasks();
    return result;
  }
  if (const Status v =
          options.replication.validate(cluster.num_compute_nodes);
      !v.ok()) {
    result.error = v.error().message;
    result.tasks_stranded = workload.num_tasks();
    return result;
  }
  // Stats-reuse guard: a scheduler instance still loaded with a previous
  // run's counters must be reset before serving another batch.
  if (const Status v = scheduler.begin_batch(); !v.ok()) {
    result.error = v.error().message;
    result.tasks_stranded = workload.num_tasks();
    return result;
  }
  // Up-front feasibility (paper Section 4.2): a task's whole file set must
  // fit on one compute node, or staging can never complete — fail here with
  // a typed error instead of deep inside the engine's eviction loop. Checked
  // against the smallest node so the guarantee survives crashes (the minimum
  // over any alive subset is no smaller than the minimum over all nodes).
  {
    double min_cap = cluster.node_disk_capacity(0);
    for (std::size_t n = 1; n < cluster.num_compute_nodes; ++n)
      min_cap = std::min(min_cap, cluster.node_disk_capacity(n));
    for (const auto& t : workload.tasks()) {
      double bytes = 0.0;
      for (wl::FileId f : t.files) bytes += workload.file_size(f);
      if (bytes > min_cap) {
        result.error = "task " + std::to_string(t.id) + " needs " +
                       std::to_string(bytes) +
                       " bytes of input but the smallest compute node disk "
                       "holds " +
                       std::to_string(min_cap) +
                       " (a task's file set must fit on one node, paper "
                       "Section 4.2)";
        result.tasks_stranded = workload.num_tasks();
        return result;
      }
    }
  }

  sim::ExecutionEngine engine(cluster, workload,
                              {scheduler.eviction_policy(), /*trace=*/false,
                               options.faults, options.speculation});
  if (options.initial_cache != nullptr) {
    if (const Status v = engine.seed_cache(*options.initial_cache); !v.ok()) {
      result.error = v.error().message;
      result.tasks_stranded = workload.num_tasks();
      return result;
    }
  }
  SchedulerContext ctx{workload, cluster, engine, options.initial_cache};

  // Replica lifecycle: the manager runs one repair round after every
  // sub-batch, floored at the current makespan — the NEXT sub-batch's
  // foreground transfers then contend with the repair reservations on the
  // shared timelines, which is the honest-competition contract. Planners
  // see manager-placed replicas automatically (PlannerState seeds holders
  // from the engine's cluster state).
  std::unique_ptr<replica::ReplicaManager> repair_mgr;
  if (options.replication.enabled)
    repair_mgr =
        std::make_unique<replica::ReplicaManager>(workload,
                                                  options.replication);

  std::vector<wl::TaskId> pending;
  pending.reserve(workload.num_tasks());
  for (const auto& t : workload.tasks()) pending.push_back(t.id);

  while (!pending.empty()) {
    if (engine.alive_count() == 0) {
      result.error = "every compute node crashed with tasks still pending";
      result.tasks_stranded = pending.size();
      break;
    }

    // Liveness only changes while the engine executes; one refresh per
    // round gives every planner sweep a stable const view.
    ctx.refresh_alive();

    WallTimer timer;
    sim::SubBatchPlan plan = scheduler.plan_sub_batch(pending, ctx);
    result.scheduling_seconds += timer.elapsed_seconds();

    BSIO_CHECK_MSG(!plan.empty(), "scheduler returned an empty sub-batch");
    std::unordered_set<wl::TaskId> planned(plan.tasks.begin(),
                                           plan.tasks.end());
    BSIO_CHECK_MSG(planned.size() == plan.tasks.size(),
                   "sub-batch plan repeats tasks");
    const std::unordered_set<wl::TaskId> pending_set(pending.begin(),
                                                     pending.end());
    for (wl::TaskId t : plan.tasks)
      BSIO_CHECK_MSG(pending_set.count(t) > 0,
                     "sub-batch plan names a non-pending task");

    auto executed = engine.execute(plan);
    if (!executed.ok()) {
      result.error = executed.error().message;
      result.tasks_stranded = pending.size();
      break;
    }
    ++result.sub_batches;
    std::erase_if(pending,
                  [&](wl::TaskId t) { return planned.count(t) > 0; });

    // Recovery loop: tasks orphaned by node crashes (killed mid-run or
    // queued on a node that died) go back to pending and are re-planned on
    // the surviving nodes next round.
    std::vector<wl::TaskId> orphaned = engine.take_orphaned();
    if (!orphaned.empty()) {
      BSIO_LOG(kDebug) << scheduler.name() << ": re-scheduling "
                       << orphaned.size() << " tasks orphaned by crashes ("
                       << engine.alive_count() << " nodes alive)";
      pending.insert(pending.end(), orphaned.begin(), orphaned.end());
    }
    if (repair_mgr != nullptr) {
      const replica::RepairReport rep =
          repair_mgr->run_repairs(engine, engine.makespan());
      if (rep.flushes_scheduled + rep.replicas_scheduled > 0) {
        BSIO_LOG(kDebug) << scheduler.name() << ": repair round scheduled "
                         << rep.flushes_scheduled << " flushes and "
                         << rep.replicas_scheduled << " replicas ("
                         << rep.deferred << " deferred)";
      }
    }
    if (executed.value().speculative_launches > 0) {
      BSIO_LOG(kDebug) << scheduler.name() << ": sub-batch launched "
                       << executed.value().speculative_launches
                       << " speculative duplicates ("
                       << executed.value().speculative_wins << " won, "
                       << executed.value().wasted_seconds
                       << "s of duplicate work cancelled)";
    }
    BSIO_LOG(kDebug) << scheduler.name() << ": sub-batch " << result.sub_batches
                     << " executed " << plan.tasks.size() << " tasks, "
                     << pending.size() << " pending, makespan "
                     << engine.makespan();
  }

  // Convergence passes: a round's fan-out can unlock the next one (a fresh
  // copy becomes a source; a budget bound spreads work over rounds), so
  // drain the deficit with a few bounded extra rounds, each floored at the
  // previous round's last completion. What remains after that is a real
  // deficit: lost versions or copies that fit nowhere.
  if (repair_mgr != nullptr && result.error.empty()) {
    double floor = engine.makespan();
    for (int round = 0; round < 8; ++round) {
      if (repair_mgr->files_below_target(engine).empty()) break;
      const replica::RepairReport rep = repair_mgr->run_repairs(engine, floor);
      if (rep.flushes_scheduled + rep.replicas_scheduled == 0) break;
      floor = std::max(floor, rep.last_completion);
    }
    result.replica_deficit = repair_mgr->files_below_target(engine).size();
  }

  result.batch_time = engine.makespan();
  result.stats = engine.totals();
  result.task_completion_times = engine.completed_task_times();
  std::sort(result.task_completion_times.begin(),
            result.task_completion_times.end());
  if (options.capture_final_cache)
    result.final_cache = sim::InitialCacheState::capture(engine.state());
  // Fold in the scheduler's solver counters (non-zero for IP only).
  scheduler.add_solver_stats(result.stats);
  result.per_task_scheduling_ms =
      workload.num_tasks() > 0
          ? result.scheduling_seconds * 1e3 /
                static_cast<double>(workload.num_tasks())
          : 0.0;
  return result;
}

}  // namespace bsio::sched
