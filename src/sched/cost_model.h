// Shared planner-side cost estimates.
//
// probabilistic_exec_times implements Eq. 25-26: the expected execution
// time of each task assuming uniform placement probabilities, used as
// hypergraph vertex weights by the BiPartition scheduler (and as an
// ablation toggle). estimate_completion is the MCT-style estimate MinMin
// and JobDataPresent plan against.
#pragma once

#include <vector>

#include "sim/cluster.h"
#include "sim/state.h"
#include "workload/types.h"

namespace bsio::sched {

// Eq. 25-26 expected execution time of every task in `tasks`, where file
// sharing degrees s_j are counted within `tasks` only and T = |tasks|,
// K = number of compute nodes. Entries align with `tasks`. The task's
// measured compute_seconds stands in for the paper's per-byte compute
// constant C (the emulators derive one from the other linearly).
std::vector<double> probabilistic_exec_times(const wl::Workload& w,
                                             const std::vector<wl::TaskId>& tasks,
                                             const sim::ClusterConfig& c);

// Plain vertex weights (compute + local read only), the ablation
// counterpart of the probabilistic weights.
std::vector<double> plain_exec_times(const wl::Workload& w,
                                     const std::vector<wl::TaskId>& tasks,
                                     const sim::ClusterConfig& c);

// Planner bookkeeping for MCT estimates: estimated ready times of every
// port plus planned file locations. MinMin / JDP mutate one of these as
// they build their assignment.
struct PlannerState {
  std::vector<double> node_ready;     // per compute node
  std::vector<double> storage_ready;  // per storage node
  double uplink_ready = 0.0;
  // planned_location[f] = nodes expected to hold f, with availability time.
  std::vector<std::vector<std::pair<wl::NodeId, double>>> planned;

  PlannerState(const wl::Workload& w, const sim::ClusterConfig& c,
               const sim::ClusterState& current);

  bool on_node(wl::FileId f, wl::NodeId n) const;
};

struct CompletionEstimate {
  double completion = 0.0;
  double transfer_seconds = 0.0;  // time spent arriving files
  // Chosen source per missing file: (file, src, is_remote, arrival).
  struct Stage {
    wl::FileId file;
    wl::NodeId src;
    bool remote;
    double arrival;
  };
  std::vector<Stage> stages;
};

// MCT of `task` on `node` against the planner state (no mutation): files
// already planned on the node are free; others arrive from the best of the
// remote home or any planned replica holder, serialized on the node port.
CompletionEstimate estimate_completion(const wl::Workload& w,
                                       const sim::ClusterConfig& c,
                                       const PlannerState& ps,
                                       wl::TaskId task, wl::NodeId node);

// Applies the estimate: bumps port readies and records new file locations.
void apply_assignment(const wl::Workload& w, const sim::ClusterConfig& c,
                      PlannerState& ps, wl::TaskId task, wl::NodeId node,
                      const CompletionEstimate& est);

}  // namespace bsio::sched
