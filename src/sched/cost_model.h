// Shared planner-side cost estimates.
//
// probabilistic_exec_times implements Eq. 25-26: the expected execution
// time of each task assuming uniform placement probabilities, used as
// hypergraph vertex weights by the BiPartition scheduler (and as an
// ablation toggle). estimate_completion is the MCT-style estimate MinMin
// and JobDataPresent plan against.
//
// All transfer bandwidths resolve through sim::Topology, so the estimates
// price heterogeneous storage disks, NIC caps, CPU speeds, and rack links
// with the same model the engine simulates. On homogeneous topologies every
// expression reduces bit-identically to the classic uniform arithmetic.
//
// Concurrency contract: estimate_completion / estimate_completion_time take
// the PlannerState by const reference and perform no mutation, so any number
// of threads may evaluate candidate (task, node) pairs against one shared
// state concurrently. All mutation (apply_assignment, add_planned, reset)
// must happen on a single thread between those read-only sweeps.
//
// Warm start (online service): no separate plumbing exists here on purpose.
// PlannerState::reset seeds its replica holders from the engine's
// ClusterState, so a batch whose engine was pre-seeded via
// ExecutionEngine::seed_cache automatically prices carried-in copies as
// local/replica reads — the estimates stay bit-identical to a run where the
// same copies were staged by an earlier batch on the same engine.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/state.h"
#include "sim/topology.h"
#include "workload/types.h"

namespace bsio::sched {

// Reusable scratch for probabilistic_exec_times: a dense per-file sharer
// counter (plus the list of touched files, so clearing costs O(touched)
// instead of O(num_files)). Callers that evaluate many sub-batches — the
// BiPartition level-1/level-2 loops — keep one of these alive to avoid
// rebuilding a hash map per call.
struct ExecTimeScratch {
  std::vector<double> sharers;      // indexed by FileId; 0 between calls
  std::vector<wl::FileId> touched;  // files with a nonzero entry
};

// Eq. 25-26 expected execution time of every task in `tasks`, where file
// sharing degrees s_j are counted within `tasks` only and T = |tasks|,
// K = number of compute nodes. Entries align with `tasks`. The task's
// measured compute_seconds stands in for the paper's per-byte compute
// constant C (the emulators derive one from the other linearly).
// On heterogeneous topologies the per-node quantities (remote bandwidth
// into node i, slowest transfer into node i, CPU speed) are averaged over
// the uniform placement distribution the equations already assume.
// `scratch` may be null (a local buffer is used).
std::vector<double> probabilistic_exec_times(
    const wl::Workload& w, const std::vector<wl::TaskId>& tasks,
    const sim::Topology& topo, ExecTimeScratch* scratch = nullptr);

// Plain vertex weights (compute + local read only), the ablation
// counterpart of the probabilistic weights.
std::vector<double> plain_exec_times(const wl::Workload& w,
                                     const std::vector<wl::TaskId>& tasks,
                                     const sim::Topology& topo);

// Planner bookkeeping for MCT estimates: estimated ready times of every
// port plus planned file locations. MinMin / JDP mutate one of these as
// they build their assignment.
//
// Replica presence is tracked three ways, kept in sync by add_planned:
//  - planned[f]: the live holder list (node, availability) that replica-
//    source scans iterate — only actual holders, never all nodes;
//  - node_files[n]: the per-node replica list, for per-node load accounting
//    (JobDataPresent's Data Least Loaded placement);
//  - a bit-packed per-(file, node) presence bitmap making on_node O(1) at
//    one bit per entry — 1M files x 1k nodes costs ~125 MB where a
//    byte-or-wider grid would not fit the scale-sweep memory budget.
//    reset() clears exactly the set bits by walking the outgoing planned
//    lists (add_planned sets a bit iff it records a holder), so reuse
//    across sub-batch rounds costs O(holders), not O(files * nodes).
struct PlannerState {
  std::vector<double> node_ready;     // per compute node
  std::vector<double> storage_ready;  // per storage node
  // Estimated ready time of every shared link, indexed by Topology link id
  // (the global uplink, then the rack uplinks).
  std::vector<double> link_ready;
  // planned[f] = nodes expected to hold f, with availability time.
  // Read-only for planners; mutate via add_planned.
  std::vector<std::vector<std::pair<wl::NodeId, double>>> planned;
  // node_files[n] = files planned on compute node n (same entries as
  // `planned`, transposed).
  std::vector<std::vector<wl::FileId>> node_files;

  PlannerState() = default;
  PlannerState(const wl::Workload& w, const sim::Topology& topo,
               const sim::ClusterState& current);

  // Re-initializes against a (possibly different) workload / topology /
  // cache state, reusing the allocated buffers. `origin` rebases the cache
  // snapshot's absolute availability stamps into the planner's relative
  // clock: a copy available at absolute time a prices as max(0, a - origin).
  // The streaming service passes its live-window base time here (its engine
  // stamps availability on the global service clock); the batch path keeps
  // the default 0, which leaves every stamp verbatim — bit-identical to the
  // historical reset.
  void reset(const wl::Workload& w, const sim::Topology& topo,
             const sim::ClusterState& current, double origin = 0.0);

  // Records that node n is planned to hold file f from time `avail` on.
  // No-op if already present.
  void add_planned(wl::FileId f, wl::NodeId n, double avail);

  bool on_node(wl::FileId f, wl::NodeId n) const {
    const std::size_t bit = static_cast<std::size_t>(f) * num_nodes_ + n;
    return (present_[bit >> 6] >> (bit & 63)) & 1u;
  }

 private:
  std::vector<std::uint64_t> present_;  // 1 bit per (file, node), file-major
  std::size_t num_nodes_ = 0;
};

struct CompletionEstimate {
  double completion = 0.0;
  double transfer_seconds = 0.0;  // time spent arriving files
  // Chosen source per missing file: (file, src, is_remote, arrival).
  struct Stage {
    wl::FileId file;
    wl::NodeId src;
    bool remote;
    double arrival;
  };
  std::vector<Stage> stages;
};

// MCT of `task` on `node` against the planner state (no mutation): files
// already planned on the node are free; others arrive from the best of the
// remote home or any planned replica holder, serialized on the node port.
CompletionEstimate estimate_completion(const wl::Workload& w,
                                       const sim::Topology& topo,
                                       const PlannerState& ps, wl::TaskId task,
                                       wl::NodeId node);

// Completion time only — the exact same arithmetic as estimate_completion
// (both instantiate one shared core) without recording stages, so the hot
// parallel sweeps allocate nothing. estimate_completion(...).completion is
// bit-identical to this value.
double estimate_completion_time(const wl::Workload& w,
                                const sim::Topology& topo,
                                const PlannerState& ps, wl::TaskId task,
                                wl::NodeId node);

// Applies the estimate: bumps port readies and records new file locations.
void apply_assignment(const wl::Workload& w, const sim::Topology& topo,
                      PlannerState& ps, wl::TaskId task, wl::NodeId node,
                      const CompletionEstimate& est);

}  // namespace bsio::sched
