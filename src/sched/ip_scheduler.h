// The 0-1 IP scheduler (paper Section 4).
//
// Unlimited disk: one AllocationModel over all pending tasks, solved by
// branch and bound, yields the mapping and the full staging plan.
//
// Limited disk: the two-stage scheme — SelectionModel picks a maximal
// balanced disk-feasible sub-batch, AllocationModel then optimises that
// sub-batch's mapping and staging, the popularity eviction policy
// (Section 4.3) reclaims space between sub-batches (on demand, inside the
// engine).
//
// Both stages seed the branch and bound with a heuristic incumbent (the
// BiPartition level-2 mapping for allocation, greedy packing for
// selection), so node/time-limited solves degrade gracefully instead of
// failing — mirroring the paper's observation that the IP approach is only
// practical for small workloads while keeping every bench terminating.
#pragma once

#include "ip/branch_and_bound.h"
#include "sched/bipartition.h"
#include "sched/ip_formulation.h"
#include "sched/scheduler.h"

namespace bsio::sched {

struct IpSchedulerOptions {
  IpFormulationOptions formulation;
  ip::MipOptions selection_mip;   // defaults tightened in the constructor
  ip::MipOptions allocation_mip;
  BiPartitionOptions warm_start;  // level-2 mapping used as incumbent

  // Engineering cap on the number of tasks fed to one IP solve (0 = no
  // cap). When pending exceeds the cap, an affinity-ordered slice is
  // planned per round — the paper instead lets lp_solve run for minutes on
  // large instances; the cap keeps benches bounded while preserving the
  // IP-overhead growth trend (Fig 6b).
  std::size_t max_subbatch_tasks = 0;
};

class IpScheduler : public Scheduler {
 public:
  explicit IpScheduler(IpSchedulerOptions options = default_options());

  static IpSchedulerOptions default_options();

  std::string name() const override { return "IP"; }

  // Per-run stat lifecycle: the solver counters accumulate across every
  // plan_sub_batch call of one batch run. Reusing the instance for another
  // batch without reset_run_stats() would report both batches' kernel work
  // as one — begin_batch() returns a typed error instead of letting that
  // happen (the online service resets between batches).
  Status begin_batch() override;
  void reset_run_stats() override;

  sim::SubBatchPlan plan_sub_batch(const std::vector<wl::TaskId>& pending,
                                   const SchedulerContext& ctx) override;

  // Diagnostics of the most recent plan_sub_batch call.
  struct SolveInfo {
    long selection_nodes = 0;
    long allocation_nodes = 0;
    double selection_seconds = 0.0;
    double allocation_seconds = 0.0;
    ip::MipStatus allocation_status = ip::MipStatus::kNoSolution;
    double surrogate_objective = 0.0;
    // Simplex kernel counters over both stages of this call.
    lp::SolverStats stats;
  };
  const SolveInfo& last_solve() const { return last_; }

  // Kernel counters accumulated over every plan_sub_batch call, folded into
  // the batch driver's ExecutionStats.
  void add_solver_stats(sim::ExecutionStats& stats) const override;

 private:
  IpSchedulerOptions options_;
  SolveInfo last_;
  lp::SolverStats total_stats_;
  long total_nodes_ = 0;
};

}  // namespace bsio::sched
