#include "sched/ip_scheduler.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <optional>

#include "util/check.h"
#include "util/logging.h"

namespace bsio::sched {

IpSchedulerOptions IpScheduler::default_options() {
  IpSchedulerOptions o;
  o.selection_mip.time_limit_seconds = 5.0;
  o.selection_mip.max_nodes = 20000;
  o.allocation_mip.time_limit_seconds = 15.0;
  o.allocation_mip.max_nodes = 50000;
  // Rounding rarely helps these structured models at every node; probe
  // sparsely.
  o.selection_mip.heuristic_every = 8;
  o.allocation_mip.heuristic_every = 8;
  // Give up polishing once B&B stops improving the (seeded) incumbent:
  // measured on the bench workloads, thousands of extra nodes never beat
  // the warm start, so unbounded polishing only burns the time budget.
  o.selection_mip.stall_node_limit = 200;
  o.allocation_mip.stall_node_limit = 200;
  // Slice batches beyond 32 tasks. The sparse kernel solves a 32-task
  // allocation root LP in seconds where the dense kernel could not finish
  // 16 tasks inside its budget, so the affordable default sub-batch is now
  // a full 32-node wave; uncapped (0) remains available for small batches.
  o.max_subbatch_tasks = 32;
  return o;
}

IpScheduler::IpScheduler(IpSchedulerOptions options)
    : options_(std::move(options)) {}

Status IpScheduler::begin_batch() {
  if (total_nodes_ != 0 || total_stats_.factorizations != 0 ||
      total_stats_.pivots != 0 || total_stats_.bound_flips != 0)
    return Err(
        "IP scheduler carries solver stats from a previous batch run; call "
        "reset_run_stats() between batches or this run's report would "
        "aggregate both");
  return OkStatus();
}

void IpScheduler::reset_run_stats() {
  total_stats_ = lp::SolverStats{};
  total_nodes_ = 0;
  last_ = SolveInfo{};
}

void IpScheduler::add_solver_stats(sim::ExecutionStats& stats) const {
  stats.lp_factorizations += total_stats_.factorizations;
  if (total_stats_.factor_fill_nnz > stats.lp_factor_fill_nnz)
    stats.lp_factor_fill_nnz = total_stats_.factor_fill_nnz;
  stats.lp_pivots += total_stats_.pivots;
  stats.lp_bound_flips += total_stats_.bound_flips;
  stats.lp_degenerate_pivots += total_stats_.degenerate_pivots;
  stats.mip_nodes += total_nodes_;
}

sim::SubBatchPlan IpScheduler::plan_sub_batch(
    const std::vector<wl::TaskId>& pending, const SchedulerContext& ctx) {
  const wl::Workload& w = ctx.batch;
  last_ = SolveInfo{};

  // The IP models index compute nodes densely 0..C-1. Under fault injection
  // some nodes are dead, so the models are built over a compact cluster of
  // the survivors and the resulting plan is remapped back to real node ids.
  // With every node alive the compact cluster IS the real cluster and the
  // remap is the identity.
  const std::vector<wl::NodeId>& nodes = ctx.alive_nodes();
  BSIO_CHECK_MSG(!nodes.empty(), "IP: no compute node is alive");
  const bool degraded = nodes.size() < ctx.cluster.num_compute_nodes;
  sim::ClusterConfig cluster = ctx.cluster;
  std::optional<sim::Topology> compact_topo;
  if (degraded) {
    cluster.num_compute_nodes = nodes.size();
    if (!ctx.cluster.disk_capacity_per_node.empty()) {
      cluster.disk_capacity_per_node.clear();
      for (wl::NodeId n : nodes)
        cluster.disk_capacity_per_node.push_back(
            ctx.cluster.node_disk_capacity(n));
    }
    // Per-compute-node heterogeneity vectors shrink with the cluster.
    auto compact_vec = [&](auto& vec) {
      if (vec.empty()) return;
      auto full = vec;
      vec.clear();
      for (wl::NodeId n : nodes) vec.push_back(full[n]);
    };
    compact_vec(cluster.compute_nic_bw);
    compact_vec(cluster.compute_speed);
    compact_vec(cluster.compute_rack);
    compact_topo.emplace(cluster);
  }
  // The cost model the MIPs price against: the engine's own topology, or a
  // compacted copy of it when nodes have crashed.
  const sim::Topology& topo = degraded ? *compact_topo : ctx.topology;
  // FileGroup::present_on carries real node ids (crashed nodes lost their
  // caches, so only survivors appear); translate them to compact ids.
  auto compact_groups = [&](std::vector<FileGroup> groups) {
    if (!degraded) return groups;
    std::vector<wl::NodeId> to_compact(ctx.cluster.num_compute_nodes,
                                       wl::kInvalidNode);
    for (std::size_t i = 0; i < nodes.size(); ++i)
      to_compact[nodes[i]] = static_cast<wl::NodeId>(i);
    for (FileGroup& g : groups)
      for (wl::NodeId& n : g.present_on) n = to_compact[n];
    return groups;
  };

  // Engineering cap: slice oversized batches, keeping file-sharing
  // neighbours together (sort by first input file).
  std::vector<wl::TaskId> capped = pending;
  if (options_.max_subbatch_tasks > 0 &&
      capped.size() > options_.max_subbatch_tasks) {
    std::sort(capped.begin(), capped.end(),
              [&](wl::TaskId a, wl::TaskId b) {
                const auto& fa = w.task(a).files;
                const auto& fb = w.task(b).files;
                wl::FileId ka = fa.empty() ? 0 : fa.front();
                wl::FileId kb = fb.empty() ? 0 : fb.front();
                if (ka != kb) return ka < kb;
                return a < b;
              });
    capped.resize(options_.max_subbatch_tasks);
  }

  // ---- Stage 1: sub-batch selection (limited disk only). ----
  std::vector<wl::TaskId> sub_batch;
  if (cluster.unlimited_disk()) {
    sub_batch = capped;
  } else {
    SelectionModel sel(
        w, capped,
        compact_groups(coalesce_files(w, capped, ctx.engine.state())),
        topo, options_.formulation);
    ip::MipSolver solver(sel.model(), sel.integer_vars());
    auto seed = sel.greedy_incumbent();
    if (!seed.empty()) solver.set_incumbent(seed);
    ip::MipResult r = solver.solve(options_.selection_mip);
    last_.selection_nodes = r.nodes;
    last_.selection_seconds = r.solve_seconds;
    last_.stats.accumulate(r.stats);
    total_stats_.accumulate(r.stats);
    total_nodes_ += r.nodes;
    if (r.status == ip::MipStatus::kOptimal ||
        r.status == ip::MipStatus::kFeasible)
      sub_batch = sel.extract_sub_batch(r.x);
    if (sub_batch.empty()) {
      // Balance/disk constraints can make the IP reject everything (e.g. a
      // C-node balance row with < C remaining tasks). Fall back to the
      // single smallest pending task so the driver always progresses.
      BSIO_LOG(kInfo) << "IP selection produced no sub-batch; falling back "
                         "to a single task";
      wl::TaskId smallest = pending.front();
      double best = std::numeric_limits<double>::infinity();
      for (wl::TaskId t : pending) {
        double bytes = 0.0;
        for (wl::FileId f : w.task(t).files) bytes += w.file_size(f);
        if (bytes < best) {
          best = bytes;
          smallest = t;
        }
      }
      sub_batch = {smallest};
    }
  }

  // ---- Stage 2: allocation + data placement. ----
  AllocationModel alloc(
      w, sub_batch,
      compact_groups(coalesce_files(w, sub_batch, ctx.engine.state())),
      topo, options_.formulation);
  ip::MipSolver solver(alloc.model(), alloc.integer_vars());

  // Warm start from the BiPartition level-2 mapping (star staging).
  std::vector<wl::NodeId> warm =
      bipartition_map_tasks(w, sub_batch, topo, options_.warm_start);
  std::vector<double> incumbent = alloc.incumbent_from_mapping(warm);
  const bool seeded = solver.set_incumbent(incumbent);
  if (!seeded) {
    BSIO_LOG(kInfo) << "IP allocation warm start rejected (disk-infeasible "
                       "heuristic mapping); solving cold";
  }

  ip::MipResult r = solver.solve(options_.allocation_mip);
  last_.allocation_nodes = r.nodes;
  last_.allocation_seconds = r.solve_seconds;
  last_.allocation_status = r.status;
  last_.stats.accumulate(r.stats);
  total_stats_.accumulate(r.stats);
  total_nodes_ += r.nodes;

  sim::SubBatchPlan plan;
  if (r.status == ip::MipStatus::kOptimal ||
      r.status == ip::MipStatus::kFeasible) {
    last_.surrogate_objective = alloc.makespan_surrogate(r.x);
    plan = alloc.extract_plan(r.x);
  } else if (seeded) {
    plan = alloc.extract_plan(incumbent);
    last_.surrogate_objective = alloc.makespan_surrogate(incumbent);
  } else {
    // Node/time-limited solve found nothing and the heuristic incumbent was
    // disk-infeasible for the static model. Fall back to the warm mapping
    // as a bare assignment (no staging directives): the engine's dynamic
    // staging and on-demand eviction handle disk constraints at runtime, so
    // the batch still progresses instead of aborting.
    BSIO_LOG(kInfo) << "IP allocation found no solution; falling back to "
                       "the heuristic mapping with dynamic staging";
    plan.tasks = sub_batch;
    for (std::size_t i = 0; i < sub_batch.size(); ++i)
      plan.assignment[sub_batch[i]] = warm[i];
  }
  if (degraded) {
    // Compact node ids -> real (surviving) node ids.
    for (auto& [task, node] : plan.assignment) node = nodes[node];
    std::map<std::pair<wl::FileId, wl::NodeId>, sim::StagingSource> staging;
    for (const auto& [key, src] : plan.staging) {
      sim::StagingSource s = src;
      if (s.kind == sim::SourceKind::kReplica) s.src_node = nodes[s.src_node];
      staging[{key.first, nodes[key.second]}] = s;
    }
    plan.staging = std::move(staging);
  }
  return plan;
}

}  // namespace bsio::sched
