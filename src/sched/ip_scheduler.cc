#include "sched/ip_scheduler.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/check.h"
#include "util/logging.h"

namespace bsio::sched {

IpSchedulerOptions IpScheduler::default_options() {
  IpSchedulerOptions o;
  o.selection_mip.time_limit_seconds = 5.0;
  o.selection_mip.max_nodes = 20000;
  o.allocation_mip.time_limit_seconds = 15.0;
  o.allocation_mip.max_nodes = 50000;
  // Rounding rarely helps these structured models at every node; probe
  // sparsely.
  o.selection_mip.heuristic_every = 8;
  o.allocation_mip.heuristic_every = 8;
  return o;
}

IpScheduler::IpScheduler(IpSchedulerOptions options)
    : options_(std::move(options)) {}

sim::SubBatchPlan IpScheduler::plan_sub_batch(
    const std::vector<wl::TaskId>& pending, const SchedulerContext& ctx) {
  const wl::Workload& w = ctx.batch;
  const sim::ClusterConfig& cluster = ctx.cluster;
  last_ = SolveInfo{};

  // Engineering cap: slice oversized batches, keeping file-sharing
  // neighbours together (sort by first input file).
  std::vector<wl::TaskId> capped = pending;
  if (options_.max_subbatch_tasks > 0 &&
      capped.size() > options_.max_subbatch_tasks) {
    std::sort(capped.begin(), capped.end(),
              [&](wl::TaskId a, wl::TaskId b) {
                const auto& fa = w.task(a).files;
                const auto& fb = w.task(b).files;
                wl::FileId ka = fa.empty() ? 0 : fa.front();
                wl::FileId kb = fb.empty() ? 0 : fb.front();
                if (ka != kb) return ka < kb;
                return a < b;
              });
    capped.resize(options_.max_subbatch_tasks);
  }

  // ---- Stage 1: sub-batch selection (limited disk only). ----
  std::vector<wl::TaskId> sub_batch;
  if (cluster.unlimited_disk()) {
    sub_batch = capped;
  } else {
    SelectionModel sel(w, capped, coalesce_files(w, capped,
                                                  ctx.engine.state()),
                       cluster, options_.formulation);
    ip::MipSolver solver(sel.model(), sel.integer_vars());
    auto seed = sel.greedy_incumbent();
    if (!seed.empty()) solver.set_incumbent(seed);
    ip::MipResult r = solver.solve(options_.selection_mip);
    last_.selection_nodes = r.nodes;
    last_.selection_seconds = r.solve_seconds;
    if (r.status == ip::MipStatus::kOptimal ||
        r.status == ip::MipStatus::kFeasible)
      sub_batch = sel.extract_sub_batch(r.x);
    if (sub_batch.empty()) {
      // Balance/disk constraints can make the IP reject everything (e.g. a
      // C-node balance row with < C remaining tasks). Fall back to the
      // single smallest pending task so the driver always progresses.
      BSIO_LOG(kInfo) << "IP selection produced no sub-batch; falling back "
                         "to a single task";
      wl::TaskId smallest = pending.front();
      double best = std::numeric_limits<double>::infinity();
      for (wl::TaskId t : pending) {
        double bytes = 0.0;
        for (wl::FileId f : w.task(t).files) bytes += w.file_size(f);
        if (bytes < best) {
          best = bytes;
          smallest = t;
        }
      }
      sub_batch = {smallest};
    }
  }

  // ---- Stage 2: allocation + data placement. ----
  AllocationModel alloc(w, sub_batch,
                        coalesce_files(w, sub_batch, ctx.engine.state()),
                        cluster, options_.formulation);
  ip::MipSolver solver(alloc.model(), alloc.integer_vars());

  // Warm start from the BiPartition level-2 mapping (star staging).
  std::vector<wl::NodeId> warm =
      bipartition_map_tasks(w, sub_batch, cluster, options_.warm_start);
  std::vector<double> incumbent = alloc.incumbent_from_mapping(warm);
  const bool seeded = solver.set_incumbent(incumbent);
  if (!seeded) {
    BSIO_LOG(kInfo) << "IP allocation warm start rejected (disk-infeasible "
                       "heuristic mapping); solving cold";
  }

  ip::MipResult r = solver.solve(options_.allocation_mip);
  last_.allocation_nodes = r.nodes;
  last_.allocation_seconds = r.solve_seconds;
  last_.allocation_status = r.status;

  std::vector<double> solution;
  if (r.status == ip::MipStatus::kOptimal ||
      r.status == ip::MipStatus::kFeasible) {
    solution = r.x;
    last_.surrogate_objective = alloc.makespan_surrogate(r.x);
  } else {
    BSIO_CHECK_MSG(seeded,
                   "IP allocation failed and no warm start was available");
    solution = incumbent;
    last_.surrogate_objective = alloc.makespan_surrogate(incumbent);
  }
  return alloc.extract_plan(solution);
}

}  // namespace bsio::sched
