#include "sched/incremental.h"

#include <algorithm>
#include <utility>

#include "sched/bipartition.h"
#include "sched/minmin.h"
#include "util/check.h"

namespace bsio::sched {

void IncrementalPlanner::replay(const SchedulerContext& ctx) {
  ps_.reset(ctx.batch, ctx.topology, ctx.engine.state(), origin_);
  for (LiveTask& lt : live_) {
    lt.est_start = ps_.node_ready[lt.node];
    const CompletionEstimate est =
        estimate_completion(ctx.batch, ctx.topology, ps_, lt.task, lt.node);
    apply_assignment(ctx.batch, ctx.topology, ps_, lt.task, lt.node, est);
    lt.est_completion = est.completion;
  }
}

sim::SubBatchPlan IncrementalPlanner::commit_horizon(
    const HorizonOptions& opts) {
  sim::SubBatchPlan plan;
  if (live_.empty()) return plan;

  std::vector<LiveTask> keep;
  for (const LiveTask& lt : live_) {
    const bool freeze =
        opts.window_seconds <= 0.0 || lt.est_start <= opts.window_seconds;
    if (freeze) {
      plan.tasks.push_back(lt.task);
      plan.assignment[lt.task] = lt.node;
    } else {
      keep.push_back(lt);
    }
  }
  if (plan.tasks.empty() && opts.ensure_progress) {
    // Nothing inside the window: release the earliest estimated start
    // (ties to live order) so the service always makes progress.
    std::size_t best = 0;
    for (std::size_t i = 1; i < keep.size(); ++i)
      if (keep[i].est_start < keep[best].est_start) best = i;
    plan.tasks.push_back(keep[best].task);
    plan.assignment[keep[best].task] = keep[best].node;
    keep.erase(keep.begin() + static_cast<std::ptrdiff_t>(best));
  }
  annotate(plan);
  live_ = std::move(keep);
  return plan;
}

std::vector<wl::TaskId> IncrementalPlanner::dirty_from_files(
    const wl::Workload& w, const std::vector<wl::FileId>& files) const {
  std::vector<wl::TaskId> dirty;
  if (files.empty() || live_.empty()) return dirty;
  std::vector<char> touched(w.num_files(), 0);
  for (wl::FileId f : files) touched[f] = 1;
  for (const LiveTask& lt : live_)
    for (wl::FileId f : w.task(lt.task).files)
      if (touched[f]) {
        dirty.push_back(lt.task);
        break;
      }
  return dirty;
}

// --- Delta MinMin. ---

void DeltaMinMinPlanner::insert(const std::vector<wl::TaskId>& tasks,
                                const SchedulerContext& ctx) {
  // Load ps_ with the surviving live plan, then run the MinMin core over
  // only the insertions — with an empty live plan this is exactly
  // MinMinScheduler::plan_sub_batch (reset + core), the quiescent
  // bit-identity anchor.
  replay(ctx);
  sim::SubBatchPlan delta;
  minmin_plan_into(ctx.batch, ctx.topology, ps_, tasks, ctx.alive_nodes(),
                   exact_threshold_, stale_retry_budget_, delta);
  for (wl::TaskId t : delta.tasks)
    live_.push_back({t, delta.assignment.at(t), 0.0, 0.0});
  // One more pass to stamp est_start / est_completion for the appended
  // entries (and any drift the insertions caused is irrelevant — the
  // replay is a pure re-pricing of the same commitments).
  replay(ctx);
}

void DeltaMinMinPlanner::extend(std::vector<wl::TaskId> new_tasks,
                                const SchedulerContext& ctx) {
  if (new_tasks.empty()) {
    if (!live_.empty()) replay(ctx);
    return;
  }
  insert(new_tasks, ctx);
}

void DeltaMinMinPlanner::repair(const std::vector<wl::TaskId>& dirty,
                                const SchedulerContext& ctx) {
  if (dirty.empty() || live_.empty()) return;
  std::vector<char> is_dirty(ctx.batch.num_tasks(), 0);
  for (wl::TaskId t : dirty) is_dirty[t] = 1;

  std::vector<LiveTask> survivors;
  std::vector<wl::TaskId> removed;  // live order
  survivors.reserve(live_.size());
  for (const LiveTask& lt : live_) {
    if (is_dirty[lt.task])
      removed.push_back(lt.task);
    else
      survivors.push_back(lt);
  }
  if (removed.empty()) return;
  live_ = std::move(survivors);
  insert(removed, ctx);
}

// --- Part repair (BiPartition / from-scratch fallback). ---

void PartRepairPlanner::plan_pool(std::vector<wl::TaskId> pool,
                                  const SchedulerContext& ctx) {
  live_.clear();
  backlog_.clear();
  staging_.clear();
  prefetches_.clear();
  prefetches_pending_ = false;
  if (pool.empty()) {
    replay(ctx);
    return;
  }

  sim::SubBatchPlan p = base_.plan_sub_batch(pool, ctx);
  BSIO_CHECK_MSG(!p.empty(), "base scheduler returned an empty sub-batch");
  live_.reserve(p.tasks.size());
  for (wl::TaskId t : p.tasks) live_.push_back({t, p.assignment.at(t), 0, 0});
  staging_ = std::move(p.staging);
  prefetches_ = std::move(p.prefetches);
  prefetches_pending_ = !prefetches_.empty();

  // Deferred pool tasks keep their pool order — the batch driver's
  // order-preserving pending erase, reproduced for quiescent bit-identity.
  std::vector<char> planned(ctx.batch.num_tasks(), 0);
  for (wl::TaskId t : p.tasks) planned[t] = 1;
  for (wl::TaskId t : pool)
    if (!planned[t]) backlog_.push_back(t);

  replay(ctx);
}

bool PartRepairPlanner::overlaps_live(const std::vector<wl::TaskId>& tasks,
                                      const wl::Workload& w) const {
  std::vector<char> in_part(w.num_files(), 0);
  for (const LiveTask& lt : live_)
    for (wl::FileId f : w.task(lt.task).files) in_part[f] = 1;
  for (wl::TaskId t : tasks)
    for (wl::FileId f : w.task(t).files)
      if (in_part[f]) return true;
  return false;
}

void PartRepairPlanner::extend(std::vector<wl::TaskId> new_tasks,
                               const SchedulerContext& ctx) {
  if (new_tasks.empty()) {
    if (live_.empty() && !backlog_.empty()) {
      // The batch driver's next round: re-select a sub-batch from the
      // remaining pool against the post-execution cache.
      plan_pool(std::move(backlog_), ctx);
    } else if (!live_.empty()) {
      replay(ctx);
    }
    return;
  }

  if (live_.empty()) {
    std::vector<wl::TaskId> pool = std::move(backlog_);
    pool.insert(pool.end(), new_tasks.begin(), new_tasks.end());
    plan_pool(std::move(pool), ctx);
    return;
  }

  if (footprint_gate_ && !overlaps_live(new_tasks, ctx.batch)) {
    // The arrivals share no file with the live part: the BINW selection
    // stands, the newcomers queue for the next round.
    backlog_.insert(backlog_.end(), new_tasks.begin(), new_tasks.end());
    replay(ctx);
    return;
  }

  // Dirty part: dissolve it and re-run level-1 selection over everything
  // still unexecuted.
  std::vector<wl::TaskId> pool;
  pool.reserve(live_.size() + backlog_.size() + new_tasks.size());
  for (const LiveTask& lt : live_) pool.push_back(lt.task);
  pool.insert(pool.end(), backlog_.begin(), backlog_.end());
  pool.insert(pool.end(), new_tasks.begin(), new_tasks.end());
  plan_pool(std::move(pool), ctx);
}

void PartRepairPlanner::repair(const std::vector<wl::TaskId>& dirty,
                               const SchedulerContext& ctx) {
  if (dirty.empty() || live_.empty()) return;
  std::vector<char> is_live(ctx.batch.num_tasks(), 0);
  for (const LiveTask& lt : live_) is_live[lt.task] = 1;
  const bool hits_live = std::any_of(
      dirty.begin(), dirty.end(), [&](wl::TaskId t) { return is_live[t]; });
  if (!hits_live) return;
  std::vector<wl::TaskId> pool;
  pool.reserve(live_.size() + backlog_.size());
  for (const LiveTask& lt : live_) pool.push_back(lt.task);
  pool.insert(pool.end(), backlog_.begin(), backlog_.end());
  plan_pool(std::move(pool), ctx);
}

void PartRepairPlanner::annotate(sim::SubBatchPlan& plan) {
  plan.staging = staging_;
  if (prefetches_pending_) {
    plan.prefetches = prefetches_;
    prefetches_pending_ = false;
  }
}

std::unique_ptr<IncrementalPlanner> make_incremental_planner(Scheduler& base) {
  if (auto* mm = dynamic_cast<MinMinScheduler*>(&base))
    return std::make_unique<DeltaMinMinPlanner>(base, mm->exact_threshold(),
                                                mm->stale_retry_budget());
  const bool gate = dynamic_cast<BiPartitionScheduler*>(&base) != nullptr;
  return std::make_unique<PartRepairPlanner>(base, gate);
}

}  // namespace bsio::sched
