// Batch-mode Job Data Present + Data Least Loaded (Ranganathan & Foster
// [13], adapted per paper Section 3).
//
// Scheduling (Job Data Present): a task goes to the node where its expected
// data transfer time is smallest — i.e. the node already holding the
// largest (cheapest-to-complete) share of its inputs — with ties broken by
// the least-loaded node. Because all batch tasks are present at time zero,
// the FIFO order of [13] is replaced by the paper's adaptation: tasks are
// committed in order of least expected earliest completion time.
//
// Replication (Data Least Loaded), decoupled from scheduling: files whose
// popularity (pending request count) exceeds a threshold are proactively
// replicated onto the least-loaded compute node before the batch runs.
// Pairs with LRU eviction, as in [13].
#pragma once

#include "sched/cost_model.h"
#include "sched/scheduler.h"

namespace bsio::sched {

struct JdpOptions {
  // A file is replicated when its pending request count strictly exceeds
  // num_tasks / num_compute_nodes (<= 0 picks that default).
  double popularity_threshold = 0.0;
  // Cap on proactive replications per sub-batch (0 = no cap).
  std::size_t max_prefetches = 0;
};

class JobDataPresentScheduler : public Scheduler {
 public:
  explicit JobDataPresentScheduler(JdpOptions options = {})
      : options_(options) {}

  std::string name() const override { return "JobDataPresent"; }
  sim::EvictionPolicy eviction_policy() const override {
    return sim::EvictionPolicy::kLru;
  }
  sim::SubBatchPlan plan_sub_batch(const std::vector<wl::TaskId>& pending,
                                   const SchedulerContext& ctx) override;

 private:
  JdpOptions options_;
  PlannerState ps_;  // reused across rounds (epoch-stamped reset)
};

}  // namespace bsio::sched
