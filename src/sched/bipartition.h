// BiPartition: the paper's bi-level hypergraph partitioning scheduler
// (Section 5).
//
// Level 1 (sub-batch selection): tasks are vertices, files are nets
// (weights: expected execution time via Eq. 25-26, file size); BINW
// partitioning bounds every sub-batch's incident net weight (= bytes it
// must stage) by the compute cluster's aggregate disk space.
//
// Level 2 (task mapping): the chosen sub-batch is K-way partitioned across
// the compute nodes minimising connectivity-1 (file bytes transferred more
// than once) under load balance, then repaired against per-node disk
// capacity (files dropped in increasing sharer order, tasks using dropped
// files deferred to later sub-batches — paper Section 5.3).
#pragma once

#include "hypergraph/partitioner.h"
#include "sched/cost_model.h"
#include "sched/scheduler.h"

namespace bsio::sched {

struct BiPartitionOptions {
  hg::PartitionerOptions partitioner;
  // Use Eq. 25-26 probabilistic vertex weights (true) or plain compute
  // weights (false; ablation).
  bool probabilistic_weights = true;
  // Fraction of the aggregate disk space handed to BINW as the bound D.
  double aggregate_bound_fraction = 1.0;
  // Limited-disk rounds only: level-2-map every BINW sub-batch of the
  // first round concurrently (they are independent K-way partitioning
  // problems) and serve the precomputed maps in later rounds, instead of
  // re-running BINW + one mapping per round. Changes plans versus the
  // default round-by-round replanning (later rounds no longer see the
  // then-current pending set), so it is opt-in; plans remain bit-identical
  // at any thread count (slot-indexed maps, deterministic serving order).
  // The stash is dropped whenever the pending set or the alive-node set
  // deviates from what was precomputed (crashes, disk-repair deferrals),
  // falling back to a fresh replan — fault behaviour is never stale.
  bool plan_all_sub_batches = false;
};

class BiPartitionScheduler : public Scheduler {
 public:
  explicit BiPartitionScheduler(BiPartitionOptions options = {})
      : options_(options) {}

  std::string name() const override { return "BiPartition"; }
  Status begin_batch() override;
  sim::SubBatchPlan plan_sub_batch(const std::vector<wl::TaskId>& pending,
                                   const SchedulerContext& ctx) override;

 private:
  bool serve_stashed_part(const std::vector<wl::TaskId>& pending,
                          const std::vector<wl::NodeId>& nodes,
                          std::vector<wl::TaskId>& sub_batch,
                          std::vector<wl::NodeId>& map);

  BiPartitionOptions options_;
  // Sharer-count scratch reused across the level-1 and level-2 weight
  // computations of every round.
  ExecTimeScratch exec_scratch_;
  // plan_all_sub_batches: precomputed (tasks, task->node map) per remaining
  // BINW sub-batch, largest first, plus the alive set they assumed.
  struct StashedPart {
    std::vector<wl::TaskId> tasks;
    std::vector<wl::NodeId> map;
  };
  std::vector<StashedPart> stash_;
  std::vector<wl::NodeId> stash_alive_;
};

// Exposed for tests and for the IP scheduler's warm start: the level-2
// mapping of `tasks` onto the compute nodes (indices into `tasks` -> node).
// `nodes` restricts the mapping to a subset of the compute nodes (the alive
// ones under fault injection); empty means all of them. `scratch` may be
// null.
std::vector<wl::NodeId> bipartition_map_tasks(
    const wl::Workload& w, const std::vector<wl::TaskId>& tasks,
    const sim::Topology& topo, const BiPartitionOptions& options,
    const std::vector<wl::NodeId>& nodes = {},
    ExecTimeScratch* scratch = nullptr);

}  // namespace bsio::sched
