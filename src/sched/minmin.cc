#include "sched/minmin.h"

#include <cmath>
#include <cstdint>
#include <limits>
#include <queue>
#include <utility>
#include <vector>

#include "sched/cost_model.h"
#include "util/check.h"
#include "util/ws_runtime.h"

namespace bsio::sched {

namespace {

// Folds per-node completion times exactly like the historical sequential
// scan: a candidate wins on strict improvement beyond the relative
// tolerance; near-ties (storage-dominated estimates make nodes look alike)
// go to the least-loaded node, as in classic MinMin; remaining ties to the
// earlier node. `ct[j]` must be estimate_completion_time on nodes[j].
std::pair<wl::NodeId, double> fold_best_node(
    const PlannerState& ps, const std::vector<wl::NodeId>& nodes,
    const double* ct) {
  wl::NodeId best_node = nodes.front();
  double best_ct = std::numeric_limits<double>::infinity();
  for (std::size_t j = 0; j < nodes.size(); ++j) {
    const bool first = std::isinf(best_ct);
    const double tol = first ? 0.0 : 1e-9 * (1.0 + best_ct);
    const bool better =
        first || ct[j] < best_ct - tol ||
        (ct[j] < best_ct + tol &&
         ps.node_ready[nodes[j]] < ps.node_ready[best_node] - 1e-12);
    if (better) {
      best_node = nodes[j];
      best_ct = ct[j];
    }
  }
  return {best_node, best_ct};
}

// Lazy-heap MinMin for large batches. `stale_retry_budget` caps the
// refresh cascade between commits (see minmin.h); SIZE_MAX reproduces the
// historical unbounded behavior bit-for-bit.
void plan_lazy(const wl::Workload& w, const sim::Topology& topo,
               PlannerState& ps, const std::vector<wl::TaskId>& pending,
               const std::vector<wl::NodeId>& nodes,
               std::size_t stale_retry_budget, sim::SubBatchPlan& plan) {
  WsRuntime& pool = WsRuntime::global();
  const std::size_t N = nodes.size();
  struct Entry {
    double ct;
    wl::TaskId task;
    bool operator<(const Entry& o) const { return ct > o.ct; }  // min-heap
  };

  // Initial sweep: every task's per-node estimates in parallel (read-only
  // against ps), each row folded in place so only the per-task key is kept
  // — materializing the full T x N matrix costs ~800 MB at 100k x 1k and
  // the fold only ever reads one row. Heap built sequentially in pending
  // order.
  std::vector<double> key(pending.size());
  pool.parallel_for_each(pending.size(), [&](std::size_t i) {
    std::vector<double> r(N);
    for (std::size_t j = 0; j < N; ++j)
      r[j] = estimate_completion_time(w, topo, ps, pending[i], nodes[j]);
    key[i] = fold_best_node(ps, nodes, r.data()).second;
  });
  std::priority_queue<Entry> heap;
  for (std::size_t i = 0; i < pending.size(); ++i)
    heap.push({key[i], pending[i]});

  std::vector<bool> done(w.num_tasks(), false);
  std::vector<double> row(N);
  // Best fresh candidate seen in the current refresh cascade: all of them
  // were evaluated against the same ps (no commit in between), so the
  // recorded (task, node, ct) stays exact until the next commit.
  std::size_t retries = 0;
  bool fresh_valid = false;
  double fresh_ct = 0.0;
  wl::TaskId fresh_task = 0;
  wl::NodeId fresh_node = 0;
  while (!heap.empty()) {
    Entry e = heap.top();
    heap.pop();
    if (done[e.task]) continue;
    pool.parallel_for_each(N, [&](std::size_t j) {
      row[j] = estimate_completion_time(w, topo, ps, e.task, nodes[j]);
    });
    auto [node, best_ct] = fold_best_node(ps, nodes, row.data());
    const bool stale =
        !heap.empty() && best_ct > heap.top().ct + 1e-9 * (1.0 + best_ct);
    if (stale && retries < stale_retry_budget) {
      heap.push({best_ct, e.task});  // stale; retry later
      if (!fresh_valid || best_ct < fresh_ct) {
        fresh_valid = true;
        fresh_ct = best_ct;
        fresh_task = e.task;
        fresh_node = node;
      }
      ++retries;
      continue;
    }
    wl::TaskId task = e.task;
    if (stale && fresh_valid && fresh_ct < best_ct) {
      // Budget exhausted: commit the best candidate refreshed in this
      // cascade instead; the popped entry rejoins the heap with its fresh
      // key. (Its stale twin pushed earlier is skipped via done[].)
      heap.push({best_ct, e.task});
      task = fresh_task;
      node = fresh_node;
    }
    CompletionEstimate est = estimate_completion(w, topo, ps, task, node);
    apply_assignment(w, topo, ps, task, node, est);
    plan.tasks.push_back(task);
    plan.assignment[task] = node;
    done[task] = true;
    retries = 0;
    fresh_valid = false;
  }
}

}  // namespace

void minmin_plan_into(const wl::Workload& w, const sim::Topology& topo,
                      PlannerState& ps, const std::vector<wl::TaskId>& pending,
                      const std::vector<wl::NodeId>& nodes,
                      std::size_t exact_threshold,
                      std::size_t stale_retry_budget, sim::SubBatchPlan& plan) {
  BSIO_CHECK_MSG(!nodes.empty(), "MinMin: no compute node is alive");
  if (pending.empty()) return;

  if (pending.size() > exact_threshold) {
    plan_lazy(w, topo, ps, pending, nodes, stale_retry_budget, plan);
    return;
  }

  WsRuntime& pool = WsRuntime::global();

  // Unassigned tasks live in a doubly-linked list over pending positions:
  // removal is O(1) (replacing the old O(T) vector erase) while sweeps and
  // folds keep visiting survivors in original pending order — a plain
  // swap-and-pop would permute the fold order and flip exact-tie picks, so
  // the O(1)-removal structure that *preserves* index-order tie-breaking is
  // the list.
  const std::size_t T = pending.size();
  const auto sentinel = static_cast<std::uint32_t>(T);
  std::vector<std::uint32_t> next(T + 1), prev(T + 1);
  for (std::size_t i = 0; i <= T; ++i) {
    next[i] = static_cast<std::uint32_t>(i + 1 <= T ? i + 1 : 0);
    prev[i] = static_cast<std::uint32_t>(i > 0 ? i - 1 : T);
  }

  std::vector<std::uint32_t> alive;  // snapshot, original pending order
  alive.reserve(T);
  std::vector<double> ct;
  const std::size_t N = nodes.size();

  while (next[sentinel] != sentinel) {
    alive.clear();
    for (std::uint32_t i = next[sentinel]; i != sentinel; i = next[i])
      alive.push_back(i);
    const std::size_t A = alive.size();
    ct.resize(A * N);

    // Parallel phase: all (task, node) MCTs against the frozen ps_. Each
    // index writes only its own slot — bit-identical at any thread count.
    pool.parallel_for_each(A, [&](std::size_t a) {
      for (std::size_t j = 0; j < N; ++j)
        ct[a * N + j] =
            estimate_completion_time(w, topo, ps, pending[alive[a]], nodes[j]);
    });

    // Sequential fold in the historical (task, node) order.
    double best_ct = std::numeric_limits<double>::infinity();
    std::size_t best_a = 0;
    wl::NodeId best_node = nodes.front();
    for (std::size_t a = 0; a < A; ++a) {
      for (std::size_t j = 0; j < N; ++j) {
        const double cand = ct[a * N + j];
        const bool first = std::isinf(best_ct);
        const double tol = first ? 0.0 : 1e-9 * (1.0 + best_ct);
        const bool better =
            first || cand < best_ct - tol ||
            (cand < best_ct + tol &&
             ps.node_ready[nodes[j]] < ps.node_ready[best_node] - 1e-12);
        if (better) {
          best_ct = cand;
          best_a = a;
          best_node = nodes[j];
        }
      }
    }

    const wl::TaskId task = pending[alive[best_a]];
    CompletionEstimate best_est =
        estimate_completion(w, topo, ps, task, best_node);
    apply_assignment(w, topo, ps, task, best_node, best_est);
    plan.tasks.push_back(task);
    plan.assignment[task] = best_node;

    const std::uint32_t idx = alive[best_a];
    next[prev[idx]] = next[idx];
    prev[next[idx]] = prev[idx];
  }
}

sim::SubBatchPlan MinMinScheduler::plan_sub_batch(
    const std::vector<wl::TaskId>& pending, const SchedulerContext& ctx) {
  ps_.reset(ctx.batch, ctx.topology, ctx.engine.state());
  sim::SubBatchPlan plan;
  minmin_plan_into(ctx.batch, ctx.topology, ps_, pending, ctx.alive_nodes(),
                   exact_threshold_, stale_retry_budget_, plan);
  return plan;
}

}  // namespace bsio::sched
