#include "sched/minmin.h"

#include <cmath>
#include <limits>
#include <queue>
#include <utility>

#include "sched/cost_model.h"
#include "util/check.h"

namespace bsio::sched {

namespace {

// Best (node, estimate) of a task against the current planner state,
// considering only `nodes` (the alive compute nodes).
std::pair<wl::NodeId, CompletionEstimate> best_node_for(
    const wl::Workload& w, const sim::ClusterConfig& c,
    const PlannerState& ps, wl::TaskId task,
    const std::vector<wl::NodeId>& nodes) {
  wl::NodeId best_node = nodes.front();
  CompletionEstimate best_est;
  best_est.completion = std::numeric_limits<double>::infinity();
  for (wl::NodeId n : nodes) {
    CompletionEstimate est = estimate_completion(w, c, ps, task, n);
    const bool first = std::isinf(best_est.completion);
    const double tol = first ? 0.0 : 1e-9 * (1.0 + best_est.completion);
    const bool better =
        first || est.completion < best_est.completion - tol ||
        (est.completion < best_est.completion + tol &&
         ps.node_ready[n] < ps.node_ready[best_node] - 1e-12);
    if (better) {
      best_node = n;
      best_est = std::move(est);
    }
  }
  return {best_node, std::move(best_est)};
}

// Lazy-heap MinMin for large batches.
sim::SubBatchPlan plan_lazy(const wl::Workload& w,
                            const sim::ClusterConfig& c, PlannerState& ps,
                            const std::vector<wl::TaskId>& pending,
                            const std::vector<wl::NodeId>& nodes) {
  sim::SubBatchPlan plan;
  struct Entry {
    double ct;
    wl::TaskId task;
    bool operator<(const Entry& o) const { return ct > o.ct; }  // min-heap
  };
  std::priority_queue<Entry> heap;
  for (wl::TaskId t : pending)
    heap.push({best_node_for(w, c, ps, t, nodes).second.completion, t});

  std::vector<bool> done(w.num_tasks(), false);
  while (!heap.empty()) {
    Entry e = heap.top();
    heap.pop();
    if (done[e.task]) continue;
    auto [node, est] = best_node_for(w, c, ps, e.task, nodes);
    if (!heap.empty() &&
        est.completion > heap.top().ct + 1e-9 * (1.0 + est.completion)) {
      heap.push({est.completion, e.task});  // stale; retry later
      continue;
    }
    apply_assignment(w, c, ps, e.task, node, est);
    plan.tasks.push_back(e.task);
    plan.assignment[e.task] = node;
    done[e.task] = true;
  }
  return plan;
}

}  // namespace

sim::SubBatchPlan MinMinScheduler::plan_sub_batch(
    const std::vector<wl::TaskId>& pending, const SchedulerContext& ctx) {
  const wl::Workload& w = ctx.batch;
  const sim::ClusterConfig& c = ctx.cluster;
  PlannerState ps(w, c, ctx.engine.state());
  const std::vector<wl::NodeId> nodes = ctx.alive_nodes();
  BSIO_CHECK_MSG(!nodes.empty(), "MinMin: no compute node is alive");

  if (pending.size() > exact_threshold_)
    return plan_lazy(w, c, ps, pending, nodes);

  sim::SubBatchPlan plan;
  std::vector<wl::TaskId> todo = pending;

  while (!todo.empty()) {
    double best_ct = std::numeric_limits<double>::infinity();
    std::size_t best_i = 0;
    wl::NodeId best_node = nodes.front();
    CompletionEstimate best_est;
    for (std::size_t i = 0; i < todo.size(); ++i) {
      for (wl::NodeId n : nodes) {
        CompletionEstimate est = estimate_completion(w, c, ps, todo[i], n);
        // Near-ties (storage-dominated estimates make nodes look alike) go
        // to the least-loaded node, as in classic MinMin.
        const bool first = std::isinf(best_ct);
        const double tol = first ? 0.0 : 1e-9 * (1.0 + best_ct);
        const bool better =
            first || est.completion < best_ct - tol ||
            (est.completion < best_ct + tol &&
             ps.node_ready[n] < ps.node_ready[best_node] - 1e-12);
        if (better) {
          best_ct = est.completion;
          best_i = i;
          best_node = n;
          best_est = std::move(est);
        }
      }
    }
    const wl::TaskId task = todo[best_i];
    apply_assignment(w, c, ps, task, best_node, best_est);
    plan.tasks.push_back(task);
    plan.assignment[task] = best_node;
    todo.erase(todo.begin() + best_i);
  }
  return plan;
}

}  // namespace bsio::sched
