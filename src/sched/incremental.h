// Incremental plan-repair contract: the rolling-horizon replacement for the
// batch-atomic Scheduler::plan_sub_batch() loop.
//
// The streaming service keeps a LIVE plan — an ordered list of (task, node)
// commitments that have not been handed to the engine yet — and mutates it
// in place as the world changes:
//
//   extend(new_tasks)   new arrivals join the live plan (delta insertion
//                       for MinMin, footprint-gated repartition for
//                       BiPartition, from-scratch replan for JDP/IP);
//   repair(dirty_set)   live tasks invalidated by the last executed window
//                       (their file footprint moved) are re-placed against
//                       the engine's current cache and timeline state;
//   commit_horizon(w)   the prefix of the live plan estimated to start
//                       within the next `w` seconds freezes into a
//                       SubBatchPlan for the engine; everything past the
//                       horizon stays mutable for future repairs.
//
// Estimates are planner-relative, exactly like the batch path: every
// rebuild resets the PlannerState (ready times 0, cache holders rebased by
// the window's time base), so a quiescent run — one batch, horizon covering
// the whole batch, no mid-flight arrivals — reproduces the batch scheduler's
// plans bit for bit (pinned against the PR 4 topology goldens in
// tests/incremental_test.cc).
#pragma once

#include <cstddef>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "sched/cost_model.h"
#include "sched/scheduler.h"
#include "sim/plan.h"

namespace bsio::sched {

// Horizon-freeze controls (the streaming service's planning knobs).
struct HorizonOptions {
  // Freeze live tasks whose estimated start falls within this many seconds
  // of the window base. <= 0 = drain-all: freeze the entire live plan (the
  // quiescent mode, equivalent to the batch driver's round loop).
  double window_seconds = 0.0;
  // A non-empty live plan must always release at least one task per commit
  // (the earliest estimated start), or a window shorter than every estimate
  // would stall the service.
  bool ensure_progress = true;
};

// One uncommitted live-plan entry. est_start is the planner-relative
// instant the assigned node is expected to turn to this task (its ready
// time at commit); est_completion the matching MCT. Both refresh on every
// rebuild, and drive the commit_horizon freeze rule.
struct LiveTask {
  wl::TaskId task = wl::kInvalidTask;
  wl::NodeId node = wl::kInvalidNode;
  double est_start = 0.0;
  double est_completion = 0.0;
};

class IncrementalPlanner {
 public:
  explicit IncrementalPlanner(Scheduler& base) : base_(base) {}
  virtual ~IncrementalPlanner() = default;

  std::string name() const { return base_.name() + "+incremental"; }

  // Folds newly arrived tasks into the live plan. With an empty live plan
  // this reduces to a from-scratch plan over the backlog plus `new_tasks`;
  // concrete planners decide how much of the existing plan to preserve.
  // Tasks not placed into the live plan (a disk-bounded sub-batch selector
  // deferring them) wait in backlog() for a later extend.
  virtual void extend(std::vector<wl::TaskId> new_tasks,
                      const SchedulerContext& ctx) = 0;

  // Re-places live tasks invalidated since the last commit (`dirty` must be
  // a subset of the live tasks; unknown ids are ignored). Derive the set
  // with dirty_from_files() from the file footprint the last executed
  // window touched.
  virtual void repair(const std::vector<wl::TaskId>& dirty,
                      const SchedulerContext& ctx) = 0;

  // Freezes the live tasks whose est_start lies within `opts.window_seconds`
  // into an executable SubBatchPlan (live order preserved) and removes them
  // from the live plan. Returns an empty plan only when the live plan is
  // empty.
  sim::SubBatchPlan commit_horizon(const HorizonOptions& opts);

  // Live tasks whose files intersect `files` — the dirty-set derivation:
  // an executed window changes cache contents and pending-request counts
  // exactly for the files it touched, so live tasks sharing those files are
  // the ones whose placement may now be wrong.
  std::vector<wl::TaskId> dirty_from_files(
      const wl::Workload& w, const std::vector<wl::FileId>& files) const;

  // The planner-relative time base: absolute cache-availability stamps from
  // the streaming engine rebase by this origin on every rebuild (see
  // PlannerState::reset). The service sets it to the live window's base
  // clock; 0 (the default) matches the batch driver.
  void set_origin(double origin) { origin_ = origin; }

  const std::vector<LiveTask>& live() const { return live_; }
  const std::vector<wl::TaskId>& backlog() const { return backlog_; }
  bool drained() const { return live_.empty() && backlog_.empty(); }

 protected:
  // Hook for planners whose base scheduler decorates plans (IP staging
  // directives, JDP prefetches): called on every committed plan.
  virtual void annotate(sim::SubBatchPlan& plan) { (void)plan; }

  // Rebuilds ps_ from the engine's current state and replays the live plan
  // in order, refreshing every entry's est_start / est_completion. After
  // the call ps_ prices as if every live task were already committed — the
  // delta-insertion baseline.
  void replay(const SchedulerContext& ctx);

  Scheduler& base_;
  PlannerState ps_;
  std::vector<LiveTask> live_;
  std::vector<wl::TaskId> backlog_;
  double origin_ = 0.0;
};

// Delta-MinMin insertion: extend() replays the live plan into the planner
// state and runs the MinMin core (sched/minmin.h, including the bounded-
// staleness lazy heap above the exact threshold) over ONLY the new tasks —
// O(new x nodes) instead of replanning the whole window. repair() removes
// the dirty tasks, replays the survivors, and re-inserts the dirty ones the
// same way. With an empty live plan extend() is bit-identical to
// MinMinScheduler::plan_sub_batch.
class DeltaMinMinPlanner : public IncrementalPlanner {
 public:
  DeltaMinMinPlanner(Scheduler& base, std::size_t exact_threshold = 400,
                     std::size_t stale_retry_budget =
                         std::numeric_limits<std::size_t>::max())
      : IncrementalPlanner(base),
        exact_threshold_(exact_threshold),
        stale_retry_budget_(stale_retry_budget) {}

  void extend(std::vector<wl::TaskId> new_tasks,
              const SchedulerContext& ctx) override;
  void repair(const std::vector<wl::TaskId>& dirty,
              const SchedulerContext& ctx) override;

 private:
  // Plans `tasks` against the replayed live state and appends them to the
  // live plan.
  void insert(const std::vector<wl::TaskId>& tasks,
              const SchedulerContext& ctx);

  std::size_t exact_threshold_;
  std::size_t stale_retry_budget_;
};

// Part-repair wrapper for sub-batch selectors (BiPartition) and the
// from-scratch fallbacks (JDP, IP). The live plan holds ONE base-scheduler
// sub-batch at a time; unplanned pool tasks wait in the backlog, exactly
// like the batch driver's pending set. extend() with new arrivals re-runs
// the base scheduler over live + backlog + new — unless `footprint_gate`
// is set and the new tasks share no file with the live part, in which case
// the part stands and the arrivals only join the backlog (the dirty-part-
// only BiPartition repartition: BINW re-runs only when the new tasks
// actually perturb the selected part's footprint). repair() dissolves the
// live part back into the pool for a full replan, mirroring the driver's
// round-by-round re-selection.
class PartRepairPlanner : public IncrementalPlanner {
 public:
  PartRepairPlanner(Scheduler& base, bool footprint_gate)
      : IncrementalPlanner(base), footprint_gate_(footprint_gate) {}

  void extend(std::vector<wl::TaskId> new_tasks,
              const SchedulerContext& ctx) override;
  void repair(const std::vector<wl::TaskId>& dirty,
              const SchedulerContext& ctx) override;

 protected:
  void annotate(sim::SubBatchPlan& plan) override;

 private:
  // Runs the base scheduler over `pool`: the planned sub-batch becomes the
  // live plan, the rest the backlog (pool order preserved).
  void plan_pool(std::vector<wl::TaskId> pool, const SchedulerContext& ctx);
  bool overlaps_live(const std::vector<wl::TaskId>& tasks,
                     const wl::Workload& w) const;

  bool footprint_gate_;
  // Plan decorations of the current live part, re-attached on commit.
  // Staging directives are keyed by (file, node) and consulted lazily, so
  // re-attaching the full map to every partial commit is harmless;
  // prefetches fire once, with the part's first commit.
  std::map<std::pair<wl::FileId, wl::NodeId>, sim::StagingSource> staging_;
  std::vector<std::pair<wl::FileId, wl::NodeId>> prefetches_;
  bool prefetches_pending_ = false;
};

// The per-scheduler dispatch: delta insertion for MinMin (inheriting its
// thresholds), footprint-gated part repair for BiPartition, always-replan
// part repair (the from-scratch fallback) for JDP, IP, and anything else.
std::unique_ptr<IncrementalPlanner> make_incremental_planner(Scheduler& base);

}  // namespace bsio::sched
