#include "sched/job_data_present.h"

#include <algorithm>
#include <limits>
#include <unordered_map>

#include "sched/cost_model.h"
#include "util/check.h"
#include "util/ws_runtime.h"

namespace bsio::sched {

sim::SubBatchPlan JobDataPresentScheduler::plan_sub_batch(
    const std::vector<wl::TaskId>& pending, const SchedulerContext& ctx) {
  const wl::Workload& w = ctx.batch;
  const sim::ClusterConfig& c = ctx.cluster;
  const sim::Topology& topo = ctx.topology;
  ps_.reset(w, topo, ctx.engine.state());
  PlannerState& ps = ps_;
  const std::vector<wl::NodeId>& nodes = ctx.alive_nodes();
  BSIO_CHECK_MSG(!nodes.empty(), "JobDataPresent: no compute node is alive");

  sim::SubBatchPlan plan;

  // --- Data Least Loaded: proactive replication of popular files. ---
  if (c.allow_replication) {
    double threshold = options_.popularity_threshold;
    if (threshold <= 0.0)
      threshold = static_cast<double>(pending.size()) /
                  static_cast<double>(nodes.size());
    std::unordered_map<wl::FileId, double> popularity;
    for (wl::TaskId t : pending)
      for (wl::FileId f : w.task(t).files) popularity[f] += 1.0;

    // Planned load per node = bytes of files it is slated to hold, read
    // straight off the per-node replica lists.
    std::vector<double> load(c.num_compute_nodes, 0.0);
    for (wl::NodeId n = 0; n < c.num_compute_nodes; ++n)
      for (wl::FileId f : ps.node_files[n]) load[n] += w.file_size(f);

    std::vector<std::pair<double, wl::FileId>> hot;
    for (const auto& [f, pop] : popularity)
      if (pop > threshold) hot.push_back({pop, f});
    std::sort(hot.rbegin(), hot.rend());  // most popular first

    for (const auto& [pop, f] : hot) {
      if (options_.max_prefetches > 0 &&
          plan.prefetches.size() >= options_.max_prefetches)
        break;
      // Least loaded alive node not already holding the file.
      wl::NodeId dst = wl::kInvalidNode;
      for (wl::NodeId n : nodes) {
        if (ps.on_node(f, n)) continue;
        if (dst == wl::kInvalidNode || load[n] < load[dst]) dst = n;
      }
      if (dst == wl::kInvalidNode) continue;
      plan.prefetches.push_back({f, dst});
      ps.add_planned(f, dst, 0.0);
      load[dst] += w.file_size(f);
    }
  }

  // --- Queue order: least expected earliest completion time, computed once
  // up front (the paper's replacement for [13]'s FIFO; JDP stays a cheap
  // one-pass dynamic scheme, unlike MinMin's quadratic re-evaluation). Each
  // task's candidate-node evaluation is independent and read-only against
  // ps, so the sweep runs on the work-stealing runtime; the per-task min over nodes
  // and the sort stay in the historical order, keeping plans bit-identical
  // at any thread count. ---
  std::vector<double> ect(pending.size());
  WsRuntime::global().parallel_for_each(pending.size(), [&](std::size_t i) {
    double best = std::numeric_limits<double>::infinity();
    for (wl::NodeId n : nodes)
      best = std::min(best, estimate_completion_time(w, topo, ps, pending[i], n));
    ect[i] = best;
  });
  std::vector<std::pair<double, wl::TaskId>> queue;
  queue.reserve(pending.size());
  for (std::size_t i = 0; i < pending.size(); ++i)
    queue.push_back({ect[i], pending[i]});
  std::sort(queue.begin(), queue.end());

  // --- Job Data Present assignment: eligible nodes are those already
  // (planned to be) holding some of the task's data; the least-loaded
  // eligible node wins ([13]'s rule, multi-file adaptation). With no
  // eligible node, fall back to the least-loaded node overall. ---
  for (const auto& [ect0, task] : queue) {
    wl::NodeId node = wl::kInvalidNode;
    for (wl::NodeId n : nodes) {
      bool has_data = false;
      for (wl::FileId f : w.task(task).files)
        if (ps.on_node(f, n)) {
          has_data = true;
          break;
        }
      if (!has_data) continue;
      if (node == wl::kInvalidNode || ps.node_ready[n] < ps.node_ready[node])
        node = n;
    }
    if (node == wl::kInvalidNode) {
      node = nodes.front();
      for (wl::NodeId n : nodes)
        if (ps.node_ready[n] < ps.node_ready[node]) node = n;
    }
    CompletionEstimate est = estimate_completion(w, topo, ps, task, node);
    apply_assignment(w, topo, ps, task, node, est);
    plan.tasks.push_back(task);
    plan.assignment[task] = node;
  }
  return plan;
}

}  // namespace bsio::sched
