#include "sched/cost_model.h"

#include <algorithm>
#include <unordered_map>

#include "sim/state.h"
#include "util/check.h"

namespace bsio::sched {

std::vector<double> probabilistic_exec_times(
    const wl::Workload& w, const std::vector<wl::TaskId>& tasks,
    const sim::ClusterConfig& c) {
  // Sharing degree s_j within the sub-batch.
  std::unordered_map<wl::FileId, double> sharers;
  for (wl::TaskId t : tasks)
    for (wl::FileId f : w.task(t).files) sharers[f] += 1.0;

  const double T = static_cast<double>(tasks.size());
  const double K = static_cast<double>(c.num_compute_nodes);
  const double bw_s = c.remote_bw();
  const double bw_c = c.replica_bw();
  const double slow_bw = std::min(bw_s, bw_c);  // Eq. 25's denominator

  std::vector<double> out;
  out.reserve(tasks.size());
  for (wl::TaskId t : tasks) {
    double exec = w.task(t).compute_seconds;
    for (wl::FileId f : w.task(t).files) {
      const double s_j = sharers[f];
      const double p_fne = 1.0 / s_j;             // first to need the file
      const double p_fe = (s_j / T) * (1.0 / K);  // already on my node
      const double tr =
          p_fne / bw_s + (1.0 - p_fne) * (1.0 - p_fe) / slow_bw;  // Eq. 25
      exec += w.file_size(f) * (tr + 1.0 / c.local_disk_bw);      // Eq. 26
    }
    out.push_back(exec);
  }
  return out;
}

std::vector<double> plain_exec_times(const wl::Workload& w,
                                     const std::vector<wl::TaskId>& tasks,
                                     const sim::ClusterConfig& c) {
  std::vector<double> out;
  out.reserve(tasks.size());
  for (wl::TaskId t : tasks) {
    double exec = w.task(t).compute_seconds;
    for (wl::FileId f : w.task(t).files)
      exec += w.file_size(f) / c.local_disk_bw;
    out.push_back(exec);
  }
  return out;
}

PlannerState::PlannerState(const wl::Workload& w, const sim::ClusterConfig& c,
                           const sim::ClusterState& current)
    : node_ready(c.num_compute_nodes, 0.0),
      storage_ready(c.num_storage_nodes, 0.0),
      planned(w.num_files()) {
  for (wl::FileId f = 0; f < w.num_files(); ++f)
    for (wl::NodeId n : current.holders(f))
      planned[f].push_back({n, current.available_at(n, f)});
}

bool PlannerState::on_node(wl::FileId f, wl::NodeId n) const {
  for (const auto& [node, avail] : planned[f])
    if (node == n) return true;
  return false;
}

CompletionEstimate estimate_completion(const wl::Workload& w,
                                       const sim::ClusterConfig& c,
                                       const PlannerState& ps,
                                       wl::TaskId task, wl::NodeId node) {
  CompletionEstimate est;
  const auto& info = w.task(task);
  double cursor = ps.node_ready[node];
  const double start = cursor;
  double read_bytes = 0.0;
  for (wl::FileId f : info.files) {
    const double size = w.file_size(f);
    read_bytes += size;
    if (ps.on_node(f, node)) continue;

    const wl::NodeId home = w.file(f).home_storage_node;
    double remote_start =
        std::max({cursor, ps.storage_ready[home],
                  c.shared_uplink_bw > 0.0 ? ps.uplink_ready : 0.0});
    double best_arrival = remote_start + size / c.remote_bw();
    CompletionEstimate::Stage stage{f, home, true, best_arrival};
    if (c.allow_replication) {
      for (const auto& [holder, avail] : ps.planned[f]) {
        if (holder == node) continue;
        double arr = std::max({cursor, ps.node_ready[holder], avail}) +
                     size / c.replica_bw();
        if (arr < best_arrival) {
          best_arrival = arr;
          stage = {f, holder, false, arr};
        }
      }
    }
    est.stages.push_back(stage);
    cursor = best_arrival;
  }
  est.transfer_seconds = cursor - start;
  est.completion =
      cursor + read_bytes / c.local_disk_bw + info.compute_seconds;
  return est;
}

void apply_assignment(const wl::Workload& /*w*/, const sim::ClusterConfig& c,
                      PlannerState& ps, wl::TaskId /*task*/, wl::NodeId node,
                      const CompletionEstimate& est) {
  for (const auto& s : est.stages) {
    if (s.remote) {
      ps.storage_ready[s.src] = std::max(ps.storage_ready[s.src], s.arrival);
      if (c.shared_uplink_bw > 0.0)
        ps.uplink_ready = std::max(ps.uplink_ready, s.arrival);
    } else {
      ps.node_ready[s.src] = std::max(ps.node_ready[s.src], s.arrival);
    }
    // Implicit replication: every staged copy becomes a future source.
    if (!ps.on_node(s.file, node))
      ps.planned[s.file].push_back({node, s.arrival});
  }
  ps.node_ready[node] = est.completion;
}

}  // namespace bsio::sched
