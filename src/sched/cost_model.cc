#include "sched/cost_model.h"

#include <algorithm>
#include <limits>

#include "sim/state.h"
#include "util/check.h"

namespace bsio::sched {

std::vector<double> probabilistic_exec_times(
    const wl::Workload& w, const std::vector<wl::TaskId>& tasks,
    const sim::Topology& topo, ExecTimeScratch* scratch) {
  const sim::ClusterConfig& c = topo.config();
  // Sharing degree s_j within the sub-batch, in a dense per-file buffer.
  // The scratch is left all-zero on exit so repeated calls (the BiPartition
  // level-1/level-2 loops) never refill or rehash a map.
  ExecTimeScratch local;
  ExecTimeScratch& s = scratch ? *scratch : local;
  if (s.sharers.size() < w.num_files()) s.sharers.resize(w.num_files(), 0.0);
  BSIO_DCHECK(s.touched.empty());
  for (wl::TaskId t : tasks)
    for (wl::FileId f : w.task(t).files) {
      if (s.sharers[f] == 0.0) s.touched.push_back(f);
      s.sharers[f] += 1.0;
    }

  const double T = static_cast<double>(tasks.size());
  const double K = static_cast<double>(c.num_compute_nodes);

  std::vector<double> out;
  out.reserve(tasks.size());

  if (topo.uniform()) {
    // The classic uniform Eq. 25-26, arithmetic preserved verbatim for the
    // homogeneous bit-identity contract.
    const double bw_s = topo.uniform_remote_bw();
    const double bw_c = topo.uniform_replica_bw();
    const double slow_bw = std::min(bw_s, bw_c);  // Eq. 25's denominator
    for (wl::TaskId t : tasks) {
      double exec = w.task(t).compute_seconds;
      for (wl::FileId f : w.task(t).files) {
        const double s_j = s.sharers[f];
        const double p_fne = 1.0 / s_j;             // first to need the file
        const double p_fe = (s_j / T) * (1.0 / K);  // already on my node
        const double tr =
            p_fne / bw_s + (1.0 - p_fne) * (1.0 - p_fe) / slow_bw;  // Eq. 25
        exec += w.file_size(f) * (tr + 1.0 / c.local_disk_bw);      // Eq. 26
      }
      out.push_back(exec);
    }
  } else {
    // Heterogeneous Eq. 25-26: the equations assume uniform placement over
    // the K nodes, so each per-node rate is replaced by its expectation
    // under that distribution — the mean inverse remote bandwidth out of
    // the file's home, the mean inverse "slowest transfer into i" (remote
    // vs worst replica source), and the mean inverse CPU speed.
    const std::size_t C = c.num_compute_nodes;
    const std::size_t S = c.num_storage_nodes;
    // Worst replica bandwidth into each node (the Eq. 25 pessimistic
    // source when the file exists but not locally).
    std::vector<double> worst_repl_into(C,
                                        std::numeric_limits<double>::infinity());
    for (std::size_t i = 0; i < C; ++i)
      for (std::size_t j = 0; j < C; ++j)
        if (j != i)
          worst_repl_into[i] =
              std::min(worst_repl_into[i], topo.replica_bw(j, i));
    std::vector<double> mean_rem_inv(S, 0.0);   // E_i[1 / bw_s(h, i)]
    std::vector<double> mean_slow_inv(S, 0.0);  // E_i[1 / slow_bw(h, i)]
    for (std::size_t h = 0; h < S; ++h) {
      for (std::size_t i = 0; i < C; ++i) {
        const double rem = topo.remote_bw(h, i);
        mean_rem_inv[h] += 1.0 / rem;
        const double slow = C > 1 ? std::min(rem, worst_repl_into[i]) : rem;
        mean_slow_inv[h] += 1.0 / slow;
      }
      mean_rem_inv[h] /= K;
      mean_slow_inv[h] /= K;
    }
    double mean_speed_inv = 0.0;
    for (std::size_t i = 0; i < C; ++i) mean_speed_inv += 1.0 / topo.cpu_speed(i);
    mean_speed_inv /= K;

    for (wl::TaskId t : tasks) {
      double exec = w.task(t).compute_seconds * mean_speed_inv;
      for (wl::FileId f : w.task(t).files) {
        const double s_j = s.sharers[f];
        const double p_fne = 1.0 / s_j;
        const double p_fe = (s_j / T) * (1.0 / K);
        const wl::NodeId h = w.file(f).home_storage_node;
        const double tr = p_fne * mean_rem_inv[h] +
                          (1.0 - p_fne) * (1.0 - p_fe) * mean_slow_inv[h];
        exec += w.file_size(f) * (tr + 1.0 / c.local_disk_bw);
      }
      out.push_back(exec);
    }
  }

  for (wl::FileId f : s.touched) s.sharers[f] = 0.0;
  s.touched.clear();
  return out;
}

std::vector<double> plain_exec_times(const wl::Workload& w,
                                     const std::vector<wl::TaskId>& tasks,
                                     const sim::Topology& topo) {
  const sim::ClusterConfig& c = topo.config();
  double mean_speed_inv = 1.0;
  if (!topo.uniform_speed()) {
    mean_speed_inv = 0.0;
    for (std::size_t i = 0; i < c.num_compute_nodes; ++i)
      mean_speed_inv += 1.0 / topo.cpu_speed(i);
    mean_speed_inv /= static_cast<double>(c.num_compute_nodes);
  }
  std::vector<double> out;
  out.reserve(tasks.size());
  for (wl::TaskId t : tasks) {
    double exec = topo.uniform_speed()
                      ? w.task(t).compute_seconds
                      : w.task(t).compute_seconds * mean_speed_inv;
    for (wl::FileId f : w.task(t).files)
      exec += w.file_size(f) / c.local_disk_bw;
    out.push_back(exec);
  }
  return out;
}

PlannerState::PlannerState(const wl::Workload& w, const sim::Topology& topo,
                           const sim::ClusterState& current) {
  reset(w, topo, current);
}

void PlannerState::reset(const wl::Workload& w, const sim::Topology& topo,
                         const sim::ClusterState& current, double origin) {
  const sim::ClusterConfig& c = topo.config();
  node_ready.assign(c.num_compute_nodes, 0.0);
  storage_ready.assign(c.num_storage_nodes, 0.0);
  link_ready.assign(topo.num_links(), 0.0);

  // Clear exactly the set bits through the outgoing planned lists — they
  // cover the bitmap's set bits one-for-one (add_planned sets a bit iff it
  // records a holder), so reuse costs O(holders) instead of re-zeroing
  // files * nodes bits. Must run before the lists themselves are cleared,
  // and uses the outgoing stride (num_nodes_).
  for (std::size_t f = 0; f < planned.size(); ++f)
    for (const auto& [n, avail] : planned[f]) {
      const std::size_t bit = f * num_nodes_ + n;
      present_[bit >> 6] &= ~(std::uint64_t{1} << (bit & 63));
    }

  planned.resize(w.num_files());
  for (auto& holders : planned) holders.clear();
  node_files.resize(c.num_compute_nodes);
  for (auto& files : node_files) files.clear();

  const std::size_t want =
      (w.num_files() * c.num_compute_nodes + 63) / 64;
  if (present_.size() < want) present_.resize(want, 0);
  num_nodes_ = c.num_compute_nodes;

  for (wl::FileId f = 0; f < w.num_files(); ++f)
    for (wl::NodeId n : current.holders(f)) {
      double avail = current.available_at(n, f);
      // Guarded so the origin-0 batch path leaves stamps bit-identical
      // (no clamp applied to already-relative values).
      if (origin > 0.0) avail = std::max(0.0, avail - origin);
      add_planned(f, n, avail);
    }
}

void PlannerState::add_planned(wl::FileId f, wl::NodeId n, double avail) {
  const std::size_t bit = static_cast<std::size_t>(f) * num_nodes_ + n;
  std::uint64_t& word = present_[bit >> 6];
  const std::uint64_t mask = std::uint64_t{1} << (bit & 63);
  if (word & mask) return;
  word |= mask;
  planned[f].push_back({n, avail});
  node_files[n].push_back(f);
}

namespace {

// Single source of truth for the MCT arithmetic. estimate_completion
// instantiates it with kRecordStages = true, estimate_completion_time with
// false; the completion value is bit-identical between the two because the
// floating-point operations are literally the same instructions.
template <bool kRecordStages>
double estimate_core(const wl::Workload& w, const sim::Topology& topo,
                     const PlannerState& ps, wl::TaskId task, wl::NodeId node,
                     CompletionEstimate* est) {
  const sim::ClusterConfig& c = topo.config();
  const auto& info = w.task(task);
  double cursor = ps.node_ready[node];
  const double start = cursor;
  double read_bytes = 0.0;
  for (wl::FileId f : info.files) {
    const double size = w.file_size(f);
    read_bytes += size;
    if (ps.on_node(f, node)) continue;

    const wl::NodeId home = w.file(f).home_storage_node;
    const sim::TransferPath rp = topo.remote_path(home, node);
    double link_busy = 0.0;
    for (std::uint32_t l = 0; l < rp.num_links; ++l)
      link_busy = std::max(link_busy, ps.link_ready[rp.links[l]]);
    double remote_start =
        std::max({cursor, ps.storage_ready[home], link_busy});
    double best_arrival = remote_start + size / rp.bandwidth;
    CompletionEstimate::Stage stage{f, home, true, best_arrival};
    if (c.allow_replication) {
      for (const auto& [holder, avail] : ps.planned[f]) {
        if (holder == node) continue;
        const sim::TransferPath pp = topo.replica_path(holder, node);
        double arr = std::max({cursor, ps.node_ready[holder], avail});
        for (std::uint32_t l = 0; l < pp.num_links; ++l)
          arr = std::max(arr, ps.link_ready[pp.links[l]]);
        arr += size / pp.bandwidth;
        if (arr < best_arrival) {
          best_arrival = arr;
          stage = {f, holder, false, arr};
        }
      }
    }
    if constexpr (kRecordStages) est->stages.push_back(stage);
    cursor = best_arrival;
  }
  if constexpr (kRecordStages) est->transfer_seconds = cursor - start;
  return cursor + read_bytes / c.local_disk_bw +
         info.compute_seconds / topo.cpu_speed(node);
}

}  // namespace

CompletionEstimate estimate_completion(const wl::Workload& w,
                                       const sim::Topology& topo,
                                       const PlannerState& ps, wl::TaskId task,
                                       wl::NodeId node) {
  CompletionEstimate est;
  est.completion = estimate_core<true>(w, topo, ps, task, node, &est);
  return est;
}

double estimate_completion_time(const wl::Workload& w,
                                const sim::Topology& topo,
                                const PlannerState& ps, wl::TaskId task,
                                wl::NodeId node) {
  return estimate_core<false>(w, topo, ps, task, node, nullptr);
}

void apply_assignment(const wl::Workload& w, const sim::Topology& topo,
                      PlannerState& ps, wl::TaskId /*task*/, wl::NodeId node,
                      const CompletionEstimate& est) {
  for (const auto& s : est.stages) {
    sim::TransferPath path;
    if (s.remote) {
      ps.storage_ready[s.src] = std::max(ps.storage_ready[s.src], s.arrival);
      path = topo.remote_path(s.src, node);
    } else {
      ps.node_ready[s.src] = std::max(ps.node_ready[s.src], s.arrival);
      path = topo.replica_path(s.src, node);
    }
    for (std::uint32_t l = 0; l < path.num_links; ++l)
      ps.link_ready[path.links[l]] =
          std::max(ps.link_ready[path.links[l]], s.arrival);
    // Implicit replication: every staged copy becomes a future source.
    ps.add_planned(s.file, node, s.arrival);
  }
  ps.node_ready[node] = est.completion;
  (void)w;
}

}  // namespace bsio::sched
