// Batch driver: the three-stage loop of the paper (sub-batch selection ->
// allocation -> runtime ordering/staging), with the runtime stage executed
// by the simulation engine. Also measures the scheduling overhead reported
// in Fig 6(b).
//
// With fault injection enabled the driver additionally runs the recovery
// loop: tasks orphaned by compute-node crashes return to the pending set
// and are re-planned on the surviving nodes in the next round. The batch
// only fails (BatchRunResult::error) when every compute node has crashed
// with tasks still pending, or when the configuration itself is invalid.
#pragma once

#include <string>
#include <vector>

#include "replica/replica.h"
#include "sched/scheduler.h"
#include "sim/cluster.h"
#include "sim/engine.h"
#include "sim/faults.h"
#include "workload/types.h"

namespace bsio::sched {

// Extended run controls. The plain faults-only overload below forwards
// here; the online service (src/service) uses the full struct to carry
// caches across batches.
struct BatchRunOptions {
  sim::FaultConfig faults;
  // Speculative task replication inside the engine's recovery surface
  // (sim/faults.h, DESIGN.md §10). Off by default: the run is bit-identical
  // to the non-speculative driver.
  sim::SpeculationConfig speculation;
  // Warm start: cache contents present before the first sub-batch (seeded
  // into the engine via ExecutionEngine::seed_cache). Null = cold run. The
  // pointee must outlive the call.
  const sim::InitialCacheState* initial_cache = nullptr;
  // Capture the engine's final cache contents into
  // BatchRunResult::final_cache — the snapshot the next batch warms from.
  bool capture_final_cache = false;
  // Replica lifecycle manager (src/replica): tiered replication targets,
  // background repair after crashes, write-back of mutable files. Off by
  // default — a disabled config keeps the run bit-identical to the
  // replication-free driver (PR 4 golden contract). Validated up front; an
  // invalid config is a typed BatchRunResult::error.
  replica::ReplicaConfig replication;
};

struct BatchRunResult {
  std::string scheduler;
  double batch_time = 0.0;          // simulated makespan (what Figs 3-6a plot)
  double scheduling_seconds = 0.0;  // wall-clock planning time (Fig 6b)
  double per_task_scheduling_ms = 0.0;
  // Threads the planners' parallel sweeps ran on (WsRuntime::global()).
  std::size_t planning_threads = 1;
  std::size_t sub_batches = 0;
  sim::ExecutionStats stats;
  // Non-empty when the batch could not finish (invalid configuration, every
  // compute node crashed, or the engine rejected a plan). `ok()` runs
  // executed every task.
  std::string error;
  std::size_t tasks_stranded = 0;  // pending tasks when the run gave up
  // Final cache contents (only when BatchRunOptions::capture_final_cache
  // was set): what the batch left on the compute disks, sorted by
  // (node, file).
  sim::InitialCacheState final_cache;
  // Completion instant of every executed task, ascending — the raw series
  // behind tail-latency percentiles (p50/p95/p99 of task response).
  std::vector<double> task_completion_times;
  // Files still below their tier's replication target when the batch
  // drained (replication enabled only): unrepairable deficits — versions
  // lost to writer crashes, or copies that fit on no surviving disk.
  std::size_t replica_deficit = 0;
  bool ok() const { return error.empty(); }
};

BatchRunResult run_batch(Scheduler& scheduler, const wl::Workload& workload,
                         const sim::ClusterConfig& cluster,
                         const BatchRunOptions& options);

BatchRunResult run_batch(Scheduler& scheduler, const wl::Workload& workload,
                         const sim::ClusterConfig& cluster,
                         const sim::FaultConfig& faults = {});

}  // namespace bsio::sched
