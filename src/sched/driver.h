// Batch driver: the three-stage loop of the paper (sub-batch selection ->
// allocation -> runtime ordering/staging), with the runtime stage executed
// by the simulation engine. Also measures the scheduling overhead reported
// in Fig 6(b).
#pragma once

#include <string>

#include "sched/scheduler.h"
#include "sim/cluster.h"
#include "sim/engine.h"
#include "workload/types.h"

namespace bsio::sched {

struct BatchRunResult {
  std::string scheduler;
  double batch_time = 0.0;          // simulated makespan (what Figs 3-6a plot)
  double scheduling_seconds = 0.0;  // wall-clock planning time (Fig 6b)
  double per_task_scheduling_ms = 0.0;
  std::size_t sub_batches = 0;
  sim::ExecutionStats stats;
};

BatchRunResult run_batch(Scheduler& scheduler, const wl::Workload& workload,
                         const sim::ClusterConfig& cluster);

}  // namespace bsio::sched
