// The paper's 0-1 Integer Programming formulations (Section 4), built on
// the in-tree LP/MIP solver.
//
// Two models:
//  * AllocationModel (Section 4.1 + Eq. 21): given a sub-batch, jointly
//    decide the task mapping T, file placements X, remote transfers R and
//    node-to-node replications Y minimising the makespan surrogate
//    z >= Computation_i + Remote_i + Replication_i for every node.
//  * SelectionModel (Section 4.2, Eqs. 14-20): pick a maximally sized,
//    computationally balanced subset of tasks whose files fit the per-node
//    disks (the first stage of the limited-disk scheme).
//
// Files with identical requester sets and identical current placement are
// coalesced into groups before model construction — a pure preprocessing
// step (the formulation's costs are linear in bytes and agnostic to file
// identity within a group) that shrinks the model dramatically under high
// overlap. Staging directives are expanded back to the member files.
#pragma once

#include <vector>

#include "ip/branch_and_bound.h"
#include "lp/model.h"
#include "sim/plan.h"
#include "sim/state.h"
#include "sim/topology.h"
#include "workload/types.h"

namespace bsio::sched {

struct IpFormulationOptions {
  // Thresh of Eq. 18: allowed deviation of a node's computation time above
  // the cross-node average in the selection model.
  double balance_thresh = 0.5;
  // Use the aggregated forms of constraints (1), (2) and (7) (fewer rows,
  // slightly weaker LP relaxation). The exact per-(i,j,l) forms are kept
  // for tests and small instances.
  bool aggregate_constraints = true;
  // Tiny per-transfer objective epsilon that breaks ties toward fewer
  // transfers (the min-max objective alone is indifferent off the critical
  // node).
  double transfer_epsilon = 1e-6;
};

// A coalesced file group: member files share the same requester set within
// the sub-batch and the same current placement on the compute cluster.
struct FileGroup {
  std::vector<wl::FileId> files;
  double bytes = 0.0;
  std::vector<wl::TaskId> requesters;     // tasks (of the sub-batch) needing it
  std::vector<wl::NodeId> present_on;     // compute nodes already holding it
};

std::vector<FileGroup> coalesce_files(const wl::Workload& w,
                                      const std::vector<wl::TaskId>& tasks,
                                      const sim::ClusterState& state);

// ---------- Allocation model (Section 4.1 + Eq. 21) ----------

class AllocationModel {
 public:
  AllocationModel(const wl::Workload& w, const std::vector<wl::TaskId>& tasks,
                  std::vector<FileGroup> groups, const sim::Topology& topo,
                  const IpFormulationOptions& opts);

  const lp::Model& model() const { return model_; }
  const std::vector<int>& integer_vars() const { return integer_vars_; }

  // Builds a feasible point for the model from a task->node map (indices
  // aligned with the constructor's `tasks`): star-shaped staging with one
  // remote transfer (or an existing copy) per group feeding replicas.
  std::vector<double> incumbent_from_mapping(
      const std::vector<wl::NodeId>& map) const;

  // Decodes a solved point into a plan (assignment + staging directives).
  sim::SubBatchPlan extract_plan(const std::vector<double>& x) const;

  // The model's own objective (plan-level makespan surrogate) for a point.
  double makespan_surrogate(const std::vector<double>& x) const {
    return x[z_];
  }

 private:
  int var_T(std::size_t k, std::size_t i) const;
  int var_X(std::size_t g, std::size_t i) const;  // -1 if fixed/absent
  int var_R(std::size_t g, std::size_t i) const;
  int var_Y(std::size_t g, std::size_t i, std::size_t j) const;
  bool present(std::size_t g, std::size_t i) const;

  const wl::Workload& w_;
  std::vector<wl::TaskId> tasks_;
  std::vector<FileGroup> groups_;
  sim::Topology topo_;
  IpFormulationOptions opts_;

  std::size_t C_ = 0;  // compute nodes
  lp::Model model_;
  std::vector<int> integer_vars_;
  int z_ = -1;
  std::vector<int> t_vars_;                // k * C + i
  std::vector<int> x_vars_, r_vars_;       // g * C + i (-1 = not a variable)
  std::vector<int> y_vars_;                // (g * C + i) * C + j
  std::vector<std::vector<char>> present_;  // g x C
};

// ---------- Selection model (Section 4.2, Eqs. 14-20) ----------

class SelectionModel {
 public:
  SelectionModel(const wl::Workload& w, const std::vector<wl::TaskId>& tasks,
                 std::vector<FileGroup> groups, const sim::Topology& topo,
                 const IpFormulationOptions& opts);

  const lp::Model& model() const { return model_; }
  const std::vector<int>& integer_vars() const { return integer_vars_; }

  // Tasks with sum_i T_ki = 1 in the solved point.
  std::vector<wl::TaskId> extract_sub_batch(
      const std::vector<double>& x) const;

  // Feasible point assigning the given subset round-robin by compute load,
  // or an empty vector if the construction violates the model.
  std::vector<double> greedy_incumbent() const;

 private:
  int var_T(std::size_t k, std::size_t i) const;
  int var_X(std::size_t g, std::size_t i) const;

  const wl::Workload& w_;
  std::vector<wl::TaskId> tasks_;
  std::vector<FileGroup> groups_;
  sim::Topology topo_;
  IpFormulationOptions opts_;

  std::size_t C_ = 0;
  lp::Model model_;
  std::vector<int> integer_vars_;
  std::vector<int> t_vars_, x_vars_;
};

}  // namespace bsio::sched
