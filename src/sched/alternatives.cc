#include "sched/alternatives.h"

#include <cmath>
#include <limits>

#include "sched/cost_model.h"
#include "util/check.h"

namespace bsio::sched {

namespace {

struct NodeChoice {
  wl::NodeId node = 0;
  CompletionEstimate est;
  double second_best = std::numeric_limits<double>::infinity();
};

NodeChoice evaluate(const wl::Workload& w, const sim::Topology& topo,
                    const PlannerState& ps, wl::TaskId task,
                    const std::vector<wl::NodeId>& nodes) {
  NodeChoice out;
  out.node = nodes.front();
  double best = std::numeric_limits<double>::infinity();
  for (wl::NodeId n : nodes) {
    CompletionEstimate est = estimate_completion(w, topo, ps, task, n);
    // Near-ties go to the least-loaded node (storage-dominated estimates
    // make nodes look alike; see the MinMin tie-break rationale).
    const bool first = std::isinf(best);
    const double tol = first ? 0.0 : 1e-9 * (1.0 + best);
    if (first || est.completion < best - tol) {
      out.second_best = best;
      best = est.completion;
      out.node = n;
      out.est = std::move(est);
    } else if (est.completion < best + tol &&
               ps.node_ready[n] < ps.node_ready[out.node] - 1e-12) {
      out.second_best = best;
      best = est.completion;
      out.node = n;
      out.est = std::move(est);
    } else if (est.completion < out.second_best) {
      out.second_best = est.completion;
    }
  }
  return out;
}

// Shared greedy loop: `prefer(a_choice, b_choice) == true` when a should
// be committed before b.
template <typename Prefer>
sim::SubBatchPlan greedy_commit(const std::vector<wl::TaskId>& pending,
                                const SchedulerContext& ctx, Prefer prefer) {
  const wl::Workload& w = ctx.batch;
  const sim::Topology& topo = ctx.topology;
  PlannerState ps(w, topo, ctx.engine.state());
  const std::vector<wl::NodeId>& nodes = ctx.alive_nodes();
  BSIO_CHECK_MSG(!nodes.empty(), "greedy_commit: no compute node is alive");

  sim::SubBatchPlan plan;
  std::vector<wl::TaskId> todo = pending;
  while (!todo.empty()) {
    std::size_t best_i = 0;
    NodeChoice best_choice;
    bool first = true;
    for (std::size_t i = 0; i < todo.size(); ++i) {
      NodeChoice choice = evaluate(w, topo, ps, todo[i], nodes);
      if (first || prefer(choice, best_choice)) {
        first = false;
        best_i = i;
        best_choice = std::move(choice);
      }
    }
    const wl::TaskId task = todo[best_i];
    apply_assignment(w, topo, ps, task, best_choice.node, best_choice.est);
    plan.tasks.push_back(task);
    plan.assignment[task] = best_choice.node;
    todo.erase(todo.begin() + best_i);
  }
  return plan;
}

}  // namespace

sim::SubBatchPlan SufferageScheduler::plan_sub_batch(
    const std::vector<wl::TaskId>& pending, const SchedulerContext& ctx) {
  auto sufferage = [](const NodeChoice& ch) {
    return std::isinf(ch.second_best)
               ? std::numeric_limits<double>::infinity()  // only one node
               : ch.second_best - ch.est.completion;
  };
  return greedy_commit(pending, ctx,
                       [&](const NodeChoice& a, const NodeChoice& b) {
                         return sufferage(a) > sufferage(b);
                       });
}

sim::SubBatchPlan MaxMinScheduler::plan_sub_batch(
    const std::vector<wl::TaskId>& pending, const SchedulerContext& ctx) {
  return greedy_commit(pending, ctx,
                       [](const NodeChoice& a, const NodeChoice& b) {
                         return a.est.completion > b.est.completion;
                       });
}

}  // namespace bsio::sched
