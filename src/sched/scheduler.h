// Scheduler interface: the contract shared by the paper's four algorithms.
//
// The batch driver repeatedly asks the scheduler for the next sub-batch
// plan over the still-pending tasks, executes it on the simulation engine,
// and loops until the batch drains. Schedulers that do no sub-batch
// selection (MinMin, JobDataPresent) simply plan all pending tasks at once
// and rely on the engine's on-demand eviction.
#pragma once

#include <string>
#include <vector>

#include "sim/cluster.h"
#include "sim/engine.h"
#include "sim/plan.h"
#include "sim/state.h"
#include "util/error.h"
#include "workload/types.h"

namespace bsio::sched {

struct SchedulerContext {
  const wl::Workload& batch;
  const sim::ClusterConfig& cluster;
  // Read-only view of the engine: cache contents, pending request counts,
  // node liveness.
  const sim::ExecutionEngine& engine;
  // The transfer-cost model every planner prices against — the engine's own
  // topology, so plans and simulation share one bandwidth arithmetic.
  const sim::Topology& topology;
  // Warm start (online service): the cache snapshot the engine was seeded
  // with before this batch, or null for a cold run. The seeded copies are
  // already visible through engine.state() — PlannerState picks them up as
  // replica holders, the IP formulation's coalesce_files() fixes their
  // initial-placement terms — so most planners need nothing extra; the
  // pointer lets a planner distinguish carried-in files from copies it
  // staged itself (BiPartition's level-1 feasibility credit).
  const sim::InitialCacheState* initial_cache = nullptr;

  SchedulerContext(const wl::Workload& w, const sim::ClusterConfig& c,
                   const sim::ExecutionEngine& e,
                   const sim::InitialCacheState* warm = nullptr)
      : batch(w), cluster(c), engine(e), topology(e.topology()),
        initial_cache(warm) {
    refresh_alive();
  }

  // Compute nodes still alive (fault injection can fail-stop nodes between
  // sub-batches). Schedulers must place work on alive nodes only.
  bool node_alive(wl::NodeId n) const { return engine.node_alive(n); }

  // Cached alive list: the driver refreshes it once per planning round
  // (liveness only changes between rounds), so every scheduler sweep reads
  // one const view instead of rebuilding a vector per call.
  const std::vector<wl::NodeId>& alive_nodes() const { return alive_; }
  void refresh_alive() {
    alive_.clear();
    alive_.reserve(cluster.num_compute_nodes);
    for (wl::NodeId n = 0; n < cluster.num_compute_nodes; ++n)
      if (engine.node_alive(n)) alive_.push_back(n);
  }

 private:
  std::vector<wl::NodeId> alive_;
};

class Scheduler {
 public:
  virtual ~Scheduler() = default;

  virtual std::string name() const = 0;

  // Called by run_batch before the first planning round of a batch.
  // Schedulers that accumulate per-run counters (the IP scheduler's solver
  // stats) must refuse to start a second batch while the previous run's
  // counters are still loaded: silently continuing would fold two batches'
  // numbers into one report. Returns a typed error on such reuse; callers
  // running many batches through one scheduler instance (the online
  // service loop) call reset_run_stats() between batches.
  virtual Status begin_batch() { return OkStatus(); }

  // Clears every per-run accumulated counter so the instance can serve the
  // next batch. A fresh scheduler needs no call.
  virtual void reset_run_stats() {}

  // Plans the next sub-batch from `pending` (non-empty). The returned plan
  // must name a non-empty subset of `pending` with a complete assignment.
  virtual sim::SubBatchPlan plan_sub_batch(
      const std::vector<wl::TaskId>& pending, const SchedulerContext& ctx) = 0;

  // Disk-cache eviction policy this scheme pairs with (paper Section 4.3:
  // popularity for IP / BiPartition / MinMin, LRU for JobDataPresent).
  virtual sim::EvictionPolicy eviction_policy() const {
    return sim::EvictionPolicy::kPopularity;
  }

  // Adds the scheduler's accumulated solver counters (LP factorisations,
  // pivots, B&B nodes, ...) to `stats`. Heuristic schedulers have none; the
  // IP scheduler overrides this so the batch driver can surface kernel
  // behaviour in BatchRunResult / BENCH rows.
  virtual void add_solver_stats(sim::ExecutionStats& stats) const {
    (void)stats;
  }
};

}  // namespace bsio::sched
