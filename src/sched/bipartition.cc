#include "sched/bipartition.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <unordered_map>
#include <unordered_set>

#include "sched/cost_model.h"
#include "util/check.h"
#include "util/logging.h"
#include "util/ws_runtime.h"

namespace bsio::sched {

namespace {

// Builds the task-file hypergraph over `tasks`: one vertex per task (in
// order), one net per file requested by >= 2 of them (files used by a
// single task fold into its vertex, preserving incident-weight accounting).
// `zero_weight` (optional) names files whose net weight is credited to
// zero: warm-start level-1 feasibility, where a file carried in by the
// initial cache seed needs no fresh staging bytes and its disk space is
// already paid for.
hg::Hypergraph build_hypergraph(
    const wl::Workload& w, const std::vector<wl::TaskId>& tasks,
    const std::vector<double>& vertex_weights,
    const std::unordered_set<wl::FileId>* zero_weight = nullptr) {
  hg::HypergraphBuilder b;
  for (double vw : vertex_weights) b.add_vertex(vw);

  std::unordered_map<wl::FileId, std::vector<hg::VertexId>> pins_of_file;
  for (std::size_t i = 0; i < tasks.size(); ++i)
    for (wl::FileId f : w.task(tasks[i]).files)
      pins_of_file[f].push_back(static_cast<hg::VertexId>(i));
  for (auto& [f, pins] : pins_of_file) {
    const bool credited = zero_weight != nullptr && zero_weight->count(f) > 0;
    b.add_net(credited ? 0.0 : w.file_size(f), std::move(pins));
  }
  return b.build();
}

}  // namespace

std::vector<wl::NodeId> bipartition_map_tasks(
    const wl::Workload& w, const std::vector<wl::TaskId>& tasks,
    const sim::Topology& topo, const BiPartitionOptions& options,
    const std::vector<wl::NodeId>& nodes, ExecTimeScratch* scratch) {
  const auto weights =
      options.probabilistic_weights
          ? probabilistic_exec_times(w, tasks, topo, scratch)
          : plain_exec_times(w, tasks, topo);
  hg::Hypergraph h = build_hypergraph(w, tasks, weights);
  const std::size_t k =
      nodes.empty() ? topo.config().num_compute_nodes : nodes.size();
  auto parts =
      hg::partition_kway(h, static_cast<int>(k), options.partitioner);
  std::vector<wl::NodeId> map(tasks.size());
  for (std::size_t i = 0; i < tasks.size(); ++i)
    map[i] = nodes.empty() ? static_cast<wl::NodeId>(parts[i])
                           : nodes[parts[i]];
  return map;
}

Status BiPartitionScheduler::begin_batch() {
  stash_.clear();
  stash_alive_.clear();
  return Scheduler::begin_batch();
}

// plan_all_sub_batches: hands out the next precomputed sub-batch when the
// stash still describes reality exactly — the alive set is unchanged and
// the pending set is precisely the union of the stashed parts. Any
// deviation (node crash, disk-repair deferral, fallback injection) drops
// the stash and the caller replans from scratch.
bool BiPartitionScheduler::serve_stashed_part(
    const std::vector<wl::TaskId>& pending,
    const std::vector<wl::NodeId>& nodes, std::vector<wl::TaskId>& sub_batch,
    std::vector<wl::NodeId>& map) {
  if (stash_.empty()) return false;
  bool valid = stash_alive_ == nodes;
  if (valid) {
    std::size_t total = 0;
    for (const StashedPart& p : stash_) total += p.tasks.size();
    valid = total == pending.size();
  }
  if (valid) {
    // Equal sizes + stashed tasks are distinct (they came from disjoint
    // BINW parts) + every one still pending => the sets are equal.
    const std::unordered_set<wl::TaskId> pend(pending.begin(), pending.end());
    for (const StashedPart& p : stash_) {
      for (wl::TaskId t : p.tasks)
        if (pend.count(t) == 0) {
          valid = false;
          break;
        }
      if (!valid) break;
    }
  }
  if (!valid) {
    stash_.clear();
    return false;
  }
  sub_batch = std::move(stash_.front().tasks);
  map = std::move(stash_.front().map);
  stash_.erase(stash_.begin());
  return true;
}

sim::SubBatchPlan BiPartitionScheduler::plan_sub_batch(
    const std::vector<wl::TaskId>& pending, const SchedulerContext& ctx) {
  const wl::Workload& w = ctx.batch;
  const sim::ClusterConfig& cluster = ctx.cluster;
  const sim::Topology& topo = ctx.topology;
  const std::vector<wl::NodeId>& nodes = ctx.alive_nodes();
  BSIO_CHECK_MSG(!nodes.empty(), "BiPartition: no compute node is alive");

  // --- Level 1: sub-batch selection via BINW. ---
  std::vector<wl::TaskId> sub_batch;
  std::vector<wl::NodeId> map;  // level-2 result; filled below
  bool have_map = false;
  const bool limited = !cluster.unlimited_disk();
  if (!limited) {
    sub_batch = pending;
  } else if (options_.plan_all_sub_batches &&
             serve_stashed_part(pending, nodes, sub_batch, map)) {
    // A precomputed sub-batch still matches reality exactly; no BINW or
    // level-2 run this round.
    have_map = true;
  } else {
    // Aggregate disk space of the surviving nodes only.
    double aggregate = 0.0;
    for (wl::NodeId n : nodes) aggregate += cluster.node_disk_capacity(n);
    const double bound = aggregate * options_.aggregate_bound_fraction;
    const auto weights =
        options_.probabilistic_weights
            ? probabilistic_exec_times(w, pending, topo, &exec_scratch_)
            : plain_exec_times(w, pending, topo);
    // Warm-start credit (online service): a file the initial cache seeded
    // and that still sits on an alive node consumes no fresh disk space, so
    // its net weight is zero for the BINW bound — larger warm sub-batches
    // fit. Gated on the seed being present so cold runs keep their exact
    // historical partitions (the topology goldens depend on them).
    std::unordered_set<wl::FileId> credited;
    if (ctx.initial_cache != nullptr) {
      const sim::ClusterState& state = ctx.engine.state();
      for (const sim::CacheSeedEntry& e : ctx.initial_cache->entries)
        if (ctx.node_alive(e.node) && state.has(e.node, e.file))
          credited.insert(e.file);
    }
    hg::Hypergraph h = build_hypergraph(
        w, pending, weights, credited.empty() ? nullptr : &credited);
    hg::BinwResult binw = hg::partition_binw(h, bound, options_.partitioner);

    std::vector<std::size_t> count(binw.num_parts, 0);
    for (int p : binw.parts) ++count[p];
    if (options_.plan_all_sub_batches) {
      // Level-2-map every sub-batch now, concurrently — each part is an
      // independent K-way partitioning problem, and part_maps[p] is written
      // only by index p, so the result is bit-identical at any thread
      // count. The largest part is served this round; the rest are stashed
      // for the following rounds.
      std::vector<std::vector<wl::TaskId>> part_tasks(binw.num_parts);
      for (int p = 0; p < binw.num_parts; ++p) part_tasks[p].reserve(count[p]);
      for (std::size_t i = 0; i < pending.size(); ++i)
        part_tasks[binw.parts[i]].push_back(pending[i]);
      std::vector<std::vector<wl::NodeId>> part_maps(binw.num_parts);
      WsRuntime::global().parallel_for_each(
          static_cast<std::size_t>(binw.num_parts), [&](std::size_t p) {
            if (part_tasks[p].empty()) return;
            part_maps[p] = bipartition_map_tasks(w, part_tasks[p], topo,
                                                 options_, nodes, nullptr);
          });
      // Largest first, ties by part id: the serving order is a pure
      // function of the BINW result.
      std::vector<int> order(binw.num_parts);
      for (int p = 0; p < binw.num_parts; ++p) order[p] = p;
      std::sort(order.begin(), order.end(), [&](int a, int b) {
        if (count[a] != count[b]) return count[a] > count[b];
        return a < b;
      });
      sub_batch = std::move(part_tasks[order[0]]);
      map = std::move(part_maps[order[0]]);
      have_map = true;
      stash_.clear();
      for (std::size_t r = 1; r < order.size(); ++r)
        if (!part_tasks[order[r]].empty())
          stash_.push_back({std::move(part_tasks[order[r]]),
                            std::move(part_maps[order[r]])});
      stash_alive_ = nodes;
      BSIO_LOG(kDebug) << "BiPartition: mapped " << binw.num_parts
                       << " sub-batches concurrently; serving "
                       << sub_batch.size() << "/" << pending.size()
                       << " tasks, stashed " << stash_.size();
    } else {
      // Execute the largest sub-batch first (mirrors the IP scheme's
      // "maximally sized subset" objective); the rest stay pending and are
      // re-partitioned next round against the then-current cache state.
      const int pick = static_cast<int>(
          std::max_element(count.begin(), count.end()) - count.begin());
      for (std::size_t i = 0; i < pending.size(); ++i)
        if (binw.parts[i] == pick) sub_batch.push_back(pending[i]);
      BSIO_LOG(kDebug) << "BiPartition: BINW chose " << sub_batch.size()
                       << "/" << pending.size() << " tasks over "
                       << binw.num_parts << " sub-batches";
    }
  }

  // --- Level 2: K-way task mapping onto the surviving nodes. ---
  if (!have_map)
    map = bipartition_map_tasks(w, sub_batch, topo, options_, nodes,
                                &exec_scratch_);

  sim::SubBatchPlan plan;
  plan.tasks = sub_batch;
  for (std::size_t i = 0; i < sub_batch.size(); ++i)
    plan.assignment[sub_batch[i]] = map[i];

  // --- Per-node disk repair (Section 5.3). ---
  if (limited) {
    // Sharer counts within the sub-batch.
    std::unordered_map<wl::FileId, std::size_t> sharers;
    for (wl::TaskId t : sub_batch)
      for (wl::FileId f : w.task(t).files) ++sharers[f];

    std::unordered_set<wl::TaskId> dropped;
    for (wl::NodeId n = 0; n < cluster.num_compute_nodes; ++n) {
      // Files to be staged onto n for its assigned tasks.
      std::unordered_set<wl::FileId> staged;
      for (std::size_t i = 0; i < sub_batch.size(); ++i)
        if (map[i] == n)
          for (wl::FileId f : w.task(sub_batch[i]).files) staged.insert(f);
      double bytes = 0.0;
      for (wl::FileId f : staged) bytes += w.file_size(f);
      const double cap = cluster.node_disk_capacity(n);
      if (bytes <= cap) continue;

      // Remove files in increasing sharer order until the node fits, then
      // defer every task that lost a file.
      std::vector<wl::FileId> order(staged.begin(), staged.end());
      std::sort(order.begin(), order.end(),
                [&](wl::FileId a, wl::FileId b) {
                  if (sharers[a] != sharers[b]) return sharers[a] < sharers[b];
                  return a < b;
                });
      std::unordered_set<wl::FileId> removed;
      for (wl::FileId f : order) {
        if (bytes <= cap) break;
        removed.insert(f);
        bytes -= w.file_size(f);
      }
      for (std::size_t i = 0; i < sub_batch.size(); ++i) {
        if (map[i] != n) continue;
        for (wl::FileId f : w.task(sub_batch[i]).files)
          if (removed.count(f)) {
            dropped.insert(sub_batch[i]);
            break;
          }
      }
    }
    if (!dropped.empty()) {
      BSIO_LOG(kDebug) << "BiPartition: disk repair deferred "
                       << dropped.size() << " tasks";
      std::erase_if(plan.tasks,
                    [&](wl::TaskId t) { return dropped.count(t) > 0; });
      for (wl::TaskId t : dropped) plan.assignment.erase(t);
    }
  }

  // Pathological fallback: if repair deferred everything, run the single
  // smallest pending task alone on the emptiest node.
  if (plan.tasks.empty()) {
    wl::TaskId smallest = pending.front();
    double best_bytes = std::numeric_limits<double>::infinity();
    for (wl::TaskId t : pending) {
      double bytes = 0.0;
      for (wl::FileId f : w.task(t).files) bytes += w.file_size(f);
      if (bytes < best_bytes) {
        best_bytes = bytes;
        smallest = t;
      }
    }
    wl::NodeId node = nodes.front();
    for (wl::NodeId n : nodes)
      if (ctx.engine.state().free_bytes(n) >
          ctx.engine.state().free_bytes(node))
        node = n;
    plan.tasks = {smallest};
    plan.assignment[smallest] = node;
  }
  return plan;
}

}  // namespace bsio::sched
