#include "sched/ip_formulation.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <map>
#include <unordered_map>

#include "util/check.h"

namespace bsio::sched {

namespace {

// Group index lists per task, computed once per model.
std::vector<std::vector<std::size_t>> groups_of_tasks(
    const std::vector<wl::TaskId>& tasks, const std::vector<FileGroup>& groups) {
  std::unordered_map<wl::TaskId, std::size_t> pos;
  for (std::size_t k = 0; k < tasks.size(); ++k) pos[tasks[k]] = k;
  std::vector<std::vector<std::size_t>> out(tasks.size());
  for (std::size_t g = 0; g < groups.size(); ++g)
    for (wl::TaskId t : groups[g].requesters) out[pos.at(t)].push_back(g);
  return out;
}

// Task compute cost as the model sees it: CPU (scaled by the node's speed
// factor) plus the local read of its inputs (both serialized on the node,
// Eq. 12).
double model_comp(const wl::Workload& w, const sim::Topology& topo,
                  wl::TaskId t, std::size_t node) {
  double bytes = 0.0;
  for (wl::FileId f : w.task(t).files) bytes += w.file_size(f);
  return w.task(t).compute_seconds / topo.cpu_speed(node) +
         bytes / topo.config().local_disk_bw;
}

// True when the shared link l lies on the remote path into compute node i
// (link sets do not depend on the storage endpoint).
bool remote_crosses(const sim::Topology& topo, std::size_t l, std::size_t i) {
  const sim::TransferPath p = topo.remote_path(0, static_cast<wl::NodeId>(i));
  for (std::uint32_t k = 0; k < p.num_links; ++k)
    if (p.links[k] == l) return true;
  return false;
}

// True when the shared link l lies on the replication path i -> j.
bool replica_crosses(const sim::Topology& topo, std::size_t l, std::size_t i,
                     std::size_t j) {
  const sim::TransferPath p = topo.replica_path(static_cast<wl::NodeId>(i),
                                                static_cast<wl::NodeId>(j));
  for (std::uint32_t k = 0; k < p.num_links; ++k)
    if (p.links[k] == l) return true;
  return false;
}

}  // namespace

std::vector<FileGroup> coalesce_files(const wl::Workload& w,
                                      const std::vector<wl::TaskId>& tasks,
                                      const sim::ClusterState& state) {
  // Key: (sorted requester list, sorted present-on list).
  std::map<std::pair<std::vector<wl::TaskId>, std::vector<wl::NodeId>>,
           std::size_t>
      index;
  std::vector<FileGroup> groups;

  std::unordered_map<wl::FileId, std::vector<wl::TaskId>> requesters;
  for (wl::TaskId t : tasks)
    for (wl::FileId f : w.task(t).files) requesters[f].push_back(t);

  for (auto& [f, req] : requesters) {
    std::sort(req.begin(), req.end());
    std::vector<wl::NodeId> on;
    for (wl::NodeId n = 0; n < state.num_nodes(); ++n)
      if (state.has(n, f)) on.push_back(n);
    auto key = std::make_pair(req, on);
    auto it = index.find(key);
    if (it == index.end()) {
      FileGroup g;
      g.requesters = req;
      g.present_on = on;
      index.emplace(std::move(key), groups.size());
      groups.push_back(std::move(g));
      it = index.find(std::make_pair(req, on));
    }
    FileGroup& g = groups[index.at(std::make_pair(req, on))];
    g.files.push_back(f);
    g.bytes += w.file_size(f);
  }
  for (auto& g : groups) std::sort(g.files.begin(), g.files.end());
  return groups;
}

// ---------------- AllocationModel ----------------

int AllocationModel::var_T(std::size_t k, std::size_t i) const {
  return t_vars_[k * C_ + i];
}
int AllocationModel::var_X(std::size_t g, std::size_t i) const {
  return x_vars_[g * C_ + i];
}
int AllocationModel::var_R(std::size_t g, std::size_t i) const {
  return r_vars_[g * C_ + i];
}
int AllocationModel::var_Y(std::size_t g, std::size_t i, std::size_t j) const {
  return y_vars_[(g * C_ + i) * C_ + j];
}
bool AllocationModel::present(std::size_t g, std::size_t i) const {
  return present_[g][i] != 0;
}

AllocationModel::AllocationModel(const wl::Workload& w,
                                 const std::vector<wl::TaskId>& tasks,
                                 std::vector<FileGroup> groups,
                                 const sim::Topology& topo,
                                 const IpFormulationOptions& opts)
    : w_(w),
      tasks_(tasks),
      groups_(std::move(groups)),
      topo_(topo),
      opts_(opts),
      C_(topo.config().num_compute_nodes) {
  const std::size_t K = tasks_.size();
  const std::size_t G = groups_.size();
  // Worst-case (slowest-path) per-byte costs; on a uniform topology these
  // ARE the per-byte costs, bit-identical to the historical
  // 1 / remote_bw() and 1 / replica_bw().
  const double t_rem = 1.0 / topo_.min_remote_bw();
  const double t_rep = 1.0 / topo_.min_replica_bw();
  const bool uni_rem = topo_.uniform_remote();
  const bool uni_rep = topo_.uniform_replica();
  const bool rep = topo_.config().allow_replication;
  // Per-path transfer seconds for one copy of group g. The uniform branches
  // reproduce the historical t * bytes arithmetic verbatim.
  auto rem_secs = [&](std::size_t g, std::size_t i) {
    if (uni_rem) return t_rem * groups_[g].bytes;
    double sec = 0.0;
    for (wl::FileId f : groups_[g].files)
      sec += w_.file_size(f) /
             topo_.remote_bw(w_.file(f).home_storage_node,
                             static_cast<wl::NodeId>(i));
    return sec;
  };
  auto rep_secs = [&](std::size_t g, std::size_t i, std::size_t j) {
    if (uni_rep) return t_rep * groups_[g].bytes;
    return groups_[g].bytes / topo_.replica_bw(static_cast<wl::NodeId>(i),
                                               static_cast<wl::NodeId>(j));
  };

  present_.assign(G, std::vector<char>(C_, 0));
  for (std::size_t g = 0; g < G; ++g)
    for (wl::NodeId n : groups_[g].present_on)
      if (n < C_) present_[g][n] = 1;

  // Upper bound on the makespan surrogate: everything serial, priced at
  // the slowest node / slowest path.
  double ub = 0.0;
  for (wl::TaskId t : tasks_) {
    double comp = model_comp(w_, topo_, t, 0);
    for (std::size_t i = 1; i < C_; ++i)
      comp = std::max(comp, model_comp(w_, topo_, t, i));
    ub += comp;
  }
  for (const auto& g : groups_)
    ub += g.bytes * (t_rem + 2.0 * static_cast<double>(C_) * t_rep);
  z_ = model_.add_var(1.0, 0.0, ub);

  // Variables.
  t_vars_.assign(K * C_, -1);
  for (std::size_t k = 0; k < K; ++k)
    for (std::size_t i = 0; i < C_; ++i) {
      t_vars_[k * C_ + i] = model_.add_binary(0.0);
      integer_vars_.push_back(t_vars_[k * C_ + i]);
    }
  x_vars_.assign(G * C_, -1);
  r_vars_.assign(G * C_, -1);
  y_vars_.assign(G * C_ * C_, -1);
  for (std::size_t g = 0; g < G; ++g) {
    const double eps_rem = opts_.transfer_epsilon * t_rem * groups_[g].bytes;
    const double eps_rep = opts_.transfer_epsilon * t_rep * groups_[g].bytes;
    for (std::size_t i = 0; i < C_; ++i) {
      if (!present(g, i)) {
        x_vars_[g * C_ + i] = model_.add_binary(0.0);
        r_vars_[g * C_ + i] = model_.add_binary(
            uni_rem ? eps_rem : opts_.transfer_epsilon * rem_secs(g, i));
        integer_vars_.push_back(x_vars_[g * C_ + i]);
        integer_vars_.push_back(r_vars_[g * C_ + i]);
      }
      if (rep)
        for (std::size_t j = 0; j < C_; ++j) {
          if (i == j || present(g, j)) continue;  // never copy onto a holder
          y_vars_[(g * C_ + i) * C_ + j] = model_.add_binary(
              uni_rep ? eps_rep : opts_.transfer_epsilon * rep_secs(g, i, j));
          integer_vars_.push_back(y_vars_[(g * C_ + i) * C_ + j]);
        }
    }
  }

  const auto task_groups = groups_of_tasks(tasks_, groups_);

  // (1, star form) a node serves replicas of g only if it fetched g
  // remotely (or already holds it). We deliberately strengthen the paper's
  // Y <= X to Y <= R: it roots every copy and removes the unrooted
  // replication cycles the original constraint set admits (see DESIGN.md).
  if (rep)
    for (std::size_t g = 0; g < groups_.size(); ++g)
      for (std::size_t i = 0; i < C_; ++i) {
        if (present(g, i)) continue;  // existing holders are valid roots
        if (opts_.aggregate_constraints) {
          std::vector<lp::RowEntry> row;
          for (std::size_t j = 0; j < C_; ++j)
            if (var_Y(g, i, j) >= 0) row.push_back({var_Y(g, i, j), 1.0});
          if (row.empty()) continue;
          row.push_back({var_R(g, i), -static_cast<double>(C_ - 1)});
          model_.add_row(lp::Sense::kLe, 0.0, std::move(row));
        } else {
          for (std::size_t j = 0; j < C_; ++j)
            if (var_Y(g, i, j) >= 0)
              model_.add_row(lp::Sense::kLe, 0.0,
                             {{var_Y(g, i, j), 1.0}, {var_R(g, i), -1.0}});
        }
      }

  // (2) replicate to j only if some requester of g is mapped to j.
  std::unordered_map<wl::TaskId, std::size_t> pos;
  for (std::size_t k = 0; k < K; ++k) pos[tasks_[k]] = k;
  if (rep)
    for (std::size_t g = 0; g < groups_.size(); ++g) {
      for (std::size_t j = 0; j < C_; ++j) {
        if (present(g, j)) continue;
        std::vector<lp::RowEntry> row;
        for (std::size_t i = 0; i < C_; ++i)
          if (var_Y(g, i, j) >= 0) row.push_back({var_Y(g, i, j), 1.0});
        if (row.empty()) continue;
        for (wl::TaskId t : groups_[g].requesters)
          row.push_back({var_T(pos.at(t), j), -1.0});
        model_.add_row(lp::Sense::kLe, 0.0, std::move(row));
      }
    }

  // (4) storage on a node is the result of exactly one remote transfer or
  // replication: X = R + sum_j Y_j->i. (Also implies Eqs. 3 and 5.)
  for (std::size_t g = 0; g < groups_.size(); ++g)
    for (std::size_t i = 0; i < C_; ++i) {
      if (present(g, i)) continue;
      std::vector<lp::RowEntry> row{{var_X(g, i), 1.0}, {var_R(g, i), -1.0}};
      if (rep)
        for (std::size_t j = 0; j < C_; ++j)
          if (var_Y(g, j, i) >= 0) row.push_back({var_Y(g, j, i), -1.0});
      model_.add_row(lp::Sense::kEq, 0.0, std::move(row));
    }

  // (6) each task runs on exactly one node.
  for (std::size_t k = 0; k < K; ++k) {
    std::vector<lp::RowEntry> row;
    for (std::size_t i = 0; i < C_; ++i) row.push_back({var_T(k, i), 1.0});
    model_.add_row(lp::Sense::kEq, 1.0, std::move(row));
  }

  // (7) mapping a task stages all its files.
  for (std::size_t k = 0; k < K; ++k)
    for (std::size_t i = 0; i < C_; ++i) {
      std::vector<std::size_t> needed;
      for (std::size_t g : task_groups[k])
        if (!present(g, i)) needed.push_back(g);
      if (needed.empty()) continue;
      if (opts_.aggregate_constraints) {
        std::vector<lp::RowEntry> row{
            {var_T(k, i), static_cast<double>(needed.size())}};
        for (std::size_t g : needed) row.push_back({var_X(g, i), -1.0});
        model_.add_row(lp::Sense::kLe, 0.0, std::move(row));
      } else {
        for (std::size_t g : needed)
          model_.add_row(lp::Sense::kLe, 0.0,
                         {{var_T(k, i), 1.0}, {var_X(g, i), -1.0}});
      }
    }

  // (8) every group without an existing copy is fetched remotely at least
  // once.
  for (std::size_t g = 0; g < groups_.size(); ++g) {
    if (!groups_[g].present_on.empty()) continue;
    std::vector<lp::RowEntry> row;
    for (std::size_t i = 0; i < C_; ++i)
      if (var_R(g, i) >= 0) row.push_back({var_R(g, i), 1.0});
    model_.add_row(lp::Sense::kGe, 1.0, std::move(row));
  }

  // (21) per-node disk capacity; existing copies of sub-batch files count
  // as consumed.
  for (std::size_t i = 0; i < C_; ++i) {
    const double cap = topo_.config().node_disk_capacity(i);
    if (!std::isfinite(cap)) continue;
    double consumed = 0.0;
    std::vector<lp::RowEntry> row;
    for (std::size_t g = 0; g < groups_.size(); ++g) {
      if (present(g, i))
        consumed += groups_[g].bytes;
      else
        row.push_back({var_X(g, i), groups_[g].bytes});
    }
    if (row.empty()) continue;
    model_.add_row(lp::Sense::kLe, cap - consumed, std::move(row));
  }

  // Shared-link rows: every shared link of the topology (the global
  // uplink, the rack uplinks) serializes all transfers crossing it, so z is
  // also bounded below by each link's total traffic. The paper's per-node
  // formulation cannot see a shared resource; without these rows the model
  // underprices remote transfers exactly when they are most expensive.
  for (std::size_t l = 0; l < topo_.num_links(); ++l) {
    const double t_up = 1.0 / topo_.link_bw(l);
    std::vector<lp::RowEntry> row{{z_, -1.0}};
    for (std::size_t g = 0; g < groups_.size(); ++g)
      for (std::size_t i = 0; i < C_; ++i) {
        if (var_R(g, i) >= 0 && remote_crosses(topo_, l, i))
          row.push_back({var_R(g, i), t_up * groups_[g].bytes});
        if (rep)
          for (std::size_t j = 0; j < C_; ++j)
            if (var_Y(g, i, j) >= 0 && replica_crosses(topo_, l, i, j))
              row.push_back({var_Y(g, i, j), t_up * groups_[g].bytes});
      }
    if (row.size() > 1) model_.add_row(lp::Sense::kLe, 0.0, std::move(row));
  }

  // z >= Computation_i + Remote_i + Replication_i (Eqs. 9-13).
  for (std::size_t i = 0; i < C_; ++i) {
    std::vector<lp::RowEntry> row{{z_, -1.0}};
    for (std::size_t k = 0; k < K; ++k)
      row.push_back({var_T(k, i), model_comp(w_, topo_, tasks_[k], i)});
    for (std::size_t g = 0; g < groups_.size(); ++g) {
      if (var_R(g, i) >= 0)
        row.push_back({var_R(g, i), rem_secs(g, i)});
      if (rep)
        for (std::size_t j = 0; j < C_; ++j) {
          if (var_Y(g, i, j) >= 0)
            row.push_back({var_Y(g, i, j), rep_secs(g, i, j)});
          if (var_Y(g, j, i) >= 0)
            row.push_back({var_Y(g, j, i), rep_secs(g, j, i)});
        }
    }
    model_.add_row(lp::Sense::kLe, 0.0, std::move(row));
  }
}

std::vector<double> AllocationModel::incumbent_from_mapping(
    const std::vector<wl::NodeId>& map) const {
  BSIO_CHECK(map.size() == tasks_.size());
  std::vector<double> x(model_.num_vars(), 0.0);
  for (std::size_t k = 0; k < tasks_.size(); ++k)
    x[var_T(k, map[k])] = 1.0;

  const auto task_groups = groups_of_tasks(tasks_, groups_);
  // Needed nodes per group under this mapping.
  for (std::size_t g = 0; g < groups_.size(); ++g) {
    std::vector<char> needed(C_, 0);
    for (std::size_t k = 0; k < tasks_.size(); ++k)
      for (std::size_t gg : task_groups[k])
        if (gg == g) needed[map[k]] = 1;
    // Root: an existing holder if any, else the first needy node gets the
    // remote transfer; everyone else replicates from the root (star).
    int root = -1;
    bool root_is_present = false;
    for (std::size_t i = 0; i < C_; ++i)
      if (present(g, i)) {
        root = static_cast<int>(i);
        root_is_present = true;
        break;
      }
    for (std::size_t i = 0; i < C_ && root < 0; ++i)
      if (needed[i]) root = static_cast<int>(i);
    if (root < 0) continue;  // nobody needs it (possible after repair)
    if (!root_is_present) {
      x[var_X(g, root)] = 1.0;
      x[var_R(g, root)] = 1.0;
    }
    for (std::size_t j = 0; j < C_; ++j) {
      if (static_cast<int>(j) == root || !needed[j] || present(g, j)) continue;
      x[var_X(g, j)] = 1.0;
      if (topo_.config().allow_replication && var_Y(g, root, j) >= 0)
        x[var_Y(g, root, j)] = 1.0;
      else
        x[var_R(g, j)] = 1.0;
    }
  }

  // The makespan surrogate: max node cost under this point. Uniform
  // topologies keep the historical t * bytes arithmetic verbatim.
  const double t_rem = 1.0 / topo_.min_remote_bw();
  const double t_rep = 1.0 / topo_.min_replica_bw();
  const bool uni_rem = topo_.uniform_remote();
  const bool uni_rep = topo_.uniform_replica();
  auto rem_secs = [&](std::size_t g, std::size_t i) {
    if (uni_rem) return t_rem * groups_[g].bytes;
    double sec = 0.0;
    for (wl::FileId f : groups_[g].files)
      sec += w_.file_size(f) /
             topo_.remote_bw(w_.file(f).home_storage_node,
                             static_cast<wl::NodeId>(i));
    return sec;
  };
  auto rep_secs = [&](std::size_t g, std::size_t i, std::size_t j) {
    if (uni_rep) return t_rep * groups_[g].bytes;
    return groups_[g].bytes / topo_.replica_bw(static_cast<wl::NodeId>(i),
                                               static_cast<wl::NodeId>(j));
  };
  double z = 0.0;
  for (std::size_t i = 0; i < C_; ++i) {
    double load = 0.0;
    for (std::size_t k = 0; k < tasks_.size(); ++k)
      if (map[k] == i) load += model_comp(w_, topo_, tasks_[k], i);
    for (std::size_t g = 0; g < groups_.size(); ++g) {
      if (var_R(g, i) >= 0 && x[var_R(g, i)] > 0.5)
        load += rem_secs(g, i);
      for (std::size_t j = 0; j < C_; ++j) {
        if (var_Y(g, i, j) >= 0 && x[var_Y(g, i, j)] > 0.5)
          load += rep_secs(g, i, j);
        if (var_Y(g, j, i) >= 0 && x[var_Y(g, j, i)] > 0.5)
          load += rep_secs(g, j, i);
      }
    }
    z = std::max(z, load);
  }
  for (std::size_t l = 0; l < topo_.num_links(); ++l) {
    double traffic = 0.0;
    for (std::size_t g = 0; g < groups_.size(); ++g)
      for (std::size_t i = 0; i < C_; ++i) {
        if (var_R(g, i) >= 0 && x[var_R(g, i)] > 0.5 &&
            remote_crosses(topo_, l, i))
          traffic += groups_[g].bytes / topo_.link_bw(l);
        for (std::size_t j = 0; j < C_; ++j)
          if (var_Y(g, i, j) >= 0 && x[var_Y(g, i, j)] > 0.5 &&
              replica_crosses(topo_, l, i, j))
            traffic += groups_[g].bytes / topo_.link_bw(l);
      }
    z = std::max(z, traffic);
  }
  x[z_] = z;
  return x;
}

sim::SubBatchPlan AllocationModel::extract_plan(
    const std::vector<double>& x) const {
  sim::SubBatchPlan plan;
  for (std::size_t k = 0; k < tasks_.size(); ++k) {
    wl::NodeId node = 0;
    double best = -1.0;
    for (std::size_t i = 0; i < C_; ++i)
      if (x[var_T(k, i)] > best) {
        best = x[var_T(k, i)];
        node = static_cast<wl::NodeId>(i);
      }
    plan.tasks.push_back(tasks_[k]);
    plan.assignment[tasks_[k]] = node;
  }
  for (std::size_t g = 0; g < groups_.size(); ++g)
    for (std::size_t i = 0; i < C_; ++i) {
      if (present(g, i)) continue;
      sim::StagingSource src;
      bool have = false;
      if (var_R(g, i) >= 0 && x[var_R(g, i)] > 0.5) {
        src = {sim::SourceKind::kRemote, wl::kInvalidNode};
        have = true;
      } else {
        for (std::size_t j = 0; j < C_ && !have; ++j)
          if (var_Y(g, j, i) >= 0 && x[var_Y(g, j, i)] > 0.5) {
            src = {sim::SourceKind::kReplica, static_cast<wl::NodeId>(j)};
            have = true;
          }
      }
      if (!have) continue;
      for (wl::FileId f : groups_[g].files)
        plan.staging[{f, static_cast<wl::NodeId>(i)}] = src;
    }
  return plan;
}

// ---------------- SelectionModel ----------------

int SelectionModel::var_T(std::size_t k, std::size_t i) const {
  return t_vars_[k * C_ + i];
}
int SelectionModel::var_X(std::size_t g, std::size_t i) const {
  return x_vars_[g * C_ + i];
}

SelectionModel::SelectionModel(const wl::Workload& w,
                               const std::vector<wl::TaskId>& tasks,
                               std::vector<FileGroup> groups,
                               const sim::Topology& topo,
                               const IpFormulationOptions& opts)
    : w_(w),
      tasks_(tasks),
      groups_(std::move(groups)),
      topo_(topo),
      opts_(opts),
      C_(topo.config().num_compute_nodes) {
  const std::size_t K = tasks_.size();
  const std::size_t G = groups_.size();

  std::vector<std::vector<char>> present(G, std::vector<char>(C_, 0));
  for (std::size_t g = 0; g < G; ++g)
    for (wl::NodeId n : groups_[g].present_on)
      if (n < C_) present[g][n] = 1;

  t_vars_.assign(K * C_, -1);
  for (std::size_t k = 0; k < K; ++k)
    for (std::size_t i = 0; i < C_; ++i) {
      // Objective Eq. 14: maximise the number of selected tasks.
      t_vars_[k * C_ + i] = model_.add_binary(-1.0);
      integer_vars_.push_back(t_vars_[k * C_ + i]);
    }
  x_vars_.assign(G * C_, -1);
  for (std::size_t g = 0; g < G; ++g)
    for (std::size_t i = 0; i < C_; ++i) {
      if (present[g][i]) continue;
      // Tiny cost discourages staging files nobody uses.
      x_vars_[g * C_ + i] =
          model_.add_binary(opts_.transfer_epsilon * groups_[g].bytes /
                            topo_.min_remote_bw());
      integer_vars_.push_back(x_vars_[g * C_ + i]);
    }

  const auto task_groups = groups_of_tasks(tasks_, groups_);

  // (15) selecting a task onto a node stages its files there.
  for (std::size_t k = 0; k < K; ++k)
    for (std::size_t i = 0; i < C_; ++i) {
      std::vector<std::size_t> needed;
      for (std::size_t g : task_groups[k])
        if (!present[g][i]) needed.push_back(g);
      if (needed.empty()) continue;
      if (opts_.aggregate_constraints) {
        std::vector<lp::RowEntry> row{
            {var_T(k, i), static_cast<double>(needed.size())}};
        for (std::size_t g : needed) row.push_back({var_X(g, i), -1.0});
        model_.add_row(lp::Sense::kLe, 0.0, std::move(row));
      } else {
        for (std::size_t g : needed)
          model_.add_row(lp::Sense::kLe, 0.0,
                         {{var_T(k, i), 1.0}, {var_X(g, i), -1.0}});
      }
    }

  // (16) per-node disk space.
  for (std::size_t i = 0; i < C_; ++i) {
    double consumed = 0.0;
    std::vector<lp::RowEntry> row;
    for (std::size_t g = 0; g < G; ++g) {
      if (present[g][i])
        consumed += groups_[g].bytes;
      else
        row.push_back({var_X(g, i), groups_[g].bytes});
    }
    if (row.empty()) continue;
    model_.add_row(lp::Sense::kLe,
                   topo_.config().node_disk_capacity(i) - consumed,
                   std::move(row));
  }

  // (17) a task is selected onto at most one node.
  for (std::size_t k = 0; k < K; ++k) {
    std::vector<lp::RowEntry> row;
    for (std::size_t i = 0; i < C_; ++i) row.push_back({var_T(k, i), 1.0});
    model_.add_row(lp::Sense::kLe, 1.0, std::move(row));
  }

  // (18-20) computational balance: C * Comp_i <= (1 + Thresh) * sum Comp.
  // Skipped for tiny batches where the constraint would forbid any
  // selection at all (fewer tasks than nodes).
  if (K >= 2 * C_) {
    for (std::size_t i = 0; i < C_; ++i) {
      std::vector<lp::RowEntry> row;
      for (std::size_t k = 0; k < K; ++k) {
        for (std::size_t ii = 0; ii < C_; ++ii) {
          const double comp = model_comp(w_, topo_, tasks_[k], ii);
          double coef = -(1.0 + opts_.balance_thresh) * comp;
          if (ii == i) coef += static_cast<double>(C_) * comp;
          row.push_back({var_T(k, ii), coef});
        }
      }
      model_.add_row(lp::Sense::kLe, 0.0, std::move(row));
    }
  }
}

std::vector<wl::TaskId> SelectionModel::extract_sub_batch(
    const std::vector<double>& x) const {
  std::vector<wl::TaskId> out;
  for (std::size_t k = 0; k < tasks_.size(); ++k) {
    double sum = 0.0;
    for (std::size_t i = 0; i < C_; ++i) sum += x[var_T(k, i)];
    if (sum > 0.5) out.push_back(tasks_[k]);
  }
  return out;
}

std::vector<double> SelectionModel::greedy_incumbent() const {
  std::vector<double> x(model_.num_vars(), 0.0);
  const auto task_groups = groups_of_tasks(tasks_, groups_);

  std::vector<double> load(C_, 0.0);
  std::vector<double> disk(C_, 0.0);
  std::vector<std::vector<char>> staged(groups_.size(),
                                        std::vector<char>(C_, 0));
  for (std::size_t g = 0; g < groups_.size(); ++g)
    for (wl::NodeId n : groups_[g].present_on)
      if (n < C_) {
        staged[g][n] = 1;
        disk[n] += groups_[g].bytes;
      }

  // Least-loaded greedy packing.
  for (std::size_t k = 0; k < tasks_.size(); ++k) {
    std::size_t best = C_;
    for (std::size_t i = 0; i < C_; ++i) {
      double extra = 0.0;
      for (std::size_t g : task_groups[k])
        if (!staged[g][i]) extra += groups_[g].bytes;
      if (disk[i] + extra > topo_.config().node_disk_capacity(i)) continue;
      if (best == C_ || load[i] < load[best]) best = i;
    }
    if (best == C_) continue;  // does not fit anywhere; leave unselected
    x[var_T(k, best)] = 1.0;
    load[best] += model_comp(w_, topo_, tasks_[k], best);
    for (std::size_t g : task_groups[k])
      if (!staged[g][best]) {
        staged[g][best] = 1;
        disk[best] += groups_[g].bytes;
        if (var_X(g, best) >= 0) x[var_X(g, best)] = 1.0;
      }
  }
  if (!model_.is_feasible(x)) return {};
  return x;
}

}  // namespace bsio::sched
