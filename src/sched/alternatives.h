// Additional baseline schedulers beyond the paper's two: Sufferage and
// MaxMin (Maheswaran et al., HCW'99), with the same data-access-aware MCT
// estimates the MinMin baseline uses — the adaptation Casanova et al.
// (HCW'00) made for file-staging costs, which the paper cites as related
// work. Useful as extra comparison points and for studying how much of
// the proposed schemes' win comes from global file-affinity information
// rather than the greedy order.
#pragma once

#include "sched/scheduler.h"

namespace bsio::sched {

// Sufferage: commit the task that would "suffer" most if denied its best
// node (largest gap between its best and second-best completion time).
class SufferageScheduler : public Scheduler {
 public:
  std::string name() const override { return "Sufferage"; }
  sim::SubBatchPlan plan_sub_batch(const std::vector<wl::TaskId>& pending,
                                   const SchedulerContext& ctx) override;
};

// MaxMin: commit the task with the LARGEST minimum completion time first
// (big tasks early, small tasks fill the gaps).
class MaxMinScheduler : public Scheduler {
 public:
  std::string name() const override { return "MaxMin"; }
  sim::SubBatchPlan plan_sub_batch(const std::vector<wl::TaskId>& pending,
                                   const SchedulerContext& ctx) override;
};

}  // namespace bsio::sched
