// MinMin with implicit replication (paper Section 3, the first baseline).
//
// Classic MinMin adapted with data-access costs: at every step, compute for
// each unassigned task its minimum completion time (MCT) over all nodes —
// counting file transfer time from the best of the remote storage node or
// any node already (planned to be) holding the file — then commit the task
// with the smallest MCT. Every staged copy implicitly becomes a replica
// source for later decisions. The whole batch is planned in one sub-batch;
// the engine's popularity eviction handles disk pressure.
//
// The per-round (task x node) MCT sweep runs on the global WsRuntime; the
// argmin fold over the precomputed estimates stays sequential and visits
// candidates in the historical order, so plans are bit-identical at any
// thread count.
#pragma once

#include <limits>

#include "sched/cost_model.h"
#include "sched/scheduler.h"

namespace bsio::sched {

class MinMinScheduler : public Scheduler {
 public:
  // Batches larger than `exact_threshold` use a lazy re-evaluation heap
  // instead of the textbook full re-scan per step: pop the cached-best
  // task, recompute its MCT against the current state, and commit it only
  // if it still beats the next cached entry. MCTs grow as resources fill,
  // so the lazy order matches the exact one except when a fresh replica
  // lowers another task's MCT — a negligible deviation at the scale where
  // the exact O(T^2 C F) scan is unaffordable.
  //
  // `stale_retry_budget` bounds how many stale entries the lazy heap may
  // refresh-and-repush between two commits. Every commit perturbs the
  // shared storage and link ready times, which invalidates the cached key
  // of every task competing for the same ports — on contended workloads
  // the refresh cascade between commits grows linearly with the batch, and
  // unbounded retries turn the lazy path quadratic (thousands of full-row
  // re-evaluations per commit at 10k+ tasks). With a finite budget the
  // cascade stops after that many refreshes and commits the best fresh
  // candidate seen — bounded-staleness MinMin: per-commit cost is
  // O(budget * nodes * files_per_task) and plan quality degrades only by
  // the key drift a single commit can cause. The default keeps the
  // historical unbounded behavior.
  explicit MinMinScheduler(
      std::size_t exact_threshold = 400,
      std::size_t stale_retry_budget = std::numeric_limits<std::size_t>::max())
      : exact_threshold_(exact_threshold),
        stale_retry_budget_(stale_retry_budget) {}

  std::string name() const override { return "MinMin"; }
  sim::SubBatchPlan plan_sub_batch(const std::vector<wl::TaskId>& pending,
                                   const SchedulerContext& ctx) override;

  std::size_t exact_threshold() const { return exact_threshold_; }
  std::size_t stale_retry_budget() const { return stale_retry_budget_; }

 private:
  std::size_t exact_threshold_;
  std::size_t stale_retry_budget_;
  PlannerState ps_;  // reused across rounds (epoch-stamped reset)
};

// The MinMin planning core: plans `pending` against an already-initialised
// planner state — `ps` is NOT reset here, so callers may pre-load it with
// live placements before the sweep (the incremental planner's delta
// insertion replays its uncommitted plan, then inserts only the new
// arrivals). Commits append to `plan` in commit order. With a freshly reset
// ps this is bit-identical to MinMinScheduler::plan_sub_batch.
void minmin_plan_into(const wl::Workload& w, const sim::Topology& topo,
                      PlannerState& ps, const std::vector<wl::TaskId>& pending,
                      const std::vector<wl::NodeId>& nodes,
                      std::size_t exact_threshold,
                      std::size_t stale_retry_budget, sim::SubBatchPlan& plan);

}  // namespace bsio::sched
