// MinMin with implicit replication (paper Section 3, the first baseline).
//
// Classic MinMin adapted with data-access costs: at every step, compute for
// each unassigned task its minimum completion time (MCT) over all nodes —
// counting file transfer time from the best of the remote storage node or
// any node already (planned to be) holding the file — then commit the task
// with the smallest MCT. Every staged copy implicitly becomes a replica
// source for later decisions. The whole batch is planned in one sub-batch;
// the engine's popularity eviction handles disk pressure.
//
// The per-round (task x node) MCT sweep runs on the global WsRuntime; the
// argmin fold over the precomputed estimates stays sequential and visits
// candidates in the historical order, so plans are bit-identical at any
// thread count.
#pragma once

#include <limits>

#include "sched/cost_model.h"
#include "sched/scheduler.h"

namespace bsio::sched {

class MinMinScheduler : public Scheduler {
 public:
  // Batches larger than `exact_threshold` use a lazy re-evaluation heap
  // instead of the textbook full re-scan per step: pop the cached-best
  // task, recompute its MCT against the current state, and commit it only
  // if it still beats the next cached entry. MCTs grow as resources fill,
  // so the lazy order matches the exact one except when a fresh replica
  // lowers another task's MCT — a negligible deviation at the scale where
  // the exact O(T^2 C F) scan is unaffordable.
  //
  // `stale_retry_budget` bounds how many stale entries the lazy heap may
  // refresh-and-repush between two commits. Every commit perturbs the
  // shared storage and link ready times, which invalidates the cached key
  // of every task competing for the same ports — on contended workloads
  // the refresh cascade between commits grows linearly with the batch, and
  // unbounded retries turn the lazy path quadratic (thousands of full-row
  // re-evaluations per commit at 10k+ tasks). With a finite budget the
  // cascade stops after that many refreshes and commits the best fresh
  // candidate seen — bounded-staleness MinMin: per-commit cost is
  // O(budget * nodes * files_per_task) and plan quality degrades only by
  // the key drift a single commit can cause. The default keeps the
  // historical unbounded behavior.
  explicit MinMinScheduler(
      std::size_t exact_threshold = 400,
      std::size_t stale_retry_budget = std::numeric_limits<std::size_t>::max())
      : exact_threshold_(exact_threshold),
        stale_retry_budget_(stale_retry_budget) {}

  std::string name() const override { return "MinMin"; }
  sim::SubBatchPlan plan_sub_batch(const std::vector<wl::TaskId>& pending,
                                   const SchedulerContext& ctx) override;

 private:
  std::size_t exact_threshold_;
  std::size_t stale_retry_budget_;
  PlannerState ps_;  // reused across rounds (epoch-stamped reset)
};

}  // namespace bsio::sched
