#include "ip/branch_and_bound.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"
#include "util/logging.h"
#include "util/timer.h"

namespace bsio::ip {

namespace {

struct Frame {
  int var = -1;
  double old_lo = 0.0, old_up = 0.0;
  // Children: fix to [old_lo, floor] and [ceil, old_up]. first_child is the
  // side the LP value rounds to; tried counts how many were explored.
  double floor_val = 0.0, ceil_val = 0.0;
  int first_child = 0;  // 0 = down (floor) first, 1 = up (ceil) first
  int tried = 0;
  double lp_bound = 0.0;  // LP objective at this node (bound for subtree)
};

}  // namespace

MipSolver::MipSolver(const lp::Model& model, std::vector<int> integer_vars)
    : model_(model), integer_vars_(std::move(integer_vars)) {
  for (int v : integer_vars_)
    BSIO_CHECK(v >= 0 && v < model_.num_vars());
}

bool MipSolver::set_incumbent(const std::vector<double>& x) {
  if (!model_.is_feasible(x)) return false;
  for (int v : integer_vars_)
    if (std::abs(x[v] - std::round(x[v])) > 1e-6) return false;
  double obj = model_.objective_value(x);
  if (obj < incumbent_obj_) {
    incumbent_ = x;
    incumbent_obj_ = obj;
  }
  return true;
}

MipResult MipSolver::solve(const MipOptions& opts) {
  WallTimer timer;
  MipResult res;
  lp::DualSimplex lp(model_, opts.simplex);

  std::vector<Frame> stack;
  double root_bound = -std::numeric_limits<double>::infinity();

  auto cutoff = [&]() {
    return incumbent_obj_ -
           std::max(opts.gap_abs, std::abs(incumbent_obj_) * opts.gap_rel);
  };

  auto try_rounding = [&](const std::vector<double>& x) {
    std::vector<double> r = x;
    for (int v : integer_vars_) {
      r[v] = std::round(r[v]);
      r[v] = std::clamp(r[v], model_.lower(v), model_.upper(v));
    }
    if (!model_.is_feasible(r)) return;
    double obj = model_.objective_value(r);
    if (obj < incumbent_obj_) {
      incumbent_obj_ = obj;
      incumbent_ = std::move(r);
    }
  };

  bool limit_hit = false;
  bool backtracking = false;
  bool clean = true;  // false if any node LP failed numerically

  while (true) {
    if (!backtracking) {
      // Evaluate the current node.
      if (res.nodes >= opts.max_nodes ||
          timer.elapsed_seconds() > opts.time_limit_seconds) {
        limit_hit = true;
        break;
      }
      ++res.nodes;
      // Bound each node's LP by the remaining B&B budget so one large LP
      // cannot blow past the caller's time limit.
      lp.set_time_limit(
          std::max(0.05, opts.time_limit_seconds - timer.elapsed_seconds()));
      lp::SolveResult sr = lp.solve();
      res.lp_iterations += sr.iterations;

      bool prune = false;
      if (sr.status == lp::SolveStatus::kInfeasible) {
        prune = true;
      } else if (sr.status == lp::SolveStatus::kIterLimit &&
                 timer.elapsed_seconds() > opts.time_limit_seconds) {
        // Deadline expired inside the LP: stop cleanly with the incumbent.
        limit_hit = true;
        break;
      } else if (sr.status != lp::SolveStatus::kOptimal) {
        // Numerical trouble / iteration limit: treat the node as unbounded
        // below (cannot prune safely) unless we have no way to proceed.
        BSIO_LOG(kWarn) << "B&B node LP did not solve to optimality (status "
                        << static_cast<int>(sr.status) << "); pruning";
        clean = false;
        prune = true;  // keep going; final status is downgraded below
      } else {
        if (stack.empty())
          root_bound = sr.objective;
        if (sr.objective >= cutoff()) {
          prune = true;
        } else {
          std::vector<double> x = lp.values();
          // Branch variable: most fractional.
          int branch_var = -1;
          double best_frac_dist = opts.int_tol;
          for (int v : integer_vars_) {
            double f = x[v] - std::floor(x[v]);
            double dist = std::min(f, 1.0 - f);
            if (dist > best_frac_dist) {
              best_frac_dist = dist;
              branch_var = v;
            }
          }
          if (branch_var < 0) {
            // Integral: candidate incumbent.
            for (int v : integer_vars_) x[v] = std::round(x[v]);
            if (model_.is_feasible(x)) {
              double obj = model_.objective_value(x);
              if (obj < incumbent_obj_) {
                incumbent_obj_ = obj;
                incumbent_ = std::move(x);
              }
            }
            prune = true;
          } else {
            if (opts.heuristic_every > 0 &&
                res.nodes % opts.heuristic_every == 0)
              try_rounding(x);
            // Push a branching frame and descend into the first child.
            Frame f;
            f.var = branch_var;
            f.old_lo = lp.lower(branch_var);
            f.old_up = lp.upper(branch_var);
            f.floor_val = std::floor(x[branch_var]);
            f.ceil_val = f.floor_val + 1.0;
            f.first_child =
                (x[branch_var] - f.floor_val) <= 0.5 ? 0 : 1;
            f.tried = 0;
            f.lp_bound = sr.objective;
            stack.push_back(f);
            Frame& top = stack.back();
            int child = top.first_child;
            ++top.tried;
            if (child == 0)
              lp.set_bounds(top.var, top.old_lo, top.floor_val);
            else
              lp.set_bounds(top.var, top.ceil_val, top.old_up);
            continue;
          }
        }
      }
      if (prune) backtracking = true;
      continue;
    }

    // Backtrack: find the deepest frame with an untried child.
    if (stack.empty()) break;
    Frame& top = stack.back();
    if (top.tried >= 2 || top.lp_bound >= cutoff()) {
      lp.set_bounds(top.var, top.old_lo, top.old_up);
      stack.pop_back();
      continue;
    }
    int child = 1 - top.first_child;
    ++top.tried;
    if (child == 0)
      lp.set_bounds(top.var, top.old_lo, top.floor_val);
    else
      lp.set_bounds(top.var, top.ceil_val, top.old_up);
    backtracking = false;
  }

  res.solve_seconds = timer.elapsed_seconds();
  res.objective = incumbent_obj_;
  res.x = incumbent_;
  if (!limit_hit) {
    if (incumbent_.empty()) {
      res.status = clean ? MipStatus::kInfeasible : MipStatus::kNoSolution;
      res.best_bound = std::numeric_limits<double>::infinity();
    } else {
      res.status = clean ? MipStatus::kOptimal : MipStatus::kFeasible;
      res.best_bound = incumbent_obj_;
    }
  } else {
    // Bound = min over open subtree bounds and the root relaxation.
    double bound = incumbent_obj_;
    for (const Frame& f : stack) bound = std::min(bound, f.lp_bound);
    if (stack.empty()) bound = std::min(bound, root_bound);
    res.best_bound = bound;
    res.status =
        incumbent_.empty() ? MipStatus::kNoSolution : MipStatus::kFeasible;
  }
  return res;
}

}  // namespace bsio::ip
