#include "ip/branch_and_bound.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <memory>
#include <queue>

#include "util/check.h"
#include "util/logging.h"
#include "util/timer.h"
#include "util/ws_runtime.h"

namespace bsio::ip {

namespace {

struct Frame {
  int var = -1;
  double old_lo = 0.0, old_up = 0.0;
  // Children: fix to [old_lo, floor] and [ceil, old_up]. first_child is the
  // side explored first; tried counts how many were explored.
  double floor_val = 0.0, ceil_val = 0.0;
  int first_child = 0;  // 0 = down (floor) first, 1 = up (ceil) first
  int tried = 0;
  double lp_bound = 0.0;  // LP objective at this node (bound for subtree)
  double frac = 0.0;      // fractional part of x[var] at this node
};

// Per-variable, per-direction pseudo-costs: average objective degradation
// per unit of fractionality removed, learned from solved child LPs.
class PseudoCosts {
 public:
  PseudoCosts(const lp::Model& model, const std::vector<int>& integer_vars)
      : sum_{std::vector<double>(model.num_vars(), 0.0),
             std::vector<double>(model.num_vars(), 0.0)},
        cnt_{std::vector<long>(model.num_vars(), 0),
             std::vector<long>(model.num_vars(), 0)},
        init_(model.num_vars(), 1.0) {
    // Initialise from the objective: a variable with a large |coefficient|
    // moves the bound more when forced integral. Zero coefficients (the
    // common case in the paper's models, where only the makespan variable z
    // carries cost) fall back to 1.0, which reduces the product score to
    // pure fractionality until observations arrive.
    for (int v : integer_vars) {
      const double c = std::abs(model.cost(v));
      if (c > 0.0) init_[v] = c;
    }
  }

  // dir: 0 = down child (distance `frac`), 1 = up child (1 - frac).
  void observe(int var, int dir, double frac, double degradation) {
    const double dist = dir == 0 ? frac : 1.0 - frac;
    if (dist < 1e-9) return;
    sum_[dir][var] += std::max(0.0, degradation) / dist;
    ++cnt_[dir][var];
  }

  double estimate(int var, int dir) const {
    return cnt_[dir][var] > 0 ? sum_[dir][var] / cnt_[dir][var] : init_[var];
  }

  // Product score (Achterberg-style): degradations both ways must be large
  // for a variable to be worth branching on.
  double score(int var, double frac) const {
    const double dn = estimate(var, 0) * frac;
    const double up = estimate(var, 1) * (1.0 - frac);
    return std::max(dn, 1e-6) * std::max(up, 1e-6);
  }

 private:
  std::vector<double> sum_[2];
  std::vector<long> cnt_[2];
  std::vector<double> init_;
};

// Which branch produced the LP that is about to be solved, for pseudo-cost
// attribution once its objective is known.
struct Attr {
  int var = -1;
  int dir = 0;
  double frac = 0.0;
  double parent_obj = 0.0;
};

// One bound tightening relative to the root model (best-bound node state).
struct BoundChange {
  int var;
  double lo, up;
};

struct QNode {
  double bound;  // parent LP objective: a valid bound for this subtree
  long seq;      // insertion order; deterministic tie-break
  std::vector<BoundChange> changes;
  Attr attr;
  // Parent's post-solve basis (parallel waves only; both children share
  // it). Evaluating the node from this snapshot makes its LP solve a pure
  // function of the node, whichever worker runs it.
  std::shared_ptr<const lp::BasisSnapshot> warm;
};

struct QNodeAfter {
  bool operator()(const QNode& a, const QNode& b) const {
    if (a.bound != b.bound) return a.bound > b.bound;
    return a.seq > b.seq;
  }
};

// Shared state for one parallel wave: the popped nodes, one result slot per
// node, and the epoch-published cutoff workers prune against. Slot i is
// touched only by the worker running job i (and later the committing
// thread, after the group join), so slots need no locks.
struct WaveCtx {
  struct Slot {
    // Lazily built per slot index and reused across waves; restore_basis
    // canonicalises it before every solve, so which nodes it solved before
    // cannot leak into this node's result.
    std::unique_ptr<lp::DualSimplex> solver;
    std::vector<int> touched;  // vars currently tightened away from root
    bool skipped = true;
    lp::SolveResult sr;
    std::vector<double> x;  // primal point when sr is optimal
    std::shared_ptr<const lp::BasisSnapshot> snap;  // post-solve basis
  };

  const lp::Model* model = nullptr;
  const MipOptions* opts = nullptr;
  const WallTimer* timer = nullptr;
  const std::vector<int>* integer_vars = nullptr;
  std::vector<QNode>* wave = nullptr;
  std::vector<Slot>* slots = nullptr;
  std::atomic<double>* published_cutoff = nullptr;
};

// Evaluates wave slot i as a pure function of its node: restore the
// parent's basis, rebase bounds root -> node.changes, solve. Runs on a
// worker during the wave; runs again inline at commit when a worker
// skipped the node on a published cutoff that turned out too aggressive —
// both produce bit-identical results, so skipping is invisible.
void solve_wave_slot(WaveCtx& ctx, std::size_t i, bool allow_skip) {
  const QNode& node = (*ctx.wave)[i];
  WaveCtx::Slot& slot = (*ctx.slots)[i];
  slot.skipped = true;
  slot.x.clear();
  slot.snap.reset();
  if (allow_skip &&
      node.bound >= ctx.published_cutoff->load(std::memory_order_seq_cst))
    return;  // dominated by the published cutoff; commit re-solves if stale
  const bool fresh = slot.solver == nullptr;
  if (fresh)
    slot.solver =
        std::make_unique<lp::DualSimplex>(*ctx.model, ctx.opts->simplex);
  lp::DualSimplex& lp = *slot.solver;
  if (node.warm != nullptr)
    lp.restore_basis(*node.warm);
  else
    BSIO_CHECK_MSG(fresh, "only the root node may solve without a warm basis");
  for (int v : slot.touched)
    lp.set_bounds(v, ctx.model->lower(v), ctx.model->upper(v));
  slot.touched.clear();
  for (const BoundChange& bc : node.changes) {
    lp.set_bounds(bc.var, bc.lo, bc.up);
    slot.touched.push_back(bc.var);
  }
  lp.set_time_limit(std::max(
      0.02, ctx.opts->time_limit_seconds - ctx.timer->elapsed_seconds()));
  slot.sr = lp.solve();
  slot.skipped = false;
  if (slot.sr.status != lp::SolveStatus::kOptimal) return;
  slot.x = lp.values();
  slot.snap = std::make_shared<lp::BasisSnapshot>(lp.snapshot_basis());
  // An integral point is an incumbent candidate: tighten the published
  // cutoff so still-running siblings can skip dominated nodes. The commit
  // replays the actual incumbent update deterministically; publishing an
  // over-tight value only costs an inline re-solve, never correctness.
  bool integral = true;
  for (int v : *ctx.integer_vars) {
    const double f = slot.x[v] - std::floor(slot.x[v]);
    if (std::min(f, 1.0 - f) > ctx.opts->int_tol) {
      integral = false;
      break;
    }
  }
  if (integral) {
    const double obj = slot.sr.objective;
    const double c =
        obj - std::max(ctx.opts->gap_abs, std::abs(obj) * ctx.opts->gap_rel);
    double cur = ctx.published_cutoff->load(std::memory_order_seq_cst);
    while (c < cur && !ctx.published_cutoff->compare_exchange_weak(
                          cur, c, std::memory_order_seq_cst)) {
    }
  }
}

void wave_slot_job(void* vctx, std::size_t i) {
  solve_wave_slot(*static_cast<WaveCtx*>(vctx), i, /*allow_skip=*/true);
}

}  // namespace

MipSolver::MipSolver(const lp::Model& model, std::vector<int> integer_vars)
    : model_(model), integer_vars_(std::move(integer_vars)) {
  for (int v : integer_vars_)
    BSIO_CHECK(v >= 0 && v < model_.num_vars());
}

bool MipSolver::set_incumbent(const std::vector<double>& x) {
  if (!model_.is_feasible(x)) return false;
  for (int v : integer_vars_)
    if (std::abs(x[v] - std::round(x[v])) > 1e-6) return false;
  double obj = model_.objective_value(x);
  if (obj < incumbent_obj_) {
    incumbent_ = x;
    incumbent_obj_ = obj;
  }
  return true;
}

MipResult MipSolver::solve(const MipOptions& opts) {
  WallTimer timer;
  MipResult res;
  lp::DualSimplex lp(model_, opts.simplex);
  PseudoCosts pc(model_, integer_vars_);

  double root_bound = -std::numeric_limits<double>::infinity();
  long stall_nodes = 0;  // nodes since the last incumbent improvement

  auto cutoff = [&]() {
    return incumbent_obj_ -
           std::max(opts.gap_abs, std::abs(incumbent_obj_) * opts.gap_rel);
  };

  auto improve_incumbent = [&](std::vector<double>&& x, double obj) {
    incumbent_obj_ = obj;
    incumbent_ = std::move(x);
    stall_nodes = 0;
  };

  auto try_rounding = [&](const std::vector<double>& x) {
    std::vector<double> r = x;
    for (int v : integer_vars_) {
      r[v] = std::round(r[v]);
      r[v] = std::clamp(r[v], model_.lower(v), model_.upper(v));
    }
    if (!model_.is_feasible(r)) return;
    double obj = model_.objective_value(r);
    if (obj < incumbent_obj_) improve_incumbent(std::move(r), obj);
  };

  // Picks the branching variable for the fractional point `x`; -1 when the
  // point is integral (within int_tol).
  auto select_branch = [&](const std::vector<double>& x) {
    int best = -1;
    double best_score = -1.0;
    for (int v : integer_vars_) {
      const double f = x[v] - std::floor(x[v]);
      const double dist = std::min(f, 1.0 - f);
      if (dist <= opts.int_tol) continue;
      const double s = opts.branching == Branching::kPseudoCost
                           ? pc.score(v, f)
                           : dist;
      if (s > best_score) {
        best_score = s;
        best = v;
      }
    }
    return best;
  };

  // Stall cutoff: with an incumbent in hand, give up on proving optimality
  // after stall_node_limit consecutive non-improving nodes.
  auto stalled = [&]() {
    return opts.stall_node_limit > 0 && stall_nodes >= opts.stall_node_limit &&
           incumbent_obj_ < std::numeric_limits<double>::infinity();
  };

  bool limit_hit = false;
  bool clean = true;  // false if any node LP failed numerically

  // Evaluates one node on the solver's current bounds. Returns false when a
  // global limit was hit (caller stops). Sets `prune` when the subtree is
  // finished, otherwise fills `frac_x`/`branch_var` for branching.
  auto eval_node = [&](const Attr& attr, bool& prune,
                       std::vector<double>& frac_x, int& branch_var,
                       double& node_obj) {
    // The root node is always evaluated (its LP is still bounded by the
    // remaining-budget floor below): building the simplex can consume a
    // tight budget by itself, and a solve that never computes a root bound
    // reports no best_bound and no stats.
    if (res.nodes > 0 &&
        (res.nodes >= opts.max_nodes ||
         timer.elapsed_seconds() > opts.time_limit_seconds || stalled())) {
      limit_hit = true;
      return false;
    }
    ++res.nodes;
    ++stall_nodes;
    // Bound each node's LP by the remaining B&B budget so one large LP
    // cannot blow past the caller's time limit; the floor keeps a nearly
    // exhausted budget from starving the LP of all progress.
    lp.set_time_limit(
        std::max(0.02, opts.time_limit_seconds - timer.elapsed_seconds()));
    lp::SolveResult sr = lp.solve();
    res.lp_iterations += sr.iterations;
    res.stats.accumulate(sr.stats);

    prune = false;
    branch_var = -1;
    node_obj = -std::numeric_limits<double>::infinity();
    if (sr.status == lp::SolveStatus::kInfeasible) {
      prune = true;
      return true;
    }
    if (sr.status == lp::SolveStatus::kIterLimit &&
        timer.elapsed_seconds() > opts.time_limit_seconds) {
      // Deadline expired inside the LP: stop cleanly with the incumbent.
      limit_hit = true;
      return false;
    }
    if (sr.status != lp::SolveStatus::kOptimal) {
      // Numerical trouble / iteration limit: cannot bound the subtree, so
      // prune and downgrade the final status below.
      BSIO_LOG(kWarn) << "B&B node LP did not solve to optimality (status "
                      << static_cast<int>(sr.status) << "); pruning";
      clean = false;
      prune = true;
      return true;
    }
    node_obj = sr.objective;
    if (attr.var >= 0)
      pc.observe(attr.var, attr.dir, attr.frac,
                 sr.objective - attr.parent_obj);
    if (sr.objective >= cutoff()) {
      prune = true;
      return true;
    }
    std::vector<double> x = lp.values();
    branch_var = select_branch(x);
    if (branch_var < 0) {
      // Integral: candidate incumbent.
      for (int v : integer_vars_) x[v] = std::round(x[v]);
      if (model_.is_feasible(x)) {
        double obj = model_.objective_value(x);
        if (obj < incumbent_obj_) improve_incumbent(std::move(x), obj);
      }
      prune = true;
      return true;
    }
    if (opts.heuristic_every > 0 && res.nodes % opts.heuristic_every == 0)
      try_rounding(x);
    frac_x = std::move(x);
    return true;
  };

  // The side to explore first: pseudo-cost mode descends toward the smaller
  // estimated degradation, most-fractional toward the nearer integer.
  auto first_side = [&](int var, double frac) {
    if (opts.branching == Branching::kPseudoCost)
      return pc.estimate(var, 0) * frac <= pc.estimate(var, 1) * (1.0 - frac)
                 ? 0
                 : 1;
    return frac <= 0.5 ? 0 : 1;
  };

  if (opts.node_order == NodeOrder::kDepthFirst) {
    std::vector<Frame> stack;
    bool backtracking = false;
    Attr attr;  // branch that produced the node about to be evaluated
    while (true) {
      if (!backtracking) {
        bool prune = false;
        std::vector<double> x;
        int branch_var = -1;
        double node_obj = 0.0;
        if (!eval_node(attr, prune, x, branch_var, node_obj)) break;
        attr = Attr{};
        if (stack.empty() && !prune)
          root_bound = node_obj;
        if (prune) {
          backtracking = true;
          continue;
        }
        // Push a branching frame and descend into the first child.
        Frame f;
        f.var = branch_var;
        f.old_lo = lp.lower(branch_var);
        f.old_up = lp.upper(branch_var);
        f.floor_val = std::floor(x[branch_var]);
        f.ceil_val = f.floor_val + 1.0;
        f.frac = x[branch_var] - f.floor_val;
        f.first_child = first_side(branch_var, f.frac);
        f.tried = 0;
        f.lp_bound = node_obj;
        stack.push_back(f);
        Frame& top = stack.back();
        int child = top.first_child;
        ++top.tried;
        if (child == 0)
          lp.set_bounds(top.var, top.old_lo, top.floor_val);
        else
          lp.set_bounds(top.var, top.ceil_val, top.old_up);
        attr = Attr{top.var, child, top.frac, top.lp_bound};
        continue;
      }

      // Backtrack: find the deepest frame with an untried child.
      if (stack.empty()) break;
      Frame& top = stack.back();
      if (top.tried >= 2 || top.lp_bound >= cutoff()) {
        lp.set_bounds(top.var, top.old_lo, top.old_up);
        stack.pop_back();
        continue;
      }
      int child = 1 - top.first_child;
      ++top.tried;
      if (child == 0)
        lp.set_bounds(top.var, top.old_lo, top.floor_val);
      else
        lp.set_bounds(top.var, top.ceil_val, top.old_up);
      attr = Attr{top.var, child, top.frac, top.lp_bound};
      backtracking = false;
    }

    res.solve_seconds = timer.elapsed_seconds();
    res.objective = incumbent_obj_;
    res.x = incumbent_;
    if (!limit_hit) {
      if (incumbent_.empty()) {
        res.status = clean ? MipStatus::kInfeasible : MipStatus::kNoSolution;
        res.best_bound = std::numeric_limits<double>::infinity();
      } else {
        res.status = clean ? MipStatus::kOptimal : MipStatus::kFeasible;
        res.best_bound = incumbent_obj_;
      }
    } else {
      // Bound = min over open subtree bounds and the root relaxation.
      double bound = incumbent_obj_;
      for (const Frame& f : stack) bound = std::min(bound, f.lp_bound);
      if (stack.empty()) bound = std::min(bound, root_bound);
      res.best_bound = bound;
      res.status =
          incumbent_.empty() ? MipStatus::kNoSolution : MipStatus::kFeasible;
    }
    return res;
  }

  // Best-bound order: open nodes in a priority queue keyed by their parent's
  // LP objective. Each pop re-applies the node's bound changes from the root
  // (the dual simplex absorbs them as one hypersparse warm start).
  std::priority_queue<QNode, std::vector<QNode>, QNodeAfter> open;
  long seq = 0;
  open.push(QNode{-std::numeric_limits<double>::infinity(), seq++, {}, {}, {}});
  std::vector<int> touched;  // vars currently tightened away from root bounds

  if (opts.parallel_wave == 0) {
    while (!open.empty()) {
      QNode node = open.top();
      if (node.bound >= cutoff()) break;  // every open node is dominated
      open.pop();

      // Rebase the solver onto this node's bound set.
      for (int v : touched)
        lp.set_bounds(v, model_.lower(v), model_.upper(v));
      touched.clear();
      for (const BoundChange& bc : node.changes) {
        lp.set_bounds(bc.var, bc.lo, bc.up);
        touched.push_back(bc.var);
      }

      bool prune = false;
      std::vector<double> x;
      int branch_var = -1;
      double node_obj = 0.0;
      if (!eval_node(node.attr, prune, x, branch_var, node_obj)) break;
      if (node.changes.empty() && !prune)
        root_bound = node_obj;
      if (prune) continue;

      const double lo = lp.lower(branch_var), up = lp.upper(branch_var);
      const double fl = std::floor(x[branch_var]);
      const double frac = x[branch_var] - fl;
      for (int dir = 0; dir < 2; ++dir) {
        QNode child;
        child.bound = node_obj;
        child.seq = seq++;
        child.changes = node.changes;
        if (dir == 0)
          child.changes.push_back({branch_var, lo, fl});
        else
          child.changes.push_back({branch_var, fl + 1.0, up});
        child.attr = Attr{branch_var, dir, frac, node_obj};
        open.push(std::move(child));
      }
    }
  } else {
    // Parallel waves: pop the W best nodes, evaluate their LPs
    // concurrently, then commit results sequentially in slot order,
    // replaying pruning / pseudo-cost / incumbent / child decisions exactly
    // as the one-node-at-a-time loop would. The wave width fixes the
    // search; thread count and steal schedule only change wall time.
    const std::size_t wave_width = opts.parallel_wave;
    std::vector<QNode> wave;
    wave.reserve(wave_width);
    std::vector<WaveCtx::Slot> slots(wave_width);
    std::atomic<double> published_cutoff{cutoff()};
    WaveCtx ctx;
    ctx.model = &model_;
    ctx.opts = &opts;
    ctx.timer = &timer;
    ctx.integer_vars = &integer_vars_;
    ctx.wave = &wave;
    ctx.slots = &slots;
    ctx.published_cutoff = &published_cutoff;
    WsRuntime& rt = WsRuntime::global();

    // Termination tests are spelled `!(bound >= cutoff())` — not
    // `bound < cutoff()` — because cutoff() is NaN until the first
    // incumbent lands (inf - inf) and every NaN comparison is false: the
    // sequential loop keeps going in that state, so this one must too.
    while (!open.empty() && !(open.top().bound >= cutoff())) {
      wave.clear();
      while (wave.size() < wave_width && !open.empty() &&
             !(open.top().bound >= cutoff())) {
        wave.push_back(open.top());
        open.pop();
      }
      // Epoch publish: workers start this wave pruning against the cutoff
      // as of all committed waves; integral slots tighten it mid-wave.
      published_cutoff.store(cutoff(), std::memory_order_seq_cst);
      {
        WsRuntime::TaskGroup group(rt);
        for (std::size_t i = 0; i < wave.size(); ++i)
          group.spawn(&wave_slot_job, &ctx, i);
      }  // joins the wave

      std::size_t reopen_from = wave.size();
      for (std::size_t i = 0; i < wave.size(); ++i) {
        QNode& node = wave[i];
        // Dominated by a commit earlier in this wave: discarded with no
        // node count and no LP stats — exactly what a skipped solve left
        // behind, which is why skips are invisible in the result.
        if (node.bound >= cutoff()) continue;
        if (res.nodes > 0 &&
            (res.nodes >= opts.max_nodes ||
             timer.elapsed_seconds() > opts.time_limit_seconds || stalled())) {
          limit_hit = true;
          reopen_from = i;  // not yet counted: reopen this node too
          break;
        }
        WaveCtx::Slot& slot = slots[i];
        if (slot.skipped)  // published cutoff was ahead of the commit
          solve_wave_slot(ctx, i, /*allow_skip=*/false);
        ++res.nodes;
        ++stall_nodes;
        res.lp_iterations += slot.sr.iterations;
        res.stats.accumulate(slot.sr.stats);
        if (slot.sr.status == lp::SolveStatus::kInfeasible) continue;
        if (slot.sr.status == lp::SolveStatus::kIterLimit &&
            timer.elapsed_seconds() > opts.time_limit_seconds) {
          // Deadline expired inside the LP: this node is spent, the rest
          // of the wave reopens for the best-bound report.
          limit_hit = true;
          reopen_from = i + 1;
          break;
        }
        if (slot.sr.status != lp::SolveStatus::kOptimal) {
          BSIO_LOG(kWarn)
              << "B&B node LP did not solve to optimality (status "
              << static_cast<int>(slot.sr.status) << "); pruning";
          clean = false;
          continue;
        }
        const double node_obj = slot.sr.objective;
        if (node.attr.var >= 0)
          pc.observe(node.attr.var, node.attr.dir, node.attr.frac,
                     node_obj - node.attr.parent_obj);
        if (node_obj >= cutoff()) continue;
        std::vector<double>& x = slot.x;
        const int branch_var = select_branch(x);
        if (branch_var < 0) {
          // Integral: candidate incumbent.
          for (int v : integer_vars_) x[v] = std::round(x[v]);
          if (model_.is_feasible(x)) {
            const double obj = model_.objective_value(x);
            if (obj < incumbent_obj_) improve_incumbent(std::move(x), obj);
          }
          continue;
        }
        if (opts.heuristic_every > 0 &&
            res.nodes % opts.heuristic_every == 0)
          try_rounding(x);
        if (node.changes.empty()) root_bound = node_obj;

        // The branch variable's bounds at this node (last change wins).
        double lo = model_.lower(branch_var), up = model_.upper(branch_var);
        for (const BoundChange& bc : node.changes)
          if (bc.var == branch_var) {
            lo = bc.lo;
            up = bc.up;
          }
        const double fl = std::floor(x[branch_var]);
        const double frac = x[branch_var] - fl;
        for (int dir = 0; dir < 2; ++dir) {
          QNode child;
          child.bound = node_obj;
          child.seq = seq++;
          child.changes = node.changes;
          if (dir == 0)
            child.changes.push_back({branch_var, lo, fl});
          else
            child.changes.push_back({branch_var, fl + 1.0, up});
          child.attr = Attr{branch_var, dir, frac, node_obj};
          child.warm = slot.snap;
          open.push(std::move(child));
        }
      }
      if (limit_hit) {
        for (std::size_t j = reopen_from; j < wave.size(); ++j)
          open.push(std::move(wave[j]));
        break;
      }
    }
  }

  res.solve_seconds = timer.elapsed_seconds();
  res.objective = incumbent_obj_;
  res.x = incumbent_;
  const bool exhausted = !limit_hit;
  if (exhausted) {
    // Queue empty, or every remaining node dominated by the incumbent.
    if (incumbent_.empty()) {
      res.status = clean ? MipStatus::kInfeasible : MipStatus::kNoSolution;
      res.best_bound = std::numeric_limits<double>::infinity();
    } else {
      res.status = clean ? MipStatus::kOptimal : MipStatus::kFeasible;
      res.best_bound = incumbent_obj_;
    }
  } else {
    double bound = incumbent_obj_;
    if (!open.empty())
      bound = std::min(bound, open.top().bound);
    else
      bound = std::min(bound, root_bound);
    res.best_bound = bound;
    res.status =
        incumbent_.empty() ? MipStatus::kNoSolution : MipStatus::kFeasible;
  }
  return res;
}

}  // namespace bsio::ip
