// 0-1 (mixed) integer programming by LP-based branch and bound.
//
// Depth-first search with dual-simplex warm starts: branching only changes
// variable bounds, so every node re-optimises from its parent's basis in a
// handful of pivots. A rounding heuristic probes for incumbents at every
// node, and the caller can seed an incumbent (the IP scheduler seeds the
// BiPartition solution) so time-limited runs are never worse than the
// heuristic on the model objective — mirroring how the paper's lp_solve
// setup degrades gracefully on large instances.
#pragma once

#include <limits>
#include <vector>

#include "lp/model.h"
#include "lp/simplex.h"

namespace bsio::ip {

struct MipOptions {
  double time_limit_seconds = 30.0;
  long max_nodes = 1000000;
  double int_tol = 1e-6;
  // Prune when node bound >= incumbent - max(gap_abs, |incumbent|*gap_rel).
  double gap_abs = 1e-9;
  double gap_rel = 1e-6;
  // Run the rounding heuristic every k-th node (0 disables).
  int heuristic_every = 1;
  lp::SimplexOptions simplex;
};

enum class MipStatus {
  kOptimal,     // incumbent proven optimal (within gap)
  kFeasible,    // limit hit with an incumbent in hand
  kInfeasible,  // proven infeasible
  kNoSolution,  // limit hit before any incumbent was found
};

struct MipResult {
  MipStatus status = MipStatus::kNoSolution;
  std::vector<double> x;  // incumbent values (structural variables)
  double objective = std::numeric_limits<double>::infinity();
  double best_bound = -std::numeric_limits<double>::infinity();
  long nodes = 0;
  long lp_iterations = 0;
  double solve_seconds = 0.0;
};

class MipSolver {
 public:
  // `model` must outlive the solver; integer_vars lists the variables
  // required to take integral values (binaries in all of this library's
  // models).
  MipSolver(const lp::Model& model, std::vector<int> integer_vars);

  // Seeds an incumbent. The point is verified against the model; infeasible
  // seeds are ignored (returns false).
  bool set_incumbent(const std::vector<double>& x);

  MipResult solve(const MipOptions& opts = MipOptions());

 private:
  const lp::Model& model_;
  std::vector<int> integer_vars_;
  std::vector<double> incumbent_;
  double incumbent_obj_ = std::numeric_limits<double>::infinity();
};

}  // namespace bsio::ip
