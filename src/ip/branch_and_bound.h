// 0-1 (mixed) integer programming by LP-based branch and bound.
//
// Search with dual-simplex warm starts: branching only changes variable
// bounds, so every node re-optimises from its parent's basis in a handful of
// pivots. Two node orders are available — depth-first (default; cheapest
// warm starts, one bound change per descent) and best-bound (pops the open
// node with the smallest LP bound; finds strong bounds sooner on models
// whose depth-first dives go stale). Branching is pseudo-cost by default:
// per-variable per-direction degradation estimates, initialised from the
// objective coefficients and updated from observed child-LP bound
// degradations, falling back to most-fractional while uninformed.
//
// A rounding heuristic probes for incumbents at every node, and the caller
// can seed an incumbent (the IP scheduler seeds the BiPartition solution) so
// time-limited runs are never worse than the heuristic on the model
// objective — mirroring how the paper's lp_solve setup degrades gracefully
// on large instances.
#pragma once

#include <limits>
#include <vector>

#include "lp/model.h"
#include "lp/simplex.h"

namespace bsio::ip {

// Branch-variable selection rule.
enum class Branching {
  // Product of estimated up/down objective degradations. Estimates start
  // from |objective coefficient| (1.0 when zero, which reduces the score to
  // fractionality) and are refined with each observed child-LP degradation.
  kPseudoCost,
  // Classic most-fractional: largest distance to the nearest integer.
  kMostFractional,
};

// Order in which open nodes are explored.
enum class NodeOrder {
  kDepthFirst,  // stack; cheapest warm starts
  kBestBound,   // priority queue on node LP bound; tightest bound first
};

struct MipOptions {
  double time_limit_seconds = 30.0;
  long max_nodes = 1000000;
  double int_tol = 1e-6;
  // Prune when node bound >= incumbent - max(gap_abs, |incumbent|*gap_rel).
  double gap_abs = 1e-9;
  double gap_rel = 1e-6;
  // Run the rounding heuristic every k-th node (0 disables).
  int heuristic_every = 1;
  Branching branching = Branching::kPseudoCost;
  NodeOrder node_order = NodeOrder::kDepthFirst;
  // Stop with kFeasible after this many consecutive nodes without an
  // incumbent improvement (0 disables). Only kicks in once an incumbent
  // exists, so it can never cause kNoSolution; with a seeded incumbent it
  // bounds how long B&B polishes a heuristic plan.
  long stall_node_limit = 0;
  // Best-bound only: solve up to this many open nodes per wave concurrently
  // on the global work-stealing runtime (0 = the historical sequential node
  // loop). Each wave pops the best nodes in (bound, seq) order, workers
  // evaluate their LPs as pure functions of the node (canonical parent-basis
  // restore), and results are committed sequentially in slot order —
  // pruning, pseudo-cost updates, incumbents, and children replay exactly
  // as if the wave had been explored one node at a time. The wave width
  // (not the thread count) defines the search, so MipResult is bit-identical
  // at any thread count and steal schedule whenever the time limit does not
  // bind. Workers share the incumbent through an epoch-published cutoff
  // (refreshed each wave, tightened by CAS when a worker's LP comes back
  // integral); a node skipped on a stale cutoff but surviving to commit is
  // re-solved inline, so over-eager skips cost time, never determinism.
  std::size_t parallel_wave = 0;
  lp::SimplexOptions simplex;
};

enum class MipStatus {
  kOptimal,     // incumbent proven optimal (within gap)
  kFeasible,    // limit hit with an incumbent in hand
  kInfeasible,  // proven infeasible
  kNoSolution,  // limit hit before any incumbent was found
};

struct MipResult {
  MipStatus status = MipStatus::kNoSolution;
  std::vector<double> x;  // incumbent values (structural variables)
  double objective = std::numeric_limits<double>::infinity();
  double best_bound = -std::numeric_limits<double>::infinity();
  long nodes = 0;
  long lp_iterations = 0;
  double solve_seconds = 0.0;
  // Simplex kernel counters accumulated over every node LP.
  lp::SolverStats stats;
};

class MipSolver {
 public:
  // `model` must outlive the solver; integer_vars lists the variables
  // required to take integral values (binaries in all of this library's
  // models).
  MipSolver(const lp::Model& model, std::vector<int> integer_vars);

  // Seeds an incumbent. The point is verified against the model; infeasible
  // seeds are ignored (returns false).
  bool set_incumbent(const std::vector<double>& x);

  MipResult solve(const MipOptions& opts = MipOptions());

 private:
  const lp::Model& model_;
  std::vector<int> integer_vars_;
  std::vector<double> incumbent_;
  double incumbent_obj_ = std::numeric_limits<double>::infinity();
};

}  // namespace bsio::ip
