// The online multi-batch scheduling service.
//
// ServiceLoop drives a single-executor event loop over a batch arrival
// sequence: arrivals enter the admission queue (FIFO or SJF, bounded with
// typed rejection), the executor dequeues one batch at a time and runs it
// through the ordinary batch driver with the chosen scheduler — warm,
// seeding the engine with the cache snapshot the previous batches left
// behind (CrossBatchCatalog), so popular files are served from compute-node
// disks instead of re-staged per batch. Per-batch service metrics (queue
// wait, planning time, makespan, response time, cross-batch hit bytes)
// aggregate into ServiceStats; bench/service_throughput sweeps arrival
// rates and schedulers over them.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "sched/driver.h"
#include "sched/scheduler.h"
#include "service/admission.h"
#include "service/arrival.h"
#include "service/catalog.h"
#include "sim/cluster.h"
#include "sim/faults.h"
#include "util/error.h"

namespace bsio::service {

struct ServiceOptions {
  AdmissionOptions admission;
  CrossBatchOptions cross_batch;
  // Warm start: seed each batch's engine with the carried cache snapshot.
  // false = the cold ablation — identical batches and arrivals, every
  // engine starts empty.
  bool warm_start = true;
  sim::FaultConfig faults;
  // Speculative task replication per batch (sim/faults.h, DESIGN.md §10).
  sim::SpeculationConfig speculation;
  // Per-batch speculation budget for the online path: each batch may
  // duplicate at most ceil(fraction × batch tasks) tasks (further clamped
  // by speculation.max_speculative_tasks), so one straggling batch cannot
  // burn unbounded duplicate work while later arrivals queue.
  double speculation_budget_fraction = 0.25;
};

// One batch's service record.
struct BatchServiceMetrics {
  std::size_t index = 0;        // arrival index
  std::size_t tasks = 0;
  double arrival_time = 0.0;
  double start_time = 0.0;      // when the executor picked it up
  double queue_wait = 0.0;      // start - arrival
  double planning_seconds = 0.0;  // wall-clock scheduling overhead
  double makespan = 0.0;          // simulated batch execution time
  double response_time = 0.0;     // queue_wait + makespan
  // Cross-batch reuse: bytes served from copies the warm seed carried in.
  double cross_batch_hit_bytes = 0.0;
  double cache_hit_bytes = 0.0;   // all in-cache serves (incl. within-batch)
  double remote_bytes = 0.0;
  double replica_bytes = 0.0;
  sim::ExecutionStats stats;      // the batch's full engine counters
};

// Aggregates over one service run.
struct ServiceStats {
  std::size_t batches_served = 0;
  std::size_t rejected_batches = 0;  // admission backpressure drops
  double mean_queue_wait = 0.0;
  double mean_response_time = 0.0;
  double max_response_time = 0.0;
  double total_planning_seconds = 0.0;
  double total_makespan = 0.0;        // sum of per-batch makespans
  double completion_time = 0.0;       // service clock when the last batch drained
  double cross_batch_hit_bytes = 0.0;
  double remote_bytes = 0.0;
  double carried_bytes_final = 0.0;   // snapshot bytes after the last fold
  double evicted_bytes = 0.0;         // inter-batch eviction total
  // Speculation aggregates over all served batches (zero when disabled).
  std::size_t speculative_launches = 0;
  std::size_t speculative_wins = 0;
  double wasted_seconds = 0.0;        // cancelled duplicates' burnt time
};

struct ServiceResult {
  std::vector<BatchServiceMetrics> batches;
  ServiceStats stats;
};

class ServiceLoop {
 public:
  ServiceLoop(sched::Scheduler& scheduler, const sim::ClusterConfig& cluster,
              std::size_t num_files, ServiceOptions options = {});

  // Serves the arrival sequence to completion (arrivals must be sorted by
  // time). Typed errors: an invalid cluster, or a batch run failing
  // mid-service. Rejected batches are counted, not errors.
  Result<ServiceResult> run(std::vector<BatchArrival> arrivals);

 private:
  sched::Scheduler& scheduler_;
  sim::ClusterConfig cluster_;
  ServiceOptions options_;
  CrossBatchCatalog catalog_;
};

}  // namespace bsio::service
