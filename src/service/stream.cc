#include "service/stream.h"

#include <algorithm>
#include <memory>
#include <string>
#include <utility>

#include "util/logging.h"
#include "util/stats.h"
#include "util/timer.h"
#include "util/ws_runtime.h"

namespace bsio::service {

StreamServiceLoop::StreamServiceLoop(sched::Scheduler& scheduler,
                                     const sim::ClusterConfig& cluster,
                                     std::vector<wl::FileInfo> catalog,
                                     StreamOptions options)
    : scheduler_(scheduler),
      cluster_(cluster),
      catalog_(std::move(catalog)),
      options_(options) {}

Result<StreamResult> StreamServiceLoop::run(
    std::vector<BatchArrival> arrivals) {
  if (const Status v = cluster_.validate(); !v.ok()) return v.error();
  if (const Status v = WsRuntime::validate_env(); !v.ok()) return v.error();
  if (const Status v =
          options_.replication.validate(cluster_.num_compute_nodes);
      !v.ok())
    return v.error();
  for (std::size_t i = 1; i < arrivals.size(); ++i)
    if (arrivals[i].time < arrivals[i - 1].time)
      return Err("arrival sequence must be sorted by time");

  // The merged workload fixes the file catalogue up front; every arriving
  // batch must have been built over exactly that catalogue.
  double min_cap = cluster_.node_disk_capacity(0);
  for (std::size_t n = 1; n < cluster_.num_compute_nodes; ++n)
    min_cap = std::min(min_cap, cluster_.node_disk_capacity(n));
  for (const BatchArrival& a : arrivals) {
    if (a.index >= arrivals.size())
      return Err("arrival indices must be dense 0..N-1");
    const wl::Workload& b = a.batch;
    if (b.num_files() != catalog_.size())
      return Err("arrival " + std::to_string(a.index) + " batch has " +
                 std::to_string(b.num_files()) +
                 " files but the shared catalogue has " +
                 std::to_string(catalog_.size()));
    for (std::size_t f = 0; f < catalog_.size(); ++f)
      if (b.file(f).size_bytes != catalog_[f].size_bytes ||
          b.file(f).home_storage_node != catalog_[f].home_storage_node)
        return Err("arrival " + std::to_string(a.index) + " file " +
                   std::to_string(f) +
                   " disagrees with the shared catalogue");
    // Same Section 4.2 feasibility gate as the batch driver: a task's whole
    // file set must fit on the smallest compute node.
    for (const auto& t : b.tasks()) {
      double bytes = 0.0;
      for (wl::FileId f : t.files) bytes += b.file_size(f);
      if (bytes > min_cap)
        return Err("arrival " + std::to_string(a.index) + " task " +
                   std::to_string(t.id) + " needs " + std::to_string(bytes) +
                   " bytes of input but the smallest compute node disk "
                   "holds " +
                   std::to_string(min_cap) +
                   " (a task's file set must fit on one node, paper "
                   "Section 4.2)");
    }
  }

  scheduler_.reset_run_stats();
  if (const Status v = scheduler_.begin_batch(); !v.ok()) return v.error();

  StreamResult result;
  result.batches.resize(arrivals.size());
  std::vector<std::size_t> remaining(arrivals.size(), 0);
  for (const BatchArrival& a : arrivals) {
    StreamBatchMetrics& m = result.batches[a.index];
    m.index = a.index;
    m.tasks = a.batch.num_tasks();
    m.arrival_time = a.time;
    m.deadline_seconds = a.slo.deadline_seconds;
    m.weight = a.slo.weight;
  }
  result.stats.batches_arrived = arrivals.size();

  // The one engine of the whole run, over the growable merged workload.
  wl::Workload stream({}, catalog_);
  sim::EngineOptions engine_options;
  engine_options.eviction = scheduler_.eviction_policy();
  sim::ExecutionEngine engine(cluster_, stream, engine_options);
  std::unique_ptr<sched::IncrementalPlanner> planner =
      sched::make_incremental_planner(scheduler_);
  AdmissionQueue queue(cluster_, options_.admission);
  std::unique_ptr<replica::ReplicaManager> repair_mgr;
  if (options_.replication.enabled)
    repair_mgr =
        std::make_unique<replica::ReplicaManager>(stream,
                                                  options_.replication);
  const auto repair_round = [&](double now) {
    const replica::RepairReport rep = repair_mgr->run_repairs(engine, now);
    ++result.stats.repair_rounds;
    if (rep.flushes_scheduled + rep.replicas_scheduled > 0) {
      BSIO_LOG(kDebug) << "stream: repair round scheduled "
                       << rep.flushes_scheduled << " flushes and "
                       << rep.replicas_scheduled << " replicas ("
                       << rep.deferred << " deferred)";
    }
    return rep;
  };

  std::vector<std::size_t> batch_of_task;  // merged task id -> arrival index
  std::vector<wl::FileId> last_window_files;
  double clock = 0.0;
  double window_base = 0.0;  // planner-relative time base (origin)
  std::size_t next = 0;
  std::size_t live_batches = 0;

  while (next < arrivals.size() || !queue.empty() || !planner->drained()) {
    // Idle service, nothing queued or live: a quiescent gap. Repair runs
    // here first — the links are idle until the next arrival, so the
    // manager's background copies burn otherwise-dead time — then the
    // clock jumps to that arrival.
    if (planner->drained() && queue.empty() && next < arrivals.size() &&
        arrivals[next].time > clock) {
      if (repair_mgr != nullptr &&
          !repair_mgr->files_below_target(engine).empty())
        repair_round(clock);
      clock = arrivals[next].time;
    }

    // Offer everything that has arrived by now; bounced offers are
    // accounted per the overload policy.
    while (next < arrivals.size() && arrivals[next].time <= clock) {
      const std::size_t idx = arrivals[next].index;
      if (const Status s = queue.offer(std::move(arrivals[next])); !s.ok()) {
        BSIO_LOG(kDebug) << "stream: " << s.error().message;
        result.batches[idx].rejected = true;
        ++result.stats.rejected_batches;
      }
      ++next;
    }
    for (const QueuedBatch& victim : queue.take_shed()) {
      result.batches[victim.arrival.index].shed = true;
      ++result.stats.shed_batches;
    }

    // Admit queued batches into the live window: their tasks append to the
    // merged workload and become extend() targets this cycle.
    const bool was_drained = planner->drained();
    std::vector<wl::TaskId> fresh;
    while (!queue.empty() && (options_.max_live_batches == 0 ||
                              live_batches < options_.max_live_batches)) {
      QueuedBatch q = queue.pop(clock);
      const std::size_t idx = q.arrival.index;
      std::vector<wl::TaskInfo> tasks = q.arrival.batch.tasks();
      const wl::TaskId first = stream.append_tasks(std::move(tasks));
      if (const Status s = engine.admit_new_tasks(); !s.ok())
        return s.error();
      const std::size_t n = q.arrival.batch.num_tasks();
      for (std::size_t i = 0; i < n; ++i) {
        batch_of_task.push_back(idx);
        fresh.push_back(first + static_cast<wl::TaskId>(i));
      }
      remaining[idx] = n;
      result.batches[idx].admit_time = clock;
      if (q.degraded) {
        result.batches[idx].degraded = true;
        ++result.stats.degraded_batches;
      }
      ++live_batches;
    }
    if (was_drained && !fresh.empty()) {
      // A fresh window: the planner-relative clock rebases to now. (In a
      // quiescent run this stays 0 forever — the batch-path bit-identity
      // anchor.)
      window_base = clock;
      last_window_files.clear();
    }

    if (planner->drained() && fresh.empty()) continue;

    // Plan: repair what the last executed window dirtied, fold in the
    // fresh arrivals, freeze the next horizon window.
    sched::SchedulerContext ctx(stream, cluster_, engine);
    WallTimer timer;
    planner->set_origin(window_base);
    if (!last_window_files.empty())
      planner->repair(planner->dirty_from_files(stream, last_window_files),
                      ctx);
    planner->extend(std::move(fresh), ctx);
    sim::SubBatchPlan plan = planner->commit_horizon(options_.horizon);
    result.stats.total_planning_seconds += timer.elapsed_seconds();
    ++result.stats.planning_cycles;
    if (plan.empty()) {
      if (!planner->drained())
        return Err("incremental planner committed an empty window with "
                   "work outstanding");
      continue;
    }

    // Reservations of a task may start no earlier than its batch's
    // admission instant — but ONLY its own batch's: the window splits into
    // per-admission-epoch sub-plans (ascending, window order within each)
    // so a late admission never floors co-committed tasks of earlier
    // batches. A quiescent run has a single epoch at 0 — the batch-mode
    // behaviour, bit for bit.
    std::vector<double> epochs;
    for (wl::TaskId t : plan.tasks)
      epochs.push_back(result.batches[batch_of_task[t]].admit_time);
    std::sort(epochs.begin(), epochs.end());
    epochs.erase(std::unique(epochs.begin(), epochs.end()), epochs.end());
    bool first_epoch = true;
    for (double epoch : epochs) {
      sim::SubBatchPlan sub;
      sub.release_time = epoch;
      // Staging directives are keyed by (file, node) and consulted lazily;
      // prefetches fire once, with the window's first epoch.
      sub.staging = plan.staging;
      if (first_epoch) sub.prefetches = plan.prefetches;
      first_epoch = false;
      for (wl::TaskId t : plan.tasks)
        if (result.batches[batch_of_task[t]].admit_time == epoch) {
          sub.tasks.push_back(t);
          sub.assignment[t] = plan.assignment.at(t);
        }
      auto executed = engine.execute(sub);
      if (!executed.ok()) return executed.error();
    }
    ++result.stats.windows_committed;

    // The window's file footprint is the next cycle's dirty-set seed.
    {
      std::vector<char> touched(stream.num_files(), 0);
      last_window_files.clear();
      for (wl::TaskId t : plan.tasks)
        for (wl::FileId f : stream.task(t).files)
          if (!touched[f]) {
            touched[f] = 1;
            last_window_files.push_back(f);
          }
    }

    for (wl::TaskId t : plan.tasks) {
      if (!engine.task_executed(t)) continue;
      const std::size_t idx = batch_of_task[t];
      StreamBatchMetrics& m = result.batches[idx];
      m.completion_time = std::max(m.completion_time,
                                   engine.task_completion(t));
      if (--remaining[idx] == 0) {
        m.completed = true;
        m.response_time = m.completion_time - m.arrival_time;
        m.slo_met = m.response_time <= m.deadline_seconds;
        ++result.stats.batches_completed;
        if (m.slo_met) ++result.stats.slo_met;
        --live_batches;
      }
    }
    if (repair_mgr != nullptr) repair_round(engine.makespan());
    clock = std::max(clock, engine.makespan());
  }

  // Drain-time convergence: bounded extra rounds close deficits a budgeted
  // or space-blocked round left behind; what survives is a real deficit.
  if (repair_mgr != nullptr) {
    double floor = std::max(clock, engine.makespan());
    for (int round = 0; round < 8; ++round) {
      if (repair_mgr->files_below_target(engine).empty()) break;
      const replica::RepairReport rep = repair_round(floor);
      if (rep.flushes_scheduled + rep.replicas_scheduled == 0) break;
      floor = std::max(floor, rep.last_completion);
    }
    result.stats.replica_deficit =
        repair_mgr->files_below_target(engine).size();
  }

  std::vector<double> responses;
  responses.reserve(result.stats.batches_completed);
  for (const StreamBatchMetrics& m : result.batches)
    if (m.completed) {
      responses.push_back(m.response_time);
      result.stats.mean_response += m.response_time;
      result.stats.max_response =
          std::max(result.stats.max_response, m.response_time);
    }
  if (!responses.empty()) {
    result.stats.mean_response /= static_cast<double>(responses.size());
    result.stats.p50_response = percentile(responses, 50.0);
    result.stats.p99_response = percentile(responses, 99.0);
  }
  if (result.stats.batches_arrived > 0)
    result.stats.slo_attainment =
        static_cast<double>(result.stats.slo_met) /
        static_cast<double>(result.stats.batches_arrived);
  result.stats.tasks_executed =
      static_cast<std::size_t>(engine.totals().tasks_executed);
  result.stats.completion_time = clock;
  result.stats.exec = engine.totals();
  scheduler_.add_solver_stats(result.stats.exec);
  return result;
}

}  // namespace bsio::service
