#include "service/service.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "util/check.h"
#include "util/logging.h"

namespace bsio::service {

ServiceLoop::ServiceLoop(sched::Scheduler& scheduler,
                         const sim::ClusterConfig& cluster,
                         std::size_t num_files, ServiceOptions options)
    : scheduler_(scheduler),
      cluster_(cluster),
      options_(std::move(options)),
      catalog_(num_files, cluster, options_.cross_batch) {}

Result<ServiceResult> ServiceLoop::run(std::vector<BatchArrival> arrivals) {
  if (const Status v = cluster_.validate(); !v.ok()) return v.error();
  for (std::size_t i = 1; i < arrivals.size(); ++i)
    if (arrivals[i].time < arrivals[i - 1].time)
      return Err("arrival sequence must be sorted by time");

  AdmissionQueue queue(cluster_, options_.admission);
  ServiceResult result;
  double clock = 0.0;       // the executor's service clock
  std::size_t next = 0;     // first arrival not yet offered

  while (next < arrivals.size() || !queue.empty()) {
    // Idle executor, empty queue: jump to the next arrival.
    if (queue.empty() && arrivals[next].time > clock)
      clock = arrivals[next].time;
    // Admit everything that has arrived by now. Offers that outrun a
    // bounded queue are rejected (backpressure), counted, and dropped.
    while (next < arrivals.size() && arrivals[next].time <= clock) {
      if (const Status s = queue.offer(std::move(arrivals[next])); !s.ok()) {
        BSIO_LOG(kDebug) << "service: " << s.error().message;
        ++result.stats.rejected_batches;
      }
      ++next;
    }

    QueuedBatch q = queue.pop(clock);

    // The scheduler instance is reused across batches; clear its per-run
    // counters so begin_batch()'s stats-reuse guard passes and each batch
    // reports only its own solver work.
    scheduler_.reset_run_stats();

    const sim::InitialCacheState seed = catalog_.seed_for_next();
    sched::BatchRunOptions run_options;
    run_options.faults = options_.faults;
    run_options.speculation = options_.speculation;
    if (run_options.speculation.enabled) {
      // Bound the online path: a batch may duplicate at most
      // ceil(fraction × tasks), whatever the engine-level cap says.
      const double frac = std::max(0.0, options_.speculation_budget_fraction);
      const auto budget = static_cast<std::size_t>(std::ceil(
          frac * static_cast<double>(q.arrival.batch.num_tasks())));
      run_options.speculation.max_speculative_tasks =
          std::min(run_options.speculation.max_speculative_tasks, budget);
    }
    run_options.capture_final_cache = true;
    if (options_.warm_start && !seed.empty())
      run_options.initial_cache = &seed;

    const double start = std::max(clock, q.arrival.time);
    sched::BatchRunResult r =
        sched::run_batch(scheduler_, q.arrival.batch, cluster_, run_options);
    if (!r.ok())
      return Err("batch " + std::to_string(q.arrival.index) +
                 " failed in service: " + r.error);

    BatchServiceMetrics m;
    m.index = q.arrival.index;
    m.tasks = q.arrival.batch.num_tasks();
    m.arrival_time = q.arrival.time;
    m.start_time = start;
    m.queue_wait = start - q.arrival.time;
    m.planning_seconds = r.scheduling_seconds;
    m.makespan = r.batch_time;
    m.response_time = m.queue_wait + m.makespan;
    m.cross_batch_hit_bytes = r.stats.warm_hit_bytes;
    m.cache_hit_bytes = r.stats.cache_hit_bytes;
    m.remote_bytes = r.stats.remote_bytes;
    m.replica_bytes = r.stats.replica_bytes;
    m.stats = r.stats;

    clock = start + r.batch_time;
    catalog_.fold_batch(q.arrival.batch, r.final_cache, start);

    result.stats.mean_queue_wait += m.queue_wait;
    result.stats.mean_response_time += m.response_time;
    result.stats.max_response_time =
        std::max(result.stats.max_response_time, m.response_time);
    result.stats.total_planning_seconds += m.planning_seconds;
    result.stats.total_makespan += m.makespan;
    result.stats.cross_batch_hit_bytes += m.cross_batch_hit_bytes;
    result.stats.remote_bytes += m.remote_bytes;
    result.stats.speculative_launches += r.stats.speculative_launches;
    result.stats.speculative_wins += r.stats.speculative_wins;
    result.stats.wasted_seconds += r.stats.wasted_seconds;
    ++result.stats.batches_served;
    result.batches.push_back(std::move(m));
  }

  if (result.stats.batches_served > 0) {
    const double n = static_cast<double>(result.stats.batches_served);
    result.stats.mean_queue_wait /= n;
    result.stats.mean_response_time /= n;
  }
  result.stats.completion_time = clock;
  result.stats.carried_bytes_final = catalog_.carried_bytes();
  result.stats.evicted_bytes = catalog_.evicted_bytes();
  return result;
}

}  // namespace bsio::service
