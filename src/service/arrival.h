// Batch arrival process for the online service.
//
// Two deterministic sources feed the admission queue: a seeded Poisson
// process (exponential interarrival gaps at a configured rate) and a trace
// file of explicit arrival times. Both yield the same BatchArrival records,
// each carrying a ready-built Workload over the service's shared catalogue,
// so the service loop is agnostic of where batches come from.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "service/catalog.h"
#include "util/error.h"
#include "workload/types.h"

namespace bsio::service {

// Per-batch service-level objective: the response-time deadline (relative
// to arrival; infinity = best-effort) and the weight the overload policies
// value the batch at (shed order, attainment reporting).
struct SloClass {
  double deadline_seconds = std::numeric_limits<double>::infinity();
  double weight = 1.0;
};

struct ArrivalConfig {
  // Mean batch arrival rate, batches per simulated second (Poisson mode).
  double rate = 0.01;
  std::size_t num_batches = 8;
  std::uint64_t seed = 1;
  // Non-empty: read arrivals from this trace instead of sampling. Each
  // non-comment line is `<arrival_seconds> [num_tasks [deadline_seconds]]`,
  // times non-decreasing; '#' starts a comment. num_tasks (optional, must
  // be positive — a zero raises a typed error instead of generating an
  // empty batch) overrides ServiceBatchConfig::tasks_per_batch for that
  // batch; deadline_seconds (optional, positive) overrides the drawn SLO
  // class.
  std::string trace_path;
  // Non-empty: every batch draws one of these SLO classes, deterministic in
  // (seed, index) — swapping Poisson for trace arrivals never re-deals the
  // classes. Empty = every batch is best-effort.
  std::vector<SloClass> slo_classes;
};

struct BatchArrival {
  double time = 0.0;      // simulated arrival time, seconds
  std::size_t index = 0;  // 0-based arrival order
  SloClass slo;
  wl::Workload batch;
};

class BatchArrivalProcess {
 public:
  BatchArrivalProcess(std::vector<wl::FileInfo> catalog,
                      ServiceBatchConfig batch_cfg, ArrivalConfig cfg);

  // The full arrival sequence, sorted by time. Deterministic in the seed;
  // batch i's content depends only on (seed, i), not on the arrival times,
  // so Poisson and trace runs over the same seed see the same batches.
  // Errors are typed: unreadable or malformed trace files, non-monotone
  // times, a non-positive rate.
  Result<std::vector<BatchArrival>> generate() const;

 private:
  struct ArrivalRow {
    double time = 0.0;
    std::size_t tasks = 0;  // 0 = configured batch size
    double deadline = std::numeric_limits<double>::quiet_NaN();  // NaN = drawn
  };
  Result<std::vector<ArrivalRow>> arrival_times() const;

  std::vector<wl::FileInfo> catalog_;
  ServiceBatchConfig batch_cfg_;
  ArrivalConfig cfg_;
};

}  // namespace bsio::service
