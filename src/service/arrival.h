// Batch arrival process for the online service.
//
// Two deterministic sources feed the admission queue: a seeded Poisson
// process (exponential interarrival gaps at a configured rate) and a trace
// file of explicit arrival times. Both yield the same BatchArrival records,
// each carrying a ready-built Workload over the service's shared catalogue,
// so the service loop is agnostic of where batches come from.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "service/catalog.h"
#include "util/error.h"
#include "workload/types.h"

namespace bsio::service {

struct ArrivalConfig {
  // Mean batch arrival rate, batches per simulated second (Poisson mode).
  double rate = 0.01;
  std::size_t num_batches = 8;
  std::uint64_t seed = 1;
  // Non-empty: read arrivals from this trace instead of sampling. Each
  // non-comment line is `<arrival_seconds> [num_tasks]`, times
  // non-decreasing; '#' starts a comment. num_tasks (optional) overrides
  // ServiceBatchConfig::tasks_per_batch for that batch.
  std::string trace_path;
};

struct BatchArrival {
  double time = 0.0;      // simulated arrival time, seconds
  std::size_t index = 0;  // 0-based arrival order
  wl::Workload batch;
};

class BatchArrivalProcess {
 public:
  BatchArrivalProcess(std::vector<wl::FileInfo> catalog,
                      ServiceBatchConfig batch_cfg, ArrivalConfig cfg);

  // The full arrival sequence, sorted by time. Deterministic in the seed;
  // batch i's content depends only on (seed, i), not on the arrival times,
  // so Poisson and trace runs over the same seed see the same batches.
  // Errors are typed: unreadable or malformed trace files, non-monotone
  // times, a non-positive rate.
  Result<std::vector<BatchArrival>> generate() const;

 private:
  Result<std::vector<std::pair<double, std::size_t>>> arrival_times() const;

  std::vector<wl::FileInfo> catalog_;
  ServiceBatchConfig batch_cfg_;
  ArrivalConfig cfg_;
};

}  // namespace bsio::service
