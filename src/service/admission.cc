#include "service/admission.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "sim/state.h"
#include "sim/topology.h"
#include "util/check.h"

namespace bsio::service {

double estimate_batch_seconds(const wl::Workload& batch,
                              const sim::ClusterConfig& cluster) {
  const sim::Topology topo(cluster);
  // Cold, empty caches: capacity is irrelevant to the MCT arithmetic.
  const sim::ClusterState cold(cluster.num_compute_nodes, sim::kUnlimited);
  sched::PlannerState ps(batch, topo, cold);
  double total = 0.0;
  for (const auto& t : batch.tasks()) {
    double best = std::numeric_limits<double>::infinity();
    for (wl::NodeId n = 0; n < cluster.num_compute_nodes; ++n)
      best = std::min(best,
                      sched::estimate_completion_time(batch, topo, ps, t.id, n));
    total += best;
  }
  return total / static_cast<double>(cluster.num_compute_nodes);
}

AdmissionQueue::AdmissionQueue(const sim::ClusterConfig& cluster,
                               AdmissionOptions options)
    : cluster_(cluster), options_(options) {}

double AdmissionQueue::effective_due(const QueuedBatch& q) const {
  const double rel = std::isfinite(q.effective_slo.deadline_seconds)
                         ? std::min(q.effective_slo.deadline_seconds,
                                    options_.best_effort_deadline)
                         : options_.best_effort_deadline;
  return q.arrival.time + rel;
}

double AdmissionQueue::deadline_key(const QueuedBatch& q, double now) const {
  return effective_due(q) -
         options_.aging_weight * std::max(0.0, now - q.arrival.time);
}

Status AdmissionQueue::offer(BatchArrival arrival) {
  QueuedBatch q;
  q.effective_slo = arrival.slo;
  if (options_.policy == AdmissionPolicy::kShortestBatchFirst) {
    // Memoized at offer time, the only pricing this batch ever gets: pop()
    // reads the stored estimate instead of re-running the planner sweep on
    // every dequeue poll.
    q.estimated_seconds = estimate_batch_seconds(arrival.batch, cluster_);
    ++pricing_calls_;
  }
  q.arrival = std::move(arrival);

  const bool full = options_.max_queue_depth > 0 &&
                    queue_.size() >= options_.max_queue_depth;
  if (!full) {
    queue_.push_back(std::move(q));
    return OkStatus();
  }

  switch (options_.overload) {
    case OverloadPolicy::kReject:
      return Err("admission queue full (depth " +
                 std::to_string(options_.max_queue_depth) + "); batch " +
                 std::to_string(q.arrival.index) + " rejected");
    case OverloadPolicy::kShedLowestValue: {
      // Victim = lowest weight, then latest effective deadline, then latest
      // arrival, among the queue AND the offer.
      auto worse = [&](const QueuedBatch& a, const QueuedBatch& b) {
        if (a.effective_slo.weight != b.effective_slo.weight)
          return a.effective_slo.weight < b.effective_slo.weight;
        const double da = effective_due(a), db = effective_due(b);
        if (da != db) return da > db;
        return a.arrival.time > b.arrival.time;
      };
      const QueuedBatch* victim = &q;
      std::size_t victim_pos = queue_.size();  // sentinel: the offer
      for (std::size_t i = 0; i < queue_.size(); ++i)
        if (worse(queue_[i], *victim)) {
          victim = &queue_[i];
          victim_pos = i;
        }
      if (victim_pos == queue_.size())
        return Err("admission queue full (depth " +
                   std::to_string(options_.max_queue_depth) + "); batch " +
                   std::to_string(q.arrival.index) +
                   " is the lowest-value candidate and was shed");
      shed_.push_back(std::move(queue_[victim_pos]));
      queue_.erase(queue_.begin() +
                   static_cast<std::ptrdiff_t>(victim_pos));
      queue_.push_back(std::move(q));
      return OkStatus();
    }
    case OverloadPolicy::kDegrade:
      // Admit past the bound as best-effort: ordering deadline clamps to
      // the best-effort class, value drops to the floor. SLO attainment is
      // still judged against the original class by the caller.
      q.degraded = true;
      q.effective_slo.deadline_seconds =
          std::numeric_limits<double>::infinity();
      q.effective_slo.weight = 0.0;
      ++degraded_count_;
      queue_.push_back(std::move(q));
      return OkStatus();
  }
  return Err("unreachable overload policy");
}

QueuedBatch AdmissionQueue::pop(double now) {
  BSIO_CHECK_MSG(!queue_.empty(), "pop() on an empty admission queue");
  auto it = queue_.begin();
  if (options_.policy == AdmissionPolicy::kShortestBatchFirst) {
    for (auto cand = queue_.begin(); cand != queue_.end(); ++cand)
      if (cand->estimated_seconds < it->estimated_seconds) it = cand;
    // Ties keep arrival order: strict < never moves off the earliest.
  } else if (options_.policy == AdmissionPolicy::kDeadlineAware) {
    for (auto cand = queue_.begin(); cand != queue_.end(); ++cand)
      if (deadline_key(*cand, now) < deadline_key(*it, now)) it = cand;
    // Same tie rule: the earliest arrival among equal keys stays first.
  }
  QueuedBatch q = std::move(*it);
  queue_.erase(it);
  return q;
}

std::vector<QueuedBatch> AdmissionQueue::take_shed() {
  std::vector<QueuedBatch> out;
  out.swap(shed_);
  return out;
}

}  // namespace bsio::service
