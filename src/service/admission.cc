#include "service/admission.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "sim/state.h"
#include "sim/topology.h"
#include "util/check.h"

namespace bsio::service {

double estimate_batch_seconds(const wl::Workload& batch,
                              const sim::ClusterConfig& cluster) {
  const sim::Topology topo(cluster);
  // Cold, empty caches: capacity is irrelevant to the MCT arithmetic.
  const sim::ClusterState cold(cluster.num_compute_nodes, sim::kUnlimited);
  sched::PlannerState ps(batch, topo, cold);
  double total = 0.0;
  for (const auto& t : batch.tasks()) {
    double best = std::numeric_limits<double>::infinity();
    for (wl::NodeId n = 0; n < cluster.num_compute_nodes; ++n)
      best = std::min(best,
                      sched::estimate_completion_time(batch, topo, ps, t.id, n));
    total += best;
  }
  return total / static_cast<double>(cluster.num_compute_nodes);
}

AdmissionQueue::AdmissionQueue(const sim::ClusterConfig& cluster,
                               AdmissionOptions options)
    : cluster_(cluster), options_(options) {}

Status AdmissionQueue::offer(BatchArrival arrival) {
  if (options_.max_queue_depth > 0 &&
      queue_.size() >= options_.max_queue_depth)
    return Err("admission queue full (depth " +
               std::to_string(options_.max_queue_depth) + "); batch " +
               std::to_string(arrival.index) + " rejected");
  QueuedBatch q;
  q.estimated_seconds = estimate_batch_seconds(arrival.batch, cluster_);
  q.arrival = std::move(arrival);
  queue_.push_back(std::move(q));
  return OkStatus();
}

QueuedBatch AdmissionQueue::pop() {
  BSIO_CHECK_MSG(!queue_.empty(), "pop() on an empty admission queue");
  auto it = queue_.begin();
  if (options_.policy == AdmissionPolicy::kShortestBatchFirst) {
    for (auto cand = queue_.begin(); cand != queue_.end(); ++cand)
      if (cand->estimated_seconds < it->estimated_seconds) it = cand;
    // Ties keep arrival order: strict < never moves off the earliest.
  }
  QueuedBatch q = std::move(*it);
  queue_.erase(it);
  return q;
}

}  // namespace bsio::service
