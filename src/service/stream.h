// The streaming (rolling-horizon) service loop: batch arrivals without the
// batch barrier.
//
// ServiceLoop (service/service.h) runs one batch at a time to completion —
// an arrival waits for the whole batch ahead of it even when the executor
// has idle capacity. StreamServiceLoop instead keeps ONE execution engine
// alive across the run: admitted batches append their tasks to a growable
// merged workload over the shared catalogue, an IncrementalPlanner
// (sched/incremental.h) folds them into the live plan via extend()/repair(),
// and commit_horizon() releases execution windows whose reservations are
// floored at the admitting wall clock (SubBatchPlan::release_time). Batches
// therefore overlap: a late arrival's tasks can start on idle nodes while
// an earlier batch's tail still runs.
//
// Admission is SLO-aware: each BatchArrival carries an SloClass, the
// deadline-aware AdmissionQueue orders by effective deadline with priority
// aging, and overload either rejects, sheds the lowest-value queued batch,
// or degrades the newcomer to best-effort. SLO attainment counts shed and
// rejected batches as missed.
//
// Quiescence contract: with a single batch arriving at t = 0 and a
// drain-all horizon (window_seconds <= 0), the run is bit-identical to
// sched::run_batch over the same workload — pinned by
// tests/incremental_test.cc against the PR 4 topology goldens.
#pragma once

#include <cstddef>
#include <limits>
#include <vector>

#include "replica/replica.h"
#include "sched/incremental.h"
#include "sched/scheduler.h"
#include "service/admission.h"
#include "service/arrival.h"
#include "sim/cluster.h"
#include "sim/engine.h"
#include "util/error.h"
#include "workload/types.h"

namespace bsio::service {

struct StreamOptions {
  AdmissionOptions admission;
  sched::HorizonOptions horizon;
  // Maximum batches concurrently in the live window (admitted but not yet
  // fully executed); 0 = unbounded. Arrivals beyond the bound wait in the
  // admission queue.
  std::size_t max_live_batches = 0;
  // Replica lifecycle manager (src/replica): repair runs after every
  // committed window and in the quiescent gaps between admissions, on the
  // same engine timelines as foreground traffic. Off by default — the run
  // stays bit-identical to the replication-free stream. Validated up
  // front; an invalid config is a typed error from run().
  replica::ReplicaConfig replication;
};

// One batch's stream service record. Exactly one of {completed, shed,
// rejected} ends a batch's life; admit/completion/response are only
// meaningful when the batch was admitted (resp. completed).
struct StreamBatchMetrics {
  std::size_t index = 0;  // arrival index
  std::size_t tasks = 0;
  double arrival_time = 0.0;
  double admit_time = 0.0;       // clock when it left the queue
  double completion_time = 0.0;  // last task's completion
  double response_time = 0.0;    // completion - arrival
  double deadline_seconds = std::numeric_limits<double>::infinity();
  double weight = 1.0;
  bool rejected = false;  // bounced at offer (kReject backpressure)
  bool shed = false;      // evicted from the queue by kShedLowestValue
  bool degraded = false;  // admitted past the bound as best-effort
  bool completed = false;
  // Judged against the ORIGINAL SLO class even for degraded batches.
  bool slo_met = false;
};

struct StreamStats {
  std::size_t batches_arrived = 0;
  std::size_t batches_completed = 0;
  std::size_t rejected_batches = 0;
  std::size_t shed_batches = 0;
  std::size_t degraded_batches = 0;
  std::size_t tasks_executed = 0;
  // Response-time distribution over COMPLETED batches.
  double mean_response = 0.0;
  double p50_response = 0.0;
  double p99_response = 0.0;
  double max_response = 0.0;
  // SLO attainment over ALL arrivals: batches completing within their
  // original deadline divided by batches arrived — shed and rejected
  // batches count as missed.
  std::size_t slo_met = 0;
  double slo_attainment = 0.0;
  double total_planning_seconds = 0.0;  // wall clock in repair/extend/commit
  std::size_t planning_cycles = 0;      // repair+extend+commit rounds
  std::size_t windows_committed = 0;    // horizon windows executed
  double completion_time = 0.0;         // service clock at drain
  // Replica lifecycle (replication enabled only): repair rounds run, and
  // files still below their tier target at drain. Byte/second repair
  // totals live in `exec` (repair_bytes / repair_seconds).
  std::size_t repair_rounds = 0;
  std::size_t replica_deficit = 0;
  sim::ExecutionStats exec;             // engine totals + solver counters
};

struct StreamResult {
  std::vector<StreamBatchMetrics> batches;
  StreamStats stats;
};

class StreamServiceLoop {
 public:
  // `catalog` is the shared file catalogue every arriving batch was built
  // over (make_shared_catalog); arrivals whose batch catalogue disagrees
  // with it are a typed error, since the merged workload fixes files up
  // front and only grows tasks.
  StreamServiceLoop(sched::Scheduler& scheduler,
                    const sim::ClusterConfig& cluster,
                    std::vector<wl::FileInfo> catalog,
                    StreamOptions options = {});

  // Serves the arrival sequence to drain (arrivals must be sorted by time).
  // Typed errors: invalid cluster, malformed BSIO_THREADS, catalogue
  // mismatch, an infeasible task, or the engine rejecting a window.
  // Rejected and shed batches are counted, not errors.
  Result<StreamResult> run(std::vector<BatchArrival> arrivals);

 private:
  sched::Scheduler& scheduler_;
  sim::ClusterConfig cluster_;
  std::vector<wl::FileInfo> catalog_;
  StreamOptions options_;
};

}  // namespace bsio::service
