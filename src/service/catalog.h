// Shared file catalogue + cross-batch cache bookkeeping for the online
// service.
//
// The single-batch pipeline treats each Workload's file catalogue as
// private. An online service instead runs many batches against ONE
// catalogue: consecutive batches re-request the popular files, and the
// copies a batch leaves on the compute disks are the next batch's head
// start. This header provides
//  - make_shared_catalog / make_service_batch: a deterministic generator of
//    batches drawing Zipf-skewed file sets from one shared catalogue (so
//    cross-batch sharing exists by construction, mirroring the paper's
//    batch-shared I/O premise stretched across batches);
//  - CrossBatchCatalog: per-file popularity + global-clock recency folded
//    in after every batch, the inter-batch eviction pass (reusing the
//    Section 4.3 policies via ClusterState::select_victims), and the
//    rebased InitialCacheState handed to the next batch.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/cluster.h"
#include "sim/state.h"
#include "util/error.h"
#include "workload/types.h"

namespace bsio::service {

// --- Shared catalogue + batch generation. ---

struct SharedCatalogConfig {
  std::size_t num_files = 256;
  double mean_file_size_bytes = 50.0 * 1024 * 1024;
  // Relative size jitter in [0, 1); 0 = uniform sizes.
  double file_size_jitter = 0.25;
  std::size_t num_storage_nodes = 4;
  std::uint64_t seed = 1;
};

// The catalogue every batch of one service run shares: file ids are dense
// 0..num_files-1 and homes round-robin over the storage nodes, so a
// Workload built over it keeps file ids stable across batches (the
// precondition for carrying an InitialCacheState from one batch to the
// next).
std::vector<wl::FileInfo> make_shared_catalog(const SharedCatalogConfig& cfg);

struct ServiceBatchConfig {
  std::size_t tasks_per_batch = 32;
  std::size_t files_per_task = 4;
  // Zipf exponent of the per-task file draw over the shared catalogue
  // (0 = uniform). Skew > 0 concentrates requests on low file ids, which is
  // what makes consecutive batches share hot files.
  double zipf_s = 1.1;
  double compute_seconds_per_byte = 0.001 / (1024.0 * 1024.0);  // 0.001 s/MB
  // Fraction of tasks that WRITE one of their input files (read-modify-
  // write: the file joins wl::TaskInfo::outputs, so executing the task
  // bumps its version epoch and invalidates cached copies — the replica
  // manager's write-back workload). In [0, 1]. The write draws consume rng
  // state ONLY when > 0, keeping every pre-existing zero-write sequence
  // bit-identical.
  double write_fraction = 0.0;
};

// One batch over the shared catalogue: every task draws
// `files_per_task` DISTINCT files Zipf-skewed towards the hot (low-id) end,
// compute time proportional to input bytes. Deterministic in `seed`.
wl::Workload make_service_batch(const std::vector<wl::FileInfo>& catalog,
                                const ServiceBatchConfig& cfg,
                                std::uint64_t seed);

// --- Streamed catalogue (scale regime). ---
//
// make_shared_catalog materializes every file up front — the right contract
// for the online service, whose batches must share dense stable ids, but
// hopeless when the catalogue has millions of entries and a batch touches a
// fraction of them. The streamed variant defines a VIRTUAL catalogue whose
// per-file metadata derives from hashing the universe id, and materializes
// only the files a batch actually draws. The produced Workload uses dense
// batch-local file ids; `file_uids` (when non-null) receives the universe
// id behind each dense id, the key for correlating files across batches.
struct StreamedCatalogConfig {
  std::size_t universe_files = 1'000'000;
  double mean_file_size_bytes = 50.0 * 1024 * 1024;
  double file_size_jitter = 0.25;  // in [0, 1); hashed per universe id
  std::size_t num_storage_nodes = 4;
  std::uint64_t seed = 1;
};

// Metadata of universe file `uid`, derived by hashing — no table involved.
// FileInfo::id is left invalid (dense ids are batch-local).
wl::FileInfo streamed_catalog_file(const StreamedCatalogConfig& cfg,
                                   std::uint64_t uid);

// One batch drawn Zipf-skewed (Rng::zipf_stream) from the virtual
// catalogue; peak memory scales with the files drawn, never with
// universe_files. Deterministic in `seed`.
wl::Workload make_streamed_service_batch(
    const StreamedCatalogConfig& catalog, const ServiceBatchConfig& cfg,
    std::uint64_t seed, std::vector<std::uint64_t>* file_uids = nullptr);

// --- Cross-batch cache state. ---

struct CrossBatchOptions {
  // Inter-batch eviction policy over the carried snapshot (Section 4.3
  // machinery, applied between batches instead of on demand).
  sim::EvictionPolicy eviction = sim::EvictionPolicy::kPopularity;
  // Fraction of each node's final cache bytes allowed to carry over into
  // the next batch, in (0, 1]. 1 = keep everything that survived the
  // batch's own on-demand eviction.
  double carry_fraction = 1.0;
};

// Persists per-file popularity and recency across batches and produces the
// warm-start seed for the next one.
//
// Lifecycle per batch: the service runs the batch with
// BatchRunOptions::capture_final_cache, then calls fold_batch() with the
// batch, its final cache, and its placement on the global service clock.
// seed_for_next() returns the carried snapshot rebased to the next batch's
// time origin (see InitialCacheState::rebased).
class CrossBatchCatalog {
 public:
  CrossBatchCatalog(std::size_t num_files, const sim::ClusterConfig& cluster,
                    CrossBatchOptions options = {});

  // Folds one finished batch: accumulates per-file access counts, stamps
  // recency on the global clock (batch_start + in-batch last use), applies
  // the carry_fraction eviction pass per node, and stores the surviving
  // snapshot. `final_cache` is BatchRunResult::final_cache.
  void fold_batch(const wl::Workload& batch,
                  const sim::InitialCacheState& final_cache,
                  double batch_start);

  // The carried snapshot rebased for the next batch (avail 0, non-positive
  // recency stamps preserving global-clock order). Empty before any fold.
  sim::InitialCacheState seed_for_next() const;

  // Accumulated access count of `file` over every folded batch (the
  // popularity numerator of the inter-batch eviction pass).
  double popularity(wl::FileId file) const { return popularity_[file]; }

  // Compute nodes currently carrying `file` in the snapshot, ascending (the
  // service's replica map). O(1): served from a per-file holder index
  // rebuilt at each fold — historically a linear scan over every carried
  // entry, which both cost O(entries) per query and, worse, meant the
  // eviction pass left no record of WHICH node's copy it dropped. The index
  // plus dropped_last_fold() keep holder attribution exact across epochs,
  // so the replica manager's actual-RF accounting can tell a policy
  // eviction from a crash loss.
  const std::vector<wl::NodeId>& replica_nodes(wl::FileId file) const;
  // Surviving copy count of `file` in the carried snapshot.
  std::size_t carried_copies(wl::FileId file) const {
    return replica_nodes(file).size();
  }

  // The exact (node, file) entries the LAST fold's carry_fraction eviction
  // pass dropped, sorted by (node, file) with their global-clock stamps —
  // the attribution record of deliberately released replicas.
  const std::vector<sim::CacheSeedEntry>& dropped_last_fold() const {
    return dropped_last_fold_;
  }

  // Bytes carried in the current snapshot, and bytes the eviction passes
  // dropped over the whole run.
  double carried_bytes() const;
  double evicted_bytes() const { return evicted_bytes_; }

  std::size_t batches_folded() const { return batches_folded_; }

 private:
  void rebuild_holder_index();

  std::size_t num_files_;
  sim::ClusterConfig cluster_;
  CrossBatchOptions options_;
  std::vector<double> popularity_;     // per file, all batches
  std::vector<double> file_size_;      // per file, from the last fold
  sim::InitialCacheState carried_;     // global-clock stamps
  // Per-file holders of the carried snapshot (ascending), rebuilt by
  // fold_batch; kept in lockstep with carried_.
  std::vector<std::vector<wl::NodeId>> holder_index_;
  std::vector<sim::CacheSeedEntry> dropped_last_fold_;
  double evicted_bytes_ = 0.0;
  std::size_t batches_folded_ = 0;
};

}  // namespace bsio::service
