#include "service/catalog.h"

#include <algorithm>
#include <unordered_set>

#include "util/check.h"
#include "util/rng.h"

namespace bsio::service {

std::vector<wl::FileInfo> make_shared_catalog(const SharedCatalogConfig& cfg) {
  BSIO_CHECK(cfg.num_files > 0);
  BSIO_CHECK(cfg.num_storage_nodes > 0);
  BSIO_CHECK(cfg.mean_file_size_bytes > 0.0);
  BSIO_CHECK(cfg.file_size_jitter >= 0.0 && cfg.file_size_jitter < 1.0);
  Rng rng(cfg.seed);
  std::vector<wl::FileInfo> catalog(cfg.num_files);
  for (std::size_t i = 0; i < cfg.num_files; ++i) {
    wl::FileInfo& f = catalog[i];
    f.id = static_cast<wl::FileId>(i);
    const double jitter =
        cfg.file_size_jitter * (2.0 * rng.uniform_double() - 1.0);
    f.size_bytes = cfg.mean_file_size_bytes * (1.0 + jitter);
    f.home_storage_node = static_cast<wl::NodeId>(i % cfg.num_storage_nodes);
  }
  return catalog;
}

wl::Workload make_service_batch(const std::vector<wl::FileInfo>& catalog,
                                const ServiceBatchConfig& cfg,
                                std::uint64_t seed) {
  BSIO_CHECK(!catalog.empty());
  BSIO_CHECK(cfg.tasks_per_batch > 0);
  BSIO_CHECK(cfg.files_per_task > 0 && cfg.files_per_task <= catalog.size());
  BSIO_CHECK(cfg.write_fraction >= 0.0 && cfg.write_fraction <= 1.0);
  Rng rng(seed);
  std::vector<wl::TaskInfo> tasks(cfg.tasks_per_batch);
  for (std::size_t t = 0; t < cfg.tasks_per_batch; ++t) {
    wl::TaskInfo& task = tasks[t];
    task.id = static_cast<wl::TaskId>(t);
    // Distinct Zipf draws by rejection: the catalogue is much larger than a
    // task's file set, so repeats are rare even under heavy skew.
    std::unordered_set<wl::FileId> chosen;
    while (chosen.size() < cfg.files_per_task)
      chosen.insert(
          static_cast<wl::FileId>(rng.zipf(catalog.size(), cfg.zipf_s)));
    task.files.assign(chosen.begin(), chosen.end());
    std::sort(task.files.begin(), task.files.end());
    double bytes = 0.0;
    for (wl::FileId f : task.files) bytes += catalog[f].size_bytes;
    task.compute_seconds = bytes * cfg.compute_seconds_per_byte;
    // Write workload, gated: no rng state is consumed at write_fraction 0.
    if (cfg.write_fraction > 0.0 &&
        rng.uniform_double() < cfg.write_fraction) {
      const std::size_t k = std::min(
          task.files.size() - 1,
          static_cast<std::size_t>(rng.uniform_double() *
                                   static_cast<double>(task.files.size())));
      task.outputs.push_back(task.files[k]);
    }
  }
  return wl::Workload(std::move(tasks), catalog);
}

wl::FileInfo streamed_catalog_file(const StreamedCatalogConfig& cfg,
                                   std::uint64_t uid) {
  wl::FileInfo f;
  const std::uint64_t h = hash_mix(cfg.seed ^ hash_mix(uid + 1));
  const double u = static_cast<double>(h >> 11) * 0x1.0p-53;  // [0, 1)
  const double jitter = cfg.file_size_jitter > 0.0
                            ? 1.0 + cfg.file_size_jitter * (2.0 * u - 1.0)
                            : 1.0;
  f.size_bytes = cfg.mean_file_size_bytes * jitter;
  f.home_storage_node = static_cast<wl::NodeId>(
      uid % std::max<std::size_t>(1, cfg.num_storage_nodes));
  return f;
}

wl::Workload make_streamed_service_batch(
    const StreamedCatalogConfig& catalog, const ServiceBatchConfig& cfg,
    std::uint64_t seed, std::vector<std::uint64_t>* file_uids) {
  BSIO_CHECK(catalog.universe_files > 0);
  BSIO_CHECK(cfg.tasks_per_batch > 0);
  BSIO_CHECK(cfg.files_per_task > 0 &&
             cfg.files_per_task <= catalog.universe_files);
  BSIO_CHECK(catalog.file_size_jitter >= 0.0 &&
             catalog.file_size_jitter < 1.0);

  // Draw every task's universe-id set first; materialize afterwards.
  std::vector<std::vector<std::uint64_t>> task_uids(cfg.tasks_per_batch);
  Rng rng(seed);
  for (auto& uids : task_uids) {
    uids.reserve(cfg.files_per_task);
    while (uids.size() < cfg.files_per_task) {
      const std::uint64_t uid =
          rng.zipf_stream(catalog.universe_files, cfg.zipf_s);
      if (std::find(uids.begin(), uids.end(), uid) == uids.end())
        uids.push_back(uid);
    }
  }

  std::vector<std::uint64_t> distinct;
  distinct.reserve(cfg.tasks_per_batch * cfg.files_per_task);
  for (const auto& uids : task_uids)
    distinct.insert(distinct.end(), uids.begin(), uids.end());
  std::sort(distinct.begin(), distinct.end());
  distinct.erase(std::unique(distinct.begin(), distinct.end()),
                 distinct.end());

  std::vector<wl::FileInfo> files(distinct.size());
  for (std::size_t i = 0; i < distinct.size(); ++i) {
    files[i] = streamed_catalog_file(catalog, distinct[i]);
    files[i].id = static_cast<wl::FileId>(i);
  }

  std::vector<wl::TaskInfo> tasks(cfg.tasks_per_batch);
  for (std::size_t t = 0; t < cfg.tasks_per_batch; ++t) {
    wl::TaskInfo& task = tasks[t];
    task.id = static_cast<wl::TaskId>(t);
    task.files.reserve(cfg.files_per_task);
    for (std::uint64_t uid : task_uids[t]) {
      const auto it = std::lower_bound(distinct.begin(), distinct.end(), uid);
      task.files.push_back(static_cast<wl::FileId>(it - distinct.begin()));
    }
    std::sort(task.files.begin(), task.files.end());
    double bytes = 0.0;
    for (wl::FileId f : task.files) bytes += files[f].size_bytes;
    task.compute_seconds = bytes * cfg.compute_seconds_per_byte;
  }

  if (file_uids != nullptr) *file_uids = std::move(distinct);
  return wl::Workload(std::move(tasks), std::move(files));
}

CrossBatchCatalog::CrossBatchCatalog(std::size_t num_files,
                                     const sim::ClusterConfig& cluster,
                                     CrossBatchOptions options)
    : num_files_(num_files),
      cluster_(cluster),
      options_(options),
      popularity_(num_files, 0.0),
      file_size_(num_files, 0.0),
      holder_index_(num_files) {
  BSIO_CHECK_MSG(options_.carry_fraction > 0.0 &&
                     options_.carry_fraction <= 1.0,
                 "carry_fraction must be in (0, 1]");
}

void CrossBatchCatalog::fold_batch(const wl::Workload& batch,
                                   const sim::InitialCacheState& final_cache,
                                   double batch_start) {
  BSIO_CHECK_MSG(batch.num_files() == num_files_,
                 "service batches must share one file catalogue");
  dropped_last_fold_.clear();
  for (const auto& t : batch.tasks())
    for (wl::FileId f : t.files) popularity_[f] += 1.0;
  for (const auto& f : batch.files()) file_size_[f.id] = f.size_bytes;

  // Re-stamp the batch-local snapshot onto the global service clock. The
  // snapshot wholly replaces the previous carry: anything that did not
  // survive the batch's own on-demand eviction is gone, and a shifted stamp
  // preserves order within one snapshot.
  carried_ = final_cache;
  for (sim::CacheSeedEntry& e : carried_.entries) {
    e.avail_time += batch_start;
    e.last_use += batch_start;
  }

  // Inter-batch eviction: trim each node's carry to carry_fraction of its
  // surviving bytes, choosing victims with the same Section 4.3 machinery
  // the engine uses on demand (popularity numerator = all-time access
  // counts, LRU key = the global-clock stamps).
  if (options_.carry_fraction < 1.0 && !carried_.empty()) {
    sim::ClusterState scratch(cluster_.num_compute_nodes, sim::kUnlimited);
    std::vector<double> node_bytes(cluster_.num_compute_nodes, 0.0);
    for (const sim::CacheSeedEntry& e : carried_.entries) {
      scratch.restore(e.node, e.file, file_size_[e.file], e.avail_time,
                      e.last_use);
      node_bytes[e.node] += file_size_[e.file];
    }
    std::unordered_set<std::uint64_t> dropped;  // (node << 32) | file
    for (wl::NodeId n = 0; n < cluster_.num_compute_nodes; ++n) {
      const double need = node_bytes[n] * (1.0 - options_.carry_fraction);
      if (need <= 0.0) continue;
      const std::vector<wl::FileId> victims = scratch.select_victims(
          n, need, /*pinned=*/{}, options_.eviction,
          [&](wl::FileId f) { return popularity_[f]; },
          [&](wl::FileId f) { return file_size_[f]; });
      for (wl::FileId f : victims) {
        dropped.insert((static_cast<std::uint64_t>(n) << 32) | f);
        evicted_bytes_ += file_size_[f];
        scratch.remove(n, f, file_size_[f]);
      }
    }
    if (!dropped.empty()) {
      // Keep the exact attribution of every deliberately released copy
      // (which node, which stamps) before erasing: downstream actual-RF
      // accounting must distinguish these from crash losses.
      for (const sim::CacheSeedEntry& e : carried_.entries)
        if (dropped.count((static_cast<std::uint64_t>(e.node) << 32) |
                          e.file) > 0)
          dropped_last_fold_.push_back(e);
      std::erase_if(carried_.entries, [&](const sim::CacheSeedEntry& e) {
        return dropped.count((static_cast<std::uint64_t>(e.node) << 32) |
                             e.file) > 0;
      });
    }
  }
  rebuild_holder_index();
  ++batches_folded_;
}

void CrossBatchCatalog::rebuild_holder_index() {
  for (auto& nodes : holder_index_) nodes.clear();
  // carried_.entries are sorted by (node, file); appending per file yields
  // ascending node lists without a per-file sort.
  for (const sim::CacheSeedEntry& e : carried_.entries)
    holder_index_[e.file].push_back(e.node);
}

sim::InitialCacheState CrossBatchCatalog::seed_for_next() const {
  return carried_.rebased();
}

const std::vector<wl::NodeId>& CrossBatchCatalog::replica_nodes(
    wl::FileId file) const {
  BSIO_CHECK(file < holder_index_.size());
  return holder_index_[file];
}

double CrossBatchCatalog::carried_bytes() const {
  double bytes = 0.0;
  for (const sim::CacheSeedEntry& e : carried_.entries)
    bytes += file_size_[e.file];
  return bytes;
}

}  // namespace bsio::service
