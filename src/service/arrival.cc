#include "service/arrival.h"

#include <cmath>
#include <fstream>
#include <sstream>
#include <utility>

#include "util/rng.h"

namespace bsio::service {

BatchArrivalProcess::BatchArrivalProcess(std::vector<wl::FileInfo> catalog,
                                         ServiceBatchConfig batch_cfg,
                                         ArrivalConfig cfg)
    : catalog_(std::move(catalog)),
      batch_cfg_(batch_cfg),
      cfg_(std::move(cfg)) {}

// Parsed arrival rows; tasks 0 = use the configured batch size, deadline
// NaN = use the drawn SLO class.
Result<std::vector<BatchArrivalProcess::ArrivalRow>>
BatchArrivalProcess::arrival_times() const {
  std::vector<ArrivalRow> times;
  if (!cfg_.trace_path.empty()) {
    std::ifstream in(cfg_.trace_path);
    if (!in)
      return Err("arrival trace unreadable: " + cfg_.trace_path);
    std::string line;
    std::size_t line_no = 0;
    double prev = 0.0;
    while (std::getline(in, line)) {
      ++line_no;
      const auto hash = line.find('#');
      if (hash != std::string::npos) line.resize(hash);
      if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
      std::istringstream row(line);
      double t;
      if (!(row >> t))
        return Err("arrival trace " + cfg_.trace_path + " line " +
                   std::to_string(line_no) + ": expected a number");
      if (t < prev)
        return Err("arrival trace " + cfg_.trace_path + " line " +
                   std::to_string(line_no) +
                   ": arrival times must be non-decreasing");
      ArrivalRow rec;
      rec.time = t;
      long n = 0;
      if (row >> n) {
        // A zero gets its own typed error: an arrival carrying
        // num_tasks == 0 describes an empty batch, which the service
        // cannot plan or account for.
        if (n == 0)
          return Err("arrival trace " + cfg_.trace_path + " line " +
                     std::to_string(line_no) +
                     ": arrival carries num_tasks == 0 (empty batches are "
                     "not admissible)");
        if (n < 0)
          return Err("arrival trace " + cfg_.trace_path + " line " +
                     std::to_string(line_no) +
                     ": batch size must be positive");
        rec.tasks = static_cast<std::size_t>(n);
        double d = 0.0;
        if (row >> d) {
          if (!(d > 0.0))
            return Err("arrival trace " + cfg_.trace_path + " line " +
                       std::to_string(line_no) +
                       ": deadline_seconds must be positive");
          rec.deadline = d;
        }
      }
      times.push_back(rec);
      prev = t;
    }
    if (times.empty())
      return Err("arrival trace " + cfg_.trace_path + " contains no arrivals");
    return times;
  }

  if (!(cfg_.rate > 0.0))
    return Err("Poisson arrival rate must be positive");
  Rng rng(hash_mix(cfg_.seed ^ 0x6172726976616cULL));  // "arrival"
  double t = 0.0;
  for (std::size_t i = 0; i < cfg_.num_batches; ++i) {
    // Exponential interarrival gap; 1 - u keeps the argument in (0, 1].
    t += -std::log(1.0 - rng.uniform_double()) / cfg_.rate;
    times.push_back({t, 0, std::numeric_limits<double>::quiet_NaN()});
  }
  return times;
}

Result<std::vector<BatchArrival>> BatchArrivalProcess::generate() const {
  auto times = arrival_times();
  if (!times.ok()) return times.error();

  std::vector<BatchArrival> arrivals;
  arrivals.reserve(times.value().size());
  for (std::size_t i = 0; i < times.value().size(); ++i) {
    const ArrivalRow& row = times.value()[i];
    ServiceBatchConfig cfg = batch_cfg_;
    if (row.tasks > 0) cfg.tasks_per_batch = row.tasks;
    if (cfg.tasks_per_batch == 0)
      return Err("arrival " + std::to_string(i) +
                 " carries num_tasks == 0 (empty batches are not admissible)");
    BatchArrival a;
    a.time = row.time;
    a.index = i;
    // SLO class draw is deterministic in (seed, index), like the batch
    // content: the arrival source never re-deals the classes.
    if (!cfg_.slo_classes.empty())
      a.slo = cfg_.slo_classes[hash_mix(cfg_.seed ^
                                        (0x534c4fULL ^
                                         (i * 0x9e3779b97f4a7c15ULL))) %
                              cfg_.slo_classes.size()];
    if (!std::isnan(row.deadline)) a.slo.deadline_seconds = row.deadline;
    // Content seed depends on (seed, index) only: swapping the arrival
    // source (Poisson vs trace) changes WHEN batches arrive, never WHAT
    // they contain.
    a.batch = make_service_batch(catalog_, cfg, hash_mix(cfg_.seed ^ i));
    arrivals.push_back(std::move(a));
  }
  return arrivals;
}

}  // namespace bsio::service
