#include "service/arrival.h"

#include <cmath>
#include <fstream>
#include <sstream>
#include <utility>

#include "util/rng.h"

namespace bsio::service {

BatchArrivalProcess::BatchArrivalProcess(std::vector<wl::FileInfo> catalog,
                                         ServiceBatchConfig batch_cfg,
                                         ArrivalConfig cfg)
    : catalog_(std::move(catalog)),
      batch_cfg_(batch_cfg),
      cfg_(std::move(cfg)) {}

// (time, tasks_override) pairs; override 0 = use the configured batch size.
Result<std::vector<std::pair<double, std::size_t>>>
BatchArrivalProcess::arrival_times() const {
  std::vector<std::pair<double, std::size_t>> times;
  if (!cfg_.trace_path.empty()) {
    std::ifstream in(cfg_.trace_path);
    if (!in)
      return Err("arrival trace unreadable: " + cfg_.trace_path);
    std::string line;
    std::size_t line_no = 0;
    double prev = 0.0;
    while (std::getline(in, line)) {
      ++line_no;
      const auto hash = line.find('#');
      if (hash != std::string::npos) line.resize(hash);
      if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
      std::istringstream row(line);
      double t;
      if (!(row >> t))
        return Err("arrival trace " + cfg_.trace_path + " line " +
                   std::to_string(line_no) + ": expected a number");
      if (t < prev)
        return Err("arrival trace " + cfg_.trace_path + " line " +
                   std::to_string(line_no) +
                   ": arrival times must be non-decreasing");
      std::size_t tasks = 0;
      long n = 0;
      if (row >> n) {
        if (n <= 0)
          return Err("arrival trace " + cfg_.trace_path + " line " +
                     std::to_string(line_no) +
                     ": batch size must be positive");
        tasks = static_cast<std::size_t>(n);
      }
      times.emplace_back(t, tasks);
      prev = t;
    }
    if (times.empty())
      return Err("arrival trace " + cfg_.trace_path + " contains no arrivals");
    return times;
  }

  if (!(cfg_.rate > 0.0))
    return Err("Poisson arrival rate must be positive");
  Rng rng(hash_mix(cfg_.seed ^ 0x6172726976616cULL));  // "arrival"
  double t = 0.0;
  for (std::size_t i = 0; i < cfg_.num_batches; ++i) {
    // Exponential interarrival gap; 1 - u keeps the argument in (0, 1].
    t += -std::log(1.0 - rng.uniform_double()) / cfg_.rate;
    times.emplace_back(t, 0);
  }
  return times;
}

Result<std::vector<BatchArrival>> BatchArrivalProcess::generate() const {
  auto times = arrival_times();
  if (!times.ok()) return times.error();

  std::vector<BatchArrival> arrivals;
  arrivals.reserve(times.value().size());
  for (std::size_t i = 0; i < times.value().size(); ++i) {
    const auto& [t, tasks_override] = times.value()[i];
    ServiceBatchConfig cfg = batch_cfg_;
    if (tasks_override > 0) cfg.tasks_per_batch = tasks_override;
    BatchArrival a;
    a.time = t;
    a.index = i;
    // Content seed depends on (seed, index) only: swapping the arrival
    // source (Poisson vs trace) changes WHEN batches arrive, never WHAT
    // they contain.
    a.batch = make_service_batch(catalog_, cfg, hash_mix(cfg_.seed ^ i));
    arrivals.push_back(std::move(a));
  }
  return arrivals;
}

}  // namespace bsio::service
