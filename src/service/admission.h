// Admission queue between the arrival process and the service loop.
//
// Arrived batches wait here until the (single) executor frees up. Two
// dequeue disciplines: FIFO, and shortest-estimated-batch-first (SJF on the
// planner-side completion estimate, a classic mean-response-time lever).
// A bounded queue applies backpressure: offers beyond max_queue_depth are
// rejected with a typed error and counted by the caller.
#pragma once

#include <cstddef>
#include <deque>

#include "sched/cost_model.h"
#include "service/arrival.h"
#include "sim/cluster.h"
#include "util/error.h"

namespace bsio::service {

enum class AdmissionPolicy {
  kFifo,
  kShortestBatchFirst,  // min estimate_batch_seconds, arrival order on ties
};

struct AdmissionOptions {
  AdmissionPolicy policy = AdmissionPolicy::kFifo;
  // Maximum batches waiting (0 = unbounded). Offers to a full queue fail.
  std::size_t max_queue_depth = 0;
};

struct QueuedBatch {
  BatchArrival arrival;
  double estimated_seconds = 0.0;  // cold-cache planner estimate
};

// The planner-side estimate SJF orders by: sum over tasks of the best
// cold-cache MCT over all compute nodes, divided by the node count — an
// idealised perfectly-parallel lower bound. Cheap (one PlannerState, no
// engine), deterministic, and monotone in batch size, which is all the
// dequeue order needs.
double estimate_batch_seconds(const wl::Workload& batch,
                              const sim::ClusterConfig& cluster);

class AdmissionQueue {
 public:
  AdmissionQueue(const sim::ClusterConfig& cluster, AdmissionOptions options);

  // Enqueues an arrived batch; typed error when the bounded queue is full
  // (the batch is dropped — the service counts the rejection).
  Status offer(BatchArrival arrival);

  // Dequeues per policy. Requires !empty().
  QueuedBatch pop();

  bool empty() const { return queue_.empty(); }
  std::size_t size() const { return queue_.size(); }

 private:
  sim::ClusterConfig cluster_;
  AdmissionOptions options_;
  std::deque<QueuedBatch> queue_;
};

}  // namespace bsio::service
