// Admission queue between the arrival process and the service loop.
//
// Arrived batches wait here until the executor frees up. Three dequeue
// disciplines: FIFO, shortest-estimated-batch-first (SJF on the planner-side
// completion estimate, a classic mean-response-time lever), and
// deadline-aware (earliest effective deadline first with priority aging, the
// streaming service's SLO ordering). A bounded queue applies backpressure;
// what happens to offers beyond max_queue_depth is the overload policy's
// choice: reject the newcomer (historical behaviour), shed the lowest-value
// queued batch to make room, or degrade the newcomer to best-effort and
// admit it past the bound.
#pragma once

#include <cstddef>
#include <deque>
#include <vector>

#include "sched/cost_model.h"
#include "service/arrival.h"
#include "sim/cluster.h"
#include "util/error.h"

namespace bsio::service {

enum class AdmissionPolicy {
  kFifo,
  kShortestBatchFirst,  // min estimate_batch_seconds, arrival order on ties
  // Earliest effective deadline first: key = due - aging * wait, where due
  // clamps a best-effort (infinite-deadline) batch to arrival +
  // best_effort_deadline so deadline-less traffic cannot starve. Aging
  // (aging_weight seconds of key credit per waiting second) pulls old
  // batches forward across SLO classes.
  kDeadlineAware,
};

enum class OverloadPolicy {
  kReject,  // bounce the offered batch (historical backpressure)
  // Evict the lowest-value batch — smallest SLO weight, then latest
  // effective deadline, then latest arrival — among the queued batches and
  // the offer; the survivor set keeps the bound. Shed batches surface via
  // take_shed() so the service can count their SLOs as missed.
  kShedLowestValue,
  // Admit past the bound, demoting the offer to best-effort (its ordering
  // deadline clamps to best_effort_deadline, weight drops to the floor);
  // the batch still reports against its original SLO.
  kDegrade,
};

struct AdmissionOptions {
  AdmissionPolicy policy = AdmissionPolicy::kFifo;
  // Maximum batches waiting (0 = unbounded). Offers beyond the bound go
  // through the overload policy.
  std::size_t max_queue_depth = 0;
  OverloadPolicy overload = OverloadPolicy::kReject;
  // kDeadlineAware: key credit per waiting second (0 = pure EDF).
  double aging_weight = 0.0;
  // Effective relative deadline assigned to best-effort batches for
  // ordering and shed-value purposes.
  double best_effort_deadline = 1e9;
};

struct QueuedBatch {
  BatchArrival arrival;
  double estimated_seconds = 0.0;  // cold-cache planner estimate (SJF only)
  // Effective SLO class used for ordering / shedding — the arrival's own
  // class unless the overload policy degraded it.
  SloClass effective_slo;
  bool degraded = false;
};

// The planner-side estimate SJF orders by: sum over tasks of the best
// cold-cache MCT over all compute nodes, divided by the node count — an
// idealised perfectly-parallel lower bound. Cheap (one PlannerState, no
// engine), deterministic, and monotone in batch size, which is all the
// dequeue order needs.
double estimate_batch_seconds(const wl::Workload& batch,
                              const sim::ClusterConfig& cluster);

class AdmissionQueue {
 public:
  AdmissionQueue(const sim::ClusterConfig& cluster, AdmissionOptions options);

  // Enqueues an arrived batch. Under SJF the completion estimate is priced
  // ONCE here and memoized on the entry — dequeues never re-price (see
  // pricing_calls()); the other policies skip pricing entirely. A typed
  // error means the batch was NOT admitted (bounded queue + kReject, or
  // kShedLowestValue choosing the offer itself as the victim).
  Status offer(BatchArrival arrival);

  // Dequeues per policy. `now` is the service clock, consumed only by the
  // deadline-aware aging term. Requires !empty().
  QueuedBatch pop(double now = 0.0);

  // Batches evicted by kShedLowestValue since the last call. The caller
  // owns their SLO accounting.
  std::vector<QueuedBatch> take_shed();

  bool empty() const { return queue_.empty(); }
  std::size_t size() const { return queue_.size(); }

  // Times estimate_batch_seconds ran — the memoization contract: exactly
  // one per admitted batch under SJF, zero under FIFO / deadline-aware,
  // never incremented by pop().
  std::size_t pricing_calls() const { return pricing_calls_; }
  std::size_t degraded_count() const { return degraded_count_; }

 private:
  // Ordering key of a queued batch at service time `now` (smaller = first).
  double deadline_key(const QueuedBatch& q, double now) const;
  double effective_due(const QueuedBatch& q) const;

  sim::ClusterConfig cluster_;
  AdmissionOptions options_;
  std::deque<QueuedBatch> queue_;
  std::vector<QueuedBatch> shed_;
  std::size_t pricing_calls_ = 0;
  std::size_t degraded_count_ = 0;
};

}  // namespace bsio::service
