// Execution engine: realises a sub-batch plan under the paper's Section 6
// runtime rules and reports the simulated batch execution time.
//
// Model summary (see DESIGN.md for the full argument):
//  - every storage node port, every shared link (the optional global
//    uplink and any rack uplinks, per sim/topology.h), and every compute
//    node (its port and CPU are one serialized resource, Eq. 12) is a
//    Timeline of reservations;
//  - tasks assigned to a node run one at a time; the engine picks, per the
//    paper, the next task of each group by earliest completion time,
//    estimating ECT cheaply for candidate ranking and committing the chosen
//    task's file transfers exactly (greedy minimum-TCT-first, tentative
//    Gantt reservations);
//  - a transfer reserves both endpoint timelines (single-port model) plus
//    every shared link on its resolved TransferPath;
//  - destination-side reservations are append-only (at or after the node's
//    horizon), which makes on-demand eviction temporally safe: every file
//    resident on a node stopped being referenced before the node's horizon;
//  - disk-space shortfalls at staging time trigger the configured eviction
//    policy; files needed again later are re-staged (counted as evictions
//    and re-transfers, the effect driving the paper's Fig 5b);
//  - an optional FaultModel (sim/faults.h) injects transient transfer
//    failures (retried with exponential backoff, every attempt and backoff
//    charged on the timelines), compute-node fail-stop crashes (cache lost,
//    unfinished tasks orphaned for re-scheduling) and storage outage
//    windows (pre-reserved on the storage port, degrading staging to
//    replica-only sourcing until the window ends);
//  - an optional SpeculationConfig arms a straggler detector: a task whose
//    assigned node's ECT estimate lags the best cached-input alternative
//    past the configured thresholds runs as two recorded attempts,
//    first-finish-wins — the loser's not-yet-elapsed Timeline reservations
//    and disk holds are rolled back and its burnt time is charged as
//    wasted work (DESIGN.md §10).
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "sim/cluster.h"
#include "sim/faults.h"
#include "sim/plan.h"
#include "sim/state.h"
#include "sim/timeline.h"
#include "sim/topology.h"
#include "util/check.h"
#include "util/error.h"
#include "workload/types.h"

namespace bsio::sim {

struct EngineOptions {
  EvictionPolicy eviction = EvictionPolicy::kPopularity;
  // Record a TraceEvent per transfer / execution block (off by default;
  // costs one vector push per event).
  bool trace = false;
  // Fault injection (see sim/faults.h). The default injects nothing and
  // leaves every simulation bit-identical to the fault-free engine.
  FaultConfig faults;
  // Speculative task replication (see sim/faults.h and DESIGN.md §10).
  // Disabled by default; when disabled the engine is bit-identical to the
  // non-speculative engine.
  SpeculationConfig speculation;
};

// One row of the execution trace: a remote transfer, a replication, a
// failed transfer attempt, or a task's local-read + compute block, with its
// Gantt placement. An exec block cut short by a node crash is recorded with
// end = crash time. kSpeculativeLaunch marks a duplicate attempt being
// opened (src = primary node, dst = backup node, start = end = the backup's
// horizon at launch); kSpeculativeCancel marks the losing attempt being cut
// (src = winning node, dst = losing node, start = cancellation instant,
// end = the loser's would-have-been completion). kReplicaCreate is a
// background repair copy placed by the replica lifecycle manager (src =
// source node, dst = destination — a storage node id for home flushes);
// kReplicaInvalidate marks a cached copy dropped because a task wrote the
// file (src = writer node, dst = node losing the stale copy, start = end =
// the write's completion instant).
struct TraceEvent {
  enum class Kind {
    kRemoteTransfer,
    kReplication,
    kExec,
    kFailedTransfer,
    kSpeculativeLaunch,
    kSpeculativeCancel,
    kReplicaCreate,
    kReplicaInvalidate
  };
  Kind kind = Kind::kExec;
  wl::TaskId task = wl::kInvalidTask;  // kExec, or the task whose commit
                                       // triggered the transfer
  wl::FileId file = wl::kInvalidFile;  // transfers only
  wl::NodeId src = wl::kInvalidNode;   // storage node (remote) or compute
                                       // node (replication)
  wl::NodeId dst = wl::kInvalidNode;   // compute node
  double start = 0.0;
  double end = 0.0;
};

// Statistics for one execute() call (per sub-batch) and accumulated totals.
//
// Event and byte counters are 64-bit: a 1M-file scale run crosses 2^32
// transfer events across accumulated batches, so the counters are fixed
//-width uint64_t and accumulate() saturates instead of wrapping.
struct ExecutionStats {
  std::uint64_t tasks_executed = 0;
  std::uint64_t remote_transfers = 0;
  std::uint64_t replications = 0;
  std::uint64_t evictions = 0;
  std::uint64_t restages = 0;  // stages of a file previously evicted
  std::uint64_t cache_hits = 0;  // needed file already on the node
  double remote_bytes = 0.0;
  double replica_bytes = 0.0;
  // Bytes served straight from a node's cache (one count per (task, file)
  // request that needed no transfer), and the subset of those attributable
  // to files carried in by seed_cache() — the cross-batch reuse the online
  // service reports per batch.
  double cache_hit_bytes = 0.0;
  double warm_hit_bytes = 0.0;

  // Failure / recovery counters (all zero with faults disabled).
  std::uint64_t transfer_retries = 0;   // failed transfer attempts
  std::uint64_t task_reexecutions = 0;  // tasks killed by a crash, to re-run
  std::uint64_t node_crashes = 0;       // compute-node crashes applied
  double lost_replica_bytes = 0.0;    // cache bytes dropped by crashes
  // Simulated seconds lost to recovery: failed-attempt windows, retry
  // backoffs, and the partial execution of crash-killed tasks.
  double recovery_seconds = 0.0;

  // Speculation counters (all zero with speculation disabled).
  std::uint64_t speculative_launches = 0;  // duplicate attempts opened
  std::uint64_t speculative_wins = 0;      // duplicates beating the primary
  std::uint64_t speculative_cancels = 0;   // losing attempts cancelled
  // Wasted work charged to cancelled attempts: compute-timeline seconds the
  // losing node spent before the first-finish-wins cut, and the pro-rated
  // bytes of its in-flight transfers at that instant.
  double wasted_seconds = 0.0;
  double wasted_bytes = 0.0;

  // Replica-lifecycle counters (all zero for output-free workloads with no
  // replica::ReplicaManager attached). replicas_created / home_flushes /
  // repair_* count only background traffic placed through stage_replica()
  // and flush_to_home() — foreground demand replication stays in
  // replications / replica_bytes, so the two budgets are separable.
  std::uint64_t replicas_created = 0;      // background copies placed
  std::uint64_t replicas_invalidated = 0;  // stale copies dropped by writes
  std::uint64_t home_flushes = 0;          // dirty versions written back home
  // Reads forced to serve a stale home copy because a write's only current
  // version vanished (writer crash before a flush): a durability loss.
  std::uint64_t lost_versions = 0;
  double repair_bytes = 0.0;
  double repair_seconds = 0.0;

  // Solver observability (filled by the batch driver for IP-backed
  // schedulers; zero for the heuristics). Mirrors lp::SolverStats plus the
  // branch-and-bound node count, so BENCH rows can report kernel behaviour.
  std::int64_t lp_factorizations = 0;
  std::int64_t lp_factor_fill_nnz = 0;  // peak nnz(L)+nnz(U) over all solves
  std::int64_t lp_pivots = 0;
  std::int64_t lp_bound_flips = 0;
  std::int64_t lp_degenerate_pivots = 0;
  std::int64_t mip_nodes = 0;

  // Saturating: counters clamp at their maximum instead of wrapping.
  void accumulate(const ExecutionStats& o);

  // Returns every counter to zero. Callers that reuse one ExecutionStats
  // across batch runs (the online service's per-batch reports) must reset
  // between runs or the per-run numbers silently aggregate — see the
  // scheduler-side guard in sched::Scheduler::begin_batch().
  void reset() { *this = ExecutionStats{}; }
};

class ExecutionEngine {
 public:
  ExecutionEngine(const ClusterConfig& cluster, const wl::Workload& workload,
                  EngineOptions options = {});

  // Warm start: pre-populates the disk caches from a snapshot carried over
  // from a previous batch run (the online service's cross-batch reuse).
  // Must be called before the first execute(); entries must name known
  // files and alive compute nodes, fit each node's capacity, and not repeat
  // a (node, file) pair. Availability and last-use stamps are applied
  // verbatim, so planners and the LRU eviction policy see exactly the
  // source run's cache. On error nothing is seeded.
  Status seed_cache(const InitialCacheState& seed);

  // Executes one sub-batch plan on top of the current cluster state; returns
  // the stats of this call. A malformed plan (unknown task/node ids, a task
  // already executed, a missing assignment, work placed on a crashed node, a
  // negative release_time) yields a recoverable error before any state
  // mutates. Tasks killed by an injected node crash are NOT executed — they
  // surface via take_orphaned() for re-scheduling. The plan's release_time
  // floors every new reservation (streaming horizon windows); 0 keeps the
  // historical batch behaviour bit for bit.
  Result<ExecutionStats> execute(const SubBatchPlan& plan);

  // Admits tasks appended to the workload since construction (or since the
  // last call) — the streaming service's growable merged workload. The file
  // catalogue must not have changed size: the stream contract fixes files up
  // front and only grows tasks. Newly admitted tasks join the pending-
  // request popularity counters and become valid plan targets.
  Status admit_new_tasks();

  // Batch execution time so far: the latest completion over all executed
  // tasks.
  double makespan() const { return makespan_; }

  const ExecutionStats& totals() const { return totals_; }
  const ClusterState& state() const { return state_; }
  ClusterState& state() { return state_; }

  // The resolved transfer-cost model this engine simulates under. Planners
  // price against the same topology (see SchedulerContext).
  const Topology& topology() const { return topo_; }

  // Remaining request count for a file (popularity numerator, Eq. 22);
  // decremented as tasks execute.
  double pending_requests(wl::FileId f) const { return pending_requests_[f]; }

  // Per-compute-node busy time (utilisation diagnostics).
  std::vector<double> compute_busy_times() const;

  // Completion instants of every task executed so far (unsorted; one entry
  // per executed task). Drivers aggregate these into tail percentiles.
  std::vector<double> completed_task_times() const;

  // Per-task execution state, for the streaming service's per-batch
  // response-time bookkeeping. task_completion requires task_executed.
  bool task_executed(wl::TaskId t) const { return executed_[t]; }
  double task_completion(wl::TaskId t) const {
    BSIO_DCHECK(executed_[t]);
    return completion_time_[t];
  }

  // --- Failure recovery surface. ---
  const FaultModel& faults() const { return faults_; }
  bool node_alive(wl::NodeId node) const { return alive_[node] != 0; }
  std::size_t alive_count() const;
  // Per-compute-node liveness (1 = alive), for scheduler consumption.
  const std::vector<char>& alive_mask() const { return alive_; }
  // Tasks orphaned by node crashes since the last call (killed mid-run or
  // never started on a dead node); the caller owns re-scheduling them.
  std::vector<wl::TaskId> take_orphaned();

  // --- Replica lifecycle surface (driven by replica::ReplicaManager). ---
  //
  // Version epochs: each write to a file bumps its epoch and eagerly drops
  // every cached copy on other nodes, so ClusterState::has() always implies
  // "holds the CURRENT version". The home storage copy cannot be dropped —
  // it goes stale (home_valid() false) until flush_to_home() re-syncs it.
  std::uint32_t file_epoch(wl::FileId f) const { return epoch_[f]; }
  bool home_valid(wl::FileId f) const { return home_valid_[f] != 0; }

  // Schedules one background repair copy of `file` onto alive compute node
  // `dst`, sourced from the best current holder (or the home storage node
  // when its copy is valid), starting no earlier than `after`. The transfer
  // reserves the same port/link Timelines as foreground traffic, with its
  // duration floored by `bandwidth_cap` bytes/s (<= 0 = path bandwidth
  // only) so repair competes honestly without monopolising links. Repair
  // never evicts: a destination without free space is a typed error, as are
  // a dead/duplicate destination and the absence of any valid source.
  // Charges repair counters on totals() and leaves makespan() untouched.
  // Returns the copy's completion instant.
  Result<double> stage_replica(wl::FileId file, wl::NodeId dst, double after,
                               double bandwidth_cap);

  // Writes the current (dirty) version of `file` back to its home storage
  // node from the best alive holder, reserving source port, path links and
  // the home storage port (the remote path priced in reverse — link
  // bandwidths are symmetric in the topology model). On success the home
  // copy is valid again. Errors when the home is already valid or no alive
  // node holds the current version (the version is lost — reads fall back
  // to the stale home and count lost_versions).
  Result<double> flush_to_home(wl::FileId file, double after,
                               double bandwidth_cap);

  // Execution trace (empty unless EngineOptions::trace was set).
  const std::vector<TraceEvent>& trace() const { return trace_; }

  const Timeline& storage_timeline(wl::NodeId s) const {
    return storage_tl_[s];
  }
  const Timeline& compute_timeline(wl::NodeId c) const {
    return compute_tl_[c];
  }

 private:
  struct TransferChoice {
    bool remote = true;
    wl::NodeId src = wl::kInvalidNode;  // storage node or compute node
    double start = 0.0;
    double duration = 0.0;
    TransferPath path;  // shared links the transfer reserves
    double completion() const { return start + duration; }
  };

  // Transactional log of one task attempt, kept only while speculation
  // duplicates a task: every Timeline reservation, every staged file, and
  // the attempt's private stats delta, so a losing attempt can be rolled
  // back at the first-finish-wins instant (DESIGN.md §10).
  struct AttemptRecord {
    struct Staged {
      wl::FileId file = wl::kInvalidFile;
      double size = 0.0;
      double start = 0.0;  // transfer start
      double avail = 0.0;  // transfer completion (file usable from here)
      bool remote = true;
      bool restaged = false;  // counted as a restage when committed
    };
    wl::NodeId node = wl::kInvalidNode;
    bool completed = false;
    bool crashed = false;
    double completion = 0.0;
    std::vector<std::pair<Timeline*, Interval>> reservations;
    std::vector<Staged> staged;
    ExecutionStats delta;
    std::size_t trace_begin = 0;  // half-open range of this attempt's
    std::size_t trace_end = 0;    // events in trace_
  };

  // Best transfer for staging `file` onto `dst` no earlier than `after`,
  // honouring a fixed staging directive if the plan carries one. Non-const
  // only to let its gap queries resume the timelines' monotone cursors.
  TransferChoice best_transfer(const SubBatchPlan& plan, wl::FileId file,
                               wl::NodeId dst, double after);

  // Cheap ECT estimate used only to rank a node's pending tasks (and, with
  // speculation on, to compare the assigned node against cached backups).
  double estimate_ect(wl::TaskId task, wl::NodeId node) const;

  // Reserves [start, start + duration) on `tl`, logging the interval into
  // the active AttemptRecord when one is recording.
  void reserve_tl(Timeline& tl, double start, double duration);

  // Commits the staging of `file` onto `dst` starting no earlier than
  // `after`, injecting transient failures: each failed attempt reserves its
  // links for the full window, and the retry waits an exponential backoff
  // before re-picking the then-best source. Returns the successful choice,
  // or a typed error when give_up_after_max_attempts exhausts the budget.
  Result<TransferChoice> commit_transfer(const SubBatchPlan& plan,
                                         wl::TaskId task, wl::FileId file,
                                         wl::NodeId dst, double after,
                                         bool touch_replica_source,
                                         ExecutionStats& stats);

  // Commits `task` on `node`: stages missing files (minimum-TCT-first),
  // evicting on demand, then reserves the local-read + compute block.
  // Returns false when an injected crash killed the task (the node is
  // dead; the caller owns orphaning). While an AttemptRecord is active the
  // task is NOT finalized — the speculation resolver picks the winner.
  Result<bool> commit_task(const SubBatchPlan& plan, wl::TaskId task,
                           wl::NodeId node, ExecutionStats& stats);

  // Marks `task` done at `completion` on `node`: touches its files, drops
  // pending requests, stamps the completion time and the makespan.
  void finalize_task(wl::TaskId task, wl::NodeId node, double completion,
                     ExecutionStats& stats);

  // Straggler trigger: the alive node (≠ primary) caching at least
  // min_cached_inputs of the task's files with the best ECT estimate, if
  // the primary's estimate lags it past both configured thresholds;
  // kInvalidNode otherwise.
  wl::NodeId find_speculation_target(wl::TaskId task, wl::NodeId primary) const;

  // Runs `task` as two recorded attempts (primary then backup in commit
  // order; their simulated windows overlap through the shared timelines),
  // keeps the first finisher and cancels or charges the loser. Returns
  // false when both attempts died to crashes (the task was orphaned).
  Result<bool> speculative_commit(const SubBatchPlan& plan, wl::TaskId task,
                                  wl::NodeId primary, wl::NodeId backup,
                                  ExecutionStats& stats);

  // First-finish-wins rollback of a completed losing attempt: releases its
  // not-yet-started reservations, truncates in-flight ones at `winner_end`,
  // removes never-usable staged files, adjusts counters, and charges
  // wasted_seconds / wasted_bytes.
  void cancel_attempt(wl::TaskId task, wl::NodeId winner_node,
                      AttemptRecord& rec, double winner_end,
                      ExecutionStats& stats);

  // Fail-stops `node`: drops its cached replicas and marks it dead.
  void apply_crash(wl::NodeId node, ExecutionStats& stats);

  // Frees `need` bytes on `node` before a staging that starts at the node
  // horizon; `pinned` lists the current task's files.
  void evict_for(wl::NodeId node, double need,
                 const std::vector<wl::FileId>& pinned,
                 ExecutionStats& stats);

  ClusterConfig cluster_;  // by value: cheap, and callers may pass rvalues
  Topology topo_;          // all transfer bandwidths resolve through this
  const wl::Workload& workload_;
  EngineOptions options_;

  std::vector<Timeline> storage_tl_;
  std::vector<Timeline> compute_tl_;
  // One Timeline per shared link (Topology link ids: the global uplink,
  // then the rack uplinks).
  std::vector<Timeline> link_tl_;

  ClusterState state_;
  std::vector<double> pending_requests_;
  // Mutable-file model: per-file version epoch (bumped by each write) and
  // home-copy validity (0 while the home storage copy lags the newest
  // write). All-zero epochs / all-valid homes for output-free workloads
  // keep every read path bit-identical to the immutable-file engine.
  std::vector<std::uint32_t> epoch_;
  std::vector<char> home_valid_;
  std::vector<bool> executed_;
  std::vector<bool> was_evicted_;  // per file: evicted at least once
  std::vector<bool> seeded_;       // per file: carried in by seed_cache()
  bool started_ = false;           // an execute() call has run
  // Wall-clock floor of the plan currently executing (SubBatchPlan::
  // release_time); 0 outside streaming windows. Consulted everywhere a new
  // reservation or ECT cursor starts from a compute-node horizon.
  double release_floor_ = 0.0;
  double makespan_ = 0.0;
  ExecutionStats totals_;
  std::vector<TraceEvent> trace_;
  std::vector<double> completion_time_;  // per task; valid iff executed_

  FaultModel faults_;
  std::vector<char> alive_;            // per compute node, 1 = alive
  std::uint64_t transfer_seq_ = 0;     // logical transfer counter
  std::vector<wl::TaskId> orphaned_;   // crash-killed / never-started tasks

  // Speculation state: remaining duplicate-launch budget, and the attempt
  // being recorded (null outside speculative_commit).
  std::size_t spec_remaining_ = 0;
  AttemptRecord* record_ = nullptr;
};

// Renders a trace as CSV (kind,task,file,src,dst,start,end), sorted by
// start time — ready for plotting a Gantt chart.
std::string trace_to_csv(const std::vector<TraceEvent>& trace);

}  // namespace bsio::sim
