// Execution engine: realises a sub-batch plan under the paper's Section 6
// runtime rules and reports the simulated batch execution time.
//
// Model summary (see DESIGN.md for the full argument):
//  - every storage node port, the optional shared uplink, and every compute
//    node (its port and CPU are one serialized resource, Eq. 12) is a
//    Timeline of reservations;
//  - tasks assigned to a node run one at a time; the engine picks, per the
//    paper, the next task of each group by earliest completion time,
//    estimating ECT cheaply for candidate ranking and committing the chosen
//    task's file transfers exactly (greedy minimum-TCT-first, tentative
//    Gantt reservations);
//  - a transfer reserves both endpoint timelines (single-port model); a
//    remote transfer additionally reserves the shared uplink if configured;
//  - destination-side reservations are append-only (at or after the node's
//    horizon), which makes on-demand eviction temporally safe: every file
//    resident on a node stopped being referenced before the node's horizon;
//  - disk-space shortfalls at staging time trigger the configured eviction
//    policy; files needed again later are re-staged (counted as evictions
//    and re-transfers, the effect driving the paper's Fig 5b).
#pragma once

#include <vector>

#include "sim/cluster.h"
#include "sim/plan.h"
#include "sim/state.h"
#include "sim/timeline.h"
#include "workload/types.h"

namespace bsio::sim {

struct EngineOptions {
  EvictionPolicy eviction = EvictionPolicy::kPopularity;
  // Record a TraceEvent per transfer / execution block (off by default;
  // costs one vector push per event).
  bool trace = false;
};

// One row of the execution trace: a remote transfer, a replication, or a
// task's local-read + compute block, with its Gantt placement.
struct TraceEvent {
  enum class Kind { kRemoteTransfer, kReplication, kExec };
  Kind kind = Kind::kExec;
  wl::TaskId task = wl::kInvalidTask;  // kExec, or the task whose commit
                                       // triggered the transfer
  wl::FileId file = wl::kInvalidFile;  // transfers only
  wl::NodeId src = wl::kInvalidNode;   // storage node (remote) or compute
                                       // node (replication)
  wl::NodeId dst = wl::kInvalidNode;   // compute node
  double start = 0.0;
  double end = 0.0;
};

// Statistics for one execute() call (per sub-batch) and accumulated totals.
struct ExecutionStats {
  std::size_t tasks_executed = 0;
  std::size_t remote_transfers = 0;
  std::size_t replications = 0;
  std::size_t evictions = 0;
  std::size_t restages = 0;  // stages of a file previously evicted
  std::size_t cache_hits = 0;  // needed file already on the node
  double remote_bytes = 0.0;
  double replica_bytes = 0.0;

  void accumulate(const ExecutionStats& o);
};

class ExecutionEngine {
 public:
  ExecutionEngine(const ClusterConfig& cluster, const wl::Workload& workload,
                  EngineOptions options = {});

  // Executes one sub-batch plan on top of the current cluster state; returns
  // the stats of this call. Plans must reference tasks not yet executed.
  ExecutionStats execute(const SubBatchPlan& plan);

  // Batch execution time so far: the latest completion over all executed
  // tasks.
  double makespan() const { return makespan_; }

  const ExecutionStats& totals() const { return totals_; }
  const ClusterState& state() const { return state_; }
  ClusterState& state() { return state_; }

  // Remaining request count for a file (popularity numerator, Eq. 22);
  // decremented as tasks execute.
  double pending_requests(wl::FileId f) const { return pending_requests_[f]; }

  // Per-compute-node busy time (utilisation diagnostics).
  std::vector<double> compute_busy_times() const;

  // Execution trace (empty unless EngineOptions::trace was set).
  const std::vector<TraceEvent>& trace() const { return trace_; }

  const Timeline& storage_timeline(wl::NodeId s) const {
    return storage_tl_[s];
  }
  const Timeline& compute_timeline(wl::NodeId c) const {
    return compute_tl_[c];
  }

 private:
  struct TransferChoice {
    bool remote = true;
    wl::NodeId src = wl::kInvalidNode;  // storage node or compute node
    double start = 0.0;
    double duration = 0.0;
    double completion() const { return start + duration; }
  };

  // Best transfer for staging `file` onto `dst` no earlier than `after`,
  // honouring a fixed staging directive if the plan carries one.
  TransferChoice best_transfer(const SubBatchPlan& plan, wl::FileId file,
                               wl::NodeId dst, double after) const;

  // Cheap ECT estimate used only to rank a node's pending tasks.
  double estimate_ect(wl::TaskId task, wl::NodeId node) const;

  // Commits `task` on `node`: stages missing files (minimum-TCT-first),
  // evicting on demand, then reserves the local-read + compute block.
  // Returns the task completion time.
  double commit_task(const SubBatchPlan& plan, wl::TaskId task,
                     wl::NodeId node, ExecutionStats& stats);

  // Frees `need` bytes on `node` before a staging that starts at the node
  // horizon; `pinned` lists the current task's files.
  void evict_for(wl::NodeId node, double need,
                 const std::vector<wl::FileId>& pinned,
                 ExecutionStats& stats);

  ClusterConfig cluster_;  // by value: cheap, and callers may pass rvalues
  const wl::Workload& workload_;
  EngineOptions options_;

  std::vector<Timeline> storage_tl_;
  std::vector<Timeline> compute_tl_;
  Timeline uplink_tl_;
  bool has_uplink_ = false;

  ClusterState state_;
  std::vector<double> pending_requests_;
  std::vector<bool> executed_;
  std::vector<bool> was_evicted_;  // per file: evicted at least once
  double makespan_ = 0.0;
  ExecutionStats totals_;
  std::vector<TraceEvent> trace_;
};

// Renders a trace as CSV (kind,task,file,src,dst,start,end), sorted by
// start time — ready for plotting a Gantt chart.
std::string trace_to_csv(const std::vector<TraceEvent>& trace);

}  // namespace bsio::sim
