#include "sim/engine.h"

#include <algorithm>
#include <cstdio>
#include <string>
#include <limits>
#include <unordered_set>

#include "util/check.h"

namespace bsio::sim {

namespace {
constexpr double kInfTime = std::numeric_limits<double>::infinity();
}

void ExecutionStats::accumulate(const ExecutionStats& o) {
  tasks_executed += o.tasks_executed;
  remote_transfers += o.remote_transfers;
  replications += o.replications;
  evictions += o.evictions;
  restages += o.restages;
  cache_hits += o.cache_hits;
  remote_bytes += o.remote_bytes;
  replica_bytes += o.replica_bytes;
  cache_hit_bytes += o.cache_hit_bytes;
  warm_hit_bytes += o.warm_hit_bytes;
  transfer_retries += o.transfer_retries;
  task_reexecutions += o.task_reexecutions;
  node_crashes += o.node_crashes;
  lost_replica_bytes += o.lost_replica_bytes;
  recovery_seconds += o.recovery_seconds;
  lp_factorizations += o.lp_factorizations;
  if (o.lp_factor_fill_nnz > lp_factor_fill_nnz)
    lp_factor_fill_nnz = o.lp_factor_fill_nnz;
  lp_pivots += o.lp_pivots;
  lp_bound_flips += o.lp_bound_flips;
  lp_degenerate_pivots += o.lp_degenerate_pivots;
  mip_nodes += o.mip_nodes;
}

ExecutionEngine::ExecutionEngine(const ClusterConfig& cluster,
                                 const wl::Workload& workload,
                                 EngineOptions options)
    : cluster_(cluster),
      topo_([&] {
        if (const Status v = cluster.validate(); !v.ok())
          BSIO_CHECK_MSG(false, v.error().message.c_str());
        return Topology(cluster);
      }()),
      workload_(workload),
      options_(options),
      storage_tl_(cluster.num_storage_nodes),
      compute_tl_(cluster.num_compute_nodes),
      link_tl_(topo_.num_links()),
      state_([&] {
        std::vector<double> caps(cluster.num_compute_nodes);
        for (std::size_t i = 0; i < caps.size(); ++i)
          caps[i] = cluster.node_disk_capacity(i);
        return caps;
      }()),
      pending_requests_(workload.num_files(), 0.0),
      executed_(workload.num_tasks(), false),
      was_evicted_(workload.num_files(), false),
      seeded_(workload.num_files(), false),
      faults_(options.faults, cluster.num_compute_nodes,
              cluster.num_storage_nodes),
      alive_(cluster.num_compute_nodes, 1) {
  if (const Status v = options.faults.validate(cluster); !v.ok())
    BSIO_CHECK_MSG(false, v.error().message.c_str());
  for (const auto& f : workload.files())
    BSIO_CHECK_MSG(
        f.home_storage_node < cluster.num_storage_nodes,
        "workload was generated for more storage nodes than the cluster has");
  for (const auto& t : workload.tasks())
    for (wl::FileId f : t.files) pending_requests_[f] += 1.0;
  // Storage outages are reservations made up front: transfers route around
  // the window (or wait it out) through the ordinary gap search.
  for (wl::NodeId s = 0; s < cluster.num_storage_nodes; ++s)
    for (const StorageOutage& o : faults_.outages_of(s))
      storage_tl_[s].reserve(o.start, o.end - o.start);
}

Status ExecutionEngine::seed_cache(const InitialCacheState& seed) {
  if (started_)
    return Err("seed_cache: the engine has already executed a sub-batch; "
               "warm state must be seeded before the first execute()");
  // Validate the whole seed before mutating anything.
  std::vector<double> extra(cluster_.num_compute_nodes, 0.0);
  std::unordered_set<std::uint64_t> seen;
  for (const CacheSeedEntry& e : seed.entries) {
    if (e.file >= workload_.num_files())
      return Err("seed_cache: entry names unknown file " +
                 std::to_string(e.file));
    if (e.node >= cluster_.num_compute_nodes)
      return Err("seed_cache: entry names invalid compute node " +
                 std::to_string(e.node));
    if (!alive_[e.node])
      return Err("seed_cache: entry targets crashed compute node " +
                 std::to_string(e.node));
    if (e.avail_time < 0.0)
      return Err("seed_cache: negative availability time for file " +
                 std::to_string(e.file));
    const std::uint64_t key =
        (static_cast<std::uint64_t>(e.node) << 32) | e.file;
    if (!seen.insert(key).second)
      return Err("seed_cache: duplicate entry for file " +
                 std::to_string(e.file) + " on node " + std::to_string(e.node));
    extra[e.node] += workload_.file_size(e.file);
    if (state_.used_bytes(e.node) + extra[e.node] >
        state_.capacity(e.node) + 1.0)
      return Err("seed_cache: seed overflows the disk of compute node " +
                 std::to_string(e.node) +
                 " (the cross-batch catalogue must evict before seeding)");
  }
  for (const CacheSeedEntry& e : seed.entries) {
    state_.restore(e.node, e.file, workload_.file_size(e.file), e.avail_time,
                   e.last_use);
    seeded_[e.file] = true;
  }
  return OkStatus();
}

ExecutionEngine::TransferChoice ExecutionEngine::best_transfer(
    const SubBatchPlan& plan, wl::FileId file, wl::NodeId dst,
    double after) const {
  const double size = workload_.file_size(file);

  auto remote_choice = [&]() {
    TransferChoice c;
    c.remote = true;
    c.src = workload_.file(file).home_storage_node;
    BSIO_CHECK_MSG(c.src < cluster_.num_storage_nodes,
                   "file home storage node out of range for this cluster");
    c.path = topo_.remote_path(c.src, dst);
    c.duration = size / c.path.bandwidth;
    std::vector<const Timeline*> tls{&storage_tl_[c.src]};
    for (std::uint32_t l = 0; l < c.path.num_links; ++l)
      tls.push_back(&link_tl_[c.path.links[l]]);
    tls.push_back(&compute_tl_[dst]);
    c.start = earliest_common_free(tls, after, c.duration);
    return c;
  };

  auto replica_choice = [&](wl::NodeId j) {
    TransferChoice c;
    c.remote = false;
    c.src = j;
    c.path = topo_.replica_path(j, dst);
    c.duration = size / c.path.bandwidth;
    const double avail = state_.available_at(j, file);
    std::vector<const Timeline*> tls{&compute_tl_[j]};
    for (std::uint32_t l = 0; l < c.path.num_links; ++l)
      tls.push_back(&link_tl_[c.path.links[l]]);
    tls.push_back(&compute_tl_[dst]);
    c.start = earliest_common_free(tls, std::max(after, avail), c.duration);
    return c;
  };

  // A fixed staging directive (IP plan) short-circuits the dynamic rule,
  // unless it has gone stale (replica source no longer holds the file, has
  // crashed, or would crash before the copy completes).
  auto it = plan.staging.find({file, dst});
  if (it != plan.staging.end()) {
    const StagingSource& s = it->second;
    if (s.kind == SourceKind::kRemote) return remote_choice();
    if (cluster_.allow_replication && s.src_node != dst &&
        s.src_node < cluster_.num_compute_nodes && alive_[s.src_node] &&
        state_.has(s.src_node, file)) {
      TransferChoice c = replica_choice(s.src_node);
      if (c.completion() <= faults_.crash_time(s.src_node)) return c;
    }
  }

  TransferChoice best = remote_choice();
  if (cluster_.allow_replication) {
    for (wl::NodeId j : state_.holders(file)) {
      if (j == dst || !alive_[j]) continue;
      TransferChoice c = replica_choice(j);
      // A source scheduled to crash before the copy completes cannot serve
      // it.
      if (c.completion() > faults_.crash_time(j)) continue;
      // Strictly-better completion wins; ties keep the replica with the
      // lowest source id, preferring replicas over remote (less storage
      // contention) on exact ties.
      if (c.completion() < best.completion() - 1e-12 ||
          (c.completion() < best.completion() + 1e-12 &&
           (best.remote || c.src < best.src)))
        best = c;
    }
  }
  return best;
}

double ExecutionEngine::estimate_ect(wl::TaskId task, wl::NodeId node) const {
  const auto& info = workload_.task(task);
  double cursor = compute_tl_[node].horizon();
  double read_bytes = 0.0;
  for (wl::FileId f : info.files) {
    read_bytes += workload_.file_size(f);
    if (state_.has(node, f)) continue;
    const double size = workload_.file_size(f);
    // Horizon-based estimate: cheap, mutation-free, consistent across
    // candidates (used only for ranking).
    const wl::NodeId home = workload_.file(f).home_storage_node;
    const TransferPath rp = topo_.remote_path(home, node);
    double src_ready = storage_tl_[home].horizon();
    for (std::uint32_t l = 0; l < rp.num_links; ++l)
      src_ready = std::max(src_ready, link_tl_[rp.links[l]].horizon());
    double best = std::max(cursor, src_ready) + size / rp.bandwidth;
    if (cluster_.allow_replication) {
      for (wl::NodeId j : state_.holders(f)) {
        if (j == node) continue;
        const TransferPath pp = topo_.replica_path(j, node);
        double start = std::max({cursor, compute_tl_[j].horizon(),
                                 state_.available_at(j, f)});
        for (std::uint32_t l = 0; l < pp.num_links; ++l)
          start = std::max(start, link_tl_[pp.links[l]].horizon());
        best = std::min(best, start + size / pp.bandwidth);
      }
    }
    cursor = best;
  }
  return cursor + read_bytes / cluster_.local_disk_bw +
         info.compute_seconds / topo_.cpu_speed(node);
}

void ExecutionEngine::evict_for(wl::NodeId node, double need,
                                const std::vector<wl::FileId>& pinned,
                                ExecutionStats& stats) {
  if (need <= 0.0) return;
  auto victims = state_.select_victims(
      node, need, pinned, options_.eviction,
      [this](wl::FileId f) { return pending_requests_[f]; },
      [this](wl::FileId f) { return workload_.file_size(f); });
  BSIO_CHECK_MSG(!victims.empty(),
                 "cannot free disk space: a single task's files must fit on "
                 "one compute node (paper Section 4.2 assumption)");
  for (wl::FileId v : victims) {
    state_.remove(node, v, workload_.file_size(v));
    was_evicted_[v] = true;
    ++stats.evictions;
  }
}

ExecutionEngine::TransferChoice ExecutionEngine::commit_transfer(
    const SubBatchPlan& plan, wl::TaskId task, wl::FileId file, wl::NodeId dst,
    double after, bool touch_replica_source, ExecutionStats& stats) {
  const double size = workload_.file_size(file);
  const std::uint64_t seq = transfer_seq_++;
  for (std::size_t attempt = 0;; ++attempt) {
    TransferChoice c = best_transfer(plan, file, dst, after);
    if (c.remote)
      storage_tl_[c.src].reserve(c.start, c.duration);
    else
      compute_tl_[c.src].reserve(c.start, c.duration);
    for (std::uint32_t l = 0; l < c.path.num_links; ++l)
      link_tl_[c.path.links[l]].reserve(c.start, c.duration);
    compute_tl_[dst].reserve(c.start, c.duration);

    if (!faults_.transfer_attempt_fails(seq, attempt)) {
      if (c.remote) {
        ++stats.remote_transfers;
        stats.remote_bytes += size;
      } else {
        if (touch_replica_source)
          state_.touch(c.src, file, c.completion());
        ++stats.replications;
        stats.replica_bytes += size;
      }
      if (was_evicted_[file]) ++stats.restages;
      if (options_.trace)
        trace_.push_back({c.remote ? TraceEvent::Kind::kRemoteTransfer
                                   : TraceEvent::Kind::kReplication,
                          task, file, c.src, dst, c.start, c.completion()});
      return c;
    }

    // Transient failure: the attempt held its links for the full window;
    // back off exponentially, then retry against the then-best source.
    const double backoff = faults_.backoff_after(attempt);
    ++stats.transfer_retries;
    stats.recovery_seconds += c.duration + backoff;
    if (options_.trace)
      trace_.push_back({TraceEvent::Kind::kFailedTransfer, task, file, c.src,
                        dst, c.start, c.completion()});
    after = c.completion() + backoff;
  }
}

void ExecutionEngine::apply_crash(wl::NodeId node, ExecutionStats& stats) {
  if (!alive_[node]) return;
  alive_[node] = 0;
  stats.lost_replica_bytes += state_.clear_node(node);
  ++stats.node_crashes;
}

bool ExecutionEngine::commit_task(const SubBatchPlan& plan, wl::TaskId task,
                                  wl::NodeId node, ExecutionStats& stats) {
  const auto& info = workload_.task(task);
  const std::vector<wl::FileId>& pinned = info.files;

  std::vector<wl::FileId> missing;
  double read_bytes = 0.0;
  for (wl::FileId f : info.files) {
    read_bytes += workload_.file_size(f);
    if (state_.has(node, f)) {
      ++stats.cache_hits;
      stats.cache_hit_bytes += workload_.file_size(f);
      if (seeded_[f]) stats.warm_hit_bytes += workload_.file_size(f);
    } else {
      missing.push_back(f);
    }
  }

  double last_end = compute_tl_[node].horizon();
  std::vector<wl::FileId> remaining = missing;
  while (!remaining.empty()) {
    // Greedy minimum-TCT-first staging (paper Section 6): evaluate every
    // remaining file against the current Gantt state, commit the earliest.
    std::size_t best_i = 0;
    double best_tct = kInfTime;
    const double after = compute_tl_[node].horizon();
    for (std::size_t i = 0; i < remaining.size(); ++i) {
      TransferChoice c = best_transfer(plan, remaining[i], node, after);
      if (c.completion() < best_tct) {
        best_tct = c.completion();
        best_i = i;
      }
    }
    const wl::FileId file = remaining[best_i];
    const double size = workload_.file_size(file);

    // Disk admission on the destination (temporally safe: the reservation
    // starts at or after the node horizon, and every resident file's last
    // reference ends at or before the horizon).
    evict_for(node, size - state_.free_bytes(node), pinned, stats);

    TransferChoice done = commit_transfer(plan, task, file, node, after,
                                          /*touch_replica_source=*/true,
                                          stats);
    state_.add(node, file, size, done.completion());
    last_end = std::max(last_end, done.completion());
    remaining.erase(remaining.begin() + best_i);
  }

  // Local read + computation, serialized on the node after the last input
  // file arrives.
  const double exec_dur =
      topo_.exec_seconds(read_bytes, info.compute_seconds, node);
  const double start = compute_tl_[node].earliest_free(last_end, exec_dur);
  const double completion = start + exec_dur;

  const double crash_t = faults_.crash_time(node);
  if (completion > crash_t) {
    // Fail-stop: the node dies before this task finishes. Charge whatever
    // partial execution happened, orphan the task for re-scheduling, and
    // lose the node's cache. Earlier transfer reservations stand — they
    // were in flight when the failure was detected.
    if (start < crash_t) {
      compute_tl_[node].reserve(start, crash_t - start);
      stats.recovery_seconds += crash_t - start;
      if (options_.trace)
        trace_.push_back({TraceEvent::Kind::kExec, task, wl::kInvalidFile,
                          wl::kInvalidNode, node, start, crash_t});
    }
    ++stats.task_reexecutions;
    orphaned_.push_back(task);
    apply_crash(node, stats);
    return false;
  }

  compute_tl_[node].reserve(start, exec_dur);
  if (options_.trace)
    trace_.push_back({TraceEvent::Kind::kExec, task, wl::kInvalidFile,
                      wl::kInvalidNode, node, start, completion});

  for (wl::FileId f : info.files) {
    state_.touch(node, f, completion);
    pending_requests_[f] -= 1.0;
  }
  executed_[task] = true;
  ++stats.tasks_executed;
  makespan_ = std::max(makespan_, completion);
  return true;
}

Result<ExecutionStats> ExecutionEngine::execute(const SubBatchPlan& plan) {
  // --- Recoverable plan validation, before any state mutates. ---
  for (const auto& [file, dst] : plan.prefetches) {
    if (file >= workload_.num_files())
      return Err("SubBatchPlan: prefetch names unknown file " +
                 std::to_string(file));
    if (dst >= cluster_.num_compute_nodes)
      return Err("SubBatchPlan: prefetch names invalid compute node " +
                 std::to_string(dst));
    if (!alive_[dst])
      return Err("SubBatchPlan: prefetch targets crashed compute node " +
                 std::to_string(dst));
  }
  for (wl::TaskId t : plan.tasks) {
    if (t >= workload_.num_tasks())
      return Err("SubBatchPlan: plan names unknown task " + std::to_string(t));
    if (executed_[t])
      return Err("SubBatchPlan: task " + std::to_string(t) +
                 " was already executed");
    auto it = plan.assignment.find(t);
    if (it == plan.assignment.end())
      return Err("SubBatchPlan: task " + std::to_string(t) +
                 " is missing an assignment");
    if (it->second >= cluster_.num_compute_nodes)
      return Err("SubBatchPlan: task " + std::to_string(t) +
                 " is assigned to invalid compute node " +
                 std::to_string(it->second));
    if (!alive_[it->second])
      return Err("SubBatchPlan: task " + std::to_string(t) +
                 " is assigned to crashed compute node " +
                 std::to_string(it->second));
  }

  started_ = true;  // warm seeding (seed_cache) is closed from here on
  ExecutionStats stats;

  // Proactive replications (Data Least Loaded) before task scheduling.
  for (const auto& [file, dst] : plan.prefetches) {
    if (state_.has(dst, file)) continue;
    const double size = workload_.file_size(file);
    const double after = compute_tl_[dst].horizon();
    evict_for(dst, size - state_.free_bytes(dst), {file}, stats);
    TransferChoice c = commit_transfer(plan, wl::kInvalidTask, file, dst,
                                       after, /*touch_replica_source=*/false,
                                       stats);
    state_.add(dst, file, size, c.completion());
  }

  std::vector<std::vector<wl::TaskId>> groups(cluster_.num_compute_nodes);
  for (wl::TaskId t : plan.tasks) groups[plan.assignment.at(t)].push_back(t);

  std::size_t left = plan.tasks.size();
  while (left > 0) {
    // Serve the group whose node frees up first (equivalently: whenever a
    // node finishes, it picks its next task by earliest completion time).
    wl::NodeId node = wl::kInvalidNode;
    double best_h = kInfTime;
    for (wl::NodeId n = 0; n < groups.size(); ++n) {
      if (groups[n].empty()) continue;
      double h = compute_tl_[n].horizon();
      if (h < best_h) {
        best_h = h;
        node = n;
      }
    }
    BSIO_CHECK(node != wl::kInvalidNode);

    auto& group = groups[node];
    std::size_t best_i = 0;
    double best_ect = kInfTime;
    for (std::size_t i = 0; i < group.size(); ++i) {
      double ect = estimate_ect(group[i], node);
      if (ect < best_ect) {
        best_ect = ect;
        best_i = i;
      }
    }
    wl::TaskId task = group[best_i];
    group.erase(group.begin() + best_i);
    --left;
    if (!commit_task(plan, task, node, stats)) {
      // The node crashed killing `task`; its queued siblings are orphaned
      // for the driver's re-scheduling loop.
      for (wl::TaskId t : group) orphaned_.push_back(t);
      left -= group.size();
      group.clear();
    }
  }

  totals_.accumulate(stats);
  return stats;
}

std::vector<wl::TaskId> ExecutionEngine::take_orphaned() {
  std::vector<wl::TaskId> out;
  out.swap(orphaned_);
  return out;
}

std::size_t ExecutionEngine::alive_count() const {
  std::size_t n = 0;
  for (char a : alive_) n += a != 0;
  return n;
}

std::string trace_to_csv(const std::vector<TraceEvent>& trace) {
  std::vector<TraceEvent> sorted = trace;
  std::sort(sorted.begin(), sorted.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              if (a.start != b.start) return a.start < b.start;
              return a.end < b.end;
            });
  std::string out = "kind,task,file,src,dst,start,end\n";
  char buf[160];
  for (const auto& e : sorted) {
    const char* kind = "exec";
    switch (e.kind) {
      case TraceEvent::Kind::kRemoteTransfer:
        kind = "remote";
        break;
      case TraceEvent::Kind::kReplication:
        kind = "replica";
        break;
      case TraceEvent::Kind::kFailedTransfer:
        kind = "failed";
        break;
      case TraceEvent::Kind::kExec:
        kind = "exec";
        break;
    }
    auto id = [](auto v) {
      return v == static_cast<decltype(v)>(-1) ? -1L : static_cast<long>(v);
    };
    std::snprintf(buf, sizeof(buf), "%s,%ld,%ld,%ld,%ld,%.6f,%.6f\n", kind,
                  id(e.task), id(e.file), id(e.src), id(e.dst), e.start,
                  e.end);
    out += buf;
  }
  return out;
}

std::vector<double> ExecutionEngine::compute_busy_times() const {
  std::vector<double> out;
  out.reserve(compute_tl_.size());
  for (const auto& tl : compute_tl_) out.push_back(tl.busy_time());
  return out;
}

}  // namespace bsio::sim
