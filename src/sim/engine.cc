#include "sim/engine.h"

#include <algorithm>
#include <cstdio>
#include <limits>
#include <queue>
#include <string>
#include <unordered_set>

#include "util/check.h"

namespace bsio::sim {

namespace {

constexpr double kInfTime = std::numeric_limits<double>::infinity();

// Overflow-safe counter addition: clamp at the type's extreme instead of
// wrapping, so accumulated totals over a 1M-file run degrade to "at least
// this many" rather than a silently small number.
std::uint64_t sat_add(std::uint64_t a, std::uint64_t b) {
  std::uint64_t r;
  if (__builtin_add_overflow(a, b, &r))
    return std::numeric_limits<std::uint64_t>::max();
  return r;
}

std::int64_t sat_add(std::int64_t a, std::int64_t b) {
  std::int64_t r;
  if (__builtin_add_overflow(a, b, &r))
    return a < 0 ? std::numeric_limits<std::int64_t>::min()
                 : std::numeric_limits<std::int64_t>::max();
  return r;
}

}  // namespace

void ExecutionStats::accumulate(const ExecutionStats& o) {
  tasks_executed = sat_add(tasks_executed, o.tasks_executed);
  remote_transfers = sat_add(remote_transfers, o.remote_transfers);
  replications = sat_add(replications, o.replications);
  evictions = sat_add(evictions, o.evictions);
  restages = sat_add(restages, o.restages);
  cache_hits = sat_add(cache_hits, o.cache_hits);
  remote_bytes += o.remote_bytes;
  replica_bytes += o.replica_bytes;
  cache_hit_bytes += o.cache_hit_bytes;
  warm_hit_bytes += o.warm_hit_bytes;
  transfer_retries = sat_add(transfer_retries, o.transfer_retries);
  task_reexecutions = sat_add(task_reexecutions, o.task_reexecutions);
  node_crashes = sat_add(node_crashes, o.node_crashes);
  lost_replica_bytes += o.lost_replica_bytes;
  recovery_seconds += o.recovery_seconds;
  speculative_launches = sat_add(speculative_launches, o.speculative_launches);
  speculative_wins = sat_add(speculative_wins, o.speculative_wins);
  speculative_cancels = sat_add(speculative_cancels, o.speculative_cancels);
  wasted_seconds += o.wasted_seconds;
  wasted_bytes += o.wasted_bytes;
  replicas_created = sat_add(replicas_created, o.replicas_created);
  replicas_invalidated = sat_add(replicas_invalidated, o.replicas_invalidated);
  home_flushes = sat_add(home_flushes, o.home_flushes);
  lost_versions = sat_add(lost_versions, o.lost_versions);
  repair_bytes += o.repair_bytes;
  repair_seconds += o.repair_seconds;
  lp_factorizations = sat_add(lp_factorizations, o.lp_factorizations);
  if (o.lp_factor_fill_nnz > lp_factor_fill_nnz)
    lp_factor_fill_nnz = o.lp_factor_fill_nnz;
  lp_pivots = sat_add(lp_pivots, o.lp_pivots);
  lp_bound_flips = sat_add(lp_bound_flips, o.lp_bound_flips);
  lp_degenerate_pivots = sat_add(lp_degenerate_pivots, o.lp_degenerate_pivots);
  mip_nodes = sat_add(mip_nodes, o.mip_nodes);
}

ExecutionEngine::ExecutionEngine(const ClusterConfig& cluster,
                                 const wl::Workload& workload,
                                 EngineOptions options)
    : cluster_(cluster),
      topo_([&] {
        if (const Status v = cluster.validate(); !v.ok())
          BSIO_CHECK_MSG(false, v.error().message.c_str());
        return Topology(cluster);
      }()),
      workload_(workload),
      options_(options),
      storage_tl_(cluster.num_storage_nodes),
      compute_tl_(cluster.num_compute_nodes),
      link_tl_(topo_.num_links()),
      state_([&] {
        std::vector<double> caps(cluster.num_compute_nodes);
        for (std::size_t i = 0; i < caps.size(); ++i)
          caps[i] = cluster.node_disk_capacity(i);
        return caps;
      }()),
      pending_requests_(workload.num_files(), 0.0),
      epoch_(workload.num_files(), 0),
      home_valid_(workload.num_files(), 1),
      executed_(workload.num_tasks(), false),
      was_evicted_(workload.num_files(), false),
      seeded_(workload.num_files(), false),
      completion_time_(workload.num_tasks(), 0.0),
      faults_(options.faults, cluster.num_compute_nodes,
              cluster.num_storage_nodes),
      alive_(cluster.num_compute_nodes, 1),
      spec_remaining_(options.speculation.enabled
                          ? options.speculation.max_speculative_tasks
                          : 0) {
  if (const Status v = options.faults.validate(cluster); !v.ok())
    BSIO_CHECK_MSG(false, v.error().message.c_str());
  if (const Status v = options.speculation.validate(); !v.ok())
    BSIO_CHECK_MSG(false, v.error().message.c_str());
  for (const auto& f : workload.files())
    BSIO_CHECK_MSG(
        f.home_storage_node < cluster.num_storage_nodes,
        "workload was generated for more storage nodes than the cluster has");
  for (const auto& t : workload.tasks())
    for (wl::FileId f : t.files) pending_requests_[f] += 1.0;
  // Storage outages are reservations made up front: transfers route around
  // the window (or wait it out) through the ordinary gap search.
  for (wl::NodeId s = 0; s < cluster.num_storage_nodes; ++s)
    for (const StorageOutage& o : faults_.outages_of(s))
      storage_tl_[s].reserve(o.start, o.end - o.start);
}

Status ExecutionEngine::seed_cache(const InitialCacheState& seed) {
  if (started_)
    return Err("seed_cache: the engine has already executed a sub-batch; "
               "warm state must be seeded before the first execute()");
  // Validate the whole seed before mutating anything.
  std::vector<double> extra(cluster_.num_compute_nodes, 0.0);
  std::unordered_set<std::uint64_t> seen;
  for (const CacheSeedEntry& e : seed.entries) {
    if (e.file >= workload_.num_files())
      return Err("seed_cache: entry names unknown file " +
                 std::to_string(e.file));
    if (e.node >= cluster_.num_compute_nodes)
      return Err("seed_cache: entry names invalid compute node " +
                 std::to_string(e.node));
    if (!alive_[e.node])
      return Err("seed_cache: entry targets crashed compute node " +
                 std::to_string(e.node));
    if (e.avail_time < 0.0)
      return Err("seed_cache: negative availability time for file " +
                 std::to_string(e.file));
    const std::uint64_t key =
        (static_cast<std::uint64_t>(e.node) << 32) | e.file;
    if (!seen.insert(key).second)
      return Err("seed_cache: duplicate entry for file " +
                 std::to_string(e.file) + " on node " + std::to_string(e.node));
    extra[e.node] += workload_.file_size(e.file);
    if (state_.used_bytes(e.node) + extra[e.node] >
        state_.capacity(e.node) + 1.0)
      return Err("seed_cache: seed overflows the disk of compute node " +
                 std::to_string(e.node) +
                 " (the cross-batch catalogue must evict before seeding)");
  }
  for (const CacheSeedEntry& e : seed.entries) {
    state_.restore(e.node, e.file, workload_.file_size(e.file), e.avail_time,
                   e.last_use);
    seeded_[e.file] = true;
  }
  return OkStatus();
}

ExecutionEngine::TransferChoice ExecutionEngine::best_transfer(
    const SubBatchPlan& plan, wl::FileId file, wl::NodeId dst, double after) {
  const double size = workload_.file_size(file);

  auto remote_choice = [&]() {
    TransferChoice c;
    c.remote = true;
    c.src = workload_.file(file).home_storage_node;
    BSIO_CHECK_MSG(c.src < cluster_.num_storage_nodes,
                   "file home storage node out of range for this cluster");
    c.path = topo_.remote_path(c.src, dst);
    c.duration = size / c.path.bandwidth;
    std::vector<Timeline*> tls{&storage_tl_[c.src]};
    for (std::uint32_t l = 0; l < c.path.num_links; ++l)
      tls.push_back(&link_tl_[c.path.links[l]]);
    tls.push_back(&compute_tl_[dst]);
    c.start = earliest_common_free(tls, after, c.duration);
    return c;
  };

  auto replica_choice = [&](wl::NodeId j) {
    TransferChoice c;
    c.remote = false;
    c.src = j;
    c.path = topo_.replica_path(j, dst);
    c.duration = size / c.path.bandwidth;
    const double avail = state_.available_at(j, file);
    std::vector<Timeline*> tls{&compute_tl_[j]};
    for (std::uint32_t l = 0; l < c.path.num_links; ++l)
      tls.push_back(&link_tl_[c.path.links[l]]);
    tls.push_back(&compute_tl_[dst]);
    c.start = earliest_common_free(tls, std::max(after, avail), c.duration);
    return c;
  };

  // A write leaves the home storage copy stale until the replica manager
  // flushes it back; while stale, a remote fetch serves an OLD version and
  // is only acceptable as a rollback read when no node holds the current
  // one. Output-free workloads never mark a home stale, so this gate is
  // inert on every pre-existing scenario.
  const bool stale_home = home_valid_[file] == 0;

  // A fixed staging directive (IP plan) short-circuits the dynamic rule,
  // unless it has gone stale (replica source no longer holds the file, has
  // crashed, or would crash before the copy completes — or the directive
  // points at a home copy a write has since invalidated).
  auto it = plan.staging.find({file, dst});
  if (it != plan.staging.end()) {
    const StagingSource& s = it->second;
    if (s.kind == SourceKind::kRemote && !stale_home) return remote_choice();
    if (s.kind != SourceKind::kRemote && cluster_.allow_replication &&
        s.src_node != dst && s.src_node < cluster_.num_compute_nodes &&
        alive_[s.src_node] && state_.has(s.src_node, file)) {
      TransferChoice c = replica_choice(s.src_node);
      if (c.completion() <= faults_.crash_time(s.src_node)) return c;
    }
  }

  TransferChoice best = remote_choice();
  bool best_is_stale = stale_home;
  if (cluster_.allow_replication) {
    for (wl::NodeId j : state_.holders(file)) {
      if (j == dst || !alive_[j]) continue;
      TransferChoice c = replica_choice(j);
      // A source scheduled to crash before the copy completes cannot serve
      // it.
      if (c.completion() > faults_.crash_time(j)) continue;
      // Any current copy beats a stale home read outright; otherwise a
      // strictly-better completion wins and ties keep the replica with the
      // lowest source id, preferring replicas over remote (less storage
      // contention) on exact ties.
      if (best_is_stale || c.completion() < best.completion() - 1e-12 ||
          (c.completion() < best.completion() + 1e-12 &&
           (best.remote || c.src < best.src))) {
        best = c;
        best_is_stale = false;
      }
    }
  }
  return best;
}

double ExecutionEngine::estimate_ect(wl::TaskId task, wl::NodeId node) const {
  const auto& info = workload_.task(task);
  double cursor = std::max(compute_tl_[node].horizon(), release_floor_);
  double read_bytes = 0.0;
  for (wl::FileId f : info.files) {
    read_bytes += workload_.file_size(f);
    if (state_.has(node, f)) continue;
    const double size = workload_.file_size(f);
    // Horizon-based estimate: cheap, mutation-free, consistent across
    // candidates (used only for ranking).
    double best = kInfTime;
    bool replica_served = false;
    if (cluster_.allow_replication) {
      for (wl::NodeId j : state_.holders(f)) {
        if (j == node) continue;
        const TransferPath pp = topo_.replica_path(j, node);
        double start = std::max({cursor, compute_tl_[j].horizon(),
                                 state_.available_at(j, f)});
        for (std::uint32_t l = 0; l < pp.num_links; ++l)
          start = std::max(start, link_tl_[pp.links[l]].horizon());
        best = std::min(best, start + size / pp.bandwidth);
        replica_served = true;
      }
    }
    // Mirror best_transfer's staleness gate: a stale home copy is only an
    // estimate candidate when no node holds the current version.
    if (home_valid_[f] != 0 || !replica_served) {
      const wl::NodeId home = workload_.file(f).home_storage_node;
      const TransferPath rp = topo_.remote_path(home, node);
      double src_ready = storage_tl_[home].horizon();
      for (std::uint32_t l = 0; l < rp.num_links; ++l)
        src_ready = std::max(src_ready, link_tl_[rp.links[l]].horizon());
      best = std::min(best, std::max(cursor, src_ready) + size / rp.bandwidth);
    }
    cursor = best;
  }
  if (!faults_.has_slowdowns())
    return cursor + read_bytes / cluster_.local_disk_bw +
           info.compute_seconds / topo_.cpu_speed(node);
  // Degraded-node awareness: stretch the exec block by the node's slowdown
  // windows so the speculation trigger sees stragglers the planners cannot.
  const double nominal = read_bytes / cluster_.local_disk_bw +
                         info.compute_seconds / topo_.cpu_speed(node);
  return cursor + faults_.stretched_exec_duration(node, cursor, nominal);
}

void ExecutionEngine::evict_for(wl::NodeId node, double need,
                                const std::vector<wl::FileId>& pinned,
                                ExecutionStats& stats) {
  if (need <= 0.0) return;
  auto victims = state_.select_victims(
      node, need, pinned, options_.eviction,
      [this](wl::FileId f) { return pending_requests_[f]; },
      [this](wl::FileId f) { return workload_.file_size(f); });
  BSIO_CHECK_MSG(!victims.empty(),
                 "cannot free disk space: a single task's files must fit on "
                 "one compute node (paper Section 4.2 assumption)");
  for (wl::FileId v : victims) {
    state_.remove(node, v, workload_.file_size(v));
    was_evicted_[v] = true;
    ++stats.evictions;
  }
}

void ExecutionEngine::reserve_tl(Timeline& tl, double start, double duration) {
  tl.reserve(start, duration);
  // Timeline::reserve drops non-positive durations, so only real intervals
  // are logged for rollback.
  if (record_ != nullptr && duration > 0.0)
    record_->reservations.push_back({&tl, {start, start + duration}});
}

Result<ExecutionEngine::TransferChoice> ExecutionEngine::commit_transfer(
    const SubBatchPlan& plan, wl::TaskId task, wl::FileId file, wl::NodeId dst,
    double after, bool touch_replica_source, ExecutionStats& stats) {
  const double size = workload_.file_size(file);
  const std::uint64_t seq = transfer_seq_++;
  for (std::size_t attempt = 0;; ++attempt) {
    TransferChoice c = best_transfer(plan, file, dst, after);
    if (c.remote)
      reserve_tl(storage_tl_[c.src], c.start, c.duration);
    else
      reserve_tl(compute_tl_[c.src], c.start, c.duration);
    for (std::uint32_t l = 0; l < c.path.num_links; ++l)
      reserve_tl(link_tl_[c.path.links[l]], c.start, c.duration);
    reserve_tl(compute_tl_[dst], c.start, c.duration);

    if (!faults_.transfer_attempt_fails(seq, attempt)) {
      if (c.remote) {
        ++stats.remote_transfers;
        stats.remote_bytes += size;
        // A remote fetch from a stale home only happens when every current
        // copy is gone (writer crashed before a flush): the newest version
        // is unrecoverable and this read rolls back to the old one.
        if (home_valid_[file] == 0) ++stats.lost_versions;
      } else {
        if (touch_replica_source)
          state_.touch(c.src, file, c.completion());
        ++stats.replications;
        stats.replica_bytes += size;
      }
      if (was_evicted_[file]) ++stats.restages;
      if (options_.trace)
        trace_.push_back({c.remote ? TraceEvent::Kind::kRemoteTransfer
                                   : TraceEvent::Kind::kReplication,
                          task, file, c.src, dst, c.start, c.completion()});
      return c;
    }

    // Transient failure: the attempt held its links for the full window;
    // back off exponentially, then retry against the then-best source.
    ++stats.transfer_retries;
    if (options_.trace)
      trace_.push_back({TraceEvent::Kind::kFailedTransfer, task, file, c.src,
                        dst, c.start, c.completion()});
    if (attempt + 1 >= faults_.config().max_transfer_attempts) {
      // Only reachable with give_up_after_max_attempts (otherwise the last
      // attempt never fails): surface a typed error instead of spinning.
      stats.recovery_seconds += c.duration;
      return Err("transfer of file " + std::to_string(file) +
                 " onto compute node " + std::to_string(dst) + " failed " +
                 std::to_string(attempt + 1) + " attempts; giving up");
    }
    const double backoff = faults_.backoff_after(attempt);
    stats.recovery_seconds += c.duration + backoff;
    after = c.completion() + backoff;
  }
}

void ExecutionEngine::apply_crash(wl::NodeId node, ExecutionStats& stats) {
  if (!alive_[node]) return;
  alive_[node] = 0;
  stats.lost_replica_bytes += state_.clear_node(node);
  ++stats.node_crashes;
}

Result<bool> ExecutionEngine::commit_task(const SubBatchPlan& plan,
                                          wl::TaskId task, wl::NodeId node,
                                          ExecutionStats& stats) {
  const auto& info = workload_.task(task);
  const std::vector<wl::FileId>& pinned = info.files;

  std::vector<wl::FileId> missing;
  double read_bytes = 0.0;
  for (wl::FileId f : info.files) {
    read_bytes += workload_.file_size(f);
    if (state_.has(node, f)) {
      ++stats.cache_hits;
      stats.cache_hit_bytes += workload_.file_size(f);
      if (seeded_[f]) stats.warm_hit_bytes += workload_.file_size(f);
    } else {
      missing.push_back(f);
    }
  }

  double last_end = std::max(compute_tl_[node].horizon(), release_floor_);
  std::vector<wl::FileId> remaining = missing;
  while (!remaining.empty()) {
    // Greedy minimum-TCT-first staging (paper Section 6): evaluate every
    // remaining file against the current Gantt state, commit the earliest.
    std::size_t best_i = 0;
    double best_tct = kInfTime;
    const double after = std::max(compute_tl_[node].horizon(), release_floor_);
    for (std::size_t i = 0; i < remaining.size(); ++i) {
      TransferChoice c = best_transfer(plan, remaining[i], node, after);
      if (c.completion() < best_tct) {
        best_tct = c.completion();
        best_i = i;
      }
    }
    const wl::FileId file = remaining[best_i];
    const double size = workload_.file_size(file);

    // Disk admission on the destination (temporally safe: the reservation
    // starts at or after the node horizon, and every resident file's last
    // reference ends at or before the horizon).
    evict_for(node, size - state_.free_bytes(node), pinned, stats);

    Result<TransferChoice> staged = commit_transfer(
        plan, task, file, node, after, /*touch_replica_source=*/true, stats);
    if (!staged.ok()) return staged.error();
    const TransferChoice& done = staged.value();
    state_.add(node, file, size, done.completion());
    if (record_ != nullptr)
      record_->staged.push_back({file, size, done.start, done.completion(),
                                 done.remote,
                                 static_cast<bool>(was_evicted_[file])});
    last_end = std::max(last_end, done.completion());
    remaining.erase(remaining.begin() + best_i);
  }

  // Local read + computation, serialized on the node after the last input
  // file arrives.
  double exec_dur = topo_.exec_seconds(read_bytes, info.compute_seconds, node);
  double start = compute_tl_[node].earliest_free(last_end, exec_dur);
  if (faults_.has_slowdowns()) {
    // A degraded node stretches the block, a longer block may need a later
    // gap, and a later start may change the stretch again — iterate to a
    // fixed point. Exec blocks land at or after the node horizon in
    // practice, where earliest_free is duration-independent, so this
    // settles in one or two rounds; the bound is a safety net.
    const double nominal = exec_dur;
    for (int round = 0; round < 64; ++round) {
      const double stretched =
          faults_.stretched_exec_duration(node, start, nominal);
      const double restart = compute_tl_[node].earliest_free(last_end,
                                                             stretched);
      if (restart == start && stretched == exec_dur) break;
      exec_dur = stretched;
      start = restart;
    }
  }
  const double completion = start + exec_dur;

  const double crash_t = faults_.crash_time(node);
  if (completion > crash_t) {
    // Fail-stop: the node dies before this task finishes. Charge whatever
    // partial execution happened and lose the node's cache; the caller
    // orphans the task. Earlier transfer reservations stand — they were in
    // flight when the failure was detected.
    if (start < crash_t) {
      reserve_tl(compute_tl_[node], start, crash_t - start);
      stats.recovery_seconds += crash_t - start;
      if (options_.trace)
        trace_.push_back({TraceEvent::Kind::kExec, task, wl::kInvalidFile,
                          wl::kInvalidNode, node, start, crash_t});
    }
    apply_crash(node, stats);
    if (record_ != nullptr) {
      record_->crashed = true;
      record_->completion = crash_t;
    }
    return false;
  }

  reserve_tl(compute_tl_[node], start, exec_dur);
  if (options_.trace)
    trace_.push_back({TraceEvent::Kind::kExec, task, wl::kInvalidFile,
                      wl::kInvalidNode, node, start, completion});

  if (record_ != nullptr) {
    // Recorded speculative attempt: the winner is finalized by the
    // resolver, not here.
    record_->completed = true;
    record_->completion = completion;
    return true;
  }
  finalize_task(task, node, completion, stats);
  return true;
}

void ExecutionEngine::finalize_task(wl::TaskId task, wl::NodeId node,
                                    double completion, ExecutionStats& stats) {
  const auto& info = workload_.task(task);
  for (wl::FileId f : info.files) {
    state_.touch(node, f, completion);
    pending_requests_[f] -= 1.0;
  }
  if (!info.outputs.empty()) {
    // The task wrote files: bump each output's version epoch, eagerly drop
    // every now-stale cached copy on other nodes, mark the home storage
    // copy dirty until the replica manager flushes it, and make the writer
    // hold the new version. Eviction for a pure output (not read by the
    // task) pins the task's inputs AND outputs — an extension of the
    // paper's "one task's files fit on one node" assumption.
    std::vector<wl::FileId> pinned = info.files;
    pinned.insert(pinned.end(), info.outputs.begin(), info.outputs.end());
    for (wl::FileId f : info.outputs) {
      const double size = workload_.file_size(f);
      ++epoch_[f];
      // Copy the holder list: remove() mutates the inverted index.
      const std::vector<wl::NodeId> stale = state_.holders(f);
      for (wl::NodeId j : stale) {
        if (j == node) continue;
        state_.remove(j, f, size);
        ++stats.replicas_invalidated;
        if (options_.trace)
          trace_.push_back({TraceEvent::Kind::kReplicaInvalidate, task, f,
                            node, j, completion, completion});
      }
      home_valid_[f] = 0;
      if (state_.has(node, f)) {
        state_.touch(node, f, completion);
      } else {
        evict_for(node, size - state_.free_bytes(node), pinned, stats);
        state_.add(node, f, size, completion);
      }
    }
  }
  executed_[task] = true;
  completion_time_[task] = completion;
  ++stats.tasks_executed;
  makespan_ = std::max(makespan_, completion);
}

wl::NodeId ExecutionEngine::find_speculation_target(wl::TaskId task,
                                                    wl::NodeId primary) const {
  const SpeculationConfig& spec = options_.speculation;
  const auto& info = workload_.task(task);
  // A task with outputs never speculates: first-finish-wins finalizes the
  // winner's writes (invalidating the loser's staged copies) BEFORE the
  // loser's rollback runs, which would double-remove those cache entries —
  // and duplicated writes would double-bump version epochs.
  if (!info.outputs.empty()) return wl::kInvalidNode;
  wl::NodeId best = wl::kInvalidNode;
  double best_est = kInfTime;
  for (wl::NodeId j = 0; j < cluster_.num_compute_nodes; ++j) {
    if (j == primary || !alive_[j]) continue;
    std::size_t cached = 0;
    for (wl::FileId f : info.files) cached += state_.has(j, f) ? 1 : 0;
    if (cached < spec.min_cached_inputs) continue;
    const double est = estimate_ect(task, j);
    // Strict < keeps the lowest node id on ties.
    if (est < best_est) {
      best_est = est;
      best = j;
    }
  }
  if (best == wl::kInvalidNode) return wl::kInvalidNode;
  const double est_primary = estimate_ect(task, primary);
  // Relative-progress trigger AND absolute-gain floor, both required.
  if (!(est_primary > spec.straggler_ratio * best_est)) return wl::kInvalidNode;
  if (!(est_primary - best_est >= spec.min_ect_gain_seconds))
    return wl::kInvalidNode;
  return best;
}

Result<bool> ExecutionEngine::speculative_commit(const SubBatchPlan& plan,
                                                 wl::TaskId task,
                                                 wl::NodeId primary,
                                                 wl::NodeId backup,
                                                 ExecutionStats& stats) {
  BSIO_CHECK(record_ == nullptr);
  --spec_remaining_;
  ++stats.speculative_launches;
  if (options_.trace) {
    const double h = compute_tl_[backup].horizon();
    trace_.push_back({TraceEvent::Kind::kSpeculativeLaunch, task,
                      wl::kInvalidFile, primary, backup, h, h});
  }

  // Both attempts are committed in sequence but their simulated windows
  // overlap: they reserve on the same shared timelines, so contention
  // between the duplicate's staging and everything else is priced.
  AttemptRecord prim, back;
  prim.node = primary;
  back.node = backup;

  prim.trace_begin = trace_.size();
  record_ = &prim;
  Result<bool> first = commit_task(plan, task, primary, prim.delta);
  record_ = nullptr;
  prim.trace_end = trace_.size();
  if (!first.ok()) {
    stats.accumulate(prim.delta);
    return first.error();
  }

  back.trace_begin = trace_.size();
  record_ = &back;
  Result<bool> second = commit_task(plan, task, backup, back.delta);
  record_ = nullptr;
  back.trace_end = trace_.size();
  if (!second.ok()) {
    stats.accumulate(prim.delta);
    stats.accumulate(back.delta);
    return second.error();
  }

  // First finish wins; an exact tie keeps the primary.
  AttemptRecord* winner = nullptr;
  if (prim.completed && back.completed)
    winner = back.completion < prim.completion ? &back : &prim;
  else if (prim.completed)
    winner = &prim;
  else if (back.completed)
    winner = &back;

  if (winner == nullptr) {
    // Both attempts died to node crashes: charge both in full, orphan the
    // task once for the driver's recovery loop.
    stats.accumulate(prim.delta);
    stats.accumulate(back.delta);
    ++stats.task_reexecutions;
    orphaned_.push_back(task);
    return false;
  }

  AttemptRecord* loser = winner == &prim ? &back : &prim;
  finalize_task(task, winner->node, winner->completion, stats);
  stats.accumulate(winner->delta);
  if (winner == &back) ++stats.speculative_wins;

  if (loser->crashed) {
    // The losing node really died mid-attempt: its partial work and cache
    // loss already happened, so the delta is charged in full — nothing to
    // roll back.
    stats.accumulate(loser->delta);
  } else {
    cancel_attempt(task, winner->node, *loser, winner->completion, stats);
  }
  return true;
}

void ExecutionEngine::cancel_attempt(wl::TaskId task, wl::NodeId winner_node,
                                     AttemptRecord& rec, double winner_end,
                                     ExecutionStats& stats) {
  ++stats.speculative_cancels;

  // Staged files that only became usable after the cancellation instant
  // never existed as replicas: drop them from the cache and back their
  // transfer out of the counters, charging the pro-rated in-flight bytes
  // as waste. Files that arrived before `winner_end` stay — the copy
  // completed, the node legitimately holds a replica. Evictions performed
  // for the attempt are NOT restored (deleted bytes cannot be un-deleted),
  // and neither are replica-source touches (the partial read happened).
  ExecutionStats delta = rec.delta;
  for (const AttemptRecord::Staged& s : rec.staged) {
    if (s.avail <= winner_end) continue;
    if (s.remote) {
      --delta.remote_transfers;
      delta.remote_bytes -= s.size;
    } else {
      --delta.replications;
      delta.replica_bytes -= s.size;
    }
    if (s.restaged) --delta.restages;
    if (s.start < winner_end)
      stats.wasted_bytes +=
          s.size * (winner_end - s.start) / (s.avail - s.start);
    state_.remove(rec.node, s.file, s.size);
  }
  stats.accumulate(delta);

  // Reservation rollback: hand back everything that had not started at the
  // cut, truncate what was in flight. Elapsed occupancy of the losing
  // node's own timeline is the duplicate's burnt compute/port time.
  for (auto& [tl, iv] : rec.reservations) {
    const bool loser_compute = tl == &compute_tl_[rec.node];
    if (iv.start >= winner_end) {
      tl->release(iv.start, iv.end);
    } else if (iv.end > winner_end) {
      tl->truncate(iv.start, winner_end);
      if (loser_compute) stats.wasted_seconds += winner_end - iv.start;
    } else if (loser_compute) {
      stats.wasted_seconds += iv.end - iv.start;
    }
  }

  if (options_.trace) {
    // Rewrite the loser's trace range the same way: events that never
    // started vanish, in-flight ones are cut at the cancellation instant.
    std::size_t w = rec.trace_begin;
    for (std::size_t i = rec.trace_begin; i < rec.trace_end; ++i) {
      TraceEvent e = trace_[i];
      if (e.start >= winner_end) continue;
      if (e.end > winner_end) e.end = winner_end;
      trace_[w++] = e;
    }
    trace_.erase(trace_.begin() + static_cast<std::ptrdiff_t>(w),
                 trace_.begin() + static_cast<std::ptrdiff_t>(rec.trace_end));
    trace_.push_back({TraceEvent::Kind::kSpeculativeCancel, task,
                      wl::kInvalidFile, winner_node, rec.node, winner_end,
                      rec.completion});
  }
}

Result<ExecutionStats> ExecutionEngine::execute(const SubBatchPlan& plan) {
  // --- Recoverable plan validation, before any state mutates. ---
  for (const auto& [file, dst] : plan.prefetches) {
    if (file >= workload_.num_files())
      return Err("SubBatchPlan: prefetch names unknown file " +
                 std::to_string(file));
    if (dst >= cluster_.num_compute_nodes)
      return Err("SubBatchPlan: prefetch names invalid compute node " +
                 std::to_string(dst));
    if (!alive_[dst])
      return Err("SubBatchPlan: prefetch targets crashed compute node " +
                 std::to_string(dst));
  }
  if (!(plan.release_time >= 0.0))
    return Err("SubBatchPlan: release_time must be non-negative");
  for (wl::TaskId t : plan.tasks) {
    // Bounded by the engine's admitted-task watermark, not the workload's
    // size: tasks appended to a growable workload become plannable only
    // after admit_new_tasks().
    if (t >= executed_.size())
      return Err("SubBatchPlan: plan names unknown or un-admitted task " +
                 std::to_string(t));
    if (executed_[t])
      return Err("SubBatchPlan: task " + std::to_string(t) +
                 " was already executed");
    auto it = plan.assignment.find(t);
    if (it == plan.assignment.end())
      return Err("SubBatchPlan: task " + std::to_string(t) +
                 " is missing an assignment");
    if (it->second >= cluster_.num_compute_nodes)
      return Err("SubBatchPlan: task " + std::to_string(t) +
                 " is assigned to invalid compute node " +
                 std::to_string(it->second));
    if (!alive_[it->second])
      return Err("SubBatchPlan: task " + std::to_string(t) +
                 " is assigned to crashed compute node " +
                 std::to_string(it->second));
  }

  started_ = true;  // warm seeding (seed_cache) is closed from here on
  release_floor_ = plan.release_time;
  ExecutionStats stats;

  // Proactive replications (Data Least Loaded) before task scheduling.
  for (const auto& [file, dst] : plan.prefetches) {
    if (state_.has(dst, file)) continue;
    const double size = workload_.file_size(file);
    const double after = std::max(compute_tl_[dst].horizon(), release_floor_);
    evict_for(dst, size - state_.free_bytes(dst), {file}, stats);
    Result<TransferChoice> c = commit_transfer(
        plan, wl::kInvalidTask, file, dst, after,
        /*touch_replica_source=*/false, stats);
    if (!c.ok()) {
      totals_.accumulate(stats);
      return c.error();
    }
    state_.add(dst, file, size, c.value().completion());
  }

  std::vector<std::vector<wl::TaskId>> groups(cluster_.num_compute_nodes);
  for (wl::TaskId t : plan.tasks) groups[plan.assignment.at(t)].push_back(t);

  // Serve the group whose node frees up first (equivalently: whenever a
  // node finishes, it picks its next task by earliest completion time).
  // Selection runs off a lazily-revalidated min-heap of (horizon, node) —
  // O(log K) per event instead of scanning all K groups, which dominated
  // at 1k nodes. (horizon, node) ordering ties to the lower node id,
  // exactly the historical linear scan's tie-break. Entries go stale when
  // a commit moves ANOTHER node's horizon (replica sources gain port
  // reservations), so each pop is checked against the live horizon and
  // re-pushed when it grew. The one path that can LOWER a horizon —
  // speculation cancelling the losing attempt — is handled by re-pushing
  // every non-empty group fresh after a speculative commit.
  using HeapEntry = std::pair<double, wl::NodeId>;
  std::priority_queue<HeapEntry, std::vector<HeapEntry>,
                      std::greater<HeapEntry>>
      ready;
  for (wl::NodeId n = 0; n < groups.size(); ++n)
    if (!groups[n].empty()) ready.push({compute_tl_[n].horizon(), n});

  std::size_t left = plan.tasks.size();
  while (left > 0) {
    BSIO_CHECK(!ready.empty());
    const auto [h, node] = ready.top();
    ready.pop();
    if (groups[node].empty()) continue;  // drained or crash-orphaned
    if (h != compute_tl_[node].horizon()) {
      ready.push({compute_tl_[node].horizon(), node});  // stale: revalidate
      continue;
    }

    auto& group = groups[node];
    std::size_t best_i = 0;
    double best_ect = kInfTime;
    for (std::size_t i = 0; i < group.size(); ++i) {
      double ect = estimate_ect(group[i], node);
      if (ect < best_ect) {
        best_ect = ect;
        best_i = i;
      }
    }
    wl::TaskId task = group[best_i];
    group.erase(group.begin() + best_i);
    --left;

    // Straggler check: duplicate the task onto a cached backup when the
    // assigned node's estimate lags far enough and budget remains.
    wl::NodeId backup = wl::kInvalidNode;
    if (options_.speculation.enabled && spec_remaining_ > 0)
      backup = find_speculation_target(task, node);

    if (backup == wl::kInvalidNode) {
      Result<bool> done = commit_task(plan, task, node, stats);
      if (!done.ok()) {
        totals_.accumulate(stats);
        return done.error();
      }
      if (!done.value()) {
        // The node crashed killing `task`: orphan it for the driver's
        // re-scheduling loop.
        ++stats.task_reexecutions;
        orphaned_.push_back(task);
      }
    } else {
      Result<bool> done = speculative_commit(plan, task, node, backup, stats);
      if (!done.ok()) {
        totals_.accumulate(stats);
        return done.error();
      }
      // On a double crash speculative_commit already orphaned the task.
    }

    // Queued siblings of any node that died during this commit are
    // orphaned too.
    for (wl::NodeId n : {node, backup}) {
      if (n == wl::kInvalidNode || alive_[n]) continue;
      for (wl::TaskId t : groups[n]) orphaned_.push_back(t);
      left -= groups[n].size();
      groups[n].clear();
    }

    if (backup == wl::kInvalidNode) {
      if (!group.empty()) ready.push({compute_tl_[node].horizon(), node});
    } else {
      // A cancelled attempt may have truncated the loser's timeline below
      // entries already in the heap; refresh everything still pending.
      for (wl::NodeId n = 0; n < groups.size(); ++n)
        if (!groups[n].empty()) ready.push({compute_tl_[n].horizon(), n});
    }
  }

  totals_.accumulate(stats);
  return stats;
}

Status ExecutionEngine::admit_new_tasks() {
  if (workload_.num_files() != pending_requests_.size())
    return Err("admit_new_tasks: the file catalogue changed size; the "
               "growable stream workload keeps files fixed and only appends "
               "tasks");
  const std::size_t old_count = executed_.size();
  if (workload_.num_tasks() < old_count)
    return Err("admit_new_tasks: the workload shrank below the admitted "
               "task count");
  for (std::size_t t = old_count; t < workload_.num_tasks(); ++t)
    for (wl::FileId f : workload_.task(static_cast<wl::TaskId>(t)).files)
      pending_requests_[f] += 1.0;
  executed_.resize(workload_.num_tasks(), false);
  completion_time_.resize(workload_.num_tasks(), 0.0);
  return OkStatus();
}

Result<double> ExecutionEngine::stage_replica(wl::FileId file, wl::NodeId dst,
                                              double after,
                                              double bandwidth_cap) {
  if (file >= workload_.num_files())
    return Err("stage_replica: unknown file " + std::to_string(file));
  if (dst >= cluster_.num_compute_nodes)
    return Err("stage_replica: invalid compute node " + std::to_string(dst));
  if (!alive_[dst])
    return Err("stage_replica: destination node " + std::to_string(dst) +
               " has crashed");
  if (state_.has(dst, file))
    return Err("stage_replica: node " + std::to_string(dst) +
               " already holds file " + std::to_string(file));
  if (!(after >= 0.0))
    return Err("stage_replica: start floor must be non-negative");
  const double size = workload_.file_size(file);
  if (state_.free_bytes(dst) < size)
    return Err("stage_replica: no free space on node " + std::to_string(dst) +
               " (background repair never evicts)");

  const auto capped = [&](double path_bw) {
    return bandwidth_cap > 0.0 ? std::min(path_bw, bandwidth_cap) : path_bw;
  };

  // Candidate sources: the home storage copy while valid, plus every alive
  // current holder. Same rule as foreground staging: earliest completion
  // wins, ties keep the lowest replica source id, replica over remote on
  // exact ties.
  TransferChoice best;
  bool found = false;
  if (home_valid_[file] != 0) {
    best.remote = true;
    best.src = workload_.file(file).home_storage_node;
    best.path = topo_.remote_path(best.src, dst);
    best.duration = size / capped(best.path.bandwidth);
    std::vector<Timeline*> tls{&storage_tl_[best.src]};
    for (std::uint32_t l = 0; l < best.path.num_links; ++l)
      tls.push_back(&link_tl_[best.path.links[l]]);
    tls.push_back(&compute_tl_[dst]);
    best.start = earliest_common_free(tls, after, best.duration);
    found = true;
  }
  for (wl::NodeId j : state_.holders(file)) {
    if (j == dst || !alive_[j]) continue;
    TransferChoice c;
    c.remote = false;
    c.src = j;
    c.path = topo_.replica_path(j, dst);
    c.duration = size / capped(c.path.bandwidth);
    std::vector<Timeline*> tls{&compute_tl_[j]};
    for (std::uint32_t l = 0; l < c.path.num_links; ++l)
      tls.push_back(&link_tl_[c.path.links[l]]);
    tls.push_back(&compute_tl_[dst]);
    c.start = earliest_common_free(
        tls, std::max(after, state_.available_at(j, file)), c.duration);
    if (c.completion() > faults_.crash_time(j)) continue;
    if (!found || c.completion() < best.completion() - 1e-12 ||
        (c.completion() < best.completion() + 1e-12 &&
         (best.remote || c.src < best.src))) {
      best = c;
      found = true;
    }
  }
  if (!found)
    return Err("stage_replica: no valid source for file " +
               std::to_string(file) +
               " (home copy stale and no current holder)");
  if (best.completion() > faults_.crash_time(dst))
    return Err("stage_replica: destination node " + std::to_string(dst) +
               " crashes before the copy completes");

  if (best.remote)
    storage_tl_[best.src].reserve(best.start, best.duration);
  else
    compute_tl_[best.src].reserve(best.start, best.duration);
  for (std::uint32_t l = 0; l < best.path.num_links; ++l)
    link_tl_[best.path.links[l]].reserve(best.start, best.duration);
  compute_tl_[dst].reserve(best.start, best.duration);
  state_.add(dst, file, size, best.completion());

  ++totals_.replicas_created;
  totals_.repair_bytes += size;
  totals_.repair_seconds += best.duration;
  if (options_.trace)
    trace_.push_back({TraceEvent::Kind::kReplicaCreate, wl::kInvalidTask, file,
                      best.src, dst, best.start, best.completion()});
  return best.completion();
}

Result<double> ExecutionEngine::flush_to_home(wl::FileId file, double after,
                                              double bandwidth_cap) {
  if (file >= workload_.num_files())
    return Err("flush_to_home: unknown file " + std::to_string(file));
  if (home_valid_[file] != 0)
    return Err("flush_to_home: the home copy of file " + std::to_string(file) +
               " is already current");
  if (!(after >= 0.0))
    return Err("flush_to_home: start floor must be non-negative");

  const double size = workload_.file_size(file);
  const wl::NodeId home = workload_.file(file).home_storage_node;
  const auto capped = [&](double path_bw) {
    return bandwidth_cap > 0.0 ? std::min(path_bw, bandwidth_cap) : path_bw;
  };

  // Best alive holder of the current version; the write-back reuses the
  // remote path's pricing in reverse (link bandwidths are symmetric).
  wl::NodeId src = wl::kInvalidNode;
  TransferPath path;
  double start = 0.0;
  double duration = 0.0;
  for (wl::NodeId j : state_.holders(file)) {
    if (!alive_[j]) continue;
    const TransferPath p = topo_.remote_path(home, j);
    const double d = size / capped(p.bandwidth);
    std::vector<Timeline*> tls{&compute_tl_[j]};
    for (std::uint32_t l = 0; l < p.num_links; ++l)
      tls.push_back(&link_tl_[p.links[l]]);
    tls.push_back(&storage_tl_[home]);
    const double s = earliest_common_free(
        tls, std::max(after, state_.available_at(j, file)), d);
    if (s + d > faults_.crash_time(j)) continue;
    if (src == wl::kInvalidNode || s + d < start + duration - 1e-12 ||
        (s + d < start + duration + 1e-12 && j < src)) {
      src = j;
      path = p;
      start = s;
      duration = d;
    }
  }
  if (src == wl::kInvalidNode)
    return Err("flush_to_home: no alive node holds the current version of "
               "file " +
               std::to_string(file) + " (the newest write is lost)");

  compute_tl_[src].reserve(start, duration);
  for (std::uint32_t l = 0; l < path.num_links; ++l)
    link_tl_[path.links[l]].reserve(start, duration);
  storage_tl_[home].reserve(start, duration);
  home_valid_[file] = 1;

  ++totals_.home_flushes;
  totals_.repair_bytes += size;
  totals_.repair_seconds += duration;
  if (options_.trace)
    trace_.push_back({TraceEvent::Kind::kReplicaCreate, wl::kInvalidTask, file,
                      src, home, start, start + duration});
  return start + duration;
}

std::vector<wl::TaskId> ExecutionEngine::take_orphaned() {
  std::vector<wl::TaskId> out;
  out.swap(orphaned_);
  return out;
}

std::size_t ExecutionEngine::alive_count() const {
  std::size_t n = 0;
  for (char a : alive_) n += a != 0;
  return n;
}

std::string trace_to_csv(const std::vector<TraceEvent>& trace) {
  std::vector<TraceEvent> sorted = trace;
  std::sort(sorted.begin(), sorted.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              if (a.start != b.start) return a.start < b.start;
              return a.end < b.end;
            });
  std::string out = "kind,task,file,src,dst,start,end\n";
  char buf[160];
  for (const auto& e : sorted) {
    const char* kind = "exec";
    switch (e.kind) {
      case TraceEvent::Kind::kRemoteTransfer:
        kind = "remote";
        break;
      case TraceEvent::Kind::kReplication:
        kind = "replica";
        break;
      case TraceEvent::Kind::kFailedTransfer:
        kind = "failed";
        break;
      case TraceEvent::Kind::kExec:
        kind = "exec";
        break;
      case TraceEvent::Kind::kSpeculativeLaunch:
        kind = "spec_launch";
        break;
      case TraceEvent::Kind::kSpeculativeCancel:
        kind = "spec_cancel";
        break;
      case TraceEvent::Kind::kReplicaCreate:
        kind = "replica_create";
        break;
      case TraceEvent::Kind::kReplicaInvalidate:
        kind = "replica_invalidate";
        break;
    }
    auto id = [](auto v) {
      return v == static_cast<decltype(v)>(-1) ? -1L : static_cast<long>(v);
    };
    std::snprintf(buf, sizeof(buf), "%s,%ld,%ld,%ld,%ld,%.6f,%.6f\n", kind,
                  id(e.task), id(e.file), id(e.src), id(e.dst), e.start,
                  e.end);
    out += buf;
  }
  return out;
}

std::vector<double> ExecutionEngine::completed_task_times() const {
  std::vector<double> out;
  // executed_.size(), not workload_.num_tasks(): appended-but-unadmitted
  // tasks have no completion slot yet.
  for (wl::TaskId t = 0; t < executed_.size(); ++t)
    if (executed_[t]) out.push_back(completion_time_[t]);
  return out;
}

std::vector<double> ExecutionEngine::compute_busy_times() const {
  std::vector<double> out;
  out.reserve(compute_tl_.size());
  for (const auto& tl : compute_tl_) out.push_back(tl.busy_time());
  return out;
}

}  // namespace bsio::sim
