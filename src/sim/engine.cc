#include "sim/engine.h"

#include <algorithm>
#include <cstdio>
#include <string>
#include <limits>
#include <unordered_set>

#include "util/check.h"

namespace bsio::sim {

namespace {
constexpr double kInfTime = std::numeric_limits<double>::infinity();
}

void ExecutionStats::accumulate(const ExecutionStats& o) {
  tasks_executed += o.tasks_executed;
  remote_transfers += o.remote_transfers;
  replications += o.replications;
  evictions += o.evictions;
  restages += o.restages;
  cache_hits += o.cache_hits;
  remote_bytes += o.remote_bytes;
  replica_bytes += o.replica_bytes;
}

ExecutionEngine::ExecutionEngine(const ClusterConfig& cluster,
                                 const wl::Workload& workload,
                                 EngineOptions options)
    : cluster_(cluster),
      workload_(workload),
      options_(options),
      storage_tl_(cluster.num_storage_nodes),
      compute_tl_(cluster.num_compute_nodes),
      has_uplink_(cluster.shared_uplink_bw > 0.0),
      state_([&] {
        std::vector<double> caps(cluster.num_compute_nodes);
        for (std::size_t i = 0; i < caps.size(); ++i)
          caps[i] = cluster.node_disk_capacity(i);
        return caps;
      }()),
      pending_requests_(workload.num_files(), 0.0),
      executed_(workload.num_tasks(), false),
      was_evicted_(workload.num_files(), false) {
  cluster.validate();
  for (const auto& f : workload.files())
    BSIO_CHECK_MSG(
        f.home_storage_node < cluster.num_storage_nodes,
        "workload was generated for more storage nodes than the cluster has");
  for (const auto& t : workload.tasks())
    for (wl::FileId f : t.files) pending_requests_[f] += 1.0;
}

ExecutionEngine::TransferChoice ExecutionEngine::best_transfer(
    const SubBatchPlan& plan, wl::FileId file, wl::NodeId dst,
    double after) const {
  const double size = workload_.file_size(file);

  auto remote_choice = [&]() {
    TransferChoice c;
    c.remote = true;
    c.src = workload_.file(file).home_storage_node;
    BSIO_CHECK_MSG(c.src < cluster_.num_storage_nodes,
                   "file home storage node out of range for this cluster");
    c.duration = size / cluster_.remote_bw();
    std::vector<const Timeline*> tls{&storage_tl_[c.src],
                                     has_uplink_ ? &uplink_tl_ : nullptr,
                                     &compute_tl_[dst]};
    c.start = earliest_common_free(tls, after, c.duration);
    return c;
  };

  auto replica_choice = [&](wl::NodeId j) {
    TransferChoice c;
    c.remote = false;
    c.src = j;
    c.duration = size / cluster_.replica_bw();
    const double avail = state_.available_at(j, file);
    std::vector<const Timeline*> tls{&compute_tl_[j], &compute_tl_[dst]};
    c.start = earliest_common_free(tls, std::max(after, avail), c.duration);
    return c;
  };

  // A fixed staging directive (IP plan) short-circuits the dynamic rule,
  // unless it has gone stale (replica source no longer holds the file).
  auto it = plan.staging.find({file, dst});
  if (it != plan.staging.end()) {
    const StagingSource& s = it->second;
    if (s.kind == SourceKind::kRemote) return remote_choice();
    if (cluster_.allow_replication && s.src_node != dst &&
        s.src_node < cluster_.num_compute_nodes &&
        state_.has(s.src_node, file))
      return replica_choice(s.src_node);
  }

  TransferChoice best = remote_choice();
  if (cluster_.allow_replication) {
    for (wl::NodeId j : state_.holders(file)) {
      if (j == dst) continue;
      TransferChoice c = replica_choice(j);
      // Strictly-better completion wins; ties keep the replica with the
      // lowest source id, preferring replicas over remote (less storage
      // contention) on exact ties.
      if (c.completion() < best.completion() - 1e-12 ||
          (c.completion() < best.completion() + 1e-12 &&
           (best.remote || c.src < best.src)))
        best = c;
    }
  }
  return best;
}

double ExecutionEngine::estimate_ect(wl::TaskId task, wl::NodeId node) const {
  const auto& info = workload_.task(task);
  double cursor = compute_tl_[node].horizon();
  double read_bytes = 0.0;
  for (wl::FileId f : info.files) {
    read_bytes += workload_.file_size(f);
    if (state_.has(node, f)) continue;
    const double size = workload_.file_size(f);
    // Horizon-based estimate: cheap, mutation-free, consistent across
    // candidates (used only for ranking).
    const wl::NodeId home = workload_.file(f).home_storage_node;
    double src_ready = storage_tl_[home].horizon();
    if (has_uplink_) src_ready = std::max(src_ready, uplink_tl_.horizon());
    double best = std::max(cursor, src_ready) + size / cluster_.remote_bw();
    if (cluster_.allow_replication) {
      for (wl::NodeId j : state_.holders(f)) {
        if (j == node) continue;
        double start = std::max({cursor, compute_tl_[j].horizon(),
                                 state_.available_at(j, f)});
        best = std::min(best, start + size / cluster_.replica_bw());
      }
    }
    cursor = best;
  }
  return cursor + read_bytes / cluster_.local_disk_bw + info.compute_seconds;
}

void ExecutionEngine::evict_for(wl::NodeId node, double need,
                                const std::vector<wl::FileId>& pinned,
                                ExecutionStats& stats) {
  if (need <= 0.0) return;
  auto victims = state_.select_victims(
      node, need, pinned, options_.eviction,
      [this](wl::FileId f) { return pending_requests_[f]; },
      [this](wl::FileId f) { return workload_.file_size(f); });
  BSIO_CHECK_MSG(!victims.empty(),
                 "cannot free disk space: a single task's files must fit on "
                 "one compute node (paper Section 4.2 assumption)");
  for (wl::FileId v : victims) {
    state_.remove(node, v, workload_.file_size(v));
    was_evicted_[v] = true;
    ++stats.evictions;
  }
}

double ExecutionEngine::commit_task(const SubBatchPlan& plan, wl::TaskId task,
                                    wl::NodeId node, ExecutionStats& stats) {
  const auto& info = workload_.task(task);
  const std::vector<wl::FileId>& pinned = info.files;

  std::vector<wl::FileId> missing;
  double read_bytes = 0.0;
  for (wl::FileId f : info.files) {
    read_bytes += workload_.file_size(f);
    if (state_.has(node, f))
      ++stats.cache_hits;
    else
      missing.push_back(f);
  }

  double last_end = compute_tl_[node].horizon();
  std::vector<wl::FileId> remaining = missing;
  while (!remaining.empty()) {
    // Greedy minimum-TCT-first staging (paper Section 6): evaluate every
    // remaining file against the current Gantt state, commit the earliest.
    std::size_t best_i = 0;
    TransferChoice best;
    double best_tct = kInfTime;
    const double after = compute_tl_[node].horizon();
    for (std::size_t i = 0; i < remaining.size(); ++i) {
      TransferChoice c = best_transfer(plan, remaining[i], node, after);
      if (c.completion() < best_tct) {
        best_tct = c.completion();
        best = c;
        best_i = i;
      }
    }
    const wl::FileId file = remaining[best_i];
    const double size = workload_.file_size(file);

    // Disk admission on the destination (temporally safe: the reservation
    // starts at or after the node horizon, and every resident file's last
    // reference ends at or before the horizon).
    evict_for(node, size - state_.free_bytes(node), pinned, stats);

    if (best.remote) {
      storage_tl_[best.src].reserve(best.start, best.duration);
      if (has_uplink_) uplink_tl_.reserve(best.start, best.duration);
      ++stats.remote_transfers;
      stats.remote_bytes += size;
    } else {
      compute_tl_[best.src].reserve(best.start, best.duration);
      state_.touch(best.src, file, best.completion());
      ++stats.replications;
      stats.replica_bytes += size;
    }
    compute_tl_[node].reserve(best.start, best.duration);
    if (was_evicted_[file]) ++stats.restages;
    if (options_.trace)
      trace_.push_back({best.remote ? TraceEvent::Kind::kRemoteTransfer
                                    : TraceEvent::Kind::kReplication,
                        task, file, best.src, node, best.start,
                        best.completion()});
    state_.add(node, file, size, best.completion());
    last_end = std::max(last_end, best.completion());
    remaining.erase(remaining.begin() + best_i);
  }

  // Local read + computation, serialized on the node after the last input
  // file arrives.
  const double exec_dur =
      read_bytes / cluster_.local_disk_bw + info.compute_seconds;
  const double start = compute_tl_[node].earliest_free(last_end, exec_dur);
  compute_tl_[node].reserve(start, exec_dur);
  const double completion = start + exec_dur;
  if (options_.trace)
    trace_.push_back({TraceEvent::Kind::kExec, task, wl::kInvalidFile,
                      wl::kInvalidNode, node, start, completion});

  for (wl::FileId f : info.files) {
    state_.touch(node, f, completion);
    pending_requests_[f] -= 1.0;
  }
  executed_[task] = true;
  ++stats.tasks_executed;
  makespan_ = std::max(makespan_, completion);
  return completion;
}

ExecutionStats ExecutionEngine::execute(const SubBatchPlan& plan) {
  ExecutionStats stats;

  // Proactive replications (Data Least Loaded) before task scheduling.
  for (const auto& [file, dst] : plan.prefetches) {
    BSIO_CHECK(dst < cluster_.num_compute_nodes);
    if (state_.has(dst, file)) continue;
    const double size = workload_.file_size(file);
    TransferChoice c =
        best_transfer(plan, file, dst, compute_tl_[dst].horizon());
    evict_for(dst, size - state_.free_bytes(dst), {file}, stats);
    if (c.remote) {
      storage_tl_[c.src].reserve(c.start, c.duration);
      if (has_uplink_) uplink_tl_.reserve(c.start, c.duration);
      ++stats.remote_transfers;
      stats.remote_bytes += size;
    } else {
      compute_tl_[c.src].reserve(c.start, c.duration);
      ++stats.replications;
      stats.replica_bytes += size;
    }
    compute_tl_[dst].reserve(c.start, c.duration);
    if (was_evicted_[file]) ++stats.restages;
    if (options_.trace)
      trace_.push_back({c.remote ? TraceEvent::Kind::kRemoteTransfer
                                 : TraceEvent::Kind::kReplication,
                        wl::kInvalidTask, file, c.src, dst, c.start,
                        c.completion()});
    state_.add(dst, file, size, c.completion());
  }

  std::vector<std::vector<wl::TaskId>> groups(cluster_.num_compute_nodes);
  for (wl::TaskId t : plan.tasks) {
    BSIO_CHECK_MSG(t < workload_.num_tasks(), "plan names unknown task");
    BSIO_CHECK_MSG(!executed_[t], "plan re-executes a task");
    auto it = plan.assignment.find(t);
    BSIO_CHECK_MSG(it != plan.assignment.end(), "task missing an assignment");
    BSIO_CHECK_MSG(it->second < cluster_.num_compute_nodes,
                   "assignment names an invalid compute node");
    groups[it->second].push_back(t);
  }

  std::size_t left = plan.tasks.size();
  while (left > 0) {
    // Serve the group whose node frees up first (equivalently: whenever a
    // node finishes, it picks its next task by earliest completion time).
    wl::NodeId node = wl::kInvalidNode;
    double best_h = kInfTime;
    for (wl::NodeId n = 0; n < groups.size(); ++n) {
      if (groups[n].empty()) continue;
      double h = compute_tl_[n].horizon();
      if (h < best_h) {
        best_h = h;
        node = n;
      }
    }
    BSIO_CHECK(node != wl::kInvalidNode);

    auto& group = groups[node];
    std::size_t best_i = 0;
    double best_ect = kInfTime;
    for (std::size_t i = 0; i < group.size(); ++i) {
      double ect = estimate_ect(group[i], node);
      if (ect < best_ect) {
        best_ect = ect;
        best_i = i;
      }
    }
    wl::TaskId task = group[best_i];
    group.erase(group.begin() + best_i);
    commit_task(plan, task, node, stats);
    --left;
  }

  totals_.accumulate(stats);
  return stats;
}

std::string trace_to_csv(const std::vector<TraceEvent>& trace) {
  std::vector<TraceEvent> sorted = trace;
  std::sort(sorted.begin(), sorted.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              if (a.start != b.start) return a.start < b.start;
              return a.end < b.end;
            });
  std::string out = "kind,task,file,src,dst,start,end\n";
  char buf[160];
  for (const auto& e : sorted) {
    const char* kind = e.kind == TraceEvent::Kind::kRemoteTransfer
                           ? "remote"
                           : e.kind == TraceEvent::Kind::kReplication
                                 ? "replica"
                                 : "exec";
    auto id = [](auto v) {
      return v == static_cast<decltype(v)>(-1) ? -1L : static_cast<long>(v);
    };
    std::snprintf(buf, sizeof(buf), "%s,%ld,%ld,%ld,%ld,%.6f,%.6f\n", kind,
                  id(e.task), id(e.file), id(e.src), id(e.dst), e.start,
                  e.end);
    out += buf;
  }
  return out;
}

std::vector<double> ExecutionEngine::compute_busy_times() const {
  std::vector<double> out;
  out.reserve(compute_tl_.size());
  for (const auto& tl : compute_tl_) out.push_back(tl.busy_time());
  return out;
}

}  // namespace bsio::sim
