// Cluster disk-cache state: which compute node holds which file, from when,
// and the eviction machinery (paper Sections 4.3 and the LRU variant of
// [13]).
//
// A holder entry carries the simulated time the copy becomes available
// (the end of the transfer that created it) so replica-source selection
// never reads a file before it exists. Eviction is temporally safe by
// construction — see the engine's commit discipline.
#pragma once

#include <functional>
#include <unordered_map>
#include <vector>

#include "util/check.h"
#include "workload/types.h"

namespace bsio::sim {

enum class EvictionPolicy {
  kPopularity,     // Eq. 22: AccessFreq * size / NumCopies, lowest first
  kLru,            // least recently used first ([13]'s mechanism)
  kSizeAscending,  // smallest file first (ablation)
};

class ClusterState;

// A portable cache snapshot: the warm-start contract between batch runs.
//
// The online service (src/service) runs batches back to back on one
// cluster; the files a batch leaves cached are the next batch's head
// start. An InitialCacheState carries exactly the per-(node, file) entries
// of a ClusterState — including the availability and last-use stamps, so a
// seeded engine reproduces the source engine's cache bit for bit (the
// warm-start golden differential in tests/service_test.cc relies on this).
// Entries are kept sorted by (node, file) so captures are deterministic
// regardless of hash-map iteration order.
struct CacheSeedEntry {
  wl::NodeId node = wl::kInvalidNode;
  wl::FileId file = wl::kInvalidFile;
  double avail_time = 0.0;  // when the copy becomes readable
  double last_use = 0.0;    // LRU stamp carried from the source run
};

struct InitialCacheState {
  std::vector<CacheSeedEntry> entries;  // sorted by (node, file)

  bool empty() const { return entries.empty(); }
  // True if some entry names `file` (on any node).
  bool contains(wl::FileId file) const;

  // Snapshot of every cached copy in `state`, sorted by (node, file).
  static InitialCacheState capture(const ClusterState& state);

  // The service's inter-batch rebase: the previous batch has fully drained,
  // so every carried copy is resident from the next batch's time origin
  // (avail_time 0) and the last-use stamps shift to non-positive values
  // that preserve their relative order — anything the new batch touches
  // (stamps >= 0) is younger than every carried-but-untouched file.
  InitialCacheState rebased() const;
};

class ClusterState {
 public:
  // Uniform capacity on every node.
  ClusterState(std::size_t num_compute_nodes, double disk_capacity);
  // Heterogeneous per-node capacities (paper Eqs. 16/21's DiskSpace_i).
  explicit ClusterState(std::vector<double> capacities);

  std::size_t num_nodes() const { return caches_.size(); }
  double capacity(wl::NodeId node) const { return capacity_[node]; }

  bool has(wl::NodeId node, wl::FileId file) const;
  // Time the copy becomes readable; requires has().
  double available_at(wl::NodeId node, wl::FileId file) const;
  // LRU stamp of the copy; requires has(). Exposed for cache snapshots
  // (InitialCacheState::capture) and the cross-batch catalogue.
  double last_used_at(wl::NodeId node, wl::FileId file) const;

  // Compute nodes currently holding `file`, ascending (any availability
  // time). O(1): served from an inverted holder index maintained on every
  // cache mutation.
  const std::vector<wl::NodeId>& holders(wl::FileId file) const;
  std::size_t num_copies(wl::FileId file) const;

  double used_bytes(wl::NodeId node) const { return used_[node]; }
  double free_bytes(wl::NodeId node) const {
    return capacity_[node] - used_[node];
  }

  void add(wl::NodeId node, wl::FileId file, double size_bytes,
           double avail_time);
  // Like add(), but restores an explicit last-use stamp instead of coupling
  // it to avail_time — the snapshot-seeding path (InitialCacheState), where
  // rebased stamps may be negative while avail_time is 0.
  void restore(wl::NodeId node, wl::FileId file, double size_bytes,
               double avail_time, double last_use);
  void remove(wl::NodeId node, wl::FileId file, double size_bytes);
  // Drops every file cached on `node` (crash recovery); returns the bytes
  // lost.
  double clear_node(wl::NodeId node);
  // Updates the LRU stamp.
  void touch(wl::NodeId node, wl::FileId file, double time);

  // Victim selection on `node` to free at least `need_bytes`, never choosing
  // a pinned file. pending_freq(f) = number of still-unexecuted tasks that
  // request f (popularity numerator); file_size(f) in bytes. Returns the
  // victims in eviction order; empty result with need_bytes > 0 means the
  // space cannot be freed (caller decides how to fail).
  std::vector<wl::FileId> select_victims(
      wl::NodeId node, double need_bytes, const std::vector<wl::FileId>& pinned,
      EvictionPolicy policy,
      const std::function<double(wl::FileId)>& pending_freq,
      const std::function<double(wl::FileId)>& file_size) const;

  // All files cached on a node (unordered).
  std::vector<wl::FileId> files_on(wl::NodeId node) const;

 private:
  struct Entry {
    double avail_time = 0.0;
    double last_use = 0.0;
  };

  // Inverted-index maintenance shared by add/restore/remove/clear_node.
  void index_add(wl::NodeId node, wl::FileId file);
  void index_remove(wl::NodeId node, wl::FileId file);

  std::vector<double> capacity_;
  std::vector<std::unordered_map<wl::FileId, Entry>> caches_;
  std::vector<double> used_;
  // file -> sorted nodes caching it. Replica-source selection and the
  // popularity-eviction copy count query holders per candidate transfer;
  // without the index each query scans all K per-node maps — the dominant
  // quadratic term at 1k nodes.
  std::unordered_map<wl::FileId, std::vector<wl::NodeId>> holder_index_;
};

}  // namespace bsio::sim
