// Deterministic, seeded fault injection for the execution engine.
//
// Three failure classes, all replayable bit-for-bit from a single seed:
//
//  - Transient transfer failures: every transfer attempt fails with
//    probability transfer_failure_prob, decided by a stateless hash of
//    (seed, transfer index, attempt) so retries never perturb unrelated
//    draws. A failed attempt occupies its endpoint links for the full
//    transfer window (the failure is detected at the deadline — the
//    conservative single-port accounting), and the retry waits an
//    exponentially growing backoff before re-picking the then-best source.
//    The final allowed attempt always succeeds so simulations terminate
//    even at probability 1.
//
//  - Compute-node crashes: node fail-stops at the scheduled instant. The
//    first task whose execution block would run past the crash is killed
//    (its partial work up to the crash is charged on the node timeline),
//    the node's entire disk cache is lost, and the node accepts no further
//    work. Killed and never-started tasks of the node surface through
//    ExecutionEngine::take_orphaned() for driver-level re-scheduling.
//
//  - Storage-node outages: a storage node serves nothing during
//    [start, end). Realised as a pre-reserved window on the node's port
//    timeline, so remote transfers either wait the window out or the
//    engine's dynamic rule degrades to replica-only sourcing.
//
// A default-constructed FaultModel injects nothing and draws nothing: with
// faults disabled, every simulation reproduces the fault-free makespans
// exactly.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "sim/cluster.h"
#include "util/error.h"
#include "workload/types.h"

namespace bsio::sim {

struct ComputeCrash {
  wl::NodeId node = wl::kInvalidNode;
  double time = 0.0;  // fail-stop instant, simulated seconds
};

struct StorageOutage {
  wl::NodeId node = wl::kInvalidNode;
  double start = 0.0;
  double end = 0.0;  // half-open window [start, end)
};

struct FaultConfig {
  std::uint64_t seed = 0x5eedULL;
  // Per-attempt probability that a transfer (remote or replication) fails.
  double transfer_failure_prob = 0.0;
  // Attempts per transfer, counting the first; the last never fails.
  std::size_t max_transfer_attempts = 5;
  // Backoff after failed attempt k (0-based) is
  // retry_backoff_seconds * factor^k.
  double retry_backoff_seconds = 0.5;
  double retry_backoff_factor = 2.0;
  std::vector<ComputeCrash> compute_crashes;
  std::vector<StorageOutage> storage_outages;

  bool enabled() const {
    return transfer_failure_prob > 0.0 || !compute_crashes.empty() ||
           !storage_outages.empty();
  }

  // Recoverable validation against a cluster's shape (node-id ranges,
  // probability bounds, window sanity).
  Status validate(const ClusterConfig& cluster) const;
};

class FaultModel {
 public:
  FaultModel() = default;  // injects nothing
  // The config must already validate against the target cluster.
  explicit FaultModel(FaultConfig config, std::size_t num_compute_nodes,
                      std::size_t num_storage_nodes);

  const FaultConfig& config() const { return config_; }
  bool enabled() const { return config_.enabled(); }

  // Does attempt `attempt` (0-based) of the `transfer_index`-th committed
  // transfer fail? Stateless and deterministic; the last allowed attempt
  // never fails.
  bool transfer_attempt_fails(std::uint64_t transfer_index,
                              std::size_t attempt) const;

  // Backoff charged after failed attempt `attempt` (0-based).
  double backoff_after(std::size_t attempt) const;

  // Fail-stop time of a compute node; +infinity when none is scheduled.
  double crash_time(wl::NodeId node) const {
    return node < crash_time_.size()
               ? crash_time_[node]
               : std::numeric_limits<double>::infinity();
  }

  // Merged, sorted outage windows of a storage node.
  const std::vector<StorageOutage>& outages_of(wl::NodeId storage_node) const;

 private:
  FaultConfig config_;
  std::vector<double> crash_time_;                   // per compute node
  std::vector<std::vector<StorageOutage>> outages_;  // per storage node
};

}  // namespace bsio::sim
