// Deterministic, seeded fault injection for the execution engine.
//
// Three failure classes, all replayable bit-for-bit from a single seed:
//
//  - Transient transfer failures: every transfer attempt fails with
//    probability transfer_failure_prob, decided by a stateless hash of
//    (seed, transfer index, attempt) so retries never perturb unrelated
//    draws. A failed attempt occupies its endpoint links for the full
//    transfer window (the failure is detected at the deadline — the
//    conservative single-port accounting), and the retry waits an
//    exponentially growing backoff before re-picking the then-best source.
//    The final allowed attempt always succeeds so simulations terminate
//    even at probability 1.
//
//  - Compute-node crashes: node fail-stops at the scheduled instant. The
//    first task whose execution block would run past the crash is killed
//    (its partial work up to the crash is charged on the node timeline),
//    the node's entire disk cache is lost, and the node accepts no further
//    work. Killed and never-started tasks of the node surface through
//    ExecutionEngine::take_orphaned() for driver-level re-scheduling.
//
//  - Storage-node outages: a storage node serves nothing during
//    [start, end). Realised as a pre-reserved window on the node's port
//    timeline, so remote transfers either wait the window out or the
//    engine's dynamic rule degrades to replica-only sourcing.
//
//  - Compute-node slowdowns: a degraded-but-alive node executes task
//    blocks `factor`× slower inside a scheduled window (the progress model
//    behind straggler detection — planners stay blind to the degradation,
//    only the engine and its speculation trigger see it).
//
// A default-constructed FaultModel injects nothing and draws nothing: with
// faults disabled, every simulation reproduces the fault-free makespans
// exactly.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "sim/cluster.h"
#include "util/error.h"
#include "workload/types.h"

namespace bsio::sim {

struct ComputeCrash {
  wl::NodeId node = wl::kInvalidNode;
  double time = 0.0;  // fail-stop instant, simulated seconds
};

struct StorageOutage {
  wl::NodeId node = wl::kInvalidNode;
  double start = 0.0;
  double end = 0.0;  // half-open window [start, end)
};

// Degraded-but-alive compute node: execution inside [start, end) runs
// `factor`× slower (factor 1 is a no-op). Windows of one node must not
// overlap. Transfers are unaffected — only the local-read + compute block
// stretches, which is what makes the node a straggler rather than dead.
struct NodeSlowdown {
  wl::NodeId node = wl::kInvalidNode;
  double start = 0.0;
  double end = std::numeric_limits<double>::infinity();  // half-open
  double factor = 1.0;
};

struct FaultConfig {
  std::uint64_t seed = 0x5eedULL;
  // Per-attempt probability that a transfer (remote or replication) fails.
  double transfer_failure_prob = 0.0;
  // Attempts per transfer, counting the first. By default the last attempt
  // never fails (simulations terminate even at probability 1); with
  // give_up_after_max_attempts the last attempt draws its coin like any
  // other and exhausting all attempts surfaces a typed bsio::Error from
  // ExecutionEngine::execute instead of retrying forever.
  std::size_t max_transfer_attempts = 5;
  bool give_up_after_max_attempts = false;
  // Backoff after failed attempt k (0-based) is
  // min(retry_backoff_seconds * factor^k, max_backoff_seconds) — the clamp
  // keeps high attempt counts from pow-overflowing into absurd waits.
  double retry_backoff_seconds = 0.5;
  double retry_backoff_factor = 2.0;
  double max_backoff_seconds = 60.0;
  std::vector<ComputeCrash> compute_crashes;
  std::vector<StorageOutage> storage_outages;
  std::vector<NodeSlowdown> compute_slowdowns;

  bool enabled() const {
    return transfer_failure_prob > 0.0 || !compute_crashes.empty() ||
           !storage_outages.empty() || !compute_slowdowns.empty();
  }

  // Recoverable validation against a cluster's shape (node-id ranges,
  // probability bounds, window sanity).
  Status validate(const ClusterConfig& cluster) const;
};

// Speculative task replication (the engine's straggler mitigation; see
// DESIGN.md §10). When a task is about to start on a node whose estimated
// completion lags the best alternative, the engine launches a duplicate
// attempt on an alive node that already caches the task's inputs and keeps
// whichever attempt finishes first; the loser is cancelled and its not-yet-
// elapsed Timeline reservations and disk-space holds are released. Disabled
// by default: with `enabled == false` every simulation is bit-identical to
// the non-speculative engine.
struct SpeculationConfig {
  bool enabled = false;
  // Relative-progress trigger: duplicate only when the assigned node's
  // estimated completion exceeds straggler_ratio × the best cached-input
  // alternative's estimate.
  double straggler_ratio = 1.5;
  // ECT-threshold trigger: additionally require the estimated absolute win
  // (primary ECT − backup ECT, seconds) to reach this floor, filtering
  // near-ties where a duplicate mostly burns bandwidth.
  double min_ect_gain_seconds = 0.0;
  // Per-batch budget: at most this many duplicate launches per engine
  // lifetime (the online service derives a per-batch cap from it).
  std::size_t max_speculative_tasks =
      std::numeric_limits<std::size_t>::max();
  // A backup node qualifies only if it already caches at least this many of
  // the task's input files (0 = any alive node qualifies).
  std::size_t min_cached_inputs = 1;

  Status validate() const;
};

class FaultModel {
 public:
  FaultModel() = default;  // injects nothing
  // The config must already validate against the target cluster.
  explicit FaultModel(FaultConfig config, std::size_t num_compute_nodes,
                      std::size_t num_storage_nodes);

  const FaultConfig& config() const { return config_; }
  bool enabled() const { return config_.enabled(); }

  // Does attempt `attempt` (0-based) of the `transfer_index`-th committed
  // transfer fail? Stateless and deterministic; the last allowed attempt
  // never fails unless give_up_after_max_attempts is set.
  bool transfer_attempt_fails(std::uint64_t transfer_index,
                              std::size_t attempt) const;

  // Backoff charged after failed attempt `attempt` (0-based), clamped to
  // max_backoff_seconds.
  double backoff_after(std::size_t attempt) const;

  // Any degradation window with factor > 1 configured?
  bool has_slowdowns() const { return has_slowdowns_; }

  // Wall-clock duration of an execution block of `nominal` seconds starting
  // at `start` on `node`, walking the node's degradation windows piecewise
  // (work inside a window progresses at 1/factor speed). Returns `nominal`
  // exactly when the node has no windows.
  double stretched_exec_duration(wl::NodeId node, double start,
                                 double nominal) const;

  // Fail-stop time of a compute node; +infinity when none is scheduled.
  double crash_time(wl::NodeId node) const {
    return node < crash_time_.size()
               ? crash_time_[node]
               : std::numeric_limits<double>::infinity();
  }

  // Merged, sorted outage windows of a storage node.
  const std::vector<StorageOutage>& outages_of(wl::NodeId storage_node) const;

 private:
  FaultConfig config_;
  std::vector<double> crash_time_;                   // per compute node
  std::vector<std::vector<StorageOutage>> outages_;  // per storage node
  std::vector<std::vector<NodeSlowdown>> slowdowns_;  // per compute node
  bool has_slowdowns_ = false;
};

}  // namespace bsio::sim
