// Coupled compute + storage cluster model (paper Sections 2 and 7).
//
// The compute cluster executes tasks; the storage cluster initially holds
// every file. Transfers follow the paper's single-port model: a transfer
// occupies one port at each endpoint for its whole duration, and a compute
// node neither receives files nor serves replicas while a task executes on
// it (its port and CPU are one serialized resource, matching Eq. 12).
//
// Bandwidth model (Section 6): a remote transfer moves at
// min(storage disk BW, storage-compute network BW [, shared uplink BW]);
// a replication moves at the compute interconnect BW. Local-disk reads on a
// compute node (before a task runs) move at local_disk_bw.
//
// Presets mirror the paper's two testbeds: the OSC/XIO system (210 MB/s
// storage disks behind Infiniband) and the OSC/OSUMED system (18-25 MB/s
// storage disks behind a shared 100 Mbps link).
#pragma once

#include <cstddef>
#include <limits>
#include <string>
#include <vector>

#include "util/error.h"
#include "workload/types.h"

namespace bsio::sim {

inline constexpr double kMB = 1024.0 * 1024.0;
inline constexpr double kGB = 1024.0 * kMB;
inline constexpr double kUnlimited = std::numeric_limits<double>::infinity();

struct ClusterConfig {
  std::size_t num_compute_nodes = 4;
  std::size_t num_storage_nodes = 4;

  // Per storage node disk (read) bandwidth, bytes/s.
  double storage_disk_bw = 210.0 * kMB;
  // Storage-to-compute network path bandwidth, bytes/s.
  double storage_net_bw = 800.0 * kMB;
  // If > 0, all remote transfers additionally serialize through one shared
  // uplink of this bandwidth (the OSUMED 100 Mbps link).
  double shared_uplink_bw = 0.0;
  // Compute-to-compute (replication) bandwidth, bytes/s.
  double compute_net_bw = 800.0 * kMB;
  // Local disk read bandwidth on a compute node, bytes/s.
  double local_disk_bw = 100.0 * kMB;
  // Disk cache capacity per compute node, bytes (kUnlimited = no limit).
  double disk_capacity = kUnlimited;
  // Optional per-node override (size num_compute_nodes); empty = uniform
  // disk_capacity. The paper's Eqs. 16/21 allow heterogeneous DiskSpace_i.
  std::vector<double> disk_capacity_per_node;

  // Capacity of compute node i.
  double node_disk_capacity(std::size_t i) const {
    return disk_capacity_per_node.empty() ? disk_capacity
                                          : disk_capacity_per_node[i];
  }
  // Sum of all compute-node capacities (inf if any is unlimited).
  double aggregate_disk_capacity() const;
  // True if every node's capacity is unlimited.
  bool unlimited_disk() const;
  // When false, compute-to-compute replication is disabled and every stage
  // is a remote transfer (the paper's "No Replication" baseline, Fig 5a).
  bool allow_replication = true;

  // Effective point-to-point bandwidth of a remote transfer.
  double remote_bw() const {
    double bw = storage_disk_bw < storage_net_bw ? storage_disk_bw
                                                 : storage_net_bw;
    if (shared_uplink_bw > 0.0 && shared_uplink_bw < bw) bw = shared_uplink_bw;
    return bw;
  }
  // Effective bandwidth of a compute-to-compute replication.
  double replica_bw() const { return compute_net_bw; }

  // Recoverable validation of user-supplied configuration (node counts,
  // bandwidths, per-node capacity arity). Callers that cannot proceed on a
  // bad config should surface the error rather than abort.
  Status validate() const;
};

// The OSC compute cluster against the XIO storage pool (Infiniband path,
// 210 MB/s storage disks).
ClusterConfig xio_cluster(std::size_t compute_nodes = 4,
                          std::size_t storage_nodes = 4);

// The OSC compute cluster against the OSUMED storage cluster (18-25 MB/s
// disks behind a shared 100 Mbps Ethernet uplink).
ClusterConfig osumed_cluster(std::size_t compute_nodes = 4,
                             std::size_t storage_nodes = 4);

}  // namespace bsio::sim
