// Coupled compute + storage cluster model (paper Sections 2 and 7).
//
// The compute cluster executes tasks; the storage cluster initially holds
// every file. Transfers follow the paper's single-port model: a transfer
// occupies one port at each endpoint for its whole duration, and a compute
// node neither receives files nor serves replicas while a task executes on
// it (its port and CPU are one serialized resource, matching Eq. 12).
//
// Bandwidth model (Section 6): a remote transfer moves at
// min(storage disk BW, storage-compute network BW [, shared uplink BW]);
// a replication moves at the compute interconnect BW. Local-disk reads on a
// compute node (before a task runs) move at local_disk_bw.
//
// Presets mirror the paper's two testbeds: the OSC/XIO system (210 MB/s
// storage disks behind Infiniband) and the OSC/OSUMED system (18-25 MB/s
// storage disks behind a shared 100 Mbps link).
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "util/error.h"
#include "workload/types.h"

namespace bsio::sim {

inline constexpr double kMB = 1024.0 * 1024.0;
inline constexpr double kGB = 1024.0 * kMB;
inline constexpr double kUnlimited = std::numeric_limits<double>::infinity();

struct ClusterConfig {
  std::size_t num_compute_nodes = 4;
  std::size_t num_storage_nodes = 4;

  // Per storage node disk (read) bandwidth, bytes/s.
  double storage_disk_bw = 210.0 * kMB;
  // Storage-to-compute network path bandwidth, bytes/s.
  double storage_net_bw = 800.0 * kMB;
  // If > 0, all remote transfers additionally serialize through one shared
  // uplink of this bandwidth (the OSUMED 100 Mbps link).
  double shared_uplink_bw = 0.0;
  // Compute-to-compute (replication) bandwidth, bytes/s.
  double compute_net_bw = 800.0 * kMB;
  // Local disk read bandwidth on a compute node, bytes/s.
  double local_disk_bw = 100.0 * kMB;

  // --- Heterogeneity overrides (empty = homogeneous; the defaults). ---
  // All are consumed exclusively through sim::Topology; nothing else in the
  // tree prices a transfer from these fields directly.

  // Per-storage-node disk bandwidth, bytes/s (size num_storage_nodes);
  // empty = every storage node reads at storage_disk_bw.
  std::vector<double> storage_disk_bw_per_node;
  // Per-compute-node NIC bandwidth cap, bytes/s (size num_compute_nodes);
  // caps every transfer touching the node — staging in, replicating in or
  // out. Empty = NICs never bottleneck (the homogeneous model).
  std::vector<double> compute_nic_bw;
  // Per-compute-node CPU speed factor dividing task compute seconds
  // (1.0 = baseline, 2.0 = twice as fast); empty = all nodes at 1.0.
  std::vector<double> compute_speed;
  // Two-level link model: rack id of each compute node (size
  // num_compute_nodes) plus the uplink bandwidth of each rack, bytes/s
  // (size = 1 + max rack id). Remote stages serialize through the
  // destination's rack uplink; cross-rack replications through both racks'
  // uplinks. Both vectors empty = flat single-switch network.
  std::vector<std::uint32_t> compute_rack;
  std::vector<double> rack_uplink_bw;
  // Disk cache capacity per compute node, bytes (kUnlimited = no limit).
  double disk_capacity = kUnlimited;
  // Optional per-node override (size num_compute_nodes); empty = uniform
  // disk_capacity. The paper's Eqs. 16/21 allow heterogeneous DiskSpace_i.
  std::vector<double> disk_capacity_per_node;

  // Capacity of compute node i.
  double node_disk_capacity(std::size_t i) const {
    return disk_capacity_per_node.empty() ? disk_capacity
                                          : disk_capacity_per_node[i];
  }
  // Sum of all compute-node capacities (inf if any is unlimited).
  double aggregate_disk_capacity() const;
  // True if every node's capacity is unlimited.
  bool unlimited_disk() const;
  // When false, compute-to-compute replication is disabled and every stage
  // is a remote transfer (the paper's "No Replication" baseline, Fig 5a).
  bool allow_replication = true;

  // Disk bandwidth of storage node s.
  double storage_node_disk_bw(std::size_t s) const {
    return storage_disk_bw_per_node.empty() ? storage_disk_bw
                                            : storage_disk_bw_per_node[s];
  }
  // True when no heterogeneity override is set (all per-node vectors
  // empty): the classic uniform paper model.
  bool homogeneous() const {
    return storage_disk_bw_per_node.empty() && compute_nic_bw.empty() &&
           compute_speed.empty() && compute_rack.empty() &&
           rack_uplink_bw.empty();
  }

  // Recoverable validation of user-supplied configuration (node counts,
  // bandwidths, per-node capacity arity). Callers that cannot proceed on a
  // bad config should surface the error rather than abort.
  Status validate() const;
};

// The OSC compute cluster against the XIO storage pool (Infiniband path,
// 210 MB/s storage disks).
ClusterConfig xio_cluster(std::size_t compute_nodes = 4,
                          std::size_t storage_nodes = 4);

// The OSC compute cluster against the OSUMED storage cluster (18-25 MB/s
// disks behind a shared 100 Mbps Ethernet uplink).
ClusterConfig osumed_cluster(std::size_t compute_nodes = 4,
                             std::size_t storage_nodes = 4);

// XIO with generation drift: half the storage pool on older 100 MB/s
// disks, compute nodes split across two procurement waves (1.0x vs 1.6x
// CPUs, 200 vs 800 MB/s NICs).
ClusterConfig xio_mixed_cluster(std::size_t compute_nodes = 4,
                                std::size_t storage_nodes = 4);

// A two-rack XIO-class cluster: nodes split round-robin across racks whose
// uplinks are 4x thinner than the core, so cross-rack traffic contends.
ClusterConfig racked_cluster(std::size_t compute_nodes = 8,
                             std::size_t storage_nodes = 4,
                             std::size_t racks = 2);

// Deterministically skews `base` for heterogeneity sweeps: node bandwidths
// (storage disks + compute NICs) and CPU speeds spread multiplicatively in
// [1/(1+skew), 1+skew], pattern fixed by `seed`. skew = 0 returns `base`
// unchanged (bit-identical homogeneous plans).
ClusterConfig make_skewed_cluster(const ClusterConfig& base, double skew,
                                  std::uint64_t seed = 1);

}  // namespace bsio::sim
