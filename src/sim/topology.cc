#include "sim/topology.h"

#include <algorithm>

#include "util/check.h"

namespace bsio::sim {

namespace {

// The historical Eq. 12 min-chain, preserved verbatim: homogeneous configs
// must hand every consumer the bit-identical double the pre-topology
// ClusterConfig::remote_bw() produced.
double uniform_remote_chain(const ClusterConfig& c) {
  double bw =
      c.storage_disk_bw < c.storage_net_bw ? c.storage_disk_bw : c.storage_net_bw;
  if (c.shared_uplink_bw > 0.0 && c.shared_uplink_bw < bw)
    bw = c.shared_uplink_bw;
  return bw;
}

}  // namespace

Topology::Topology(const ClusterConfig& c) : config_(c) {
  BSIO_CHECK_MSG(config_.validate().ok(),
                 "Topology requires a validated ClusterConfig");
  C_ = config_.num_compute_nodes;
  const std::size_t S = config_.num_storage_nodes;

  uniform_remote_ = config_.storage_disk_bw_per_node.empty() &&
                    config_.compute_nic_bw.empty() &&
                    config_.compute_rack.empty();
  uniform_replica_ =
      config_.compute_nic_bw.empty() && config_.compute_rack.empty();
  uniform_remote_bw_ = uniform_remote_chain(config_);
  speed_ = config_.compute_speed;
  rack_of_ = config_.compute_rack;

  // Shared-link table: the global uplink first, then one link per rack.
  if (config_.shared_uplink_bw > 0.0) {
    uplink_link_ = static_cast<int>(link_bw_.size());
    link_bw_.push_back(config_.shared_uplink_bw);
  }
  rack_link0_ = static_cast<int>(link_bw_.size());
  for (double bw : config_.rack_uplink_bw) link_bw_.push_back(bw);

  // Remote matrix: min over the storage disk, the storage-compute path, the
  // global uplink, the destination's rack uplink, and the destination NIC.
  // On a uniform config every cell is uniform_remote_bw_ exactly.
  remote_bw_.resize(S * C_);
  for (std::size_t s = 0; s < S; ++s) {
    for (std::size_t i = 0; i < C_; ++i) {
      double bw;
      if (uniform_remote_) {
        bw = uniform_remote_bw_;
      } else {
        bw = std::min(config_.storage_node_disk_bw(s), config_.storage_net_bw);
        if (config_.shared_uplink_bw > 0.0)
          bw = std::min(bw, config_.shared_uplink_bw);
        if (!rack_of_.empty())
          bw = std::min(bw, config_.rack_uplink_bw[rack_of_[i]]);
        if (!config_.compute_nic_bw.empty())
          bw = std::min(bw, config_.compute_nic_bw[i]);
      }
      remote_bw_[s * C_ + i] = bw;
    }
  }

  // Replica matrix: the compute interconnect, capped by both endpoint NICs
  // and, across racks, by both rack uplinks. Uniform => compute_net_bw.
  replica_bw_.resize(C_ * C_);
  for (std::size_t j = 0; j < C_; ++j) {
    for (std::size_t i = 0; i < C_; ++i) {
      double bw = config_.compute_net_bw;
      if (!uniform_replica_) {
        if (!config_.compute_nic_bw.empty())
          bw = std::min({bw, config_.compute_nic_bw[j],
                         config_.compute_nic_bw[i]});
        if (!rack_of_.empty() && rack_of_[j] != rack_of_[i])
          bw = std::min({bw, config_.rack_uplink_bw[rack_of_[j]],
                         config_.rack_uplink_bw[rack_of_[i]]});
      }
      replica_bw_[j * C_ + i] = bw;
    }
  }

  min_remote_bw_ = remote_bw_.empty()
                       ? uniform_remote_bw_
                       : *std::min_element(remote_bw_.begin(), remote_bw_.end());
  min_replica_bw_ =
      replica_bw_.empty()
          ? config_.compute_net_bw
          : *std::min_element(replica_bw_.begin(), replica_bw_.end());
}

TransferPath Topology::resolve(Endpoint src, Endpoint dst) const {
  BSIO_CHECK_MSG(dst.kind == Endpoint::Kind::kCompute,
                 "transfers only terminate at compute nodes");
  if (src.kind == Endpoint::Kind::kStorage) return remote_path(src.id, dst.id);
  return replica_path(src.id, dst.id);
}

}  // namespace bsio::sim
