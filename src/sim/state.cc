#include "sim/state.h"

#include <algorithm>

namespace bsio::sim {

bool InitialCacheState::contains(wl::FileId file) const {
  for (const CacheSeedEntry& e : entries)
    if (e.file == file) return true;
  return false;
}

InitialCacheState InitialCacheState::capture(const ClusterState& state) {
  InitialCacheState out;
  for (wl::NodeId n = 0; n < state.num_nodes(); ++n) {
    std::vector<wl::FileId> files = state.files_on(n);
    std::sort(files.begin(), files.end());
    for (wl::FileId f : files)
      out.entries.push_back(
          {n, f, state.available_at(n, f), state.last_used_at(n, f)});
  }
  return out;
}

InitialCacheState InitialCacheState::rebased() const {
  double latest = 0.0;
  for (const CacheSeedEntry& e : entries)
    latest = std::max(latest, e.last_use);
  InitialCacheState out;
  out.entries.reserve(entries.size());
  for (const CacheSeedEntry& e : entries)
    out.entries.push_back({e.node, e.file, 0.0, e.last_use - latest});
  return out;
}

ClusterState::ClusterState(std::size_t num_compute_nodes, double disk_capacity)
    : ClusterState(std::vector<double>(num_compute_nodes, disk_capacity)) {}

ClusterState::ClusterState(std::vector<double> capacities)
    : capacity_(std::move(capacities)),
      caches_(capacity_.size()),
      used_(capacity_.size(), 0.0) {
  BSIO_CHECK(!capacity_.empty());
  for (double cap : capacity_) BSIO_CHECK(cap > 0.0);
}

bool ClusterState::has(wl::NodeId node, wl::FileId file) const {
  return caches_[node].count(file) > 0;
}

double ClusterState::available_at(wl::NodeId node, wl::FileId file) const {
  auto it = caches_[node].find(file);
  BSIO_CHECK(it != caches_[node].end());
  return it->second.avail_time;
}

double ClusterState::last_used_at(wl::NodeId node, wl::FileId file) const {
  auto it = caches_[node].find(file);
  BSIO_CHECK(it != caches_[node].end());
  return it->second.last_use;
}

namespace {
const std::vector<wl::NodeId> kNoHolders;
}

const std::vector<wl::NodeId>& ClusterState::holders(wl::FileId file) const {
  auto it = holder_index_.find(file);
  return it == holder_index_.end() ? kNoHolders : it->second;
}

std::size_t ClusterState::num_copies(wl::FileId file) const {
  auto it = holder_index_.find(file);
  return it == holder_index_.end() ? 0 : it->second.size();
}

void ClusterState::index_add(wl::NodeId node, wl::FileId file) {
  std::vector<wl::NodeId>& h = holder_index_[file];
  h.insert(std::upper_bound(h.begin(), h.end(), node), node);
}

void ClusterState::index_remove(wl::NodeId node, wl::FileId file) {
  auto it = holder_index_.find(file);
  BSIO_CHECK(it != holder_index_.end());
  auto pos = std::lower_bound(it->second.begin(), it->second.end(), node);
  BSIO_CHECK(pos != it->second.end() && *pos == node);
  it->second.erase(pos);
  if (it->second.empty()) holder_index_.erase(it);
}

void ClusterState::add(wl::NodeId node, wl::FileId file, double size_bytes,
                       double avail_time) {
  auto [it, inserted] = caches_[node].try_emplace(file);
  if (inserted) {
    used_[node] += size_bytes;
    BSIO_CHECK_MSG(used_[node] <= capacity_[node] + 1.0,
                   "disk capacity exceeded: eviction must run before add");
    index_add(node, file);
  }
  it->second.avail_time = avail_time;
  it->second.last_use = std::max(it->second.last_use, avail_time);
}

void ClusterState::restore(wl::NodeId node, wl::FileId file,
                           double size_bytes, double avail_time,
                           double last_use) {
  auto [it, inserted] = caches_[node].try_emplace(file);
  if (inserted) {
    used_[node] += size_bytes;
    BSIO_CHECK_MSG(used_[node] <= capacity_[node] + 1.0,
                   "disk capacity exceeded: the seed must fit the node");
    index_add(node, file);
  }
  it->second.avail_time = avail_time;
  it->second.last_use = last_use;
}

void ClusterState::remove(wl::NodeId node, wl::FileId file,
                          double size_bytes) {
  auto it = caches_[node].find(file);
  BSIO_CHECK(it != caches_[node].end());
  caches_[node].erase(it);
  used_[node] -= size_bytes;
  index_remove(node, file);
}

double ClusterState::clear_node(wl::NodeId node) {
  const double lost = used_[node];
  for (const auto& [file, entry] : caches_[node]) index_remove(node, file);
  caches_[node].clear();
  used_[node] = 0.0;
  return lost;
}

void ClusterState::touch(wl::NodeId node, wl::FileId file, double time) {
  auto it = caches_[node].find(file);
  if (it != caches_[node].end())
    it->second.last_use = std::max(it->second.last_use, time);
}

std::vector<wl::FileId> ClusterState::select_victims(
    wl::NodeId node, double need_bytes, const std::vector<wl::FileId>& pinned,
    EvictionPolicy policy,
    const std::function<double(wl::FileId)>& pending_freq,
    const std::function<double(wl::FileId)>& file_size) const {
  struct Candidate {
    wl::FileId file;
    double key;
    double size;
  };
  std::vector<Candidate> cands;
  cands.reserve(caches_[node].size());
  for (const auto& [file, entry] : caches_[node]) {
    if (std::find(pinned.begin(), pinned.end(), file) != pinned.end())
      continue;
    double key = 0.0;
    switch (policy) {
      case EvictionPolicy::kPopularity: {
        // Eq. 22; copies >= 1 since this node holds the file.
        double copies = static_cast<double>(num_copies(file));
        key = pending_freq(file) * file_size(file) / copies;
        break;
      }
      case EvictionPolicy::kLru:
        key = entry.last_use;
        break;
      case EvictionPolicy::kSizeAscending:
        key = file_size(file);
        break;
    }
    cands.push_back({file, key, file_size(file)});
  }
  std::sort(cands.begin(), cands.end(), [](const Candidate& a,
                                           const Candidate& b) {
    if (a.key != b.key) return a.key < b.key;
    return a.file < b.file;  // deterministic tiebreak
  });
  std::vector<wl::FileId> victims;
  double freed = 0.0;
  for (const auto& c : cands) {
    if (freed >= need_bytes) break;
    victims.push_back(c.file);
    freed += c.size;
  }
  if (freed < need_bytes) return {};  // cannot satisfy
  return victims;
}

std::vector<wl::FileId> ClusterState::files_on(wl::NodeId node) const {
  std::vector<wl::FileId> out;
  out.reserve(caches_[node].size());
  for (const auto& [file, entry] : caches_[node]) out.push_back(file);
  return out;
}

}  // namespace bsio::sim
