// Topology: the single home of the transfer-cost arithmetic (paper
// Section 6, Eq. 12) and its heterogeneous generalization.
//
// Every layer that prices a transfer — the execution engine, the planner
// cost model, the IP formulation's objective coefficients and the Eq. 25-26
// probabilistic vertex weights — resolves bandwidths through this class
// instead of re-deriving min(disk, net, uplink) locally. That makes link-
// model changes a one-place edit and opens heterogeneous clusters:
//
//  - per-storage-node disk bandwidths (ClusterConfig::storage_disk_bw_per_node),
//  - per-compute-node NIC bandwidth caps (compute_nic_bw) applied to every
//    transfer that terminates at the node (staging and replication alike),
//  - per-compute-node CPU speed factors (compute_speed) dividing task
//    compute seconds,
//  - an optional two-level link model (compute_rack + rack_uplink_bw):
//    every compute node sits in a rack; remote transfers traverse the
//    destination's rack uplink (the storage cluster hangs off the core
//    switch), cross-rack replications traverse both rack uplinks. Each rack
//    uplink — like the OSUMED shared uplink — is a single serialized
//    resource the engine models as one Timeline.
//
// Bit-identity contract: for a homogeneous config (all per-node override
// vectors empty), every bandwidth returned here is the *bit-identical*
// double the pre-topology code computed — the same min() chain over the
// same fields in the same order — so homogeneous XIO/OSUMED plans and
// makespans are unchanged by construction. tests/topology_test.cc enforces
// this against captured goldens.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "sim/cluster.h"
#include "workload/types.h"

namespace bsio::sim {

// One resolved transfer route: the effective end-to-end bandwidth plus the
// shared-link resources (indices into [0, Topology::num_links())) the
// transfer serializes through, in route order. The two endpoint ports are
// implicit — a transfer always reserves both endpoints.
struct TransferPath {
  double bandwidth = 0.0;
  std::uint32_t num_links = 0;
  std::array<std::uint16_t, 2> links{};  // valid entries: [0, num_links)
};

// A transfer endpoint: a storage-node port or a compute-node port.
struct Endpoint {
  enum class Kind : std::uint8_t { kStorage, kCompute };
  Kind kind = Kind::kCompute;
  wl::NodeId id = 0;

  static Endpoint storage(wl::NodeId s) { return {Kind::kStorage, s}; }
  static Endpoint compute(wl::NodeId c) { return {Kind::kCompute, c}; }
};

class Topology {
 public:
  // The config must satisfy ClusterConfig::validate(); the topology keeps
  // its own copy, so callers may pass temporaries.
  explicit Topology(const ClusterConfig& c);

  const ClusterConfig& config() const { return config_; }

  // --- Path resolution. ---
  // resolve() is the one API: effective bandwidth of src -> dst plus the
  // shared links the transfer must reserve. storage -> compute is a remote
  // stage, compute -> compute a replication; the remaining combinations are
  // not part of the model (storage nodes never receive files).
  TransferPath resolve(Endpoint src, Endpoint dst) const;

  // Convenience forms of resolve() for the two legal transfer kinds.
  TransferPath remote_path(wl::NodeId storage, wl::NodeId compute) const {
    TransferPath p;
    p.bandwidth = remote_bw_[storage * C_ + compute];
    if (uplink_link_ >= 0)
      p.links[p.num_links++] = static_cast<std::uint16_t>(uplink_link_);
    if (!rack_of_.empty())
      p.links[p.num_links++] =
          static_cast<std::uint16_t>(rack_link0_ + rack_of_[compute]);
    return p;
  }
  TransferPath replica_path(wl::NodeId src, wl::NodeId dst) const {
    TransferPath p;
    p.bandwidth = replica_bw_[src * C_ + dst];
    if (!rack_of_.empty() && rack_of_[src] != rack_of_[dst]) {
      p.links[p.num_links++] =
          static_cast<std::uint16_t>(rack_link0_ + rack_of_[src]);
      p.links[p.num_links++] =
          static_cast<std::uint16_t>(rack_link0_ + rack_of_[dst]);
    }
    return p;
  }

  // Bandwidth-only accessors for hot planner loops.
  double remote_bw(wl::NodeId storage, wl::NodeId compute) const {
    return remote_bw_[storage * C_ + compute];
  }
  double replica_bw(wl::NodeId src, wl::NodeId dst) const {
    return replica_bw_[src * C_ + dst];
  }

  // --- Shared-link resources (the uplink and the rack uplinks). ---
  std::size_t num_links() const { return link_bw_.size(); }
  double link_bw(std::size_t link) const { return link_bw_[link]; }

  // --- Node-local costs. ---
  double local_read_bw(wl::NodeId /*compute*/) const {
    return config_.local_disk_bw;
  }
  double cpu_speed(wl::NodeId compute) const {
    return speed_.empty() ? 1.0 : speed_[compute];
  }
  // Local read of the inputs plus the computation, serialized on the node
  // (Eq. 12). Bit-identical to read_bytes / local_disk_bw + compute_seconds
  // on homogeneous configs (x / 1.0 == x).
  double exec_seconds(double read_bytes, double compute_seconds,
                      wl::NodeId compute) const {
    return read_bytes / config_.local_disk_bw +
           compute_seconds / cpu_speed(compute);
  }

  // --- Uniformity contract (drives the bit-identity fast paths). ---
  // True when every remote path shares one bandwidth: no per-storage disk
  // overrides, no NIC caps, no racks.
  bool uniform_remote() const { return uniform_remote_; }
  // The shared remote bandwidth; requires uniform_remote(). Bit-identical
  // to the historical min(storage_disk_bw, storage_net_bw [, uplink]).
  double uniform_remote_bw() const { return uniform_remote_bw_; }
  // True when every replication shares one bandwidth (no NIC caps/racks).
  bool uniform_replica() const { return uniform_replica_; }
  double uniform_replica_bw() const { return config_.compute_net_bw; }
  bool uniform_speed() const { return speed_.empty(); }
  bool uniform() const {
    return uniform_remote_ && uniform_replica_ && speed_.empty();
  }

  // Conservative bounds over all paths (planner upper bounds / epsilons).
  // Equal to the uniform values on homogeneous configs.
  double min_remote_bw() const { return min_remote_bw_; }
  double min_replica_bw() const { return min_replica_bw_; }

 private:
  ClusterConfig config_;
  std::size_t C_ = 0;  // num_compute_nodes

  // Dense per-pair effective bandwidths: remote_bw_[s * C + i] for storage
  // s -> compute i; replica_bw_[j * C + i] for compute j -> compute i
  // (diagonal unused).
  std::vector<double> remote_bw_;
  std::vector<double> replica_bw_;

  // Shared links: [uplink_link_] (if the config has a shared uplink) then
  // one per rack starting at rack_link0_.
  std::vector<double> link_bw_;
  int uplink_link_ = -1;
  int rack_link0_ = 0;
  std::vector<std::uint32_t> rack_of_;  // empty = flat network

  std::vector<double> speed_;  // empty = uniform 1.0

  bool uniform_remote_ = true;
  bool uniform_replica_ = true;
  double uniform_remote_bw_ = 0.0;
  double min_remote_bw_ = 0.0;
  double min_replica_bw_ = 0.0;
};

}  // namespace bsio::sim
