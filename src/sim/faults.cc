#include "sim/faults.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "util/rng.h"

namespace bsio::sim {

Status FaultConfig::validate(const ClusterConfig& cluster) const {
  if (!(transfer_failure_prob >= 0.0 && transfer_failure_prob <= 1.0))
    return Err("FaultConfig: transfer_failure_prob must be in [0, 1]");
  if (max_transfer_attempts == 0)
    return Err("FaultConfig: max_transfer_attempts must be at least 1");
  if (!(retry_backoff_seconds >= 0.0) || !std::isfinite(retry_backoff_seconds))
    return Err("FaultConfig: retry_backoff_seconds must be finite and >= 0");
  if (!(retry_backoff_factor >= 1.0) || !std::isfinite(retry_backoff_factor))
    return Err("FaultConfig: retry_backoff_factor must be finite and >= 1");
  if (!(max_backoff_seconds > 0.0) || !std::isfinite(max_backoff_seconds))
    return Err("FaultConfig: max_backoff_seconds must be finite and > 0");
  for (const ComputeCrash& c : compute_crashes) {
    if (c.node >= cluster.num_compute_nodes)
      return Err("FaultConfig: crash names compute node " +
                 std::to_string(c.node) + " but the cluster has only " +
                 std::to_string(cluster.num_compute_nodes));
    if (!(c.time >= 0.0) || !std::isfinite(c.time))
      return Err("FaultConfig: crash time must be finite and >= 0");
  }
  for (const StorageOutage& o : storage_outages) {
    if (o.node >= cluster.num_storage_nodes)
      return Err("FaultConfig: outage names storage node " +
                 std::to_string(o.node) + " but the cluster has only " +
                 std::to_string(cluster.num_storage_nodes));
    if (!(o.start >= 0.0) || !(o.end > o.start) || !std::isfinite(o.end))
      return Err("FaultConfig: outage window must satisfy 0 <= start < end "
                 "< infinity");
  }
  std::vector<std::vector<NodeSlowdown>> per_node(cluster.num_compute_nodes);
  for (const NodeSlowdown& s : compute_slowdowns) {
    if (s.node >= cluster.num_compute_nodes)
      return Err("FaultConfig: slowdown names compute node " +
                 std::to_string(s.node) + " but the cluster has only " +
                 std::to_string(cluster.num_compute_nodes));
    if (!(s.start >= 0.0) || !(s.end > s.start))
      return Err("FaultConfig: slowdown window must satisfy 0 <= start < end");
    if (!(s.factor >= 1.0) || !std::isfinite(s.factor))
      return Err("FaultConfig: slowdown factor must be finite and >= 1");
    per_node[s.node].push_back(s);
  }
  for (auto& windows : per_node) {
    std::sort(windows.begin(), windows.end(),
              [](const NodeSlowdown& a, const NodeSlowdown& b) {
                return a.start < b.start;
              });
    for (std::size_t i = 1; i < windows.size(); ++i) {
      if (windows[i].start < windows[i - 1].end)
        return Err("FaultConfig: slowdown windows of compute node " +
                   std::to_string(windows[i].node) + " overlap");
    }
  }
  return OkStatus();
}

Status SpeculationConfig::validate() const {
  if (!(straggler_ratio >= 1.0) || !std::isfinite(straggler_ratio))
    return Err("SpeculationConfig: straggler_ratio must be finite and >= 1");
  if (!(min_ect_gain_seconds >= 0.0) || !std::isfinite(min_ect_gain_seconds))
    return Err(
        "SpeculationConfig: min_ect_gain_seconds must be finite and >= 0");
  return OkStatus();
}

FaultModel::FaultModel(FaultConfig config, std::size_t num_compute_nodes,
                       std::size_t num_storage_nodes)
    : config_(std::move(config)),
      crash_time_(num_compute_nodes,
                  std::numeric_limits<double>::infinity()),
      outages_(num_storage_nodes),
      slowdowns_(num_compute_nodes) {
  for (const NodeSlowdown& s : config_.compute_slowdowns) {
    if (s.factor <= 1.0) continue;  // factor 1 stretches nothing
    slowdowns_[s.node].push_back(s);
    has_slowdowns_ = true;
  }
  for (auto& windows : slowdowns_) {
    std::sort(windows.begin(), windows.end(),
              [](const NodeSlowdown& a, const NodeSlowdown& b) {
                return a.start < b.start;
              });
  }
  for (const ComputeCrash& c : config_.compute_crashes)
    crash_time_[c.node] = std::min(crash_time_[c.node], c.time);
  for (const StorageOutage& o : config_.storage_outages)
    outages_[o.node].push_back(o);
  // Merge overlapping/adjacent windows per node so the engine can reserve
  // each one on a fresh timeline.
  for (auto& windows : outages_) {
    std::sort(windows.begin(), windows.end(),
              [](const StorageOutage& a, const StorageOutage& b) {
                return a.start < b.start;
              });
    std::vector<StorageOutage> merged;
    for (const StorageOutage& o : windows) {
      if (!merged.empty() && o.start <= merged.back().end)
        merged.back().end = std::max(merged.back().end, o.end);
      else
        merged.push_back(o);
    }
    windows = std::move(merged);
  }
}

bool FaultModel::transfer_attempt_fails(std::uint64_t transfer_index,
                                        std::size_t attempt) const {
  if (config_.transfer_failure_prob <= 0.0) return false;
  if (attempt + 1 >= config_.max_transfer_attempts &&
      !config_.give_up_after_max_attempts)
    return false;
  if (config_.transfer_failure_prob >= 1.0) return true;
  // Stateless coin: independent of draw order, so a retry never shifts the
  // fault pattern seen by unrelated transfers.
  const std::uint64_t h = hash_mix(
      hash_mix(config_.seed + 0x9e3779b97f4a7c15ULL * transfer_index) +
      attempt);
  const double u = static_cast<double>(h >> 11) * 0x1.0p-53;
  return u < config_.transfer_failure_prob;
}

double FaultModel::backoff_after(std::size_t attempt) const {
  const double raw =
      config_.retry_backoff_seconds *
      std::pow(config_.retry_backoff_factor, static_cast<double>(attempt));
  return std::min(raw, config_.max_backoff_seconds);
}

double FaultModel::stretched_exec_duration(wl::NodeId node, double start,
                                           double nominal) const {
  if (nominal <= 0.0) return nominal;
  if (node >= slowdowns_.size() || slowdowns_[node].empty()) return nominal;
  // Walk the node's sorted windows left to right, spending `remaining`
  // seconds of work: gaps between windows progress at full speed, a span of
  // `w` wall seconds inside a factor-f window only completes w/f seconds of
  // work. Everything past the last window is full speed again.
  double t = start;
  double remaining = nominal;
  for (const NodeSlowdown& w : slowdowns_[node]) {
    if (w.end <= t) continue;
    if (w.start > t) {
      const double gap = w.start - t;
      if (remaining <= gap) return t + remaining - start;
      remaining -= gap;
      t = w.start;
    }
    const double span = w.end - t;  // wall time available inside the window
    const double capacity = span / w.factor;
    if (remaining <= capacity) return t + remaining * w.factor - start;
    remaining -= capacity;
    t = w.end;
  }
  return t + remaining - start;
}

const std::vector<StorageOutage>& FaultModel::outages_of(
    wl::NodeId storage_node) const {
  static const std::vector<StorageOutage> kNone;
  return storage_node < outages_.size() ? outages_[storage_node] : kNone;
}

}  // namespace bsio::sim
