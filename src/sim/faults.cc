#include "sim/faults.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "util/rng.h"

namespace bsio::sim {

Status FaultConfig::validate(const ClusterConfig& cluster) const {
  if (!(transfer_failure_prob >= 0.0 && transfer_failure_prob <= 1.0))
    return Err("FaultConfig: transfer_failure_prob must be in [0, 1]");
  if (max_transfer_attempts == 0)
    return Err("FaultConfig: max_transfer_attempts must be at least 1");
  if (!(retry_backoff_seconds >= 0.0) || !std::isfinite(retry_backoff_seconds))
    return Err("FaultConfig: retry_backoff_seconds must be finite and >= 0");
  if (!(retry_backoff_factor >= 1.0) || !std::isfinite(retry_backoff_factor))
    return Err("FaultConfig: retry_backoff_factor must be finite and >= 1");
  for (const ComputeCrash& c : compute_crashes) {
    if (c.node >= cluster.num_compute_nodes)
      return Err("FaultConfig: crash names compute node " +
                 std::to_string(c.node) + " but the cluster has only " +
                 std::to_string(cluster.num_compute_nodes));
    if (!(c.time >= 0.0) || !std::isfinite(c.time))
      return Err("FaultConfig: crash time must be finite and >= 0");
  }
  for (const StorageOutage& o : storage_outages) {
    if (o.node >= cluster.num_storage_nodes)
      return Err("FaultConfig: outage names storage node " +
                 std::to_string(o.node) + " but the cluster has only " +
                 std::to_string(cluster.num_storage_nodes));
    if (!(o.start >= 0.0) || !(o.end > o.start) || !std::isfinite(o.end))
      return Err("FaultConfig: outage window must satisfy 0 <= start < end "
                 "< infinity");
  }
  return OkStatus();
}

FaultModel::FaultModel(FaultConfig config, std::size_t num_compute_nodes,
                       std::size_t num_storage_nodes)
    : config_(std::move(config)),
      crash_time_(num_compute_nodes,
                  std::numeric_limits<double>::infinity()),
      outages_(num_storage_nodes) {
  for (const ComputeCrash& c : config_.compute_crashes)
    crash_time_[c.node] = std::min(crash_time_[c.node], c.time);
  for (const StorageOutage& o : config_.storage_outages)
    outages_[o.node].push_back(o);
  // Merge overlapping/adjacent windows per node so the engine can reserve
  // each one on a fresh timeline.
  for (auto& windows : outages_) {
    std::sort(windows.begin(), windows.end(),
              [](const StorageOutage& a, const StorageOutage& b) {
                return a.start < b.start;
              });
    std::vector<StorageOutage> merged;
    for (const StorageOutage& o : windows) {
      if (!merged.empty() && o.start <= merged.back().end)
        merged.back().end = std::max(merged.back().end, o.end);
      else
        merged.push_back(o);
    }
    windows = std::move(merged);
  }
}

bool FaultModel::transfer_attempt_fails(std::uint64_t transfer_index,
                                        std::size_t attempt) const {
  if (config_.transfer_failure_prob <= 0.0) return false;
  if (attempt + 1 >= config_.max_transfer_attempts) return false;
  if (config_.transfer_failure_prob >= 1.0) return true;
  // Stateless coin: independent of draw order, so a retry never shifts the
  // fault pattern seen by unrelated transfers.
  const std::uint64_t h = hash_mix(
      hash_mix(config_.seed + 0x9e3779b97f4a7c15ULL * transfer_index) +
      attempt);
  const double u = static_cast<double>(h >> 11) * 0x1.0p-53;
  return u < config_.transfer_failure_prob;
}

double FaultModel::backoff_after(std::size_t attempt) const {
  return config_.retry_backoff_seconds *
         std::pow(config_.retry_backoff_factor, static_cast<double>(attempt));
}

const std::vector<StorageOutage>& FaultModel::outages_of(
    wl::NodeId storage_node) const {
  static const std::vector<StorageOutage> kNone;
  return storage_node < outages_.size() ? outages_[storage_node] : kNone;
}

}  // namespace bsio::sim
