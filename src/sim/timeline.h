// Gantt-chart timelines (paper Section 6).
//
// A Timeline is the reservation calendar of one single-port resource — a
// storage node port, a compute node (port + CPU, unified per Eq. 12), or
// the shared uplink. Reservations are half-open busy intervals; queries
// find the earliest gap of a given duration, optionally across several
// timelines at once (a transfer must hold both endpoints simultaneously).
#pragma once

#include <vector>

#include "util/check.h"

namespace bsio::sim {

struct Interval {
  double start = 0.0;
  double end = 0.0;
};

class Timeline {
 public:
  // Earliest t >= after such that [t, t + duration) is free.
  double earliest_free(double after, double duration) const;

  // Reserves [start, start + duration); the slot must be free.
  void reserve(double start, double duration);

  // Releases the reservation previously made as [start, end) — the exact
  // interval must exist. Cancellation rollback for speculative execution:
  // a losing attempt's not-yet-started reservations are handed back so
  // foreground transfers reclaim the bandwidth.
  void release(double start, double end);

  // Shortens the reservation starting at `start` so it ends at `new_end`
  // (removing it entirely when new_end <= start). Used to cut a losing
  // attempt's in-flight reservation at the first-finish-wins instant.
  void truncate(double start, double new_end);

  // Largest reservation end time (0 if empty).
  double horizon() const { return busy_.empty() ? 0.0 : busy_.back().end; }

  std::size_t num_reservations() const { return busy_.size(); }
  const std::vector<Interval>& intervals() const { return busy_; }

  // Total reserved time in [0, horizon].
  double busy_time() const;

  void clear() { busy_.clear(); }

  // Invariant check: sorted, non-overlapping, positive-length intervals.
  void validate() const;

 private:
  // Sorted by start; pairwise disjoint.
  std::vector<Interval> busy_;
};

// Earliest t >= after such that [t, t + duration) is simultaneously free on
// every timeline. Pointers may repeat; null entries are ignored.
double earliest_common_free(const std::vector<const Timeline*>& timelines,
                            double after, double duration);

}  // namespace bsio::sim
