// Gantt-chart timelines (paper Section 6).
//
// A Timeline is the reservation calendar of one single-port resource — a
// storage node port, a compute node (port + CPU, unified per Eq. 12), or
// the shared uplink. Reservations are half-open busy intervals; queries
// find the earliest gap of a given duration, optionally across several
// timelines at once (a transfer must hold both endpoints simultaneously).
//
// Storage is bucketed (an unrolled ordered list of fixed-capacity chunks)
// so the scale-out regime — storage-port calendars holding 10^5+
// reservations — stays cheap: earliest_free is O(log n + gap-distance),
// reserve/release/truncate are O(log n + chunk-width) instead of the old
// O(n) contiguous-vector shift. The gap-walk arithmetic and epsilon
// comparisons are byte-for-byte the historical ones, so every query and
// mutation is bit-identical to the flat-vector implementation (pinned by
// tests/timeline_property_test.cc against a brute-force reference).
#pragma once

#include <cstddef>
#include <vector>

#include "util/check.h"

namespace bsio::sim {

struct Interval {
  double start = 0.0;
  double end = 0.0;
};

class Timeline {
 public:
  // Earliest t >= after such that [t, t + duration) is free.
  double earliest_free(double after, double duration) const;

  // Same query with a monotone cursor: the engine's placement loops and
  // earliest_common_free's fixed-point rounds probe one timeline with
  // non-decreasing `after` between mutations, so the start-chunk binary
  // search can resume from the previous query's chunk instead of the full
  // range. A backward query or any mutation resets the cursor; results are
  // bit-identical to the const overload (same walk, narrower search
  // window) — pinned by tests/timeline_property_test.cc, whose random
  // query mix exercises both resumed and reset cursors.
  double earliest_free(double after, double duration);

  // Reserves [start, start + duration); the slot must be free.
  void reserve(double start, double duration);

  // Releases the reservation previously made as [start, end) — the exact
  // interval must exist. Cancellation rollback for speculative execution:
  // a losing attempt's not-yet-started reservations are handed back so
  // foreground transfers reclaim the bandwidth.
  void release(double start, double end);

  // Shortens the reservation starting at `start` so it ends at `new_end`
  // (removing it entirely when new_end <= start). Used to cut a losing
  // attempt's in-flight reservation at the first-finish-wins instant.
  void truncate(double start, double new_end);

  // Largest reservation end time (0 if empty).
  double horizon() const {
    return chunks_.empty() ? 0.0 : chunks_.back().ivs.back().end;
  }

  std::size_t num_reservations() const { return size_; }

  // Materialized copy of every reservation, ascending (diagnostics/tests;
  // the bucketed store has no contiguous array to hand out).
  std::vector<Interval> intervals() const;

  // Total reserved time in [0, horizon].
  double busy_time() const;

  void clear() {
    chunks_.clear();
    size_ = 0;
    cursor_valid_ = false;
  }

  // Invariant check: sorted, non-overlapping, positive-length intervals,
  // chunk occupancy within bounds.
  void validate() const;

 private:
  // One bucket of the unrolled list: up to kChunkCapacity intervals, sorted
  // and pairwise disjoint; all intervals in chunk i precede all intervals
  // in chunk i + 1. Chunks split at capacity and are erased when emptied,
  // so occupancy stays within [1, kChunkCapacity].
  struct Chunk {
    std::vector<Interval> ivs;
  };
  static constexpr std::size_t kChunkCapacity = 128;

  // Index of the chunk an interval starting at `start` belongs in (the last
  // chunk whose first start is <= start), clamped to a valid index.
  std::size_t chunk_for_start(double start) const;

  // First chunk whose max end exceeds `after` — where the gap walk starts —
  // searched within [lo, chunks_.size()).
  std::size_t walk_start_chunk(double after, std::size_t lo) const;

  // The historical gap walk from chunk `ci` onward.
  double gap_walk(std::size_t ci, double after, double duration) const;

  // Splits chunks_[ci] in half when it hit capacity.
  void maybe_split(std::size_t ci);

  std::vector<Chunk> chunks_;
  std::size_t size_ = 0;

  // Monotone-query cursor (non-const earliest_free): the walk-start chunk
  // and query time of the previous query. Invalidated by every mutation.
  bool cursor_valid_ = false;
  std::size_t cursor_chunk_ = 0;
  double cursor_after_ = 0.0;
};

// Earliest t >= after such that [t, t + duration) is simultaneously free on
// every timeline. Pointers may repeat; null entries are ignored.
double earliest_common_free(const std::vector<const Timeline*>& timelines,
                            double after, double duration);

// Mutable-timeline overload: the fixed-point rounds query each timeline
// with non-decreasing t, so every probe resumes that timeline's monotone
// cursor. Bit-identical to the const overload.
double earliest_common_free(const std::vector<Timeline*>& timelines,
                            double after, double duration);

}  // namespace bsio::sim
