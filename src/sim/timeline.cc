#include "sim/timeline.h"

#include <algorithm>

namespace bsio::sim {

namespace {
constexpr double kEps = 1e-9;
}

std::size_t Timeline::walk_start_chunk(double after, std::size_t lo) const {
  // First chunk that could interfere: interval ends are ascending across
  // the whole structure, so binary-search the per-chunk max end — O(log n)
  // (or O(log remaining) when the cursor supplies a tighter lo).
  auto ci = std::upper_bound(
      chunks_.begin() + static_cast<std::ptrdiff_t>(lo), chunks_.end(), after,
      [](double v, const Chunk& c) { return v < c.ivs.back().end; });
  return static_cast<std::size_t>(ci - chunks_.begin());
}

double Timeline::gap_walk(std::size_t ci, double after, double duration) const {
  double t = after;
  bool first_chunk = true;
  for (; ci < chunks_.size(); ++ci, first_chunk = false) {
    const std::vector<Interval>& ivs = chunks_[ci].ivs;
    auto it = first_chunk
                  ? std::upper_bound(
                        ivs.begin(), ivs.end(), t,
                        [](double v, const Interval& iv) { return v < iv.end; })
                  : ivs.begin();
    // The historical gap walk, verbatim: each busy interval either leaves
    // room before it or pushes the cursor past its end.
    for (; it != ivs.end(); ++it) {
      if (t + duration <= it->start + kEps) return t;
      t = std::max(t, it->end);
    }
  }
  return t;
}

double Timeline::earliest_free(double after, double duration) const {
  BSIO_DCHECK(duration >= 0.0);
  return gap_walk(walk_start_chunk(after, 0), after, duration);
}

double Timeline::earliest_free(double after, double duration) {
  BSIO_DCHECK(duration >= 0.0);
  // Ends are ascending, so for a non-decreasing query time the walk-start
  // chunk can only move forward: resume the binary search there.
  const std::size_t lo =
      (cursor_valid_ && after >= cursor_after_) ? cursor_chunk_ : 0;
  const std::size_t ci = walk_start_chunk(after, lo);
  cursor_valid_ = true;
  cursor_chunk_ = ci;
  cursor_after_ = after;
  return gap_walk(ci, after, duration);
}

std::size_t Timeline::chunk_for_start(double start) const {
  BSIO_DCHECK(!chunks_.empty());
  // First chunk whose first interval starts strictly after `start`, minus
  // one: the chunk whose key range covers `start`.
  auto ci = std::upper_bound(
      chunks_.begin(), chunks_.end(), start,
      [](double v, const Chunk& c) { return v < c.ivs.front().start; });
  if (ci == chunks_.begin()) return 0;
  return static_cast<std::size_t>(ci - chunks_.begin()) - 1;
}

void Timeline::maybe_split(std::size_t ci) {
  Chunk& c = chunks_[ci];
  if (c.ivs.size() < kChunkCapacity) return;
  const std::size_t half = c.ivs.size() / 2;
  Chunk tail;
  tail.ivs.assign(c.ivs.begin() + static_cast<std::ptrdiff_t>(half),
                  c.ivs.end());
  c.ivs.erase(c.ivs.begin() + static_cast<std::ptrdiff_t>(half), c.ivs.end());
  chunks_.insert(chunks_.begin() + static_cast<std::ptrdiff_t>(ci) + 1,
                 std::move(tail));
}

void Timeline::reserve(double start, double duration) {
  if (duration <= 0.0) return;
  cursor_valid_ = false;
  Interval iv{start, start + duration};
  if (chunks_.empty()) {
    chunks_.emplace_back();
    chunks_.back().ivs.push_back(iv);
    ++size_;
    return;
  }
  const std::size_t ci = chunk_for_start(iv.start);
  std::vector<Interval>& ivs = chunks_[ci].ivs;
  auto it = std::upper_bound(
      ivs.begin(), ivs.end(), iv.start,
      [](double v, const Interval& o) { return v < o.start; });
  // Overlap check against the global neighbours (which may sit in the
  // adjacent chunks).
  const Interval* prev = nullptr;
  if (it != ivs.begin())
    prev = &*std::prev(it);
  else if (ci > 0)
    prev = &chunks_[ci - 1].ivs.back();
  const Interval* next = nullptr;
  if (it != ivs.end())
    next = &*it;
  else if (ci + 1 < chunks_.size())
    next = &chunks_[ci + 1].ivs.front();
  if (prev != nullptr)
    BSIO_CHECK_MSG(prev->end <= iv.start + kEps,
                   "timeline reservation overlaps previous interval");
  if (next != nullptr)
    BSIO_CHECK_MSG(iv.end <= next->start + kEps,
                   "timeline reservation overlaps next interval");
  ivs.insert(it, iv);
  ++size_;
  maybe_split(ci);
}

void Timeline::release(double start, double end) {
  cursor_valid_ = false;
  bool found = false;
  if (!chunks_.empty()) {
    const std::size_t ci = chunk_for_start(start);
    std::vector<Interval>& ivs = chunks_[ci].ivs;
    auto it = std::lower_bound(
        ivs.begin(), ivs.end(), start,
        [](const Interval& iv, double v) { return iv.start < v; });
    if (it != ivs.end() && it->start == start && it->end == end) {
      found = true;
      ivs.erase(it);
      --size_;
      if (ivs.empty())
        chunks_.erase(chunks_.begin() + static_cast<std::ptrdiff_t>(ci));
    }
  }
  BSIO_CHECK_MSG(found,
                 "timeline release does not match an existing reservation");
}

void Timeline::truncate(double start, double new_end) {
  cursor_valid_ = false;
  bool found = false;
  if (!chunks_.empty()) {
    const std::size_t ci = chunk_for_start(start);
    std::vector<Interval>& ivs = chunks_[ci].ivs;
    auto it = std::lower_bound(
        ivs.begin(), ivs.end(), start,
        [](const Interval& iv, double v) { return iv.start < v; });
    if (it != ivs.end() && it->start == start) {
      found = true;
      if (new_end <= it->start) {
        ivs.erase(it);
        --size_;
        if (ivs.empty())
          chunks_.erase(chunks_.begin() + static_cast<std::ptrdiff_t>(ci));
      } else {
        BSIO_CHECK_MSG(new_end <= it->end,
                       "timeline truncate cannot extend a reservation");
        it->end = new_end;
      }
    }
  }
  BSIO_CHECK_MSG(found,
                 "timeline truncate does not match an existing reservation");
}

std::vector<Interval> Timeline::intervals() const {
  std::vector<Interval> out;
  out.reserve(size_);
  for (const Chunk& c : chunks_)
    out.insert(out.end(), c.ivs.begin(), c.ivs.end());
  return out;
}

double Timeline::busy_time() const {
  // Summed in ascending order — the exact accumulation order of the flat
  // implementation, so reported utilisation stays bit-identical.
  double total = 0.0;
  for (const Chunk& c : chunks_)
    for (const Interval& iv : c.ivs) total += iv.end - iv.start;
  return total;
}

void Timeline::validate() const {
  std::size_t count = 0;
  const Interval* prev = nullptr;
  for (const Chunk& c : chunks_) {
    BSIO_CHECK(!c.ivs.empty() && c.ivs.size() <= kChunkCapacity);
    for (const Interval& iv : c.ivs) {
      BSIO_CHECK(iv.end > iv.start);
      if (prev != nullptr) BSIO_CHECK(prev->end <= iv.start + kEps);
      prev = &iv;
      ++count;
    }
  }
  BSIO_CHECK(count == size_);
}

namespace {

// Shared fixed-point iteration: each round queries every timeline against
// the SAME base t and restarts from the max candidate — when endpoint
// calendars are dense this avoids the pathological re-walks of advancing t
// mid-pass (each timeline's gap walk restarts from the furthest conflict,
// not from a stale cursor). earliest_free is monotone in `after`, so the
// max candidate never overshoots the least common fixed point: the result
// is bit-identical to the sequential-advance iteration.
template <typename TimelinePtr>
double common_free_fixed_point(const std::vector<TimelinePtr>& timelines,
                               double after, double duration) {
  double t = after;
  for (;;) {
    double best = t;
    for (TimelinePtr tl : timelines) {
      if (tl == nullptr) continue;
      best = std::max(best, tl->earliest_free(t, duration));
    }
    if (best == t) return t;
    t = best;
  }
}

}  // namespace

double earliest_common_free(const std::vector<const Timeline*>& timelines,
                            double after, double duration) {
  return common_free_fixed_point(timelines, after, duration);
}

double earliest_common_free(const std::vector<Timeline*>& timelines,
                            double after, double duration) {
  // t is non-decreasing across rounds, so every probe here resumes the
  // timeline's monotone cursor.
  return common_free_fixed_point(timelines, after, duration);
}

}  // namespace bsio::sim
