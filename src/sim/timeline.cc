#include "sim/timeline.h"

#include <algorithm>

namespace bsio::sim {

namespace {
constexpr double kEps = 1e-9;
}

double Timeline::earliest_free(double after, double duration) const {
  BSIO_DCHECK(duration >= 0.0);
  double t = after;
  // Find the first interval that could interfere.
  auto it = std::upper_bound(
      busy_.begin(), busy_.end(), t,
      [](double v, const Interval& iv) { return v < iv.end; });
  for (; it != busy_.end(); ++it) {
    if (t + duration <= it->start + kEps) return t;
    t = std::max(t, it->end);
  }
  return t;
}

void Timeline::reserve(double start, double duration) {
  if (duration <= 0.0) return;
  Interval iv{start, start + duration};
  auto it = std::upper_bound(
      busy_.begin(), busy_.end(), iv.start,
      [](double v, const Interval& o) { return v < o.start; });
  // Overlap check against neighbours.
  if (it != busy_.begin()) {
    BSIO_CHECK_MSG(std::prev(it)->end <= iv.start + kEps,
                   "timeline reservation overlaps previous interval");
  }
  if (it != busy_.end()) {
    BSIO_CHECK_MSG(iv.end <= it->start + kEps,
                   "timeline reservation overlaps next interval");
  }
  busy_.insert(it, iv);
}

void Timeline::release(double start, double end) {
  auto it = std::lower_bound(
      busy_.begin(), busy_.end(), start,
      [](const Interval& iv, double v) { return iv.start < v; });
  BSIO_CHECK_MSG(it != busy_.end() && it->start == start && it->end == end,
                 "timeline release does not match an existing reservation");
  busy_.erase(it);
}

void Timeline::truncate(double start, double new_end) {
  auto it = std::lower_bound(
      busy_.begin(), busy_.end(), start,
      [](const Interval& iv, double v) { return iv.start < v; });
  BSIO_CHECK_MSG(it != busy_.end() && it->start == start,
                 "timeline truncate does not match an existing reservation");
  if (new_end <= it->start) {
    busy_.erase(it);
    return;
  }
  BSIO_CHECK_MSG(new_end <= it->end,
                 "timeline truncate cannot extend a reservation");
  it->end = new_end;
}

double Timeline::busy_time() const {
  double total = 0.0;
  for (const auto& iv : busy_) total += iv.end - iv.start;
  return total;
}

void Timeline::validate() const {
  for (std::size_t i = 0; i < busy_.size(); ++i) {
    BSIO_CHECK(busy_[i].end > busy_[i].start);
    if (i > 0) BSIO_CHECK(busy_[i - 1].end <= busy_[i].start + kEps);
  }
}

double earliest_common_free(const std::vector<const Timeline*>& timelines,
                            double after, double duration) {
  double t = after;
  // Fixed-point iteration: each timeline can only push t forward, and every
  // pass either leaves t unchanged (all agree -> done) or advances past at
  // least one busy interval, so this terminates.
  for (;;) {
    double t0 = t;
    for (const Timeline* tl : timelines) {
      if (tl == nullptr) continue;
      t = tl->earliest_free(t, duration);
    }
    if (t == t0) return t;
  }
}

}  // namespace bsio::sim
