// Sub-batch plan: the contract between the schedulers and the execution
// engine.
//
// A plan names the tasks of one sub-batch, their compute-node assignment,
// and — for the IP scheduler, which decides data placement statically —
// fixed staging sources per (file, destination). Plans without fixed
// staging leave source selection to the engine's dynamic earliest-
// completion rule (paper Section 6).
#pragma once

#include <map>
#include <unordered_map>
#include <utility>
#include <vector>

#include "workload/types.h"

namespace bsio::sim {

enum class SourceKind {
  kRemote,   // stage from the file's home storage node
  kReplica,  // copy from the named compute node
};

struct StagingSource {
  SourceKind kind = SourceKind::kRemote;
  wl::NodeId src_node = wl::kInvalidNode;  // compute node, for kReplica
};

struct SubBatchPlan {
  std::vector<wl::TaskId> tasks;
  std::unordered_map<wl::TaskId, wl::NodeId> assignment;

  // IP-only: per (file, destination compute node) staging decision. Entries
  // are consulted once per (file, node) staging; missing entries (or stale
  // ones, e.g. the named source no longer holds the file) fall back to the
  // dynamic rule.
  std::map<std::pair<wl::FileId, wl::NodeId>, StagingSource> staging;

  // Proactive replications executed before the sub-batch's tasks (the Data
  // Least Loaded mechanism of the JobDataPresent baseline). Entries already
  // satisfied by the cache are skipped.
  std::vector<std::pair<wl::FileId, wl::NodeId>> prefetches;

  // Wall-clock floor for every reservation this plan's execution makes: the
  // streaming service stamps the instant the horizon window was committed,
  // so staging and exec blocks of a batch that arrived at time t never start
  // before t even on an idle cluster. 0 (the default) floors nothing and
  // keeps batch-mode execution bit-identical.
  double release_time = 0.0;

  bool empty() const { return tasks.empty(); }
};

}  // namespace bsio::sim
