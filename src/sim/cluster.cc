#include "sim/cluster.h"

#include <cmath>
#include <string>

#include "util/check.h"

namespace bsio::sim {

Status ClusterConfig::validate() const {
  if (num_compute_nodes == 0)
    return Err("ClusterConfig: num_compute_nodes must be > 0");
  if (num_storage_nodes == 0)
    return Err("ClusterConfig: num_storage_nodes must be > 0");
  if (!(storage_disk_bw > 0.0))
    return Err("ClusterConfig: storage_disk_bw must be > 0");
  if (!(storage_net_bw > 0.0))
    return Err("ClusterConfig: storage_net_bw must be > 0");
  if (!(compute_net_bw > 0.0))
    return Err("ClusterConfig: compute_net_bw must be > 0");
  if (!(local_disk_bw > 0.0))
    return Err("ClusterConfig: local_disk_bw must be > 0");
  if (!(disk_capacity > 0.0))
    return Err("ClusterConfig: disk_capacity must be > 0");
  if (!disk_capacity_per_node.empty()) {
    if (disk_capacity_per_node.size() != num_compute_nodes)
      return Err("ClusterConfig: per-node disk capacities must cover every "
                 "compute node (" +
                 std::to_string(disk_capacity_per_node.size()) +
                 " entries for " + std::to_string(num_compute_nodes) +
                 " nodes)");
    for (double cap : disk_capacity_per_node)
      if (!(cap > 0.0))
        return Err("ClusterConfig: per-node disk capacities must be > 0");
  }
  auto check_per_node = [](const std::vector<double>& v, std::size_t n,
                           const char* what) -> Status {
    if (v.empty()) return OkStatus();
    if (v.size() != n)
      return Err(std::string("ClusterConfig: ") + what + " must cover every "
                 "node (" + std::to_string(v.size()) + " entries for " +
                 std::to_string(n) + " nodes)");
    for (double bw : v)
      if (!(bw > 0.0))
        return Err(std::string("ClusterConfig: ") + what +
                   " entries must be > 0");
    return OkStatus();
  };
  if (Status s = check_per_node(storage_disk_bw_per_node, num_storage_nodes,
                                "storage_disk_bw_per_node");
      !s.ok())
    return s;
  if (Status s = check_per_node(compute_nic_bw, num_compute_nodes,
                                "compute_nic_bw");
      !s.ok())
    return s;
  if (Status s =
          check_per_node(compute_speed, num_compute_nodes, "compute_speed");
      !s.ok())
    return s;
  if (compute_rack.empty() != rack_uplink_bw.empty())
    return Err("ClusterConfig: compute_rack and rack_uplink_bw must be set "
               "together");
  if (!compute_rack.empty()) {
    if (compute_rack.size() != num_compute_nodes)
      return Err("ClusterConfig: compute_rack must cover every compute node (" +
                 std::to_string(compute_rack.size()) + " entries for " +
                 std::to_string(num_compute_nodes) + " nodes)");
    for (std::uint32_t r : compute_rack)
      if (r >= rack_uplink_bw.size())
        return Err("ClusterConfig: compute_rack refers to rack " +
                   std::to_string(r) + " but rack_uplink_bw has only " +
                   std::to_string(rack_uplink_bw.size()) + " entries");
    for (double bw : rack_uplink_bw)
      if (!(bw > 0.0))
        return Err("ClusterConfig: rack_uplink_bw entries must be > 0");
  }
  return OkStatus();
}

double ClusterConfig::aggregate_disk_capacity() const {
  double sum = 0.0;
  for (std::size_t i = 0; i < num_compute_nodes; ++i) {
    const double cap = node_disk_capacity(i);
    if (!std::isfinite(cap)) return kUnlimited;
    sum += cap;
  }
  return sum;
}

bool ClusterConfig::unlimited_disk() const {
  for (std::size_t i = 0; i < num_compute_nodes; ++i)
    if (std::isfinite(node_disk_capacity(i))) return false;
  return true;
}

ClusterConfig xio_cluster(std::size_t compute_nodes,
                          std::size_t storage_nodes) {
  ClusterConfig c;
  c.num_compute_nodes = compute_nodes;
  c.num_storage_nodes = storage_nodes;
  c.storage_disk_bw = 210.0 * kMB;  // FAStT600 pool measurement [3]
  c.storage_net_bw = 800.0 * kMB;   // 8 Gbps Infiniband effective
  c.shared_uplink_bw = 0.0;
  // Node-to-node copies move a file disk-to-disk: the Infiniband link is
  // not the bottleneck, the endpoint disks are (~2006-era local disks).
  c.compute_net_bw = 200.0 * kMB;
  // Tasks re-read their freshly staged inputs, which are still hot in the
  // 4 GB page cache of the dual-Xeon nodes.
  c.local_disk_bw = 500.0 * kMB;
  return c;
}

ClusterConfig osumed_cluster(std::size_t compute_nodes,
                             std::size_t storage_nodes) {
  ClusterConfig c;
  c.num_compute_nodes = compute_nodes;
  c.num_storage_nodes = storage_nodes;
  c.storage_disk_bw = 21.0 * kMB;   // 18-25 MB/s PIII nodes
  c.storage_net_bw = 12.5 * kMB;    // 100 Mbps Ethernet
  c.shared_uplink_bw = 12.5 * kMB;  // shared OSUMED<->OSC link
  c.compute_net_bw = 200.0 * kMB;   // disk-to-disk copy over OSC Infiniband
  c.local_disk_bw = 500.0 * kMB;
  return c;
}

ClusterConfig xio_mixed_cluster(std::size_t compute_nodes,
                                std::size_t storage_nodes) {
  ClusterConfig c = xio_cluster(compute_nodes, storage_nodes);
  // Odd-numbered storage nodes are the older 100 MB/s generation.
  c.storage_disk_bw_per_node.assign(storage_nodes, c.storage_disk_bw);
  for (std::size_t s = 1; s < storage_nodes; s += 2)
    c.storage_disk_bw_per_node[s] = 100.0 * kMB;
  // Second half of the compute nodes are a newer procurement wave: 1.6x
  // CPUs and 800 MB/s NICs; the first half keep 200 MB/s NICs, which then
  // cap their replication traffic below compute_net_bw.
  c.compute_nic_bw.assign(compute_nodes, 200.0 * kMB);
  c.compute_speed.assign(compute_nodes, 1.0);
  for (std::size_t i = compute_nodes / 2; i < compute_nodes; ++i) {
    c.compute_nic_bw[i] = 800.0 * kMB;
    c.compute_speed[i] = 1.6;
  }
  return c;
}

ClusterConfig racked_cluster(std::size_t compute_nodes,
                             std::size_t storage_nodes, std::size_t racks) {
  ClusterConfig c = xio_cluster(compute_nodes, storage_nodes);
  c.compute_rack.resize(compute_nodes);
  for (std::size_t i = 0; i < compute_nodes; ++i)
    c.compute_rack[i] = static_cast<std::uint32_t>(i % racks);
  // Each rack uplink runs at a quarter of the storage-compute path, so any
  // two concurrent remote stages into one rack already contend.
  c.rack_uplink_bw.assign(racks, c.storage_net_bw / 4.0);
  return c;
}

namespace {
// SplitMix64: the repo's standard deterministic stream (see hypergraph.cc).
std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}
// Multiplicative factor in [1/(1+skew), 1+skew], log-uniform.
double skew_factor(double skew, std::uint64_t& state) {
  const double u = static_cast<double>(splitmix64(state) >> 11) * 0x1.0p-53;
  const double span = std::log1p(skew);  // log(1+skew)
  return std::exp((2.0 * u - 1.0) * span);
}
}  // namespace

ClusterConfig make_skewed_cluster(const ClusterConfig& base, double skew,
                                  std::uint64_t seed) {
  if (!(skew > 0.0)) return base;
  ClusterConfig c = base;
  std::uint64_t state = seed * 0x2545f4914f6cdd1dull + 0x9e3779b97f4a7c15ull;
  c.storage_disk_bw_per_node.resize(c.num_storage_nodes);
  for (std::size_t s = 0; s < c.num_storage_nodes; ++s)
    c.storage_disk_bw_per_node[s] =
        base.storage_node_disk_bw(s) * skew_factor(skew, state);
  c.compute_nic_bw.resize(c.num_compute_nodes);
  c.compute_speed.resize(c.num_compute_nodes);
  for (std::size_t i = 0; i < c.num_compute_nodes; ++i) {
    const double nic_base = base.compute_nic_bw.empty()
                                ? base.storage_net_bw
                                : base.compute_nic_bw[i];
    c.compute_nic_bw[i] = nic_base * skew_factor(skew, state);
    const double speed_base =
        base.compute_speed.empty() ? 1.0 : base.compute_speed[i];
    c.compute_speed[i] = speed_base * skew_factor(skew, state);
  }
  return c;
}

}  // namespace bsio::sim
