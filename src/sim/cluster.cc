#include "sim/cluster.h"

#include <cmath>
#include <string>

#include "util/check.h"

namespace bsio::sim {

Status ClusterConfig::validate() const {
  if (num_compute_nodes == 0)
    return Err("ClusterConfig: num_compute_nodes must be > 0");
  if (num_storage_nodes == 0)
    return Err("ClusterConfig: num_storage_nodes must be > 0");
  if (!(storage_disk_bw > 0.0))
    return Err("ClusterConfig: storage_disk_bw must be > 0");
  if (!(storage_net_bw > 0.0))
    return Err("ClusterConfig: storage_net_bw must be > 0");
  if (!(compute_net_bw > 0.0))
    return Err("ClusterConfig: compute_net_bw must be > 0");
  if (!(local_disk_bw > 0.0))
    return Err("ClusterConfig: local_disk_bw must be > 0");
  if (!(disk_capacity > 0.0))
    return Err("ClusterConfig: disk_capacity must be > 0");
  if (!disk_capacity_per_node.empty()) {
    if (disk_capacity_per_node.size() != num_compute_nodes)
      return Err("ClusterConfig: per-node disk capacities must cover every "
                 "compute node (" +
                 std::to_string(disk_capacity_per_node.size()) +
                 " entries for " + std::to_string(num_compute_nodes) +
                 " nodes)");
    for (double cap : disk_capacity_per_node)
      if (!(cap > 0.0))
        return Err("ClusterConfig: per-node disk capacities must be > 0");
  }
  return OkStatus();
}

double ClusterConfig::aggregate_disk_capacity() const {
  double sum = 0.0;
  for (std::size_t i = 0; i < num_compute_nodes; ++i) {
    const double cap = node_disk_capacity(i);
    if (!std::isfinite(cap)) return kUnlimited;
    sum += cap;
  }
  return sum;
}

bool ClusterConfig::unlimited_disk() const {
  for (std::size_t i = 0; i < num_compute_nodes; ++i)
    if (std::isfinite(node_disk_capacity(i))) return false;
  return true;
}

ClusterConfig xio_cluster(std::size_t compute_nodes,
                          std::size_t storage_nodes) {
  ClusterConfig c;
  c.num_compute_nodes = compute_nodes;
  c.num_storage_nodes = storage_nodes;
  c.storage_disk_bw = 210.0 * kMB;  // FAStT600 pool measurement [3]
  c.storage_net_bw = 800.0 * kMB;   // 8 Gbps Infiniband effective
  c.shared_uplink_bw = 0.0;
  // Node-to-node copies move a file disk-to-disk: the Infiniband link is
  // not the bottleneck, the endpoint disks are (~2006-era local disks).
  c.compute_net_bw = 200.0 * kMB;
  // Tasks re-read their freshly staged inputs, which are still hot in the
  // 4 GB page cache of the dual-Xeon nodes.
  c.local_disk_bw = 500.0 * kMB;
  return c;
}

ClusterConfig osumed_cluster(std::size_t compute_nodes,
                             std::size_t storage_nodes) {
  ClusterConfig c;
  c.num_compute_nodes = compute_nodes;
  c.num_storage_nodes = storage_nodes;
  c.storage_disk_bw = 21.0 * kMB;   // 18-25 MB/s PIII nodes
  c.storage_net_bw = 12.5 * kMB;    // 100 Mbps Ethernet
  c.shared_uplink_bw = 12.5 * kMB;  // shared OSUMED<->OSC link
  c.compute_net_bw = 200.0 * kMB;   // disk-to-disk copy over OSC Infiniband
  c.local_disk_bw = 500.0 * kMB;
  return c;
}

}  // namespace bsio::sim
