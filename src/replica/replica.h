// Replica lifecycle manager: tiered replication targets, background repair
// traffic, and write-back of mutable files (DESIGN.md §15).
//
// Modeled on SLASH2's MDS-driven replication: the manager is the metadata
// authority that knows, per file, the DESIRED replication factor (by
// popularity tier) and the ACTUAL one (alive cached copies plus the home
// storage copy while it is current), and closes the gap with background
// repair jobs. It never executes transfers itself — it asks the
// ExecutionEngine to reserve them on the very same port/link Timelines the
// foreground traffic uses (ExecutionEngine::stage_replica / flush_to_home),
// under a configurable bandwidth cap, so repair competes honestly with task
// I/O instead of living in a free side channel.
//
// The copy-count model: a file's RF counts DISTINCT current copies — the
// home storage copy (while no write has outdated it) plus every alive
// compute node caching the current version. Writes (wl::TaskInfo::outputs)
// bump the file's version epoch inside the engine, eagerly invalidate every
// other cached copy, and leave the home stale; the manager's repair pass
// flushes dirty homes FIRST (write-back, so the home can source fan-out)
// and then re-replicates up to the tier target. A fail-stop crash drops a
// node's copies (PR 1 semantics); the next repair pass detects the deficit
// and re-creates them — lost replicas are repaired, not silently forgotten.
//
// With ReplicaConfig::enabled false (the default) nothing here runs and
// every simulation stays bit-identical to the replication-free engine
// (pinned against the PR 4 topology goldens in tests/replica_test.cc).
#pragma once

#include <cstdint>
#include <vector>

#include "sim/engine.h"
#include "util/error.h"
#include "workload/types.h"

namespace bsio::replica {

// One popularity tier: files whose popularity (remaining demand, or the
// service's cross-batch access count via note_popularity) is at least
// min_popularity get target_rf desired copies. The matching tier is the
// LAST one whose min_popularity <= the file's popularity.
struct ReplicaTier {
  double min_popularity = 0.0;
  std::uint32_t target_rf = 1;
};

struct ReplicaConfig {
  // Master switch. Off = the manager is never constructed and the engine's
  // replica surface is never called; runs are bit-identical to PR 4.
  bool enabled = false;
  // Tiers sorted by strictly increasing min_popularity (overlapping or
  // unordered boundaries are a typed validation error); must be non-empty
  // when enabled, and tier 0 should carry min_popularity 0 so every file
  // has a target. target_rf counts the home copy too, so its ceiling is
  // num_compute_nodes + 1.
  std::vector<ReplicaTier> tiers;
  // Per-transfer repair bandwidth ceiling in bytes/s; 0 = the path's own
  // bandwidth (negative is a validation error). The cap lengthens each
  // repair reservation, which is exactly how repair yields link time to
  // foreground traffic.
  double repair_bandwidth_cap = 0.0;
  // Repair transfers scheduled per run_repairs() round; 0 = no bound. A
  // bound spreads repair over rounds instead of storming the links after a
  // crash.
  std::size_t max_repairs_per_round = 0;

  // Typed validation (surfaced through run_batch / StreamServiceLoop):
  // empty tier table, target_rf of 0 or exceeding num_compute_nodes + 1,
  // negative bandwidth cap, negative / non-increasing tier boundaries.
  Status validate(std::size_t num_compute_nodes) const;

  // Desired copy count for a file of the given popularity (requires a
  // validated, non-empty tier table).
  std::uint32_t target_rf(double popularity) const;
};

// Residency of one file, derived from live engine state (nothing cached in
// the manager — the engine's cluster state IS the truth).
enum class Residency {
  kSatisfied,  // current copies >= tier target, home copy current
  kDegraded,   // fewer current copies than the target (crash loss, tier
               // raise, or a fresh write not yet fanned out)
  kDirty,      // the newest version has not been flushed home yet
  kLost,       // no alive node holds the newest version and the home is
               // stale: reads roll back to the old version (lost_versions)
};

// What one repair round scheduled.
struct RepairReport {
  std::size_t flushes_scheduled = 0;   // dirty homes written back
  std::size_t replicas_scheduled = 0;  // fan-out copies placed
  // Repair work recognised but not scheduled this round: budget exhausted,
  // no destination with free space, or no usable source.
  std::size_t deferred = 0;
  // Latest completion instant over everything scheduled this round (0 when
  // nothing was).
  double last_completion = 0.0;
};

class ReplicaManager {
 public:
  // `config` must already be validated against the cluster (run_batch and
  // StreamServiceLoop do; direct users call ReplicaConfig::validate).
  // `workload` must outlive the manager.
  ReplicaManager(const wl::Workload& workload, const ReplicaConfig& config);

  // Popularity override for `file` (e.g. the service's cross-batch access
  // counts, which outlive any single engine's pending-request counters).
  // Files without an override use ExecutionEngine::pending_requests.
  void note_popularity(wl::FileId file, double popularity);

  double popularity(const sim::ExecutionEngine& engine, wl::FileId file) const;
  std::uint32_t desired_rf(const sim::ExecutionEngine& engine,
                           wl::FileId file) const;
  // Distinct current copies: alive compute holders + the home while valid.
  std::uint32_t actual_rf(const sim::ExecutionEngine& engine,
                          wl::FileId file) const;
  Residency residency(const sim::ExecutionEngine& engine,
                      wl::FileId file) const;

  // Files whose residency is not kSatisfied, ascending. kLost files are
  // included: they stay below target until their next write recreates a
  // current version (repair cannot resurrect a lost epoch).
  std::vector<wl::FileId> files_below_target(
      const sim::ExecutionEngine& engine) const;

  // One deterministic repair round at simulated time `now`: flushes every
  // dirty home first (oldest file id first), then fans out replicas for
  // under-replicated files, choosing destinations by most free disk (ties
  // to the lowest node id) and never evicting — a file that fits nowhere is
  // deferred to a later round. Scheduled transfers land on the engine's
  // shared Timelines at or after `now`, capped by repair_bandwidth_cap.
  RepairReport run_repairs(sim::ExecutionEngine& engine, double now);

  const ReplicaConfig& config() const { return cfg_; }

 private:
  const wl::Workload& workload_;
  ReplicaConfig cfg_;
  std::vector<double> popularity_override_;  // per file; < 0 = no override
};

}  // namespace bsio::replica
