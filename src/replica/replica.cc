#include "replica/replica.h"

#include <algorithm>
#include <string>

#include "util/check.h"

namespace bsio::replica {

Status ReplicaConfig::validate(std::size_t num_compute_nodes) const {
  if (!enabled) return OkStatus();
  if (tiers.empty())
    return Err("ReplicaConfig: enabled but the tier table is empty (add at "
               "least a catch-all tier with min_popularity 0)");
  if (!(repair_bandwidth_cap >= 0.0))
    return Err("ReplicaConfig: repair_bandwidth_cap must be >= 0 (0 = the "
               "path's own bandwidth)");
  const std::uint32_t max_rf =
      static_cast<std::uint32_t>(num_compute_nodes) + 1;  // + the home copy
  for (std::size_t i = 0; i < tiers.size(); ++i) {
    const ReplicaTier& t = tiers[i];
    if (!(t.min_popularity >= 0.0))
      return Err("ReplicaConfig: tier " + std::to_string(i) +
                 " has a negative popularity boundary");
    if (t.target_rf == 0)
      return Err("ReplicaConfig: tier " + std::to_string(i) +
                 " targets 0 copies (files must keep at least the home "
                 "copy)");
    if (t.target_rf > max_rf)
      return Err("ReplicaConfig: tier " + std::to_string(i) + " targets " +
                 std::to_string(t.target_rf) + " copies but the cluster has " +
                 std::to_string(num_compute_nodes) +
                 " compute nodes plus one home copy (" +
                 std::to_string(max_rf) + " distinct locations)");
    if (i > 0 && !(t.min_popularity > tiers[i - 1].min_popularity))
      return Err("ReplicaConfig: tier boundaries overlap — tier " +
                 std::to_string(i) + " starts at popularity " +
                 std::to_string(t.min_popularity) + " but tier " +
                 std::to_string(i - 1) + " already starts at " +
                 std::to_string(tiers[i - 1].min_popularity) +
                 " (boundaries must be strictly increasing)");
  }
  return OkStatus();
}

std::uint32_t ReplicaConfig::target_rf(double popularity) const {
  BSIO_CHECK_MSG(!tiers.empty(), "target_rf needs a validated tier table");
  // Last tier whose boundary is at or below the popularity; a popularity
  // below every boundary falls back to tier 0.
  std::uint32_t rf = tiers.front().target_rf;
  for (const ReplicaTier& t : tiers) {
    if (popularity < t.min_popularity) break;
    rf = t.target_rf;
  }
  return rf;
}

ReplicaManager::ReplicaManager(const wl::Workload& workload,
                               const ReplicaConfig& config)
    : workload_(workload),
      cfg_(config),
      popularity_override_(workload.num_files(), -1.0) {
  BSIO_CHECK_MSG(cfg_.enabled,
                 "ReplicaManager requires an enabled ReplicaConfig");
  BSIO_CHECK_MSG(!cfg_.tiers.empty(),
                 "ReplicaManager requires a validated tier table");
}

void ReplicaManager::note_popularity(wl::FileId file, double popularity) {
  BSIO_CHECK(file < popularity_override_.size());
  BSIO_CHECK_MSG(popularity >= 0.0, "popularity must be non-negative");
  popularity_override_[file] = popularity;
}

double ReplicaManager::popularity(const sim::ExecutionEngine& engine,
                                  wl::FileId file) const {
  if (popularity_override_[file] >= 0.0) return popularity_override_[file];
  return engine.pending_requests(file);
}

std::uint32_t ReplicaManager::desired_rf(const sim::ExecutionEngine& engine,
                                         wl::FileId file) const {
  return cfg_.target_rf(popularity(engine, file));
}

std::uint32_t ReplicaManager::actual_rf(const sim::ExecutionEngine& engine,
                                        wl::FileId file) const {
  // Crash recovery clears a dead node's cache (ClusterState::clear_node),
  // so every indexed holder is alive and current (writes eagerly drop stale
  // copies) — the count is exact without filtering.
  std::uint32_t rf =
      static_cast<std::uint32_t>(engine.state().num_copies(file));
  if (engine.home_valid(file)) ++rf;
  return rf;
}

Residency ReplicaManager::residency(const sim::ExecutionEngine& engine,
                                    wl::FileId file) const {
  const bool home_ok = engine.home_valid(file);
  const std::size_t copies = engine.state().num_copies(file);
  if (!home_ok && copies == 0) return Residency::kLost;
  if (!home_ok) return Residency::kDirty;
  if (actual_rf(engine, file) < desired_rf(engine, file))
    return Residency::kDegraded;
  return Residency::kSatisfied;
}

std::vector<wl::FileId> ReplicaManager::files_below_target(
    const sim::ExecutionEngine& engine) const {
  std::vector<wl::FileId> out;
  for (wl::FileId f = 0; f < workload_.num_files(); ++f)
    if (residency(engine, f) != Residency::kSatisfied) out.push_back(f);
  return out;
}

RepairReport ReplicaManager::run_repairs(sim::ExecutionEngine& engine,
                                         double now) {
  RepairReport report;
  const std::size_t budget = cfg_.max_repairs_per_round;
  auto budget_left = [&] {
    return budget == 0 ||
           report.flushes_scheduled + report.replicas_scheduled < budget;
  };

  // Pass 1 — write-back: flush every dirty home whose current version is
  // still alive somewhere. Doing this before fan-out lets the home storage
  // port source the new copies, and bounds the window in which a writer
  // crash loses the newest version.
  for (wl::FileId f = 0; f < workload_.num_files(); ++f) {
    if (engine.home_valid(f)) continue;
    if (engine.state().num_copies(f) == 0) continue;  // kLost: unrepairable
    if (!budget_left()) {
      ++report.deferred;
      continue;
    }
    Result<double> done =
        engine.flush_to_home(f, now, cfg_.repair_bandwidth_cap);
    if (!done.ok()) {
      ++report.deferred;
      continue;
    }
    ++report.flushes_scheduled;
    report.last_completion = std::max(report.last_completion, done.value());
  }

  // Pass 2 — fan-out: bring every under-replicated file up to its tier
  // target, one copy at a time, onto the alive non-holder with the most
  // free disk (ties to the lowest node id). Repair never evicts: a copy
  // that fits nowhere is deferred to a later round.
  const auto& alive = engine.alive_mask();
  for (wl::FileId f = 0; f < workload_.num_files(); ++f) {
    std::uint32_t have = actual_rf(engine, f);
    const std::uint32_t want = desired_rf(engine, f);
    while (have < want) {
      if (!budget_left()) {
        ++report.deferred;
        break;
      }
      // Alive non-holders with room, most free disk first (ties keep the
      // lowest node id). Each is OFFERED the copy in turn: the engine may
      // refuse a destination the manager cannot rule out itself — e.g. a
      // node whose scheduled fail-stop lands before the copy completes —
      // so one refusal must not strand the file.
      std::vector<wl::NodeId> dsts;
      for (wl::NodeId n = 0; n < alive.size(); ++n) {
        if (!alive[n] || engine.state().has(n, f)) continue;
        if (engine.state().free_bytes(n) < workload_.file_size(f)) continue;
        dsts.push_back(n);
      }
      std::stable_sort(dsts.begin(), dsts.end(),
                       [&](wl::NodeId a, wl::NodeId b) {
                         return engine.state().free_bytes(a) >
                                engine.state().free_bytes(b);
                       });
      bool placed = false;
      for (wl::NodeId dst : dsts) {
        Result<double> done =
            engine.stage_replica(f, dst, now, cfg_.repair_bandwidth_cap);
        if (!done.ok()) continue;
        ++report.replicas_scheduled;
        report.last_completion =
            std::max(report.last_completion, done.value());
        ++have;
        placed = true;
        break;
      }
      if (!placed) {
        ++report.deferred;
        break;
      }
    }
  }
  return report;
}

}  // namespace bsio::replica
