// Deterministic fork-join thread pool for the parallel planners.
//
// The pool exposes exactly one primitive, parallel_for, with a hard
// determinism contract: the index range [0, n) is split into *statically*
// sized contiguous chunks (the split depends only on n and the pool size,
// never on timing), each index is visited exactly once, and the body must
// write only to state owned by its index (e.g. slot i of a preallocated
// output array). Under that contract a parallel run produces bit-identical
// results to an inline run at any thread count — any ordering decision
// (argmin ties, heap pushes, ...) is made by the caller in a sequential
// reduction over the per-index outputs, in index order.
//
// The caller participates in chunk processing (a pool of size T has T-1
// background workers), so `ThreadPool(1)` spawns no threads and runs
// everything inline. Nested parallel_for calls — e.g. FM refinement inside
// a parallel recursive-bisection branch — detect the enclosing loop via a
// thread-local flag and degrade to inline execution instead of deadlocking.
// One loop runs at a time per pool; concurrent callers serialize on an
// internal mutex.
//
// The process-wide pool (ThreadPool::global()) is sized from the
// BSIO_THREADS environment variable, falling back to the hardware
// concurrency. set_global_threads resizes it between planning rounds (used
// by bench/perf_makespan's thread sweep); it must not race with an active
// parallel_for.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace bsio {

class ThreadPool {
 public:
  // `threads` counts the caller: threads <= 1 means fully inline (no
  // background workers). 0 picks default_threads().
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t num_threads() const { return workers_.size() + 1; }

  // Invokes body(begin, end) over disjoint sub-ranges covering [0, n).
  void parallel_for(std::size_t n,
                    const std::function<void(std::size_t, std::size_t)>& body);

  // Per-index convenience wrapper around parallel_for.
  template <typename F>
  void parallel_for_each(std::size_t n, F&& f) {
    parallel_for(n, [&f](std::size_t begin, std::size_t end) {
      for (std::size_t i = begin; i < end; ++i) f(i);
    });
  }

  // BSIO_THREADS if set and > 0, else std::thread::hardware_concurrency.
  static std::size_t default_threads();

  // Process-wide pool used by the planners.
  static ThreadPool& global();

  // Recreates the global pool with `threads` threads (0 = default_threads).
  // Not safe while a parallel_for is in flight on the old pool.
  static void set_global_threads(std::size_t threads);

 private:
  struct Loop {
    const std::function<void(std::size_t, std::size_t)>* body = nullptr;
    std::size_t n = 0;
    std::size_t num_chunks = 0;
    std::atomic<std::size_t> next_chunk{0};
    std::size_t workers_in = 0;  // workers inside work_on; guarded by mu_
  };

  void worker_main();
  // Processes chunks of `loop` until none remain unclaimed.
  void work_on(Loop& loop);

  std::vector<std::thread> workers_;

  std::mutex mu_;                  // guards current_, generation_, stop_
  std::condition_variable wake_;   // workers wait for a new loop / stop
  std::condition_variable done_;   // caller waits for loop completion
  Loop* current_ = nullptr;
  std::uint64_t generation_ = 0;
  bool stop_ = false;

  std::mutex caller_mu_;  // serializes concurrent parallel_for callers
};

}  // namespace bsio
