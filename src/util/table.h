// Aligned text table / CSV emitter used by the bench harness to print
// paper-style result rows.
#pragma once

#include <string>
#include <vector>

namespace bsio {

class Table {
 public:
  explicit Table(std::vector<std::string> header);

  // Row cells; formatting helpers for doubles are on the caller side
  // (see format_seconds / format_fixed below).
  void add_row(std::vector<std::string> cells);

  std::size_t num_rows() const { return rows_.size(); }

  // Render aligned, pipe-separated text (markdown-ish, readable in a log).
  std::string to_text() const;
  // Render as CSV.
  std::string to_csv() const;

  // Print to stdout with a title banner.
  void print(const std::string& title) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

std::string format_fixed(double v, int digits);
std::string format_seconds(double seconds);  // "123.4s" / "12.34s" adaptive
std::string format_bytes(double bytes);      // "1.5 GB" adaptive

}  // namespace bsio
