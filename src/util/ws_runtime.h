// Work-stealing runtime for the parallel planners (replaces the PR 2
// static fork-join pool).
//
// Architecture: T worker slots, each owning a Chase-Lev deque (LIFO local
// pop, FIFO steal). Slots 1..T-1 are background threads; slot 0 is adopted
// by the external caller for the duration of a top-level parallel construct
// (concurrent external callers serialize on an internal mutex), so a
// runtime of size 1 spawns no threads and runs everything inline. Nested
// constructs — FM refinement inside a bisection branch, a parallel sweep
// inside a spawned B&B wave — push to the current worker's own deque and
// help until their group drains; jobs never block, so helping cannot
// deadlock. Idle workers spin over the victim list a few rounds, then park
// on a condvar; any push bumps an epoch and wakes them.
//
// Affinity: when the host exposes multiple CPU packages (sysfs
// package_id), workers are pinned one-per-CPU, slots are tagged with their
// cache group, steals prefer same-group victims, and jobs carrying an
// affinity hint are routed through that group's inject queue. On a
// single-socket host (the common case) everything collapses to one group
// and no pinning — the hint becomes a no-op.
//
// Determinism contract (unchanged from the fork-join pool, now enforced
// across arbitrary steal interleavings): parallel_for splits [0, n) into
// statically sized contiguous chunks — a pure function of (n, num_threads),
// never of timing — each index is visited exactly once, and the body must
// write only to state owned by its index (slot i of a preallocated output
// array). Every ordering decision (argmin ties, heap pushes, reductions) is
// made by the caller in a sequential index-order pass over the slots.
// parallel_reduce packages that discipline: per-chunk partials in stable
// slots, folded in chunk index order on the calling thread. Under this
// contract plans are bit-identical at any thread count and any steal
// schedule; `force_steal` inverts the local-pop preference to let tests
// drive maximally adversarial schedules through the same contract.
//
// The process-wide runtime (WsRuntime::global()) is sized from the
// BSIO_THREADS environment variable. Malformed, zero, or negative values
// are a typed bsio::Error: validate_env()/env_threads() surface it to
// callers that can report it (run_batch, bench mains); constructing a
// runtime with the variable malformed is an internal invariant violation
// and aborts with the same message.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "util/error.h"

namespace bsio {

namespace ws_internal {

// A unit of work: fn(ctx, index) plus the group counter it completes
// against. Jobs live in caller-owned stable storage (a stack array for
// parallel_for chunks, a TaskGroup-owned deque for spawns); the runtime
// only moves Job pointers.
struct Job {
  void (*fn)(void* ctx, std::size_t index) = nullptr;
  void* ctx = nullptr;
  std::size_t index = 0;
  std::atomic<std::size_t>* pending = nullptr;  // decremented after fn runs
};

// Chase-Lev work-stealing deque of Job pointers (Chase & Lev 2005, in the
// C11-atomics formulation of Lê et al. 2013). The owner pushes and pops at
// the bottom (LIFO); thieves steal from the top (FIFO). Deviations from the
// paper: the fence-sensitive index operations use seq_cst accesses instead
// of standalone fences (ThreadSanitizer models atomics, not fences), and
// grown buffers are retired to an owner-held list instead of freed, since
// a thief may still be reading the old array.
class Deque {
 public:
  Deque();
  ~Deque() = default;

  Deque(const Deque&) = delete;
  Deque& operator=(const Deque&) = delete;

  void push(Job* job);  // owner only
  Job* pop();           // owner only; nullptr when empty
  Job* steal();         // any thief; nullptr when empty or a race lost

 private:
  struct Buffer {
    explicit Buffer(std::int64_t capacity)
        : cap(capacity), mask(capacity - 1), arr(new std::atomic<Job*>[cap]) {}
    Job* get(std::int64_t i) const {
      return arr[i & mask].load(std::memory_order_relaxed);
    }
    void put(std::int64_t i, Job* j) {
      arr[i & mask].store(j, std::memory_order_relaxed);
    }
    const std::int64_t cap;
    const std::int64_t mask;
    std::unique_ptr<std::atomic<Job*>[]> arr;
  };

  Buffer* grow(Buffer* old, std::int64_t top, std::int64_t bottom);

  std::atomic<std::int64_t> top_{0};
  std::atomic<std::int64_t> bottom_{0};
  std::atomic<Buffer*> buffer_{nullptr};
  std::vector<std::unique_ptr<Buffer>> buffers_;  // current + retired
};

}  // namespace ws_internal

class WsRuntime {
 public:
  struct Options {
    // Tests only: prefer stealing from other workers over popping the own
    // deque, driving the most adversarial schedule the determinism
    // contract must survive.
    bool force_steal = false;
    // Pin workers to CPUs and group them by package when the host has more
    // than one package. Off collapses to a single anonymous group.
    bool affinity = true;
  };

  // `threads` counts the caller: threads <= 1 means no background workers.
  // 0 picks default_threads() (aborts if BSIO_THREADS is set but invalid —
  // validate_env() first on paths that want the typed error).
  explicit WsRuntime(std::size_t threads = 0) : WsRuntime(threads, Options{}) {}
  WsRuntime(std::size_t threads, Options options);
  ~WsRuntime();

  WsRuntime(const WsRuntime&) = delete;
  WsRuntime& operator=(const WsRuntime&) = delete;

  std::size_t num_threads() const { return slots_.size(); }
  // Distinct cache groups the workers were placed into (1 on single-socket
  // hosts or with affinity off).
  std::size_t num_groups() const { return num_groups_; }

  // Invokes body(begin, end) over disjoint static sub-ranges covering
  // [0, n); see the determinism contract above.
  void parallel_for(std::size_t n,
                    const std::function<void(std::size_t, std::size_t)>& body);

  // Per-index convenience wrapper around parallel_for.
  template <typename F>
  void parallel_for_each(std::size_t n, F&& f) {
    parallel_for(n, [&f](std::size_t begin, std::size_t end) {
      for (std::size_t i = begin; i < end; ++i) f(i);
    });
  }

  // Deterministic reduction: partials[c] = fold of map(i) over chunk c via
  // combine, chunks processed in parallel, then folded into `init` in chunk
  // index order on the calling thread. Bit-identical at any thread count
  // only if the chunk count is — callers that need cross-thread-count
  // stability pass an explicit num_chunks; 0 uses the parallel_for default
  // (min(n, 4 * num_threads())).
  template <typename T, typename Map, typename Combine>
  T parallel_reduce(std::size_t n, T init, Map&& map, Combine&& combine,
                    std::size_t num_chunks = 0) {
    if (n == 0) return init;
    const std::size_t nc =
        num_chunks > 0 ? std::min(n, num_chunks) : default_chunks(n);
    std::vector<T> partials(nc, init);
    std::vector<std::uint8_t> nonempty(nc, 0);
    parallel_for_slots(n, nc, [&](std::size_t c, std::size_t begin,
                                  std::size_t end) {
      T acc = map(begin);
      for (std::size_t i = begin + 1; i < end; ++i) acc = combine(acc, map(i));
      partials[c] = acc;
      nonempty[c] = 1;
    });
    T acc = init;
    for (std::size_t c = 0; c < nc; ++c)
      if (nonempty[c]) acc = combine(acc, partials[c]);
    return acc;
  }

  // Irregular fan-out: spawn independent jobs, then wait() helps run them
  // (and anything else in the runtime) until all have completed. Usable
  // from an external thread (adopts worker slot 0) or from inside a worker
  // (nested). Jobs must not block; they may spawn into the same group.
  class TaskGroup {
   public:
    explicit TaskGroup(WsRuntime& rt);
    ~TaskGroup();

    TaskGroup(const TaskGroup&) = delete;
    TaskGroup& operator=(const TaskGroup&) = delete;

    // Runs fn(ctx, index) on some worker. `affinity` >= 0 hints the cache
    // group the job prefers (ignored on single-group hosts).
    void spawn(void (*fn)(void*, std::size_t), void* ctx, std::size_t index,
               int affinity = -1);
    void wait();

   private:
    WsRuntime& rt_;
    bool adopted_slot_;  // this group took worker slot 0 for an external caller
    std::atomic<std::size_t> pending_{0};
    std::deque<ws_internal::Job> jobs_;  // stable storage for spawned jobs
  };

  // BSIO_THREADS as a typed value: the thread count if set and valid, 0 if
  // unset, Error if set but malformed / zero / negative / out of range.
  static Result<std::size_t> env_threads();
  // OkStatus() when BSIO_THREADS is unset or valid; the parse Error
  // otherwise. Entry points (run_batch, bench mains) call this before the
  // first global() touch so users get an error message, not an abort.
  static Status validate_env();

  // BSIO_THREADS if set (aborts when invalid), else hardware concurrency.
  static std::size_t default_threads();

  // Process-wide runtime used by the planners.
  static WsRuntime& global();

  // Recreates the global runtime with `threads` threads (0 = default).
  // Not safe while a parallel construct is in flight on the old runtime.
  // The Options overload lets tests drive the planners through adversarial
  // schedules (force_steal) on the shared runtime.
  static void set_global_threads(std::size_t threads);
  static void set_global_threads(std::size_t threads, Options options);

 private:
  friend class TaskGroup;

  struct Slot {
    ws_internal::Deque deque;
    int group = 0;
    unsigned steal_seed = 0;  // per-slot xorshift state for victim order
  };

  std::size_t default_chunks(std::size_t n) const {
    return std::min(n, num_threads() * 4);
  }

  // parallel_for over static chunks, handing the body (chunk, begin, end).
  void parallel_for_slots(
      std::size_t n, std::size_t nc,
      const std::function<void(std::size_t, std::size_t, std::size_t)>& body);

  // Pushes `job` from the current thread: onto the own deque when the
  // thread holds a slot, else onto an inject queue. Honors job affinity.
  void push_job(ws_internal::Job* job, int affinity);
  // One attempt to find runnable work for slot `self` (may be npos for a
  // helper without a slot — inject queues and steals only).
  ws_internal::Job* find_job(std::size_t self);
  ws_internal::Job* pop_inject(int group);
  void run_job(ws_internal::Job* job);
  // Helps until *pending drops to zero, running any runtime work found.
  void help_until(const std::atomic<std::size_t>& pending);
  void worker_main(std::size_t slot);
  void wake_workers();

  // Adopt / release worker slot 0 for an external calling thread.
  bool adopt_caller_slot();
  void release_caller_slot();

  Options options_;
  std::vector<std::unique_ptr<Slot>> slots_;
  std::vector<std::thread> workers_;
  std::size_t num_groups_ = 1;

  // Inject queues, one per cache group: affinity-hinted jobs and pushes
  // from threads without a slot land here. Mutex-guarded; pushes are chunk-
  // granular so this is never a hot path.
  struct InjectQueue {
    std::mutex mu;
    std::deque<ws_internal::Job*> jobs;
  };
  std::vector<std::unique_ptr<InjectQueue>> inject_;

  std::mutex caller_mu_;  // serializes external top-level callers (slot 0)

  std::mutex mu_;                 // parking lot
  std::condition_variable wake_;  // workers wait for epoch_ to move
  std::atomic<std::uint64_t> epoch_{0};
  std::atomic<std::size_t> sleepers_{0};
  bool stop_ = false;  // guarded by mu_
};

}  // namespace bsio
