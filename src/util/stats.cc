#include "util/stats.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace bsio {

double mean(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  double s = 0.0;
  for (double x : v) s += x;
  return s / static_cast<double>(v.size());
}

double stddev(const std::vector<double>& v) {
  if (v.size() < 2) return 0.0;
  double m = mean(v);
  double s = 0.0;
  for (double x : v) s += (x - m) * (x - m);
  return std::sqrt(s / static_cast<double>(v.size()));
}

double median(std::vector<double> v) { return percentile(std::move(v), 50.0); }

double percentile(std::vector<double> v, double p) {
  BSIO_CHECK(!v.empty());
  BSIO_CHECK(p >= 0.0 && p <= 100.0);
  std::sort(v.begin(), v.end());
  if (v.size() == 1) return v[0];
  double rank = p / 100.0 * static_cast<double>(v.size() - 1);
  auto lo = static_cast<std::size_t>(rank);
  std::size_t hi = std::min(lo + 1, v.size() - 1);
  double frac = rank - static_cast<double>(lo);
  return v[lo] + frac * (v[hi] - v[lo]);
}

double min_of(const std::vector<double>& v) {
  BSIO_CHECK(!v.empty());
  return *std::min_element(v.begin(), v.end());
}

double max_of(const std::vector<double>& v) {
  BSIO_CHECK(!v.empty());
  return *std::max_element(v.begin(), v.end());
}

double sum_of(const std::vector<double>& v) {
  double s = 0.0;
  for (double x : v) s += x;
  return s;
}

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

}  // namespace bsio
