#include "util/table.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "util/check.h"

namespace bsio {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::add_row(std::vector<std::string> cells) {
  BSIO_CHECK_MSG(cells.size() == header_.size(),
                 "row width must match header width");
  rows_.push_back(std::move(cells));
}

std::string Table::to_text() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  auto emit_row = [&](std::ostringstream& os,
                      const std::vector<std::string>& row) {
    os << "|";
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << ' ' << row[c];
      os << std::string(width[c] - row[c].size(), ' ') << " |";
    }
    os << '\n';
  };

  std::ostringstream os;
  emit_row(os, header_);
  os << "|";
  for (std::size_t c = 0; c < header_.size(); ++c)
    os << std::string(width[c] + 2, '-') << "|";
  os << '\n';
  for (const auto& row : rows_) emit_row(os, row);
  return os.str();
}

std::string Table::to_csv() const {
  auto quote = [](const std::string& s) {
    if (s.find_first_of(",\"\n") == std::string::npos) return s;
    std::string out = "\"";
    for (char ch : s) {
      if (ch == '"') out += "\"\"";
      else out += ch;
    }
    out += '"';
    return out;
  };
  std::ostringstream os;
  for (std::size_t c = 0; c < header_.size(); ++c)
    os << (c ? "," : "") << quote(header_[c]);
  os << '\n';
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c)
      os << (c ? "," : "") << quote(row[c]);
    os << '\n';
  }
  return os.str();
}

void Table::print(const std::string& title) const {
  std::printf("\n== %s ==\n%s", title.c_str(), to_text().c_str());
  std::fflush(stdout);
}

std::string format_fixed(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
  return buf;
}

std::string format_seconds(double seconds) {
  char buf[64];
  if (seconds >= 100.0)
    std::snprintf(buf, sizeof(buf), "%.1fs", seconds);
  else if (seconds >= 1.0)
    std::snprintf(buf, sizeof(buf), "%.2fs", seconds);
  else
    std::snprintf(buf, sizeof(buf), "%.1fms", seconds * 1e3);
  return buf;
}

std::string format_bytes(double bytes) {
  static const char* kUnits[] = {"B", "KB", "MB", "GB", "TB"};
  int u = 0;
  while (bytes >= 1024.0 && u < 4) {
    bytes /= 1024.0;
    ++u;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.2f %s", bytes, kUnits[u]);
  return buf;
}

}  // namespace bsio
