// 2-D Hilbert space-filling curve.
//
// The SAT workload emulator declusters spatio-temporal data chunks across
// storage nodes in Hilbert order (Faloutsos & Roseman, PODS'89), mirroring
// the paper's Section 7 setup. The curve maps between a linear index d and
// grid coordinates (x, y) on a 2^order x 2^order grid.
#pragma once

#include <cstdint>
#include <utility>

namespace bsio {

// Maps distance-along-curve d in [0, side*side) to (x, y); side must be a
// power of two.
std::pair<std::uint32_t, std::uint32_t> hilbert_d2xy(std::uint32_t side,
                                                     std::uint64_t d);

// Inverse of hilbert_d2xy.
std::uint64_t hilbert_xy2d(std::uint32_t side, std::uint32_t x,
                           std::uint32_t y);

}  // namespace bsio
