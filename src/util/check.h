// Lightweight runtime checks used across the library.
//
// BSIO_CHECK is always on (cheap invariants on hot-but-not-innermost paths);
// BSIO_DCHECK compiles away in NDEBUG builds (inner-loop invariants).
#pragma once

#include <cstdio>
#include <cstdlib>

namespace bsio::detail {

[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const char* msg) {
  std::fprintf(stderr, "BSIO_CHECK failed: %s at %s:%d%s%s\n", expr, file,
               line, msg[0] ? " — " : "", msg);
  std::abort();
}

}  // namespace bsio::detail

#define BSIO_CHECK(cond)                                              \
  do {                                                                \
    if (!(cond)) ::bsio::detail::check_failed(#cond, __FILE__, __LINE__, ""); \
  } while (0)

#define BSIO_CHECK_MSG(cond, msg)                                     \
  do {                                                                \
    if (!(cond))                                                      \
      ::bsio::detail::check_failed(#cond, __FILE__, __LINE__, (msg)); \
  } while (0)

#ifdef NDEBUG
#define BSIO_DCHECK(cond) \
  do {                    \
  } while (0)
#else
#define BSIO_DCHECK(cond) BSIO_CHECK(cond)
#endif
