#include "util/logging.h"

#include <atomic>
#include <cstdio>

namespace bsio {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel log_level() {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

namespace detail {

void log_emit(LogLevel level, const std::string& msg) {
  std::fprintf(stderr, "[bsio %s] %s\n", level_name(level), msg.c_str());
}

}  // namespace detail

}  // namespace bsio
