#include "util/hilbert.h"

#include "util/check.h"

namespace bsio {

namespace {

// Rotate/flip a quadrant appropriately.
void rot(std::uint32_t n, std::uint32_t& x, std::uint32_t& y, std::uint32_t rx,
         std::uint32_t ry) {
  if (ry == 0) {
    if (rx == 1) {
      x = n - 1 - x;
      y = n - 1 - y;
    }
    std::swap(x, y);
  }
}

bool is_pow2(std::uint32_t v) { return v != 0 && (v & (v - 1)) == 0; }

}  // namespace

std::pair<std::uint32_t, std::uint32_t> hilbert_d2xy(std::uint32_t side,
                                                     std::uint64_t d) {
  BSIO_CHECK(is_pow2(side));
  BSIO_CHECK(d < static_cast<std::uint64_t>(side) * side);
  std::uint32_t x = 0, y = 0;
  std::uint64_t t = d;
  for (std::uint32_t s = 1; s < side; s *= 2) {
    std::uint32_t rx = 1 & static_cast<std::uint32_t>(t / 2);
    std::uint32_t ry = 1 & static_cast<std::uint32_t>(t ^ rx);
    rot(s, x, y, rx, ry);
    x += s * rx;
    y += s * ry;
    t /= 4;
  }
  return {x, y};
}

std::uint64_t hilbert_xy2d(std::uint32_t side, std::uint32_t x,
                           std::uint32_t y) {
  BSIO_CHECK(is_pow2(side));
  BSIO_CHECK(x < side && y < side);
  std::uint64_t d = 0;
  for (std::uint32_t s = side / 2; s > 0; s /= 2) {
    std::uint32_t rx = (x & s) > 0 ? 1 : 0;
    std::uint32_t ry = (y & s) > 0 ? 1 : 0;
    d += static_cast<std::uint64_t>(s) * s * ((3 * rx) ^ ry);
    rot(s, x, y, rx, ry);
  }
  return d;
}

}  // namespace bsio
