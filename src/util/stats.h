// Small statistics helpers used by workload analysis and bench reporting.
#pragma once

#include <cstddef>
#include <vector>

namespace bsio {

double mean(const std::vector<double>& v);
double stddev(const std::vector<double>& v);  // population std deviation
double median(std::vector<double> v);         // by value: sorts a copy
// Linear-interpolated percentile, p in [0, 100].
double percentile(std::vector<double> v, double p);
double min_of(const std::vector<double>& v);
double max_of(const std::vector<double>& v);
double sum_of(const std::vector<double>& v);

// Online accumulator (Welford) for streaming series.
class RunningStats {
 public:
  void add(double x);
  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const;  // population variance
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }
  double sum() const { return sum_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

}  // namespace bsio
