#include "util/thread_pool.h"

#include <cstdlib>
#include <memory>

namespace bsio {

namespace {

// Set while a thread (worker or caller) is executing chunks of a loop;
// nested parallel_for calls see it and run inline.
thread_local bool tl_in_parallel = false;

std::unique_ptr<ThreadPool>& global_slot() {
  static std::unique_ptr<ThreadPool> pool;
  return pool;
}

std::mutex& global_mu() {
  static std::mutex mu;
  return mu;
}

}  // namespace

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) threads = default_threads();
  workers_.reserve(threads > 0 ? threads - 1 : 0);
  for (std::size_t i = 0; i + 1 < threads; ++i)
    workers_.emplace_back([this] { worker_main(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  wake_.notify_all();
  for (auto& w : workers_) w.join();
}

std::size_t ThreadPool::default_threads() {
  if (const char* env = std::getenv("BSIO_THREADS")) {
    const long v = std::strtol(env, nullptr, 10);
    if (v > 0) return static_cast<std::size_t>(v);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

ThreadPool& ThreadPool::global() {
  std::lock_guard<std::mutex> lk(global_mu());
  auto& slot = global_slot();
  if (!slot) slot = std::make_unique<ThreadPool>();
  return *slot;
}

void ThreadPool::set_global_threads(std::size_t threads) {
  std::lock_guard<std::mutex> lk(global_mu());
  auto& slot = global_slot();
  slot.reset();  // join the old workers before replacing them
  slot = std::make_unique<ThreadPool>(threads);
}

void ThreadPool::work_on(Loop& loop) {
  const std::size_t nc = loop.num_chunks;
  const std::size_t n = loop.n;
  tl_in_parallel = true;
  std::size_t c;
  while ((c = loop.next_chunk.fetch_add(1, std::memory_order_relaxed)) < nc) {
    // Static chunking: chunk c always covers the same contiguous range,
    // independent of which thread claims it.
    const std::size_t begin = c * n / nc;
    const std::size_t end = (c + 1) * n / nc;
    if (begin < end) (*loop.body)(begin, end);
  }
  tl_in_parallel = false;
}

void ThreadPool::parallel_for(
    std::size_t n, const std::function<void(std::size_t, std::size_t)>& body) {
  if (n == 0) return;
  if (tl_in_parallel || workers_.empty() || n < 2) {
    body(0, n);
    return;
  }
  std::lock_guard<std::mutex> callers(caller_mu_);

  Loop loop;
  loop.body = &body;
  loop.n = n;
  // Mild over-decomposition smooths out per-index cost variance while the
  // chunk boundaries stay a pure function of (n, pool size).
  loop.num_chunks = std::min(n, num_threads() * 4);
  {
    std::lock_guard<std::mutex> lk(mu_);
    current_ = &loop;
    ++generation_;
  }
  wake_.notify_all();

  work_on(loop);

  // A worker that observed the loop registered itself in workers_in under
  // mu_ before touching it; nobody new can join once current_ is cleared.
  std::unique_lock<std::mutex> lk(mu_);
  current_ = nullptr;
  done_.wait(lk, [&] { return loop.workers_in == 0; });
}

void ThreadPool::worker_main() {
  std::uint64_t last_gen = 0;
  std::unique_lock<std::mutex> lk(mu_);
  for (;;) {
    wake_.wait(lk, [&] {
      return stop_ || (current_ != nullptr && generation_ != last_gen);
    });
    if (stop_) return;
    last_gen = generation_;
    Loop* loop = current_;
    ++loop->workers_in;
    lk.unlock();
    work_on(*loop);
    lk.lock();
    --loop->workers_in;
    if (loop->workers_in == 0) done_.notify_all();
  }
}

}  // namespace bsio
