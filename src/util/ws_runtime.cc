#include "util/ws_runtime.h"

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <fstream>
#include <string>

#ifdef __linux__
#include <pthread.h>
#include <sched.h>
#endif

#include "util/check.h"

namespace bsio {

namespace ws_internal {

Deque::Deque() {
  buffers_.push_back(std::make_unique<Buffer>(64));
  buffer_.store(buffers_.back().get(), std::memory_order_relaxed);
}

Deque::Buffer* Deque::grow(Buffer* old, std::int64_t top, std::int64_t bottom) {
  buffers_.push_back(std::make_unique<Buffer>(old->cap * 2));
  Buffer* fresh = buffers_.back().get();
  for (std::int64_t i = top; i < bottom; ++i) fresh->put(i, old->get(i));
  // The old buffer stays alive in buffers_: a thief that loaded it before
  // the swap may still read (stale but type-safe) entries; its CAS on top_
  // then fails and it retries against the new buffer.
  buffer_.store(fresh, std::memory_order_release);
  return fresh;
}

void Deque::push(Job* job) {
  const std::int64_t b = bottom_.load(std::memory_order_relaxed);
  const std::int64_t t = top_.load(std::memory_order_acquire);
  Buffer* buf = buffer_.load(std::memory_order_relaxed);
  if (b - t > buf->cap - 1) buf = grow(buf, t, b);
  buf->put(b, job);
  // seq_cst publish: the new bottom must be ordered against the thief's
  // top/bottom reads (the paper uses a release fence; TSan models atomics,
  // not fences, so the index accesses carry the ordering themselves).
  bottom_.store(b + 1, std::memory_order_seq_cst);
}

Job* Deque::pop() {
  const std::int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
  Buffer* buf = buffer_.load(std::memory_order_relaxed);
  bottom_.store(b, std::memory_order_seq_cst);
  std::int64_t t = top_.load(std::memory_order_seq_cst);
  Job* job = nullptr;
  if (t <= b) {
    job = buf->get(b);
    if (t == b) {
      // Last element: race the thieves for it via top.
      if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                        std::memory_order_relaxed))
        job = nullptr;
      bottom_.store(b + 1, std::memory_order_relaxed);
    }
  } else {
    bottom_.store(b + 1, std::memory_order_relaxed);
  }
  return job;
}

Job* Deque::steal() {
  std::int64_t t = top_.load(std::memory_order_seq_cst);
  const std::int64_t b = bottom_.load(std::memory_order_seq_cst);
  if (t >= b) return nullptr;
  Buffer* buf = buffer_.load(std::memory_order_acquire);
  Job* job = buf->get(t);
  if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                    std::memory_order_relaxed))
    return nullptr;  // lost to the owner or another thief
  return job;
}

}  // namespace ws_internal

namespace {

using ws_internal::Job;

// The slot the current thread owns, if any. A thread belongs to at most
// one runtime at a time: background workers to theirs for life, an
// external caller to the one whose slot 0 it adopted for the duration of a
// top-level construct.
thread_local WsRuntime* tl_runtime = nullptr;
thread_local std::size_t tl_slot = 0;

std::unique_ptr<WsRuntime>& global_slot() {
  static std::unique_ptr<WsRuntime> rt;
  return rt;
}

std::mutex& global_mu() {
  static std::mutex mu;
  return mu;
}

// Per-slot CPU package ids from sysfs; empty when the topology is
// unreadable (non-Linux, masked sysfs) — callers fall back to one group.
std::vector<int> read_package_ids(std::size_t threads) {
  std::vector<int> ids;
  ids.reserve(threads);
  for (std::size_t cpu = 0; cpu < threads; ++cpu) {
    std::ifstream f("/sys/devices/system/cpu/cpu" + std::to_string(cpu) +
                    "/topology/package_id");
    int id = -1;
    if (!(f >> id) || id < 0) return {};
    ids.push_back(id);
  }
  return ids;
}

void pin_to_cpu(std::size_t cpu) {
#ifdef __linux__
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(cpu, &set);
  // Best-effort: a denied affinity call (containers) just loses locality.
  pthread_setaffinity_np(pthread_self(), sizeof(set), &set);
#else
  (void)cpu;
#endif
}

struct ForCtx {
  const std::function<void(std::size_t, std::size_t)>* body;
  std::size_t n = 0;
  std::size_t nc = 0;
};

void run_for_chunk(void* ctx, std::size_t c) {
  const auto* fc = static_cast<const ForCtx*>(ctx);
  // Static chunking: chunk c always covers the same contiguous range,
  // independent of which worker claims it.
  const std::size_t begin = c * fc->n / fc->nc;
  const std::size_t end = (c + 1) * fc->n / fc->nc;
  if (begin < end) (*fc->body)(begin, end);
}

struct SlotForCtx {
  const std::function<void(std::size_t, std::size_t, std::size_t)>* body;
  std::size_t n = 0;
  std::size_t nc = 0;
};

void run_slot_chunk(void* ctx, std::size_t c) {
  const auto* fc = static_cast<const SlotForCtx*>(ctx);
  const std::size_t begin = c * fc->n / fc->nc;
  const std::size_t end = (c + 1) * fc->n / fc->nc;
  if (begin < end) (*fc->body)(c, begin, end);
}

}  // namespace

WsRuntime::WsRuntime(std::size_t threads, Options options)
    : options_(options) {
  if (threads == 0) threads = default_threads();
  if (threads == 0) threads = 1;

  std::vector<int> groups(threads, 0);
  bool pin = false;
  if (options_.affinity && threads > 1) {
    const std::vector<int> packages = read_package_ids(threads);
    if (!packages.empty()) {
      // Dense group ids in first-seen order; pin only when there is more
      // than one package — on a single socket locality is free anyway.
      std::vector<int> seen;
      for (std::size_t i = 0; i < threads; ++i) {
        auto it = std::find(seen.begin(), seen.end(), packages[i]);
        if (it == seen.end()) {
          seen.push_back(packages[i]);
          it = seen.end() - 1;
        }
        groups[i] = static_cast<int>(it - seen.begin());
      }
      num_groups_ = seen.size();
      pin = num_groups_ > 1;
    }
  }

  slots_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    slots_.push_back(std::make_unique<Slot>());
    slots_.back()->group = groups[i];
    slots_.back()->steal_seed = static_cast<unsigned>(i * 2654435761u + 1u);
  }
  inject_.reserve(num_groups_);
  for (std::size_t g = 0; g < num_groups_; ++g)
    inject_.push_back(std::make_unique<InjectQueue>());

  workers_.reserve(threads - 1);
  for (std::size_t i = 1; i < threads; ++i)
    workers_.emplace_back([this, i, pin] {
      if (pin) pin_to_cpu(i);
      worker_main(i);
    });
}

WsRuntime::~WsRuntime() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  epoch_.fetch_add(1, std::memory_order_seq_cst);
  wake_.notify_all();
  for (auto& w : workers_) w.join();
}

Result<std::size_t> WsRuntime::env_threads() {
  const char* env = std::getenv("BSIO_THREADS");
  if (env == nullptr) return std::size_t{0};
  const std::string raw(env);
  errno = 0;
  char* end = nullptr;
  const long v = std::strtol(env, &end, 10);
  if (end == env || *end != '\0')
    return Err("BSIO_THREADS must be a positive integer, got \"" + raw + "\"");
  if (errno == ERANGE || v > 4096)
    return Err("BSIO_THREADS out of range (1..4096), got \"" + raw + "\"");
  if (v <= 0)
    return Err("BSIO_THREADS must be >= 1, got \"" + raw + "\"");
  return static_cast<std::size_t>(v);
}

Status WsRuntime::validate_env() {
  const Result<std::size_t> r = env_threads();
  if (!r.ok()) return r.error();
  return OkStatus();
}

std::size_t WsRuntime::default_threads() {
  const Result<std::size_t> r = env_threads();
  BSIO_CHECK_MSG(r.ok(), r.ok() ? "" : r.error().message.c_str());
  if (r.value() > 0) return r.value();
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

WsRuntime& WsRuntime::global() {
  std::lock_guard<std::mutex> lk(global_mu());
  auto& slot = global_slot();
  if (!slot) slot = std::make_unique<WsRuntime>();
  return *slot;
}

void WsRuntime::set_global_threads(std::size_t threads) {
  set_global_threads(threads, Options{});
}

void WsRuntime::set_global_threads(std::size_t threads, Options options) {
  std::lock_guard<std::mutex> lk(global_mu());
  auto& slot = global_slot();
  slot.reset();  // join the old workers before replacing them
  slot = std::make_unique<WsRuntime>(threads, options);
}

bool WsRuntime::adopt_caller_slot() {
  if (tl_runtime == this) return false;  // already a worker / adopted
  BSIO_CHECK_MSG(tl_runtime == nullptr,
                 "thread already owns a slot in another runtime");
  caller_mu_.lock();
  tl_runtime = this;
  tl_slot = 0;
  return true;
}

void WsRuntime::release_caller_slot() {
  tl_runtime = nullptr;
  caller_mu_.unlock();
}

void WsRuntime::push_job(Job* job, int affinity) {
  if (affinity >= 0 && num_groups_ > 1) {
    InjectQueue& q = *inject_[static_cast<std::size_t>(affinity) % num_groups_];
    std::lock_guard<std::mutex> lk(q.mu);
    q.jobs.push_back(job);
    return;
  }
  BSIO_DCHECK(tl_runtime == this);
  slots_[tl_slot]->deque.push(job);
}

Job* WsRuntime::pop_inject(int group) {
  InjectQueue& q = *inject_[static_cast<std::size_t>(group)];
  std::lock_guard<std::mutex> lk(q.mu);
  if (q.jobs.empty()) return nullptr;
  Job* job = q.jobs.front();
  q.jobs.pop_front();
  return job;
}

Job* WsRuntime::find_job(std::size_t self) {
  Slot& s = *slots_[self];
  if (!options_.force_steal)
    if (Job* j = s.deque.pop()) return j;
  if (Job* j = pop_inject(s.group)) return j;

  const std::size_t t = slots_.size();
  // Pseudo-random victim rotation; the determinism contract makes the
  // schedule invisible, so this only spreads contention.
  s.steal_seed = s.steal_seed * 1664525u + 1013904223u;
  const std::size_t start = s.steal_seed % t;
  const int passes = num_groups_ > 1 ? 2 : 1;
  for (int pass = 0; pass < passes; ++pass) {
    for (std::size_t k = 0; k < t; ++k) {
      const std::size_t v = (start + k) % t;
      if (v == self) continue;
      const bool same_group = slots_[v]->group == s.group;
      if ((pass == 0) != same_group) continue;  // near victims first
      if (Job* j = slots_[v]->deque.steal()) return j;
    }
  }
  for (std::size_t g = 0; g < num_groups_; ++g) {
    if (static_cast<int>(g) == s.group) continue;
    if (Job* j = pop_inject(static_cast<int>(g))) return j;
  }
  if (options_.force_steal)
    if (Job* j = s.deque.pop()) return j;
  return nullptr;
}

void WsRuntime::run_job(Job* job) {
  job->fn(job->ctx, job->index);
  // Release pairs with the waiter's acquire load reaching zero, making the
  // job's writes visible to whoever observed its completion.
  job->pending->fetch_sub(1, std::memory_order_acq_rel);
}

void WsRuntime::help_until(const std::atomic<std::size_t>& pending) {
  const std::size_t self = tl_slot;
  while (pending.load(std::memory_order_acquire) != 0) {
    if (Job* j = find_job(self))
      run_job(j);
    else
      std::this_thread::yield();
  }
}

void WsRuntime::wake_workers() {
  epoch_.fetch_add(1, std::memory_order_seq_cst);
  if (sleepers_.load(std::memory_order_seq_cst) > 0) {
    std::lock_guard<std::mutex> lk(mu_);
    wake_.notify_all();
  }
}

void WsRuntime::worker_main(std::size_t slot) {
  tl_runtime = this;
  tl_slot = slot;
  constexpr int kSpinRounds = 64;
  int spins = 0;
  for (;;) {
    if (Job* j = find_job(slot)) {
      run_job(j);
      spins = 0;
      continue;
    }
    if (++spins < kSpinRounds) {
      std::this_thread::yield();
      continue;
    }
    spins = 0;
    std::unique_lock<std::mutex> lk(mu_);
    if (stop_) return;
    const std::uint64_t e = epoch_.load(std::memory_order_seq_cst);
    lk.unlock();
    // Final sweep after snapshotting the epoch: a push between this check
    // and the wait bumps the epoch, so the wait predicate falls through.
    if (Job* j = find_job(slot)) {
      run_job(j);
      continue;
    }
    lk.lock();
    if (stop_) return;
    if (epoch_.load(std::memory_order_seq_cst) != e) continue;
    sleepers_.fetch_add(1, std::memory_order_seq_cst);
    wake_.wait(lk, [&] {
      return stop_ || epoch_.load(std::memory_order_seq_cst) != e;
    });
    sleepers_.fetch_sub(1, std::memory_order_seq_cst);
    if (stop_) return;
  }
}

void WsRuntime::parallel_for(
    std::size_t n, const std::function<void(std::size_t, std::size_t)>& body) {
  if (n == 0) return;
  // A thread owning a slot in a *different* runtime cannot adopt one here;
  // degrade to inline rather than entangle two runtimes.
  const bool foreign = tl_runtime != nullptr && tl_runtime != this;
  if (num_threads() == 1 || n < 2 || foreign) {
    body(0, n);
    return;
  }
  ForCtx ctx;
  ctx.body = &body;
  ctx.n = n;
  // Mild over-decomposition smooths per-index cost variance while the
  // chunk boundaries stay a pure function of (n, num_threads).
  ctx.nc = default_chunks(n);

  const bool external = adopt_caller_slot();
  std::atomic<std::size_t> pending{ctx.nc};
  std::vector<Job> jobs(ctx.nc);
  for (std::size_t c = 0; c < ctx.nc; ++c) {
    jobs[c] = Job{&run_for_chunk, &ctx, c, &pending};
    push_job(&jobs[c], -1);
  }
  wake_workers();
  help_until(pending);
  if (external) release_caller_slot();
}

void WsRuntime::parallel_for_slots(
    std::size_t n, std::size_t nc,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& body) {
  if (n == 0 || nc == 0) return;
  SlotForCtx ctx;
  ctx.body = &body;
  ctx.n = n;
  ctx.nc = nc;
  const bool foreign = tl_runtime != nullptr && tl_runtime != this;
  if (num_threads() == 1 || nc < 2 || foreign) {
    for (std::size_t c = 0; c < nc; ++c) run_slot_chunk(&ctx, c);
    return;
  }
  const bool external = adopt_caller_slot();
  std::atomic<std::size_t> pending{nc};
  std::vector<Job> jobs(nc);
  for (std::size_t c = 0; c < nc; ++c) {
    jobs[c] = Job{&run_slot_chunk, &ctx, c, &pending};
    push_job(&jobs[c], -1);
  }
  wake_workers();
  help_until(pending);
  if (external) release_caller_slot();
}

WsRuntime::TaskGroup::TaskGroup(WsRuntime& rt)
    : rt_(rt), adopted_slot_(rt.adopt_caller_slot()) {}

WsRuntime::TaskGroup::~TaskGroup() {
  wait();
  if (adopted_slot_) rt_.release_caller_slot();
}

void WsRuntime::TaskGroup::spawn(void (*fn)(void*, std::size_t), void* ctx,
                                 std::size_t index, int affinity) {
  pending_.fetch_add(1, std::memory_order_relaxed);
  jobs_.push_back(Job{fn, ctx, index, &pending_});
  rt_.push_job(&jobs_.back(), affinity);
  rt_.wake_workers();
}

void WsRuntime::TaskGroup::wait() {
  rt_.help_until(pending_);
  // All spawned jobs completed; their descriptors can be recycled.
  jobs_.clear();
}

}  // namespace bsio
