// Deterministic random number generation.
//
// Every stochastic choice in the library flows from an explicitly seeded
// generator so experiments reproduce bit-for-bit. We provide SplitMix64 (for
// seeding and cheap hashing) and Xoshiro256** (the workhorse generator),
// plus the small set of distributions the workload emulators need.
#pragma once

#include <array>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "util/check.h"

namespace bsio {

// SplitMix64: used to expand a single 64-bit seed into generator state and
// as a cheap avalanche hash for deterministic per-entity randomness.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

inline std::uint64_t hash_mix(std::uint64_t x) {
  return SplitMix64(x).next();
}

// Xoshiro256**: fast, high-quality, 256-bit state PRNG.
// Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : s_) s = sm.next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<std::uint64_t>::max();
  }

  result_type operator()() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  // Uniform integer in [0, n). Uses Lemire's multiply-shift rejection method.
  std::uint64_t uniform(std::uint64_t n) {
    BSIO_DCHECK(n > 0);
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < n) {
      const std::uint64_t threshold = (0 - n) % n;
      while (lo < threshold) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * n;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  // Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    BSIO_DCHECK(lo <= hi);
    return lo + static_cast<std::int64_t>(
                    uniform(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  // Uniform double in [0, 1).
  double uniform_double() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  // Uniform double in [lo, hi).
  double uniform_double(double lo, double hi) {
    return lo + (hi - lo) * uniform_double();
  }

  bool bernoulli(double p) { return uniform_double() < p; }

  // Zipf-like rank selection over n items with exponent s (s = 0 -> uniform).
  // Used to model "hot spot" file popularity. O(n) setup avoided by caller
  // precomputing weights; this is the direct (small-n) path.
  std::size_t zipf(std::size_t n, double s);

  // O(1)-per-draw Zipf-like rank selection for huge n (the streaming
  // workload generators draw from multi-million-file universes, where
  // zipf()'s O(n) weight accumulation per draw is unusable). Inverts the
  // continuous power-law CDF over [1, n+1) instead of the discrete sum, so
  // the distribution is a close approximation of zipf() — same exponent,
  // same hot-head behaviour — but NOT the same draw sequence.
  std::size_t zipf_stream(std::size_t n, double s);

  // Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = uniform(i);
      std::swap(v[i - 1], v[j]);
    }
  }

  // Sample k distinct indices from [0, n) without replacement (k <= n).
  std::vector<std::size_t> sample_without_replacement(std::size_t n,
                                                      std::size_t k);

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> s_{};
};

inline std::size_t Rng::zipf(std::size_t n, double s) {
  BSIO_DCHECK(n > 0);
  if (s == 0.0) return uniform(n);
  // Inverse-CDF over explicitly accumulated weights; fine for the modest n
  // the emulators use. Weight of rank r (1-based) is r^-s.
  double total = 0.0;
  for (std::size_t r = 1; r <= n; ++r) total += 1.0 / std::pow(static_cast<double>(r), s);
  double u = uniform_double() * total;
  double acc = 0.0;
  for (std::size_t r = 1; r <= n; ++r) {
    acc += 1.0 / std::pow(static_cast<double>(r), s);
    if (u <= acc) return r - 1;
  }
  return n - 1;
}

inline std::size_t Rng::zipf_stream(std::size_t n, double s) {
  BSIO_DCHECK(n > 0);
  if (s == 0.0) return uniform(n);
  const double u = uniform_double();
  const double nd = static_cast<double>(n);
  double r;
  if (s == 1.0) {
    // CDF(r) = ln(r) / ln(n+1) over [1, n+1).
    r = std::pow(nd + 1.0, u);
  } else {
    // CDF(r) = (r^(1-s) - 1) / ((n+1)^(1-s) - 1) over [1, n+1).
    const double e = 1.0 - s;
    r = std::pow(1.0 + u * (std::pow(nd + 1.0, e) - 1.0), 1.0 / e);
  }
  const auto rank = static_cast<std::size_t>(r) - 1;
  return rank < n ? rank : n - 1;  // clamp FP edge cases
}

inline std::vector<std::size_t> Rng::sample_without_replacement(std::size_t n,
                                                                std::size_t k) {
  BSIO_CHECK(k <= n);
  // Floyd's algorithm: O(k) expected, no O(n) scratch.
  std::vector<std::size_t> out;
  out.reserve(k);
  for (std::size_t j = n - k; j < n; ++j) {
    std::size_t t = uniform(j + 1);
    bool seen = false;
    for (std::size_t x : out) {
      if (x == t) {
        seen = true;
        break;
      }
    }
    out.push_back(seen ? j : t);
  }
  return out;
}

}  // namespace bsio
