// Minimal leveled logging to stderr.
//
// Verbosity is a process-wide setting (set once at startup by examples /
// benches); the library itself only logs at kDebug/kInfo so silent-by-default
// embedding is possible.
#pragma once

#include <sstream>
#include <string>

namespace bsio {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

void set_log_level(LogLevel level);
LogLevel log_level();

namespace detail {

void log_emit(LogLevel level, const std::string& msg);

class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { log_emit(level_, stream_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace detail

}  // namespace bsio

#define BSIO_LOG(level)                                  \
  if (static_cast<int>(::bsio::LogLevel::level) <        \
      static_cast<int>(::bsio::log_level()))             \
    ;                                                    \
  else                                                   \
    ::bsio::detail::LogLine(::bsio::LogLevel::level)
