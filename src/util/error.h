// Typed recoverable errors for user-input paths.
//
// BSIO_CHECK (util/check.h) stays the tool for true internal invariants —
// it aborts. Conditions a caller can meaningfully handle instead return a
// Result<T>: a malformed ClusterConfig or FaultConfig, a SubBatchPlan that
// names unknown ids or re-executes a task. The split keeps the hot paths
// abort-on-bug while letting library users validate input gracefully.
#pragma once

#include <string>
#include <utility>
#include <variant>

#include "util/check.h"

namespace bsio {

struct Error {
  std::string message;
};

inline Error Err(std::string message) { return Error{std::move(message)}; }

// A value or an Error. Accessing the wrong arm is an internal invariant
// violation (aborts), so callers must branch on ok() first.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : v_(std::move(value)) {}
  Result(Error error) : v_(std::move(error)) {}

  bool ok() const { return std::holds_alternative<T>(v_); }
  explicit operator bool() const { return ok(); }

  const T& value() const& {
    BSIO_CHECK_MSG(ok(), "Result::value() called on an error");
    return std::get<T>(v_);
  }
  T& value() & {
    BSIO_CHECK_MSG(ok(), "Result::value() called on an error");
    return std::get<T>(v_);
  }
  T&& value() && {
    BSIO_CHECK_MSG(ok(), "Result::value() called on an error");
    return std::get<T>(std::move(v_));
  }

  const Error& error() const {
    BSIO_CHECK_MSG(!ok(), "Result::error() called on a value");
    return std::get<Error>(v_);
  }

 private:
  std::variant<T, Error> v_;
};

// Success/failure without a payload.
template <>
class [[nodiscard]] Result<void> {
 public:
  Result() = default;
  Result(Error error) : error_(std::move(error)), failed_(true) {}

  bool ok() const { return !failed_; }
  explicit operator bool() const { return ok(); }

  const Error& error() const {
    BSIO_CHECK_MSG(failed_, "Result::error() called on a value");
    return error_;
  }

 private:
  Error error_;
  bool failed_ = false;
};

using Status = Result<void>;

inline Status OkStatus() { return Status(); }

}  // namespace bsio
