// IMAGE: biomedical image analysis workload emulator (paper Section 7).
//
// The dataset models follow-up imaging studies: `num_patients` patients,
// each with `studies_per_patient` studies (imaging sessions on different
// days); every study holds `ct_per_study` CT images (64 MB) and
// `mri_per_study` MRI images (4 MB), each stored in its own file. With the
// defaults (2000 patients x 4 studies x {2 CT, 32 MRI}) the dataset is
// ~2 TB, matching the paper. Files of each patient are distributed across
// the storage nodes round-robin.
//
// A task selects a (patient, study) pair and requests the study's CT images
// plus a window of consecutive MRI images (modality/date-range selection).
// Overlap between tasks is controlled by how many distinct (patient, study)
// pairs the batch draws from and by MRI-window jitter — both driven by the
// single "spread" knob, calibrated to the paper's 85% / 40% / 0% cases.
#pragma once

#include "util/rng.h"
#include "workload/calibrate.h"
#include "workload/types.h"

namespace bsio::wl {

struct ImageConfig {
  std::size_t num_patients = 2000;
  std::size_t studies_per_patient = 4;
  std::size_t ct_per_study = 2;
  std::size_t mri_per_study = 32;
  double ct_size_bytes = 64.0 * 1024 * 1024;
  double mri_size_bytes = 4.0 * 1024 * 1024;
  std::size_t num_storage_nodes = 4;
  std::size_t num_tasks = 100;
  // Files per task = ct_per_study + mri_window (default 2 + 6 = 8, the
  // paper's average).
  std::size_t mri_window = 6;
  double compute_seconds_per_byte = 0.001 / (1024.0 * 1024.0);
  std::uint64_t seed = 1;
};

// Raw generator with an explicit spread in [0, 1].
Workload make_image(const ImageConfig& cfg, double spread);

// Calibrated generator for a target overlap fraction (0.0 gives fully
// disjoint tasks, reproducing the paper's "0% overlap" low case).
CalibrationResult make_image_calibrated(const ImageConfig& cfg,
                                        double target_overlap);

}  // namespace bsio::wl
