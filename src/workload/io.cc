#include "workload/io.h"

#include <fstream>
#include <sstream>
#include <string>

#include "util/check.h"

namespace bsio::wl {

namespace {

// Next non-empty, non-comment line.
bool next_line(std::istream& is, std::string& line) {
  while (std::getline(is, line)) {
    std::size_t start = line.find_first_not_of(" \t\r");
    if (start == std::string::npos) continue;
    if (line[start] == '#') continue;
    line = line.substr(start);
    return true;
  }
  return false;
}

}  // namespace

void save_workload(const Workload& w, std::ostream& os) {
  os << "bsio-workload 1\n";
  os << "files " << w.num_files() << "\n";
  os.precision(17);
  for (const auto& f : w.files())
    os << f.size_bytes << ' ' << f.home_storage_node << '\n';
  os << "tasks " << w.num_tasks() << "\n";
  for (const auto& t : w.tasks()) {
    os << t.compute_seconds << ' ' << t.files.size();
    for (FileId f : t.files) os << ' ' << f;
    os << '\n';
  }
}

Workload load_workload(std::istream& is) {
  std::string line;
  BSIO_CHECK_MSG(next_line(is, line), "empty workload stream");
  {
    std::istringstream ls(line);
    std::string magic;
    int version = 0;
    ls >> magic >> version;
    BSIO_CHECK_MSG(magic == "bsio-workload" && version == 1,
                   "not a bsio-workload v1 stream");
  }

  BSIO_CHECK(next_line(is, line));
  std::size_t num_files = 0;
  {
    std::istringstream ls(line);
    std::string kw;
    ls >> kw >> num_files;
    BSIO_CHECK_MSG(kw == "files", "expected 'files <count>'");
  }
  std::vector<FileInfo> files(num_files);
  for (auto& f : files) {
    BSIO_CHECK_MSG(next_line(is, line), "truncated file table");
    std::istringstream ls(line);
    ls >> f.size_bytes >> f.home_storage_node;
    BSIO_CHECK_MSG(!ls.fail(), "malformed file line");
  }

  BSIO_CHECK(next_line(is, line));
  std::size_t num_tasks = 0;
  {
    std::istringstream ls(line);
    std::string kw;
    ls >> kw >> num_tasks;
    BSIO_CHECK_MSG(kw == "tasks", "expected 'tasks <count>'");
  }
  std::vector<TaskInfo> tasks(num_tasks);
  for (auto& t : tasks) {
    BSIO_CHECK_MSG(next_line(is, line), "truncated task table");
    std::istringstream ls(line);
    std::size_t n = 0;
    ls >> t.compute_seconds >> n;
    BSIO_CHECK_MSG(!ls.fail(), "malformed task line");
    t.files.resize(n);
    for (auto& f : t.files) ls >> f;
    BSIO_CHECK_MSG(!ls.fail(), "task references fewer files than declared");
  }
  return Workload(std::move(tasks), std::move(files));
}

void save_workload_file(const Workload& w, const std::string& path) {
  std::ofstream os(path);
  BSIO_CHECK_MSG(os.good(), "cannot open workload file for writing");
  save_workload(w, os);
}

Workload load_workload_file(const std::string& path) {
  std::ifstream is(path);
  BSIO_CHECK_MSG(is.good(), "cannot open workload file for reading");
  return load_workload(is);
}

}  // namespace bsio::wl
