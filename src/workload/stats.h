// Workload measurement: the paper characterises workloads by their file
// overlap percentage (share of file requests that hit an already-requested
// file), files-per-task, and aggregate data volume.
#pragma once

#include "workload/types.h"

namespace bsio::wl {

struct WorkloadStats {
  std::size_t num_tasks = 0;
  std::size_t num_requested_files = 0;  // distinct files with >= 1 requester
  std::size_t total_requests = 0;       // sum over tasks of |Access_k|
  double overlap = 0.0;          // 1 - distinct/total, in [0, 1)
  double avg_files_per_task = 0.0;
  double avg_sharing_degree = 0.0;  // mean |Require_l| over requested files
  double unique_bytes = 0.0;        // one copy of each requested file
  double total_request_bytes = 0.0;
  double total_compute_seconds = 0.0;
};

WorkloadStats measure(const Workload& w);

// The overlap definition used throughout (paper Section 7): the fraction of
// file requests that are repeats of a file another request already named.
double overlap_fraction(const Workload& w);

}  // namespace bsio::wl
