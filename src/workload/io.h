// Plain-text serialisation of workloads, so a calibrated batch can be
// saved once and re-used across runs and tools.
//
// Format (line oriented, '#' comments allowed):
//   bsio-workload 1
//   files <count>
//   <size_bytes> <home_storage_node>            (one line per file)
//   tasks <count>
//   <compute_seconds> <n> <file_0> ... <file_n-1>  (one line per task)
#pragma once

#include <iosfwd>
#include <string>

#include "workload/types.h"

namespace bsio::wl {

void save_workload(const Workload& w, std::ostream& os);
// Aborts (BSIO_CHECK) on malformed input.
Workload load_workload(std::istream& is);

// File-path convenience wrappers; abort if the file cannot be opened.
void save_workload_file(const Workload& w, const std::string& path);
Workload load_workload_file(const std::string& path);

}  // namespace bsio::wl
