#include "workload/sat.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "util/check.h"
#include "util/hilbert.h"

namespace bsio::wl {

namespace {

bool is_pow2(std::size_t v) { return v != 0 && (v & (v - 1)) == 0; }

}  // namespace

Workload make_sat(const SatConfig& cfg, double spread) {
  BSIO_CHECK(is_pow2(cfg.grid_side));
  BSIO_CHECK(cfg.days > 0 && cfg.num_tasks > 0 && cfg.num_hotspots > 0);
  BSIO_CHECK(spread >= 0.0 && spread <= 1.0);
  Rng rng(cfg.seed);

  const std::size_t side = cfg.grid_side;
  const std::size_t cells = side * side;
  const std::size_t num_files = cells * cfg.days;

  // File id layout: day-major, Hilbert-rank-minor. Consecutive Hilbert ranks
  // land on different storage nodes (declustering), so a spatially local
  // window fans out over the whole storage cluster.
  std::vector<FileInfo> files(num_files);
  for (std::size_t day = 0; day < cfg.days; ++day) {
    for (std::size_t h = 0; h < cells; ++h) {
      std::size_t id = day * cells + h;
      files[id].size_bytes = cfg.file_size_bytes;
      files[id].home_storage_node =
          static_cast<NodeId>(id % cfg.num_storage_nodes);
    }
  }
  auto file_of = [&](std::size_t day, std::uint32_t x, std::uint32_t y) {
    std::uint64_t h = hilbert_xy2d(static_cast<std::uint32_t>(side), x, y);
    return static_cast<FileId>(day * cells + h);
  };

  // Hot spots: evenly spaced in space and time.
  struct Spot {
    std::size_t cx, cy, cday;
  };
  std::vector<Spot> spots(cfg.num_hotspots);
  for (std::size_t s = 0; s < cfg.num_hotspots; ++s) {
    // Lay hot spots out on a coarse diagonal-ish pattern so the regions are
    // disjoint, matching "queries directed to geographically distant parts
    // of the world".
    spots[s].cx = (side * (2 * (s % 2) + 1)) / 4;
    spots[s].cy = (side * (2 * ((s / 2) % 2) + 1)) / 4;
    spots[s].cday = (cfg.days * (2 * s + 1)) / (2 * cfg.num_hotspots);
  }

  // Window geometry: 2x2 spatial chunks; temporal depth drawn around
  // files_per_task / 4 so the average matches the configured value.
  const double depth_mean = cfg.files_per_task / 4.0;
  const auto depth_lo =
      static_cast<std::size_t>(std::max(1.0, std::floor(depth_mean)));
  const std::size_t depth_hi = static_cast<std::size_t>(
      std::max<double>(static_cast<double>(depth_lo), std::ceil(depth_mean)));
  const double hi_prob =
      depth_hi == depth_lo ? 0.0 : depth_mean - static_cast<double>(depth_lo);

  // Placement blends two extremes as spread grows: at spread 0 every window
  // sits on its hot spot (maximum sharing); at spread 1 windows tile the
  // dataset — disjoint 2x2 spatial blocks crossed with day strides — which
  // realises (close to) the minimum overlap the dataset size permits. This
  // mirrors "queries adjusted such that they resulted in X% overlap" from
  // the paper.
  const std::size_t blocks_per_axis = side / 2;
  const std::size_t num_blocks = blocks_per_axis * blocks_per_axis;
  // Temporal tiling of each block: a mix of depth_lo / depth_hi windows
  // that covers all days exactly (when depth_hi == depth_lo + 1 and days is
  // representable; otherwise the last window is clamped at the end).
  std::vector<std::size_t> slot_start, slot_depth;
  for (std::size_t day = 0; day < cfg.days;) {
    std::size_t remaining = cfg.days - day;
    std::size_t d = depth_lo;
    if (depth_hi > depth_lo && remaining % depth_lo != 0) d = depth_hi;
    d = std::min(d, remaining);
    slot_start.push_back(day);
    slot_depth.push_back(d);
    day += d;
  }
  const std::size_t num_day_slots = slot_start.size();
  const std::size_t num_slots = num_blocks * num_day_slots;

  std::vector<TaskInfo> tasks(cfg.num_tasks);
  for (std::size_t t = 0; t < cfg.num_tasks; ++t) {
    const Spot& spot = spots[t % cfg.num_hotspots];
    // Stratified anchor: spread task windows evenly over the tiling slots.
    const std::size_t slot = (t * num_slots) / cfg.num_tasks;
    const std::size_t sb = slot % num_blocks;
    const std::size_t sx = (sb % blocks_per_axis) * 2;
    const std::size_t sy = (sb / blocks_per_axis) * 2;
    const std::size_t ds = slot / num_blocks;
    const std::size_t strat_day = slot_start[ds];

    auto blend = [&](double hot, double strat, double jitter_radius) {
      double pos = (1.0 - spread) * hot + spread * strat;
      pos += rng.uniform_double(-1.0, 1.0) * spread * (1.0 - spread) * 4.0 *
             jitter_radius;
      return static_cast<long>(std::llround(pos));
    };
    auto clamp_idx = [](long v, std::size_t n) {
      return static_cast<std::size_t>(
          std::clamp<long>(v, 0, static_cast<long>(n) - 1));
    };
    std::size_t x0 = clamp_idx(
        blend(static_cast<double>(spot.cx), static_cast<double>(sx), 1.0),
        side - 1);
    std::size_t y0 = clamp_idx(
        blend(static_cast<double>(spot.cy), static_cast<double>(sy), 1.0),
        side - 1);
    // Window depth: follows the tiling's slot depth at full spread (exact
    // cover), the configured random mix at zero spread.
    std::size_t depth = rng.bernoulli(spread)
                            ? slot_depth[ds]
                            : (rng.bernoulli(hi_prob) ? depth_hi : depth_lo);
    std::size_t d0 = clamp_idx(
        blend(static_cast<double>(spot.cday), static_cast<double>(strat_day),
              1.0),
        cfg.days >= depth ? cfg.days - depth + 1 : 1);

    std::unordered_set<FileId> chosen;
    for (std::size_t dd = 0; dd < depth && d0 + dd < cfg.days; ++dd)
      for (std::size_t dx = 0; dx < 2; ++dx)
        for (std::size_t dy = 0; dy < 2; ++dy)
          chosen.insert(file_of(d0 + dd, static_cast<std::uint32_t>(x0 + dx),
                                static_cast<std::uint32_t>(y0 + dy)));

    tasks[t].files.assign(chosen.begin(), chosen.end());
    std::sort(tasks[t].files.begin(), tasks[t].files.end());
    double bytes = 0.0;
    for (FileId f : tasks[t].files) bytes += files[f].size_bytes;
    tasks[t].compute_seconds = bytes * cfg.compute_seconds_per_byte;
  }

  return Workload(std::move(tasks), std::move(files));
}

CalibrationResult make_sat_calibrated(const SatConfig& cfg,
                                      double target_overlap) {
  return calibrate_overlap(
      [&cfg](double spread) { return make_sat(cfg, spread); }, target_overlap);
}

}  // namespace bsio::wl
