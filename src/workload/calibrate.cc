#include "workload/calibrate.h"

#include <cmath>

#include "util/check.h"
#include "util/logging.h"
#include "workload/stats.h"

namespace bsio::wl {

CalibrationResult calibrate_overlap(const SpreadGenerator& gen, double target,
                                    double tolerance, int max_iters) {
  BSIO_CHECK(target >= 0.0 && target < 1.0);
  double lo = 0.0, hi = 1.0;

  CalibrationResult best{gen(0.0), 0.0, 0.0};
  best.achieved_overlap = overlap_fraction(best.workload);
  double best_err = std::abs(best.achieved_overlap - target);

  auto consider = [&](double spread) {
    Workload w = gen(spread);
    double ov = overlap_fraction(w);
    double err = std::abs(ov - target);
    if (err < best_err) {
      best = CalibrationResult{std::move(w), spread, ov};
      best_err = err;
    }
    return ov;
  };

  // Check the scattered extreme too before bisecting.
  consider(1.0);

  for (int i = 0; i < max_iters && best_err > tolerance; ++i) {
    double mid = 0.5 * (lo + hi);
    double ov = consider(mid);
    // Overlap decreases with spread: too much overlap -> move right.
    if (ov > target)
      lo = mid;
    else
      hi = mid;
  }
  BSIO_LOG(kInfo) << "calibrate_overlap: target=" << target
                  << " achieved=" << best.achieved_overlap
                  << " spread=" << best.spread;
  return best;
}

}  // namespace bsio::wl
