// Synthetic overlap-controlled workload generator.
//
// Used by tests and ablations where we need precise control over the batch's
// file-sharing structure without the domain detail of the SAT/IMAGE
// emulators. Tasks draw files from a pool whose size directly determines the
// overlap fraction.
#pragma once

#include "util/rng.h"
#include "workload/types.h"

namespace bsio::wl {

struct SyntheticConfig {
  std::size_t num_tasks = 100;
  std::size_t files_per_task = 8;
  // Target overlap in [0, 1). The pool size is chosen as
  // ceil(num_tasks * files_per_task * (1 - overlap)).
  double overlap = 0.85;
  double file_size_bytes = 50.0 * 1024 * 1024;
  // Relative jitter applied to file sizes, in [0, 1). 0 = uniform sizes.
  double file_size_jitter = 0.0;
  double compute_seconds_per_byte = 0.001 / (1024.0 * 1024.0);  // 0.001 s/MB
  // Relative jitter applied to each task's compute time, in [0, 1).
  // 0 = compute strictly proportional to input bytes. Pairs with the
  // cluster-side sim::make_skewed_cluster bandwidth/CPU skew to model
  // heterogeneous demand on heterogeneous hardware.
  double compute_jitter = 0.0;
  std::size_t num_storage_nodes = 4;
  // Hot-set skew: probability mass concentrated on a small hot subset of the
  // pool (0 = uniform). Models "hot spot" access patterns.
  double hot_fraction = 0.0;   // fraction of pool that is hot
  double hot_probability = 0.0;  // probability a request goes to the hot set
  std::uint64_t seed = 1;
};

Workload make_synthetic(const SyntheticConfig& cfg);

// --- Streaming generation (scale sweeps). ---
//
// make_synthetic draws from an explicit pool whose FileInfo table is
// materialized up front — fine at emulator scale, hopeless when the file
// universe has millions of entries and a batch touches a fraction of them.
// The streaming generator instead defines a VIRTUAL universe of
// `universe_files` ids whose per-file metadata (size jitter, home node) is
// derived by hashing the universe id, draws each task's file set with
// per-task seeded generators, and only then materializes the catalogue of
// the files actually drawn (densely remapped, ids sorted by universe id).
// Peak memory is O(tasks * files_per_task + distinct files drawn) — it
// never scales with universe_files.
struct StreamingSyntheticConfig {
  std::size_t num_tasks = 100'000;
  std::size_t files_per_task = 8;
  // Size of the virtual file universe the draws come from. The expected
  // distinct-file count (uniform draws) is
  // universe * (1 - (1 - 1/universe)^requests).
  std::size_t universe_files = 2'000'000;
  // Popularity skew of the draw over the universe (0 = uniform): ranks are
  // drawn with Rng::zipf_stream, so hot low ids are shared across tasks.
  double zipf_s = 0.0;
  double file_size_bytes = 50.0 * 1024 * 1024;
  // Relative jitter applied to file sizes, in [0, 1); derived per universe
  // id by hashing, so a file's size is stable however it is drawn.
  double file_size_jitter = 0.25;
  double compute_seconds_per_byte = 0.001 / (1024.0 * 1024.0);  // 0.001 s/MB
  std::size_t num_storage_nodes = 4;
  std::uint64_t seed = 1;
};

// Metadata of universe file `uid`, derived by hashing — no catalogue lookup
// involved, so callers can price files without materializing anything.
FileInfo stream_file_info(const StreamingSyntheticConfig& cfg,
                          std::uint64_t uid);

Workload make_synthetic_streaming(const StreamingSyntheticConfig& cfg);

}  // namespace bsio::wl
