#include "workload/stats.h"

namespace bsio::wl {

WorkloadStats measure(const Workload& w) {
  WorkloadStats s;
  s.num_tasks = w.num_tasks();
  for (const auto& t : w.tasks()) {
    s.total_requests += t.files.size();
    s.total_compute_seconds += t.compute_seconds;
    for (FileId f : t.files) s.total_request_bytes += w.file_size(f);
  }
  std::size_t sharing_sum = 0;
  for (const auto& f : w.files()) {
    std::size_t deg = w.tasks_of_file(f.id).size();
    if (deg == 0) continue;
    ++s.num_requested_files;
    sharing_sum += deg;
    s.unique_bytes += f.size_bytes;
  }
  if (s.total_requests > 0)
    s.overlap = 1.0 - static_cast<double>(s.num_requested_files) /
                          static_cast<double>(s.total_requests);
  if (s.num_tasks > 0)
    s.avg_files_per_task = static_cast<double>(s.total_requests) /
                           static_cast<double>(s.num_tasks);
  if (s.num_requested_files > 0)
    s.avg_sharing_degree = static_cast<double>(sharing_sum) /
                           static_cast<double>(s.num_requested_files);
  return s;
}

double overlap_fraction(const Workload& w) { return measure(w).overlap; }

}  // namespace bsio::wl
