// SAT: satellite data processing workload emulator (paper Section 7).
//
// The dataset is a spatio-temporal grid of data chunks — one file per chunk
// — covering `days` time steps over a `grid_side` x `grid_side` spatial grid
// (grid_side must be a power of two for the Hilbert curve). Files are
// declustered across storage nodes in Hilbert order (Faloutsos & Roseman),
// the method the paper cites for the 50 GB / 20-day dataset of 50 MB files.
//
// A task is a query with a spatio-temporal window anchored near one of
// `num_hotspots` hot-spot regions; the window's placement jitter ("spread")
// controls the file overlap between tasks. Use make_sat for a raw spread, or
// make_sat_calibrated to hit a target overlap (85% / 40% / 10% in the
// paper's high / medium / low cases).
#pragma once

#include "util/rng.h"
#include "workload/calibrate.h"
#include "workload/types.h"

namespace bsio::wl {

struct SatConfig {
  std::size_t days = 20;
  std::size_t grid_side = 8;  // power of two; 8x8 chunks per day
  double file_size_bytes = 50.0 * 1024 * 1024;
  std::size_t num_storage_nodes = 4;
  std::size_t num_tasks = 100;
  std::size_t num_hotspots = 4;
  // Average files per task; the paper uses 8 (high overlap) and 14
  // (medium/low). The spatial window is 2x2 chunks; the temporal depth is
  // drawn to hit this average.
  double files_per_task = 8.0;
  double compute_seconds_per_byte = 0.001 / (1024.0 * 1024.0);
  std::uint64_t seed = 1;
};

// Raw generator: spread in [0, 1] scales window-placement jitter around the
// task's hot spot from "pinned to the hot spot" to "anywhere in the grid".
Workload make_sat(const SatConfig& cfg, double spread);

// Calibrated generator for a target overlap fraction.
CalibrationResult make_sat_calibrated(const SatConfig& cfg,
                                      double target_overlap);

}  // namespace bsio::wl
