// Core batch / task / file types shared by every layer of the library.
//
// A Workload is a batch of independent tasks plus the catalogue of files the
// batch touches. Files are the unit of I/O transfer; each file has a home
// storage node (its initial and only location). Task compute cost is given
// in seconds (the emulators derive it from input volume at a configurable
// per-byte compute rate, matching the paper's 0.001 s/MB testbed figure).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace bsio::wl {

using TaskId = std::uint32_t;
using FileId = std::uint32_t;
using NodeId = std::uint32_t;

inline constexpr FileId kInvalidFile = static_cast<FileId>(-1);
inline constexpr TaskId kInvalidTask = static_cast<TaskId>(-1);
inline constexpr NodeId kInvalidNode = static_cast<NodeId>(-1);

struct FileInfo {
  FileId id = kInvalidFile;
  double size_bytes = 0.0;
  NodeId home_storage_node = kInvalidNode;
};

struct TaskInfo {
  TaskId id = kInvalidTask;
  double compute_seconds = 0.0;
  // Distinct files this task reads (sorted ascending, no duplicates).
  std::vector<FileId> files;
  // Files this task WRITES when it completes (sorted ascending, no
  // duplicates; may overlap `files` — a read-modify-write). A write bumps
  // the file's version epoch: every cached copy on other nodes goes stale
  // and the home storage copy is dirty until the replica manager flushes
  // it back (see sim::ExecutionEngine and replica::ReplicaManager). Tasks
  // with no outputs — every pre-existing workload — leave the engine's
  // behaviour bit-identical to the immutable-file model.
  std::vector<FileId> outputs;
};

class Workload {
 public:
  Workload() = default;
  Workload(std::vector<TaskInfo> tasks, std::vector<FileInfo> files);

  const std::vector<TaskInfo>& tasks() const { return tasks_; }
  const std::vector<FileInfo>& files() const { return files_; }
  const TaskInfo& task(TaskId t) const { return tasks_[t]; }
  const FileInfo& file(FileId f) const { return files_[f]; }
  std::size_t num_tasks() const { return tasks_.size(); }
  std::size_t num_files() const { return files_.size(); }

  // Tasks that read file f ("Require_l" in the paper). Built lazily-once at
  // construction.
  const std::vector<TaskId>& tasks_of_file(FileId f) const {
    return tasks_of_file_[f];
  }

  double file_size(FileId f) const { return files_[f].size_bytes; }

  // Total bytes of one copy of every file any task requests.
  double unique_request_bytes() const;
  // Total bytes summed over every (task, file) request.
  double total_request_bytes() const;

  // Restrict to a subset of tasks, keeping file ids stable (files not
  // referenced by the subset remain in the catalogue but have no requesters).
  Workload subset(const std::vector<TaskId>& task_ids) const;

  // Appends tasks to the batch, keeping the file catalogue fixed — the
  // streaming service's growable merged workload (batches admitted into the
  // live horizon window join one Workload over the shared catalogue). Ids
  // continue densely from the current task count; per-task file lists are
  // normalised exactly like the constructor's, and the file inverse is
  // extended in place. Returns the id of the first appended task.
  TaskId append_tasks(std::vector<TaskInfo> tasks);

  // Validation: file ids in range, per-task file lists sorted and unique,
  // sizes positive. Aborts via BSIO_CHECK on violation.
  void validate() const;

 private:
  void build_inverse();

  std::vector<TaskInfo> tasks_;
  std::vector<FileInfo> files_;
  std::vector<std::vector<TaskId>> tasks_of_file_;
};

}  // namespace bsio::wl
