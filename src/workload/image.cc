#include "workload/image.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace bsio::wl {

Workload make_image(const ImageConfig& cfg, double spread) {
  BSIO_CHECK(cfg.num_patients > 0 && cfg.studies_per_patient > 0);
  BSIO_CHECK(cfg.mri_window <= cfg.mri_per_study);
  BSIO_CHECK(spread >= 0.0 && spread <= 1.0);
  Rng rng(cfg.seed);

  const std::size_t files_per_study = cfg.ct_per_study + cfg.mri_per_study;
  const std::size_t files_per_patient =
      files_per_study * cfg.studies_per_patient;
  const std::size_t num_files = files_per_patient * cfg.num_patients;

  // File id layout: patient-major, study-minor, CT images first then MRI
  // series in acquisition order. Round-robin placement across storage nodes.
  std::vector<FileInfo> files(num_files);
  for (std::size_t id = 0; id < num_files; ++id) {
    std::size_t within_study = id % files_per_study;
    files[id].size_bytes = within_study < cfg.ct_per_study
                               ? cfg.ct_size_bytes
                               : cfg.mri_size_bytes;
    files[id].home_storage_node =
        static_cast<NodeId>(id % cfg.num_storage_nodes);
  }
  auto study_base = [&](std::size_t patient, std::size_t study) {
    return patient * files_per_patient + study * files_per_study;
  };

  // Spread drives the number of distinct (patient, study) combos the batch
  // touches: spread 0 -> a single hot combo; spread 1 -> one combo per task
  // (no sharing). MRI-window jitter within a combo adds partial overlap.
  const std::size_t total_combos = cfg.num_patients * cfg.studies_per_patient;
  std::size_t combos = static_cast<std::size_t>(std::llround(
      1.0 + spread * (static_cast<double>(cfg.num_tasks) - 1.0)));
  combos = std::min(combos, std::min(total_combos, cfg.num_tasks));

  // Draw the combo pool without replacement over all (patient, study) pairs.
  std::vector<std::size_t> pool = rng.sample_without_replacement(
      total_combos, combos);

  const std::size_t mri_slack = cfg.mri_per_study - cfg.mri_window;
  std::vector<TaskInfo> tasks(cfg.num_tasks);
  for (std::size_t t = 0; t < cfg.num_tasks; ++t) {
    // spread == 1 must give fully disjoint tasks: assign combos one-to-one.
    std::size_t combo =
        combos >= cfg.num_tasks ? pool[t] : pool[rng.uniform(combos)];
    std::size_t patient = combo / cfg.studies_per_patient;
    std::size_t study = combo % cfg.studies_per_patient;
    std::size_t base = study_base(patient, study);

    auto& fs = tasks[t].files;
    for (std::size_t c = 0; c < cfg.ct_per_study; ++c)
      fs.push_back(static_cast<FileId>(base + c));
    // MRI date-range window; jitter scales with spread.
    std::size_t max_off = static_cast<std::size_t>(
        std::llround(spread * static_cast<double>(mri_slack)));
    std::size_t off = max_off > 0 ? rng.uniform(max_off + 1) : 0;
    for (std::size_t m = 0; m < cfg.mri_window; ++m)
      fs.push_back(
          static_cast<FileId>(base + cfg.ct_per_study + off + m));
    std::sort(fs.begin(), fs.end());

    double bytes = 0.0;
    for (FileId f : fs) bytes += files[f].size_bytes;
    tasks[t].compute_seconds = bytes * cfg.compute_seconds_per_byte;
  }

  return Workload(std::move(tasks), std::move(files));
}

CalibrationResult make_image_calibrated(const ImageConfig& cfg,
                                        double target_overlap) {
  return calibrate_overlap(
      [&cfg](double spread) { return make_image(cfg, spread); },
      target_overlap);
}

}  // namespace bsio::wl
