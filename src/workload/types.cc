#include "workload/types.h"

#include <algorithm>
#include <unordered_set>

#include "util/check.h"

namespace bsio::wl {

Workload::Workload(std::vector<TaskInfo> tasks, std::vector<FileInfo> files)
    : tasks_(std::move(tasks)), files_(std::move(files)) {
  // Normalise: ids positional, per-task lists sorted/deduped.
  for (std::size_t i = 0; i < tasks_.size(); ++i) {
    tasks_[i].id = static_cast<TaskId>(i);
    auto& fs = tasks_[i].files;
    std::sort(fs.begin(), fs.end());
    fs.erase(std::unique(fs.begin(), fs.end()), fs.end());
    auto& os = tasks_[i].outputs;
    std::sort(os.begin(), os.end());
    os.erase(std::unique(os.begin(), os.end()), os.end());
  }
  for (std::size_t i = 0; i < files_.size(); ++i)
    files_[i].id = static_cast<FileId>(i);
  build_inverse();
  validate();
}

TaskId Workload::append_tasks(std::vector<TaskInfo> tasks) {
  const auto first = static_cast<TaskId>(tasks_.size());
  tasks_.reserve(tasks_.size() + tasks.size());
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    TaskInfo& t = tasks[i];
    t.id = static_cast<TaskId>(first + i);
    auto& fs = t.files;
    std::sort(fs.begin(), fs.end());
    fs.erase(std::unique(fs.begin(), fs.end()), fs.end());
    auto& os = t.outputs;
    std::sort(os.begin(), os.end());
    os.erase(std::unique(os.begin(), os.end()), os.end());
    BSIO_CHECK_MSG(t.compute_seconds >= 0.0, "negative compute time");
    for (FileId f : fs) {
      BSIO_CHECK_MSG(f < files_.size(),
                     "appended task references unknown file");
      tasks_of_file_[f].push_back(t.id);
    }
    for (FileId f : os)
      BSIO_CHECK_MSG(f < files_.size(), "appended task writes unknown file");
    tasks_.push_back(std::move(t));
  }
  return first;
}

void Workload::build_inverse() {
  tasks_of_file_.assign(files_.size(), {});
  for (const auto& t : tasks_)
    for (FileId f : t.files) {
      BSIO_CHECK_MSG(f < files_.size(), "task references unknown file");
      tasks_of_file_[f].push_back(t.id);
    }
}

double Workload::unique_request_bytes() const {
  double total = 0.0;
  for (const auto& f : files_)
    if (!tasks_of_file_[f.id].empty()) total += f.size_bytes;
  return total;
}

double Workload::total_request_bytes() const {
  double total = 0.0;
  for (const auto& t : tasks_)
    for (FileId f : t.files) total += files_[f].size_bytes;
  return total;
}

Workload Workload::subset(const std::vector<TaskId>& task_ids) const {
  std::vector<TaskInfo> ts;
  ts.reserve(task_ids.size());
  for (TaskId t : task_ids) {
    BSIO_CHECK(t < tasks_.size());
    ts.push_back(tasks_[t]);
  }
  return Workload(std::move(ts), files_);
}

void Workload::validate() const {
  for (const auto& f : files_) {
    BSIO_CHECK_MSG(f.size_bytes > 0.0, "file sizes must be positive");
  }
  for (const auto& t : tasks_) {
    BSIO_CHECK_MSG(t.compute_seconds >= 0.0, "negative compute time");
    BSIO_CHECK_MSG(std::is_sorted(t.files.begin(), t.files.end()),
                   "task file list must be sorted");
    BSIO_CHECK_MSG(
        std::adjacent_find(t.files.begin(), t.files.end()) == t.files.end(),
        "task file list must be unique");
    for (FileId f : t.files) BSIO_CHECK(f < files_.size());
    BSIO_CHECK_MSG(std::is_sorted(t.outputs.begin(), t.outputs.end()),
                   "task output list must be sorted");
    BSIO_CHECK_MSG(std::adjacent_find(t.outputs.begin(), t.outputs.end()) ==
                       t.outputs.end(),
                   "task output list must be unique");
    for (FileId f : t.outputs) BSIO_CHECK(f < files_.size());
  }
}

}  // namespace bsio::wl
