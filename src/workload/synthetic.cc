#include "workload/synthetic.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "util/check.h"

namespace bsio::wl {

Workload make_synthetic(const SyntheticConfig& cfg) {
  BSIO_CHECK(cfg.num_tasks > 0);
  BSIO_CHECK(cfg.files_per_task > 0);
  BSIO_CHECK(cfg.overlap >= 0.0 && cfg.overlap < 1.0);
  BSIO_CHECK(cfg.compute_jitter >= 0.0 && cfg.compute_jitter < 1.0);
  Rng rng(cfg.seed);

  const std::size_t total_requests = cfg.num_tasks * cfg.files_per_task;
  std::size_t pool = static_cast<std::size_t>(
      std::ceil(static_cast<double>(total_requests) * (1.0 - cfg.overlap)));
  pool = std::max(pool, cfg.files_per_task);

  std::vector<FileInfo> files(pool);
  for (std::size_t f = 0; f < pool; ++f) {
    double jitter =
        cfg.file_size_jitter > 0.0
            ? 1.0 + cfg.file_size_jitter * (rng.uniform_double() * 2.0 - 1.0)
            : 1.0;
    files[f].size_bytes = cfg.file_size_bytes * jitter;
    files[f].home_storage_node =
        static_cast<NodeId>(f % std::max<std::size_t>(1, cfg.num_storage_nodes));
  }

  const auto hot_count = static_cast<std::size_t>(
      std::floor(static_cast<double>(pool) * cfg.hot_fraction));

  // First deal every pool file out once (in random order) so the distinct
  // file count — and hence the measured overlap — matches the target
  // exactly; only the remaining requests sample randomly.
  std::vector<FileId> undealt(pool);
  for (std::size_t f = 0; f < pool; ++f) undealt[f] = static_cast<FileId>(f);
  rng.shuffle(undealt);
  std::size_t deal_cursor = 0;

  std::vector<TaskInfo> tasks(cfg.num_tasks);
  for (std::size_t t = 0; t < cfg.num_tasks; ++t) {
    // Spread the dealt files evenly over tasks.
    const std::size_t deal_end = (pool * (t + 1)) / cfg.num_tasks;
    std::unordered_set<FileId> chosen;
    while (chosen.size() < cfg.files_per_task && deal_cursor < deal_end)
      chosen.insert(undealt[deal_cursor++]);
    while (chosen.size() < cfg.files_per_task) {
      std::size_t f;
      if (hot_count > 0 && rng.bernoulli(cfg.hot_probability))
        f = rng.uniform(hot_count);
      else
        f = rng.uniform(pool);
      chosen.insert(static_cast<FileId>(f));
    }
    tasks[t].files.assign(chosen.begin(), chosen.end());
    std::sort(tasks[t].files.begin(), tasks[t].files.end());
    double bytes = 0.0;
    for (FileId f : tasks[t].files) bytes += files[f].size_bytes;
    const double cj =
        cfg.compute_jitter > 0.0
            ? 1.0 + cfg.compute_jitter * (rng.uniform_double() * 2.0 - 1.0)
            : 1.0;
    tasks[t].compute_seconds = bytes * cfg.compute_seconds_per_byte * cj;
  }

  return Workload(std::move(tasks), std::move(files));
}

FileInfo stream_file_info(const StreamingSyntheticConfig& cfg,
                          std::uint64_t uid) {
  FileInfo f;
  // Per-uid determinism: every attribute hashes off (seed, uid), so the
  // metadata of a file is identical no matter which tasks draw it or in
  // what order generation runs.
  const std::uint64_t h = hash_mix(cfg.seed ^ hash_mix(uid + 1));
  const double u = static_cast<double>(h >> 11) * 0x1.0p-53;  // [0, 1)
  const double jitter = cfg.file_size_jitter > 0.0
                            ? 1.0 + cfg.file_size_jitter * (2.0 * u - 1.0)
                            : 1.0;
  f.size_bytes = cfg.file_size_bytes * jitter;
  f.home_storage_node = static_cast<NodeId>(
      uid % std::max<std::size_t>(1, cfg.num_storage_nodes));
  return f;
}

Workload make_synthetic_streaming(const StreamingSyntheticConfig& cfg) {
  BSIO_CHECK(cfg.num_tasks > 0);
  BSIO_CHECK(cfg.files_per_task > 0);
  BSIO_CHECK(cfg.universe_files >= cfg.files_per_task);
  BSIO_CHECK(cfg.zipf_s >= 0.0);
  BSIO_CHECK(cfg.file_size_jitter >= 0.0 && cfg.file_size_jitter < 1.0);

  // Pass 1: draw every task's universe-id set. Per-task seeded generators
  // keep each task's draw independent of batch size and generation order.
  std::vector<std::vector<std::uint64_t>> task_uids(cfg.num_tasks);
  for (std::size_t t = 0; t < cfg.num_tasks; ++t) {
    Rng rng(hash_mix(cfg.seed ^ hash_mix(0x7a5cull + t)));
    std::vector<std::uint64_t>& uids = task_uids[t];
    uids.reserve(cfg.files_per_task);
    while (uids.size() < cfg.files_per_task) {
      const std::uint64_t uid = cfg.zipf_s > 0.0
                                    ? rng.zipf_stream(cfg.universe_files,
                                                      cfg.zipf_s)
                                    : rng.uniform(cfg.universe_files);
      // Rejection keeps the set distinct; file sets are tiny vs the
      // universe, so repeats are rare even under heavy skew.
      if (std::find(uids.begin(), uids.end(), uid) == uids.end())
        uids.push_back(uid);
    }
  }

  // Pass 2: dense remap of exactly the drawn universe ids, sorted so file
  // ids are assigned in universe order (stable across runs).
  std::vector<std::uint64_t> distinct;
  distinct.reserve(cfg.num_tasks * cfg.files_per_task);
  for (const auto& uids : task_uids)
    distinct.insert(distinct.end(), uids.begin(), uids.end());
  std::sort(distinct.begin(), distinct.end());
  distinct.erase(std::unique(distinct.begin(), distinct.end()),
                 distinct.end());
  BSIO_CHECK_MSG(distinct.size() <=
                     static_cast<std::size_t>(kInvalidFile),
                 "drawn catalogue exceeds the 32-bit FileId space");

  std::vector<FileInfo> files(distinct.size());
  for (std::size_t i = 0; i < distinct.size(); ++i) {
    files[i] = stream_file_info(cfg, distinct[i]);
    files[i].id = static_cast<FileId>(i);
  }

  std::vector<TaskInfo> tasks(cfg.num_tasks);
  for (std::size_t t = 0; t < cfg.num_tasks; ++t) {
    TaskInfo& task = tasks[t];
    task.id = static_cast<TaskId>(t);
    task.files.reserve(cfg.files_per_task);
    for (std::uint64_t uid : task_uids[t]) {
      const auto it =
          std::lower_bound(distinct.begin(), distinct.end(), uid);
      task.files.push_back(
          static_cast<FileId>(it - distinct.begin()));
    }
    std::sort(task.files.begin(), task.files.end());
    double bytes = 0.0;
    for (FileId f : task.files) bytes += files[f].size_bytes;
    task.compute_seconds = bytes * cfg.compute_seconds_per_byte;
    task_uids[t] = {};  // return memory as we go
  }

  return Workload(std::move(tasks), std::move(files));
}

}  // namespace bsio::wl
