#include "workload/synthetic.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "util/check.h"

namespace bsio::wl {

Workload make_synthetic(const SyntheticConfig& cfg) {
  BSIO_CHECK(cfg.num_tasks > 0);
  BSIO_CHECK(cfg.files_per_task > 0);
  BSIO_CHECK(cfg.overlap >= 0.0 && cfg.overlap < 1.0);
  BSIO_CHECK(cfg.compute_jitter >= 0.0 && cfg.compute_jitter < 1.0);
  Rng rng(cfg.seed);

  const std::size_t total_requests = cfg.num_tasks * cfg.files_per_task;
  std::size_t pool = static_cast<std::size_t>(
      std::ceil(static_cast<double>(total_requests) * (1.0 - cfg.overlap)));
  pool = std::max(pool, cfg.files_per_task);

  std::vector<FileInfo> files(pool);
  for (std::size_t f = 0; f < pool; ++f) {
    double jitter =
        cfg.file_size_jitter > 0.0
            ? 1.0 + cfg.file_size_jitter * (rng.uniform_double() * 2.0 - 1.0)
            : 1.0;
    files[f].size_bytes = cfg.file_size_bytes * jitter;
    files[f].home_storage_node =
        static_cast<NodeId>(f % std::max<std::size_t>(1, cfg.num_storage_nodes));
  }

  const auto hot_count = static_cast<std::size_t>(
      std::floor(static_cast<double>(pool) * cfg.hot_fraction));

  // First deal every pool file out once (in random order) so the distinct
  // file count — and hence the measured overlap — matches the target
  // exactly; only the remaining requests sample randomly.
  std::vector<FileId> undealt(pool);
  for (std::size_t f = 0; f < pool; ++f) undealt[f] = static_cast<FileId>(f);
  rng.shuffle(undealt);
  std::size_t deal_cursor = 0;

  std::vector<TaskInfo> tasks(cfg.num_tasks);
  for (std::size_t t = 0; t < cfg.num_tasks; ++t) {
    // Spread the dealt files evenly over tasks.
    const std::size_t deal_end = (pool * (t + 1)) / cfg.num_tasks;
    std::unordered_set<FileId> chosen;
    while (chosen.size() < cfg.files_per_task && deal_cursor < deal_end)
      chosen.insert(undealt[deal_cursor++]);
    while (chosen.size() < cfg.files_per_task) {
      std::size_t f;
      if (hot_count > 0 && rng.bernoulli(cfg.hot_probability))
        f = rng.uniform(hot_count);
      else
        f = rng.uniform(pool);
      chosen.insert(static_cast<FileId>(f));
    }
    tasks[t].files.assign(chosen.begin(), chosen.end());
    std::sort(tasks[t].files.begin(), tasks[t].files.end());
    double bytes = 0.0;
    for (FileId f : tasks[t].files) bytes += files[f].size_bytes;
    const double cj =
        cfg.compute_jitter > 0.0
            ? 1.0 + cfg.compute_jitter * (rng.uniform_double() * 2.0 - 1.0)
            : 1.0;
    tasks[t].compute_seconds = bytes * cfg.compute_seconds_per_byte * cj;
  }

  return Workload(std::move(tasks), std::move(files));
}

}  // namespace bsio::wl
