// Overlap calibration.
//
// The SAT and IMAGE emulators expose a single "spread" knob in [0, 1]:
// spread 0 concentrates every task on its hot spot (maximum file sharing),
// spread 1 scatters tasks as widely as the dataset allows (minimum sharing).
// Measured overlap is monotone non-increasing in spread, so a bisection on
// spread reproduces the paper's calibrated 85% / 40% / 10% / 0% workloads.
#pragma once

#include <functional>

#include "workload/types.h"

namespace bsio::wl {

using SpreadGenerator = std::function<Workload(double spread)>;

struct CalibrationResult {
  Workload workload;
  double spread = 0.0;
  double achieved_overlap = 0.0;
};

// Bisects spread until |overlap - target| <= tolerance or max_iters is hit;
// returns the closest workload found.
CalibrationResult calibrate_overlap(const SpreadGenerator& gen, double target,
                                    double tolerance = 0.02,
                                    int max_iters = 24);

}  // namespace bsio::wl
