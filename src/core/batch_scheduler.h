// Public facade of the library.
//
// One call — run_batch_scheduler(algorithm, workload, cluster) — runs the
// full pipeline of the paper: sub-batch selection, task allocation and file
// placement by the chosen algorithm, then the Section 6 runtime (task
// ordering, dynamic staging, eviction) on the cluster simulator, returning
// the simulated batch execution time, the scheduling overhead and the
// transfer statistics.
//
// Quickstart:
//   auto workload = bsio::wl::make_image_calibrated({}, 0.85).workload;
//   auto cluster = bsio::sim::xio_cluster(4, 4);
//   auto result = bsio::core::run_batch_scheduler(
//       bsio::core::Algorithm::kBiPartition, workload, cluster);
//   std::cout << result.batch_time << "\n";
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "sched/bipartition.h"
#include "sched/driver.h"
#include "sched/ip_scheduler.h"
#include "sched/job_data_present.h"
#include "sched/scheduler.h"
#include "sim/cluster.h"
#include "workload/types.h"

namespace bsio::core {

enum class Algorithm {
  kIp,              // 0-1 Integer Programming (Section 4)
  kBiPartition,     // bi-level hypergraph partitioning (Section 5)
  kMinMin,          // MinMin with implicit replication (baseline)
  kJobDataPresent,  // JobDataPresent + DataLeastLoaded (baseline)
  kSufferage,       // extra baseline (Maheswaran et al., data-aware)
  kMaxMin,          // extra baseline
};

const char* algorithm_name(Algorithm a);
// The paper's four schemes (what the figure benches compare).
std::vector<Algorithm> all_algorithms();
// The paper's four plus the extra baselines.
std::vector<Algorithm> extended_algorithms();

struct RunOptions {
  sched::IpSchedulerOptions ip = sched::IpScheduler::default_options();
  sched::BiPartitionOptions bipartition;
  sched::JdpOptions jdp;
  // Fault injection (sim/faults.h); the default injects nothing. With
  // faults the driver re-schedules crash-orphaned tasks on surviving nodes
  // and BatchRunResult::error reports unrecoverable runs.
  sim::FaultConfig faults;
  // Speculative task replication (sim/faults.h, DESIGN.md §10); disabled by
  // default, in which case runs are bit-identical to the retry-only driver.
  sim::SpeculationConfig speculation;
};

// Instantiates the scheduler implementing `algorithm`.
std::unique_ptr<sched::Scheduler> make_scheduler(Algorithm algorithm,
                                                 const RunOptions& options = {});

// Runs the batch end to end and reports the results.
sched::BatchRunResult run_batch_scheduler(Algorithm algorithm,
                                          const wl::Workload& workload,
                                          const sim::ClusterConfig& cluster,
                                          const RunOptions& options = {});

}  // namespace bsio::core
