#include "core/experiment.h"

#include <cstdio>

#include "util/timer.h"

namespace bsio::core {

std::vector<CaseResult> run_experiment(const std::vector<ExperimentCase>& cases,
                                       const ExperimentOptions& options) {
  std::vector<CaseResult> results;
  results.reserve(cases.size());
  for (const auto& c : cases) {
    CaseResult cr;
    cr.label = c.label;
    for (Algorithm a : options.algorithms) {
      WallTimer timer;
      cr.runs.push_back(
          run_batch_scheduler(a, c.workload, c.cluster, options.run_options));
      if (options.echo_progress)
        std::fprintf(stderr, "  [%s] %-14s batch=%s wall=%.1fs\n",
                     c.label.c_str(), algorithm_name(a),
                     format_seconds(cr.runs.back().batch_time).c_str(),
                     timer.elapsed_seconds());
    }
    results.push_back(std::move(cr));
  }
  return results;
}

Table batch_time_table(const std::vector<CaseResult>& results,
                       const std::vector<Algorithm>& algorithms) {
  std::vector<std::string> header{"case"};
  for (Algorithm a : algorithms)
    header.push_back(std::string(algorithm_name(a)) + " (s)");
  for (Algorithm a : algorithms)
    header.push_back(std::string(algorithm_name(a)) + " (rel)");
  Table t(std::move(header));
  for (const auto& r : results) {
    std::vector<std::string> row{r.label};
    const double base = r.runs.empty() ? 1.0 : r.runs.front().batch_time;
    for (const auto& run : r.runs)
      row.push_back(format_fixed(run.batch_time, 1));
    for (const auto& run : r.runs)
      row.push_back(format_fixed(run.batch_time / base, 2));
    t.add_row(std::move(row));
  }
  return t;
}

Table overhead_table(const std::vector<CaseResult>& results,
                     const std::vector<Algorithm>& algorithms) {
  std::vector<std::string> header{"case"};
  for (Algorithm a : algorithms)
    header.push_back(std::string(algorithm_name(a)) + " (ms/task)");
  Table t(std::move(header));
  for (const auto& r : results) {
    std::vector<std::string> row{r.label};
    for (const auto& run : r.runs)
      row.push_back(format_fixed(run.per_task_scheduling_ms, 3));
    t.add_row(std::move(row));
  }
  return t;
}

Table transfer_table(const std::vector<CaseResult>& results,
                     const std::vector<Algorithm>& algorithms) {
  Table t({"case", "algorithm", "remote", "replica", "evictions", "restages",
           "remote bytes", "replica bytes", "sub-batches"});
  for (const auto& r : results) {
    for (std::size_t i = 0; i < r.runs.size(); ++i) {
      const auto& run = r.runs[i];
      t.add_row({r.label, algorithm_name(algorithms[i]),
                 std::to_string(run.stats.remote_transfers),
                 std::to_string(run.stats.replications),
                 std::to_string(run.stats.evictions),
                 std::to_string(run.stats.restages),
                 format_bytes(run.stats.remote_bytes),
                 format_bytes(run.stats.replica_bytes),
                 std::to_string(run.sub_batches)});
    }
  }
  return t;
}

}  // namespace bsio::core
