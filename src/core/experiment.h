// Experiment runner shared by the bench harness: runs a list of algorithms
// on (workload, cluster) combinations and renders the paper-style rows
// (batch execution time per algorithm, scheduling overhead, transfer
// counts). Each bench binary declares its sweep and delegates here.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "core/batch_scheduler.h"
#include "util/table.h"
#include "workload/types.h"

namespace bsio::core {

struct ExperimentCase {
  std::string label;  // e.g. "high overlap" or "500 tasks"
  wl::Workload workload;
  sim::ClusterConfig cluster;
};

struct CaseResult {
  std::string label;
  std::vector<sched::BatchRunResult> runs;  // aligned with algorithms
};

struct ExperimentOptions {
  std::vector<Algorithm> algorithms = all_algorithms();
  RunOptions run_options;
  bool echo_progress = true;  // one stderr line per (case, algorithm)
};

// Runs every algorithm on every case.
std::vector<CaseResult> run_experiment(const std::vector<ExperimentCase>& cases,
                                       const ExperimentOptions& options = {});

// Renders "case x algorithm -> batch time (s)" (the shape of Figs 3-5) and
// appends normalised columns (relative to the first algorithm).
Table batch_time_table(const std::vector<CaseResult>& results,
                       const std::vector<Algorithm>& algorithms);

// Renders per-task scheduling overhead in ms (the shape of Fig 6b).
Table overhead_table(const std::vector<CaseResult>& results,
                     const std::vector<Algorithm>& algorithms);

// Renders transfer statistics (remote/replica counts, bytes, evictions).
Table transfer_table(const std::vector<CaseResult>& results,
                     const std::vector<Algorithm>& algorithms);

}  // namespace bsio::core
