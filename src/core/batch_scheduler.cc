#include "core/batch_scheduler.h"

#include "sched/alternatives.h"
#include "sched/minmin.h"
#include "util/check.h"

namespace bsio::core {

const char* algorithm_name(Algorithm a) {
  switch (a) {
    case Algorithm::kIp:
      return "IP";
    case Algorithm::kBiPartition:
      return "BiPartition";
    case Algorithm::kMinMin:
      return "MinMin";
    case Algorithm::kJobDataPresent:
      return "JobDataPresent";
    case Algorithm::kSufferage:
      return "Sufferage";
    case Algorithm::kMaxMin:
      return "MaxMin";
  }
  return "?";
}

std::vector<Algorithm> all_algorithms() {
  return {Algorithm::kIp, Algorithm::kBiPartition, Algorithm::kMinMin,
          Algorithm::kJobDataPresent};
}

std::vector<Algorithm> extended_algorithms() {
  auto v = all_algorithms();
  v.push_back(Algorithm::kSufferage);
  v.push_back(Algorithm::kMaxMin);
  return v;
}

std::unique_ptr<sched::Scheduler> make_scheduler(Algorithm algorithm,
                                                 const RunOptions& options) {
  switch (algorithm) {
    case Algorithm::kIp:
      return std::make_unique<sched::IpScheduler>(options.ip);
    case Algorithm::kBiPartition:
      return std::make_unique<sched::BiPartitionScheduler>(
          options.bipartition);
    case Algorithm::kMinMin:
      return std::make_unique<sched::MinMinScheduler>();
    case Algorithm::kJobDataPresent:
      return std::make_unique<sched::JobDataPresentScheduler>(options.jdp);
    case Algorithm::kSufferage:
      return std::make_unique<sched::SufferageScheduler>();
    case Algorithm::kMaxMin:
      return std::make_unique<sched::MaxMinScheduler>();
  }
  BSIO_CHECK_MSG(false, "unknown algorithm");
  return nullptr;
}

sched::BatchRunResult run_batch_scheduler(Algorithm algorithm,
                                          const wl::Workload& workload,
                                          const sim::ClusterConfig& cluster,
                                          const RunOptions& options) {
  auto scheduler = make_scheduler(algorithm, options);
  sched::BatchRunOptions run_options;
  run_options.faults = options.faults;
  run_options.speculation = options.speculation;
  return sched::run_batch(*scheduler, workload, cluster, run_options);
}

}  // namespace bsio::core
