// Bounded-variable dual simplex with a sparse revised kernel.
//
// Why dual simplex: every structural variable in the paper's IP models is a
// binary (finite bounds), so the all-slack basis — with each nonbasic
// variable parked at whichever bound its cost sign prefers — is always dual
// feasible. That removes the need for a phase-1, and branch-and-bound bound
// changes are exactly the perturbation dual simplex re-optimises from, so
// the MIP solver warm-starts every node from its parent's basis.
//
// Default path (sparse revised simplex): the basis is held as a sparse LU
// factorisation (see basis_lu.h) with product-form eta updates between
// periodic refactorisations; FTRAN/BTRAN are hypersparse; the leaving row is
// picked by devex dual pricing (violation^2 / devex weight) instead of a
// plain most-violated scan; and the dual ratio test is a bound-flip
// ("long-step") test — boxed nonbasics whose ratio is passed are flipped to
// their opposite bound in bulk (one combined FTRAN) instead of each costing
// a full pivot. Nonbasic bound changes between solves accumulate into a
// pending right-hand side, so a B&B node re-optimisation starts with one
// hypersparse FTRAN rather than a full primal recompute.
//
// Legacy path (SimplexOptions::use_dense_basis): the original dense m x m
// basis inverse with product-form pivot updates, Gauss-Jordan
// refactorisation and a Harris-flavoured ratio test. Kept verbatim as the
// differential-test oracle; do not use it on large models (O(m^2) memory).
#pragma once

#include <cstdint>
#include <vector>

#include "lp/basis_lu.h"
#include "lp/model.h"

namespace bsio::lp {

enum class SolveStatus {
  kOptimal,
  kInfeasible,
  kIterLimit,
  kNumericalFailure,
};

struct SimplexOptions {
  int max_iterations = 50000;
  // Periodic full refactorisation interval; <= 0 picks an automatic value
  // per backend (sparse: bound the eta file; dense: amortise the O(m^3)
  // refactorisation against O(m^2) pivot updates).
  int refactor_every = 0;
  double feas_tol = 1e-7;   // primal bound violation tolerance
  double dual_tol = 1e-9;   // reduced-cost tolerance
  double pivot_tol = 1e-8;  // minimum acceptable pivot magnitude
  // Wall-clock deadline for a single solve() in seconds (0 = none); an
  // expired deadline returns kIterLimit. Checked every few pivots so large
  // models cannot blow a caller's (e.g. B&B) time budget.
  double time_limit_seconds = 0.0;
  // Use the legacy dense basis inverse instead of the sparse LU kernel.
  // Differential-test oracle only: memory is O(m^2).
  bool use_dense_basis = false;
  // Deterministic cost perturbation scale for the sparse path (0 disables).
  // The paper's models minimise a single makespan variable z, so almost all
  // reduced costs are exactly zero and the dual simplex stalls on massive
  // degeneracy; tiny per-variable cost offsets (hash-derived, so runs stay
  // bit-reproducible) break the ties. Optimality is always proven against
  // the TRUE costs: once the perturbed problem is optimal the solver removes
  // the perturbation and re-optimises the (near-optimal) basis cleanly, so
  // reported objectives are exact LP optima usable as B&B bounds.
  double perturb_scale = 1e-7;
};

// Per-solve observability counters; aggregated up through MipResult and
// ExecutionStats into the benchmark JSON.
struct SolverStats {
  long factorizations = 0;      // basis refactorisations performed
  long factor_fill_nnz = 0;     // peak nnz(L)+nnz(U) over factorisations
  long pivots = 0;              // basis-changing dual pivots
  long bound_flips = 0;         // nonbasics flipped by the long-step test
  long degenerate_pivots = 0;   // pivots with ~zero dual step
  long pricing_passes = 0;      // BTRAN + pricing row computations

  void accumulate(const SolverStats& o) {
    factorizations += o.factorizations;
    if (o.factor_fill_nnz > factor_fill_nnz)
      factor_fill_nnz = o.factor_fill_nnz;
    pivots += o.pivots;
    bound_flips += o.bound_flips;
    degenerate_pivots += o.degenerate_pivots;
    pricing_passes += o.pricing_passes;
  }
};

struct SolveResult {
  SolveStatus status = SolveStatus::kNumericalFailure;
  double objective = 0.0;
  int iterations = 0;
  SolverStats stats;
};

// A basis captured from one solver instance and replayable on any other
// instance built over the same model: which variables are basic (by basis
// position) and which bound each nonbasic sits at. Everything else a solve
// depends on — factorisation, duals, devex weights, primal values — is
// recomputed canonically by restore_basis, so a restored solve is a pure
// function of (model, bounds, snapshot) regardless of the instance's
// history. The parallel B&B relies on exactly that to keep node evaluation
// deterministic under work stealing.
struct BasisSnapshot {
  std::vector<int> basic;          // basis position -> var
  std::vector<std::uint8_t> state;  // var -> kAtLower/kAtUpper/kBasic
};

class DualSimplex {
 public:
  // The model must outlive the solver. Variable count and rows are fixed at
  // construction; only bounds may change afterwards.
  explicit DualSimplex(const Model& model,
                       const SimplexOptions& opts = SimplexOptions());

  // (Re-)optimises from the current basis. First call starts from the
  // all-slack basis.
  SolveResult solve();

  // Overrides the per-solve deadline (seconds; 0 disables).
  void set_time_limit(double seconds) { opts_.time_limit_seconds = seconds; }

  // Tighten/relax a structural variable's bounds (B&B branching). Keeps the
  // basis; the next solve() warm-starts.
  void set_bounds(int var, double lo, double up);
  double lower(int var) const { return lo_[var]; }
  double upper(int var) const { return up_[var]; }

  // Value of structural variable `var` in the last solved point.
  double value(int var) const;
  // All structural values.
  std::vector<double> values() const;

  // Captures the current basis for replay on another instance of the same
  // model (sparse path only — the dense oracle keeps no factorisation to
  // rebuild from).
  BasisSnapshot snapshot_basis() const;
  // Rebuilds solver state from `snap` canonically: refactorises, resets the
  // devex reference frame, recomputes duals, discards pending bound deltas,
  // and marks primal values for recomputation. Callers apply their bound
  // set *after* restoring; the next solve() proceeds as if this basis had
  // just been factorised fresh.
  void restore_basis(const BasisSnapshot& snap);

  int num_structural() const { return n_; }

 private:
  static constexpr std::uint8_t kAtLower = 0;
  static constexpr std::uint8_t kAtUpper = 1;
  static constexpr std::uint8_t kBasic = 2;

  void build_columns(const Model& model);
  void reset_to_slack_basis();
  void restore_dual_feasible_sides();

  // --- shared helpers ---
  double nonbasic_value(int j) const {
    return state_[j] == kAtLower ? lo_[j] : up_[j];
  }

  // --- sparse (default) path ---
  bool pivot_step_sparse();
  void refactorize_sparse();        // refactor current basis (LU)
  bool factorize_current_basis();   // lu_ <- LU(B); false when singular
  // d = c - (c_B B^{-1}) A via BTRAN, against the given cost vector.
  void recompute_duals_sparse(const std::vector<double>& c);
  void recompute_x_basic_sparse();  // x_B = B^{-1}(b - N x_N) via FTRAN
  void apply_pending_bound_deltas();
  void add_nonbasic_delta(int var, double dx);

  // --- dense (oracle) path ---
  bool pivot_step_dense();
  void refactorize_dense();      // rebuild binv_ from basis columns
  void recompute_x_basic();      // x_B = B^{-1} (b - N x_N)
  void recompute_duals();        // d = c - (c_B B^{-1}) A
  double col_dot_row(int col, const std::vector<double>& row) const;
  void ftran_dense(int col, std::vector<double>& out) const;

  const Model& model_;
  SimplexOptions opts_;

  int n_ = 0;  // structural variables
  int m_ = 0;  // rows (and slacks)
  int total_ = 0;

  // Sparse columns (structural + slack).
  std::vector<std::vector<int>> col_idx_;
  std::vector<std::vector<double>> col_val_;

  std::vector<double> cost_, lo_, up_;
  std::vector<double> pcost_;  // perturbed costs (== cost_ when disabled)
  std::vector<double> b_;

  std::vector<int> basic_;           // basis position -> var
  std::vector<int> basic_pos_;       // var -> basis position or -1
  std::vector<std::uint8_t> state_;  // var -> kAtLower/kAtUpper/kBasic
  std::vector<double> xb_;           // basic values by basis position
  std::vector<double> d_;            // reduced costs (all vars)

  bool x_dirty_ = true;
  int pivots_since_refactor_ = 0;
  SolveStatus result_status_ = SolveStatus::kNumericalFailure;
  SolverStats stats_;

  // Sparse-path state.
  BasisLu lu_;
  std::vector<double> gamma_;  // devex weights by basis position
  IndexedVector rho_s_;        // pricing row / BTRAN scratch (m)
  IndexedVector alpha_s_;      // pivot row alpha_j over all vars (n + m)
  IndexedVector w_s_;          // FTRAN of the entering column (m)
  IndexedVector rhs_s_;        // general FTRAN scratch (m)
  IndexedVector pending_rhs_;  // accumulated nonbasic bound deltas (m)
  bool pending_ = false;
  bool perturb_active_ = false;   // sparse path with perturb_scale > 0
  bool duals_perturbed_ = false;  // d_ currently tracks pcost_ (not cost_)
  struct RatioCand {
    double ratio;
    double aabs;
    int j;
  };
  std::vector<RatioCand> cands_;
  std::vector<int> flips_;
  std::vector<double> racc_;  // dense accumulator for full x recompute
  std::vector<std::vector<std::pair<int, double>>> basis_cols_;

  // Dense-path state.
  std::vector<double> binv_;  // dense m x m, row-major
  std::vector<double> rho_, w_;
};

}  // namespace bsio::lp
