// Bounded-variable dual simplex with a dense basis inverse.
//
// Why dual simplex: every structural variable in the paper's IP models is a
// binary (finite bounds), so the all-slack basis — with each nonbasic
// variable parked at whichever bound its cost sign prefers — is always dual
// feasible. That removes the need for a phase-1, and branch-and-bound bound
// changes are exactly the perturbation dual simplex re-optimises from, so
// the MIP solver warm-starts every node from its parent's basis.
//
// Internals: rows are converted to equalities with one slack each
// (<=: s in [0, inf); >=: s in (-inf, 0]; =: s fixed at 0); the basis
// inverse is dense (m x m) with product-form pivot updates and periodic
// full refactorisation; the ratio test is Harris-flavoured (among ratios
// within a relative band of the minimum, pick the largest pivot magnitude).
#pragma once

#include <cstdint>
#include <vector>

#include "lp/model.h"

namespace bsio::lp {

enum class SolveStatus {
  kOptimal,
  kInfeasible,
  kIterLimit,
  kNumericalFailure,
};

struct SimplexOptions {
  int max_iterations = 50000;
  // Periodic full refactorisation interval; <= 0 picks an automatic value
  // that balances the O(m^3) refactorisation against O(m^2) pivot updates.
  int refactor_every = 0;
  double feas_tol = 1e-7;   // primal bound violation tolerance
  double dual_tol = 1e-9;   // reduced-cost tolerance
  double pivot_tol = 1e-8;  // minimum acceptable pivot magnitude
  // Wall-clock deadline for a single solve() in seconds (0 = none); an
  // expired deadline returns kIterLimit. Checked every few pivots so large
  // models cannot blow a caller's (e.g. B&B) time budget.
  double time_limit_seconds = 0.0;
};

struct SolveResult {
  SolveStatus status = SolveStatus::kNumericalFailure;
  double objective = 0.0;
  int iterations = 0;
};

class DualSimplex {
 public:
  // The model must outlive the solver. Variable count and rows are fixed at
  // construction; only bounds may change afterwards.
  explicit DualSimplex(const Model& model,
                       const SimplexOptions& opts = SimplexOptions());

  // (Re-)optimises from the current basis. First call starts from the
  // all-slack basis.
  SolveResult solve();

  // Overrides the per-solve deadline (seconds; 0 disables).
  void set_time_limit(double seconds) { opts_.time_limit_seconds = seconds; }

  // Tighten/relax a structural variable's bounds (B&B branching). Keeps the
  // basis; the next solve() warm-starts.
  void set_bounds(int var, double lo, double up);
  double lower(int var) const { return lo_[var]; }
  double upper(int var) const { return up_[var]; }

  // Value of structural variable `var` in the last solved point.
  double value(int var) const;
  // All structural values.
  std::vector<double> values() const;

  int num_structural() const { return n_; }

 private:
  static constexpr std::uint8_t kAtLower = 0;
  static constexpr std::uint8_t kAtUpper = 1;
  static constexpr std::uint8_t kBasic = 2;

  void build_columns(const Model& model);
  void reset_to_slack_basis();
  void refactorize();       // rebuild binv_ from basis columns
  void recompute_x_basic();  // x_B = B^{-1} (b - N x_N)
  void restore_dual_feasible_sides();
  void recompute_duals();    // d = c - (c_B B^{-1}) A
  double col_dot_row(int col, const std::vector<double>& row) const;
  void ftran(int col, std::vector<double>& out) const;  // out = B^{-1} A_col

  // One dual simplex pivot; returns false when optimal/infeasible (status
  // set in result_status_).
  bool pivot_step();

  const Model& model_;
  SimplexOptions opts_;

  int n_ = 0;  // structural variables
  int m_ = 0;  // rows (and slacks)
  int total_ = 0;

  // Sparse columns (structural + slack).
  std::vector<std::vector<int>> col_idx_;
  std::vector<std::vector<double>> col_val_;

  std::vector<double> cost_, lo_, up_;
  std::vector<double> b_;

  std::vector<double> binv_;       // dense m x m, row-major
  std::vector<int> basic_;         // row -> var
  std::vector<int> basic_pos_;     // var -> row or -1
  std::vector<std::uint8_t> state_;  // var -> kAtLower/kAtUpper/kBasic
  std::vector<double> xb_;         // basic values by row
  std::vector<double> d_;          // reduced costs (all vars)

  bool x_dirty_ = true;
  int pivots_since_refactor_ = 0;
  SolveStatus result_status_ = SolveStatus::kNumericalFailure;

  // Scratch buffers.
  std::vector<double> rho_, w_;
};

}  // namespace bsio::lp
