#include "lp/basis_lu.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/check.h"

namespace bsio::lp {

namespace {
// Relative stability threshold of the Markowitz-style row choice: rows
// within kPivotBand of the column maximum are sparsity candidates.
constexpr double kPivotBand = 0.1;
// Below this absolute magnitude a column is considered structurally empty.
constexpr double kSingularTol = 1e-11;
// Entries smaller than this are dropped from L, U and eta vectors.
constexpr double kDropTol = 1e-14;
}  // namespace

bool BasisLu::factorize(
    int m, const std::vector<std::vector<std::pair<int, double>>>& cols) {
  BSIO_CHECK(static_cast<int>(cols.size()) == m);
  m_ = m;
  valid_ = false;

  lp_.assign(1, 0);
  li_.clear();
  lx_.clear();
  up_.assign(1, 0);
  ui_.clear();
  ux_.clear();
  udiag_.assign(m, 0.0);
  p_.assign(m, -1);
  q_.assign(m, -1);
  row_pos_.assign(m, -1);
  eta_r_.clear();
  eta_pivot_.clear();
  eta_start_.assign(1, 0);
  eta_idx_.clear();
  eta_val_.clear();

  // Static approximate-Markowitz ordering: eliminate sparse columns first
  // (slack singletons factor with zero fill before any structural column).
  std::vector<int> order(m);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    return cols[a].size() < cols[b].size();
  });

  // Static row counts over the basis matrix for the sparsity tie-break.
  std::vector<int> row_count(m, 0);
  for (const auto& col : cols)
    for (const auto& [i, v] : col)
      if (v != 0.0) ++row_count[i];

  // Gilbert-Peierls working set.
  std::vector<double> x(m, 0.0);       // dense accumulator, by row
  std::vector<int> pattern;            // rows touched in x
  std::vector<unsigned char> xmark(m, 0);
  std::vector<unsigned char> visited(m, 0);  // by elimination step
  std::vector<int> post;               // DFS postorder (steps)
  std::vector<int> dfs_node, dfs_ptr;  // iterative DFS stack

  pattern.reserve(64);
  post.reserve(64);

  for (int k = 0; k < m; ++k) {
    const int bpos = order[k];
    // Scatter the basis column.
    pattern.clear();
    for (const auto& [i, v] : cols[bpos]) {
      if (v == 0.0) continue;
      if (!xmark[i]) {
        xmark[i] = 1;
        pattern.push_back(i);
      }
      x[i] += v;
    }

    // Symbolic reach: DFS over previously eliminated columns whose pivot
    // rows appear in the pattern; reverse postorder is a topological order
    // of the dependencies.
    post.clear();
    for (int rooti = 0, n0 = static_cast<int>(pattern.size()); rooti < n0;
         ++rooti) {
      const int s0 = row_pos_[pattern[rooti]];
      if (s0 < 0 || visited[s0]) continue;
      dfs_node.assign(1, s0);
      dfs_ptr.assign(1, lp_[s0]);
      visited[s0] = 1;
      while (!dfs_node.empty()) {
        const int s = dfs_node.back();
        int& ptr = dfs_ptr.back();
        bool descended = false;
        while (ptr < lp_[s + 1]) {
          const int row = li_[ptr++];
          if (!xmark[row]) {
            // New fill-in row enters the pattern (value starts at 0).
            xmark[row] = 1;
            pattern.push_back(row);
          }
          const int s2 = row_pos_[row];
          if (s2 >= 0 && !visited[s2]) {
            visited[s2] = 1;
            dfs_node.push_back(s2);
            dfs_ptr.push_back(lp_[s2]);
            descended = true;
            break;
          }
        }
        if (!descended && ptr >= lp_[s + 1]) {
          post.push_back(s);
          dfs_node.pop_back();
          dfs_ptr.pop_back();
        }
      }
    }

    // Numeric sparse lower solve in topological order.
    for (auto it = post.rbegin(); it != post.rend(); ++it) {
      const int s = *it;
      visited[s] = 0;
      const double t = x[p_[s]];
      if (t == 0.0) continue;
      for (int e = lp_[s]; e < lp_[s + 1]; ++e) x[li_[e]] -= lx_[e] * t;
    }

    // Pivot choice among unpivoted rows: threshold partial pivoting with a
    // Markowitz sparsity tie-break.
    double amax = 0.0;
    for (int i : pattern)
      if (row_pos_[i] < 0) amax = std::max(amax, std::abs(x[i]));
    if (amax < kSingularTol) {
      for (int i : pattern) {
        x[i] = 0.0;
        xmark[i] = 0;
      }
      for (int s : post) visited[s] = 0;
      return false;  // singular (or numerically so)
    }
    int piv = -1;
    int piv_count = 0;
    for (int i : pattern) {
      if (row_pos_[i] >= 0) continue;
      const double a = std::abs(x[i]);
      if (a < kPivotBand * amax) continue;
      if (piv < 0 || row_count[i] < piv_count ||
          (row_count[i] == piv_count && i < piv)) {
        piv = i;
        piv_count = row_count[i];
      }
    }
    const double xpiv = x[piv];

    // Commit U column k (pivoted entries) and L column k (unpivoted / piv).
    for (int i : pattern) {
      const int s = row_pos_[i];
      if (s >= 0) {
        if (std::abs(x[i]) > kDropTol) {
          ui_.push_back(s);
          ux_.push_back(x[i]);
        }
      } else if (i != piv) {
        const double l = x[i] / xpiv;
        if (std::abs(l) > kDropTol) {
          li_.push_back(i);
          lx_.push_back(l);
        }
      }
      x[i] = 0.0;
      xmark[i] = 0;
    }
    up_.push_back(static_cast<int>(ui_.size()));
    lp_.push_back(static_cast<int>(li_.size()));
    udiag_[k] = xpiv;
    p_[k] = piv;
    row_pos_[piv] = k;
    q_[k] = bpos;
  }

  build_row_mirrors();
  out_.resize(m);
  step_val_.assign(m, 0.0);
  valid_ = true;
  return true;
}

void BasisLu::build_row_mirrors() {
  // CSR mirrors of L (keyed by pivot row's elimination step) and U.
  std::vector<int> cnt(m_, 0);
  for (int i : li_) ++cnt[row_pos_[i]];
  lrp_.assign(m_ + 1, 0);
  for (int s = 0; s < m_; ++s) lrp_[s + 1] = lrp_[s] + cnt[s];
  lri_.assign(li_.size(), 0);
  lrx_.assign(lx_.size(), 0.0);
  std::vector<int> fill = lrp_;
  for (int k = 0; k < m_; ++k)
    for (int e = lp_[k]; e < lp_[k + 1]; ++e) {
      const int s = row_pos_[li_[e]];
      lri_[fill[s]] = k;
      lrx_[fill[s]] = lx_[e];
      ++fill[s];
    }

  cnt.assign(m_, 0);
  for (int s : ui_) ++cnt[s];
  urp_.assign(m_ + 1, 0);
  for (int s = 0; s < m_; ++s) urp_[s + 1] = urp_[s] + cnt[s];
  uri_.assign(ui_.size(), 0);
  urx_.assign(ux_.size(), 0.0);
  fill = urp_;
  for (int k = 0; k < m_; ++k)
    for (int e = up_[k]; e < up_[k + 1]; ++e) {
      const int s = ui_[e];
      uri_[fill[s]] = k;
      urx_[fill[s]] = ux_[e];
      ++fill[s];
    }
}

void BasisLu::ftran(IndexedVector& x) const {
  BSIO_DCHECK(valid_);
  // L solve (push form), in place keyed by row.
  for (int k = 0; k < m_; ++k) {
    const double t = x.val[p_[k]];
    if (t == 0.0) continue;
    for (int e = lp_[k]; e < lp_[k + 1]; ++e) x.add(li_[e], -lx_[e] * t);
  }
  // U backward solve; results keyed by basis position go to out_.
  out_.clear();
  for (int k = m_ - 1; k >= 0; --k) {
    const double t = x.val[p_[k]];
    if (t == 0.0) continue;
    const double yk = t / udiag_[k];
    out_.set(q_[k], yk);
    for (int e = up_[k]; e < up_[k + 1]; ++e)
      x.add(p_[ui_[e]], -ux_[e] * yk);
  }
  x.swap(out_);   // x := solution (basis-position space)
  out_.clear();   // wipe the leftover L-phase values for the next call

  // Eta file, oldest first: x := E_k^{-1} x.
  const int ne = eta_count();
  for (int k = 0; k < ne; ++k) {
    const int r = eta_r_[k];
    const double xr = x.val[r];
    if (xr == 0.0) continue;
    const double t = xr / eta_pivot_[k];
    x.set(r, t);
    for (int e = eta_start_[k]; e < eta_start_[k + 1]; ++e)
      x.add(eta_idx_[e], -eta_val_[e] * t);
  }
}

void BasisLu::btran(IndexedVector& x) const {
  BSIO_DCHECK(valid_);
  // Eta transposes, newest first: x := E_k^{-T} x.
  for (int k = eta_count() - 1; k >= 0; --k) {
    const int r = eta_r_[k];
    double s = x.val[r];
    bool touched = s != 0.0;
    for (int e = eta_start_[k]; e < eta_start_[k + 1]; ++e) {
      const double xv = x.val[eta_idx_[e]];
      if (xv != 0.0) {
        s -= eta_val_[e] * xv;
        touched = true;
      }
    }
    if (touched) x.set(r, s / eta_pivot_[k]);
  }

  // Gather the input into elimination-step space: c'[s] = x[q_[s]].
  // step_val_ doubles as c' and then as the intermediate w.
  for (int s = 0; s < m_; ++s) step_val_[s] = x.val[q_[s]];
  x.clear();
  // U^T forward solve (push form).
  for (int s = 0; s < m_; ++s) {
    const double cs = step_val_[s];
    if (cs == 0.0) continue;
    const double ws = cs / udiag_[s];
    step_val_[s] = ws;
    for (int e = urp_[s]; e < urp_[s + 1]; ++e)
      step_val_[uri_[e]] -= urx_[e] * ws;
  }
  // L^T backward solve (push form): u_s final once later steps processed.
  for (int s = m_ - 1; s >= 0; --s) {
    const double us = step_val_[s];
    if (us == 0.0) continue;
    for (int e = lrp_[s]; e < lrp_[s + 1]; ++e)
      step_val_[lri_[e]] -= lrx_[e] * us;
  }
  // Scatter back to constraint-row space.
  for (int s = 0; s < m_; ++s) {
    if (step_val_[s] != 0.0) {
      x.set(p_[s], step_val_[s]);
      step_val_[s] = 0.0;
    }
  }
}

void BasisLu::update(int r, const IndexedVector& w) {
  BSIO_DCHECK(valid_);
  eta_r_.push_back(r);
  eta_pivot_.push_back(w.val[r]);
  for (int i : w.idx) {
    if (i == r) continue;
    const double v = w.val[i];
    if (std::abs(v) <= kDropTol) continue;
    eta_idx_.push_back(i);
    eta_val_.push_back(v);
  }
  eta_start_.push_back(static_cast<int>(eta_idx_.size()));
}

}  // namespace bsio::lp
